// Cluster config file: round-trip, validation, and hostile-input battery
// for the shared deployment descriptor (net/cluster_config.h).
#include <gtest/gtest.h>

#include <string>

#include "net/cluster_config.h"

namespace causalec::net {
namespace {

ClusterConfig sample_config() {
  ClusterConfig config;
  config.num_servers = 5;
  config.num_objects = 3;
  config.value_bytes = 256;
  config.code = "rs";
  for (int i = 0; i < 5; ++i) {
    config.endpoints.push_back("127.0.0.1:" + std::to_string(7400 + i));
  }
  config.groups = {{0, 1}, {2, 3, 4}};
  return config;
}

TEST(ClusterConfigTest, SerializeParseRoundTrips) {
  const ClusterConfig config = sample_config();
  std::string error;
  ASSERT_TRUE(config.validate(&error)) << error;
  const auto parsed = parse_cluster_config(config.serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->num_servers, config.num_servers);
  EXPECT_EQ(parsed->num_objects, config.num_objects);
  EXPECT_EQ(parsed->value_bytes, config.value_bytes);
  EXPECT_EQ(parsed->code, config.code);
  EXPECT_EQ(parsed->endpoints, config.endpoints);
  EXPECT_EQ(parsed->groups, config.groups);
  // And the round-trip is a fixpoint.
  EXPECT_EQ(parsed->serialize(), config.serialize());
}

TEST(ClusterConfigTest, ParsesCommentsBlanksAndCrLf) {
  const std::string text =
      "causalec-cluster-v1\r\n"
      "# a comment\r\n"
      "\r\n"
      "servers 2\r\n"
      "objects 1\r\n"
      "  value_bytes 64\r\n"
      "code rs\r\n"
      "node 1 127.0.0.1:7401\r\n"
      "node 0 127.0.0.1:7400\r\n";
  std::string error;
  const auto parsed = parse_cluster_config(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->num_servers, 2u);
  EXPECT_EQ(parsed->endpoints[0], "127.0.0.1:7400");
  EXPECT_EQ(parsed->endpoints[1], "127.0.0.1:7401");
  EXPECT_TRUE(parsed->groups.empty());
}

TEST(ClusterConfigTest, DefaultRoutingGroupsAreOneGroupPerNode) {
  ClusterConfig config = sample_config();
  config.groups.clear();
  const auto groups = config.routing_groups();
  ASSERT_EQ(groups.size(), config.num_servers);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(groups[i], std::vector<NodeId>{static_cast<NodeId>(i)});
  }
  // Explicit groups pass through untouched.
  EXPECT_EQ(sample_config().routing_groups(), sample_config().groups);
}

TEST(ClusterConfigTest, RejectsMalformedInput) {
  std::string error;
  const auto expect_reject = [&](const std::string& text,
                                 const char* why) {
    EXPECT_FALSE(parse_cluster_config(text, &error).has_value()) << why;
    EXPECT_FALSE(error.empty()) << why;
  };
  expect_reject("", "empty input");
  expect_reject("not-the-magic\nservers 1\n", "wrong magic");
  expect_reject("causalec-cluster-v1\nservers zero\n", "non-numeric count");
  expect_reject("causalec-cluster-v1\nbogus 3\n", "unknown key");
  expect_reject("causalec-cluster-v1\nservers 2\nnode 0 127.0.0.1:1\n",
                "missing node line");
  expect_reject(
      "causalec-cluster-v1\nservers 1\nnode 0 127.0.0.1:1\n"
      "node 0 127.0.0.1:2\n",
      "duplicate node");
  expect_reject("causalec-cluster-v1\nservers 1\nnode 5 127.0.0.1:1\n",
                "node id out of range");
  expect_reject("causalec-cluster-v1\nservers 1\nnode 0 nonsense\n",
                "unparseable endpoint");
  expect_reject(
      "causalec-cluster-v1\nservers 2\nnode 0 127.0.0.1:1\n"
      "node 1 127.0.0.1:2\ngroup 0 0\n",
      "groups must cover every node");
  expect_reject(
      "causalec-cluster-v1\nservers 2\nnode 0 127.0.0.1:1\n"
      "node 1 127.0.0.1:2\ngroup 0 0,1\ngroup 1 1\n",
      "node in two groups");
  expect_reject(
      "causalec-cluster-v1\nservers 1\nnode 0 127.0.0.1:1\n"
      "code martian\n",
      "unknown code family");
  expect_reject(
      "causalec-cluster-v1\nservers 4\nobjects 3\ncode paper53\n"
      "node 0 h:1\nnode 1 h:2\nnode 2 h:3\nnode 3 h:4\n",
      "paper53 shape mismatch");
}

TEST(ClusterConfigTest, MakeCodeMatchesTheNamedFamily) {
  ClusterConfig config = sample_config();
  auto rs = config.make_code();
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->num_servers(), 5u);
  EXPECT_EQ(rs->num_objects(), 3u);
  EXPECT_EQ(rs->value_bytes(), 256u);
  config.code = "paper53";
  auto paper = config.make_code();
  ASSERT_NE(paper, nullptr);
  EXPECT_EQ(paper->num_servers(), 5u);
  config.num_servers = 4;
  config.endpoints.pop_back();
  config.groups = {};
  EXPECT_EQ(config.make_code(), nullptr) << "paper53 needs exactly 5/3";
}

TEST(ClusterConfigTest, SaveAndLoadThroughAFile) {
  const ClusterConfig config = sample_config();
  const std::string path =
      ::testing::TempDir() + "cluster_config_test.conf";
  ASSERT_TRUE(save_cluster_config(config, path));
  std::string error;
  const auto loaded = load_cluster_config(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->serialize(), config.serialize());
  EXPECT_FALSE(
      load_cluster_config(path + ".does-not-exist", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace causalec::net
