// Front-door chaos battery (DESIGN.md §12): real causalec_server processes
// behind an in-process Router, with a SIGKILL mid-traffic. Reads must fall
// through past the dead backend (reroutes > 0) with every checker green,
// and a router restart must carry sessions over via the frontier token --
// the router itself holds no session state worth mourning.
//
// Writers are pinned to objects owned by the surviving routing group, so
// no write is ever in flight at the victim: a write applied by a dying
// server but never acked would be an unrecorded write, which the checkers
// (rightly) cannot absolve.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "consistency/causal_checker.h"
#include "consistency/history.h"
#include "frontdoor/router.h"
#include "frontdoor/router_client.h"
#include "net/net_client.h"
#include "net/process_cluster.h"

namespace causalec::frontdoor {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kServers = 5;
constexpr std::size_t kObjects = 3;
constexpr std::size_t kValueBytes = 64;

SimTime next_tick() {
  static std::atomic<SimTime> tick{0};
  return tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

erasure::Value value_for(ClientId client, std::uint64_t seq) {
  erasure::Value v(kValueBytes);
  std::uint8_t* bytes = v.begin();
  for (std::size_t i = 0; i < kValueBytes; ++i) {
    bytes[i] = static_cast<std::uint8_t>(client * 151 + seq * 7 + i);
  }
  return v;
}

/// A recorded session through the router. `start_seq` lets a session
/// continue across a reconnect (or a router restart) under the same
/// client id without reusing session_seq values.
struct RouterSession {
  RouterSession(ClientId id_in, const std::string& endpoint,
                std::uint64_t start_seq = 0)
      : id(id_in), client(id_in), seq_(start_seq) {
    connected = client.connect(endpoint, 2000);
    client.set_io_timeout_ms(10'000);
  }

  bool write_op(ObjectId object) {
    const std::uint64_t seq = seq_++;
    const erasure::Value value = value_for(id, seq);
    consistency::OpRecord record;
    record.client = id;
    record.session_seq = seq;
    record.is_write = true;
    record.object = object;
    record.value_hash =
        consistency::hash_value_bytes({value.data(), value.size()});
    record.invoked_at = next_tick();
    const auto resp = client.write(seq, object, value);
    if (!resp.has_value()) return false;
    record.tag = resp->tag;
    record.timestamp = resp->vc;
    record.responded_at = next_tick();
    ops.push_back(std::move(record));
    return true;
  }

  bool read_op(ObjectId object) {
    const std::uint64_t seq = seq_++;
    consistency::OpRecord record;
    record.client = id;
    record.session_seq = seq;
    record.is_write = false;
    record.object = object;
    record.invoked_at = next_tick();
    const auto resp = client.read(seq, object);
    if (!resp.has_value()) return false;
    record.tag = resp->tag;
    record.timestamp = resp->vc;
    record.value_hash = consistency::hash_value_bytes(
        {resp->value.data(), resp->value.size()});
    record.responded_at = next_tick();
    last_tag = resp->tag;
    ops.push_back(std::move(record));
    return true;
  }

  std::uint64_t next_seq() const { return seq_; }

  ClientId id;
  RouterClient client;
  bool connected = false;
  std::vector<consistency::OpRecord> ops;
  Tag last_tag;

 private:
  std::uint64_t seq_;
};

class FrontdoorChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::ProcessClusterConfig cc;
    cc.server_bin = CAUSALEC_SERVER_BIN;
    cc.num_servers = kServers;
    cc.num_objects = kObjects;
    cc.value_bytes = kValueBytes;
    cc.persistence = false;
    cc.groups = {{0, 1}, {2, 3, 4}};
    cluster_ = std::make_unique<net::ProcessCluster>(cc);
    ASSERT_TRUE(cluster_->start()) << "failed to spawn the cluster";
    ASSERT_TRUE(cluster_->await_ready(15s)) << "cluster never ready";

    // Pick a ring seed under which BOTH routing groups own at least one
    // object: the test needs a victim group that owns something (so its
    // death forces reroutes) and a survivor group to pin writers to.
    const std::size_t num_groups = cc.groups.size();
    ring_seed_ = 0;
    for (std::uint64_t seed = 1; seed < 64; ++seed) {
      const HashRing probe(num_groups, /*vnodes=*/64, seed);
      std::vector<bool> owns(num_groups, false);
      for (ObjectId g = 0; g < kObjects; ++g) owns[probe.owner(g)] = true;
      if (owns[0] && owns[1]) {
        ring_seed_ = seed;
        break;
      }
    }
    ASSERT_NE(ring_seed_, 0u) << "no seed splits ownership across groups";

    start_router();
  }

  void TearDown() override {
    if (router_ != nullptr) router_->stop();
  }

  void start_router() {
    RouterConfig rc;
    rc.cluster = cluster_->cluster();
    rc.shards = 2;
    rc.vnodes = 64;
    rc.ring_seed = ring_seed_;
    rc.cache_ttl = 0ms;
    router_ = std::make_unique<Router>(std::move(rc));
    router_->start();
    router_endpoint_ =
        "127.0.0.1:" + std::to_string(router_->listen_port());
  }

  /// All live servers return the same tag for every object, stable across
  /// two polls. With a peer SIGKILLed for good, the regular convergence
  /// oracle can never pass -- GC's del-floor needs announcements from all
  /// n servers, so history entries stay pinned on the survivors. Agreement
  /// on the read frontier is the right post-crash quiescence notion.
  bool await_survivor_agreement(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::vector<Tag> previous;
    int stable = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      std::vector<Tag> tags;
      bool agree = true;
      for (std::size_t i = 0; i < kServers && agree; ++i) {
        if (!cluster_->running(i)) continue;
        net::NetClient probe(900 + static_cast<ClientId>(i));
        if (!probe.connect(cluster_->endpoint(i), 500)) {
          agree = false;
          break;
        }
        probe.set_io_timeout_ms(2000);
        for (ObjectId g = 0; g < kObjects; ++g) {
          const auto resp = probe.read(g, g);
          if (!resp.has_value()) {
            agree = false;
            break;
          }
          if (tags.size() <= g) {
            tags.push_back(resp->tag);
          } else if (!(tags[g] == resp->tag)) {
            agree = false;
          }
        }
      }
      if (agree && tags == previous && ++stable >= 2) return true;
      if (!agree || !(tags == previous)) stable = 0;
      previous = std::move(tags);
      std::this_thread::sleep_for(20ms);
    }
    return false;
  }

  /// Final reads at every LIVE server, directly (bypassing the router).
  std::vector<consistency::OpRecord> final_reads() {
    std::vector<consistency::OpRecord> reads;
    for (std::size_t i = 0; i < kServers; ++i) {
      if (!cluster_->running(i)) continue;
      net::NetClient probe(500 + static_cast<ClientId>(i));
      EXPECT_TRUE(probe.connect(cluster_->endpoint(i), 2000));
      probe.set_io_timeout_ms(5000);
      for (ObjectId g = 0; g < kObjects; ++g) {
        consistency::OpRecord record;
        record.client = 500 + static_cast<ClientId>(i);
        record.session_seq = g;
        record.is_write = false;
        record.object = g;
        record.server = static_cast<NodeId>(i);
        record.invoked_at = next_tick();
        const auto resp = probe.read(g, g);
        EXPECT_TRUE(resp.has_value()) << "final read failed at server " << i;
        if (!resp.has_value()) continue;
        record.tag = resp->tag;
        record.timestamp = resp->vc;
        record.value_hash = consistency::hash_value_bytes(
            {resp->value.data(), resp->value.size()});
        record.responded_at = next_tick();
        reads.push_back(std::move(record));
      }
    }
    return reads;
  }

  void run_checkers(const consistency::History& history,
                    const std::vector<consistency::OpRecord>& finals) {
    const auto causal = consistency::check_causal_consistency(history);
    EXPECT_TRUE(causal.ok) << (causal.violations.empty()
                                   ? std::string("?")
                                   : causal.violations.front());
    const auto session = consistency::check_session_guarantees(history);
    EXPECT_TRUE(session.ok) << (session.violations.empty()
                                    ? std::string("?")
                                    : session.violations.front());
    const auto conv = consistency::check_convergence(history, finals);
    EXPECT_TRUE(conv.ok) << (conv.violations.empty()
                                 ? std::string("?")
                                 : conv.violations.front());
  }

  std::unique_ptr<net::ProcessCluster> cluster_;
  std::unique_ptr<Router> router_;
  std::string router_endpoint_;
  std::uint64_t ring_seed_ = 0;
};

TEST_F(FrontdoorChaosTest, ReadsFallThroughPastAKilledBackend) {
  ASSERT_TRUE(router_->await_backends(10s)) << "backend links never up";

  // The victim is the primary (first node) of a group that owns at least
  // one object; writers are pinned to objects the OTHER group owns.
  const auto& groups = router_->routing_groups();
  const std::size_t victim_group = router_->ring().owner(0);
  const NodeId victim = groups[victim_group][0];
  std::vector<ObjectId> safe_objects;
  for (ObjectId g = 0; g < kObjects; ++g) {
    if (router_->ring().owner(g) != victim_group) safe_objects.push_back(g);
  }
  ASSERT_FALSE(safe_objects.empty());

  std::atomic<bool> stop{false};
  std::atomic<bool> writer_failed{false};
  std::atomic<int> reader_reconnects{0};

  // Two recorded writers on survivor-owned objects, paced so the history
  // stays small enough for the O(n^2) checkers.
  std::vector<std::unique_ptr<RouterSession>> writers;
  for (int w = 0; w < 2; ++w) {
    writers.push_back(std::make_unique<RouterSession>(
        600 + w, router_endpoint_));
    ASSERT_TRUE(writers.back()->connected);
  }
  // Three recorded readers over ALL objects -- including the victim's.
  // A reader whose in-flight op dies with a link reconnects with its
  // frontier intact and carries on; failed ops are simply not recorded.
  std::vector<std::unique_ptr<RouterSession>> readers;
  for (int r = 0; r < 3; ++r) {
    readers.push_back(std::make_unique<RouterSession>(
        620 + r, router_endpoint_));
    ASSERT_TRUE(readers.back()->connected);
  }

  std::vector<std::thread> threads;
  for (auto& w : writers) {
    threads.emplace_back([&, session = w.get()] {
      std::size_t i = 0;
      while (!stop.load()) {
        if (!session->write_op(safe_objects[i++ % safe_objects.size()])) {
          writer_failed.store(true);
          return;
        }
        std::this_thread::sleep_for(4ms);
      }
    });
  }
  for (auto& holder : readers) {
    threads.emplace_back([&, &holder = holder] {
      ObjectId object = 0;
      while (!stop.load()) {
        RouterSession* session = holder.get();
        if (!session->read_op(object)) {
          // Re-establish the session: same client id, frontier carried
          // over, session_seq continuing where it left off.
          auto fresh = std::make_unique<RouterSession>(
              session->id, router_endpoint_, session->next_seq());
          if (!fresh->connected) {
            std::this_thread::sleep_for(20ms);
            continue;
          }
          fresh->client.set_frontier(session->client.frontier());
          for (auto& op : session->ops) fresh->ops.push_back(std::move(op));
          holder = std::move(fresh);
          reader_reconnects.fetch_add(1);
        }
        object = static_cast<ObjectId>((object + 1) % kObjects);
        std::this_thread::sleep_for(2ms);
      }
    });
  }

  std::this_thread::sleep_for(300ms);
  cluster_->kill_server(victim);
  std::this_thread::sleep_for(600ms);
  stop.store(true);
  for (auto& th : threads) th.join();

  ASSERT_FALSE(writer_failed.load())
      << "a write on a survivor-owned object must never fail";
  ASSERT_TRUE(await_survivor_agreement(20s))
      << "survivors never agreed on the read frontier";

  consistency::History history;
  for (auto& w : writers) {
    for (auto& op : w->ops) history.record(std::move(op));
  }
  for (auto& r : readers) {
    for (auto& op : r->ops) history.record(std::move(op));
  }
  ASSERT_GT(history.size(), 0u);
  run_checkers(history, final_reads());

  const net::RouterStatsResp s = router_->stats();
  EXPECT_GE(s.reroutes, 1u)
      << "killing the owner's primary must force fall-through routing";
  EXPECT_GE(s.ring_remaps, 1u);
  EXPECT_EQ(s.backend_ops.size(), kServers);
}

TEST_F(FrontdoorChaosTest, SessionsSurviveARouterRestartViaTheFrontier) {
  ASSERT_TRUE(router_->await_backends(10s)) << "backend links never up";

  // Phase 1: a session writes and reads through the first router.
  auto session = std::make_unique<RouterSession>(700, router_endpoint_);
  ASSERT_TRUE(session->connected);
  for (ObjectId g = 0; g < kObjects; ++g) {
    ASSERT_TRUE(session->write_op(g));
    ASSERT_TRUE(session->read_op(g));
  }
  const Tag last_write_tag = session->ops[2 * (kObjects - 1)].tag;
  const VectorClock frontier = session->client.frontier();
  const std::uint64_t seq = session->next_seq();
  std::vector<consistency::OpRecord> phase1 = std::move(session->ops);
  session.reset();

  // Phase 2: the router dies and a fresh one (empty cache, zero stats)
  // takes over. The client re-installs its frontier token; read-your-writes
  // and monotonic reads must hold across the hand-off.
  router_->stop();
  router_.reset();
  start_router();
  ASSERT_TRUE(router_->await_backends(10s)) << "restarted links never up";

  RouterSession resumed(700, router_endpoint_, seq);
  ASSERT_TRUE(resumed.connected);
  resumed.client.set_frontier(frontier);
  ASSERT_TRUE(resumed.read_op(kObjects - 1));
  EXPECT_EQ(resumed.last_tag, last_write_tag)
      << "read-your-writes across the router restart";

  ASSERT_TRUE(cluster_->await_convergence(20s));
  consistency::History history;
  for (auto& op : phase1) history.record(std::move(op));
  for (auto& op : resumed.ops) history.record(std::move(op));
  run_checkers(history, final_reads());
  EXPECT_EQ(cluster_->total_error_events(), 0u);
}

}  // namespace
}  // namespace causalec::frontdoor
