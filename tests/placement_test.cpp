// Tests for the placement / latency analytics module -- these pin the
// Sec. 1.1 numbers that Fig. 2 is built from.
#include <gtest/gtest.h>

#include "erasure/codes.h"
#include "placement/latency_eval.h"
#include "placement/rtt_matrix.h"

namespace causalec::placement {
namespace {

TEST(RttMatrixTest, MatchesFig1) {
  const auto& rtt = six_dc_rtt_ms();
  ASSERT_EQ(rtt.size(), 6u);
  EXPECT_EQ(rtt[kSeoul][kMumbai], 120);
  EXPECT_EQ(rtt[kIreland][kLondon], 13);
  EXPECT_EQ(rtt[kNCalifornia][kOregon], 22);
  EXPECT_EQ(rtt[kSeoul][kLondon], 240);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(rtt[i][i], 0);
    for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(rtt[i][j], rtt[j][i]);
  }
}

TEST(PartialReplicationSearchTest, ReproducesPaperOptimum) {
  // Sec. 1.1: the best partial replication scheme (4 groups over 6 DCs,
  // one group per DC) has worst-case latency 228 ms; the paper's example
  // placement averages 88.25 ms. Our search ties the worst case and finds
  // a slightly better average (87.08 ms) -- see EXPERIMENTS.md.
  const auto result =
      brute_force_partial_replication(six_dc_rtt_ms(), 4);
  EXPECT_EQ(result.worst_read_latency_ms, 228);
  EXPECT_LE(result.avg_read_latency_ms, 88.25 + 0.01);
  EXPECT_NEAR(result.avg_read_latency_ms, 87.08, 0.5);
}

TEST(IntraObjectTest, ReproducesPaperNumbers) {
  // Sec. 1.1: RS(6,4) intra-object coding has worst-case 138 ms; the paper
  // reports an average of 132.5 ms (our exact evaluation gives 131).
  const auto result = evaluate_intra_object_rs(six_dc_rtt_ms(), 4);
  EXPECT_EQ(result.worst_read_latency_ms, 138);
  EXPECT_NEAR(result.avg_read_latency_ms, 132.5, 2.0);
  // Every read pays at least the nearest-neighbor floor (cf. "a minimum
  // latency of 121 ms is incurred" for Mumbai).
  EXPECT_GE(result.avg_read_latency_ms, 100);
}

TEST(CrossObjectTest, ReproducesPaperNumbers) {
  // Sec. 1.1 claims worst-case 138 ms / average 87.5 ms for the
  // cross-object scheme. Evaluating the paper's placement over the
  // *published* Fig. 1 matrix yields worst 146 ms / average 87.92 ms: the
  // binding cell is N. California reading group 2, whose best recovery set
  // is {London} at the published RTT of 146 ms. Substituting 136 ms for
  // that single RTT reproduces the paper's 138 / 87.5 exactly, so the
  // paper evidently computed Fig. 2 from a slightly different measurement
  // of the N.California-London link than Fig. 1 prints (EXPERIMENTS.md).
  const auto code = erasure::make_six_dc_cross_object(64);
  const auto eval = evaluate_code(*code, six_dc_rtt_ms(), "cross-object");
  EXPECT_EQ(eval.worst_read_latency_ms, 146);
  EXPECT_NEAR(eval.avg_read_latency_ms, 87.92, 0.01);

  // With the corrected link the published numbers come out exactly.
  auto rtt = six_dc_rtt_ms();
  rtt[kNCalifornia][kLondon] = rtt[kLondon][kNCalifornia] = 136;
  const auto fixed = evaluate_code(*code, rtt, "cross-object-136");
  EXPECT_EQ(fixed.worst_read_latency_ms, 138);
  EXPECT_NEAR(fixed.avg_read_latency_ms, 87.5, 0.01);
}

TEST(CrossObjectTest, BeatsIntraObjectOnAverageAtSameWorstCase) {
  const auto code = erasure::make_six_dc_cross_object(64);
  const auto cross = evaluate_code(*code, six_dc_rtt_ms(), "cross");
  const auto intra = evaluate_intra_object_rs(six_dc_rtt_ms(), 4);
  const auto partial = brute_force_partial_replication(six_dc_rtt_ms(), 4);
  // The Fig. 2 ordering: cross-object is near intra-object's worst case
  // (146 vs 138 -- see ReproducesPaperNumbers for the 8 ms discrepancy
  // with the published table)...
  EXPECT_LE(cross.worst_read_latency_ms, intra.worst_read_latency_ms + 8);
  // ...while matching partial replication's average...
  EXPECT_LE(cross.avg_read_latency_ms, partial.avg_read_latency_ms + 1.0);
  // ...and both erasure schemes beat partial replication's worst case by
  // a wide margin.
  EXPECT_LT(cross.worst_read_latency_ms, partial.worst_read_latency_ms - 80);
  EXPECT_LT(intra.worst_read_latency_ms, partial.worst_read_latency_ms - 80);
  // Intra-object pays for it with a far worse average (the 121 ms floor).
  EXPECT_GT(intra.avg_read_latency_ms, cross.avg_read_latency_ms + 40);
}

TEST(EvaluateCodeTest, ReplicationIsAllLocal) {
  const auto code = erasure::make_replication(6, 4, 8);
  const auto eval = evaluate_code(*code, six_dc_rtt_ms(), "replication");
  EXPECT_EQ(eval.worst_read_latency_ms, 0);
  EXPECT_EQ(eval.avg_read_latency_ms, 0);
  EXPECT_EQ(eval.read_comm_B, 0);
}

TEST(EvaluateCodeTest, ReadBytesCountRemoteSymbols) {
  const auto code = erasure::make_six_dc_cross_object(64);
  const auto& rtt = six_dc_rtt_ms();
  // Ireland reads G1 locally: zero bytes.
  EXPECT_EQ(read_bytes_B(*code, rtt, kIreland, 0), 0);
  EXPECT_EQ(read_latency_ms(*code, rtt, kIreland, 0), 0);
  // Seoul reads G1 via {Seoul, Oregon}: one remote symbol.
  EXPECT_EQ(read_bytes_B(*code, rtt, kSeoul, 0), 1);
  EXPECT_EQ(read_latency_ms(*code, rtt, kSeoul, 0), 126);
  // Mumbai reads G1 from Ireland's uncoded copy: one remote symbol.
  EXPECT_EQ(read_bytes_B(*code, rtt, kMumbai, 0), 1);
  EXPECT_EQ(read_latency_ms(*code, rtt, kMumbai, 0), 121);
}

TEST(PartialReplicationSearchTest, TwoGroupsDegenerate) {
  // Sanity on a small instance: 2 groups over 6 DCs; every DC hosts one
  // group, so at least 3 DCs per group -> small latencies.
  const auto result = brute_force_partial_replication(six_dc_rtt_ms(), 2);
  EXPECT_LE(result.worst_read_latency_ms, 138);
  ASSERT_EQ(result.placement.size(), 6u);
}

}  // namespace
}  // namespace causalec::placement
