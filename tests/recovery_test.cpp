// Crash-recovery integration tests (DESIGN.md §9): kill-restart-rejoin on
// the simulated cluster and on real threads. The oracles are the
// equivalence property (a crash+recover run converges to the same final
// store state as a fault-free run), correct reads at the recovered server
// after mid-operation restarts (read fan-out, GC, non-empty InQueue), and
// the recovery counters/metrics.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "obs/metrics.h"
#include "persist/backend.h"
#include "runtime/threaded_cluster.h"
#include "sim/latency.h"

namespace causalec {
namespace {

using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

void fnv_bytes(std::uint64_t& h, const std::uint8_t* data, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
}

// Reads object `x` at `client` to completion; returns the value.
Value read_blocking(Cluster& cluster, Client& client, ObjectId x) {
  Value result;
  bool done = false;
  client.read(x, [&](const Value& v, const Tag&, const VectorClock&) {
    result = v;
    done = true;
  });
  for (int i = 0; i < 300 && !done; ++i) {
    cluster.run_for(10 * kMillisecond);
  }
  EXPECT_TRUE(done) << "read of X" << x << " never completed";
  return result;
}

// Satellite: the equivalence property. One scripted workload, run twice --
// once fault-free, once with a crash+recover of a non-home server in the
// middle -- must leave every server reading the identical final values.
// Sessions own disjoint objects, so the per-object LWW winner is fixed by
// the script and the two runs are comparable value-for-value.
//
// Returns the FNV-1a hash over (server, object, value bytes) of a full
// read-back at every server.
std::uint64_t run_equivalence_scenario(bool with_crash_recover) {
  constexpr std::size_t kN = 5, kK = 3;
  constexpr std::uint32_t kBytes = 8;
  persist::MemoryBackend backend;
  ClusterConfig config;
  config.seed = 11;
  config.gc_period = 20 * kMillisecond;
  config.persistence = &backend;
  config.snapshot_period = 60 * kMillisecond;
  Cluster cluster(erasure::make_systematic_rs(kN, kK, kBytes),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);

  std::vector<Client*> owners;
  for (NodeId s = 0; s < kK; ++s) owners.push_back(&cluster.make_client(s));

  for (int round = 0; round < 20; ++round) {
    if (with_crash_recover && round == 8) cluster.halt_server(4);
    if (with_crash_recover && round == 14) cluster.recover_server(4);
    for (ObjectId x = 0; x < kK; ++x) {
      owners[x]->write(
          x, Value(kBytes, static_cast<std::uint8_t>(round * 8 + x)));
    }
    cluster.run_for(10 * kMillisecond);
  }
  cluster.settle();

  std::uint64_t h = 14695981039346656037ull;
  for (NodeId s = 0; s < kN; ++s) {
    Client& reader = cluster.make_client(s);
    for (ObjectId x = 0; x < kK; ++x) {
      const Value v = read_blocking(cluster, reader, x);
      fnv_bytes(h, reinterpret_cast<const std::uint8_t*>(&s), sizeof(s));
      fnv_bytes(h, reinterpret_cast<const std::uint8_t*>(&x), sizeof(x));
      fnv_bytes(h, v.data(), v.size());
    }
    EXPECT_EQ(cluster.server(s).counters().error1_events, 0u);
    EXPECT_EQ(cluster.server(s).counters().error2_events, 0u);
  }
  if (with_crash_recover) {
    EXPECT_EQ(cluster.server(4).counters().recoveries, 1u);
  }
  return h;
}

TEST(RecoveryEquivalenceTest, CrashRecoverRunMatchesFaultFreeFinalState) {
  const std::uint64_t fault_free = run_equivalence_scenario(false);
  const std::uint64_t crashed = run_equivalence_scenario(true);
  EXPECT_EQ(fault_free, crashed)
      << "a recovered server diverged from the fault-free final state";
}

// The basic kill-restart-rejoin round: writes before and during the
// outage; the recovered server must catch up via rejoin pushes (not by
// message replay -- those frames were dropped while it was down).
TEST(RecoveryTest, RecoveredServerCatchesUpOnMissedWrites) {
  persist::MemoryBackend backend;
  ClusterConfig config;
  config.gc_period = 20 * kMillisecond;
  config.persistence = &backend;
  config.snapshot_period = 50 * kMillisecond;
  Cluster cluster(erasure::make_systematic_rs(5, 3, 8),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);
  auto& writer = cluster.make_client(0);
  writer.write(0, Value(8, 1));
  writer.write(1, Value(8, 2));
  cluster.run_for(300 * kMillisecond);  // past a snapshot checkpoint

  cluster.halt_server(4);
  writer.write(0, Value(8, 11));  // missed by server 4
  writer.write(2, Value(8, 12));
  cluster.run_for(100 * kMillisecond);

  cluster.recover_server(4);
  cluster.settle();

  const ServerCounters& counters = cluster.server(4).counters();
  EXPECT_EQ(counters.recoveries, 1u);
  EXPECT_GE(counters.rejoin_pushes_received, 1u);
  EXPECT_GT(counters.catchup_bytes, 0u);
  EXPECT_FALSE(cluster.server(4).recovering());

  Client& reader = cluster.make_client(4);
  EXPECT_EQ(read_blocking(cluster, reader, 0), Value(8, 11));
  EXPECT_EQ(read_blocking(cluster, reader, 1), Value(8, 2));
  EXPECT_EQ(read_blocking(cluster, reader, 2), Value(8, 12));
  EXPECT_EQ(counters.error1_events, 0u);
  EXPECT_EQ(counters.error2_events, 0u);
}

// Rejoin catch-up through repair plans (DESIGN.md §5.4): under
// RejoinCatchup::kRepairPlan the recovering node pulls only from the
// symbol-repair helper set instead of every peer. Runs one scripted
// crash+recover round and returns the recovered server's counters.
ServerCounters run_rejoin_catchup_scenario(RejoinCatchup mode) {
  persist::MemoryBackend backend;
  ClusterConfig config;
  config.gc_period = 20 * kMillisecond;
  config.persistence = &backend;
  config.snapshot_period = 50 * kMillisecond;
  config.server.rejoin_catchup = mode;
  // Azure-LRC(6,2,2): server 0's symbol repairs from its 3-member local
  // group, so the helper set is 3 of the 9 peers.
  Cluster cluster(erasure::make_azure_lrc_6_2_2(8),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);
  auto& writer = cluster.make_client(1);
  for (ObjectId x = 0; x < 6; ++x) {
    writer.write(x, Value(8, static_cast<std::uint8_t>(1 + x)));
  }
  cluster.run_for(300 * kMillisecond);  // past a snapshot checkpoint

  cluster.halt_server(0);
  for (ObjectId x = 0; x < 6; ++x) {  // all missed by server 0
    writer.write(x, Value(8, static_cast<std::uint8_t>(101 + x)));
  }
  cluster.run_for(100 * kMillisecond);

  cluster.recover_server(0);
  cluster.settle();

  // The recovered server serves the missed writes in either mode.
  Client& reader = cluster.make_client(0);
  for (ObjectId x = 0; x < 6; ++x) {
    EXPECT_EQ(read_blocking(cluster, reader, x),
              Value(8, static_cast<std::uint8_t>(101 + x)))
        << "object " << x;
  }
  const ServerCounters& counters = cluster.server(0).counters();
  EXPECT_EQ(counters.recoveries, 1u);
  EXPECT_FALSE(cluster.server(0).recovering());
  EXPECT_EQ(counters.error1_events, 0u);
  EXPECT_EQ(counters.error2_events, 0u);
  return counters;
}

TEST(RecoveryTest, RepairPlanRejoinShrinksCatchupTraffic) {
  const ServerCounters pull_all =
      run_rejoin_catchup_scenario(RejoinCatchup::kPullAll);
  const ServerCounters repair_plan =
      run_rejoin_catchup_scenario(RejoinCatchup::kRepairPlan);

  // Pull-all pulls from every peer and never counts helper pulls.
  EXPECT_EQ(pull_all.rejoin_helper_pulls, 0u);
  EXPECT_GE(pull_all.rejoin_pushes_received, 1u);

  // Repair-plan mode pulls from the 3-member helper set only, and the
  // catch-up traffic shrinks accordingly.
  EXPECT_EQ(repair_plan.rejoin_helper_pulls, 3u);
  EXPECT_GE(repair_plan.rejoin_pushes_received, 1u);
  EXPECT_LT(repair_plan.rejoin_pushes_received,
            pull_all.rejoin_pushes_received);
  EXPECT_GT(repair_plan.catchup_bytes, 0u);
  EXPECT_LT(repair_plan.catchup_bytes, pull_all.catchup_bytes);
}

// Satellite: mid-operation restart during a read fan-out. The footnote-14
// scenario from fault_injection_test, extended with recovery: the nearest
// recovery set's serving member crashes with the val_inq in flight (the
// reader must fall back to broadcast), then the member comes back and must
// serve reads again itself.
TEST(RecoveryTest, CrashDuringReadFanoutThenRecover) {
  persist::MemoryBackend backend;
  ClusterConfig config;
  config.gc_period = 10 * kMillisecond;
  config.persistence = &backend;
  config.server.fanout = ReadFanout::kNearestRecoverySet;
  config.proximity_matrix.assign(6, std::vector<double>(6, 0.0));
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = 0; j < 6; ++j) {
      config.proximity_matrix[i][j] = (i == j) ? 0.0 : 1.0 + j;
    }
  }
  // Server 1 stores X1 uncoded, so {1} is server 5's closest recovery set.
  config.proximity_matrix[5] = {1.0, 1.1, 1.2, 9.0, 9.5, 0.0};
  Cluster cluster(erasure::make_systematic_rs(6, 3, 8),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);

  auto& writer = cluster.make_client(1);
  const Tag written = writer.write(1, Value(8, 77));
  cluster.settle();
  ASSERT_TRUE(cluster.storage_converged());

  bool done = false;
  cluster.make_client(5).read(
      1, [&](const Value& v, const Tag& tag, const VectorClock&) {
        done = true;
        EXPECT_EQ(v, Value(8, 77));
        EXPECT_EQ(tag, written);
      });
  ASSERT_FALSE(done) << "read was served locally; the scenario needs the "
                        "remote path";
  cluster.halt_server(1);  // val_inq to server 1 is now in flight to a corpse
  cluster.run_for(2 * kSecond);
  EXPECT_TRUE(done) << "read hung after its recovery set crashed";

  // The crashed responder comes back and serves the same object again.
  cluster.recover_server(1);
  cluster.settle();
  EXPECT_EQ(cluster.server(1).counters().recoveries, 1u);
  Client& reader = cluster.make_client(1);
  EXPECT_EQ(read_blocking(cluster, reader, 1), Value(8, 77));
  EXPECT_EQ(cluster.server(1).counters().error1_events, 0u);
  EXPECT_EQ(cluster.server(1).counters().error2_events, 0u);
}

// Satellite: restart straight after a forced garbage-collection pass. The
// snapshot/WAL must capture the post-GC state (codeword re-encoded, history
// pruned, del lists advanced) such that the restart does not resurrect
// collected versions or lose the surviving ones.
TEST(RecoveryTest, CrashRightAfterForcedGcThenRecover) {
  persist::MemoryBackend backend;
  ClusterConfig config;
  config.gc_period = 15 * kMillisecond;
  config.persistence = &backend;
  config.snapshot_period = 40 * kMillisecond;
  Cluster cluster(erasure::make_systematic_rs(6, 4, 8),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);
  auto& writer = cluster.make_client(0);
  writer.write(1, Value(8, 42));
  writer.write(3, Value(8, 43));
  cluster.run_for(200 * kMillisecond);

  cluster.server(2).run_garbage_collection();  // forced, then immediate crash
  cluster.halt_server(2);
  writer.write(1, Value(8, 52));  // missed
  cluster.run_for(100 * kMillisecond);

  cluster.recover_server(2);
  cluster.settle();
  EXPECT_TRUE(cluster.storage_converged());
  Client& reader = cluster.make_client(2);
  EXPECT_EQ(read_blocking(cluster, reader, 1), Value(8, 52));
  EXPECT_EQ(read_blocking(cluster, reader, 3), Value(8, 43));
  EXPECT_EQ(cluster.server(2).counters().error1_events, 0u);
  EXPECT_EQ(cluster.server(2).counters().error2_events, 0u);
}

// Satellite: restart with a non-empty InQueue. A slow channel (0 -> 3)
// keeps X0's app away from server 3, so the causally-dependent X1 write
// parks in its InQueue (snapshot must carry it). The crash then swallows
// the delayed X0 app -- only the rejoin push can supply the missing write,
// after which the parked entry applies and both objects read correctly.
TEST(RecoveryTest, CrashWithNonEmptyInQueueCatchesUpViaRejoinPush) {
  persist::MemoryBackend backend;
  ClusterConfig config;
  config.gc_period = 25 * kMillisecond;
  config.persistence = &backend;
  config.snapshot_period = 30 * kMillisecond;
  Cluster cluster(erasure::make_systematic_rs(5, 3, 8),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);
  cluster.sim().add_channel_delay(0, 3, 800 * kMillisecond);

  auto& alice = cluster.make_client(0);
  alice.write(0, Value(8, 7));
  cluster.run_for(30 * kMillisecond);

  // Bob reads X0 (establishing the dependency), then writes X1: at server 3
  // the X1 app arrives before X0's and must wait in the InQueue.
  auto& bob = cluster.make_client(1);
  EXPECT_EQ(read_blocking(cluster, bob, 0), Value(8, 7));
  bob.write(1, Value(8, 9));
  cluster.run_for(60 * kMillisecond);
  ASSERT_GT(cluster.server(3).storage().inqueue_entries, 0u)
      << "scenario setup failed: server 3's InQueue should hold the X1 app";

  cluster.halt_server(3);
  cluster.run_for(kSecond);  // the delayed X0 app hits a halted node: dropped

  cluster.recover_server(3);
  cluster.settle();
  const ServerCounters& counters = cluster.server(3).counters();
  EXPECT_GE(counters.rejoin_pushes_received, 1u);
  EXPECT_GT(counters.catchup_bytes, 0u);
  Client& reader = cluster.make_client(3);
  EXPECT_EQ(read_blocking(cluster, reader, 0), Value(8, 7));
  EXPECT_EQ(read_blocking(cluster, reader, 1), Value(8, 9));
  EXPECT_EQ(counters.error1_events, 0u);
  EXPECT_EQ(counters.error2_events, 0u);
}

// Repeated crash-recover cycles of the same server: each restart replays
// from the latest checkpoint and the rejoin epoch advances.
TEST(RecoveryTest, RepeatedRecoveriesOfTheSameServer) {
  persist::MemoryBackend backend;
  ClusterConfig config;
  config.gc_period = 20 * kMillisecond;
  config.persistence = &backend;
  config.snapshot_period = 50 * kMillisecond;
  Cluster cluster(erasure::make_systematic_rs(5, 3, 8),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);
  auto& writer = cluster.make_client(0);
  for (int cycle = 0; cycle < 3; ++cycle) {
    writer.write(0, Value(8, static_cast<std::uint8_t>(100 + cycle)));
    cluster.run_for(120 * kMillisecond);
    cluster.halt_server(4);
    writer.write(0, Value(8, static_cast<std::uint8_t>(200 + cycle)));
    cluster.run_for(60 * kMillisecond);
    cluster.recover_server(4);
    cluster.settle();
  }
  EXPECT_EQ(cluster.server(4).counters().recoveries, 3u);
  Client& reader = cluster.make_client(4);
  EXPECT_EQ(read_blocking(cluster, reader, 0), Value(8, 202));
  EXPECT_EQ(cluster.server(4).counters().error1_events, 0u);
  EXPECT_EQ(cluster.server(4).counters().error2_events, 0u);
}

// Satellite: the obs wiring. server.recoveries / server.catchup_bytes /
// server.recovery_duration_ns must land in the shared registry.
TEST(RecoveryTest, RecoveryMetricsAreRecorded) {
  persist::MemoryBackend backend;
  obs::MetricsRegistry registry;
  ClusterConfig config;
  config.persistence = &backend;
  config.obs.metrics = &registry;
  Cluster cluster(erasure::make_systematic_rs(5, 3, 8),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);
  auto& writer = cluster.make_client(0);
  writer.write(0, Value(8, 5));
  cluster.run_for(100 * kMillisecond);
  cluster.halt_server(4);
  writer.write(1, Value(8, 6));
  cluster.run_for(50 * kMillisecond);
  cluster.recover_server(4);
  cluster.settle();

  EXPECT_EQ(registry.counter("server.recoveries").value(), 1u);
  EXPECT_GT(registry.counter("server.catchup_bytes").value(), 0u);
  EXPECT_EQ(registry.histogram("server.recovery_duration_ns").count(), 1u);
}

// End-to-end durability through the filesystem backend: same rejoin round,
// but the snapshot + WAL actually live in files.
TEST(RecoveryTest, DirBackendEndToEnd) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("cec_recovery_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    persist::DirBackend backend(dir.string());
    ClusterConfig config;
    config.persistence = &backend;
    config.snapshot_period = 50 * kMillisecond;
    Cluster cluster(erasure::make_systematic_rs(5, 3, 8),
                    std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                    config);
    auto& writer = cluster.make_client(0);
    writer.write(0, Value(8, 21));
    cluster.run_for(200 * kMillisecond);
    cluster.halt_server(3);
    writer.write(0, Value(8, 22));
    cluster.run_for(80 * kMillisecond);
    cluster.recover_server(3);
    cluster.settle();
    Client& reader = cluster.make_client(3);
    EXPECT_EQ(read_blocking(cluster, reader, 0), Value(8, 22));
    EXPECT_FALSE((*backend.get("s3.snap")).empty());
  }
  std::filesystem::remove_all(dir);
}

// The real-thread runtime: stop a node (thread dies, traffic dropped),
// write on, restart it from the journal, and require full convergence plus
// correct reads at the restarted node.
TEST(ThreadedRecoveryTest, StopStartNodeCatchesUpAndConverges) {
  persist::MemoryBackend backend;
  runtime::ThreadedClusterConfig config;
  config.gc_period = std::chrono::milliseconds(10);
  config.persistence = &backend;
  config.snapshot_period = std::chrono::milliseconds(30);
  runtime::ThreadedCluster cluster(erasure::make_systematic_rs(5, 3, 16),
                                   config);

  for (int round = 0; round < 4; ++round) {
    for (ObjectId x = 0; x < 3; ++x) {
      cluster.write(x % 3, 100 + x, x,
                    Value(16, static_cast<std::uint8_t>(round * 8 + x)));
    }
  }
  ASSERT_TRUE(cluster.await_convergence(std::chrono::seconds(20)));

  cluster.stop_node(4);
  EXPECT_FALSE(cluster.node_running(4));
  for (ObjectId x = 0; x < 3; ++x) {
    cluster.write(x % 3, 200 + x, x,
                  Value(16, static_cast<std::uint8_t>(0xA0 + x)));
  }

  cluster.start_node(4);
  EXPECT_TRUE(cluster.node_running(4));
  ASSERT_TRUE(cluster.await_convergence(std::chrono::seconds(20)));

  for (ObjectId x = 0; x < 3; ++x) {
    const auto [value, tag] = cluster.read(4, 900 + x, x);
    EXPECT_EQ(value, Value(16, static_cast<std::uint8_t>(0xA0 + x)))
        << "restarted node served a stale X" << x;
  }
  EXPECT_EQ(cluster.total_error_events(), 0u);
}

TEST(ThreadedRecoveryTest, StopStartTwiceOnDirBackend) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("cec_threaded_recovery_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    persist::DirBackend backend(dir.string());
    runtime::ThreadedClusterConfig config;
    config.gc_period = std::chrono::milliseconds(10);
    config.persistence = &backend;
    config.snapshot_period = std::chrono::milliseconds(25);
    runtime::ThreadedCluster cluster(erasure::make_systematic_rs(5, 3, 8),
                                     config);
    for (int cycle = 0; cycle < 2; ++cycle) {
      cluster.write(0, 10 + cycle, 0,
                    Value(8, static_cast<std::uint8_t>(1 + cycle)));
      ASSERT_TRUE(cluster.await_convergence(std::chrono::seconds(20)));
      cluster.stop_node(3);
      cluster.write(1, 20 + cycle, 1,
                    Value(8, static_cast<std::uint8_t>(31 + cycle)));
      cluster.start_node(3);
      ASSERT_TRUE(cluster.await_convergence(std::chrono::seconds(20)));
    }
    const auto [v0, t0] = cluster.read(3, 90, 0);
    EXPECT_EQ(v0, Value(8, 2));
    const auto [v1, t1] = cluster.read(3, 91, 1);
    EXPECT_EQ(v1, Value(8, 32));
    EXPECT_EQ(cluster.total_error_events(), 0u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace causalec
