// Unit tests for the observability layer: JSON writer/validator, histogram
// bucket and percentile math, registry snapshots and merges, tracer export
// formats, bench reports, and time series.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/bench_report.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace causalec::obs {
namespace {

// --- JSON ----------------------------------------------------------------

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  std::ostringstream out;
  json_escape(out, "a\"b\\c\n\t\x01z");
  EXPECT_EQ(out.str(), "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
}

TEST(JsonTest, ValidatorAcceptsValidDocuments) {
  EXPECT_TRUE(is_valid_json("{}"));
  EXPECT_TRUE(is_valid_json("[]"));
  EXPECT_TRUE(is_valid_json("  {\"a\": [1, 2.5, -3e4, true, false, null], "
                            "\"b\": \"x\\u00e9\"}  "));
  EXPECT_TRUE(is_valid_json("-0.5"));
}

TEST(JsonTest, ValidatorRejectsInvalidDocuments) {
  EXPECT_FALSE(is_valid_json(""));
  EXPECT_FALSE(is_valid_json("{"));
  EXPECT_FALSE(is_valid_json("{\"a\": 1,}"));
  EXPECT_FALSE(is_valid_json("[1, 2] garbage"));
  EXPECT_FALSE(is_valid_json("{\"a\" 1}"));
  EXPECT_FALSE(is_valid_json("'single'"));
  EXPECT_FALSE(is_valid_json("{\"a\": 01}"));
  EXPECT_FALSE(is_valid_json("nulll"));
}

TEST(JsonTest, WriterProducesValidNestedJson) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("s");
  w.value("he said \"hi\"\n");
  w.key("n");
  w.value(-12.75);
  w.key("big");
  w.value(std::uint64_t{18446744073709551615ull});
  w.key("arr");
  w.begin_array();
  w.value(1);
  w.value(true);
  w.value_null();
  w.begin_object();
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(is_valid_json(out.str())) << out.str();
}

TEST(JsonTest, WriterEmitsNullForNonFiniteDoubles) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_array();
  w.value(std::nan(""));
  w.value(HUGE_VAL);
  w.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

// --- Histogram -----------------------------------------------------------

TEST(HistogramTest, BucketBoundsPartitionTheRange) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), 64u);
  // Buckets 0 and 1 both report lower bound 0 ({0} and {1} respectively);
  // from bucket 2 up, [lower, upper) tiles the range with no gaps.
  for (std::size_t i = 2; i < HistogramSnapshot::kBuckets; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower(i);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << i;
    if (i < 64) {
      EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(i) - 1), i);
      EXPECT_EQ(Histogram::bucket_lower(i + 1), Histogram::bucket_upper(i));
    }
  }
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  for (std::uint64_t v : {7u, 3u, 1000u, 0u, 3u}) h.observe(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 1013u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 1013.0 / 5.0);
}

TEST(HistogramTest, PercentilesAreBucketAccurate) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
  const HistogramSnapshot s = h.snapshot();
  // Log2 buckets bound the error by the bucket width: p must land inside
  // the bucket containing the exact rank.
  const double p50 = s.percentile(0.50);
  EXPECT_GE(p50, 256.0);  // exact rank 500 lives in [512, 1024); the
  EXPECT_LE(p50, 1024.0);  // interpolation may undershoot one bucket edge
  const double p99 = s.percentile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);  // clamped to observed max
  const double p0 = s.percentile(0.0);
  EXPECT_GE(p0, 1.0);  // clamped to observed min
  EXPECT_LE(p0, 2.0);  // rank 1 interpolates inside bucket [1, 2)
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 1000.0);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.percentile(0.5), 0.0);
}

TEST(HistogramTest, SnapshotMergeAdds) {
  Histogram a, b;
  a.observe(1);
  a.observe(100);
  b.observe(50);
  HistogramSnapshot s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 151u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
}

// --- Registry ------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(registry.snapshot().counters.at("x"), 5u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& c = registry.counter("shared");
      Histogram& h = registry.histogram("lat");
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot s = registry.snapshot();
  EXPECT_EQ(s.counters.at("shared"), kThreads * kPerThread);
  EXPECT_EQ(s.histograms.at("lat").count, kThreads * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotMergeAcrossRegistries) {
  MetricsRegistry a, b;
  a.counter("ops").inc(10);
  b.counter("ops").inc(5);
  b.counter("only_b").inc(1);
  a.gauge("depth").set(3);
  b.gauge("depth").set(7);
  a.histogram("lat").observe(100);
  b.histogram("lat").observe(200);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("ops"), 15u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_EQ(merged.gauges.at("depth"), 7);  // last writer wins
  EXPECT_EQ(merged.histograms.at("lat").count, 2u);
}

TEST(MetricsRegistryTest, JsonExportIsValid) {
  MetricsRegistry registry;
  registry.counter("net.messages").inc(42);
  registry.gauge("queue \"depth\"").set(-7);
  registry.histogram("lat").observe(12345);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_TRUE(is_valid_json(out.str())) << out.str();
  EXPECT_NE(out.str().find("causalec-metrics-v1"), std::string::npos);
}

// --- Tracer --------------------------------------------------------------

TEST(TracerTest, RecordsAndCountsEvents) {
  Tracer tracer;
  tracer.complete("write", 0, 1000, 500, {{"object", std::uint64_t{3}}});
  tracer.instant("msg.send", 1, 1200);
  const std::uint64_t id = tracer.begin_async("read.remote", 2, 1300);
  tracer.end_async("read.remote", 2, 2300, id);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.count("write"), 1u);
  EXPECT_EQ(tracer.count("read.remote"), 2u);
  EXPECT_EQ(tracer.count("read.remote", 'b'), 1u);
  EXPECT_EQ(tracer.count("read.remote", 'e'), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, AsyncIdsAreUnique) {
  Tracer tracer;
  const std::uint64_t a = tracer.begin_async("op", 0, 0);
  const std::uint64_t b = tracer.begin_async("op", 0, 0);
  EXPECT_NE(a, b);
}

TEST(TracerTest, CapacityBoundsMemory) {
  Tracer tracer(2);
  for (int i = 0; i < 5; ++i) tracer.instant("e", 0, i);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(TracerTest, ChromeTraceIsValidJson) {
  Tracer tracer;
  tracer.complete("write \"x\"", 0, 5000, 1000, {{"k", "v\n"}});
  tracer.instant("msg.send", 1, 6000, {{"bytes", std::uint64_t{128}}});
  const std::uint64_t id = tracer.begin_async("read", 2, 7000);
  tracer.end_async("read", 2, 9000, id);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(TracerTest, JsonlLinesAreEachValid) {
  Tracer tracer;
  tracer.instant("a", 0, 10);
  tracer.complete("b", 1, 20, 5);
  std::ostringstream out;
  tracer.write_jsonl(out);
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  std::string last;
  while (std::getline(in, line)) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    ++lines;
    last = line;
  }
  // Two event lines plus the trailing {"footer":...} accounting line.
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(last.find("\"footer\""), std::string::npos) << last;
}

// --- BenchReport ---------------------------------------------------------

TEST(BenchReportTest, EmitsValidSchema) {
  BenchReport report("unit \"test\"");
  report.set_config("value_bytes", std::size_t{4096});
  report.set_config("scheme", "RS(5,3)");
  report.set_config("smoke", true);
  report.set_config("rate", 2.5);
  report.add_row("row one")
      .metric("latency_ms", 12.5)
      .metric("ops", 1e6)
      .note("comment", "steady state");
  report.add_row("row two").metric("latency_ms", 9.25);
  std::ostringstream out;
  report.write_json(out);
  EXPECT_TRUE(is_valid_json(out.str())) << out.str();
  EXPECT_TRUE(is_valid_bench_report(out.str())) << out.str();
}

TEST(BenchReportTest, RejectsOtherSchemas) {
  EXPECT_FALSE(is_valid_bench_report("{}"));
  EXPECT_FALSE(is_valid_bench_report(
      "{\"schema\":\"other-v1\",\"bench\":\"x\",\"config\":{},\"rows\":[]}"));
  EXPECT_FALSE(is_valid_bench_report("not json"));
}

// --- TimeSeries ----------------------------------------------------------

TEST(TimeSeriesTest, RecordsRowsAndExports) {
  TimeSeries series({"a", "b"});
  series.record(100, 0, {1.0, 2.0});
  series.record(200, 1, {3.0, 4.0});
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.rows()[1].values[1], 4.0);

  std::ostringstream json;
  series.write_json(json);
  EXPECT_TRUE(is_valid_json(json.str())) << json.str();
  EXPECT_NE(json.str().find("causalec-timeseries-v1"), std::string::npos);

  std::ostringstream csv;
  series.write_csv(csv);
  EXPECT_EQ(csv.str(), "t_ns,node,a,b\n100,0,1,2\n200,1,3,4\n");
}

}  // namespace
}  // namespace causalec::obs
