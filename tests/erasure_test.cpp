// Unit tests for the erasure-code library: recovery sets (Def. 2), support
// sets (Def. 3), re-encoding functions (Def. 4), encode/decode round trips,
// and the code factories.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "erasure/codes.h"
#include "erasure/linear_code.h"
#include "gf/gf256.h"
#include "gf/prime_field.h"

namespace causalec::erasure {
namespace {

using GF = gf::GF256;

Value random_value(Rng& rng, std::size_t bytes) {
  Value v(bytes);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

/// For F257 values: bytes must decode to canonical field elements, so draw
/// through the field.
Value random_value_f257(Rng& rng, std::size_t bytes) {
  Value v(bytes, 0);
  for (std::size_t i = 0; i + 1 < bytes; i += 2) {
    const std::uint32_t e = gf::F257::from_int(rng.next_u64());
    v[i] = static_cast<std::uint8_t>(e & 0xFF);
    v[i + 1] = static_cast<std::uint8_t>(e >> 8);
  }
  return v;
}

std::vector<Value> random_values(Rng& rng, std::size_t k, std::size_t bytes) {
  std::vector<Value> vals;
  vals.reserve(k);
  for (std::size_t i = 0; i < k; ++i) vals.push_back(random_value(rng, bytes));
  return vals;
}

// ---------------------------------------------------------------------------
// The paper's (5,3) example code.
// ---------------------------------------------------------------------------

TEST(Paper53CodeTest, MinimalRecoverySetsMatchPaper) {
  const auto code = make_paper_5_3(32);
  // Sec. 1.2 lists (1-indexed):
  //   R1 = {{1},{3,4,5},{2,3,4},{2,3,5}}
  //   R2 = {{2},{4,5},{1,3,4},{1,3,5}}
  //   R3 = {{3},{1,2,4},{1,2,5},{1,4,5}}
  const auto as_set = [](const std::vector<RecoverySet>& sets) {
    std::set<RecoverySet> out(sets.begin(), sets.end());
    return out;
  };
  EXPECT_EQ(as_set(code->recovery_sets(0)),
            (std::set<RecoverySet>{{0}, {2, 3, 4}, {1, 2, 3}, {1, 2, 4}}));
  EXPECT_EQ(as_set(code->recovery_sets(1)),
            (std::set<RecoverySet>{{1}, {3, 4}, {0, 2, 3}, {0, 2, 4}}));
  EXPECT_EQ(as_set(code->recovery_sets(2)),
            (std::set<RecoverySet>{{2}, {0, 1, 3}, {0, 1, 4}, {0, 3, 4}}));
}

TEST(Paper53CodeTest, SupportSets) {
  const auto code = make_paper_5_3(32);
  EXPECT_EQ(code->support(0), (std::vector<ObjectId>{0}));
  EXPECT_EQ(code->support(1), (std::vector<ObjectId>{1}));
  EXPECT_EQ(code->support(2), (std::vector<ObjectId>{2}));
  EXPECT_EQ(code->support(3), (std::vector<ObjectId>{0, 1, 2}));
  EXPECT_EQ(code->support(4), (std::vector<ObjectId>{0, 1, 2}));
  EXPECT_TRUE(code->contains(3, 1));
  EXPECT_FALSE(code->contains(0, 1));
}

TEST(Paper53CodeTest, LocalReads) {
  const auto code = make_paper_5_3(32);
  EXPECT_TRUE(code->is_local(0, 0));
  EXPECT_TRUE(code->is_local(1, 1));
  EXPECT_TRUE(code->is_local(2, 2));
  EXPECT_FALSE(code->is_local(3, 0));
  EXPECT_FALSE(code->is_local(0, 1));
}

TEST(Paper53CodeTest, EncodeDecodeEveryMinimalSet) {
  const auto code = make_paper_5_3(32);
  Rng rng(101);
  const std::vector<Value> values = {random_value_f257(rng, 32),
                                     random_value_f257(rng, 32),
                                     random_value_f257(rng, 32)};
  std::vector<Symbol> symbols;
  for (NodeId s = 0; s < 5; ++s) {
    symbols.push_back(code->encode(s, values));
  }
  for (ObjectId obj = 0; obj < 3; ++obj) {
    for (const auto& rs : code->recovery_sets(obj)) {
      std::vector<Symbol> subset;
      for (NodeId s : rs) subset.push_back(symbols[s]);
      EXPECT_EQ(code->decode(obj, rs, subset), values[obj])
          << "object " << obj;
    }
  }
}

TEST(Paper53CodeTest, UncodedServersStoreThePlainValue) {
  const auto code = make_paper_5_3(16);
  Rng rng(7);
  const std::vector<Value> values = {random_value_f257(rng, 16),
                                     random_value_f257(rng, 16),
                                     random_value_f257(rng, 16)};
  for (NodeId s = 0; s < 3; ++s) {
    EXPECT_EQ(code->encode(s, values), values[s]);
  }
}

// ---------------------------------------------------------------------------
// Re-encoding functions Gamma_{i,k} (Definition 4).
// ---------------------------------------------------------------------------

template <typename MakeValue>
void check_reencode_identities(const Code& code, Rng& rng, MakeValue mk) {
  const std::size_t k = code.num_objects();
  std::vector<Value> x, x_prime;
  for (std::size_t i = 0; i < k; ++i) x.push_back(mk(rng));
  for (ObjectId changed = 0; changed < k; ++changed) {
    x_prime = x;
    x_prime[changed] = mk(rng);
    for (NodeId s = 0; s < code.num_servers(); ++s) {
      const Symbol target = code.encode(s, x_prime);
      // Gamma(Phi(x), x_k, x'_k) == Phi(x').
      Symbol sym = code.encode(s, x);
      code.reencode(s, sym, changed, x[changed], x_prime[changed]);
      EXPECT_EQ(sym, target) << "server " << s << " object " << changed;
      // Two-step form: cancel then apply (the form CausalEC uses).
      sym = code.encode(s, x);
      code.reencode(s, sym, changed, x[changed], {});  // -> value 0
      code.reencode(s, sym, changed, {}, x_prime[changed]);
      EXPECT_EQ(sym, target);
      // Gamma with equal values is the identity.
      sym = code.encode(s, x);
      code.reencode(s, sym, changed, x[changed], x[changed]);
      EXPECT_EQ(sym, code.encode(s, x));
    }
  }
}

TEST(ReencodeTest, IdentitiesPaperCodeF257) {
  const auto code = make_paper_5_3(16);
  Rng rng(11);
  check_reencode_identities(*code, rng,
                            [](Rng& r) { return random_value_f257(r, 16); });
}

TEST(ReencodeTest, IdentitiesRsGf256) {
  const auto code = make_systematic_rs(7, 4, 24);
  Rng rng(13);
  check_reencode_identities(*code, rng,
                            [](Rng& r) { return random_value(r, 24); });
}

TEST(ReencodeTest, IdentitiesRandomCodes) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto code = make_random_code(seed, 6, 4, 8, 0.5);
    Rng rng(seed * 1000);
    check_reencode_identities(*code, rng,
                              [](Rng& r) { return random_value(r, 8); });
  }
}

TEST(ReencodeTest, NonSupportObjectIsNoOp) {
  const auto code = make_paper_5_3_gf256(16);
  Rng rng(17);
  const auto values = random_values(rng, 3, 16);
  Symbol sym = code->encode(0, values);  // server 0 stores only X1
  const Symbol before = sym;
  code->reencode(0, sym, 1, values[1], random_value(rng, 16));
  EXPECT_EQ(sym, before);
}

// ---------------------------------------------------------------------------
// Factories.
// ---------------------------------------------------------------------------

TEST(CodesTest, ReplicationEveryServerIsLocalForEverything) {
  const auto code = make_replication(4, 3, 8);
  for (NodeId s = 0; s < 4; ++s) {
    EXPECT_EQ(code->symbol_bytes(s), 3u * 8u);
    for (ObjectId k = 0; k < 3; ++k) EXPECT_TRUE(code->is_local(s, k));
  }
  // Minimal recovery set for every object is every singleton.
  for (ObjectId k = 0; k < 3; ++k) {
    EXPECT_EQ(code->recovery_sets(k).size(), 4u);
  }
}

TEST(CodesTest, ReplicationRoundTrip) {
  const auto code = make_replication(3, 2, 8);
  Rng rng(3);
  const auto values = random_values(rng, 2, 8);
  for (NodeId s = 0; s < 3; ++s) {
    const auto sym = code->encode(s, values);
    ASSERT_EQ(sym.size(), 16u);
    EXPECT_TRUE(std::equal(values[0].begin(), values[0].end(), sym.begin()));
    EXPECT_TRUE(std::equal(values[1].begin(), values[1].end(),
                           sym.begin() + 8));
    const NodeId servers[] = {s};
    const Symbol syms[] = {sym};
    EXPECT_EQ(code->decode(0, servers, syms), values[0]);
    EXPECT_EQ(code->decode(1, servers, syms), values[1]);
  }
}

TEST(CodesTest, PartialReplicationPlacement) {
  // The Sec. 1.1 partial replication optimum: X1 at {0,2}, X2 at {1,3},
  // X3 at {4}, X4 at {5}.
  const auto code = make_partial_replication(
      {{0}, {1}, {0}, {1}, {2}, {3}}, 4, 8);
  EXPECT_TRUE(code->is_local(0, 0));
  EXPECT_TRUE(code->is_local(2, 0));
  EXPECT_FALSE(code->is_local(1, 0));
  EXPECT_TRUE(code->is_local(4, 2));
  EXPECT_EQ(code->symbol_bytes(0), 8u);
  // X3 recoverable only from server 4.
  EXPECT_EQ(code->recovery_sets(2),
            (std::vector<RecoverySet>{{4}}));
}

TEST(CodesTest, SystematicRsIsMds) {
  for (auto [n, k] : {std::pair<std::size_t, std::size_t>{5, 3},
                      {6, 4},
                      {7, 3},
                      {9, 5}}) {
    const auto code = make_systematic_rs(n, k, 8);
    EXPECT_TRUE(is_mds(*code)) << "RS(" << n << "," << k << ")";
  }
}

TEST(CodesTest, SystematicRsSystematicPart) {
  const auto code = make_systematic_rs(6, 4, 8);
  Rng rng(23);
  const auto values = random_values(rng, 4, 8);
  for (NodeId s = 0; s < 4; ++s) {
    EXPECT_EQ(code->encode(s, values), values[s]);
    EXPECT_TRUE(code->is_local(s, s));
  }
  // Parity servers depend on everything.
  EXPECT_EQ(code->support(4).size(), 4u);
  EXPECT_EQ(code->support(5).size(), 4u);
}

TEST(CodesTest, SystematicRsDecodeFromAnyK) {
  const auto code = make_systematic_rs(6, 4, 16);
  Rng rng(29);
  const auto values = random_values(rng, 4, 16);
  std::vector<Symbol> symbols;
  for (NodeId s = 0; s < 6; ++s) symbols.push_back(code->encode(s, values));
  // Parity-only decode: servers {2,3,4,5}.
  const std::vector<NodeId> servers = {2, 3, 4, 5};
  std::vector<Symbol> subset;
  for (NodeId s : servers) subset.push_back(symbols[s]);
  for (ObjectId k = 0; k < 4; ++k) {
    EXPECT_EQ(code->decode(k, servers, subset), values[k]);
  }
}

TEST(CodesTest, SixDcCrossObjectRecovery) {
  const auto code = make_six_dc_cross_object(8);
  // Seoul=0 (G1+G3), Mumbai=1 (G2+G4), Ireland=2 (G1), London=3 (G2),
  // NCal=4 (G4), Oregon=5 (G3).
  EXPECT_TRUE(code->is_local(2, 0));   // Ireland reads G1 locally
  EXPECT_TRUE(code->is_local(3, 1));
  EXPECT_TRUE(code->is_local(5, 2));
  EXPECT_TRUE(code->is_local(4, 3));
  EXPECT_FALSE(code->is_local(0, 0));  // Seoul stores G1 only coded
  // Seoul + Oregon recover G1 (y_S - y_O = g1).
  const std::vector<NodeId> so = {0, 5};
  EXPECT_TRUE(code->is_recovery_set(0, so));
  // Seoul alone recovers nothing.
  const std::vector<NodeId> s_only = {0};
  EXPECT_FALSE(code->is_recovery_set(0, s_only));
  EXPECT_FALSE(code->is_recovery_set(2, s_only));
}

TEST(CodesTest, DecodeToleratesSupersetAndExtraSymbols) {
  const auto code = make_paper_5_3_gf256(8);
  Rng rng(31);
  const auto values = random_values(rng, 3, 8);
  std::vector<Symbol> symbols;
  std::vector<NodeId> all = {0, 1, 2, 3, 4};
  for (NodeId s : all) symbols.push_back(code->encode(s, values));
  for (ObjectId k = 0; k < 3; ++k) {
    EXPECT_EQ(code->decode(k, all, symbols), values[k]);
  }
}

TEST(CodesTest, LrcLocalityAndRecovery) {
  // 6 objects, local groups of 3 (2 local parities), 2 global parities:
  // 10 servers total.
  const auto code = make_lrc(6, 3, 2, 8);
  EXPECT_EQ(code->num_servers(), 10u);
  EXPECT_EQ(code->num_objects(), 6u);
  // Reads are local at every data server.
  for (ObjectId x = 0; x < 6; ++x) EXPECT_TRUE(code->is_local(x, x));
  // A failed data server recovers from its small local group: object 1 is
  // recoverable from {0, 2, 6} (the other group members + local parity).
  const std::vector<NodeId> local_repair = {0, 2, 6};
  EXPECT_TRUE(code->is_recovery_set(1, local_repair));
  // The local parity of group 2 does not help group 1.
  const std::vector<NodeId> wrong_group = {0, 2, 7};
  EXPECT_FALSE(code->is_recovery_set(1, wrong_group));
  // Global parities cover multi-failure cases.
  const std::vector<NodeId> global_path = {0, 2, 3, 4, 5, 8, 9};
  EXPECT_TRUE(code->is_recovery_set(1, global_path));

  // Round trip through a local-repair decode.
  Rng rng(71);
  const auto values = random_values(rng, 6, 8);
  std::vector<Symbol> symbols;
  for (NodeId s : local_repair) symbols.push_back(code->encode(s, values));
  EXPECT_EQ(code->decode(1, local_repair, symbols), values[1]);
}

TEST(CodesTest, LrcSupportSets) {
  const auto code = make_lrc(4, 2, 1, 8);  // 4 data + 2 local + 1 global
  EXPECT_EQ(code->num_servers(), 7u);
  EXPECT_EQ(code->support(4), (std::vector<ObjectId>{0, 1}));  // local p1
  EXPECT_EQ(code->support(5), (std::vector<ObjectId>{2, 3}));  // local p2
  EXPECT_EQ(code->support(6).size(), 4u);                      // global
}

TEST(CodesTest, RandomCodesAlwaysRecoverable) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const auto code = make_random_code(seed, 5, 3, 8, 0.4);
    for (ObjectId k = 0; k < 3; ++k) {
      EXPECT_FALSE(code->recovery_sets(k).empty());
    }
    // Round trip through the full server set.
    Rng rng(seed);
    const auto values = random_values(rng, 3, 8);
    std::vector<NodeId> all = {0, 1, 2, 3, 4};
    std::vector<Symbol> symbols;
    for (NodeId s : all) symbols.push_back(code->encode(s, values));
    for (ObjectId k = 0; k < 3; ++k) {
      EXPECT_EQ(code->decode(k, all, symbols), values[k]);
    }
  }
}

TEST(CodesTest, RecoverySetsAreMinimalAndSorted) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto code = make_random_code(seed, 6, 3, 8, 0.5);
    for (ObjectId k = 0; k < 3; ++k) {
      const auto& sets = code->recovery_sets(k);
      for (const auto& s : sets) {
        EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
        // No set contains another.
        for (const auto& t : sets) {
          if (&s == &t) continue;
          EXPECT_FALSE(std::includes(s.begin(), s.end(), t.begin(), t.end()))
              << "recovery set contains another (not minimal)";
        }
      }
    }
  }
}

TEST(CodesTest, MdsRejectsNonMdsCode) {
  // The paper's cross-object 6-DC code is explicitly not MDS (footnote 6).
  EXPECT_FALSE(is_mds(*make_six_dc_cross_object(8)));
  EXPECT_FALSE(is_mds(*make_paper_5_3_gf256(8)));
}

TEST(CodesTest, DescribeMentionsParameters) {
  const auto code = make_systematic_rs(6, 4, 128);
  const auto desc = code->describe();
  EXPECT_NE(desc.find("N=6"), std::string::npos);
  EXPECT_NE(desc.find("K=4"), std::string::npos);
}

// Multi-row servers: one server storing two different parity combinations.
TEST(LinearCodeTest, MultiRowServer) {
  using M = linalg::Matrix<GF>;
  std::vector<M> per_server;
  per_server.push_back(M::from_rows({{1, 0}, {0, 1}}));  // stores x1 and x2
  per_server.push_back(M::from_rows({{1, 1}}));          // parity
  per_server.push_back(M::from_rows({{1, 2}}));          // parity
  const auto code = std::make_shared<LinearCodeT<GF>>(std::move(per_server),
                                                      8, "multi-row");
  EXPECT_EQ(code->symbol_bytes(0), 16u);
  EXPECT_EQ(code->symbol_bytes(1), 8u);
  EXPECT_TRUE(code->is_local(0, 0));
  EXPECT_TRUE(code->is_local(0, 1));
  Rng rng(37);
  const auto values = random_values(rng, 2, 8);
  std::vector<NodeId> parities = {1, 2};
  std::vector<Symbol> symbols = {code->encode(1, values),
                                 code->encode(2, values)};
  EXPECT_EQ(code->decode(0, parities, symbols), values[0]);
  EXPECT_EQ(code->decode(1, parities, symbols), values[1]);
}

TEST(LinearCodeTest, ZeroRowServerStoresNothing) {
  using M = linalg::Matrix<GF>;
  std::vector<M> per_server;
  per_server.push_back(M::from_rows({{1, 0}, {0, 1}}));
  per_server.push_back(M(0, 2));  // stores nothing
  const auto code = std::make_shared<LinearCodeT<GF>>(std::move(per_server),
                                                      8, "with-empty");
  EXPECT_EQ(code->symbol_bytes(1), 0u);
  EXPECT_TRUE(code->support(1).empty());
}

}  // namespace
}  // namespace causalec::erasure
