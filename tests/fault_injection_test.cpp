// Fault-injection integration tests: crashes and adversarial delays during
// live workloads. Safety oracles: the Error1/Error2 invariants (strict
// aborts), the causal-consistency checker over completed operations, and
// last-writer-wins convergence among surviving servers.
#include <gtest/gtest.h>

#include <memory>

#include "causalec/cluster.h"
#include "common/random.h"
#include "consistency/causal_checker.h"
#include "consistency/recorder.h"
#include "erasure/codes.h"
#include "sim/latency.h"

namespace causalec {
namespace {

using consistency::History;
using consistency::SessionRecorder;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

struct FaultParams {
  std::uint64_t seed;
  std::size_t n, k;
  std::size_t crashes;  // <= n - k (the tolerated budget for RS codes)
};

class FaultInjectionTest : public ::testing::TestWithParam<FaultParams> {};

TEST_P(FaultInjectionTest, CrashesMidWorkloadPreserveSafetyAndLiveness) {
  const auto& p = GetParam();
  ClusterConfig config;
  config.gc_period = 20 * kMillisecond;
  config.seed = p.seed;
  Cluster cluster(erasure::make_systematic_rs(p.n, p.k, 8),
                  std::make_unique<sim::UniformJitterLatency>(
                      8 * kMillisecond, 7 * kMillisecond, p.seed * 3 + 1),
                  config);
  History history;
  auto now = [&cluster] { return cluster.sim().now(); };

  Rng rng(p.seed);
  // Crash set: the lowest-id servers; all sessions attach to survivors.
  std::vector<std::unique_ptr<SessionRecorder>> sessions;
  for (NodeId s = static_cast<NodeId>(p.crashes); s < p.n; ++s) {
    sessions.push_back(std::make_unique<SessionRecorder>(
        &cluster.make_client(s), &history, now));
  }

  // Phase 1: healthy traffic.
  for (int op = 0; op < 80; ++op) {
    auto& session = *sessions[rng.next_below(sessions.size())];
    if (!session.busy()) {
      const ObjectId x = static_cast<ObjectId>(rng.next_below(p.k));
      if (rng.next_bool(0.5)) {
        session.write(x, Value(8, static_cast<std::uint8_t>(op)));
      } else {
        session.read(x);
      }
    }
    cluster.run_for(rng.next_below(8) * kMillisecond);
  }

  // Crash mid-flight.
  for (NodeId c = 0; c < p.crashes; ++c) cluster.halt_server(c);

  // Phase 2: traffic continues against survivors.
  for (int op = 0; op < 80; ++op) {
    auto& session = *sessions[rng.next_below(sessions.size())];
    if (!session.busy()) {
      const ObjectId x = static_cast<ObjectId>(rng.next_below(p.k));
      if (rng.next_bool(0.5)) {
        session.write(x, Value(8, static_cast<std::uint8_t>(op + 100)));
      } else {
        session.read(x);
      }
    }
    cluster.run_for(rng.next_below(8) * kMillisecond);
  }
  cluster.run_for(5 * kSecond);  // drain in-flight reads

  // Liveness: every issued read completed (crashes <= N-K, so recovery
  // sets survive among the live servers).
  for (const auto& session : sessions) {
    EXPECT_FALSE(session->busy()) << "a read never completed";
  }

  // Safety: the completed history is causally consistent.
  const auto causal = consistency::check_causal_consistency(history);
  EXPECT_TRUE(causal.ok) << causal.violations.front();
  const auto guarantees = consistency::check_session_guarantees(history);
  EXPECT_TRUE(guarantees.ok) << guarantees.violations.front();

  // Convergence among survivors: every survivor reads the LWW winner.
  History final_history;
  cluster.run_for(10 * kSecond);
  std::vector<consistency::OpRecord> finals;
  for (NodeId s = static_cast<NodeId>(p.crashes); s < p.n; ++s) {
    SessionRecorder reader(&cluster.make_client(s), &final_history, now);
    for (ObjectId x = 0; x < p.k; ++x) {
      reader.read(x);
      cluster.run_for(3 * kSecond);
    }
  }
  for (const auto& op : final_history.ops()) finals.push_back(op);
  EXPECT_EQ(finals.size(), (p.n - p.crashes) * p.k)
      << "some final read did not complete";
  const auto convergence = consistency::check_convergence(history, finals);
  EXPECT_TRUE(convergence.ok) << convergence.violations.front();

  // Invariants stayed intact at the survivors.
  for (NodeId s = static_cast<NodeId>(p.crashes); s < p.n; ++s) {
    EXPECT_EQ(cluster.server(s).counters().error1_events, 0u);
    EXPECT_EQ(cluster.server(s).counters().error2_events, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Crashes, FaultInjectionTest,
    ::testing::Values(FaultParams{21, 5, 3, 1}, FaultParams{22, 5, 3, 2},
                      FaultParams{23, 6, 4, 2}, FaultParams{24, 7, 4, 3},
                      FaultParams{25, 6, 3, 3}, FaultParams{26, 8, 5, 2}),
    [](const auto& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.n) + "k" +
             std::to_string(param_info.param.k) + "c" +
             std::to_string(param_info.param.crashes);
    });

TEST(FaultInjectionTest, AdversarialDelaysNeverBreakCausality) {
  // Random large per-channel delays reorder everything that FIFO allows.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ClusterConfig config;
    config.gc_period = 25 * kMillisecond;
    config.seed = seed;
    Cluster cluster(erasure::make_paper_5_3_gf256(8),
                    std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                    config);
    Rng rng(seed * 7);
    for (NodeId i = 0; i < 5; ++i) {
      for (NodeId j = 0; j < 5; ++j) {
        if (i != j && rng.next_bool(0.4)) {
          cluster.sim().add_channel_delay(
              i, j, rng.next_below(400) * kMillisecond);
        }
      }
    }
    History history;
    auto now = [&cluster] { return cluster.sim().now(); };
    std::vector<std::unique_ptr<SessionRecorder>> sessions;
    for (NodeId s = 0; s < 5; ++s) {
      sessions.push_back(std::make_unique<SessionRecorder>(
          &cluster.make_client(s), &history, now));
    }
    for (int op = 0; op < 120; ++op) {
      auto& session = *sessions[rng.next_below(sessions.size())];
      if (!session.busy()) {
        const ObjectId x = static_cast<ObjectId>(rng.next_below(3));
        if (rng.next_bool(0.5)) {
          session.write(x, Value(8, static_cast<std::uint8_t>(op)));
        } else {
          session.read(x);
        }
      }
      cluster.run_for(rng.next_below(20) * kMillisecond);
    }
    cluster.settle();
    EXPECT_TRUE(cluster.storage_converged()) << "seed " << seed;
    const auto causal = consistency::check_causal_consistency(history);
    EXPECT_TRUE(causal.ok) << "seed " << seed << ": "
                           << causal.violations.front();
  }
}

TEST(FaultInjectionTest, CrashDuringGcWindowDoesNotLoseData) {
  // Crash a server right after it announced deletions but before others
  // acted on them: survivors must still serve every object.
  ClusterConfig config;
  config.gc_period = 10 * kMillisecond;
  Cluster cluster(erasure::make_systematic_rs(6, 4, 8),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);
  auto& writer = cluster.make_client(0);
  const Tag t = writer.write(1, Value(8, 42));
  cluster.run_for(35 * kMillisecond);  // mid-GC: dels in flight
  cluster.halt_server(0);              // the writer's server dies
  cluster.halt_server(1);
  cluster.run_for(kSecond);

  bool done = false;
  cluster.make_client(5).read(
      1, [&](const Value& v, const Tag& tag, const VectorClock&) {
        done = true;
        EXPECT_EQ(v, Value(8, 42));
        EXPECT_EQ(tag, t);
      });
  cluster.run_for(5 * kSecond);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace causalec
