// Fault-injection integration tests: crashes and adversarial delays during
// live workloads. Safety oracles: the Error1/Error2 invariants (strict
// aborts), the causal-consistency checker over completed operations, and
// last-writer-wins convergence among surviving servers.
#include <gtest/gtest.h>

#include <memory>

#include "causalec/cluster.h"
#include "chaos/fault_plan.h"
#include "chaos/runner.h"
#include "common/random.h"
#include "consistency/causal_checker.h"
#include "consistency/recorder.h"
#include "erasure/codes.h"
#include "sim/latency.h"

namespace causalec {
namespace {

using consistency::History;
using consistency::SessionRecorder;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

struct FaultParams {
  std::uint64_t seed;
  std::size_t n, k;
  std::size_t crashes;  // <= n - k (the tolerated budget for RS codes)
};

class FaultInjectionTest : public ::testing::TestWithParam<FaultParams> {};

TEST_P(FaultInjectionTest, CrashesMidWorkloadPreserveSafetyAndLiveness) {
  const auto& p = GetParam();
  ClusterConfig config;
  config.gc_period = 20 * kMillisecond;
  config.seed = p.seed;
  Cluster cluster(erasure::make_systematic_rs(p.n, p.k, 8),
                  std::make_unique<sim::UniformJitterLatency>(
                      8 * kMillisecond, 7 * kMillisecond, p.seed * 3 + 1),
                  config);
  History history;
  auto now = [&cluster] { return cluster.sim().now(); };

  Rng rng(p.seed);
  // Crash set: the lowest-id servers; all sessions attach to survivors.
  std::vector<std::unique_ptr<SessionRecorder>> sessions;
  for (NodeId s = static_cast<NodeId>(p.crashes); s < p.n; ++s) {
    sessions.push_back(std::make_unique<SessionRecorder>(
        &cluster.make_client(s), &history, now));
  }

  // Phase 1: healthy traffic.
  for (int op = 0; op < 80; ++op) {
    auto& session = *sessions[rng.next_below(sessions.size())];
    if (!session.busy()) {
      const ObjectId x = static_cast<ObjectId>(rng.next_below(p.k));
      if (rng.next_bool(0.5)) {
        session.write(x, Value(8, static_cast<std::uint8_t>(op)));
      } else {
        session.read(x);
      }
    }
    cluster.run_for(rng.next_below(8) * kMillisecond);
  }

  // Crash mid-flight.
  for (NodeId c = 0; c < p.crashes; ++c) cluster.halt_server(c);

  // Phase 2: traffic continues against survivors.
  for (int op = 0; op < 80; ++op) {
    auto& session = *sessions[rng.next_below(sessions.size())];
    if (!session.busy()) {
      const ObjectId x = static_cast<ObjectId>(rng.next_below(p.k));
      if (rng.next_bool(0.5)) {
        session.write(x, Value(8, static_cast<std::uint8_t>(op + 100)));
      } else {
        session.read(x);
      }
    }
    cluster.run_for(rng.next_below(8) * kMillisecond);
  }
  cluster.run_for(5 * kSecond);  // drain in-flight reads

  // Liveness: every issued read completed (crashes <= N-K, so recovery
  // sets survive among the live servers).
  for (const auto& session : sessions) {
    EXPECT_FALSE(session->busy()) << "a read never completed";
  }

  // Safety: the completed history is causally consistent.
  const auto causal = consistency::check_causal_consistency(history);
  EXPECT_TRUE(causal.ok) << causal.violations.front();
  const auto guarantees = consistency::check_session_guarantees(history);
  EXPECT_TRUE(guarantees.ok) << guarantees.violations.front();

  // Convergence among survivors: every survivor reads the LWW winner.
  History final_history;
  cluster.run_for(10 * kSecond);
  std::vector<consistency::OpRecord> finals;
  for (NodeId s = static_cast<NodeId>(p.crashes); s < p.n; ++s) {
    SessionRecorder reader(&cluster.make_client(s), &final_history, now);
    for (ObjectId x = 0; x < p.k; ++x) {
      reader.read(x);
      cluster.run_for(3 * kSecond);
    }
  }
  for (const auto& op : final_history.ops()) finals.push_back(op);
  EXPECT_EQ(finals.size(), (p.n - p.crashes) * p.k)
      << "some final read did not complete";
  const auto convergence = consistency::check_convergence(history, finals);
  EXPECT_TRUE(convergence.ok) << convergence.violations.front();

  // Invariants stayed intact at the survivors.
  for (NodeId s = static_cast<NodeId>(p.crashes); s < p.n; ++s) {
    EXPECT_EQ(cluster.server(s).counters().error1_events, 0u);
    EXPECT_EQ(cluster.server(s).counters().error2_events, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Crashes, FaultInjectionTest,
    ::testing::Values(FaultParams{21, 5, 3, 1}, FaultParams{22, 5, 3, 2},
                      FaultParams{23, 6, 4, 2}, FaultParams{24, 7, 4, 3},
                      FaultParams{25, 6, 3, 3}, FaultParams{26, 8, 5, 2}),
    [](const auto& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.n) + "k" +
             std::to_string(param_info.param.k) + "c" +
             std::to_string(param_info.param.crashes);
    });

TEST(FaultInjectionTest, AdversarialDelaysNeverBreakCausality) {
  // Random large per-channel delays reorder everything that FIFO allows.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ClusterConfig config;
    config.gc_period = 25 * kMillisecond;
    config.seed = seed;
    Cluster cluster(erasure::make_paper_5_3_gf256(8),
                    std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                    config);
    Rng rng(seed * 7);
    for (NodeId i = 0; i < 5; ++i) {
      for (NodeId j = 0; j < 5; ++j) {
        if (i != j && rng.next_bool(0.4)) {
          cluster.sim().add_channel_delay(
              i, j, rng.next_below(400) * kMillisecond);
        }
      }
    }
    History history;
    auto now = [&cluster] { return cluster.sim().now(); };
    std::vector<std::unique_ptr<SessionRecorder>> sessions;
    for (NodeId s = 0; s < 5; ++s) {
      sessions.push_back(std::make_unique<SessionRecorder>(
          &cluster.make_client(s), &history, now));
    }
    for (int op = 0; op < 120; ++op) {
      auto& session = *sessions[rng.next_below(sessions.size())];
      if (!session.busy()) {
        const ObjectId x = static_cast<ObjectId>(rng.next_below(3));
        if (rng.next_bool(0.5)) {
          session.write(x, Value(8, static_cast<std::uint8_t>(op)));
        } else {
          session.read(x);
        }
      }
      cluster.run_for(rng.next_below(20) * kMillisecond);
    }
    cluster.settle();
    EXPECT_TRUE(cluster.storage_converged()) << "seed " << seed;
    const auto causal = consistency::check_causal_consistency(history);
    EXPECT_TRUE(causal.ok) << "seed " << seed << ": "
                           << causal.violations.front();
  }
}

TEST(FaultInjectionTest, CrashDuringGcWindowDoesNotLoseData) {
  // Crash a server right after it announced deletions but before others
  // acted on them: survivors must still serve every object.
  ClusterConfig config;
  config.gc_period = 10 * kMillisecond;
  Cluster cluster(erasure::make_systematic_rs(6, 4, 8),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);
  auto& writer = cluster.make_client(0);
  const Tag t = writer.write(1, Value(8, 42));
  cluster.run_for(35 * kMillisecond);  // mid-GC: dels in flight
  cluster.halt_server(0);              // the writer's server dies
  cluster.halt_server(1);
  cluster.run_for(kSecond);

  bool done = false;
  cluster.make_client(5).read(
      1, [&](const Value& v, const Tag& tag, const VectorClock&) {
        done = true;
        EXPECT_EQ(v, Value(8, 42));
        EXPECT_EQ(tag, t);
      });
  cluster.run_for(5 * kSecond);
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// FaultPlan-driven crashes: the same scenarios as above, but scripted
// through the chaos harness's scheduling API and gated by its full checker
// stack (causal, session guarantees incl. writes-follow-reads, Error1/2,
// convergence among survivors).
// ---------------------------------------------------------------------------

struct PlanParams {
  std::uint64_t seed;
  std::uint32_t n, k;
  std::vector<NodeId> crash_nodes;  // |crash_nodes| <= n - k
  bool nearest_fanout;
};

class FaultPlanDrivenTest : public ::testing::TestWithParam<PlanParams> {};

TEST_P(FaultPlanDrivenTest, ScriptedCrashesPreserveEveryGuarantee) {
  const auto& p = GetParam();
  chaos::FaultPlan plan;
  plan.seed = p.seed;
  plan.workload.num_servers = p.n;
  plan.workload.num_objects = p.k;
  plan.workload.sessions = 3;
  plan.workload.ops = 90;
  plan.nearest_fanout = p.nearest_fanout;
  SimTime at = 30 * kMillisecond;
  for (NodeId node : p.crash_nodes) {
    chaos::FaultEvent ev;
    ev.kind = chaos::FaultEvent::Kind::kCrash;
    ev.at = at;
    ev.node = node;
    plan.events.push_back(ev);
    at += 40 * kMillisecond;  // staggered, mid-workload
  }
  ASSERT_TRUE(plan.valid());
  ASSERT_LE(plan.crashed_nodes().size(), plan.crash_budget());

  const chaos::RunOutcome outcome = chaos::run_plan(plan);
  EXPECT_TRUE(outcome.ok) << outcome.violations.front();
  EXPECT_EQ(outcome.ops_completed, plan.workload.ops);
}

INSTANTIATE_TEST_SUITE_P(
    ScriptedCrashes, FaultPlanDrivenTest,
    ::testing::Values(PlanParams{101, 5, 3, {0}, false},
                      PlanParams{102, 5, 3, {4, 2}, false},
                      PlanParams{103, 6, 3, {0, 1, 2}, false},
                      PlanParams{104, 7, 4, {6, 0}, true},
                      PlanParams{105, 6, 4, {3}, true}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.n) + "k" +
             std::to_string(info.param.k) + "c" +
             std::to_string(info.param.crash_nodes.size()) +
             (info.param.nearest_fanout ? "_nearest" : "_broadcast");
    });

TEST(FaultInjectionTest, CrashedRecoverySetMemberTriggersBroadcastFallback) {
  // Footnote 14: a read under ReadFanout::kNearestRecoverySet contacts the
  // closest recovery set first. Crash that set's serving member while the
  // inquiry is in flight: the read must NOT hang -- after fanout_timeout it
  // restarts as a broadcast and decodes from the remaining servers.
  ClusterConfig config;
  config.gc_period = 10 * kMillisecond;
  config.server.fanout = ReadFanout::kNearestRecoverySet;
  // Proximity row of server 5 makes server 1 (which stores X1 uncoded, so
  // the minimal recovery set {1} wins) the closest helper by a clear
  // margin; servers 3/4 are "far".
  config.proximity_matrix.assign(6, std::vector<double>(6, 0.0));
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = 0; j < 6; ++j) {
      config.proximity_matrix[i][j] = (i == j) ? 0.0 : 1.0 + j;
    }
  }
  config.proximity_matrix[5] = {1.0, 1.1, 1.2, 9.0, 9.5, 0.0};
  Cluster cluster(erasure::make_systematic_rs(6, 3, 8),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);

  // Write X1, then settle: GC prunes every history list, so the follow-up
  // read at the parity server 5 must take the remote-inquiry path.
  auto& writer = cluster.make_client(1);
  const Tag written = writer.write(1, Value(8, 77));
  cluster.settle();
  ASSERT_TRUE(cluster.storage_converged());

  const SimTime started = cluster.sim().now();
  bool done = false;
  SimTime completed_at = 0;
  cluster.make_client(5).read(
      1, [&](const Value& v, const Tag& tag, const VectorClock&) {
        done = true;
        completed_at = cluster.sim().now();
        EXPECT_EQ(v, Value(8, 77));
        EXPECT_EQ(tag, written);
      });
  ASSERT_FALSE(done) << "read was served locally; the scenario needs the "
                        "remote path";
  // Crash the serving member while its val_inq is in flight.
  cluster.halt_server(1);
  cluster.run_for(2 * kSecond);

  EXPECT_TRUE(done) << "read hung after its recovery set crashed";
  // The completion had to ride the timeout fallback, not the first fanout.
  EXPECT_GE(completed_at - started,
            static_cast<SimTime>(config.server.fanout_timeout_ns));
  EXPECT_GE(cluster.server(5).counters().reads_registered_remote, 1u);
  EXPECT_EQ(cluster.server(5).counters().error1_events, 0u);
  EXPECT_EQ(cluster.server(5).counters().error2_events, 0u);
}

}  // namespace
}  // namespace causalec
