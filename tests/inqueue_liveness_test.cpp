// Regression test for DESIGN.md note 9: with head-only Apply_InQueue
// processing, a dependency that lands *behind* an incomparable entry can
// block the queue forever. pop_first_applicable must find it.
#include <gtest/gtest.h>

#include "causalec/inqueue.h"

namespace causalec {
namespace {

VectorClock vc(std::initializer_list<std::uint64_t> vals) {
  VectorClock clock(vals.size());
  std::size_t i = 0;
  for (auto v : vals) clock.set(i++, v);
  return clock;
}

InQueue::Entry entry(NodeId origin, std::initializer_list<std::uint64_t> ts) {
  return InQueue::Entry{origin, 0, erasure::Value{}, Tag(vc(ts), origin)};
}

/// The Alg. 3 line 4 predicate against a given local clock.
auto applicable_against(const VectorClock& local) {
  return [&local](const InQueue::Entry& e) {
    if (e.tag.ts[e.origin] != local[e.origin] + 1) return false;
    for (std::size_t p = 0; p < local.size(); ++p) {
      if (p != e.origin && e.tag.ts[p] > local[p]) return false;
    }
    return true;
  };
}

TEST(InQueueLivenessTest, DependencyBehindIncomparableEntryIsFound) {
  // Local clock all-zero. Three arrivals in order:
  //   h = write 3 from server 0 with ts [3,0,0] (needs [1.. and [2.. first)
  //   e = write from server 1 with ts [0,5,9]  (incomparable to everything
  //       relevant; blocked on server 2's history)
  //   d = write 1 from server 0 with ts [1,0,0] (h's transitive dependency)
  //
  // Insertion rule: h first; e stays behind h (incomparable); d bubbles
  // past nothing once it hits e (incomparable) -- so the order is h, e, d
  // and the *head* h is permanently inapplicable.
  InQueue q;
  q.insert(entry(0, {3, 0, 0}));
  q.insert(entry(1, {0, 5, 9}));
  q.insert(entry(0, {1, 0, 0}));

  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.head().tag.ts, vc({3, 0, 0}));  // the blocked head

  VectorClock local(3);
  const auto pred = applicable_against(local);
  // Head-only processing would deadlock here; the scan finds d.
  auto popped = q.pop_first_applicable(pred);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->tag.ts, vc({1, 0, 0}));
  local.set(0, 1);

  // Still nothing else applicable (h needs [2,...], e needs server 2).
  EXPECT_FALSE(q.pop_first_applicable(pred).has_value());
  EXPECT_EQ(q.size(), 2u);

  // Write 2 from server 0 arrives; the chain drains.
  q.insert(entry(0, {2, 0, 0}));
  popped = q.pop_first_applicable(pred);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->tag.ts, vc({2, 0, 0}));
  local.set(0, 2);
  popped = q.pop_first_applicable(pred);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->tag.ts, vc({3, 0, 0}));
  local.set(0, 3);

  // e remains, waiting on its own dependencies -- correct, not deadlock.
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.pop_first_applicable(pred).has_value());
}

TEST(InQueueLivenessTest, ScanPreservesQueueOrderOfSkippedEntries) {
  InQueue q;
  q.insert(entry(0, {2, 0}));
  q.insert(entry(1, {0, 1}));
  q.insert(entry(0, {1, 0}));
  VectorClock local(2);
  const auto pred = applicable_against(local);
  auto popped = q.pop_first_applicable(pred);  // either [0,1] or [1,0]
  ASSERT_TRUE(popped.has_value());
  // Both are applicable against a zero clock; the scan must return the one
  // closer to the head ([0,1] was inserted before [1,0] bubbled... the
  // bubble: [1,0] vs predecessor [0,1]: incomparable -> stays behind. So
  // head-to-tail order is [2,0], [0,1], [1,0] and the scan finds [0,1].
  EXPECT_EQ(popped->tag.ts, vc({0, 1}));
}

}  // namespace
}  // namespace causalec
