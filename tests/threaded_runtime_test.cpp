// Tests for the threaded runtime: the same server automaton on real OS
// threads with real serialized bytes crossing node boundaries.
//
// These tests use wall-clock time; horizons are kept small and generous so
// they are robust on loaded machines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "erasure/codes.h"
#include "runtime/threaded_cluster.h"

namespace causalec::runtime {
namespace {

using erasure::Value;
using namespace std::chrono_literals;

constexpr std::size_t kValueBytes = 64;

Value val(std::uint8_t fill) { return Value(kValueBytes, fill); }

TEST(ThreadedRuntimeTest, WriteThenReadEverywhere) {
  ThreadedClusterConfig config;
  config.gc_period = 10ms;
  ThreadedCluster cluster(erasure::make_systematic_rs(5, 3, kValueBytes),
                          config);
  const Tag t = cluster.write(0, /*client=*/1, /*object=*/2, val(42));
  EXPECT_EQ(t.ts[0], 1u);
  ASSERT_TRUE(cluster.await_convergence(5000ms));
  for (NodeId s = 0; s < 5; ++s) {
    const auto [value, tag] = cluster.read(s, /*client=*/10 + s, 2);
    EXPECT_EQ(value, val(42)) << "server " << s;
    EXPECT_EQ(tag, t) << "server " << s;
  }
  EXPECT_EQ(cluster.total_error_events(), 0u);
}

TEST(ThreadedRuntimeTest, StorageConvergesToCodePrescription) {
  ThreadedClusterConfig config;
  config.gc_period = 5ms;
  ThreadedCluster cluster(erasure::make_paper_5_3(kValueBytes), config);
  for (int i = 0; i < 10; ++i) {
    // F257 values: even bytes only.
    Value v(kValueBytes, 0);
    for (std::size_t b = 0; b < v.size(); b += 2) {
      v[b] = static_cast<std::uint8_t>(i + 1);
    }
    cluster.write(static_cast<NodeId>(i % 5), 1 + i % 3,
                  static_cast<ObjectId>(i % 3), std::move(v));
  }
  ASSERT_TRUE(cluster.await_convergence(5000ms));
  for (NodeId s = 0; s < 5; ++s) {
    const auto stats = cluster.storage(s);
    EXPECT_EQ(stats.history_entries, 0u) << "server " << s;
    EXPECT_EQ(stats.codeword_bytes, kValueBytes);
  }
  EXPECT_EQ(cluster.total_error_events(), 0u);
}

TEST(ThreadedRuntimeTest, ConcurrentWritersConvergeToOneWinner) {
  ThreadedClusterConfig config;
  config.gc_period = 5ms;
  ThreadedCluster cluster(erasure::make_systematic_rs(6, 4, kValueBytes),
                          config);
  // Four external threads hammer different servers concurrently.
  std::vector<std::thread> writers;
  std::atomic<int> sequence{0};
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&cluster, &sequence, w] {
      for (int i = 0; i < 25; ++i) {
        const int n = sequence.fetch_add(1);
        cluster.write(static_cast<NodeId>(w), /*client=*/100 + w,
                      /*object=*/1,
                      Value(kValueBytes, static_cast<std::uint8_t>(n)));
      }
    });
  }
  for (auto& t : writers) t.join();
  ASSERT_TRUE(cluster.await_convergence(10000ms));

  // Every server returns the same (LWW) winner.
  const auto [value0, tag0] = cluster.read(0, 200, 1);
  for (NodeId s = 1; s < 6; ++s) {
    const auto [value, tag] = cluster.read(s, 200 + s, 1);
    EXPECT_EQ(tag, tag0) << "server " << s;
    EXPECT_EQ(value, value0) << "server " << s;
  }
  EXPECT_EQ(cluster.total_error_events(), 0u);
}

TEST(ThreadedRuntimeTest, ConcurrentReadersDuringWrites) {
  ThreadedClusterConfig config;
  config.gc_period = 5ms;
  ThreadedCluster cluster(erasure::make_systematic_rs(5, 3, kValueBytes),
                          config);
  std::atomic<bool> stop{false};
  std::atomic<int> reads_done{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load()) {
        const auto [value, tag] =
            cluster.read(static_cast<NodeId>(r + 2), 300 + r,
                         static_cast<ObjectId>(r % 3));
        (void)value;
        (void)tag;
        reads_done.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 30; ++i) {
    cluster.write(static_cast<NodeId>(i % 5), 50, static_cast<ObjectId>(i % 3),
                  Value(kValueBytes, static_cast<std::uint8_t>(i)));
    std::this_thread::sleep_for(1ms);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads_done.load(), 10);
  ASSERT_TRUE(cluster.await_convergence(10000ms));
  EXPECT_EQ(cluster.total_error_events(), 0u);
}

TEST(ThreadedRuntimeTest, ConcurrentReadsShareDecodePlanCache) {
  // Many reader threads decoding through one shared Code instance: the
  // decoder-plan cache is hit concurrently from the server threads (TSan
  // covers the shared_mutex + shared_ptr handoff via the sanitizer suite).
  // Keeping our own CodePtr lets us inspect cache counters afterwards.
  const erasure::CodePtr code =
      erasure::make_six_dc_cross_object(kValueBytes);
  ThreadedClusterConfig config;
  config.gc_period = 5ms;
  ThreadedCluster cluster(code, config);
  for (ObjectId obj = 0; obj < 4; ++obj) {
    cluster.write(0, /*client=*/1, obj,
                  Value(kValueBytes, static_cast<std::uint8_t>(obj + 1)));
  }
  ASSERT_TRUE(cluster.await_convergence(10000ms));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      int i = 0;
      while (!stop.load()) {
        const auto [value, tag] =
            cluster.read(static_cast<NodeId>((r + i) % 6), 400 + r,
                         static_cast<ObjectId>(i % 4));
        EXPECT_EQ(value.size(), kValueBytes);
        ++i;
      }
    });
  }
  std::this_thread::sleep_for(50ms);
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(cluster.total_error_events(), 0u);

  // Each (object, server-set) shape is eliminated at most once; repeats hit.
  const auto stats = code->decode_plan_cache_stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(stats.entries, stats.misses);
}

TEST(ThreadedRuntimeTest, DirectMessagePassingModeWorksToo) {
  ThreadedClusterConfig config;
  config.gc_period = 5ms;
  config.serialize_messages = false;  // skip the codec
  ThreadedCluster cluster(erasure::make_systematic_rs(4, 2, kValueBytes),
                          config);
  const Tag t = cluster.write(0, 1, 0, val(7));
  ASSERT_TRUE(cluster.await_convergence(5000ms));
  const auto [value, tag] = cluster.read(3, 2, 0);
  EXPECT_EQ(value, val(7));
  EXPECT_EQ(tag, t);
}

TEST(ThreadedRuntimeTest, ReadYourWritesAcrossOperations) {
  ThreadedClusterConfig config;
  ThreadedCluster cluster(erasure::make_systematic_rs(5, 3, kValueBytes),
                          config);
  for (int i = 1; i <= 5; ++i) {
    const Tag wt = cluster.write(2, 7, 1,
                                 Value(kValueBytes,
                                       static_cast<std::uint8_t>(i)));
    const auto [value, tag] = cluster.read(2, 7, 1);
    EXPECT_GE(tag, wt) << "iteration " << i;  // read-your-writes
    EXPECT_EQ(value[0], static_cast<std::uint8_t>(i));
  }
}

}  // namespace
}  // namespace causalec::runtime
