// Frame reassembly property tests: every protocol message type pushed
// through the length-prefixed framer, split at EVERY byte boundary and
// coalesced back-to-back, must decode byte-identically to the in-process
// codec path -- including the optional trace-context trailer. Plus the
// malformed-frame battery: truncated, oversized, bad type byte, hostile
// counts; remote bytes must never abort the process.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "causalec/codec.h"
#include "causalec/messages.h"
#include "common/random.h"
#include "erasure/buffer.h"
#include "net/client_proto.h"
#include "net/frame.h"

namespace causalec::net {
namespace {

using erasure::Buffer;
using erasure::Value;

VectorClock random_clock(Rng& rng, std::size_t n) {
  VectorClock vc(n);
  for (std::size_t i = 0; i < n; ++i) vc.set(i, rng.next_below(1000));
  return vc;
}

Tag random_tag(Rng& rng, std::size_t n) {
  return Tag(random_clock(rng, n), rng.next_u64());
}

TagVector random_tagvec(Rng& rng, std::size_t k, std::size_t n) {
  TagVector tv;
  for (std::size_t i = 0; i < k; ++i) tv.push_back(random_tag(rng, n));
  return tv;
}

Value random_value(Rng& rng, std::size_t bytes) {
  Value v(bytes);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

WireModel model() {
  ServerConfig config;
  return WireModel::make(config, 5, 3);
}

/// One instance of every protocol message type, with payloads big enough
/// that frames span multiple read chunks in the byte-at-a-time sweeps.
std::vector<sim::MessagePtr> sample_messages(bool traced) {
  Rng rng(traced ? 101 : 100);
  const WireModel wm = model();
  std::vector<sim::MessagePtr> out;
  out.push_back(
      std::make_unique<AppMessage>(2, random_value(rng, 96),
                                   random_tag(rng, 5), wm));
  out.push_back(std::make_unique<DelMessage>(1, random_tag(rng, 5), 3, true,
                                             wm));
  out.push_back(std::make_unique<ValInqMessage>(
      kLocalhost, 9001, 2, random_tagvec(rng, 3, 5), wm));
  out.push_back(std::make_unique<ValRespMessage>(
      7, 42, 0, random_value(rng, 128), random_tagvec(rng, 3, 5), wm));
  out.push_back(std::make_unique<ValRespEncodedMessage>(
      7, 43, 1, random_value(rng, 64), random_tagvec(rng, 3, 5),
      random_tagvec(rng, 3, 5), wm));
  out.push_back(std::make_unique<RecoverDigestMessage>(
      4, random_clock(rng, 5), wm));
  out.push_back(std::make_unique<RecoverDigestReplyMessage>(
      4, random_clock(rng, 5), wm));
  out.push_back(std::make_unique<RecoverPullMessage>(
      5, random_clock(rng, 5), wm));
  std::vector<RecoverPushMessage::HistoryItem> history;
  history.push_back({0, random_tag(rng, 5), random_value(rng, 32)});
  history.push_back({2, random_tag(rng, 5), random_value(rng, 48)});
  std::vector<RecoverPushMessage::InqueueItem> inqueue;
  inqueue.push_back({3, 1, random_tag(rng, 5), random_value(rng, 24)});
  std::vector<RecoverPushMessage::DelItem> dels;
  dels.push_back({1, 4, random_tag(rng, 5)});
  out.push_back(std::make_unique<RecoverPushMessage>(
      5, random_clock(rng, 5), std::move(history), std::move(inqueue),
      std::move(dels), wm));
  if (traced) {
    std::uint64_t next_id = 0xABCD;
    for (auto& m : out) {
      m->trace.trace_id = ++next_id;
      m->trace.span_id = next_id * 3;
    }
  }
  return out;
}

/// Feeds `frame` split into [0, split) and [split, size); returns every
/// completed payload.
std::vector<Buffer> reassemble_split(const Buffer& frame, std::size_t split) {
  FrameReader reader;
  if (split > 0) reader.feed(frame.slice(0, split));
  std::vector<Buffer> payloads;
  while (auto p = reader.next()) payloads.push_back(std::move(*p));
  if (split < frame.size()) {
    reader.feed(frame.slice(split, frame.size() - split));
  }
  while (auto p = reader.next()) payloads.push_back(std::move(*p));
  EXPECT_FALSE(reader.failed()) << reader.error();
  EXPECT_EQ(reader.buffered_bytes(), 0u);
  return payloads;
}

bool payload_equals(const Buffer& payload,
                    const std::vector<std::uint8_t>& expected) {
  return payload.size() == expected.size() &&
         (payload.empty() ||
          std::memcmp(payload.data(), expected.data(), payload.size()) == 0);
}

// -- The all-boundary split sweep -------------------------------------------

void run_split_sweep(bool traced) {
  for (const auto& message : sample_messages(traced)) {
    const std::vector<std::uint8_t> expected = serialize_message(*message);
    const Buffer frame = encode_frame(expected);
    for (std::size_t split = 0; split <= frame.size(); ++split) {
      const std::vector<Buffer> payloads = reassemble_split(frame, split);
      ASSERT_EQ(payloads.size(), 1u)
          << message->type_name() << " split at " << split;
      ASSERT_TRUE(payload_equals(payloads[0], expected))
          << message->type_name() << " split at " << split;
      // Byte-identical to the in-process codec: decoding the reassembled
      // payload and re-serializing reproduces the original bytes exactly.
      std::string error;
      const sim::MessagePtr decoded =
          try_deserialize_message(payloads[0], &error);
      ASSERT_NE(decoded, nullptr)
          << message->type_name() << " split at " << split << ": " << error;
      EXPECT_EQ(serialize_message(*decoded), expected)
          << message->type_name() << " split at " << split;
      EXPECT_STREQ(decoded->type_name(), message->type_name());
      EXPECT_EQ(decoded->trace.trace_id, message->trace.trace_id);
      EXPECT_EQ(decoded->trace.span_id, message->trace.span_id);
    }
  }
}

TEST(NetFrameSweep, EveryMessageTypeAtEveryByteBoundary) {
  run_split_sweep(/*traced=*/false);
}

TEST(NetFrameSweep, TraceContextTrailerSurvivesEverySplit) {
  run_split_sweep(/*traced=*/true);
}

TEST(NetFrameSweep, ByteAtATimeReassembly) {
  for (const auto& message : sample_messages(/*traced=*/true)) {
    const std::vector<std::uint8_t> expected = serialize_message(*message);
    const Buffer frame = encode_frame(expected);
    FrameReader reader;
    std::vector<Buffer> payloads;
    for (std::size_t i = 0; i < frame.size(); ++i) {
      reader.feed(frame.slice(i, 1));
      while (auto p = reader.next()) payloads.push_back(std::move(*p));
    }
    ASSERT_EQ(payloads.size(), 1u) << message->type_name();
    EXPECT_TRUE(payload_equals(payloads[0], expected))
        << message->type_name();
  }
}

// -- Coalesced back-to-back frames ------------------------------------------

TEST(NetFrameCoalesced, AllTypesInOneChunkDecodeInOrder) {
  const auto messages = sample_messages(/*traced=*/false);
  std::vector<std::vector<std::uint8_t>> expected;
  std::vector<std::uint8_t> stream;
  for (const auto& m : messages) {
    expected.push_back(serialize_message(*m));
    const Buffer frame = encode_frame(expected.back());
    stream.insert(stream.end(), frame.data(), frame.data() + frame.size());
  }
  FrameReader reader;
  reader.feed(Buffer::adopt(std::move(stream)));
  for (std::size_t i = 0; i < expected.size(); ++i) {
    auto payload = reader.next();
    ASSERT_TRUE(payload.has_value()) << "frame " << i;
    EXPECT_TRUE(payload_equals(*payload, expected[i])) << "frame " << i;
    const sim::MessagePtr decoded = try_deserialize_message(*payload);
    ASSERT_NE(decoded, nullptr);
    EXPECT_STREQ(decoded->type_name(), messages[i]->type_name());
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(NetFrameCoalesced, CoalescedStreamSplitAtEveryBoundary) {
  // Three frames concatenated, the stream cut at every byte: the reader
  // must always deliver exactly the three payloads regardless of where
  // the chunk boundary lands (mid-header, mid-body, between frames).
  Rng rng(7);
  const WireModel wm = model();
  std::vector<std::vector<std::uint8_t>> expected;
  std::vector<std::uint8_t> stream;
  const AppMessage app(0, random_value(rng, 40), random_tag(rng, 5), wm);
  const DelMessage del(1, random_tag(rng, 5), 2, false, wm);
  const ValInqMessage inq(9, 77, 1, random_tagvec(rng, 3, 5), wm);
  for (const sim::Message* m :
       {static_cast<const sim::Message*>(&app),
        static_cast<const sim::Message*>(&del),
        static_cast<const sim::Message*>(&inq)}) {
    expected.push_back(serialize_message(*m));
    const Buffer frame = encode_frame(expected.back());
    stream.insert(stream.end(), frame.data(), frame.data() + frame.size());
  }
  const Buffer whole = Buffer::adopt(std::move(stream));
  for (std::size_t split = 0; split <= whole.size(); ++split) {
    const std::vector<Buffer> payloads = reassemble_split(whole, split);
    ASSERT_EQ(payloads.size(), 3u) << "split at " << split;
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(payload_equals(payloads[i], expected[i]))
          << "split at " << split << " frame " << i;
    }
  }
}

// -- Zero-copy: whole frames inside one chunk are slices, not copies --------

TEST(NetFrameZeroCopy, WholeFrameInOneChunkAliasesTheChunkArena) {
  Rng rng(8);
  const AppMessage app(0, random_value(rng, 64), random_tag(rng, 5),
                       model());
  const Buffer frame = encode_frame(serialize_message(app));
  FrameReader reader;
  reader.feed(frame);
  const std::uint64_t before = Buffer::alloc_stats().allocations;
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(Buffer::alloc_stats().allocations, before)
      << "completed frame inside one chunk must be a zero-copy slice";
  EXPECT_GE(payload->data(), frame.data());
  EXPECT_LE(payload->data() + payload->size(), frame.data() + frame.size());
}

// -- Malformed input --------------------------------------------------------

TEST(NetFrameMalformed, OversizedLengthPrefixFailsTheReader) {
  std::vector<std::uint8_t> header(4);
  const std::uint64_t huge = kMaxFrameBytes + 1;
  for (int i = 0; i < 4; ++i) {
    header[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  }
  FrameReader reader;
  reader.feed(Buffer::adopt(std::move(header)));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());
  EXPECT_FALSE(reader.error().empty());
}

TEST(NetFrameMalformed, TruncatedBodyStaysPendingWithoutFailing) {
  Rng rng(9);
  const DelMessage del(0, random_tag(rng, 5), 1, false, model());
  const Buffer frame = encode_frame(serialize_message(del));
  FrameReader reader;
  reader.feed(frame.slice(0, frame.size() - 3));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.failed());
  EXPECT_GT(reader.buffered_bytes(), 0u);
  // The missing tail arrives: the frame completes.
  reader.feed(frame.slice(frame.size() - 3, 3));
  EXPECT_TRUE(reader.next().has_value());
}

TEST(NetFrameMalformed, BadTypeByteNeverAborts) {
  Rng rng(10);
  auto bytes = serialize_message(
      AppMessage(0, random_value(rng, 16), random_tag(rng, 3), model()));
  bytes[0] = 57;  // not a protocol type byte
  std::string error;
  EXPECT_EQ(try_deserialize_message(Buffer::adopt(std::move(bytes)), &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(NetFrameMalformed, TruncatedMessagePayloadNeverAborts) {
  Rng rng(11);
  for (const auto& message : sample_messages(/*traced=*/false)) {
    auto bytes = serialize_message(*message);
    // Every strict prefix must decode to null, not crash. (Prefixes that
    // happen to parse as a shorter valid encoding do not exist in this
    // format: every field is length-checked.)
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      std::string error;
      const auto out = try_deserialize_message(
          Buffer::adopt(std::vector<std::uint8_t>(
              bytes.begin(), bytes.begin() + static_cast<long>(len))),
          &error);
      EXPECT_EQ(out, nullptr)
          << message->type_name() << " prefix of " << len;
    }
  }
}

TEST(NetFrameMalformed, TrailingGarbageNeverAborts) {
  Rng rng(12);
  auto bytes = serialize_message(
      DelMessage(0, random_tag(rng, 4), 1, false, model()));
  bytes.push_back(0x5A);  // not a full 16-byte trace trailer
  std::string error;
  EXPECT_EQ(try_deserialize_message(Buffer::adopt(std::move(bytes)), &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

// -- Client/control protocol ------------------------------------------------

TEST(NetClientProto, RoundTrips) {
  Rng rng(13);
  {
    Hello m{PeerRole::kServer, 3};
    const auto r = decode_hello(Buffer::adopt(encode_hello(m)));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->role, PeerRole::kServer);
    EXPECT_EQ(r->node, 3u);
  }
  {
    WriteReq m;
    m.opid = 42;
    m.client = 7;
    m.object = 2;
    m.value = random_value(rng, 96);
    const auto r = decode_write_req(Buffer::adopt(encode_write_req(m)));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->opid, 42u);
    EXPECT_EQ(r->client, 7u);
    EXPECT_EQ(r->object, 2u);
    EXPECT_EQ(r->value, m.value);
  }
  {
    ReadResp m;
    m.opid = 43;
    m.tag = random_tag(rng, 5);
    m.vc = random_clock(rng, 5);
    m.value = random_value(rng, 64);
    const auto r = decode_read_resp(Buffer::adopt(encode_read_resp(m)));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->opid, 43u);
    EXPECT_EQ(r->tag, m.tag);
    EXPECT_TRUE(r->vc == m.vc);
    EXPECT_EQ(r->value, m.value);
  }
  {
    StatsResp m;
    m.node = 4;
    m.vc = random_clock(rng, 5);
    m.history_entries = 10;
    m.inqueue_entries = 2;
    m.readl_entries = 1;
    m.writes = 100;
    m.reads = 200;
    m.error_events = 0;
    m.recoveries = 3;
    m.shard_ops = {11, 22, 33};
    const auto r = decode_stats_resp(Buffer::adopt(encode_stats_resp(m)));
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->vc == m.vc);
    EXPECT_EQ(r->history_entries, 10u);
    EXPECT_EQ(r->shard_ops, m.shard_ops);
  }
}

TEST(NetClientProto, MalformedFramesDecodeToNullopt) {
  Rng rng(14);
  // Wrong type byte.
  auto hello = encode_hello(Hello{PeerRole::kClient, 0});
  hello[0] = static_cast<std::uint8_t>(ClientMsgType::kPing);
  EXPECT_FALSE(decode_hello(Buffer::adopt(std::move(hello))).has_value());
  // Truncated at every prefix.
  WriteResp resp;
  resp.opid = 9;
  resp.tag = random_tag(rng, 5);
  resp.vc = random_clock(rng, 5);
  const auto bytes = encode_write_resp(resp);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode_write_resp(
                     Buffer::adopt(std::vector<std::uint8_t>(
                         bytes.begin(),
                         bytes.begin() + static_cast<long>(len))))
                     .has_value())
        << "prefix " << len;
  }
  // Hostile shard count in stats: claims more entries than bytes present.
  StatsResp stats;
  stats.vc = random_clock(rng, 3);
  stats.shard_ops = {1};
  auto sbytes = encode_stats_resp(stats);
  sbytes[sbytes.size() - 8 - 4] = 0xFF;  // shards count low byte
  EXPECT_FALSE(
      decode_stats_resp(Buffer::adopt(std::move(sbytes))).has_value());
}

}  // namespace
}  // namespace causalec::net
