// Tests for the baseline stores: full replication, partial replication
// (forwarded reads), and the intra-object erasure-coded store.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "baselines/intra_object_store.h"
#include "baselines/replicated_store.h"
#include "placement/rtt_matrix.h"
#include "sim/latency.h"
#include "sim/simulation.h"

namespace causalec::baselines {
namespace {

using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

struct ReadProbe {
  std::optional<Value> value;
  std::optional<Tag> tag;
  ReadDone cb() {
    return [this](const Value& v, const Tag& t) {
      value = v;
      tag = t;
    };
  }
};

// ---------------------------------------------------------------------------
// Full replication.
// ---------------------------------------------------------------------------

TEST(FullReplicationTest, WritesLocalReadsLocalEverywhere) {
  sim::Simulation sim(std::make_unique<sim::ConstantLatency>(10 * kMillisecond));
  ReplicatedStore store(&sim, ReplicatedStore::full_replication(4, 3, 16));
  const Tag t = store.write(0, 1, Value(16, 7));
  EXPECT_EQ(sim.now(), 0);  // synchronous ack
  sim.run_until_idle();
  for (NodeId s = 0; s < 4; ++s) {
    ReadProbe probe;
    store.read(s, 1, probe.cb());
    ASSERT_TRUE(probe.value.has_value()) << "server " << s;  // inline
    EXPECT_EQ(*probe.value, Value(16, 7));
    EXPECT_EQ(*probe.tag, t);
  }
}

TEST(FullReplicationTest, CausalApplyOrder) {
  sim::Simulation sim(std::make_unique<sim::ConstantLatency>(5 * kMillisecond));
  ReplicatedStore store(&sim, ReplicatedStore::full_replication(3, 2, 8));
  sim.add_channel_delay(0, 2, 100 * kMillisecond);  // X's app held back
  store.write(0, 0, Value(8, 1));                   // X at server 0
  sim.run_until(10 * kMillisecond);                 // reaches server 1
  store.write(1, 1, Value(8, 2));                   // Y causally after X
  sim.run_until(40 * kMillisecond);
  // Server 2 got Y's app but must not expose it before X.
  ReadProbe early;
  store.read(2, 1, early.cb());
  ASSERT_TRUE(early.value.has_value());
  EXPECT_TRUE(early.tag->is_zero());
  sim.run_until_idle();
  ReadProbe late;
  store.read(2, 1, late.cb());
  EXPECT_EQ(*late.value, Value(8, 2));
}

TEST(FullReplicationTest, LwwConvergence) {
  sim::Simulation sim(std::make_unique<sim::ConstantLatency>(7 * kMillisecond));
  ReplicatedStore store(&sim, ReplicatedStore::full_replication(3, 1, 8));
  const Tag t0 = store.write(0, 0, Value(8, 10));
  const Tag t1 = store.write(1, 0, Value(8, 20));
  const Tag t2 = store.write(2, 0, Value(8, 30));
  sim.run_until_idle();
  const Tag winner = std::max(t0, std::max(t1, t2));
  for (NodeId s = 0; s < 3; ++s) {
    ReadProbe probe;
    store.read(s, 0, probe.cb());
    EXPECT_EQ(*probe.tag, winner) << "server " << s;
  }
}

// ---------------------------------------------------------------------------
// Partial replication.
// ---------------------------------------------------------------------------

ReplicatedStoreConfig paper_partial_placement(std::size_t value_bytes) {
  // Sec. 1.1 optimum: G0 at {Seoul, Ireland}, G1 at {Mumbai, London},
  // G2 at N.California, G3 at Oregon.
  ReplicatedStoreConfig config;
  config.num_objects = 4;
  config.value_bytes = value_bytes;
  config.placement = {{0}, {1}, {0}, {1}, {2}, {3}};
  config.rtt_ms = placement::six_dc_rtt_ms();
  return config;
}

TEST(PartialReplicationTest, LocalReadsAtReplicas) {
  auto latency = sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms());
  sim::Simulation sim(std::move(latency));
  ReplicatedStore store(&sim, paper_partial_placement(16));
  store.write(0, 0, Value(16, 5));  // G0 written at Seoul
  sim.run_until_idle();
  ReadProbe at_ireland;
  store.read(2, 0, at_ireland.cb());
  ASSERT_TRUE(at_ireland.value.has_value());  // replica: inline
  EXPECT_EQ(*at_ireland.value, Value(16, 5));
}

TEST(PartialReplicationTest, ForwardedReadTakesOneRttToNearestReplica) {
  auto latency = sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms());
  sim::Simulation sim(std::move(latency));
  ReplicatedStore store(&sim, paper_partial_placement(16));
  store.write(0, 0, Value(16, 5));
  sim.run_until_idle();
  // Mumbai (1) reads G0; the nearest replica is Seoul (120 ms RTT,
  // edging out Ireland's 121 ms).
  const SimTime start = sim.now();
  SimTime done_at = -1;
  store.read(1, 0, [&](const Value& v, const Tag&) {
    EXPECT_EQ(v, Value(16, 5));
    done_at = sim.now();
  });
  sim.run_until_idle();
  EXPECT_EQ(done_at - start, 120 * kMillisecond);
}

TEST(PartialReplicationTest, NonReplicaStoresNothing) {
  auto latency = sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms());
  sim::Simulation sim(std::move(latency));
  ReplicatedStore store(&sim, paper_partial_placement(16));
  store.write(4, 0, Value(16, 9));  // G0 written at a non-replica
  sim.run_until_idle();
  EXPECT_EQ(store.stored_bytes(4), 0u);   // N.California holds only G2
  EXPECT_EQ(store.stored_bytes(0), 16u);  // Seoul replica stores it
  EXPECT_EQ(store.stored_bytes(2), 16u);  // Ireland replica stores it
}

// ---------------------------------------------------------------------------
// Intra-object erasure coding.
// ---------------------------------------------------------------------------

IntraObjectStoreConfig intra_config(std::size_t value_bytes = 16) {
  IntraObjectStoreConfig config;
  config.num_servers = 6;
  config.num_objects = 4;
  config.value_bytes = value_bytes;
  config.k = 4;
  config.rtt_ms = placement::six_dc_rtt_ms();
  return config;
}

TEST(IntraObjectTest, ReadReassemblesValue) {
  auto latency = sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms());
  sim::Simulation sim(std::move(latency));
  IntraObjectStore store(&sim, intra_config());
  Value value(16);
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<std::uint8_t>(i * 3 + 1);
  }
  const Tag t = store.write(0, 2, value);
  sim.run_until_idle();
  ReadProbe probe;
  store.read(3, 2, probe.cb());
  sim.run_until_idle();
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, value);
  EXPECT_EQ(*probe.tag, t);
}

TEST(IntraObjectTest, ReadsAreNeverLocal) {
  auto latency = sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms());
  sim::Simulation sim(std::move(latency));
  IntraObjectStore store(&sim, intra_config());
  store.write(1, 0, Value(16, 3));
  sim.run_until_idle();
  // Even at the writing server, a read needs k-1 remote fragments: latency
  // equals the (k-1)-th nearest RTT from Mumbai = 121 ms.
  SimTime done_at = -1;
  const SimTime start = sim.now();
  store.read(1, 0, [&](const Value&, const Tag&) { done_at = sim.now(); });
  sim.run_until_idle();
  EXPECT_EQ(done_at - start, 121 * kMillisecond);
}

TEST(IntraObjectTest, FragmentStorageIsValueOverK) {
  auto latency = sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms());
  sim::Simulation sim(std::move(latency));
  IntraObjectStore store(&sim, intra_config(32));
  store.write(0, 0, Value(32, 1));
  store.write(0, 1, Value(32, 2));
  sim.run_until_idle();
  for (NodeId s = 0; s < 6; ++s) {
    EXPECT_EQ(store.stored_bytes(s), 2u * 32u / 4u) << "server " << s;
  }
}

TEST(IntraObjectTest, VersionSkewResolvedByRetry) {
  auto latency = sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms());
  sim::Simulation sim(std::move(latency));
  IntraObjectStore store(&sim, intra_config());
  store.write(0, 0, Value(16, 1));
  sim.run_until_idle();
  // Second write propagates slowly to London (3).
  sim.add_channel_delay(0, 3, 300 * kMillisecond);
  const Tag t2 = store.write(0, 0, Value(16, 2));
  sim.run_until(50 * kMillisecond);
  // Ireland (2) reads: its fragment set spans London, whose fragment is
  // stale; the retry loop must converge once London catches up.
  ReadProbe probe;
  store.read(2, 0, probe.cb());
  sim.run_until_idle();
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.tag, t2);
  EXPECT_EQ(*probe.value, Value(16, 2));
}

}  // namespace
}  // namespace causalec::baselines
