// Front-door session-guarantee battery (DESIGN.md §12): in-process
// NodeDaemons behind an in-process Router, with every routed operation
// recorded and gated by the src/consistency checkers. Running everything
// in one process keeps the router's shard threads, the daemons, and the
// client sessions visible to TSan (tools/run_sanitized_tests.sh runs this
// under all three sanitizers).
//
// The centerpiece is the stale-rejection scenario: a cache entry that is
// deliberately staled by a write the router never saw must NOT be served
// to a session whose frontier already covers that write.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "consistency/causal_checker.h"
#include "consistency/history.h"
#include "erasure/codes.h"
#include "frontdoor/router.h"
#include "frontdoor/router_client.h"
#include "net/cluster_config.h"
#include "net/net_client.h"
#include "net/node_daemon.h"
#include "net/process_cluster.h"

namespace causalec::frontdoor {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kServers = 5;
constexpr std::size_t kObjects = 3;
constexpr std::size_t kValueBytes = 64;

/// Monotonic per-process tick for OpRecord invoked_at/responded_at.
SimTime next_tick() {
  static std::atomic<SimTime> tick{0};
  return tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

erasure::Value value_for(ClientId client, std::uint64_t seq) {
  erasure::Value v(kValueBytes);
  std::uint8_t* bytes = v.begin();
  for (std::size_t i = 0; i < kValueBytes; ++i) {
    bytes[i] = static_cast<std::uint8_t>(client * 151 + seq * 7 + i);
  }
  return v;
}

/// One client session through the router, recording every completed
/// operation with the Definition 6 metadata the checkers consume. The
/// OpRecord server field is diagnostics-only; routed ops use the router's
/// pseudo-id 0 because the client cannot know which backend served it.
struct RouterSession {
  RouterSession(ClientId id_in, const std::string& endpoint) : id(id_in),
                                                               client(id_in) {
    connected = client.connect(endpoint, 2000);
    client.set_io_timeout_ms(10'000);
  }

  bool write_op(ObjectId object) {
    const std::uint64_t seq = seq_++;
    const erasure::Value value = value_for(id, seq);
    consistency::OpRecord record;
    record.client = id;
    record.session_seq = seq;
    record.is_write = true;
    record.object = object;
    record.value_hash =
        consistency::hash_value_bytes({value.data(), value.size()});
    record.invoked_at = next_tick();
    const auto resp = client.write(seq, object, value);
    if (!resp.has_value()) return false;
    record.tag = resp->tag;
    record.timestamp = resp->vc;
    record.responded_at = next_tick();
    ops.push_back(std::move(record));
    return true;
  }

  bool read_op(ObjectId object) {
    const std::uint64_t seq = seq_++;
    consistency::OpRecord record;
    record.client = id;
    record.session_seq = seq;
    record.is_write = false;
    record.object = object;
    record.invoked_at = next_tick();
    const auto resp = client.read(seq, object);
    if (!resp.has_value()) return false;
    record.tag = resp->tag;
    record.timestamp = resp->vc;
    record.value_hash = consistency::hash_value_bytes(
        {resp->value.data(), resp->value.size()});
    record.responded_at = next_tick();
    last_cached = resp->cached;
    last_value = resp->value;
    last_tag = resp->tag;
    ops.push_back(std::move(record));
    return true;
  }

  ClientId id;
  RouterClient client;
  bool connected = false;
  std::vector<consistency::OpRecord> ops;
  bool last_cached = false;
  erasure::Value last_value;
  Tag last_tag;

 private:
  std::uint64_t seq_ = 0;
};

class FrontdoorSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::vector<std::uint16_t> ports =
        net::reserve_loopback_ports(kServers);
    ASSERT_EQ(ports.size(), kServers);
    for (const std::uint16_t port : ports) {
      endpoints_.push_back("127.0.0.1:" + std::to_string(port));
    }
    for (std::size_t i = 0; i < kServers; ++i) {
      net::NodeDaemonConfig config;
      config.node = static_cast<NodeId>(i);
      config.listen_port = ports[i];
      config.peers = endpoints_;
      config.shards = 2;
      daemons_.push_back(std::make_unique<net::NodeDaemon>(
          erasure::make_systematic_rs(kServers, kObjects, kValueBytes),
          std::move(config)));
    }
    for (auto& d : daemons_) d->start();
    for (std::size_t i = 0; i < kServers; ++i) {
      ASSERT_TRUE(await_server_ready(i)) << "server " << i << " never ready";
    }

    net::ClusterConfig cluster;
    cluster.num_servers = kServers;
    cluster.num_objects = kObjects;
    cluster.value_bytes = kValueBytes;
    cluster.code = "rs";
    cluster.endpoints = endpoints_;
    cluster.groups = {{0, 1}, {2, 3, 4}};
    RouterConfig rc;
    rc.cluster = std::move(cluster);
    rc.shards = 2;
    rc.cache_capacity = 64;
    rc.cache_ttl = 0ms;  // no expiry: cache outcomes stay deterministic
    router_ = std::make_unique<Router>(std::move(rc));
    router_->start();
    ASSERT_TRUE(router_->await_backends(10s)) << "backend links never up";
    router_endpoint_ =
        "127.0.0.1:" + std::to_string(router_->listen_port());
  }

  void TearDown() override {
    if (router_ != nullptr) router_->stop();
    for (auto& d : daemons_) d->stop();
  }

  bool await_server_ready(std::size_t i) {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      net::NetClient probe(9000 + static_cast<ClientId>(i));
      if (probe.connect(endpoints_[i], 250)) {
        probe.set_io_timeout_ms(1000);
        const auto pong = probe.ping(42);
        if (pong.has_value() && pong->ready) return true;
      }
      std::this_thread::sleep_for(20ms);
    }
    return false;
  }

  /// VC equality + drained transient state across all servers, stable for
  /// two polls -- the same oracle as ProcessCluster::await_convergence.
  bool await_convergence(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    int stable = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      bool converged = true;
      std::optional<VectorClock> reference;
      for (std::size_t i = 0; i < kServers && converged; ++i) {
        net::NetClient probe(9100 + static_cast<ClientId>(i));
        if (!probe.connect(endpoints_[i], 500)) {
          converged = false;
          break;
        }
        probe.set_io_timeout_ms(2000);
        const auto s = probe.stats();
        if (!s.has_value() || s->history_entries != 0 ||
            s->inqueue_entries != 0 || s->readl_entries != 0) {
          converged = false;
          break;
        }
        if (!reference.has_value()) {
          reference = s->vc;
        } else if (!(*reference == s->vc)) {
          converged = false;
        }
      }
      if (converged && ++stable >= 2) return true;
      if (!converged) stable = 0;
      std::this_thread::sleep_for(20ms);
    }
    return false;
  }

  std::uint64_t total_error_events() {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kServers; ++i) {
      net::NetClient probe(9200 + static_cast<ClientId>(i));
      if (!probe.connect(endpoints_[i], 500)) continue;
      const auto s = probe.stats();
      if (s.has_value()) total += s->error_events;
    }
    return total;
  }

  /// Reads every object directly at every server after convergence; these
  /// are the `final_reads` of check_convergence (they bypass the router on
  /// purpose -- the cache must agree with ground truth, not define it).
  std::vector<consistency::OpRecord> final_reads() {
    std::vector<consistency::OpRecord> reads;
    for (std::size_t i = 0; i < kServers; ++i) {
      net::NetClient probe(500 + static_cast<ClientId>(i));
      EXPECT_TRUE(probe.connect(endpoints_[i], 2000));
      probe.set_io_timeout_ms(5000);
      for (ObjectId g = 0; g < kObjects; ++g) {
        consistency::OpRecord record;
        record.client = 500 + static_cast<ClientId>(i);
        record.session_seq = g;
        record.is_write = false;
        record.object = g;
        record.server = static_cast<NodeId>(i);
        record.invoked_at = next_tick();
        const auto resp = probe.read(g, g);
        EXPECT_TRUE(resp.has_value()) << "final read failed at server " << i;
        if (!resp.has_value()) continue;
        record.tag = resp->tag;
        record.timestamp = resp->vc;
        record.value_hash = consistency::hash_value_bytes(
            {resp->value.data(), resp->value.size()});
        record.responded_at = next_tick();
        reads.push_back(std::move(record));
      }
    }
    return reads;
  }

  void run_checkers(const consistency::History& history,
                    const std::vector<consistency::OpRecord>& finals) {
    const auto causal = consistency::check_causal_consistency(history);
    EXPECT_TRUE(causal.ok) << (causal.violations.empty()
                                   ? std::string("?")
                                   : causal.violations.front());
    const auto session = consistency::check_session_guarantees(history);
    EXPECT_TRUE(session.ok) << (session.violations.empty()
                                    ? std::string("?")
                                    : session.violations.front());
    const auto conv = consistency::check_convergence(history, finals);
    EXPECT_TRUE(conv.ok) << (conv.violations.empty()
                                 ? std::string("?")
                                 : conv.violations.front());
  }

  std::vector<std::string> endpoints_;
  std::vector<std::unique_ptr<net::NodeDaemon>> daemons_;
  std::unique_ptr<Router> router_;
  std::string router_endpoint_;
};

TEST_F(FrontdoorSessionTest, RoutedSequentialSessionsSatisfyTheCheckers) {
  // Five sessions interleaved on one thread, every op through the router:
  // the cache serves some reads, backends the rest, and the checkers must
  // not be able to tell the difference.
  std::vector<std::unique_ptr<RouterSession>> sessions;
  for (std::size_t i = 0; i < kServers; ++i) {
    sessions.push_back(std::make_unique<RouterSession>(
        100 + static_cast<ClientId>(i), router_endpoint_));
    ASSERT_TRUE(sessions.back()->connected);
  }
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  for (int round = 0; round < 12; ++round) {
    for (auto& s : sessions) {
      const auto object = static_cast<ObjectId>(round % kObjects);
      if ((round + s->id) % 3 == 0) {
        ASSERT_TRUE(s->read_op(object));
        ++reads;
      } else {
        ASSERT_TRUE(s->write_op(object));
        ++writes;
      }
    }
  }
  ASSERT_TRUE(await_convergence(15s));

  consistency::History history;
  for (auto& s : sessions) {
    for (auto& op : s->ops) history.record(std::move(op));
  }
  run_checkers(history, final_reads());
  EXPECT_EQ(total_error_events(), 0u);

  // The router's counters must partition its traffic exactly.
  const net::RouterStatsResp s = router_->stats();
  EXPECT_EQ(s.routed_writes, writes);
  EXPECT_EQ(s.routed_reads, reads);
  EXPECT_EQ(s.routed_reads,
            s.cache_hits + s.cache_misses + s.cache_stale + s.cache_expired);
  EXPECT_EQ(s.fallthroughs,
            s.cache_misses + s.cache_stale + s.cache_expired);
  EXPECT_EQ(s.reroutes, 0u) << "no backend died; nothing may reroute";
  std::uint64_t forwarded = 0;
  for (const std::uint64_t n : s.backend_ops) forwarded += n;
  EXPECT_EQ(forwarded, writes + s.fallthroughs);
}

TEST_F(FrontdoorSessionTest, ConcurrentRoutedClientsSatisfyTheCheckers) {
  // Eight concurrent sessions hammering mixed reads/writes from their own
  // threads: the TSan-visible version of the front-door deployment.
  constexpr std::size_t kThreads = 8;
  std::vector<std::unique_ptr<RouterSession>> sessions;
  for (std::size_t t = 0; t < kThreads; ++t) {
    sessions.push_back(std::make_unique<RouterSession>(
        200 + static_cast<ClientId>(t), router_endpoint_));
    ASSERT_TRUE(sessions[t]->connected);
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RouterSession& s = *sessions[t];
      for (int op = 0; op < 30; ++op) {
        const auto object = static_cast<ObjectId>((op + t) % kObjects);
        const bool ok = ((op + t) % 2 == 0) ? s.write_op(object)
                                            : s.read_op(object);
        if (!ok) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load()) << "a routed operation failed";
  ASSERT_TRUE(await_convergence(15s));

  consistency::History history;
  for (auto& s : sessions) {
    for (auto& op : s->ops) history.record(std::move(op));
  }
  EXPECT_EQ(history.size(), kThreads * 30);
  run_checkers(history, final_reads());
  EXPECT_EQ(total_error_events(), 0u);
}

TEST_F(FrontdoorSessionTest, ReadAfterWriteIsServedFromTheCache) {
  RouterSession s(300, router_endpoint_);
  ASSERT_TRUE(s.connected);
  ASSERT_TRUE(s.write_op(0));
  EXPECT_GE(router_->stats().cache_entries, 1u)
      << "a routed write must install its own witness";
  // The first read may race the write's response clock; the second read's
  // frontier equals the refreshed witness clock exactly, so by then the
  // cache MUST have served at least once.
  ASSERT_TRUE(s.read_op(0));
  ASSERT_TRUE(s.read_op(0));
  EXPECT_GE(router_->stats().cache_hits, 1u);
  const erasure::Value expected = value_for(s.id, 0);
  ASSERT_EQ(s.last_value.size(), expected.size());
  EXPECT_EQ(consistency::hash_value_bytes(
                {s.last_value.data(), s.last_value.size()}),
            consistency::hash_value_bytes(
                {expected.data(), expected.size()}));

  ASSERT_TRUE(await_convergence(15s));
  consistency::History history;
  for (auto& op : s.ops) history.record(std::move(op));
  run_checkers(history, final_reads());
}

TEST_F(FrontdoorSessionTest, StaleCacheEntryIsRejectedWhenFrontierIsAhead) {
  // 1. A routed write installs a cache witness for object 0.
  RouterSession a(310, router_endpoint_);
  ASSERT_TRUE(a.connected);
  ASSERT_TRUE(a.write_op(0));
  const Tag tag_v1 = a.ops.back().tag;

  // 2. A direct client writes object 0 *behind the router's back* at
  //    server 2, after server 2 has provably seen v1 (so the new tag
  //    strictly dominates v1's and the LWW winner is unambiguous).
  net::NetClient direct(311);
  ASSERT_TRUE(direct.connect(endpoints_[2], 2000));
  direct.set_io_timeout_ms(5000);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  bool v1_visible = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto peek = direct.read(900, 0);
    ASSERT_TRUE(peek.has_value());
    if (peek->tag == tag_v1) {
      v1_visible = true;
      break;
    }
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(v1_visible) << "v1 never propagated to server 2";

  const erasure::Value v2 = value_for(311, 0);
  consistency::OpRecord direct_record;
  direct_record.client = 311;
  direct_record.session_seq = 0;
  direct_record.is_write = true;
  direct_record.object = 0;
  direct_record.server = 2;
  direct_record.value_hash =
      consistency::hash_value_bytes({v2.data(), v2.size()});
  direct_record.invoked_at = next_tick();
  const auto wresp = direct.write(901, 0, v2);
  ASSERT_TRUE(wresp.has_value());
  direct_record.tag = wresp->tag;
  direct_record.timestamp = wresp->vc;
  direct_record.responded_at = next_tick();
  const Tag tag_v2 = wresp->tag;

  // 3. A session whose frontier already covers v2 reads through the
  //    router. The cached v1 witness is STALE for this frontier: serving
  //    it would violate monotonic reads. The router must fall through.
  const std::uint64_t stale_before = router_->stats().cache_stale;
  RouterSession b(312, router_endpoint_);
  ASSERT_TRUE(b.connected);
  b.client.set_frontier(wresp->vc);
  ASSERT_TRUE(b.read_op(0));
  EXPECT_FALSE(b.last_cached)
      << "a stale witness must never be served from the cache";
  EXPECT_EQ(b.last_tag, tag_v2);
  EXPECT_EQ(consistency::hash_value_bytes(
                {b.last_value.data(), b.last_value.size()}),
            consistency::hash_value_bytes({v2.data(), v2.size()}));
  EXPECT_GE(router_->stats().cache_stale, stale_before + 1);

  // 4. The full interleaving still satisfies every checker.
  ASSERT_TRUE(await_convergence(15s));
  consistency::History history;
  for (auto& op : a.ops) history.record(std::move(op));
  history.record(std::move(direct_record));
  for (auto& op : b.ops) history.record(std::move(op));
  run_checkers(history, final_reads());
  EXPECT_EQ(total_error_events(), 0u);
}

}  // namespace
}  // namespace causalec::frontdoor
