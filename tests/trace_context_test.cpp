// TraceContext wire-format round-trips: every message type carries its
// trace context through serialize/deserialize, untraced frames are
// byte-identical to the pre-trace format, and old frames (no trailer)
// decode as "not traced".
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "causalec/codec.h"
#include "causalec/messages.h"
#include "causalec/wire_format.h"
#include "common/random.h"

namespace causalec {
namespace {

using erasure::Value;

VectorClock random_clock(Rng& rng, std::size_t n) {
  VectorClock vc(n);
  for (std::size_t i = 0; i < n; ++i) vc.set(i, rng.next_below(1000));
  return vc;
}

Tag random_tag(Rng& rng, std::size_t n) {
  return Tag(random_clock(rng, n), rng.next_u64());
}

TagVector random_tagvec(Rng& rng, std::size_t k, std::size_t n) {
  TagVector tv;
  for (std::size_t i = 0; i < k; ++i) tv.push_back(random_tag(rng, n));
  return tv;
}

Value random_value(Rng& rng, std::size_t bytes) {
  Value v(bytes);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

WireModel model() {
  ServerConfig config;
  return WireModel::make(config, 5, 3);
}

/// One factory per message type; the fixture runs the same three checks
/// (traced round-trip, untraced byte-identity, chopped-trailer compat)
/// over all nine.
std::vector<std::function<sim::MessagePtr(Rng&)>> message_factories() {
  const WireModel wm = model();
  return {
      [wm](Rng& rng) -> sim::MessagePtr {
        return std::make_unique<AppMessage>(1, random_value(rng, 64),
                                            random_tag(rng, 5), wm);
      },
      [wm](Rng& rng) -> sim::MessagePtr {
        return std::make_unique<DelMessage>(2, random_tag(rng, 5), 3, true,
                                            wm);
      },
      [wm](Rng& rng) -> sim::MessagePtr {
        return std::make_unique<ValInqMessage>(7, 42, 1,
                                               random_tagvec(rng, 3, 5), wm);
      },
      [wm](Rng& rng) -> sim::MessagePtr {
        return std::make_unique<ValRespMessage>(7, 42, 1,
                                                random_value(rng, 64),
                                                random_tagvec(rng, 3, 5), wm);
      },
      [wm](Rng& rng) -> sim::MessagePtr {
        return std::make_unique<ValRespEncodedMessage>(
            7, 42, 1, random_value(rng, 64), random_tagvec(rng, 3, 5),
            random_tagvec(rng, 3, 5), wm);
      },
      [wm](Rng& rng) -> sim::MessagePtr {
        return std::make_unique<RecoverDigestMessage>(9, random_clock(rng, 5),
                                                      wm);
      },
      [wm](Rng& rng) -> sim::MessagePtr {
        return std::make_unique<RecoverDigestReplyMessage>(
            9, random_clock(rng, 5), wm);
      },
      [wm](Rng& rng) -> sim::MessagePtr {
        return std::make_unique<RecoverPullMessage>(9, random_clock(rng, 5),
                                                    wm);
      },
      [wm](Rng& rng) -> sim::MessagePtr {
        std::vector<RecoverPushMessage::HistoryItem> history;
        history.push_back({1, random_tag(rng, 5), random_value(rng, 64)});
        std::vector<RecoverPushMessage::InqueueItem> inqueue;
        inqueue.push_back({2, 0, random_tag(rng, 5), random_value(rng, 64)});
        std::vector<RecoverPushMessage::DelItem> dels;
        dels.push_back({1, 4, random_tag(rng, 5)});
        return std::make_unique<RecoverPushMessage>(
            9, random_clock(rng, 5), std::move(history), std::move(inqueue),
            std::move(dels), wm);
      },
  };
}

TEST(TraceContextTest, TracedRoundTripOnEveryMessageType) {
  Rng rng(31);
  std::size_t index = 0;
  for (const auto& make : message_factories()) {
    auto message = make(rng);
    message->trace.trace_id = 1000 + index;
    message->trace.span_id = 2000 + index;
    const auto bytes = serialize_message(*message);
    const auto restored = deserialize_message(bytes);
    ASSERT_NE(restored, nullptr) << message->type_name();
    EXPECT_STREQ(restored->type_name(), message->type_name());
    EXPECT_TRUE(restored->trace.traced()) << message->type_name();
    EXPECT_EQ(restored->trace.trace_id, 1000 + index)
        << message->type_name();
    EXPECT_EQ(restored->trace.span_id, 2000 + index) << message->type_name();
    ++index;
  }
  EXPECT_EQ(index, 9u);
}

TEST(TraceContextTest, UntracedFrameIsByteIdenticalToTracedMinusTrailer) {
  // The trace context is a pure trailer: an untraced message serializes to
  // exactly the old frame format, and a traced frame is that plus 16 bytes.
  // This is what keeps old bundles / mixed-version peers compatible.
  for (const auto& make : message_factories()) {
    Rng rng_a(77);
    Rng rng_b(77);
    auto untraced = make(rng_a);
    auto traced = make(rng_b);  // same rng seed -> same payload
    traced->trace.trace_id = 5;
    traced->trace.span_id = 6;

    const auto untraced_bytes = serialize_message(*untraced);
    auto traced_bytes = serialize_message(*traced);
    ASSERT_EQ(traced_bytes.size(),
              untraced_bytes.size() + wire::kTraceContextBytes)
        << untraced->type_name();
    traced_bytes.resize(untraced_bytes.size());
    EXPECT_EQ(traced_bytes, untraced_bytes) << untraced->type_name();
  }
}

TEST(TraceContextTest, OldFrameWithoutTrailerDecodesAsNotTraced) {
  Rng rng(13);
  for (const auto& make : message_factories()) {
    auto message = make(rng);
    message->trace.trace_id = 99;
    message->trace.span_id = 100;
    auto bytes = serialize_message(*message);
    // Chop the trailer: this is exactly what a pre-trace writer emits.
    bytes.resize(bytes.size() - wire::kTraceContextBytes);
    const auto restored = deserialize_message(bytes);
    ASSERT_NE(restored, nullptr) << message->type_name();
    EXPECT_STREQ(restored->type_name(), message->type_name());
    EXPECT_FALSE(restored->trace.traced()) << message->type_name();
    EXPECT_EQ(restored->trace.trace_id, 0u);
    EXPECT_EQ(restored->trace.span_id, 0u);
  }
}

TEST(TraceContextTest, WireBytesUnaffectedByTraceContext) {
  // wire_bytes() is the simulated-network cost model; tracing must never
  // change it (chaos history hashes depend on it).
  Rng rng_a(5);
  Rng rng_b(5);
  for (const auto& make : message_factories()) {
    auto untraced = make(rng_a);
    auto traced = make(rng_b);
    traced->trace.trace_id = 1;
    traced->trace.span_id = 2;
    EXPECT_EQ(traced->wire_bytes(), untraced->wire_bytes())
        << untraced->type_name();
  }
}

}  // namespace
}  // namespace causalec
