// Tests for the shard-local arena recycler (erasure/arena_pool.h).
//
// The pool contract: with a BufferPool installed on the current thread,
// payload-sized Buffer allocations are served from size-class free lists
// once an arena of that class has been released, slices keep arenas alive
// (and out of the free list) until the last reference dies, and the
// process-wide alloc_stats() aggregation stays consistent across live
// pools, closed pools, and plain heap arenas. The multi-threaded cases run
// under TSan via tools/run_sanitized_tests.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "erasure/arena_pool.h"
#include "erasure/buffer.h"

namespace causalec::erasure {
namespace {

TEST(BufferRecycler, RecyclesSameClassAllocations) {
  BufferPool pool;
  BufferPool::ScopedInstall installed(pool);
  const PoolCounters before = pool.counters();

  const std::uint8_t* first_arena = nullptr;
  {
    Buffer b = Buffer::alloc(4096, 0xAB);
    first_arena = b.data();
  }  // last reference died: the arena is back on the 4 KiB free list

  Buffer again = Buffer::alloc(4096, 0xCD);
  const PoolCounters after = pool.counters();
  EXPECT_EQ(after.fresh - before.fresh, 1u);     // only the first alloc
  EXPECT_EQ(after.recycled - before.recycled, 1u);
  EXPECT_EQ(after.returned - before.returned, 1u);
  EXPECT_EQ(again.data(), first_arena);  // literally the same arena
  for (std::size_t i = 0; i < again.size(); ++i) {
    ASSERT_EQ(again.data()[i], 0xCD);
  }
}

TEST(BufferRecycler, SliceKeepsArenaOutOfFreeList) {
  BufferPool pool;
  BufferPool::ScopedInstall installed(pool);

  Buffer whole = Buffer::alloc(4096, 0x11);
  const std::uint8_t* arena = whole.data();
  Buffer slice = whole.slice(100, 200);
  EXPECT_EQ(whole.use_count(), 2);

  whole = Buffer();  // slice still pins the arena
  const PoolCounters mid = pool.counters();
  EXPECT_EQ(mid.returned, 0u);
  EXPECT_EQ(slice.data(), arena + 100);
  EXPECT_EQ(slice.data()[0], 0x11);

  slice = Buffer();  // last reference: now it recycles
  EXPECT_EQ(pool.counters().returned, 1u);
  Buffer reuse = Buffer::alloc(4096);
  EXPECT_EQ(reuse.data(), arena);
  EXPECT_EQ(pool.counters().recycled, 1u);
}

TEST(BufferRecycler, AdoptAndOversizeBypassThePool) {
  BufferPool pool;
  BufferPool::ScopedInstall installed(pool);
  const PoolCounters before = pool.counters();

  {
    std::vector<std::uint8_t> bytes(4096, 1);
    Buffer adopted = Buffer::adopt(std::move(bytes));  // capacity unknown
    Buffer huge = Buffer::alloc((1u << 20) + 1);       // above the top class
  }
  const PoolCounters after = pool.counters();
  EXPECT_EQ(after.fresh, before.fresh);
  EXPECT_EQ(after.returned, before.returned);
}

TEST(BufferRecycler, CountersFoldWhenPoolCloses) {
  Buffer::reset_alloc_stats();
  {
    BufferPool pool;
    BufferPool::ScopedInstall installed(pool);
    { Buffer b = Buffer::alloc(1024); }
    { Buffer b = Buffer::alloc(1024); }  // recycled
    const Buffer::AllocStats live = Buffer::alloc_stats();
    EXPECT_EQ(live.allocations, 1u);
    EXPECT_EQ(live.recycled, 1u);
  }  // pool closed: its counters fold into the process totals
  const Buffer::AllocStats folded = Buffer::alloc_stats();
  EXPECT_EQ(folded.allocations, 1u);
  EXPECT_EQ(folded.recycled, 1u);
  Buffer::reset_alloc_stats();
  EXPECT_EQ(Buffer::alloc_stats().allocations, 0u);
  EXPECT_EQ(Buffer::alloc_stats().recycled, 0u);
}

TEST(BufferRecycler, BuffersOutliveTheirPool) {
  Buffer survivor;
  {
    BufferPool pool;
    BufferPool::ScopedInstall installed(pool);
    survivor = Buffer::alloc(2048, 0x77);
  }  // pool destroyed; the arena holds the (closed) core alive
  EXPECT_EQ(survivor.size(), 2048u);
  EXPECT_EQ(survivor.data()[2047], 0x77);
  survivor = Buffer();  // releases into the closed core: plain delete
}

// Eight "shard" threads, each with its own installed pool, exchanging
// pattern-stamped buffers through a shared mailbox: every buffer is
// verified byte-for-byte by the receiving thread, so recycling a
// still-referenced arena (or cross-pool adoption corrupting a live arena)
// shows up as a pattern mismatch -- and as a race under TSan.
TEST(BufferRecycler, CrossThreadExchangeKeepsContentsIntact) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 400;
  constexpr std::size_t kBytes = 1024;

  std::vector<std::vector<Buffer>> mailboxes(kThreads);
  std::vector<std::unique_ptr<std::mutex>> mail_mu;
  for (int i = 0; i < kThreads; ++i) {
    mail_mu.push_back(std::make_unique<std::mutex>());
  }
  std::atomic<int> failures{0};

  auto shard = [&](int id) {
    BufferPool pool;
    BufferPool::ScopedInstall installed(pool);
    for (int round = 0; round < kRounds; ++round) {
      // Stamp a buffer with a (thread, round)-unique pattern and post it
      // to the next shard.
      const auto stamp = static_cast<std::uint8_t>(id * 31 + round);
      Buffer out = Buffer::alloc(kBytes, stamp);
      const int to = (id + 1) % kThreads;
      {
        std::lock_guard<std::mutex> lock(*mail_mu[to]);
        mailboxes[to].push_back(std::move(out));
      }
      // Drain own mailbox, verifying every byte of every received buffer
      // before dropping it (the drop releases into *some* pool -- origin
      // or this thread's, depending on contention).
      std::vector<Buffer> received;
      {
        std::lock_guard<std::mutex> lock(*mail_mu[id]);
        received.swap(mailboxes[id]);
      }
      for (const Buffer& b : received) {
        const std::uint8_t want = b.data()[0];
        for (std::size_t i = 1; i < b.size(); ++i) {
          if (b.data()[i] != want) {
            failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) threads.emplace_back(shard, i);
  for (auto& t : threads) t.join();
  // Late mailbox remnants release after their origin pools died -- that
  // path (closed-core release) must also be clean.
  mailboxes.clear();
  EXPECT_EQ(failures.load(), 0);
}

TEST(BufferRecycler, StatsAggregateAcrossLivePools) {
  Buffer::reset_alloc_stats();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      BufferPool pool;
      BufferPool::ScopedInstall installed(pool);
      for (int i = 0; i < 10; ++i) {
        Buffer b = Buffer::alloc(512);
      }  // 1 fresh + 9 recycled per thread
      const Buffer::AllocStats stats = Buffer::alloc_stats();
      // At least this thread's own counts are visible process-wide.
      EXPECT_GE(stats.allocations, 1u);
      EXPECT_GE(stats.recycled, 9u);
    });
  }
  for (auto& t : threads) t.join();
  const Buffer::AllocStats total = Buffer::alloc_stats();
  EXPECT_EQ(total.allocations, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(total.recycled, static_cast<std::uint64_t>(kThreads) * 9);
  Buffer::reset_alloc_stats();
}

}  // namespace
}  // namespace causalec::erasure
