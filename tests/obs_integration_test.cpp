// End-to-end observability: a traced simulated cluster must produce span
// counts that agree exactly with the ServerCounters the protocol already
// keeps, the metrics registry must mirror them, and the storage sampler
// must record the transient-storage time series. A second test drives the
// threaded runtime against the same (thread-safe) sinks.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>

#include "causalec/cluster.h"
#include "common/random.h"
#include "erasure/codes.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "runtime/threaded_cluster.h"
#include "sim/latency.h"

namespace causalec {
namespace {

using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

ServerCounters sum_counters(Cluster& cluster) {
  ServerCounters total;
  for (NodeId s = 0; s < cluster.num_servers(); ++s) {
    const ServerCounters& c = cluster.server(s).counters();
    total.writes += c.writes;
    total.reads += c.reads;
    total.reads_served_from_history += c.reads_served_from_history;
    total.reads_served_local_decode += c.reads_served_local_decode;
    total.reads_registered_remote += c.reads_registered_remote;
    total.internal_reads_started += c.internal_reads_started;
    total.reencodes += c.reencodes;
    total.gc_runs += c.gc_runs;
    total.history_entries_collected += c.history_entries_collected;
  }
  return total;
}

TEST(ObsIntegrationTest, SpanCountsMatchServerCounters) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::TimeSeries series(Cluster::storage_series_columns());

  ClusterConfig config;
  config.gc_period = 50 * kMillisecond;
  config.seed = 5;
  config.obs.tracer = &tracer;
  config.obs.metrics = &metrics;
  config.storage_series = &series;
  config.storage_sample_period = 20 * kMillisecond;
  auto cluster = std::make_unique<Cluster>(
      erasure::make_systematic_rs(5, 3, 64),
      std::make_unique<sim::ConstantLatency>(5 * kMillisecond), config);

  // Seeded write mix from every server, then remote reads from the parity
  // servers (which never hold an uncoded copy, forcing the read protocol).
  Rng rng(42);
  std::vector<Client*> writers;
  for (NodeId s = 0; s < 5; ++s) writers.push_back(&cluster->make_client(s));
  for (int op = 0; op < 40; ++op) {
    writers[rng.next_below(5)]->write(
        static_cast<ObjectId>(rng.next_below(3)),
        Value(64, static_cast<std::uint8_t>(rng.next_u64())));
    cluster->run_for(rng.next_below(15) * kMillisecond);
  }
  cluster->settle();

  int completed_reads = 0;
  for (int i = 0; i < 12; ++i) {
    cluster->make_client(static_cast<NodeId>(3 + i % 2))
        .read(static_cast<ObjectId>(i % 3),
              [&completed_reads](const Value&, const Tag&,
                                 const VectorClock&) { ++completed_reads; });
    cluster->run_for(kSecond);
  }
  cluster->settle();
  EXPECT_EQ(completed_reads, 12);

  const ServerCounters total = sum_counters(*cluster);
  EXPECT_GT(total.reads_registered_remote, 0u);

  // Spans agree exactly with the protocol's own counters.
  EXPECT_EQ(tracer.count("write", 'X'), total.writes);
  EXPECT_EQ(tracer.count("read", 'X') + tracer.count("read.remote", 'b'),
            total.reads);
  EXPECT_EQ(tracer.count("read.remote", 'b'), total.reads_registered_remote);
  EXPECT_EQ(tracer.count("read.remote", 'e'),
            tracer.count("read.remote", 'b'));
  EXPECT_EQ(tracer.count("read.internal", 'b'),
            total.internal_reads_started);
  EXPECT_EQ(tracer.count("read.internal", 'e'),
            tracer.count("read.internal", 'b'));
  EXPECT_EQ(tracer.count("reencode", 'i'), total.reencodes);
  EXPECT_EQ(tracer.count("gc", 'X'), total.gc_runs);

  // Message events agree with the simulator's accounting, one send and one
  // delivery per message (no server was halted).
  const auto& net = cluster->sim().stats();
  EXPECT_EQ(tracer.count("msg.send", 'i'), net.total_messages);
  EXPECT_EQ(tracer.count("msg.deliver", 'i'), net.total_messages);

  // The metrics registry mirrors both.
  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("server.writes"), total.writes);
  EXPECT_EQ(snap.counters.at("server.reads"), total.reads);
  EXPECT_EQ(snap.counters.at("server.reads_remote"),
            total.reads_registered_remote);
  EXPECT_EQ(snap.counters.at("server.reencodes"), total.reencodes);
  EXPECT_EQ(snap.counters.at("server.gc_collected"),
            total.history_entries_collected);
  EXPECT_EQ(snap.counters.at("net.messages"), net.total_messages);
  EXPECT_EQ(snap.counters.at("net.bytes"), net.total_bytes);
  // Every completed read observed one end-to-end latency sample.
  EXPECT_EQ(snap.histograms.at("server.read_latency_ns").count, total.reads);
  EXPECT_EQ(snap.histograms.at("server.write_bytes").count, total.writes);

  // The storage sampler recorded per-server rows of the right shape.
  EXPECT_GT(series.size(), 0u);
  for (const auto& row : series.rows()) {
    EXPECT_LT(row.node, 5u);
    EXPECT_EQ(row.values.size(), Cluster::storage_series_columns().size());
  }

  // And the whole trace exports as well-formed Chrome JSON.
  EXPECT_EQ(tracer.dropped(), 0u);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  EXPECT_TRUE(obs::is_valid_json(out.str()));
}

TEST(ObsIntegrationTest, ThreadedClusterSharesSinksAcrossNodeThreads) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;

  runtime::ThreadedClusterConfig config;
  config.gc_period = std::chrono::milliseconds(10);
  config.obs.tracer = &tracer;
  config.obs.metrics = &metrics;
  runtime::ThreadedCluster cluster(erasure::make_systematic_rs(5, 3, 32),
                                   config);

  constexpr int kWrites = 20;
  for (int i = 0; i < kWrites; ++i) {
    cluster.write(static_cast<NodeId>(i % 5), /*client=*/1,
                  static_cast<ObjectId>(i % 3),
                  Value(32, static_cast<std::uint8_t>(i)));
  }
  for (ObjectId x = 0; x < 3; ++x) {
    const auto [value, tag] = cluster.read(/*at=*/4, /*client=*/2, x);
    EXPECT_EQ(value.size(), 32u);
  }
  EXPECT_TRUE(
      cluster.await_convergence(std::chrono::milliseconds(5000)));

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("server.writes"), kWrites);
  EXPECT_EQ(snap.counters.at("server.reads"), 3u);
  EXPECT_GT(snap.counters.at("net.messages"), 0u);
  EXPECT_EQ(tracer.count("write", 'X'), kWrites);
  EXPECT_EQ(tracer.count("msg.send", 'i'),
            snap.counters.at("net.messages"));
  EXPECT_GT(tracer.count("msg.deliver", 'i'), 0u);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  EXPECT_TRUE(obs::is_valid_json(out.str()));
}

}  // namespace
}  // namespace causalec
