// Tests for GroupedStore: the multi-group deployment model of Sec. 4.2
// (many objects, independent codes per group, shared server nodes).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "causalec/grouped_store.h"
#include "erasure/codes.h"
#include "sim/latency.h"
#include "sim/simulation.h"

namespace causalec {
namespace {

using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

constexpr std::size_t kValueBytes = 32;

GroupedStoreConfig make_config(std::size_t groups, std::size_t n,
                               std::size_t k) {
  GroupedStoreConfig config;
  for (std::size_t g = 0; g < groups; ++g) {
    config.group_codes.push_back(
        erasure::make_systematic_rs(n, k, kValueBytes));
  }
  config.gc_period = 20 * kMillisecond;
  return config;
}

struct World {
  World(std::size_t groups, std::size_t n, std::size_t k)
      : sim(std::make_unique<sim::ConstantLatency>(5 * kMillisecond), 1),
        store(&sim, make_config(groups, n, k)) {}
  sim::Simulation sim;
  GroupedStore store;
};

TEST(GroupedStoreTest, LocateMapsGlobalIds) {
  World w(4, 5, 3);
  EXPECT_EQ(w.store.num_objects(), 12u);
  EXPECT_EQ(w.store.num_groups(), 4u);
  EXPECT_EQ(w.store.locate(0), (std::pair<std::size_t, ObjectId>{0, 0}));
  EXPECT_EQ(w.store.locate(2), (std::pair<std::size_t, ObjectId>{0, 2}));
  EXPECT_EQ(w.store.locate(3), (std::pair<std::size_t, ObjectId>{1, 0}));
  EXPECT_EQ(w.store.locate(11), (std::pair<std::size_t, ObjectId>{3, 2}));
}

TEST(GroupedStoreTest, HeterogeneousGroupSizes) {
  GroupedStoreConfig config;
  config.group_codes.push_back(erasure::make_systematic_rs(5, 2, 16));
  config.group_codes.push_back(erasure::make_systematic_rs(5, 4, 16));
  sim::Simulation sim(std::make_unique<sim::ConstantLatency>(kMillisecond));
  GroupedStore store(&sim, std::move(config));
  EXPECT_EQ(store.num_objects(), 6u);
  EXPECT_EQ(store.locate(1), (std::pair<std::size_t, ObjectId>{0, 1}));
  EXPECT_EQ(store.locate(2), (std::pair<std::size_t, ObjectId>{1, 0}));
  EXPECT_EQ(store.locate(5), (std::pair<std::size_t, ObjectId>{1, 3}));
}

TEST(GroupedStoreTest, WriteReadAcrossGroups) {
  World w(4, 5, 3);
  // Write a distinct value to one object in each group.
  for (std::size_t g = 0; g < 4; ++g) {
    w.store.write(/*at=*/0, /*client=*/1, g * 3 + 1,
                  Value(kValueBytes, static_cast<std::uint8_t>(g + 10)));
  }
  w.sim.run_until_idle();
  // Read each back from a different server.
  for (std::size_t g = 0; g < 4; ++g) {
    std::optional<Value> got;
    w.store.read(/*at=*/4, /*client=*/2, g * 3 + 1,
                 [&](const Value& v, const Tag&, const VectorClock&) {
                   got = v;
                 });
    w.sim.run_until(w.sim.now() + kSecond);
    ASSERT_TRUE(got.has_value()) << "group " << g;
    EXPECT_EQ(*got, Value(kValueBytes, static_cast<std::uint8_t>(g + 10)));
  }
  // After GC the values survive only inside codeword symbols, so a read at
  // a parity node must decode -- through each group's plan cache. The
  // store-level stats aggregate across all group codes. (The readl/dell
  // ack cycle needs a few rounds before history entries actually drop.)
  for (int round = 0; round < 4; ++round) {
    for (NodeId s = 0; s < 5; ++s) w.store.run_garbage_collection(s);
    w.sim.run_until_idle();
  }
  ASSERT_EQ(w.store.storage(4).history_entries, 0u);
  for (std::size_t g = 0; g < 4; ++g) {
    std::optional<Value> got;
    w.store.read(/*at=*/4, /*client=*/3, g * 3 + 1,
                 [&](const Value& v, const Tag&, const VectorClock&) {
                   got = v;
                 });
    w.sim.run_until(w.sim.now() + kSecond);
    ASSERT_TRUE(got.has_value()) << "group " << g;
    EXPECT_EQ(*got, Value(kValueBytes, static_cast<std::uint8_t>(g + 10)));
  }
  const auto stats = w.store.decode_plan_cache_stats();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_LE(stats.entries, stats.misses);
}

TEST(GroupedStoreTest, GroupsAreIsolated) {
  World w(2, 5, 3);
  w.store.write(0, 1, 0, Value(kValueBytes, 1));  // group 0 only
  w.sim.run_until_idle();
  // Group 1's servers saw no traffic: vector clocks stay zero.
  for (NodeId s = 0; s < 5; ++s) {
    EXPECT_TRUE(w.store.server(s, 1).clock().is_zero()) << "server " << s;
  }
  // ...while group 0 did see the write everywhere.
  for (NodeId s = 0; s < 5; ++s) {
    EXPECT_FALSE(w.store.server(s, 0).clock().is_zero()) << "server " << s;
  }
}

TEST(GroupedStoreTest, StorageAggregatesAndConverges) {
  World w(3, 5, 3);
  for (GlobalObjectId x = 0; x < 9; ++x) {
    w.store.write(static_cast<NodeId>(x % 5), 1, x,
                  Value(kValueBytes, static_cast<std::uint8_t>(x + 1)));
  }
  w.sim.run_until_idle();
  // Histories hold versions before GC.
  EXPECT_GT(w.store.storage(0).history_entries, 0u);
  // Manual GC rounds drain everything.
  for (int round = 0; round < 8; ++round) {
    for (NodeId s = 0; s < 5; ++s) w.store.run_garbage_collection(s);
    w.sim.run_until_idle();
  }
  for (NodeId s = 0; s < 5; ++s) {
    const auto st = w.store.storage(s);
    EXPECT_EQ(st.history_entries, 0u) << "server " << s;
    EXPECT_EQ(st.inqueue_entries, 0u);
    EXPECT_EQ(st.readl_entries, 0u);
    // Stable state: one codeword symbol per group.
    EXPECT_EQ(st.codeword_bytes, 3u * kValueBytes);
  }
}

TEST(GroupedStoreTest, PeriodicGcTimersConverge) {
  World w(2, 5, 3);
  w.store.arm_gc_timers();
  for (GlobalObjectId x = 0; x < 6; ++x) {
    w.store.write(0, 1, x, Value(kValueBytes, 7));
  }
  w.sim.run_until(2 * kSecond);  // several GC periods
  for (NodeId s = 0; s < 5; ++s) {
    EXPECT_EQ(w.store.storage(s).history_entries, 0u) << "server " << s;
  }
}

TEST(GroupedStoreTest, ByteAccountingSeesInnerMessageSizes) {
  World w(1, 5, 3);
  w.sim.stats().reset();
  w.store.write(0, 1, 0, Value(kValueBytes, 1));
  w.sim.run_until_idle();
  // The app broadcast shows up under the inner type name with the inner
  // wire size (header + B + vector tag).
  const auto& by_type = w.sim.stats().by_type;
  ASSERT_TRUE(by_type.count("app"));
  EXPECT_EQ(by_type.at("app").count, 4u);
  EXPECT_EQ(by_type.at("app").bytes / 4, 16u + kValueBytes + 5u * 8 + 8);
}

}  // namespace
}  // namespace causalec
