// Allocation-count regression tests for the zero-copy payload path.
//
// The data-path contract (DESIGN.md "Payload memory model"): one client
// write performs O(1) payload-arena allocations no matter how many servers
// the value fans out to, because every hop -- history list, broadcast
// messages, InQueue, re-encode input -- shares the same refcounted
// erasure::Buffer. A served read allocates at most once (the decoded
// output). These tests pin that down with erasure::Buffer's global
// allocation counters so a reintroduced per-hop copy fails loudly instead
// of only showing up as a throughput regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>

#include "causalec/cluster.h"
#include "erasure/buffer.h"
#include "erasure/codes.h"
#include "erasure/value.h"
#include "sim/latency.h"

namespace causalec {
namespace {

using erasure::Buffer;
using erasure::Value;

std::uint64_t allocs_now() { return Buffer::alloc_stats().allocations; }

// ---------------------------------------------------------------------------
// Counter semantics: arenas are counted, handles and slices are not.
// ---------------------------------------------------------------------------

TEST(BufferCounters, ArenasCountedHandlesAndSlicesNot) {
  const std::uint64_t before = allocs_now();
  Buffer a = Buffer::alloc(64, 0xab);
  EXPECT_EQ(allocs_now() - before, 1u);

  Buffer copy = a;                  // handle copy: same arena
  Buffer tail = a.slice(16, 32);    // slice: same arena
  EXPECT_EQ(allocs_now() - before, 1u);
  EXPECT_EQ(copy.data(), a.data());
  EXPECT_EQ(tail.data(), a.data() + 16);
  EXPECT_EQ(tail.size(), 32u);

  std::vector<std::uint8_t> bytes(8, 7);
  Buffer adopted = Buffer::adopt(std::move(bytes));
  Buffer copied = Buffer::copy_of(adopted.span());
  EXPECT_EQ(allocs_now() - before, 3u);
  EXPECT_NE(copied.data(), adopted.data());
}

TEST(ValueCow, CopiesShareUntilFirstMutation) {
  Value original(64, 0x5a);
  const std::uint64_t before = allocs_now();

  Value shared = original;  // share, no copy
  EXPECT_EQ(shared.data(), original.data());
  EXPECT_EQ(allocs_now() - before, 0u);

  // Const access never copies.
  const Value& view = shared;
  EXPECT_EQ(view[3], 0x5a);
  EXPECT_EQ(allocs_now() - before, 0u);

  // First mutation of a shared handle unshares exactly once; the original
  // is untouched.
  shared[0] = 0x01;
  EXPECT_EQ(allocs_now() - before, 1u);
  EXPECT_NE(shared.data(), original.data());
  EXPECT_EQ(original[0], 0x5a);
  EXPECT_EQ(shared[1], 0x5a);

  // Mutating a now-unique handle is in-place.
  shared[2] = 0x02;
  EXPECT_EQ(allocs_now() - before, 1u);
}

// ---------------------------------------------------------------------------
// Protocol-level bounds, measured through a full simulated cluster.
// ---------------------------------------------------------------------------

constexpr std::size_t kBytes = 64;

std::unique_ptr<Cluster> make_rs_cluster(std::size_t n, std::size_t k) {
  ClusterConfig config;
  config.seed = 7;
  return std::make_unique<Cluster>(
      erasure::make_systematic_rs(n, k, kBytes),
      std::make_unique<sim::ConstantLatency>(sim::kMillisecond), config);
}

/// Payload arenas allocated by one settled write (broadcast to all n
/// servers, applied and re-encoded everywhere), excluding the client's own
/// construction of the value.
std::uint64_t settled_write_allocs(std::size_t n, std::size_t k) {
  auto cluster = make_rs_cluster(n, k);
  Client& client = cluster->make_client(0);
  Value value(kBytes, 0x42);
  const std::uint64_t before = allocs_now();
  client.write(0, value);
  cluster->settle();
  return allocs_now() - before;
}

TEST(CopyCount, WriteAllocationsIndependentOfClusterSize) {
  const std::uint64_t at4 = settled_write_allocs(4, 3);
  const std::uint64_t at6 = settled_write_allocs(6, 3);
  const std::uint64_t at8 = settled_write_allocs(8, 3);
  // O(1): the same constant at every n, and far below one-copy-per-server.
  EXPECT_EQ(at4, at6);
  EXPECT_EQ(at6, at8);
  EXPECT_LE(at6, 2u) << "write path copies the payload per hop again";
}

TEST(CopyCount, ServedReadAllocatesAtMostOnce) {
  auto cluster = make_rs_cluster(6, 3);
  Client& writer = cluster->make_client(0);
  writer.write(0, Value(kBytes, 0x42));
  cluster->settle();  // drains + enough GC rounds: history lists emptied

  // Server 5 is a parity server of the systematic RS code, so this read
  // cannot be served from a local uncoded symbol: it fans out to a
  // recovery set and decodes. The only payload arena the read may allocate
  // is the decoded output value.
  Client& reader = cluster->make_client(5);
  const std::uint64_t before = allocs_now();
  std::optional<Value> got;
  reader.read(0, [&](const Value& v, const Tag&, const VectorClock&) {
    got = v;  // shares -- no copy
  });
  cluster->settle();
  const std::uint64_t delta = allocs_now() - before;

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Value(kBytes, 0x42));
  EXPECT_LE(delta, 1u) << "decode-path read copies beyond the output value";
}

TEST(CopyCount, HistoryServedReadSharesTheStoredArena) {
  auto cluster = make_rs_cluster(6, 3);
  Client& writer = cluster->make_client(0);
  Value value(kBytes, 0x42);
  writer.write(0, value);

  // Before GC the write is still in the server's history list, so the
  // read is served from history: the returned value must be the stored
  // handle itself -- which still aliases the client's original arena --
  // with zero allocations.
  const std::uint64_t before = allocs_now();
  std::optional<Value> got;
  writer.read(0, [&](const Value& v, const Tag&, const VectorClock&) {
    got = v;
  });
  cluster->settle();
  const std::uint64_t delta = allocs_now() - before;

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data(), value.data()) << "read copied instead of sharing";
  EXPECT_EQ(delta, 0u);
}

TEST(CopyCount, LocalDecodeReadAllocatesOnlyTheOutput) {
  auto cluster = make_rs_cluster(6, 3);
  Client& writer = cluster->make_client(0);
  writer.write(0, Value(kBytes, 0x42));
  cluster->settle();  // GC empties the history list

  // Server 0 holds object 0 uncoded (systematic row), so the read decodes
  // from the local codeword symbol: exactly one arena for the output.
  const std::uint64_t before = allocs_now();
  std::optional<Value> got;
  writer.read(0, [&](const Value& v, const Tag&, const VectorClock&) {
    got = v;
  });
  cluster->settle();
  const std::uint64_t delta = allocs_now() - before;

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Value(kBytes, 0x42));
  EXPECT_EQ(delta, 1u);
}

}  // namespace
}  // namespace causalec
