// Unit tests for the workload module: zipfian math, the sampler, and the
// closed-loop driver.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sim/latency.h"
#include "sim/simulation.h"
#include "workload/driver.h"
#include "workload/zipf.h"

namespace causalec::workload {
namespace {

TEST(ZipfMathTest, HarmonicMatchesExactForSmallN) {
  double exact = 0;
  for (int i = 1; i <= 1000; ++i) exact += std::pow(i, -0.99);
  EXPECT_NEAR(zipf_harmonic(1000, 0.99), exact, 1e-9);
}

TEST(ZipfMathTest, HarmonicLargeNIsConsistent) {
  // H_{2a} - H_a ~ integral of x^-theta over [a, 2a].
  const double theta = 0.99;
  const double a = 1e7;
  const double diff = zipf_harmonic(2 * a, theta) - zipf_harmonic(a, theta);
  const double integral =
      (std::pow(2 * a, 1 - theta) - std::pow(a, 1 - theta)) / (1 - theta);
  EXPECT_NEAR(diff / integral, 1.0, 1e-4);
}

TEST(ZipfMathTest, PmfSumsToOne) {
  double sum = 0;
  for (int i = 1; i <= 500; ++i) sum += zipf_pmf(i, 500, 0.99);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfMathTest, RankForMassIsMonotone) {
  const double n = 1e6, theta = 0.99;
  const double r50 = zipf_rank_for_mass(0.5, n, theta);
  const double r90 = zipf_rank_for_mass(0.9, n, theta);
  EXPECT_LT(r50, r90);
  EXPECT_GT(r50, 1);
  EXPECT_LT(r90, n);
}

TEST(ZipfMathTest, FractionBelowRateEdges) {
  const double n = 1e6, theta = 0.99, total = 1e5;
  // A threshold above the hottest object's rate -> everything is "cold".
  const double hottest = zipf_rate_of_rank(1, total, n, theta);
  EXPECT_DOUBLE_EQ(zipf_fraction_below_rate(hottest * 2, total, n, theta),
                   1.0);
  // A threshold below the coldest object's rate -> nothing is cold.
  const double coldest = zipf_rate_of_rank(n, total, n, theta);
  EXPECT_DOUBLE_EQ(zipf_fraction_below_rate(coldest / 2, total, n, theta),
                   0.0);
  // Monotone in the threshold.
  const double f1 = zipf_fraction_below_rate(1e-3, total, n, theta);
  const double f2 = zipf_fraction_below_rate(1e-2, total, n, theta);
  EXPECT_LE(f1, f2);
}

TEST(ZipfMathTest, PaperScaleYcsbClaim) {
  // Sec. 4.2: 120M objects, Zipf 0.99, 200k req/s, 50% writes ->
  // "rho_w < 1/1000 per second for more than 95% of the objects".
  const double n = 120e6;
  const double write_rate = 200'000 * 0.5;
  const double fraction =
      zipf_fraction_below_rate(1.0 / 1000, write_rate, n, 0.99);
  EXPECT_GT(fraction, 0.95);
}

TEST(ZipfGeneratorTest, RanksFollowZipfShape) {
  ZipfGenerator gen(1000, 0.99, 42);
  std::map<std::uint64_t, int> counts;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) counts[gen.next()]++;
  // Rank 0 should get roughly pmf(1) of the mass.
  const double expected0 = zipf_pmf(1, 1000, 0.99);
  EXPECT_NEAR(counts[0] / static_cast<double>(samples), expected0,
              expected0 * 0.1);
  // Counts decrease (statistically) with rank: compare head to mid.
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[5], counts[500]);
  // All samples within range.
  for (const auto& [rank, count] : counts) EXPECT_LT(rank, 1000u);
}

TEST(ZipfGeneratorTest, ScrambledCoversSpace) {
  ZipfGenerator gen(10000, 0.99, 7);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[gen.next_scrambled()]++;
  // Scrambling spreads the hot keys: the hottest scrambled key must hold
  // the zipf head mass, but its identity should not be 0.
  std::uint64_t hottest = 0;
  int best = 0;
  for (const auto& [key, count] : counts) {
    if (count > best) {
      best = count;
      hottest = key;
    }
  }
  EXPECT_NE(hottest, 0u);
  EXPECT_GT(counts.size(), 1000u);
}

TEST(DriverTest, ClosedLoopIssuesAndMeasures) {
  sim::Simulation sim(std::make_unique<sim::ConstantLatency>(0), 1);
  auto picker = std::make_shared<KeyPicker>(16, 0.0, 3);
  ClosedLoopDriver driver(&sim, OpMix{0.5}, picker, /*think_rate_hz=*/100,
                          7);
  int writes = 0, reads = 0;
  ClosedLoopDriver::Session session;
  session.issue_write = [&](ObjectId, std::function<void()> done) {
    ++writes;
    done();  // instantaneous write
  };
  session.issue_read = [&](ObjectId x, std::function<void()> done) {
    ++reads;
    EXPECT_LT(x, 16u);
    // Simulated 5ms read.
    sim.schedule_after(5 * sim::kMillisecond, std::move(done));
  };
  driver.add_session(session);
  driver.add_session(session);
  driver.start(2 * sim::kSecond);
  sim.run_until_idle();

  const auto& stats = driver.stats();
  EXPECT_EQ(stats.writes, static_cast<std::uint64_t>(writes));
  EXPECT_EQ(stats.reads, static_cast<std::uint64_t>(reads));
  EXPECT_GT(stats.writes + stats.reads, 100u);
  // Write latency 0, read latency 5ms.
  EXPECT_DOUBLE_EQ(DriverStats::mean_ms(stats.write_latencies), 0.0);
  EXPECT_DOUBLE_EQ(DriverStats::mean_ms(stats.read_latencies), 5.0);
  EXPECT_EQ(DriverStats::max(stats.read_latencies), 5 * sim::kMillisecond);
  EXPECT_EQ(DriverStats::percentile(stats.read_latencies, 0.5),
            5 * sim::kMillisecond);
}

}  // namespace
}  // namespace causalec::workload
