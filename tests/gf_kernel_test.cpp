// Differential property tests for the dispatched GF kernel tiers: every
// available tier (scalar / sliced / SSSE3 / AVX2) must produce output
// byte-identical to the scalar reference for add_into / sub_into / axpy /
// scale over GF(2^8), GF(2^16), and F_257, across random coefficients,
// adversarial lengths (0, 1, SIMD-block boundaries, the scalar
// product-table threshold, 64 KiB), and unaligned offsets. Plus the
// aliasing-abort regression tests for the overlap CHECK.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "gf/gf256.h"
#include "gf/gf2_16.h"
#include "gf/kernels.h"
#include "gf/prime_field.h"
#include "gf/vector_ops.h"

namespace causalec::gf {
namespace {

using kernels::ScopedTierForTesting;
using kernels::Tier;

std::vector<Tier> available_tiers() {
  std::vector<Tier> tiers;
  for (int t = 0; t < kernels::kNumTiers; ++t) {
    if (kernels::tier_available(static_cast<Tier>(t))) {
      tiers.push_back(static_cast<Tier>(t));
    }
  }
  return tiers;
}

/// Adversarial lengths: 0/1, every SIMD block boundary +-1 (8 for the
/// sliced tier, 16 for SSSE3, 32 for AVX2), the scalar product-table
/// threshold +-1, and a 64 KiB block.
const std::size_t kLengths[] = {0,    1,    7,    8,    9,    15,   16,
                                17,   31,   32,   33,   63,   64,   65,
                                1023, 1024, 1025, 4096, 65536};

/// Unaligned starting offsets within an oversized buffer, so the SIMD
/// loads/stores straddle cache lines and vector-width boundaries.
const std::size_t kOffsets[] = {0, 1, 3, 7, 13};

template <Field F>
std::vector<typename F::Elem> random_elems(Rng& rng, std::size_t n) {
  std::vector<typename F::Elem> v(n);
  for (auto& x : v) x = F::from_int(rng.next_u64());
  return v;
}

/// Runs one (op, tier, length, offset) configuration of `op_under_test`
/// against the elementwise reference `reference`, on buffers carved at an
/// unaligned offset out of larger allocations.
template <Field F, typename Op, typename Ref>
void check_differential(Tier tier, Op op_under_test, Ref reference) {
  Rng rng(0xD1FFu ^ static_cast<std::uint64_t>(tier));
  for (const std::size_t n : kLengths) {
    for (const std::size_t offset : kOffsets) {
      const auto dst_all = random_elems<F>(rng, n + offset + 8);
      const auto src_all = random_elems<F>(rng, n + offset + 8);
      const typename F::Elem a = F::from_int(rng.next_u64());

      std::vector<typename F::Elem> got = dst_all;
      std::vector<typename F::Elem> want = dst_all;
      {
        ScopedTierForTesting guard(tier);
        op_under_test(std::span<typename F::Elem>(got).subspan(offset, n), a,
                      std::span<const typename F::Elem>(src_all).subspan(
                          offset, n));
      }
      reference(std::span<typename F::Elem>(want).subspan(offset, n), a,
                std::span<const typename F::Elem>(src_all).subspan(offset, n));
      ASSERT_EQ(got, want) << "tier=" << kernels::tier_name(tier)
                           << " n=" << n << " offset=" << offset
                           << " a=" << static_cast<std::uint64_t>(a);
    }
  }
}

template <Field F>
void run_all_ops_all_tiers() {
  using Elem = typename F::Elem;
  using Dst = std::span<Elem>;
  using Src = std::span<const Elem>;
  for (const Tier tier : available_tiers()) {
    SCOPED_TRACE(kernels::tier_name(tier));
    check_differential<F>(
        tier, [](Dst d, Elem, Src s) { add_into<F>(d, s); },
        [](Dst d, Elem, Src s) {
          for (std::size_t i = 0; i < d.size(); ++i) d[i] = F::add(d[i], s[i]);
        });
    check_differential<F>(
        tier, [](Dst d, Elem, Src s) { sub_into<F>(d, s); },
        [](Dst d, Elem, Src s) {
          for (std::size_t i = 0; i < d.size(); ++i) d[i] = F::sub(d[i], s[i]);
        });
    check_differential<F>(
        tier, [](Dst d, Elem a, Src s) { axpy<F>(d, a, s); },
        [](Dst d, Elem a, Src s) {
          for (std::size_t i = 0; i < d.size(); ++i) {
            d[i] = F::add(d[i], F::mul(a, s[i]));
          }
        });
    check_differential<F>(
        tier, [](Dst d, Elem a, Src) { scale<F>(d, a); },
        [](Dst d, Elem a, Src) {
          for (auto& x : d) x = F::mul(a, x);
        });
  }
}

TEST(GfKernelDifferentialTest, GF256AllTiersMatchScalar) {
  run_all_ops_all_tiers<GF256>();
}

TEST(GfKernelDifferentialTest, GF2_16AllTiersMatchScalar) {
  run_all_ops_all_tiers<GF2_16>();
}

TEST(GfKernelDifferentialTest, F257AllTiersMatchScalar) {
  run_all_ops_all_tiers<F257>();
}

TEST(GfKernelDifferentialTest, MulRegionMatchesFieldMul) {
  Rng rng(99);
  for (const Tier tier : available_tiers()) {
    ScopedTierForTesting guard(tier);
    for (const std::size_t n : kLengths) {
      const auto src = random_elems<GF256>(rng, n);
      std::vector<std::uint8_t> dst(n, 0xAA);
      const std::uint8_t a = GF256::from_int(rng.next_u64());
      kernels::mul_region_gf256(dst.data(), src.data(), a, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst[i], GF256::mul(a, src[i]))
            << "tier=" << kernels::tier_name(tier) << " n=" << n
            << " i=" << i;
      }
    }
  }
}

/// Every coefficient (not just random ones) through every tier, on a
/// length that exercises both the vector body and the tail.
TEST(GfKernelDifferentialTest, ExhaustiveCoefficientsGF256) {
  Rng rng(7);
  const std::size_t n = 37;  // 32 + 4 + 1: body + tail for every tier
  const auto src = random_elems<GF256>(rng, n);
  const auto dst0 = random_elems<GF256>(rng, n);
  for (int a = 0; a < 256; ++a) {
    std::vector<std::uint8_t> want = dst0;
    for (std::size_t i = 0; i < n; ++i) {
      want[i] ^= GF256::mul(static_cast<std::uint8_t>(a), src[i]);
    }
    for (const Tier tier : available_tiers()) {
      ScopedTierForTesting guard(tier);
      std::vector<std::uint8_t> got = dst0;
      axpy<GF256>(std::span<std::uint8_t>(got),
                  static_cast<std::uint8_t>(a),
                  std::span<const std::uint8_t>(src));
      ASSERT_EQ(got, want) << "tier=" << kernels::tier_name(tier)
                           << " a=" << a;
    }
  }
}

/// Dedicated GFNI sweep: the generic all-tier tests above already include
/// gfni when available, but this test makes the GFNI coverage (or its
/// absence) visible in the test report rather than silently folding into
/// the loop.
TEST(GfKernelDifferentialTest, GfniTierMatchesScalar) {
  if (!kernels::tier_available(Tier::kGfni)) {
    GTEST_SKIP() << "GFNI tier unavailable (cpu gfni_avx512="
                 << kernels::cpu_features().gfni_avx512
                 << "); differential sweep NOT exercised on this host. "
                 << "Available tiers: " << kernels::available_tier_names();
  }
  using Dst = std::span<std::uint8_t>;
  using Src = std::span<const std::uint8_t>;
  check_differential<GF256>(
      Tier::kGfni, [](Dst d, std::uint8_t a, Src s) { axpy<GF256>(d, a, s); },
      [](Dst d, std::uint8_t a, Src s) {
        for (std::size_t i = 0; i < d.size(); ++i) {
          d[i] ^= GF256::mul(a, s[i]);
        }
      });
  check_differential<GF256>(
      Tier::kGfni, [](Dst d, std::uint8_t a, Src) { scale<GF256>(d, a); },
      [](Dst d, std::uint8_t a, Src) {
        for (auto& x : d) x = GF256::mul(a, x);
      });
}

// ---------------------------------------------------------------------------
// axpy_batch: the fused multi-term pass must be byte-identical to applying
// the same terms through sequential axpy calls (XOR accumulation is
// order-independent, so there is exactly one right answer).
// ---------------------------------------------------------------------------

TEST(GfKernelDifferentialTest, AxpyBatchMatchesSequentialAxpy) {
  Rng rng(0xBA7C4);
  // Term counts straddle the kMaxBatchTerms chunk boundary to exercise the
  // entry point's chunking, and include 0 (no-op) and 1 (degenerate).
  const std::size_t kTermCounts[] = {0, 1, 2, 3, 7, 15, 16, 17, 33};
  for (const Tier tier : available_tiers()) {
    SCOPED_TRACE(kernels::tier_name(tier));
    for (const std::size_t num_terms : kTermCounts) {
      for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                  std::size_t{63}, std::size_t{64},
                                  std::size_t{65}, std::size_t{1024},
                                  std::size_t{4096}}) {
        const auto dst0 = random_elems<GF256>(rng, n);
        std::vector<std::vector<std::uint8_t>> srcs;
        std::vector<AxpyTerm<GF256>> terms;
        srcs.reserve(num_terms);
        for (std::size_t t = 0; t < num_terms; ++t) {
          srcs.push_back(random_elems<GF256>(rng, n));
          // Sprinkle zero and one coefficients among random ones: zeros
          // must be skipped, ones must still fuse.
          std::uint8_t coeff;
          if (t % 5 == 0) {
            coeff = 0;
          } else if (t % 7 == 0) {
            coeff = 1;
          } else {
            coeff = GF256::from_int(rng.next_u64());
          }
          terms.push_back({coeff, std::span<const std::uint8_t>(srcs.back())});
        }

        std::vector<std::uint8_t> want = dst0;
        {
          ScopedTierForTesting scalar_guard(Tier::kScalar);
          for (const auto& term : terms) {
            axpy<GF256>(std::span<std::uint8_t>(want), term.coeff, term.src);
          }
        }

        ScopedTierForTesting guard(tier);
        std::vector<std::uint8_t> got = dst0;
        axpy_batch<GF256>(std::span<std::uint8_t>(got),
                          std::span<const AxpyTerm<GF256>>(terms));
        ASSERT_EQ(got, want) << "tier=" << kernels::tier_name(tier)
                             << " terms=" << num_terms << " n=" << n;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST(GfKernelDispatchTest, ScalarAndSlicedAlwaysAvailable) {
  EXPECT_TRUE(kernels::tier_available(Tier::kScalar));
  EXPECT_TRUE(kernels::tier_available(Tier::kSliced));
  EXPECT_TRUE(kernels::tier_available(kernels::best_available_tier()));
  EXPECT_TRUE(kernels::tier_available(kernels::active_tier()));
}

TEST(GfKernelDispatchTest, TierNamesRoundTrip) {
  for (int t = 0; t < kernels::kNumTiers; ++t) {
    const Tier tier = static_cast<Tier>(t);
    const auto parsed = kernels::parse_tier(kernels::tier_name(tier));
    ASSERT_TRUE(parsed.has_value()) << kernels::tier_name(tier);
    EXPECT_EQ(*parsed, tier);
  }
  EXPECT_FALSE(kernels::parse_tier("auto").has_value());
  EXPECT_FALSE(kernels::parse_tier("sse9").has_value());
  EXPECT_FALSE(kernels::parse_tier("").has_value());
}

TEST(GfKernelDispatchTest, ScopedTierRestores) {
  const Tier before = kernels::active_tier();
  {
    ScopedTierForTesting guard(Tier::kScalar);
    EXPECT_EQ(kernels::active_tier(), Tier::kScalar);
  }
  EXPECT_EQ(kernels::active_tier(), before);
}

TEST(GfKernelDispatchTest, CpuFeaturesGateSimdTiers) {
  const auto& cpu = kernels::cpu_features();
  if (!cpu.ssse3) {
    EXPECT_FALSE(kernels::tier_available(Tier::kSsse3));
  }
  if (!cpu.avx2) {
    EXPECT_FALSE(kernels::tier_available(Tier::kAvx2));
  }
  if (!cpu.gfni_avx512) {
    EXPECT_FALSE(kernels::tier_available(Tier::kGfni));
  }
  // The tier order is gfni > avx2 > ssse3 > sliced; the best tier must be
  // the highest one the CPU (and build) can run.
  if (kernels::tier_available(Tier::kGfni)) {
    EXPECT_EQ(kernels::best_available_tier(), Tier::kGfni);
  } else if (cpu.avx2 && kernels::tier_available(Tier::kAvx2)) {
    EXPECT_EQ(kernels::best_available_tier(), Tier::kAvx2);
  }
}

// ---------------------------------------------------------------------------
// Aliasing: dst/src overlap is a CHECK-abort, not silent corruption. The
// SIMD tiers read and write in blocks, so overlapping regions would not
// even fail in the "obvious" shifted-scalar way.
// ---------------------------------------------------------------------------

using GfKernelAliasingDeathTest = ::testing::Test;

TEST(GfKernelAliasingDeathTest, OverlappingAxpyAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::uint8_t> buf(64, 1);
  const auto dst = std::span<std::uint8_t>(buf).subspan(0, 32);
  const auto src = std::span<const std::uint8_t>(buf).subspan(16, 32);
  EXPECT_DEATH(axpy<GF256>(dst, 3, src), "overlap");
}

TEST(GfKernelAliasingDeathTest, OverlappingAddAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::uint8_t> buf(64, 1);
  const auto dst = std::span<std::uint8_t>(buf).subspan(1, 32);
  const auto src = std::span<const std::uint8_t>(buf).subspan(0, 32);
  EXPECT_DEATH(add_into<GF256>(dst, src), "overlap");
}

TEST(GfKernelAliasingDeathTest, FullyAliasedRegionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::uint8_t> buf(32, 5);
  const auto dst = std::span<std::uint8_t>(buf);
  const auto src = std::span<const std::uint8_t>(buf);
  EXPECT_DEATH(axpy<GF256>(dst, 7, src), "overlap");
}

/// Regression: exactly adjacent regions are legal (the boundary case of
/// the overlap predicate) and must work on every tier.
TEST(GfKernelAliasingTest, AdjacentRegionsAreLegal) {
  for (const Tier tier : available_tiers()) {
    ScopedTierForTesting guard(tier);
    std::vector<std::uint8_t> buf(128);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::uint8_t>(i * 31 + 1);
    }
    const auto expected_src = std::vector<std::uint8_t>(buf.begin() + 64,
                                                        buf.end());
    auto dst = std::span<std::uint8_t>(buf).subspan(0, 64);
    auto src = std::span<const std::uint8_t>(buf).subspan(64, 64);
    std::vector<std::uint8_t> want(buf.begin(), buf.begin() + 64);
    for (std::size_t i = 0; i < 64; ++i) {
      want[i] ^= GF256::mul(9, src[i]);
    }
    axpy<GF256>(dst, 9, src);
    EXPECT_TRUE(std::equal(want.begin(), want.end(), buf.begin()));
    // src bytes untouched.
    EXPECT_TRUE(std::equal(expected_src.begin(), expected_src.end(),
                           buf.begin() + 64));
  }
}

}  // namespace
}  // namespace causalec::gf
