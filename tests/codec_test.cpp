// Round-trip tests for the binary message codec.
#include <gtest/gtest.h>

#include "causalec/codec.h"
#include "common/random.h"

namespace causalec {
namespace {

using erasure::Value;

VectorClock random_clock(Rng& rng, std::size_t n) {
  VectorClock vc(n);
  for (std::size_t i = 0; i < n; ++i) vc.set(i, rng.next_below(1000));
  return vc;
}

Tag random_tag(Rng& rng, std::size_t n) {
  return Tag(random_clock(rng, n), rng.next_u64());
}

TagVector random_tagvec(Rng& rng, std::size_t k, std::size_t n) {
  TagVector tv;
  for (std::size_t i = 0; i < k; ++i) tv.push_back(random_tag(rng, n));
  return tv;
}

Value random_value(Rng& rng, std::size_t bytes) {
  Value v(bytes);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

WireModel model() {
  ServerConfig config;
  return WireModel::make(config, 5, 3);
}

TEST(CodecTest, AppRoundTrip) {
  Rng rng(1);
  AppMessage original(2, random_value(rng, 64), random_tag(rng, 5), model());
  const auto bytes = serialize_message(original);
  const auto restored = deserialize_message(bytes);
  const auto* app = dynamic_cast<const AppMessage*>(restored.get());
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->object, original.object);
  EXPECT_EQ(app->value, original.value);
  EXPECT_EQ(app->tag, original.tag);
  EXPECT_EQ(app->wire_bytes(), original.wire_bytes());
}

TEST(CodecTest, DelRoundTrip) {
  Rng rng(2);
  DelMessage original(1, random_tag(rng, 5), 3, true, model());
  const auto restored = deserialize_message(serialize_message(original));
  const auto* del = dynamic_cast<const DelMessage*>(restored.get());
  ASSERT_NE(del, nullptr);
  EXPECT_EQ(del->object, 1u);
  EXPECT_EQ(del->origin, 3u);
  EXPECT_TRUE(del->forward);
  EXPECT_EQ(del->tag, original.tag);
  EXPECT_EQ(del->wire_bytes(), original.wire_bytes());
}

TEST(CodecTest, ValInqRoundTrip) {
  Rng rng(3);
  ValInqMessage original(kLocalhost, 9001, 2, random_tagvec(rng, 3, 5),
                         model());
  const auto restored = deserialize_message(serialize_message(original));
  const auto* inq = dynamic_cast<const ValInqMessage*>(restored.get());
  ASSERT_NE(inq, nullptr);
  EXPECT_EQ(inq->client, kLocalhost);
  EXPECT_EQ(inq->opid, 9001u);
  EXPECT_EQ(inq->object, 2u);
  EXPECT_EQ(inq->wanted, original.wanted);
}

TEST(CodecTest, ValRespRoundTrip) {
  Rng rng(4);
  ValRespMessage original(7, 42, 0, random_value(rng, 128),
                          random_tagvec(rng, 3, 5), model());
  const auto restored = deserialize_message(serialize_message(original));
  const auto* resp = dynamic_cast<const ValRespMessage*>(restored.get());
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->value, original.value);
  EXPECT_EQ(resp->requested, original.requested);
}

TEST(CodecTest, ValRespEncodedRoundTrip) {
  Rng rng(5);
  ValRespEncodedMessage original(7, 42, 1, random_value(rng, 256),
                                 random_tagvec(rng, 3, 5),
                                 random_tagvec(rng, 3, 5), model());
  const auto restored = deserialize_message(serialize_message(original));
  const auto* enc =
      dynamic_cast<const ValRespEncodedMessage*>(restored.get());
  ASSERT_NE(enc, nullptr);
  EXPECT_EQ(enc->symbol, original.symbol);
  EXPECT_EQ(enc->symbol_tags, original.symbol_tags);
  EXPECT_EQ(enc->requested, original.requested);
  EXPECT_EQ(enc->wire_bytes(), original.wire_bytes());
}

TEST(CodecTest, EmptyValueAndZeroTags) {
  AppMessage original(0, Value{}, Tag::zero(4), model());
  const auto restored = deserialize_message(serialize_message(original));
  const auto* app = dynamic_cast<const AppMessage*>(restored.get());
  ASSERT_NE(app, nullptr);
  EXPECT_TRUE(app->value.empty());
  EXPECT_TRUE(app->tag.is_zero());
}

TEST(CodecTest, RandomizedRoundTripSweep) {
  Rng rng(6);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = 2 + rng.next_below(10);
    const std::size_t k = 1 + rng.next_below(8);
    switch (rng.next_below(5)) {
      case 0: {
        AppMessage m(static_cast<ObjectId>(rng.next_below(k)),
                     random_value(rng, rng.next_below(512)),
                     random_tag(rng, n), model());
        const auto r = deserialize_message(serialize_message(m));
        const auto* app = dynamic_cast<const AppMessage*>(r.get());
        ASSERT_NE(app, nullptr);
        EXPECT_EQ(app->value, m.value);
        EXPECT_EQ(app->tag, m.tag);
        break;
      }
      case 1: {
        DelMessage m(static_cast<ObjectId>(rng.next_below(k)),
                     random_tag(rng, n),
                     static_cast<NodeId>(rng.next_below(n)),
                     rng.next_bool(0.5), model());
        const auto r = deserialize_message(serialize_message(m));
        const auto* del = dynamic_cast<const DelMessage*>(r.get());
        ASSERT_NE(del, nullptr);
        EXPECT_EQ(del->tag, m.tag);
        EXPECT_EQ(del->origin, m.origin);
        EXPECT_EQ(del->forward, m.forward);
        break;
      }
      case 2: {
        ValInqMessage m(rng.next_u64(), rng.next_u64(),
                        static_cast<ObjectId>(rng.next_below(k)),
                        random_tagvec(rng, k, n), model());
        const auto r = deserialize_message(serialize_message(m));
        const auto* inq = dynamic_cast<const ValInqMessage*>(r.get());
        ASSERT_NE(inq, nullptr);
        EXPECT_EQ(inq->wanted, m.wanted);
        break;
      }
      case 3: {
        ValRespMessage m(rng.next_u64(), rng.next_u64(),
                         static_cast<ObjectId>(rng.next_below(k)),
                         random_value(rng, rng.next_below(512)),
                         random_tagvec(rng, k, n), model());
        const auto r = deserialize_message(serialize_message(m));
        const auto* resp = dynamic_cast<const ValRespMessage*>(r.get());
        ASSERT_NE(resp, nullptr);
        EXPECT_EQ(resp->value, m.value);
        EXPECT_EQ(resp->requested, m.requested);
        break;
      }
      case 4: {
        ValRespEncodedMessage m(rng.next_u64(), rng.next_u64(),
                                static_cast<ObjectId>(rng.next_below(k)),
                                random_value(rng, rng.next_below(512)),
                                random_tagvec(rng, k, n),
                                random_tagvec(rng, k, n), model());
        const auto r = deserialize_message(serialize_message(m));
        const auto* enc =
            dynamic_cast<const ValRespEncodedMessage*>(r.get());
        ASSERT_NE(enc, nullptr);
        EXPECT_EQ(enc->symbol, m.symbol);
        EXPECT_EQ(enc->symbol_tags, m.symbol_tags);
        EXPECT_EQ(enc->requested, m.requested);
        break;
      }
    }
  }
}

TEST(CodecDeathTest, TruncatedBufferAborts) {
  Rng rng(7);
  AppMessage m(0, random_value(rng, 32), random_tag(rng, 3), model());
  auto bytes = serialize_message(m);
  bytes.resize(bytes.size() / 2);
  EXPECT_DEATH(deserialize_message(bytes), "truncated");
}

TEST(CodecDeathTest, TrailingBytesAbort) {
  Rng rng(8);
  AppMessage m(0, random_value(rng, 8), random_tag(rng, 3), model());
  auto bytes = serialize_message(m);
  bytes.push_back(0xFF);
  EXPECT_DEATH(deserialize_message(bytes), "trailing");
}

}  // namespace
}  // namespace causalec
