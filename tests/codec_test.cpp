// Round-trip tests for the binary message codec.
#include <gtest/gtest.h>

#include "causalec/codec.h"
#include "common/random.h"
#include "erasure/buffer.h"

namespace causalec {
namespace {

using erasure::Value;

VectorClock random_clock(Rng& rng, std::size_t n) {
  VectorClock vc(n);
  for (std::size_t i = 0; i < n; ++i) vc.set(i, rng.next_below(1000));
  return vc;
}

Tag random_tag(Rng& rng, std::size_t n) {
  return Tag(random_clock(rng, n), rng.next_u64());
}

TagVector random_tagvec(Rng& rng, std::size_t k, std::size_t n) {
  TagVector tv;
  for (std::size_t i = 0; i < k; ++i) tv.push_back(random_tag(rng, n));
  return tv;
}

Value random_value(Rng& rng, std::size_t bytes) {
  Value v(bytes);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

WireModel model() {
  ServerConfig config;
  return WireModel::make(config, 5, 3);
}

TEST(CodecTest, AppRoundTrip) {
  Rng rng(1);
  AppMessage original(2, random_value(rng, 64), random_tag(rng, 5), model());
  const auto bytes = serialize_message(original);
  const auto restored = deserialize_message(bytes);
  const auto* app = dynamic_cast<const AppMessage*>(restored.get());
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->object, original.object);
  EXPECT_EQ(app->value, original.value);
  EXPECT_EQ(app->tag, original.tag);
  EXPECT_EQ(app->wire_bytes(), original.wire_bytes());
}

TEST(CodecTest, DelRoundTrip) {
  Rng rng(2);
  DelMessage original(1, random_tag(rng, 5), 3, true, model());
  const auto restored = deserialize_message(serialize_message(original));
  const auto* del = dynamic_cast<const DelMessage*>(restored.get());
  ASSERT_NE(del, nullptr);
  EXPECT_EQ(del->object, 1u);
  EXPECT_EQ(del->origin, 3u);
  EXPECT_TRUE(del->forward);
  EXPECT_EQ(del->tag, original.tag);
  EXPECT_EQ(del->wire_bytes(), original.wire_bytes());
}

TEST(CodecTest, ValInqRoundTrip) {
  Rng rng(3);
  ValInqMessage original(kLocalhost, 9001, 2, random_tagvec(rng, 3, 5),
                         model());
  const auto restored = deserialize_message(serialize_message(original));
  const auto* inq = dynamic_cast<const ValInqMessage*>(restored.get());
  ASSERT_NE(inq, nullptr);
  EXPECT_EQ(inq->client, kLocalhost);
  EXPECT_EQ(inq->opid, 9001u);
  EXPECT_EQ(inq->object, 2u);
  EXPECT_EQ(inq->wanted, original.wanted);
}

TEST(CodecTest, ValRespRoundTrip) {
  Rng rng(4);
  ValRespMessage original(7, 42, 0, random_value(rng, 128),
                          random_tagvec(rng, 3, 5), model());
  const auto restored = deserialize_message(serialize_message(original));
  const auto* resp = dynamic_cast<const ValRespMessage*>(restored.get());
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->value, original.value);
  EXPECT_EQ(resp->requested, original.requested);
}

TEST(CodecTest, ValRespEncodedRoundTrip) {
  Rng rng(5);
  ValRespEncodedMessage original(7, 42, 1, random_value(rng, 256),
                                 random_tagvec(rng, 3, 5),
                                 random_tagvec(rng, 3, 5), model());
  const auto restored = deserialize_message(serialize_message(original));
  const auto* enc =
      dynamic_cast<const ValRespEncodedMessage*>(restored.get());
  ASSERT_NE(enc, nullptr);
  EXPECT_EQ(enc->symbol, original.symbol);
  EXPECT_EQ(enc->symbol_tags, original.symbol_tags);
  EXPECT_EQ(enc->requested, original.requested);
  EXPECT_EQ(enc->wire_bytes(), original.wire_bytes());
}

TEST(CodecTest, EmptyValueAndZeroTags) {
  AppMessage original(0, Value{}, Tag::zero(4), model());
  const auto restored = deserialize_message(serialize_message(original));
  const auto* app = dynamic_cast<const AppMessage*>(restored.get());
  ASSERT_NE(app, nullptr);
  EXPECT_TRUE(app->value.empty());
  EXPECT_TRUE(app->tag.is_zero());
}

TEST(CodecTest, RandomizedRoundTripSweep) {
  Rng rng(6);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = 2 + rng.next_below(10);
    const std::size_t k = 1 + rng.next_below(8);
    switch (rng.next_below(5)) {
      case 0: {
        AppMessage m(static_cast<ObjectId>(rng.next_below(k)),
                     random_value(rng, rng.next_below(512)),
                     random_tag(rng, n), model());
        const auto r = deserialize_message(serialize_message(m));
        const auto* app = dynamic_cast<const AppMessage*>(r.get());
        ASSERT_NE(app, nullptr);
        EXPECT_EQ(app->value, m.value);
        EXPECT_EQ(app->tag, m.tag);
        break;
      }
      case 1: {
        DelMessage m(static_cast<ObjectId>(rng.next_below(k)),
                     random_tag(rng, n),
                     static_cast<NodeId>(rng.next_below(n)),
                     rng.next_bool(0.5), model());
        const auto r = deserialize_message(serialize_message(m));
        const auto* del = dynamic_cast<const DelMessage*>(r.get());
        ASSERT_NE(del, nullptr);
        EXPECT_EQ(del->tag, m.tag);
        EXPECT_EQ(del->origin, m.origin);
        EXPECT_EQ(del->forward, m.forward);
        break;
      }
      case 2: {
        ValInqMessage m(rng.next_u64(), rng.next_u64(),
                        static_cast<ObjectId>(rng.next_below(k)),
                        random_tagvec(rng, k, n), model());
        const auto r = deserialize_message(serialize_message(m));
        const auto* inq = dynamic_cast<const ValInqMessage*>(r.get());
        ASSERT_NE(inq, nullptr);
        EXPECT_EQ(inq->wanted, m.wanted);
        break;
      }
      case 3: {
        ValRespMessage m(rng.next_u64(), rng.next_u64(),
                         static_cast<ObjectId>(rng.next_below(k)),
                         random_value(rng, rng.next_below(512)),
                         random_tagvec(rng, k, n), model());
        const auto r = deserialize_message(serialize_message(m));
        const auto* resp = dynamic_cast<const ValRespMessage*>(r.get());
        ASSERT_NE(resp, nullptr);
        EXPECT_EQ(resp->value, m.value);
        EXPECT_EQ(resp->requested, m.requested);
        break;
      }
      case 4: {
        ValRespEncodedMessage m(rng.next_u64(), rng.next_u64(),
                                static_cast<ObjectId>(rng.next_below(k)),
                                random_value(rng, rng.next_below(512)),
                                random_tagvec(rng, k, n),
                                random_tagvec(rng, k, n), model());
        const auto r = deserialize_message(serialize_message(m));
        const auto* enc =
            dynamic_cast<const ValRespEncodedMessage*>(r.get());
        ASSERT_NE(enc, nullptr);
        EXPECT_EQ(enc->symbol, m.symbol);
        EXPECT_EQ(enc->symbol_tags, m.symbol_tags);
        EXPECT_EQ(enc->requested, m.requested);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Zero-copy deserialization: deserialize_message(erasure::Buffer) aliases
// value payloads into the frame arena instead of copying them out, and the
// refcount keeps that arena alive for as long as any decoded value needs it.
// ---------------------------------------------------------------------------

erasure::Buffer frame_of(const sim::Message& m) {
  return erasure::Buffer::adopt(serialize_message(m));
}

/// True when `v`'s bytes live inside `frame`'s arena (no copy was made).
bool aliases(const erasure::Buffer& frame, const Value& v) {
  return !v.empty() && v.data() >= frame.data() &&
         v.data() + v.size() <= frame.data() + frame.size();
}

TEST(CodecZeroCopy, ValuesAliasTheFrameWithoutAllocating) {
  Rng rng(9);
  AppMessage app(2, random_value(rng, 64), random_tag(rng, 5), model());
  ValRespMessage resp(7, 42, 0, random_value(rng, 128),
                      random_tagvec(rng, 3, 5), model());
  ValRespEncodedMessage enc(7, 43, 1, random_value(rng, 256),
                            random_tagvec(rng, 3, 5),
                            random_tagvec(rng, 3, 5), model());

  const erasure::Buffer frames[] = {frame_of(app), frame_of(resp),
                                    frame_of(enc)};
  const std::uint64_t before = erasure::Buffer::alloc_stats().allocations;
  const auto r0 = deserialize_message(frames[0]);
  const auto r1 = deserialize_message(frames[1]);
  const auto r2 = deserialize_message(frames[2]);
  EXPECT_EQ(erasure::Buffer::alloc_stats().allocations, before)
      << "zero-copy deserialization allocated a payload arena";

  const auto* rapp = dynamic_cast<const AppMessage*>(r0.get());
  const auto* rresp = dynamic_cast<const ValRespMessage*>(r1.get());
  const auto* renc = dynamic_cast<const ValRespEncodedMessage*>(r2.get());
  ASSERT_NE(rapp, nullptr);
  ASSERT_NE(rresp, nullptr);
  ASSERT_NE(renc, nullptr);
  EXPECT_EQ(rapp->value, app.value);
  EXPECT_EQ(rresp->value, resp.value);
  EXPECT_EQ(renc->symbol, enc.symbol);
  EXPECT_TRUE(aliases(frames[0], rapp->value));
  EXPECT_TRUE(aliases(frames[1], rresp->value));
  EXPECT_TRUE(aliases(frames[2], renc->symbol));
}

TEST(CodecZeroCopy, NonPayloadTypesDecodeFromFrames) {
  Rng rng(10);
  DelMessage del(1, random_tag(rng, 5), 3, true, model());
  ValInqMessage inq(kLocalhost, 9001, 2, random_tagvec(rng, 3, 5), model());
  const auto rdel = deserialize_message(frame_of(del));
  const auto rinq = deserialize_message(frame_of(inq));
  const auto* d = dynamic_cast<const DelMessage*>(rdel.get());
  const auto* q = dynamic_cast<const ValInqMessage*>(rinq.get());
  ASSERT_NE(d, nullptr);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(d->tag, del.tag);
  EXPECT_EQ(q->wanted, inq.wanted);
}

TEST(CodecZeroCopy, DecodedValueOutlivesTheFrameHandle) {
  Rng rng(11);
  const Value payload = random_value(rng, 96);
  AppMessage app(1, payload, random_tag(rng, 5), model());

  erasure::Buffer frame = frame_of(app);
  auto restored = deserialize_message(std::move(frame));
  frame = erasure::Buffer();  // drop the caller's last frame handle

  const auto* rapp = dynamic_cast<const AppMessage*>(restored.get());
  ASSERT_NE(rapp, nullptr);
  // The decoded value's shared arena keeps the frame bytes alive.
  EXPECT_EQ(rapp->value, payload);
  Value survivor = rapp->value;
  restored.reset();
  EXPECT_EQ(survivor, payload);
}

TEST(CodecZeroCopy, MutatingOneDecodedValueLeavesSiblingsIntact) {
  Rng rng(12);
  const Value payload = random_value(rng, 48);
  AppMessage app(0, payload, random_tag(rng, 4), model());
  const erasure::Buffer frame = frame_of(app);

  // Two messages decoded from one frame alias the same arena.
  auto a = deserialize_message(frame);
  auto b = deserialize_message(frame);
  auto* mut = dynamic_cast<AppMessage*>(a.get());
  const auto* other = dynamic_cast<const AppMessage*>(b.get());
  ASSERT_NE(mut, nullptr);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(mut->value.data(), other->value.data());

  // Copy-on-write: the first mutation detaches, so neither the sibling
  // message nor the frame bytes change underneath anyone.
  mut->value[0] = static_cast<std::uint8_t>(payload[0] + 1);
  EXPECT_EQ(other->value, payload);
  EXPECT_NE(mut->value, payload);
  const auto reparsed = deserialize_message(frame);
  const auto* c = dynamic_cast<const AppMessage*>(reparsed.get());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, payload);
}

TEST(CodecDeathTest, TruncatedBufferAborts) {
  Rng rng(7);
  AppMessage m(0, random_value(rng, 32), random_tag(rng, 3), model());
  auto bytes = serialize_message(m);
  bytes.resize(bytes.size() / 2);
  EXPECT_DEATH(deserialize_message(bytes), "truncated");
}

TEST(CodecDeathTest, TrailingBytesAbort) {
  Rng rng(8);
  AppMessage m(0, random_value(rng, 8), random_tag(rng, 3), model());
  auto bytes = serialize_message(m);
  bytes.push_back(0xFF);
  EXPECT_DEATH(deserialize_message(bytes), "trailing");
}

}  // namespace
}  // namespace causalec
