// Tests for the decoder-plan cache (erasure/plan_cache.h + LinearCodeT).
//
// The load-bearing property: for every (object, provided-server-mask) pair,
// the cached plan must be identical -- same recovery set, same coefficient
// steps -- to a fresh Gaussian elimination, and decode() through the cache
// must return the same bytes as with the cache disabled. We sweep every
// mask of the six-DC cross-object code (63 non-empty subsets x 4 objects)
// so no shape is left unpinned.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "erasure/codes.h"
#include "erasure/linear_code.h"
#include "gf/gf256.h"
#include "linalg/matrix.h"

namespace causalec::erasure {
namespace {

using gf::GF256;
using Code256 = LinearCodeT<GF256>;

/// The Sec. 1.1 six-data-center layout, built directly as LinearCodeT so
/// the tests reach the plan-cache API (the factory returns the erased
/// CodePtr):  Seoul: G1+G3, Mumbai: G2+G4, Ireland: G1, London: G2,
/// N.California: G4, Oregon: G3.
std::shared_ptr<Code256> six_dc(std::size_t value_bytes) {
  linalg::Matrix<GF256> stacked(6, 4);
  const std::uint8_t rows[6][4] = {{1, 0, 1, 0}, {0, 1, 0, 1}, {1, 0, 0, 0},
                                   {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}};
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 4; ++c) stacked(r, c) = rows[r][c];
  }
  return Code256::one_row_per_server(stacked, value_bytes, "six-dc");
}

std::vector<NodeId> servers_of(std::uint32_t mask) {
  std::vector<NodeId> servers;
  for (NodeId s = 0; s < 32; ++s) {
    if (mask >> s & 1) servers.push_back(s);
  }
  return servers;
}

template <typename Elem>
void expect_same_plan(const DecodePlan<Elem>& a, const DecodePlan<Elem>& b) {
  EXPECT_EQ(a.set_mask, b.set_mask);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].server, b.steps[i].server) << "step " << i;
    EXPECT_EQ(a.steps[i].row, b.steps[i].row) << "step " << i;
    EXPECT_EQ(a.steps[i].coeff, b.steps[i].coeff) << "step " << i;
  }
}

TEST(PlanCacheTest, CachedPlanEqualsFreshEliminationForEveryMask) {
  const auto code = six_dc(32);
  for (ObjectId obj = 0; obj < 4; ++obj) {
    for (std::uint32_t mask = 1; mask < (1u << 6); ++mask) {
      const auto servers = servers_of(mask);
      const auto fresh = code->compute_plan_fresh(obj, mask);
      if (!code->is_recovery_set(obj, servers)) {
        EXPECT_EQ(fresh, nullptr) << "obj " << obj << " mask " << mask;
        continue;
      }
      ASSERT_NE(fresh, nullptr) << "obj " << obj << " mask " << mask;
      const auto cached = code->decode_plan(obj, mask);
      expect_same_plan(*cached, *fresh);
      // The plan decodes from a minimal subset of what was provided, and
      // every coefficient is stored nonzero.
      EXPECT_EQ(cached->set_mask & mask, cached->set_mask);
      for (const auto& step : cached->steps) {
        EXPECT_NE(step.coeff, GF256::zero);
        EXPECT_TRUE(cached->set_mask >> step.server & 1);
      }
    }
  }
}

TEST(PlanCacheTest, DecodeBytesIdenticalWithCacheDisabled) {
  const auto cached_code = six_dc(64);
  const auto fresh_code = six_dc(64);
  fresh_code->set_plan_cache_enabled(false);

  Rng rng(0xCAC4Eu);
  std::vector<Value> vals(4);
  for (auto& v : vals) {
    v.resize(64);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  }
  for (ObjectId obj = 0; obj < 4; ++obj) {
    for (std::uint32_t mask = 1; mask < (1u << 6); ++mask) {
      const auto servers = servers_of(mask);
      if (!cached_code->is_recovery_set(obj, servers)) continue;
      std::vector<Symbol> symbols;
      for (const NodeId s : servers) {
        symbols.push_back(cached_code->encode(s, vals));
      }
      // Decode twice through the cache (second hit replays the plan) and
      // once with caching off; all three must equal the original value.
      const Value a = cached_code->decode(obj, servers, symbols);
      const Value b = cached_code->decode(obj, servers, symbols);
      const Value c = fresh_code->decode(obj, servers, symbols);
      EXPECT_EQ(a, vals[obj]) << "obj " << obj << " mask " << mask;
      EXPECT_EQ(b, vals[obj]);
      EXPECT_EQ(c, vals[obj]);
    }
  }
  // The fresh code never cached anything.
  const auto fresh_stats = fresh_code->decode_plan_cache_stats();
  EXPECT_EQ(fresh_stats.hits, 0u);
  EXPECT_EQ(fresh_stats.misses, 0u);
  EXPECT_EQ(fresh_stats.entries, 0u);
}

TEST(PlanCacheTest, StatsCountHitsMissesEntries) {
  const auto code = six_dc(16);
  auto stats = code->decode_plan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);

  // First decode of a shape misses and installs one entry.
  const std::vector<NodeId> servers = {2, 5};  // Ireland + Oregon -> G1, G3
  std::vector<Value> vals(4, Value(16, 7));
  std::vector<Symbol> symbols;
  for (const NodeId s : servers) symbols.push_back(code->encode(s, vals));
  (void)code->decode(0, servers, symbols);
  stats = code->decode_plan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // Same shape again: pure hits, no new entries.
  for (int i = 0; i < 5; ++i) (void)code->decode(0, servers, symbols);
  stats = code->decode_plan_cache_stats();
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 5.0 / 6.0);

  // A different object through the same servers is a distinct key.
  (void)code->decode(2, servers, symbols);
  stats = code->decode_plan_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(PlanCacheTest, DisabledCacheCountsNothing) {
  const auto code = six_dc(16);
  code->set_plan_cache_enabled(false);
  const std::vector<NodeId> servers = {2, 5};
  std::vector<Value> vals(4, Value(16, 3));
  std::vector<Symbol> symbols;
  for (const NodeId s : servers) symbols.push_back(code->encode(s, vals));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(code->decode(0, servers, symbols), vals[0]);
  }
  const auto stats = code->decode_plan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(PlanCacheTest, PlanUsesMinimalRecoverySetFromOversizedMask) {
  const auto code = six_dc(16);
  // All six servers provided; Ireland (2) alone is a minimal recovery set
  // for G1 (object 0), and minimal sets are enumerated smallest-first, so
  // the plan must read exactly one row from server 2.
  const std::uint32_t all = (1u << 6) - 1;
  const auto plan = code->decode_plan(0, all);
  EXPECT_EQ(std::popcount(plan->set_mask), 1);
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_EQ(plan->steps[0].server, 2u);
  EXPECT_EQ(plan->steps[0].coeff, GF256::one);
}

TEST(PlanCacheTest, StatsAggregateAcrossPolymorphicCode) {
  // Through the type-erased CodePtr (the factory path used by the stores):
  // decode twice, expect one miss + one hit reported via the Code interface.
  const CodePtr code = make_six_dc_cross_object(16);
  const std::vector<NodeId> servers = {0, 5};  // Seoul + Oregon -> G1
  std::vector<Value> vals(4, Value(16, 9));
  std::vector<Symbol> symbols;
  for (const NodeId s : servers) symbols.push_back(code->encode(s, vals));
  (void)code->decode(0, servers, symbols);
  (void)code->decode(0, servers, symbols);
  const auto stats = code->decode_plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

}  // namespace
}  // namespace causalec::erasure
