// Differential battery for the repair-plan layer (erasure/repair_plan.h).
//
// Every RepairPlan output must be byte-identical to what a fresh
// Gaussian-elimination full decode produces: rebuild the failed symbol by
// decoding all K objects from the survivors with the plan caches disabled,
// re-encode, and compare against the plan execution -- swept over all
// single- and double-erasure patterns for RS(6,4), Azure-LRC(6,2,2), and
// wide-stripe RS(14,10), under every available CAUSALEC_GF_KERNEL tier.
// The battery also pins the planner's fetch accounting: minimal-fetch never
// moves more than the full-decode baseline, an LRC data failure repairs
// from its local group alone, and cached plans equal freshly planned ones.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "erasure/codes.h"
#include "erasure/linear_code.h"
#include "erasure/repair_plan.h"
#include "gf/gf256.h"
#include "gf/kernels.h"

namespace causalec::erasure {
namespace {

using GF = gf::GF256;
using LinearCode = LinearCodeT<GF>;
using LinearCodePtr = std::shared_ptr<const LinearCode>;

constexpr std::size_t kValueBytes = 16;

std::vector<gf::kernels::Tier> available_tiers() {
  std::vector<gf::kernels::Tier> tiers;
  for (int t = 0; t < gf::kernels::kNumTiers; ++t) {
    const auto tier = static_cast<gf::kernels::Tier>(t);
    if (gf::kernels::tier_available(tier)) tiers.push_back(tier);
  }
  return tiers;
}

struct CodeCase {
  const char* name;
  LinearCodePtr code;
};

LinearCodePtr as_linear(const CodePtr& code) {
  auto linear = std::dynamic_pointer_cast<const LinearCode>(code);
  CEC_CHECK(linear != nullptr);
  return linear;
}

std::vector<CodeCase> battery_codes() {
  return {
      {"rs_6_4", as_linear(make_systematic_rs(6, 4, kValueBytes))},
      {"azure_lrc_6_2_2", as_linear(make_azure_lrc_6_2_2(kValueBytes))},
      {"rs_14_10", as_linear(make_wide_rs_14_10(kValueBytes))},
  };
}

std::vector<Value> pattern_values(std::size_t k) {
  std::vector<Value> vals(k);
  for (std::size_t i = 0; i < k; ++i) {
    vals[i].resize(kValueBytes);
    for (std::size_t j = 0; j < kValueBytes; ++j) {
      vals[i][j] = static_cast<std::uint8_t>(i * 37 + j * 11 + 1);
    }
  }
  return vals;
}

/// All erasure masks of popcount 1 and 2 over n servers.
std::vector<std::uint32_t> erasure_patterns(std::size_t n) {
  std::vector<std::uint32_t> masks;
  for (NodeId a = 0; a < n; ++a) {
    masks.push_back(1u << a);
    for (NodeId b = a + 1; b < n; ++b) masks.push_back((1u << a) | (1u << b));
  }
  return masks;
}

/// The ground truth: decode every object from the survivors with a fresh
/// Gaussian elimination (plan caches off), then re-encode the failed symbol.
Symbol full_decode_rebuild(const LinearCode& code, NodeId failed,
                           const std::vector<NodeId>& survivors,
                           const std::vector<Symbol>& symbols) {
  code.set_plan_cache_enabled(false);
  std::vector<Value> decoded;
  for (ObjectId k = 0; k < code.num_objects(); ++k) {
    decoded.push_back(code.decode(k, survivors, symbols));
  }
  code.set_plan_cache_enabled(true);
  return code.encode(failed, decoded);
}

TEST(RepairPlanTest, SymbolRepairMatchesFullDecodeOnEveryTier) {
  for (const auto& [name, code] : battery_codes()) {
    const std::size_t n = code->num_servers();
    const auto vals = pattern_values(code->num_objects());
    std::vector<Symbol> all_symbols;
    for (NodeId s = 0; s < n; ++s) all_symbols.push_back(code->encode(s, vals));

    for (const std::uint32_t erased : erasure_patterns(n)) {
      std::vector<NodeId> survivors;
      std::vector<Symbol> survivor_symbols;
      for (NodeId s = 0; s < n; ++s) {
        if (erased >> s & 1) continue;
        survivors.push_back(s);
        survivor_symbols.push_back(all_symbols[s]);
      }
      for (NodeId failed = 0; failed < n; ++failed) {
        if (!(erased >> failed & 1)) continue;
        const auto plan = code->symbol_repair_plan(
            failed, erased, RepairStrategy::kMinimalFetch);
        ASSERT_NE(plan, nullptr)
            << name << " failed=" << failed << " erased=" << erased;
        // Feed the plan exactly its helper symbols -- nothing more.
        std::vector<NodeId> helpers;
        std::vector<Symbol> helper_symbols;
        for (NodeId s = 0; s < n; ++s) {
          if (plan->helper_mask >> s & 1) {
            helpers.push_back(s);
            helper_symbols.push_back(all_symbols[s]);
          }
        }
        const Symbol truth =
            full_decode_rebuild(*code, failed, survivors, survivor_symbols);
        for (const auto tier : available_tiers()) {
          gf::kernels::ScopedTierForTesting guard(tier);
          EXPECT_EQ(code->repair_symbol(failed, helpers, helper_symbols),
                    truth)
              << name << " failed=" << failed << " erased=" << erased
              << " tier " << gf::kernels::tier_name(tier);
        }
        EXPECT_EQ(code->repair_symbol(failed, helpers, helper_symbols),
                  code->encode(failed, vals))
            << name << " repair must equal the original encoding";
      }
    }
  }
}

TEST(RepairPlanTest, MinimalFetchNeverExceedsFullDecode) {
  for (const auto& [name, code] : battery_codes()) {
    const std::size_t n = code->num_servers();
    for (const std::uint32_t erased : erasure_patterns(n)) {
      for (NodeId failed = 0; failed < n; ++failed) {
        if (!(erased >> failed & 1)) continue;
        const auto summary = code->plan_symbol_repair(failed, erased);
        ASSERT_TRUE(summary.has_value())
            << name << " failed=" << failed << " erased=" << erased;
        EXPECT_LE(summary->fetch_rows, summary->full_decode_rows);
        EXPECT_EQ(summary->fetch_bytes,
                  summary->fetch_rows * code->value_bytes());
        EXPECT_EQ(summary->erased_mask, erased);
        EXPECT_EQ(summary->helper_mask & erased, 0u)
            << "helpers must avoid the erased servers";
        EXPECT_EQ(summary->helper_mask >> failed & 1, 0u);
      }
    }
  }
}

TEST(RepairPlanTest, LrcDataFailureRepairsFromLocalGroup) {
  const auto code = as_linear(make_azure_lrc_6_2_2(kValueBytes));
  // Layout: data 0..5 (groups {0,1,2} and {3,4,5}), local parities 6 and 7,
  // global parities 8 and 9.
  for (NodeId failed = 0; failed < 6; ++failed) {
    const auto summary = code->plan_symbol_repair(failed, 1u << failed);
    ASSERT_TRUE(summary.has_value());
    const std::uint32_t group_mask =
        failed < 3 ? (0b111u | (1u << 6)) : (0b111000u | (1u << 7));
    EXPECT_EQ(summary->helper_mask, group_mask & ~(1u << failed))
        << "data server " << failed << " must repair inside its local group";
    EXPECT_EQ(summary->fetch_rows, 3u);
    EXPECT_EQ(summary->full_decode_rows, 6u);
  }
  // MDS counterpoints: RS repairs can never beat full decode.
  for (const char* rs_name : {"rs_6_4", "rs_14_10"}) {
    for (const auto& [name, code2] : battery_codes()) {
      if (std::string_view(name) != rs_name) continue;
      for (NodeId failed = 0; failed < code2->num_servers(); ++failed) {
        const auto summary = code2->plan_symbol_repair(failed, 1u << failed);
        ASSERT_TRUE(summary.has_value());
        EXPECT_EQ(summary->fetch_rows, code2->num_objects()) << name;
        EXPECT_EQ(summary->fetch_rows, summary->full_decode_rows) << name;
      }
    }
  }
}

TEST(RepairPlanTest, CachedPlansEqualFreshPlans) {
  for (const auto& [name, code] : battery_codes()) {
    const std::size_t n = code->num_servers();
    for (const std::uint32_t erased : erasure_patterns(n)) {
      for (NodeId failed = 0; failed < n; ++failed) {
        if (!(erased >> failed & 1)) continue;
        for (const auto strategy : {RepairStrategy::kMinimalFetch,
                                    RepairStrategy::kFullDecode}) {
          const auto cached =
              code->symbol_repair_plan(failed, erased, strategy);
          const auto fresh =
              code->compute_symbol_repair_fresh(failed, erased, strategy);
          ASSERT_EQ(cached == nullptr, fresh == nullptr);
          if (cached == nullptr) continue;
          EXPECT_EQ(cached->helper_mask, fresh->helper_mask) << name;
          EXPECT_EQ(cached->fetches, fresh->fetches) << name;
          ASSERT_EQ(cached->row_ops.size(), fresh->row_ops.size());
          for (std::size_t r = 0; r < cached->row_ops.size(); ++r) {
            ASSERT_EQ(cached->row_ops[r].size(), fresh->row_ops[r].size());
            for (std::size_t i = 0; i < cached->row_ops[r].size(); ++i) {
              EXPECT_EQ(cached->row_ops[r][i].fetch,
                        fresh->row_ops[r][i].fetch);
              EXPECT_EQ(cached->row_ops[r][i].coeff,
                        fresh->row_ops[r][i].coeff);
            }
          }
        }
      }
    }
  }
}

TEST(RepairPlanTest, ObjectRepairDecodesThroughChosenHelpers) {
  for (const auto& [name, code] : battery_codes()) {
    const std::size_t n = code->num_servers();
    const auto vals = pattern_values(code->num_objects());
    std::vector<Symbol> all_symbols;
    for (NodeId s = 0; s < n; ++s) all_symbols.push_back(code->encode(s, vals));

    for (const std::uint32_t erased : erasure_patterns(n)) {
      for (NodeId local = 0; local < n; ++local) {
        if (erased >> local & 1) continue;  // the reader itself is alive
        for (ObjectId obj = 0; obj < code->num_objects(); ++obj) {
          const auto summary =
              code->plan_object_repair(obj, erased, local);
          ASSERT_TRUE(summary.has_value())
              << name << " obj=" << obj << " erased=" << erased;
          EXPECT_EQ(summary->helper_mask & erased, 0u);
          EXPECT_LE(summary->fetch_rows, summary->full_decode_rows);
          // Execute: the local symbol plus the fetched helpers must decode
          // the object to its true value.
          std::vector<NodeId> servers = {local};
          std::vector<Symbol> symbols = {all_symbols[local]};
          for (NodeId s = 0; s < n; ++s) {
            if (s != local && (summary->helper_mask >> s & 1)) {
              servers.push_back(s);
              symbols.push_back(all_symbols[s]);
            }
          }
          EXPECT_EQ(code->decode(obj, servers, symbols), vals[obj])
              << name << " obj=" << obj << " local=" << local
              << " erased=" << erased;
        }
      }
    }
  }
}

TEST(RepairPlanTest, LrcDegradedReadUsesLocalGroup) {
  const auto code = as_linear(make_azure_lrc_6_2_2(kValueBytes));
  // Object 0's data server 0 is down; a reader at global parity 8 should be
  // sent to the local group {1, 2, 6}, not a 6-server decode set.
  const auto summary = code->plan_object_repair(0, 1u << 0, /*local=*/8);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->helper_mask, (1u << 1) | (1u << 2) | (1u << 6));
  EXPECT_EQ(summary->fetch_rows, 3u);
}

TEST(RepairPlanTest, RepairModeOffDisablesPlanning) {
  const auto code = as_linear(make_systematic_rs(6, 4, kValueBytes));
  code->set_repair_mode_for_testing(RepairPlanMode::kOff);
  EXPECT_FALSE(code->plan_symbol_repair(0, 1u << 0).has_value());
  EXPECT_FALSE(code->plan_object_repair(0, 1u << 0, 5).has_value());
  code->set_repair_mode_for_testing(RepairPlanMode::kMinimalFetch);
  EXPECT_TRUE(code->plan_symbol_repair(0, 1u << 0).has_value());
}

TEST(RepairPlanTest, FullDecodeStrategySelectsFullRankSet) {
  const auto code = as_linear(make_azure_lrc_6_2_2(kValueBytes));
  code->set_repair_mode_for_testing(RepairPlanMode::kFullDecode);
  const auto summary = code->plan_symbol_repair(0, 1u << 0);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->fetch_rows, 6u);  // k rows: decode-all baseline
  code->set_repair_mode_for_testing(RepairPlanMode::kMinimalFetch);
}

TEST(RepairPlanTest, CacheCountsHitsAndMisses) {
  const auto code = as_linear(make_systematic_rs(6, 4, kValueBytes));
  const PlanCacheStats before = code->repair_plan_cache_stats();
  (void)code->symbol_repair_plan(1, 1u << 1, RepairStrategy::kMinimalFetch);
  const PlanCacheStats after_miss = code->repair_plan_cache_stats();
  EXPECT_EQ(after_miss.misses, before.misses + 1);
  EXPECT_EQ(after_miss.hits, before.hits);
  (void)code->symbol_repair_plan(1, 1u << 1, RepairStrategy::kMinimalFetch);
  const PlanCacheStats after_hit = code->repair_plan_cache_stats();
  EXPECT_EQ(after_hit.hits, after_miss.hits + 1);
  EXPECT_GE(after_hit.entries, 1u);
}

TEST(RepairPlanTest, DisabledCacheStoresNothing) {
  const auto code = as_linear(make_systematic_rs(6, 4, kValueBytes));
  code->set_repair_plan_cache_enabled(false);
  (void)code->symbol_repair_plan(2, 1u << 2, RepairStrategy::kMinimalFetch);
  const PlanCacheStats stats = code->repair_plan_cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  code->set_repair_plan_cache_enabled(true);
}

TEST(RepairPlanTest, EmptySymbolServerRepairsTrivially) {
  // A server with zero rows (stores nothing) repairs to an empty symbol.
  using M = linalg::Matrix<GF>;
  std::vector<M> per_server;
  per_server.push_back(M::identity(2));  // server 0: both objects
  per_server.push_back(M(0, 2));         // server 1: stores nothing
  M parity(1, 2);
  parity(0, 0) = GF::one;
  parity(0, 1) = GF::one;
  per_server.push_back(parity);
  const auto code = std::make_shared<LinearCode>(std::move(per_server), 8,
                                                 "empty-symbol");
  const auto plan =
      code->symbol_repair_plan(1, 1u << 1, RepairStrategy::kMinimalFetch);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->fetches.empty());
  EXPECT_EQ(code->repair_symbol(1, {}, {}).size(), 0u);
}

}  // namespace
}  // namespace causalec::erasure
