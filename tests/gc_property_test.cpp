// Property tests for the GC bookkeeping structures: DelL (del_list.h) and
// L[X] (history_list.h). Randomized operation sequences are mirrored into
// brute-force reference structures; the paper's derived quantities
// (S -> floor_all, U -> floor_of, Sbar -> has_exact_from_all) and the
// compaction rule must agree with the mirror on every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "causalec/del_list.h"
#include "causalec/history_list.h"
#include "common/random.h"

namespace causalec {
namespace {

/// A small universe of distinct tags in increasing total order.
std::vector<Tag> make_tag_universe(std::size_t n, std::size_t count) {
  std::vector<Tag> tags;
  for (std::size_t i = 1; i <= count; ++i) {
    VectorClock vc(n);
    vc.set(i % n, i);  // distinct sums => strictly ordered
    tags.emplace_back(vc, static_cast<ClientId>(1 + i % 3));
  }
  std::sort(tags.begin(), tags.end());
  return tags;
}

/// Brute-force mirror of DelL: per-server tag sets, quantities recomputed
/// from scratch.
struct DelMirror {
  std::vector<std::set<Tag>> per_server;

  explicit DelMirror(std::size_t n) : per_server(n) {}

  std::optional<Tag> floor_all() const {
    std::optional<Tag> floor;
    for (const auto& tags : per_server) {
      if (tags.empty()) return std::nullopt;
      const Tag m = *tags.rbegin();
      if (!floor || m < *floor) floor = m;
    }
    return floor;
  }

  std::optional<Tag> floor_of(const std::vector<NodeId>& subset) const {
    std::optional<Tag> floor;
    for (NodeId s : subset) {
      if (per_server[s].empty()) return std::nullopt;
      const Tag m = *per_server[s].rbegin();
      if (!floor || m < *floor) floor = m;
    }
    return floor;
  }

  bool has_exact_from_all(const Tag& tag) const {
    for (const auto& tags : per_server) {
      if (tags.count(tag) == 0) return false;
    }
    return true;
  }
};

TEST(DelListPropertyTest, MatchesBruteForceUnderRandomInserts) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::size_t n = 4 + seed % 3;
    const auto universe = make_tag_universe(n, 12);
    Rng rng(seed * 77);
    DelList del(n);
    DelMirror mirror(n);

    for (int step = 0; step < 200; ++step) {
      const NodeId server = static_cast<NodeId>(rng.next_below(n));
      const Tag& tag = universe[rng.next_below(universe.size())];
      del.add(server, tag);
      mirror.per_server[server].insert(tag);

      // S: the floor over all servers.
      EXPECT_EQ(del.floor_all().has_value(), mirror.floor_all().has_value());
      if (del.floor_all()) {
        EXPECT_TRUE(*del.floor_all() == *mirror.floor_all());
      }
      // U: the floor over a random subset (recovery-set shape).
      std::vector<NodeId> subset;
      for (NodeId s = 0; s < n; ++s) {
        if (rng.next_bool(0.5)) subset.push_back(s);
      }
      if (!subset.empty()) {
        const auto got = del.floor_of(subset);
        const auto want = mirror.floor_of(subset);
        EXPECT_EQ(got.has_value(), want.has_value());
        if (got) EXPECT_TRUE(*got == *want);
      }
      // Sbar: exact membership at every server.
      const Tag& probe = universe[rng.next_below(universe.size())];
      EXPECT_EQ(del.has_exact_from_all(probe),
                mirror.has_exact_from_all(probe));
    }
  }
}

TEST(DelListPropertyTest, FloorIsAbsentAfterPartialAcks) {
  // Until EVERY server has announced at least one del, S must stay empty
  // (floor_all nullopt) -- a floor computed from partial acks would let GC
  // delete versions some server still needs.
  const std::size_t n = 5;
  const auto universe = make_tag_universe(n, 6);
  DelList del(n);
  for (NodeId s = 0; s + 1 < n; ++s) {  // all but the last server ack
    del.add(s, universe[s]);
    EXPECT_FALSE(del.floor_all().has_value())
        << "floor appeared after only " << (s + 1) << "/" << n << " acks";
  }
  del.add(static_cast<NodeId>(n - 1), universe[0]);
  ASSERT_TRUE(del.floor_all().has_value());
  // The floor is the minimum of the per-server maxima.
  EXPECT_TRUE(*del.floor_all() == universe[0]);
  // A subset that has fully acked resolves even while floor_all was empty.
  DelList partial(n);
  partial.add(0, universe[3]);
  partial.add(2, universe[1]);
  const std::vector<NodeId> subset{0, 2};
  ASSERT_TRUE(partial.floor_of(subset).has_value());
  EXPECT_TRUE(*partial.floor_of(subset) == universe[1]);
}

TEST(DelListPropertyTest, CompactionPreservesEveryLiveQuery) {
  // compact(tmax) may only drop entries that cannot influence floor_all,
  // floor_of, or has_exact_from_all for any tag >= tmax (the only
  // arguments the algorithm still queries after advancing tmax).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::size_t n = 4;
    const auto universe = make_tag_universe(n, 10);
    Rng rng(seed * 131);
    DelList del(n);
    DelMirror mirror(n);
    for (int i = 0; i < 60; ++i) {
      const NodeId server = static_cast<NodeId>(rng.next_below(n));
      const Tag& tag = universe[rng.next_below(universe.size())];
      del.add(server, tag);
      mirror.per_server[server].insert(tag);
    }

    const std::size_t tmax_idx = rng.next_below(universe.size());
    const Tag& tmax = universe[tmax_idx];
    del.compact(tmax);

    // The floors never change: each server's maximum is always retained.
    EXPECT_EQ(del.floor_all().has_value(), mirror.floor_all().has_value());
    if (del.floor_all()) {
      EXPECT_TRUE(*del.floor_all() == *mirror.floor_all());
    }
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        const std::vector<NodeId> subset{a, b};
        const auto got = del.floor_of(subset);
        const auto want = mirror.floor_of(subset);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (got) EXPECT_TRUE(*got == *want);
      }
    }
    // Exact membership is preserved for every tag >= tmax.
    for (std::size_t i = tmax_idx; i < universe.size(); ++i) {
      EXPECT_EQ(del.has_exact_from_all(universe[i]),
                mirror.has_exact_from_all(universe[i]))
          << "seed " << seed << " tag index " << i;
    }
    // Compaction never grows the list and retains per-server maxima.
    for (NodeId s = 0; s < n; ++s) {
      if (!mirror.per_server[s].empty()) {
        EXPECT_TRUE(del.entries_from(s).count(*mirror.per_server[s].rbegin()))
            << "server " << s << " lost its maximal entry";
      }
    }
  }
}

TEST(HistoryListPropertyTest, ZeroTagIsVirtual) {
  HistoryList list(/*num_servers=*/5, /*value_bytes=*/8);
  const Tag zero = Tag::zero(5);

  // Inserting the zero tag is a no-op: the initial version is implicit.
  list.insert(zero, erasure::Value(8, 0xAB));
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.payload_bytes(), 0u);

  // But the zero version is always readable and always "contained".
  EXPECT_TRUE(list.contains(zero));
  const auto value = list.lookup(zero);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, erasure::Value(8, 0));  // all-zeros, not 0xAB
  EXPECT_TRUE(list.highest_tag() == zero);

  // erase_if never touches the virtual entry.
  list.erase_if([](const Tag&) { return true; });
  EXPECT_TRUE(list.contains(zero));
}

TEST(HistoryListPropertyTest, MatchesBruteForceUnderInsertsAndPrunes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t n = 4;
    const auto universe = make_tag_universe(n, 10);
    Rng rng(seed * 997);
    HistoryList list(n, 8);
    std::set<Tag> mirror;

    for (int step = 0; step < 150; ++step) {
      if (rng.next_bool(0.7)) {
        const Tag& tag = universe[rng.next_below(universe.size())];
        list.insert(tag, erasure::Value(8, static_cast<std::uint8_t>(step)));
        mirror.insert(tag);
      } else if (!mirror.empty()) {
        // Prune below a random threshold, as GC does with tmax.
        const Tag& below = universe[rng.next_below(universe.size())];
        list.erase_if([&below](const Tag& t) { return t < below; });
        for (auto it = mirror.begin(); it != mirror.end();) {
          it = (*it < below) ? mirror.erase(it) : std::next(it);
        }
      }

      EXPECT_EQ(list.size(), mirror.size());
      const Tag want_highest =
          mirror.empty() ? Tag::zero(n) : *mirror.rbegin();
      EXPECT_TRUE(list.highest_tag() == want_highest);
      for (const Tag& tag : universe) {
        EXPECT_EQ(list.contains(tag), mirror.count(tag) > 0 || tag.is_zero());
        // highest_leq against the brute-force scan.
        const auto got = list.highest_leq(tag);
        std::optional<Tag> want;
        for (const Tag& m : mirror) {
          if (m <= tag) want = m;
        }
        ASSERT_EQ(got.has_value(), want.has_value());
        if (got) EXPECT_TRUE(*got == *want);
      }
    }
  }
}

TEST(HistoryListPropertyTest, DuplicateInsertKeepsFirstValue) {
  // A tag uniquely identifies a write (Lemma B.3); a duplicate insert must
  // not overwrite the original payload.
  HistoryList list(3, 4);
  VectorClock vc(3);
  vc.set(0, 1);
  const Tag tag(vc, 1);
  list.insert(tag, erasure::Value(4, 1));
  list.insert(tag, erasure::Value(4, 2));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(*list.lookup(tag), erasure::Value(4, 1));
}

}  // namespace
}  // namespace causalec
