// Golden-vector regression tests for the two reference codes: Cauchy
// systematic RS(6,4) over GF(2^8) and the paper's (5,3) example over F_257.
//
// The expected hex strings pin today's encode / reencode output exactly.
// Any change to the field tables, the Cauchy construction, element
// packing, or the kernel layer that alters bytes on the wire shows up
// here as a diff against fixed strings rather than as a silent
// self-consistent change (an encode/decode round-trip test would still
// pass if encode and decode drifted together).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "erasure/codes.h"
#include "gf/kernels.h"

namespace causalec::erasure {
namespace {

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::stoul(std::string(hex.substr(2 * i, 2)), nullptr, 16));
  }
  return out;
}

std::vector<gf::kernels::Tier> available_tiers() {
  std::vector<gf::kernels::Tier> tiers;
  for (int t = 0; t < gf::kernels::kNumTiers; ++t) {
    const auto tier = static_cast<gf::kernels::Tier>(t);
    if (gf::kernels::tier_available(tier)) tiers.push_back(tier);
  }
  return tiers;
}

// ---------------------------------------------------------------------------
// Cauchy systematic RS(6,4) over GF(2^8), 16-byte values.
// Input pattern: byte j of object k is (k*37 + j*11 + 1) mod 256.
// ---------------------------------------------------------------------------

std::vector<Value> rs_golden_values() {
  std::vector<Value> vals(4);
  for (std::size_t k = 0; k < 4; ++k) {
    vals[k].resize(16);
    for (std::size_t j = 0; j < 16; ++j) {
      vals[k][j] = static_cast<std::uint8_t>(k * 37 + j * 11 + 1);
    }
  }
  return vals;
}

// One expected symbol per server. Servers 0..3 are systematic (the object
// itself); 4 and 5 are Cauchy parities.
const char* const kRsSymbols[6] = {
    "010c17222d38434e59646f7a85909ba6",
    "26313c47525d68737e89949faab5c0cb",
    "4b56616c77828d98a3aeb9c4cfdae5f0",
    "707b86919ca7b2bdc8d3dee9f4ff0a15",
    "693c4efeccf157d0451272be7580a0e6",
    "0853f084b887e5f1f2f605df4754051d",
};

TEST(GoldenVectorsTest, RsEncodeMatchesGoldenOnEveryTier) {
  const auto code = make_systematic_rs(6, 4, 16);
  const auto vals = rs_golden_values();
  for (const auto tier : available_tiers()) {
    gf::kernels::ScopedTierForTesting guard(tier);
    for (NodeId s = 0; s < 6; ++s) {
      EXPECT_EQ(to_hex(code->encode(s, vals)), kRsSymbols[s])
          << "server " << s << " tier " << gf::kernels::tier_name(tier);
    }
  }
}

TEST(GoldenVectorsTest, RsDecodeRecoversFromGoldenSymbols) {
  const auto code = make_systematic_rs(6, 4, 16);
  const auto vals = rs_golden_values();
  // Decode every object from the two parities plus two systematic servers
  // (objects 0 and 1 erased), using only the golden symbol bytes.
  const std::vector<NodeId> servers = {2, 3, 4, 5};
  std::vector<Symbol> symbols;
  for (const NodeId s : servers) symbols.push_back(from_hex(kRsSymbols[s]));
  for (ObjectId k = 0; k < 4; ++k) {
    EXPECT_EQ(code->decode(k, servers, symbols), vals[k]) << "object " << k;
  }
}

TEST(GoldenVectorsTest, RsReencodeMatchesGolden) {
  const auto code = make_systematic_rs(6, 4, 16);
  const auto vals = rs_golden_values();
  Value newv(16);
  for (std::size_t j = 0; j < 16; ++j) {
    newv[j] = static_cast<std::uint8_t>(j * 5 + 200);
  }
  Symbol sym = from_hex(kRsSymbols[5]);
  code->reencode(5, sym, 2, vals[2], newv);
  EXPECT_EQ(to_hex(sym), "8409cd00532bf032ef527704d3164fee");
  // Reencoding must commute with encoding the updated object vector.
  auto updated = vals;
  updated[2] = newv;
  EXPECT_EQ(sym, code->encode(5, updated));
}

// ---------------------------------------------------------------------------
// The paper's (5,3) code over F_257 (odd characteristic), 8-byte values =
// four 2-byte little-endian elements, each < 257.
// Input pattern: element e of object k is (k*31 + e*7 + 3) mod 257.
// ---------------------------------------------------------------------------

std::vector<Value> p53_golden_values() {
  std::vector<Value> vals(3);
  for (std::size_t k = 0; k < 3; ++k) {
    vals[k].resize(8);
    for (std::size_t e = 0; e < 4; ++e) {
      const std::uint32_t x = (k * 31 + e * 7 + 3) % 257;
      vals[k][2 * e] = static_cast<std::uint8_t>(x & 0xFF);
      vals[k][2 * e + 1] = static_cast<std::uint8_t>(x >> 8);
    }
  }
  return vals;
}

// Y1=X1, Y2=X2, Y3=X3, Y4=X1+X2+X3, Y5=X1+2*X2+X3 (Sec. 1.2).
const char* const kP53Symbols[5] = {
    "03000a0011001800",
    "2200290030003700",
    "410048004f005600",
    "66007b009000a500",
    "8800a400c000dc00",
};

TEST(GoldenVectorsTest, Paper53EncodeMatchesGolden) {
  const auto code = make_paper_5_3(8);
  const auto vals = p53_golden_values();
  for (NodeId s = 0; s < 5; ++s) {
    EXPECT_EQ(to_hex(code->encode(s, vals)), kP53Symbols[s]) << "server " << s;
  }
}

TEST(GoldenVectorsTest, Paper53DecodeRecoversFromGoldenSymbols) {
  const auto code = make_paper_5_3(8);
  const auto vals = p53_golden_values();
  // X1 and X2 erased: recover them from Y3, Y4, Y5 alone (this is the
  // paper's motivating scenario -- the two parity equations differ only in
  // the coefficient 2, which requires odd characteristic).
  const std::vector<NodeId> servers = {2, 3, 4};
  std::vector<Symbol> symbols;
  for (const NodeId s : servers) symbols.push_back(from_hex(kP53Symbols[s]));
  EXPECT_EQ(code->decode(0, servers, symbols), vals[0]);
  EXPECT_EQ(code->decode(1, servers, symbols), vals[1]);
  EXPECT_EQ(code->decode(2, servers, symbols), vals[2]);
}

TEST(GoldenVectorsTest, Paper53ReencodeMatchesGolden) {
  const auto code = make_paper_5_3(8);
  const auto vals = p53_golden_values();
  Value newv(8);
  for (std::size_t e = 0; e < 4; ++e) {
    const std::uint32_t x = (e * 13 + 100) % 257;
    newv[2 * e] = static_cast<std::uint8_t>(x & 0xFF);
    newv[2 * e + 1] = static_cast<std::uint8_t>(x >> 8);
  }
  Symbol sym = from_hex(kP53Symbols[4]);
  code->reencode(4, sym, 1, vals[1], newv);
  // Hand-checkable: delta = new - old = (66,72,78,84); Y5 gains 2*delta,
  // so elements (136,164,192,220) become (11,51,91,131) mod 257.
  EXPECT_EQ(to_hex(sym), "0b0033005b008300");
  auto updated = vals;
  updated[1] = newv;
  EXPECT_EQ(sym, code->encode(4, updated));
}

// ---------------------------------------------------------------------------
// Golden repair vectors: Azure-LRC(6,2,2) over GF(2^8), 16-byte values,
// same input pattern as the RS block. Servers 0..5 are data, 6..7 the XOR
// local parities, 8..9 the Cauchy global parities. The repair plans are
// pinned (helper mask + fetched rows) along with the repaired bytes, so a
// planner regression that silently picks a costlier-but-correct helper set
// still fails here.
// ---------------------------------------------------------------------------

std::vector<Value> lrc_golden_values() {
  std::vector<Value> vals(6);
  for (std::size_t k = 0; k < 6; ++k) {
    vals[k].resize(16);
    for (std::size_t j = 0; j < 16; ++j) {
      vals[k][j] = static_cast<std::uint8_t>(k * 37 + j * 11 + 1);
    }
  }
  return vals;
}

const char* const kLrcSymbols[10] = {
    "010c17222d38434e59646f7a85909ba6",
    "26313c47525d68737e89949faab5c0cb",
    "4b56616c77828d98a3aeb9c4cfdae5f0",
    "707b86919ca7b2bdc8d3dee9f4ff0a15",
    "95a0abb6c1ccd7e2edf8030e19242f3a",
    "bac5d0dbe6f1fc07121d28333e49545f",
    "6c6b4a0908e7a6a584434221e0ffbe9d",
    "5f1efdfcbb9a99583736f5d4d3927170",
    "d16c844d704d7778e3cc8575228a3016",
    "51997a9e" "d6d5c2ca" "6c511f26" "63159b9b",
};

struct GoldenRepairCase {
  NodeId failed;
  std::uint32_t helper_mask;
  std::size_t fetch_rows;
};

// Data and local-parity failures repair inside a 3-server local group; a
// global parity finds a 5-row mixed set (still cheaper than the k=6 full
// decode, an LRC structural identity the planner must keep discovering).
const GoldenRepairCase kLrcRepairs[] = {
    {0, 0x046, 3},  // data, group 0: {1, 2, lp0}
    {4, 0x0a8, 3},  // data, group 1: {3, 5, lp1}
    {6, 0x007, 3},  // local parity 0: its own group {0, 1, 2}
    {8, 0x2cc, 5},  // global parity 0: {2, 3, lp0, lp1, gp1}
};

TEST(GoldenVectorsTest, LrcEncodeMatchesGoldenOnEveryTier) {
  const auto code = make_azure_lrc_6_2_2(16);
  const auto vals = lrc_golden_values();
  for (const auto tier : available_tiers()) {
    gf::kernels::ScopedTierForTesting guard(tier);
    for (NodeId s = 0; s < 10; ++s) {
      EXPECT_EQ(to_hex(code->encode(s, vals)), kLrcSymbols[s])
          << "server " << s << " tier " << gf::kernels::tier_name(tier);
    }
  }
}

TEST(GoldenVectorsTest, LrcRepairMatchesGoldenOnEveryTier) {
  const auto code = make_azure_lrc_6_2_2(16);
  for (const GoldenRepairCase& c : kLrcRepairs) {
    const auto summary = code->plan_symbol_repair(c.failed, 1u << c.failed);
    ASSERT_TRUE(summary.has_value()) << "failed " << c.failed;
    EXPECT_EQ(summary->helper_mask, c.helper_mask) << "failed " << c.failed;
    EXPECT_EQ(summary->fetch_rows, c.fetch_rows) << "failed " << c.failed;
    // Execute the repair from the pinned survivor bytes alone.
    std::vector<NodeId> helpers;
    std::vector<Symbol> symbols;
    for (NodeId s = 0; s < 10; ++s) {
      if (c.helper_mask >> s & 1) {
        helpers.push_back(s);
        symbols.push_back(from_hex(kLrcSymbols[s]));
      }
    }
    for (const auto tier : available_tiers()) {
      gf::kernels::ScopedTierForTesting guard(tier);
      EXPECT_EQ(to_hex(code->repair_symbol(c.failed, helpers, symbols)),
                kLrcSymbols[c.failed])
          << "failed " << c.failed << " tier " << gf::kernels::tier_name(tier);
    }
  }
}

// ---------------------------------------------------------------------------
// Golden repair vectors for the paper's (5,3) code: the minimal plans land
// exactly on the Sec. 1.2 identities (X2 = Y5 - Y4, Y4 = Y5 - X2,
// Y5 = Y4 + X2), each moving 2 symbols instead of the k=3 full decode.
// ---------------------------------------------------------------------------

const GoldenRepairCase kP53Repairs[] = {
    {0, 0x0e, 3},  // Y1 = X1: full decode from {Y2, Y3, Y4}
    {1, 0x18, 2},  // Y2 = X2 = Y5 - Y4
    {3, 0x12, 2},  // Y4 = Y5 - X2
    {4, 0x0a, 2},  // Y5 = Y4 + X2
};

TEST(GoldenVectorsTest, Paper53RepairMatchesGolden) {
  const auto code = make_paper_5_3(8);
  for (const GoldenRepairCase& c : kP53Repairs) {
    const auto summary = code->plan_symbol_repair(c.failed, 1u << c.failed);
    ASSERT_TRUE(summary.has_value()) << "failed " << c.failed;
    EXPECT_EQ(summary->helper_mask, c.helper_mask) << "failed " << c.failed;
    EXPECT_EQ(summary->fetch_rows, c.fetch_rows) << "failed " << c.failed;
    std::vector<NodeId> helpers;
    std::vector<Symbol> symbols;
    for (NodeId s = 0; s < 5; ++s) {
      if (c.helper_mask >> s & 1) {
        helpers.push_back(s);
        symbols.push_back(from_hex(kP53Symbols[s]));
      }
    }
    EXPECT_EQ(to_hex(code->repair_symbol(c.failed, helpers, symbols)),
              kP53Symbols[c.failed])
        << "failed " << c.failed;
  }
}

}  // namespace
}  // namespace causalec::erasure
