// Unit tests for the discrete-event simulator: determinism, FIFO channels,
// latency models, halting, timers, and byte accounting.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/latency.h"
#include "sim/simulation.h"

namespace causalec::sim {
namespace {

struct TestMessage final : Message {
  explicit TestMessage(int payload_in, std::size_t bytes_in = 100)
      : payload(payload_in), bytes(bytes_in) {}
  std::size_t wire_bytes() const override { return bytes; }
  const char* type_name() const override { return "test"; }
  int payload;
  std::size_t bytes;
};

/// Records (time, from, payload) for every delivery.
struct Recorder final : Actor {
  struct Entry {
    SimTime time;
    NodeId from;
    int payload;
  };
  explicit Recorder(Simulation** sim_in) : sim(sim_in) {}
  void on_message(NodeId from, MessagePtr message) override {
    auto* m = dynamic_cast<TestMessage*>(message.get());
    ASSERT_NE(m, nullptr);
    entries.push_back({(*sim)->now(), from, m->payload});
  }
  Simulation** sim;
  std::vector<Entry> entries;
};

struct World {
  explicit World(std::unique_ptr<LatencyModel> latency, std::uint64_t seed = 1)
      : sim(std::make_unique<Simulation>(std::move(latency), seed)) {
    sim_raw = sim.get();
  }
  NodeId add_recorder() {
    recorders.push_back(std::make_unique<Recorder>(&sim_raw));
    return sim->add_node(recorders.back().get());
  }
  std::unique_ptr<Simulation> sim;
  Simulation* sim_raw;
  std::vector<std::unique_ptr<Recorder>> recorders;
};

TEST(SimulationTest, DeliversWithModelDelay) {
  World w(std::make_unique<ConstantLatency>(5 * kMillisecond));
  const NodeId a = w.add_recorder();
  const NodeId b = w.add_recorder();
  w.sim->send(a, b, std::make_unique<TestMessage>(42));
  w.sim->run_until_idle();
  ASSERT_EQ(w.recorders[b]->entries.size(), 1u);
  EXPECT_EQ(w.recorders[b]->entries[0].time, 5 * kMillisecond);
  EXPECT_EQ(w.recorders[b]->entries[0].payload, 42);
  EXPECT_EQ(w.recorders[b]->entries[0].from, a);
}

TEST(SimulationTest, FifoPreservedUnderJitter) {
  // With jitter, a later message could draw a smaller delay; the channel
  // must still deliver in send order.
  World w(std::make_unique<UniformJitterLatency>(10 * kMillisecond,
                                                 9 * kMillisecond, 99));
  const NodeId a = w.add_recorder();
  const NodeId b = w.add_recorder();
  for (int i = 0; i < 200; ++i) {
    w.sim->send(a, b, std::make_unique<TestMessage>(i));
  }
  w.sim->run_until_idle();
  ASSERT_EQ(w.recorders[b]->entries.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(w.recorders[b]->entries[i].payload, i);
  }
  // Delivery times must be non-decreasing.
  for (std::size_t i = 1; i < 200; ++i) {
    EXPECT_GE(w.recorders[b]->entries[i].time,
              w.recorders[b]->entries[i - 1].time);
  }
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    World w(std::make_unique<UniformJitterLatency>(10 * kMillisecond,
                                                   5 * kMillisecond, seed));
    const NodeId a = w.add_recorder();
    const NodeId b = w.add_recorder();
    const NodeId c = w.add_recorder();
    for (int i = 0; i < 50; ++i) {
      w.sim->send(a, i % 2 ? b : c, std::make_unique<TestMessage>(i));
      w.sim->send(b, c, std::make_unique<TestMessage>(100 + i));
    }
    w.sim->run_until_idle();
    std::vector<std::pair<SimTime, int>> trace;
    for (const auto& e : w.recorders[c]->entries) {
      trace.emplace_back(e.time, e.payload);
    }
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // different seeds -> different schedule
}

TEST(SimulationTest, MatrixLatencyUsesRttOverTwo) {
  auto model = MatrixLatency::from_rtt_ms({{0.0, 100.0}, {100.0, 0.0}});
  World w(std::move(model));
  const NodeId a = w.add_recorder();
  const NodeId b = w.add_recorder();
  w.sim->send(a, b, std::make_unique<TestMessage>(1));
  w.sim->run_until_idle();
  ASSERT_EQ(w.recorders[b]->entries.size(), 1u);
  EXPECT_EQ(w.recorders[b]->entries[0].time, 50 * kMillisecond);
}

TEST(SimulationTest, BandwidthLatencyAddsSerializationDelay) {
  // 1 ms propagation + 1 MB/s bandwidth: a 1000-byte message takes 2 ms.
  World w(std::make_unique<BandwidthLatency>(kMillisecond, 1e6));
  const NodeId a = w.add_recorder();
  const NodeId b = w.add_recorder();
  w.sim->send(a, b, std::make_unique<TestMessage>(1, 1000));
  w.sim->send(a, b, std::make_unique<TestMessage>(2, 100000));
  w.sim->run_until_idle();
  ASSERT_EQ(w.recorders[b]->entries.size(), 2u);
  EXPECT_EQ(w.recorders[b]->entries[0].time, 2 * kMillisecond);
  // The 100 KB message costs 100 ms of serialization (FIFO keeps order).
  EXPECT_EQ(w.recorders[b]->entries[1].time, 101 * kMillisecond);
}

TEST(SimulationTest, HaltedNodeReceivesNothingAndSendsNothing) {
  World w(std::make_unique<ConstantLatency>(kMillisecond));
  const NodeId a = w.add_recorder();
  const NodeId b = w.add_recorder();
  w.sim->send(a, b, std::make_unique<TestMessage>(1));
  w.sim->halt(b);  // halts before delivery
  w.sim->send(a, b, std::make_unique<TestMessage>(2));
  w.sim->run_until_idle();
  EXPECT_TRUE(w.recorders[b]->entries.empty());
  EXPECT_TRUE(w.sim->halted(b));
  // Halted node's sends are dropped.
  w.sim->send(b, a, std::make_unique<TestMessage>(3));
  w.sim->run_until_idle();
  EXPECT_TRUE(w.recorders[a]->entries.empty());
}

TEST(SimulationTest, SelfSendIsAsynchronousButImmediate) {
  World w(std::make_unique<ConstantLatency>(kMillisecond));
  const NodeId a = w.add_recorder();
  w.sim->send(a, a, std::make_unique<TestMessage>(9));
  EXPECT_TRUE(w.recorders[a]->entries.empty());  // not delivered inline
  w.sim->run_until_idle();
  ASSERT_EQ(w.recorders[a]->entries.size(), 1u);
  EXPECT_EQ(w.recorders[a]->entries[0].time, 0);
}

TEST(SimulationTest, OneShotAndPeriodicTimers) {
  World w(std::make_unique<ConstantLatency>(kMillisecond));
  std::vector<SimTime> fired;
  w.sim->schedule_at(3 * kMillisecond,
                     [&] { fired.push_back(w.sim->now()); });
  w.sim->schedule_periodic(
      10 * kMillisecond, 10 * kMillisecond,
      [&] { fired.push_back(w.sim->now()); }, 45 * kMillisecond);
  w.sim->run_until_idle();
  ASSERT_EQ(fired.size(), 5u);  // 3ms, 10ms, 20ms, 30ms, 40ms
  EXPECT_EQ(fired[0], 3 * kMillisecond);
  EXPECT_EQ(fired[4], 40 * kMillisecond);
}

TEST(SimulationTest, CancelTimerStopsFiring) {
  World w(std::make_unique<ConstantLatency>(kMillisecond));
  int count = 0;
  const auto id = w.sim->schedule_periodic(
      kMillisecond, kMillisecond, [&] { ++count; }, 100 * kMillisecond);
  w.sim->schedule_at(5 * kMillisecond + 1, [&] { w.sim->cancel_timer(id); });
  w.sim->run_until_idle();
  EXPECT_EQ(count, 5);
}

TEST(SimulationTest, RunUntilStopsAtTime) {
  World w(std::make_unique<ConstantLatency>(10 * kMillisecond));
  const NodeId a = w.add_recorder();
  const NodeId b = w.add_recorder();
  w.sim->send(a, b, std::make_unique<TestMessage>(1));
  w.sim->run_until(5 * kMillisecond);
  EXPECT_TRUE(w.recorders[b]->entries.empty());
  EXPECT_EQ(w.sim->now(), 5 * kMillisecond);
  w.sim->run_until(10 * kMillisecond);
  EXPECT_EQ(w.recorders[b]->entries.size(), 1u);
}

TEST(SimulationTest, ByteAccounting) {
  World w(std::make_unique<ConstantLatency>(kMillisecond));
  const NodeId a = w.add_recorder();
  const NodeId b = w.add_recorder();
  w.sim->send(a, b, std::make_unique<TestMessage>(1, 100));
  w.sim->send(a, b, std::make_unique<TestMessage>(2, 250));
  w.sim->run_until_idle();
  EXPECT_EQ(w.sim->stats().total_messages, 2u);
  EXPECT_EQ(w.sim->stats().total_bytes, 350u);
  EXPECT_EQ(w.sim->stats().by_type.at("test").count, 2u);
  EXPECT_EQ(w.sim->stats().by_type.at("test").bytes, 350u);
  w.sim->stats().reset();
  EXPECT_EQ(w.sim->stats().total_bytes, 0u);
}

TEST(SimulationTest, ChannelDelayInjection) {
  World w(std::make_unique<ConstantLatency>(kMillisecond));
  const NodeId a = w.add_recorder();
  const NodeId b = w.add_recorder();
  const NodeId c = w.add_recorder();
  w.sim->add_channel_delay(a, b, 100 * kMillisecond);
  w.sim->send(a, b, std::make_unique<TestMessage>(1));
  w.sim->send(a, c, std::make_unique<TestMessage>(2));
  w.sim->run_until_idle();
  EXPECT_EQ(w.recorders[b]->entries[0].time, 101 * kMillisecond);
  EXPECT_EQ(w.recorders[c]->entries[0].time, kMillisecond);
}

TEST(SimulationTest, RunUntilIdleGuardsAgainstLivelock) {
  World w(std::make_unique<ConstantLatency>(kMillisecond));
  const NodeId a = w.add_recorder();
  (void)a;
  // A self-perpetuating event chain must trip the guard.
  std::function<void()> loop = [&] { w.sim->schedule_after(1, loop); };
  w.sim->schedule_after(1, loop);
  EXPECT_DEATH(w.sim->run_until_idle(1000), "did not quiesce");
}

}  // namespace
}  // namespace causalec::sim
