// Cluster-level integration tests: configuration equivalence (the DESIGN.md
// note 6/7 knobs must not change outcomes), and the closed-loop workload
// driver running against a live CausalEC cluster.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "causalec/cluster.h"
#include "common/random.h"
#include "erasure/codes.h"
#include "sim/latency.h"
#include "workload/driver.h"

namespace causalec {
namespace {

using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

/// Runs a fixed seeded workload and returns the final per-object winning
/// tags observed by every server.
std::map<std::pair<NodeId, ObjectId>, Tag> run_workload(
    const ServerConfig& server_config) {
  ClusterConfig config;
  config.server = server_config;
  config.gc_period = 25 * kMillisecond;
  config.seed = 7;
  auto cluster = std::make_unique<Cluster>(
      erasure::make_systematic_rs(5, 3, 16),
      std::make_unique<sim::ConstantLatency>(9 * kMillisecond), config);
  Rng rng(1234);
  std::vector<Client*> writers;
  for (NodeId s = 0; s < 5; ++s) writers.push_back(&cluster->make_client(s));
  for (int op = 0; op < 60; ++op) {
    writers[rng.next_below(5)]->write(
        static_cast<ObjectId>(rng.next_below(3)),
        Value(16, static_cast<std::uint8_t>(rng.next_u64())));
    cluster->run_for(rng.next_below(15) * kMillisecond);
  }
  cluster->settle();
  EXPECT_TRUE(cluster->storage_converged());

  std::map<std::pair<NodeId, ObjectId>, Tag> result;
  for (NodeId s = 0; s < 5; ++s) {
    for (ObjectId x = 0; x < 3; ++x) {
      cluster->make_client(s).read(
          x, [&result, s, x](const Value&, const Tag& tag,
                             const VectorClock&) {
            result[{s, x}] = tag;
          });
      cluster->run_for(kSecond);
    }
  }
  EXPECT_EQ(result.size(), 15u);
  return result;
}

TEST(ClusterIntegrationTest, KnobsDoNotChangeOutcomes) {
  // dedupe / compaction / metadata accounting are cost knobs: the same
  // seeded workload must converge to identical winners under all of them.
  ServerConfig base;
  const auto reference = run_workload(base);

  ServerConfig no_dedupe = base;
  no_dedupe.dedupe_del_broadcasts = false;
  EXPECT_EQ(run_workload(no_dedupe), reference);

  ServerConfig no_compaction = base;
  no_compaction.compact_del_lists = false;
  EXPECT_EQ(run_workload(no_compaction), reference);

  ServerConfig lamport = base;
  lamport.metadata = MetadataMode::kLamport;
  EXPECT_EQ(run_workload(lamport), reference);

  ServerConfig no_local_decode = base;
  no_local_decode.opportunistic_local_decode = false;
  EXPECT_EQ(run_workload(no_local_decode), reference);
}

TEST(ClusterIntegrationTest, ClosedLoopDriverDrivesTheCluster) {
  ClusterConfig config;
  config.gc_period = 40 * kMillisecond;
  auto cluster = std::make_unique<Cluster>(
      erasure::make_systematic_rs(6, 4, 64),
      std::make_unique<sim::ConstantLatency>(12 * kMillisecond), config);

  auto picker = std::make_shared<workload::KeyPicker>(4, 0.99, 5);
  workload::ClosedLoopDriver driver(&cluster->sim(), workload::OpMix{0.3},
                                    picker, /*think_rate_hz=*/50, 11);
  Rng value_rng(3);
  for (NodeId s = 0; s < 6; ++s) {
    Client* client = &cluster->make_client(s);
    workload::ClosedLoopDriver::Session session;
    session.issue_write = [client, &value_rng](ObjectId x,
                                               std::function<void()> done) {
      client->write(x, Value(64, static_cast<std::uint8_t>(
                                     value_rng.next_u64())));
      done();
    };
    session.issue_read = [client](ObjectId x, std::function<void()> done) {
      client->read(x, [done](const Value&, const Tag&,
                             const VectorClock&) { done(); });
    };
    driver.add_session(std::move(session));
  }
  driver.start(10 * kSecond);
  cluster->run_for(12 * kSecond);
  cluster->settle();

  const auto& stats = driver.stats();
  EXPECT_GT(stats.reads + stats.writes, 1000u);
  EXPECT_EQ(stats.read_latencies.size(), stats.reads);
  EXPECT_EQ(stats.write_latencies.size(), stats.writes);
  // Writes are local: zero latency, always.
  EXPECT_EQ(workload::DriverStats::max(stats.write_latencies), 0);
  // Reads: bounded by one round trip plus queueing (no crash here).
  EXPECT_LE(workload::DriverStats::max(stats.read_latencies),
            24 * kMillisecond);
  EXPECT_TRUE(cluster->storage_converged());
  for (NodeId s = 0; s < 6; ++s) {
    EXPECT_EQ(cluster->server(s).counters().error1_events, 0u);
    EXPECT_EQ(cluster->server(s).counters().error2_events, 0u);
  }
}

}  // namespace
}  // namespace causalec
