// Tests for the consistency checker: synthetic histories (good and bad),
// then full CausalEC executions checked end to end.
#include <gtest/gtest.h>

#include <memory>

#include "causalec/cluster.h"
#include "common/random.h"
#include "consistency/causal_checker.h"
#include "consistency/recorder.h"
#include "erasure/codes.h"
#include "sim/latency.h"

namespace causalec::consistency {
namespace {

using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

VectorClock vc(std::initializer_list<std::uint64_t> vals) {
  VectorClock clock(vals.size());
  std::size_t i = 0;
  for (auto v : vals) clock.set(i++, v);
  return clock;
}

OpRecord write_op(ClientId c, std::uint64_t seq, ObjectId x,
                  std::initializer_list<std::uint64_t> ts,
                  std::uint64_t hash = 1) {
  OpRecord op;
  op.client = c;
  op.session_seq = seq;
  op.is_write = true;
  op.object = x;
  op.timestamp = vc(ts);
  op.tag = Tag(op.timestamp, c);
  op.value_hash = hash;
  return op;
}

OpRecord read_op(ClientId c, std::uint64_t seq, ObjectId x,
                 std::initializer_list<std::uint64_t> ts, Tag tag,
                 std::uint64_t hash = 1) {
  OpRecord op;
  op.client = c;
  op.session_seq = seq;
  op.is_write = false;
  op.object = x;
  op.timestamp = vc(ts);
  op.tag = std::move(tag);
  op.value_hash = hash;
  return op;
}

// ---------------------------------------------------------------------------
// Synthetic histories.
// ---------------------------------------------------------------------------

TEST(CausalCheckerTest, AcceptsSimpleCausalHistory) {
  History h;
  const auto w = write_op(1, 0, 0, {1, 0});
  h.record(w);
  h.record(read_op(2, 0, 0, {1, 0}, w.tag));
  const auto result = check_causal_consistency(h);
  EXPECT_TRUE(result.ok) << result.violations.front();
}

TEST(CausalCheckerTest, AcceptsInitialValueRead) {
  History h;
  h.record(read_op(2, 0, 0, {0, 0}, Tag::zero(2), 0));
  EXPECT_TRUE(check_causal_consistency(h).ok);
}

TEST(CausalCheckerTest, RejectsStaleRead) {
  History h;
  const auto w1 = write_op(1, 0, 0, {1, 0});
  const auto w2 = write_op(1, 1, 0, {2, 0});
  h.record(w1);
  h.record(w2);
  // Read whose timestamp dominates both writes but returns the older one.
  h.record(read_op(2, 0, 0, {2, 1}, w1.tag));
  const auto result = check_causal_consistency(h);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations.front().find("last-writer-wins"),
            std::string::npos);
}

TEST(CausalCheckerTest, RejectsReadOfUnknownTag) {
  History h;
  h.record(read_op(2, 0, 0, {1, 0}, Tag(vc({1, 0}), 99)));
  const auto result = check_causal_consistency(h);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations.front().find("no write produced"),
            std::string::npos);
}

TEST(CausalCheckerTest, RejectsSessionOrderViolation) {
  History h;
  // Client 2's second op has a timestamp that lost a component.
  const auto w = write_op(1, 0, 0, {3, 0});
  h.record(w);
  h.record(read_op(2, 0, 0, {3, 0}, w.tag));
  h.record(read_op(2, 1, 0, {1, 0}, Tag::zero(2), 0));
  const auto result = check_causal_consistency(h);
  ASSERT_FALSE(result.ok);
}

TEST(CausalCheckerTest, RejectsValueCorruption) {
  History h;
  const auto w = write_op(1, 0, 0, {1, 0}, /*hash=*/111);
  h.record(w);
  h.record(read_op(2, 0, 0, {1, 0}, w.tag, /*hash=*/222));
  const auto result = check_causal_consistency(h);
  ASSERT_FALSE(result.ok);
}

TEST(CausalCheckerTest, RejectsDuplicateWriteTags) {
  History h;
  h.record(write_op(1, 0, 0, {1, 0}));
  auto dup = write_op(1, 1, 1, {1, 0});
  dup.timestamp = vc({1, 0});
  dup.tag = Tag(vc({1, 0}), 1);
  h.record(dup);
  EXPECT_FALSE(check_causal_consistency(h).ok);
}

TEST(CausalCheckerTest, RejectsArbitrationInversion) {
  // Definition 5(b): among writes, the arbitration (tag) order must extend
  // visibility (timestamp order). Forge a history where it does not.
  History h;
  auto w1 = write_op(1, 0, 0, {1, 0});
  auto w2 = write_op(2, 0, 0, {2, 0});  // causally after w1
  // Corrupt w2's tag so it arbitrates *before* w1 despite ts(w1) < ts(w2).
  w2.tag = Tag(vc({0, 1}), 2);
  h.record(w1);
  h.record(w2);
  const auto result = check_causal_consistency(h);
  ASSERT_FALSE(result.ok);
  bool found = false;
  for (const auto& v : result.violations) {
    if (v.find("arbitration") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SessionGuaranteesTest, DetectsNonMonotonicReads) {
  History h;
  const auto w1 = write_op(1, 0, 0, {1, 0});
  const auto w2 = write_op(1, 1, 0, {2, 0});
  h.record(w1);
  h.record(w2);
  h.record(read_op(2, 0, 0, {2, 0}, w2.tag));
  h.record(read_op(2, 1, 0, {2, 0}, w1.tag));  // goes backwards
  const auto result = check_session_guarantees(h);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations.front().find("monotonic reads"),
            std::string::npos);
}

TEST(SessionGuaranteesTest, DetectsReadYourWritesViolation) {
  History h;
  const auto w = write_op(1, 0, 0, {1, 0});
  h.record(w);
  h.record(read_op(1, 1, 0, {1, 0}, Tag::zero(2), 0));  // misses own write
  const auto result = check_session_guarantees(h);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations.front().find("read-your-writes"),
            std::string::npos);
}

TEST(SessionGuaranteesTest, DetectsWritesFollowReadsViolation) {
  // Client 2 reads client 1's write, then issues a write whose tag is NOT
  // arbitrated after the tag it read: ([1,1,0] read, then a [0,2,0] write
  // -- equal component sums, lexicographically smaller). A store applying
  // client 2's write before client 1's would order them against session
  // causality.
  History h;
  const auto w1 = write_op(1, 0, 0, {1, 1, 0});
  h.record(w1);
  h.record(read_op(2, 0, 0, {1, 1, 0}, w1.tag));
  h.record(write_op(2, 1, 1, {0, 2, 0}));  // tag < the tag just read
  const auto result = check_session_guarantees(h);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations.front().find("writes-follow-reads"),
            std::string::npos);
}

TEST(SessionGuaranteesTest, WritesFollowReadsSpansObjectsAndAcceptsValid) {
  // Same shape but the later write IS arbitrated after the read tag: no
  // violation, even across different objects.
  History h;
  const auto w1 = write_op(1, 0, 0, {1, 1, 0});
  h.record(w1);
  h.record(read_op(2, 0, 0, {1, 1, 0}, w1.tag));
  h.record(write_op(2, 1, 1, {1, 2, 0}));  // dominates the read tag
  EXPECT_TRUE(check_session_guarantees(h).ok);

  // Reads of the initial value impose no WFR constraint.
  History h2;
  h2.record(read_op(3, 0, 0, {0, 0, 0}, Tag::zero(3), 0));
  h2.record(write_op(3, 1, 0, {0, 0, 1}));
  EXPECT_TRUE(check_session_guarantees(h2).ok);
}

TEST(ConvergenceTest, DetectsDivergentFinalRead) {
  History h;
  const auto w1 = write_op(1, 0, 0, {1, 0});
  const auto w2 = write_op(2, 0, 0, {0, 1});
  h.record(w1);
  h.record(w2);
  const Tag winner = std::max(w1.tag, w2.tag);
  const Tag loser = std::min(w1.tag, w2.tag);
  std::vector<OpRecord> finals = {read_op(3, 0, 0, {1, 1}, winner)};
  EXPECT_TRUE(check_convergence(h, finals).ok);
  finals = {read_op(3, 0, 0, {1, 1}, loser)};
  EXPECT_FALSE(check_convergence(h, finals).ok);
}

// ---------------------------------------------------------------------------
// End-to-end: CausalEC executions must pass every check.
// ---------------------------------------------------------------------------

struct E2eParams {
  std::uint64_t seed;
  std::size_t n, k;
  bool use_rs;
};

class CausalEcCheckedTest : public ::testing::TestWithParam<E2eParams> {};

TEST_P(CausalEcCheckedTest, RandomExecutionPassesAllCheckers) {
  const auto& p = GetParam();
  erasure::CodePtr code =
      p.use_rs ? erasure::make_systematic_rs(p.n, p.k, 8)
               : erasure::make_random_code(p.seed, p.n, p.k, 8, 0.6);
  ClusterConfig config;
  config.gc_period = 25 * kMillisecond;
  config.seed = p.seed;
  Cluster cluster(code,
                  std::make_unique<sim::UniformJitterLatency>(
                      10 * kMillisecond, 9 * kMillisecond, p.seed + 5),
                  config);
  History history;
  auto now = [&cluster]() { return cluster.sim().now(); };

  Rng rng(p.seed * 31 + 7);
  std::vector<std::unique_ptr<SessionRecorder>> sessions;
  for (NodeId s = 0; s < p.n; ++s) {
    for (int c = 0; c < 2; ++c) {
      sessions.push_back(std::make_unique<SessionRecorder>(
          &cluster.make_client(s), &history, now));
    }
  }

  for (int op = 0; op < 300; ++op) {
    auto& session = *sessions[rng.next_below(sessions.size())];
    if (session.busy()) continue;
    const ObjectId x = static_cast<ObjectId>(rng.next_below(p.k));
    if (rng.next_bool(0.4)) {
      Value v(8);
      for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
      session.write(x, std::move(v));
    } else {
      session.read(x);
    }
    cluster.run_for(rng.next_below(10) * kMillisecond);
  }
  cluster.settle();

  // Final reads from one client per server for the convergence check.
  std::vector<OpRecord> final_reads;
  History final_history;
  for (NodeId s = 0; s < p.n; ++s) {
    SessionRecorder finals(&cluster.make_client(s), &final_history, now);
    for (ObjectId x = 0; x < p.k; ++x) {
      finals.read(x);
      cluster.run_for(kSecond);
    }
  }
  for (const auto& op : final_history.ops()) final_reads.push_back(op);

  const auto causal = check_causal_consistency(history);
  EXPECT_TRUE(causal.ok) << causal.violations.front();
  const auto session_result = check_session_guarantees(history);
  EXPECT_TRUE(session_result.ok) << session_result.violations.front();
  const auto convergence = check_convergence(history, final_reads);
  EXPECT_TRUE(convergence.ok) << convergence.violations.front();
  EXPECT_TRUE(cluster.storage_converged());
}

INSTANTIATE_TEST_SUITE_P(
    Executions, CausalEcCheckedTest,
    ::testing::Values(E2eParams{11, 5, 3, false}, E2eParams{12, 5, 3, true},
                      E2eParams{13, 6, 4, true}, E2eParams{14, 6, 3, false},
                      E2eParams{15, 7, 4, false}, E2eParams{16, 4, 2, true},
                      E2eParams{17, 8, 4, true}, E2eParams{18, 9, 5, false}),
    [](const auto& param_info) {
      return "seed" + std::to_string(param_info.param.seed) +
             (param_info.param.use_rs ? "_rs" : "_rand");
    });

}  // namespace
}  // namespace causalec::consistency
