// Unit battery for the causally-safe edge cache: the frontier-gated serve
// predicate, TTL expiry, LRU bookkeeping, and the frontdoor counter bundle.
#include <gtest/gtest.h>

#include <chrono>

#include "frontdoor/edge_cache.h"
#include "obs/frontdoor_counters.h"

namespace causalec::frontdoor {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kServers = 5;

VectorClock clock_of(std::initializer_list<std::uint64_t> components) {
  VectorClock vc(components.size());
  std::size_t i = 0;
  for (const std::uint64_t v : components) vc.set(i++, v);
  return vc;
}

Tag tag_at(std::initializer_list<std::uint64_t> components, ClientId id) {
  return Tag(clock_of(components), id);
}

erasure::Value value_of(std::uint8_t fill) { return erasure::Value(8, fill); }

TEST(EdgeCacheTest, MissThenPutThenHit) {
  EdgeCache cache(/*capacity=*/4, /*ttl=*/0ms);
  EdgeCache::Entry out;
  EXPECT_EQ(cache.lookup(0, VectorClock(), &out), EdgeCache::Outcome::kMiss);
  cache.put(0, value_of(1), tag_at({1, 0, 0, 0, 0}, 7),
            clock_of({1, 0, 0, 0, 0}));
  EXPECT_EQ(cache.size(), 1u);
  // An empty frontier (fresh session) accepts any witness.
  ASSERT_EQ(cache.lookup(0, VectorClock(), &out), EdgeCache::Outcome::kHit);
  EXPECT_EQ(out.value[0], 1);
  EXPECT_EQ(out.tag.id, 7u);
}

TEST(EdgeCacheTest, FrontierGatesTheServe) {
  EdgeCache cache(4, 0ms);
  cache.put(0, value_of(1), tag_at({2, 1, 0, 0, 0}, 7),
            clock_of({2, 1, 0, 0, 0}));
  EdgeCache::Entry out;
  // Behind or equal to the witness: serve.
  EXPECT_EQ(cache.lookup(0, clock_of({1, 0, 0, 0, 0}), &out),
            EdgeCache::Outcome::kHit);
  EXPECT_EQ(cache.lookup(0, clock_of({2, 1, 0, 0, 0}), &out),
            EdgeCache::Outcome::kHit);
  // Ahead of the witness in any component: the session has seen newer
  // state than the cached read timestamp -- stale rejection.
  EXPECT_EQ(cache.lookup(0, clock_of({2, 1, 1, 0, 0}), &out),
            EdgeCache::Outcome::kStale);
  // Incomparable (concurrent) frontiers also fall through.
  EXPECT_EQ(cache.lookup(0, clock_of({0, 0, 3, 0, 0}), &out),
            EdgeCache::Outcome::kStale);
  // A frontier of the wrong size never serves (cluster-shape confusion).
  VectorClock wrong(kServers - 1);
  EXPECT_EQ(cache.lookup(0, wrong, &out), EdgeCache::Outcome::kStale);
  // A stale rejection leaves the entry in place for older frontiers.
  EXPECT_EQ(cache.lookup(0, VectorClock(), &out), EdgeCache::Outcome::kHit);
}

TEST(EdgeCacheTest, TtlExpiresAndEagerlyDrops) {
  EdgeCache cache(4, /*ttl=*/50ms);
  cache.put(0, value_of(1), tag_at({1, 0, 0, 0, 0}, 7),
            clock_of({1, 0, 0, 0, 0}));
  EdgeCache::Entry out;
  EXPECT_EQ(cache.lookup(0, VectorClock(), &out), EdgeCache::Outcome::kHit);
  ASSERT_TRUE(cache.age_entry(0, 60ms));
  EXPECT_EQ(cache.lookup(0, VectorClock(), &out),
            EdgeCache::Outcome::kExpired);
  EXPECT_EQ(cache.size(), 0u) << "expired entries must not occupy capacity";
  EXPECT_EQ(cache.lookup(0, VectorClock(), &out), EdgeCache::Outcome::kMiss);
  EXPECT_FALSE(cache.age_entry(0, 1ms));
}

TEST(EdgeCacheTest, ZeroTtlDisablesExpiry) {
  EdgeCache cache(4, 0ms);
  cache.put(0, value_of(1), tag_at({1, 0, 0, 0, 0}, 7),
            clock_of({1, 0, 0, 0, 0}));
  ASSERT_TRUE(cache.age_entry(0, std::chrono::milliseconds(1 << 30)));
  EdgeCache::Entry out;
  EXPECT_EQ(cache.lookup(0, VectorClock(), &out), EdgeCache::Outcome::kHit);
}

TEST(EdgeCacheTest, LruEvictsTheColdestEntry) {
  EdgeCache cache(/*capacity=*/2, 0ms);
  cache.put(0, value_of(1), tag_at({1, 0, 0, 0, 0}, 1),
            clock_of({1, 0, 0, 0, 0}));
  cache.put(1, value_of(2), tag_at({0, 1, 0, 0, 0}, 2),
            clock_of({0, 1, 0, 0, 0}));
  EdgeCache::Entry out;
  // Touch object 0 so object 1 is the LRU entry.
  ASSERT_EQ(cache.lookup(0, VectorClock(), &out), EdgeCache::Outcome::kHit);
  cache.put(2, value_of(3), tag_at({0, 0, 1, 0, 0}, 3),
            clock_of({0, 0, 1, 0, 0}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(1, VectorClock(), &out), EdgeCache::Outcome::kMiss);
  EXPECT_EQ(cache.lookup(0, VectorClock(), &out), EdgeCache::Outcome::kHit);
  EXPECT_EQ(cache.lookup(2, VectorClock(), &out), EdgeCache::Outcome::kHit);
}

TEST(EdgeCacheTest, PutReplacesInPlace) {
  EdgeCache cache(2, 0ms);
  cache.put(0, value_of(1), tag_at({1, 0, 0, 0, 0}, 1),
            clock_of({1, 0, 0, 0, 0}));
  cache.put(0, value_of(9), tag_at({2, 0, 0, 0, 0}, 1),
            clock_of({2, 0, 0, 0, 0}));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EdgeCache::Entry out;
  ASSERT_EQ(cache.lookup(0, VectorClock(), &out), EdgeCache::Outcome::kHit);
  EXPECT_EQ(out.value[0], 9);
  // The refreshed witness now serves a frontier the old one could not.
  ASSERT_EQ(cache.lookup(0, clock_of({2, 0, 0, 0, 0}), &out),
            EdgeCache::Outcome::kHit);
}

TEST(FrontdoorCountersTest, ResolvesStableHandles) {
  obs::MetricsRegistry registry;
  const auto counters = obs::FrontdoorCounters::resolve(registry);
  counters.cache_hits->inc(3);
  counters.cache_misses->inc();
  counters.cache_hit_ns->observe(1000);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("frontdoor.cache_hits"), 3u);
  EXPECT_EQ(snapshot.counters.at("frontdoor.cache_misses"), 1u);
  EXPECT_EQ(snapshot.histograms.at("frontdoor.cache_hit_ns").count, 1u);
  // Resolving twice returns the same cells.
  const auto again = obs::FrontdoorCounters::resolve(registry);
  EXPECT_EQ(again.cache_hits, counters.cache_hits);
}

}  // namespace
}  // namespace causalec::frontdoor
