// Chaos harness tests: plan generation/serialization, run determinism, the
// consistency gates over adversarial schedules, and the harness self-test
// (an intentionally broken server build must be caught, shrunk to a
// minimal reproducer, and replayed byte-for-byte from its bundle).
#include <gtest/gtest.h>

#include "chaos/bundle.h"
#include "chaos/fault_plan.h"
#include "chaos/runner.h"
#include "chaos/shrink.h"
#include "erasure/plan_cache.h"
#include "sim/latency.h"

namespace causalec::chaos {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(FaultPlanTest, GenerationIsDeterministicAndValid) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const FaultPlan a = FaultPlan::generate(seed);
    const FaultPlan b = FaultPlan::generate(seed);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_TRUE(a.valid()) << "seed " << seed;
    EXPECT_LE(a.crashed_nodes().size(), a.crash_budget()) << "seed " << seed;
    for (std::size_t i = 1; i < a.events.size(); ++i) {
      EXPECT_LE(a.events[i - 1].at, a.events[i].at) << "seed " << seed;
    }
  }
  // Different seeds diverge.
  EXPECT_NE(FaultPlan::generate(1), FaultPlan::generate(2));
}

TEST(FaultPlanTest, JsonRoundTrip) {
  for (std::uint64_t seed : {1ull, 7ull, 33ull, 1234567ull}) {
    const FaultPlan plan = FaultPlan::generate(seed);
    const std::string json = plan.to_json();
    const auto parsed = FaultPlan::from_json(json);
    ASSERT_TRUE(parsed.has_value()) << json;
    EXPECT_EQ(*parsed, plan) << "seed " << seed;
  }
}

TEST(FaultPlanTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(FaultPlan::from_json("").has_value());
  EXPECT_FALSE(FaultPlan::from_json("{}").has_value());
  EXPECT_FALSE(FaultPlan::from_json("{\"format\":\"nope\"}").has_value());
  // Valid JSON, but the crash schedule exceeds the budget.
  const FaultPlan plan = FaultPlan::generate(1);
  FaultPlan overloaded = plan;
  overloaded.events.clear();
  for (std::uint32_t s = 0; s < plan.workload.num_servers; ++s) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kCrash;
    ev.node = s;
    overloaded.events.push_back(ev);
  }
  EXPECT_FALSE(FaultPlan::from_json(overloaded.to_json()).has_value());
}

// Satellite: the determinism regression. The same seed must produce the
// identical operation history and identical NetworkStats, twice.
TEST(ChaosRunnerTest, SameSeedReproducesHistoryAndNetworkStats) {
  const FaultPlan plan = FaultPlan::generate(42);
  const RunOutcome a = run_plan(plan);
  const RunOutcome b = run_plan(plan);

  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const auto& x = a.history.ops()[i];
    const auto& y = b.history.ops()[i];
    EXPECT_EQ(x.client, y.client);
    EXPECT_EQ(x.session_seq, y.session_seq);
    EXPECT_EQ(x.is_write, y.is_write);
    EXPECT_EQ(x.object, y.object);
    EXPECT_TRUE(x.tag == y.tag);
    EXPECT_TRUE(x.timestamp == y.timestamp);
    EXPECT_EQ(x.value_hash, y.value_hash);
    EXPECT_EQ(x.invoked_at, y.invoked_at);
    EXPECT_EQ(x.responded_at, y.responded_at);
  }
  EXPECT_EQ(a.net, b.net);
  EXPECT_EQ(a.history_hash, b.history_hash);
  EXPECT_EQ(a.ops_issued, b.ops_issued);
}

TEST(ChaosRunnerTest, GeneratedPlansRunClean) {
  GenerateLimits limits;
  limits.max_ops = 120;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const FaultPlan plan = FaultPlan::generate(seed, limits);
    const RunOutcome outcome = run_plan(plan);
    EXPECT_TRUE(outcome.ok)
        << "seed " << seed << ": " << outcome.violations.front();
    EXPECT_GT(outcome.ops_completed, 0u) << "seed " << seed;
  }
}

// Satellite of the decoder-plan-cache change: a chaos smoke seed run with
// the cache in its default-enabled state. Crashes and partitions force
// degraded reads through many distinct recovery-set shapes, so a cached
// plan that differed from fresh elimination would surface as a consistency
// violation here.
TEST(ChaosRunnerTest, SmokeSeedRunsCleanWithDecodePlanCache) {
  ASSERT_TRUE(erasure::DecodePlanCache<std::uint8_t>::default_enabled())
      << "CAUSALEC_DECODE_PLAN_CACHE=0 leaked into the test environment";
  const FaultPlan plan = FaultPlan::generate(20260806);
  const RunOutcome outcome = run_plan(plan);
  EXPECT_TRUE(outcome.ok) << outcome.violations.front();
  EXPECT_GT(outcome.ops_completed, 0u);
}

TEST(ChaosRunnerTest, PartitionHealsAndRunStaysConsistent) {
  // Hand-written schedule: no crashes, one long partition that splits the
  // cluster across a recovery-set boundary, plus a delay burst. Everything
  // must heal and converge.
  FaultPlan plan;
  plan.seed = 7;
  plan.workload.num_servers = 6;
  plan.workload.num_objects = 3;
  plan.workload.sessions = 3;
  plan.workload.ops = 60;
  FaultEvent partition;
  partition.kind = FaultEvent::Kind::kPartition;
  partition.at = 100 * kMillisecond;
  partition.side_mask = 0b000111;
  partition.duration = 400 * kMillisecond;
  plan.events.push_back(partition);
  FaultEvent burst;
  burst.kind = FaultEvent::Kind::kDelayBurst;
  burst.at = 50 * kMillisecond;
  burst.from = 0;
  burst.to = 5;
  burst.extra = 20 * kMillisecond;
  burst.duration = 200 * kMillisecond;
  plan.events.push_back(burst);
  ASSERT_TRUE(plan.valid());

  const RunOutcome outcome = run_plan(plan);
  EXPECT_TRUE(outcome.ok) << outcome.violations.front();
  EXPECT_EQ(outcome.ops_completed, 60u);
}

// The harness self-test: run the servers with the apply-order causality
// check disabled (the hidden ServerConfig seam). The checker stack must
// catch the violation, the shrinker must reduce it to a handful of
// operations, and the replay bundle must reproduce the exact run.
TEST(ChaosSelfTest, InjectedBugIsCaughtShrunkAndReplayable) {
  ChaosOptions buggy;
  buggy.inject_bug = true;

  // Seed 33 is a known in-budget reproducer (the fuzz tool finds many; the
  // test pins one so the assertion on the shrunk size is stable).
  const FaultPlan plan = FaultPlan::generate(33);
  const RunOutcome outcome = run_plan(plan, buggy);
  ASSERT_FALSE(outcome.ok) << "the injected bug went undetected";

  const ShrinkResult shrunk = shrink(plan, buggy);
  EXPECT_FALSE(shrunk.outcome.ok);
  EXPECT_LE(shrunk.plan.workload.ops, 20u)
      << "shrinking stalled at " << shrunk.plan.workload.ops << " ops";

  // Bundle round-trip.
  ReplayBundle bundle;
  bundle.plan = shrunk.plan;
  bundle.inject_bug = true;
  bundle.history_hash = shrunk.outcome.history_hash;
  bundle.violations = shrunk.outcome.violations;
  const std::string json = bundle_to_json(bundle);
  const auto parsed = bundle_from_json(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(parsed->plan, bundle.plan);
  EXPECT_EQ(parsed->inject_bug, true);
  EXPECT_EQ(parsed->history_hash, bundle.history_hash);
  EXPECT_EQ(parsed->violations, bundle.violations);

  // Replaying the parsed bundle reproduces the recorded run byte-for-byte.
  ChaosOptions replay_options;
  replay_options.inject_bug = parsed->inject_bug;
  const RunOutcome replayed = run_plan(parsed->plan, replay_options);
  EXPECT_EQ(replayed.history_hash, parsed->history_hash);
  EXPECT_EQ(replayed.violations, parsed->violations);
}

TEST(ChaosSelfTest, CorrectBuildPassesTheBugSeeds) {
  // The same schedules that expose the injected bug run clean on the real
  // protocol -- the failures come from the seam, not the harness.
  for (std::uint64_t seed : {33ull, 36ull, 39ull}) {
    const RunOutcome outcome = run_plan(FaultPlan::generate(seed));
    EXPECT_TRUE(outcome.ok)
        << "seed " << seed << ": " << outcome.violations.front();
  }
}

TEST(BundleTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(bundle_from_json("").has_value());
  EXPECT_FALSE(bundle_from_json("{\"format\":\"causalec-chaos-bundle-v1\"}")
                   .has_value());
  EXPECT_FALSE(bundle_from_json("[1,2,3]").has_value());
}

}  // namespace
}  // namespace causalec::chaos
