// Chaos harness tests: plan generation/serialization, run determinism, the
// consistency gates over adversarial schedules, and the harness self-test
// (an intentionally broken server build must be caught, shrunk to a
// minimal reproducer, and replayed byte-for-byte from its bundle).
#include <gtest/gtest.h>

#include "chaos/bundle.h"
#include "chaos/fault_plan.h"
#include "chaos/runner.h"
#include "chaos/shrink.h"
#include "erasure/plan_cache.h"
#include "sim/latency.h"

namespace causalec::chaos {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(FaultPlanTest, GenerationIsDeterministicAndValid) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const FaultPlan a = FaultPlan::generate(seed);
    const FaultPlan b = FaultPlan::generate(seed);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_TRUE(a.valid()) << "seed " << seed;
    EXPECT_LE(a.crashed_nodes().size(), a.crash_budget()) << "seed " << seed;
    for (std::size_t i = 1; i < a.events.size(); ++i) {
      EXPECT_LE(a.events[i - 1].at, a.events[i].at) << "seed " << seed;
    }
  }
  // Different seeds diverge.
  EXPECT_NE(FaultPlan::generate(1), FaultPlan::generate(2));
}

TEST(FaultPlanTest, JsonRoundTrip) {
  for (std::uint64_t seed : {1ull, 7ull, 33ull, 1234567ull}) {
    const FaultPlan plan = FaultPlan::generate(seed);
    const std::string json = plan.to_json();
    const auto parsed = FaultPlan::from_json(json);
    ASSERT_TRUE(parsed.has_value()) << json;
    EXPECT_EQ(*parsed, plan) << "seed " << seed;
  }
}

TEST(FaultPlanTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(FaultPlan::from_json("").has_value());
  EXPECT_FALSE(FaultPlan::from_json("{}").has_value());
  EXPECT_FALSE(FaultPlan::from_json("{\"format\":\"nope\"}").has_value());
  // Valid JSON, but the crash schedule exceeds the budget.
  const FaultPlan plan = FaultPlan::generate(1);
  FaultPlan overloaded = plan;
  overloaded.events.clear();
  for (std::uint32_t s = 0; s < plan.workload.num_servers; ++s) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kCrash;
    ev.node = s;
    overloaded.events.push_back(ev);
  }
  EXPECT_FALSE(FaultPlan::from_json(overloaded.to_json()).has_value());
}

// Satellite: the determinism regression. The same seed must produce the
// identical operation history and identical NetworkStats, twice.
TEST(ChaosRunnerTest, SameSeedReproducesHistoryAndNetworkStats) {
  const FaultPlan plan = FaultPlan::generate(42);
  const RunOutcome a = run_plan(plan);
  const RunOutcome b = run_plan(plan);

  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const auto& x = a.history.ops()[i];
    const auto& y = b.history.ops()[i];
    EXPECT_EQ(x.client, y.client);
    EXPECT_EQ(x.session_seq, y.session_seq);
    EXPECT_EQ(x.is_write, y.is_write);
    EXPECT_EQ(x.object, y.object);
    EXPECT_TRUE(x.tag == y.tag);
    EXPECT_TRUE(x.timestamp == y.timestamp);
    EXPECT_EQ(x.value_hash, y.value_hash);
    EXPECT_EQ(x.invoked_at, y.invoked_at);
    EXPECT_EQ(x.responded_at, y.responded_at);
  }
  EXPECT_EQ(a.net, b.net);
  EXPECT_EQ(a.history_hash, b.history_hash);
  EXPECT_EQ(a.ops_issued, b.ops_issued);
}

TEST(ChaosRunnerTest, GeneratedPlansRunClean) {
  GenerateLimits limits;
  limits.max_ops = 120;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const FaultPlan plan = FaultPlan::generate(seed, limits);
    const RunOutcome outcome = run_plan(plan);
    EXPECT_TRUE(outcome.ok)
        << "seed " << seed << ": " << outcome.violations.front();
    EXPECT_GT(outcome.ops_completed, 0u) << "seed " << seed;
  }
}

// Satellite of the decoder-plan-cache change: a chaos smoke seed run with
// the cache in its default-enabled state. Crashes and partitions force
// degraded reads through many distinct recovery-set shapes, so a cached
// plan that differed from fresh elimination would surface as a consistency
// violation here.
TEST(ChaosRunnerTest, SmokeSeedRunsCleanWithDecodePlanCache) {
  ASSERT_TRUE(erasure::DecodePlanCache<std::uint8_t>::default_enabled())
      << "CAUSALEC_DECODE_PLAN_CACHE=0 leaked into the test environment";
  const FaultPlan plan = FaultPlan::generate(20260806);
  const RunOutcome outcome = run_plan(plan);
  EXPECT_TRUE(outcome.ok) << outcome.violations.front();
  EXPECT_GT(outcome.ops_completed, 0u);
}

// Satellite of the repair-plan change (DESIGN.md §5.4): the degraded-read
// scenario burns the full n - k crash budget early under nearest-fanout,
// so the surviving coordinators must serve reads through repair plans for
// the rest of the run. The causal / session / convergence checkers must
// hold exactly as in a fault-free run, and the aggregated counters must
// show the plans actually carried traffic.
TEST(ChaosRunnerTest, DegradedReadScenarioStaysConsistent) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const FaultPlan plan = FaultPlan::degraded_read_scenario(seed);
    ASSERT_TRUE(plan.nearest_fanout);
    ASSERT_EQ(plan.crashed_nodes().size(), plan.crash_budget());
    const RunOutcome outcome = run_plan(plan);
    EXPECT_TRUE(outcome.ok) << "seed " << seed << ": "
                            << outcome.violations.front();
    EXPECT_GT(outcome.ops_completed, 0u) << "seed " << seed;
    EXPECT_GT(outcome.degraded_reads, 0u) << "seed " << seed;
    EXPECT_GT(outcome.repair_plan_hits, 0u) << "seed " << seed;
    EXPECT_GT(outcome.repair_bytes, 0u) << "seed " << seed;
  }
}

// Turning repair-aware fan-out off must not cost consistency either -- the
// scenario then exercises the footnote-14 timeout fallback instead, and no
// degraded-read counters move.
TEST(ChaosRunnerTest, DegradedReadScenarioHoldsWithPlansDisabled) {
  FaultPlan plan = FaultPlan::degraded_read_scenario(11);
  ChaosOptions options;
  const RunOutcome baseline = run_plan(plan, options);
  ASSERT_TRUE(baseline.ok) << baseline.violations.front();

  // Same plan, broadcast fan-out: the degraded path never engages.
  plan.nearest_fanout = false;
  const RunOutcome broadcast = run_plan(plan, options);
  EXPECT_TRUE(broadcast.ok) << broadcast.violations.front();
  EXPECT_EQ(broadcast.degraded_reads, 0u);
}

TEST(ChaosRunnerTest, PartitionHealsAndRunStaysConsistent) {
  // Hand-written schedule: no crashes, one long partition that splits the
  // cluster across a recovery-set boundary, plus a delay burst. Everything
  // must heal and converge.
  FaultPlan plan;
  plan.seed = 7;
  plan.workload.num_servers = 6;
  plan.workload.num_objects = 3;
  plan.workload.sessions = 3;
  plan.workload.ops = 60;
  FaultEvent partition;
  partition.kind = FaultEvent::Kind::kPartition;
  partition.at = 100 * kMillisecond;
  partition.side_mask = 0b000111;
  partition.duration = 400 * kMillisecond;
  plan.events.push_back(partition);
  FaultEvent burst;
  burst.kind = FaultEvent::Kind::kDelayBurst;
  burst.at = 50 * kMillisecond;
  burst.from = 0;
  burst.to = 5;
  burst.extra = 20 * kMillisecond;
  burst.duration = 200 * kMillisecond;
  plan.events.push_back(burst);
  ASSERT_TRUE(plan.valid());

  const RunOutcome outcome = run_plan(plan);
  EXPECT_TRUE(outcome.ok) << outcome.violations.front();
  EXPECT_EQ(outcome.ops_completed, 60u);
}

// The harness self-test: run the servers with the apply-order causality
// check disabled (the hidden ServerConfig seam). The checker stack must
// catch the violation, the shrinker must reduce it to a handful of
// operations, and the replay bundle must reproduce the exact run.
TEST(ChaosSelfTest, InjectedBugIsCaughtShrunkAndReplayable) {
  ChaosOptions buggy;
  buggy.inject_bug = true;

  // Seed 33 is a known in-budget reproducer (the fuzz tool finds many; the
  // test pins one so the assertion on the shrunk size is stable).
  const FaultPlan plan = FaultPlan::generate(33);
  const RunOutcome outcome = run_plan(plan, buggy);
  ASSERT_FALSE(outcome.ok) << "the injected bug went undetected";

  const ShrinkResult shrunk = shrink(plan, buggy);
  EXPECT_FALSE(shrunk.outcome.ok);
  EXPECT_LE(shrunk.plan.workload.ops, 20u)
      << "shrinking stalled at " << shrunk.plan.workload.ops << " ops";

  // Bundle round-trip.
  ReplayBundle bundle;
  bundle.plan = shrunk.plan;
  bundle.inject_bug = true;
  bundle.history_hash = shrunk.outcome.history_hash;
  bundle.violations = shrunk.outcome.violations;
  const std::string json = bundle_to_json(bundle);
  const auto parsed = bundle_from_json(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(parsed->plan, bundle.plan);
  EXPECT_EQ(parsed->inject_bug, true);
  EXPECT_EQ(parsed->history_hash, bundle.history_hash);
  EXPECT_EQ(parsed->violations, bundle.violations);

  // Replaying the parsed bundle reproduces the recorded run byte-for-byte.
  ChaosOptions replay_options;
  replay_options.inject_bug = parsed->inject_bug;
  const RunOutcome replayed = run_plan(parsed->plan, replay_options);
  EXPECT_EQ(replayed.history_hash, parsed->history_hash);
  EXPECT_EQ(replayed.violations, parsed->violations);
}

TEST(ChaosSelfTest, CorrectBuildPassesTheBugSeeds) {
  // The same schedules that expose the injected bug run clean on the real
  // protocol -- the failures come from the seam, not the harness.
  for (std::uint64_t seed : {33ull, 36ull, 39ull}) {
    const RunOutcome outcome = run_plan(FaultPlan::generate(seed));
    EXPECT_TRUE(outcome.ok)
        << "seed " << seed << ": " << outcome.violations.front();
  }
}

// ---------------------------------------------------------------------------
// Crash-recover schedules (DESIGN.md §9): generation keeps the
// *simultaneous* downtime within the n - k budget while cumulative
// crash-recover cycles may exceed it; the runner restores recovered nodes
// from their journals and the full checker stack gates the rejoin.
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, CrashRecoverGenerationStaysWithinDowntimeBudget) {
  std::size_t seeds_with_cr = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const FaultPlan plan = FaultPlan::generate(seed);
    EXPECT_TRUE(plan.valid()) << "seed " << seed;
    EXPECT_LE(plan.max_simultaneous_down(), plan.crash_budget())
        << "seed " << seed;
    EXPECT_LT(plan.ever_down_nodes().size(), plan.workload.num_servers)
        << "seed " << seed << ": no server left for client homes";
    for (const FaultEvent& ev : plan.events) {
      if (ev.kind != FaultEvent::Kind::kCrashRecover) continue;
      ++seeds_with_cr;
      EXPECT_GT(ev.duration, 0) << "seed " << seed;
      EXPECT_LE(ev.at + ev.duration, plan.horizon) << "seed " << seed;
      break;
    }
  }
  EXPECT_GE(seeds_with_cr, 10u)
      << "crash_recover draws became too rare to matter";
}

TEST(FaultPlanTest, CrashRecoverJsonRoundTrip) {
  // Seed 20260806 (the smoke seed) carries a crash_recover event; the
  // round-trip must preserve its node and downtime window exactly.
  const FaultPlan plan = FaultPlan::generate(20260806);
  bool has_cr = false;
  for (const FaultEvent& ev : plan.events) {
    if (ev.kind == FaultEvent::Kind::kCrashRecover) has_cr = true;
  }
  ASSERT_TRUE(has_cr) << "smoke seed lost its crash_recover event";
  const auto parsed = FaultPlan::from_json(plan.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, plan);
}

TEST(FaultPlanTest, ValidRejectsBadCrashRecoverSchedules) {
  FaultPlan base;
  base.workload.num_servers = 5;
  base.workload.num_objects = 3;
  auto cr = [](NodeId node, SimTime at, SimTime duration) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kCrashRecover;
    ev.node = node;
    ev.at = at;
    ev.duration = duration;
    return ev;
  };

  {  // Recovering a permanently crashed node would resurrect a corpse.
    FaultPlan plan = base;
    FaultEvent crash;
    crash.kind = FaultEvent::Kind::kCrash;
    crash.node = 4;
    crash.at = 10 * kMillisecond;
    plan.events.push_back(crash);
    plan.events.push_back(cr(4, 100 * kMillisecond, 50 * kMillisecond));
    EXPECT_FALSE(plan.valid());
  }
  {  // Overlapping windows on the same node: the second recover would fire
     // on a running server.
    FaultPlan plan = base;
    plan.events.push_back(cr(4, 100 * kMillisecond, 200 * kMillisecond));
    plan.events.push_back(cr(4, 150 * kMillisecond, 50 * kMillisecond));
    EXPECT_FALSE(plan.valid());
  }
  {  // Three nodes down at once exceeds the n - k = 2 budget.
    FaultPlan plan = base;
    plan.events.push_back(cr(2, 100 * kMillisecond, 100 * kMillisecond));
    plan.events.push_back(cr(3, 100 * kMillisecond, 100 * kMillisecond));
    plan.events.push_back(cr(4, 100 * kMillisecond, 100 * kMillisecond));
    EXPECT_FALSE(plan.valid());
  }
  {  // Zero duration and horizon overrun.
    FaultPlan plan = base;
    plan.events.push_back(cr(4, 100 * kMillisecond, 0));
    EXPECT_FALSE(plan.valid());
    plan.events.back() = cr(4, plan.horizon - kMillisecond, 5 * kMillisecond);
    EXPECT_FALSE(plan.valid());
  }
  {  // The same shapes are fine when disjoint and within budget.
    FaultPlan plan = base;
    plan.events.push_back(cr(2, 100 * kMillisecond, 100 * kMillisecond));
    plan.events.push_back(cr(3, 250 * kMillisecond, 100 * kMillisecond));
    EXPECT_TRUE(plan.valid());
  }
}

// Acceptance scenario: cumulative crashes exceed n - k (three distinct
// nodes crash-recover over the run, budget is 2) while at most one server
// is ever down at a time. The erasure-coded state survives every cycle.
TEST(ChaosRunnerTest, CumulativeCrashRecoversBeyondBudgetRunClean) {
  FaultPlan plan;
  plan.seed = 77;
  plan.workload.num_servers = 5;
  plan.workload.num_objects = 3;
  plan.workload.sessions = 2;
  plan.workload.ops = 120;
  plan.workload.think_rate_hz = 300.0;  // stretch writes across the outages
  SimTime at = 20 * kMillisecond;
  for (NodeId node : {2u, 3u, 4u}) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kCrashRecover;
    ev.node = node;
    ev.at = at;
    ev.duration = 80 * kMillisecond;
    plan.events.push_back(ev);
    at += 120 * kMillisecond;  // strictly after the previous recovery
  }
  ASSERT_TRUE(plan.valid());
  ASSERT_GT(plan.ever_down_nodes().size(), plan.crash_budget())
      << "the scenario must exceed the budget cumulatively";
  ASSERT_EQ(plan.max_simultaneous_down(), 1u);

  const RunOutcome outcome = run_plan(plan);
  EXPECT_TRUE(outcome.ok) << outcome.violations.front();
  EXPECT_EQ(outcome.ops_completed, plan.workload.ops);
}

// The recovery self-test: skipping the rejoin catch-up (the hidden
// ServerConfig seam) must be caught by the checker stack -- a stale
// recovered server serves old reads or keeps a behind clock -- then shrink
// to a small reproducer and replay from its bundle byte-for-byte.
TEST(ChaosSelfTest, InjectedRecoveryBugIsCaughtShrunkAndReplayable) {
  ChaosOptions buggy;
  buggy.inject_recovery_bug = true;

  // Seed 33's schedule misses writes during its crash-recover window, so a
  // skipped catch-up is observable (pinned for a stable shrink assertion).
  const FaultPlan plan = FaultPlan::generate(33);
  const RunOutcome outcome = run_plan(plan, buggy);
  ASSERT_FALSE(outcome.ok) << "the stale rejoin went undetected";

  const ShrinkResult shrunk = shrink(plan, buggy);
  EXPECT_FALSE(shrunk.outcome.ok);
  EXPECT_LE(shrunk.plan.workload.ops, 40u)
      << "shrinking stalled at " << shrunk.plan.workload.ops << " ops";
  bool kept_cr = false;
  for (const FaultEvent& ev : shrunk.plan.events) {
    if (ev.kind == FaultEvent::Kind::kCrashRecover) kept_cr = true;
  }
  EXPECT_TRUE(kept_cr)
      << "the shrunk reproducer dropped the crash_recover event";

  ReplayBundle bundle;
  bundle.plan = shrunk.plan;
  bundle.inject_recovery_bug = true;
  bundle.history_hash = shrunk.outcome.history_hash;
  bundle.violations = shrunk.outcome.violations;
  const std::string json = bundle_to_json(bundle);
  const auto parsed = bundle_from_json(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(parsed->plan, bundle.plan);
  EXPECT_FALSE(parsed->inject_bug);
  EXPECT_TRUE(parsed->inject_recovery_bug);

  ChaosOptions replay_options;
  replay_options.inject_recovery_bug = parsed->inject_recovery_bug;
  const RunOutcome replayed = run_plan(parsed->plan, replay_options);
  EXPECT_EQ(replayed.history_hash, parsed->history_hash);
  EXPECT_EQ(replayed.violations, parsed->violations);
}

TEST(BundleTest, RecoveryBugFlagDefaultsToFalseForOldBundles) {
  // Bundles written before the flag existed parse with it off.
  ReplayBundle bundle;
  bundle.plan = FaultPlan::generate(3);
  bundle.history_hash = 99;
  std::string json = bundle_to_json(bundle);
  const std::string needle = "\"inject_recovery_bug\":false,";
  const auto pos = json.find(needle);
  ASSERT_NE(pos, std::string::npos) << json;
  json.erase(pos, needle.size());
  const auto parsed = bundle_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->inject_recovery_bug);
}

TEST(BundleTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(bundle_from_json("").has_value());
  EXPECT_FALSE(bundle_from_json("{\"format\":\"causalec-chaos-bundle-v1\"}")
                   .has_value());
  EXPECT_FALSE(bundle_from_json("[1,2,3]").has_value());
}

}  // namespace
}  // namespace causalec::chaos
