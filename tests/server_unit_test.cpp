// White-box unit tests of the Server automaton through a mock transport:
// exact message contents, re-encoding paths, garbage-collection conditions,
// del dedupe, and wire-size accounting -- without a simulator in the loop.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "causalec/messages.h"
#include "causalec/server.h"
#include "erasure/codes.h"

namespace causalec {
namespace {

using erasure::Value;

/// Captures outbound traffic and timers for manual delivery.
class MockTransport final : public Transport {
 public:
  struct Sent {
    NodeId to;
    sim::MessagePtr message;
  };
  struct Timer {
    SimTime at;
    std::function<void()> fn;
  };

  void send(NodeId to, sim::MessagePtr message) override {
    sent.push_back({to, std::move(message)});
  }
  void schedule_after(SimTime delta, std::function<void()> fn) override {
    timers.push_back({now_ + delta, std::move(fn)});
  }
  SimTime now() const override { return now_; }

  template <typename M>
  std::vector<const M*> of_type() const {
    std::vector<const M*> out;
    for (const auto& s : sent) {
      if (auto* m = dynamic_cast<const M*>(s.message.get())) out.push_back(m);
    }
    return out;
  }

  std::size_t count_to(NodeId to) const {
    std::size_t n = 0;
    for (const auto& s : sent) n += s.to == to;
    return n;
  }

  void clear() { sent.clear(); }

  std::vector<Sent> sent;
  std::vector<Timer> timers;
  SimTime now_ = 0;
};

Value val257(std::uint8_t fill, std::size_t bytes = 16) {
  Value v(bytes, 0);
  for (std::size_t i = 0; i < bytes; i += 2) v[i] = fill;
  return v;
}

struct ServerFixture {
  explicit ServerFixture(erasure::CodePtr code_in, NodeId id,
                         ServerConfig config = {})
      : code(std::move(code_in)),
        server(id, code, config, &transport) {}

  erasure::CodePtr code;
  MockTransport transport;
  Server server;
};

// ---------------------------------------------------------------------------
// Write path.
// ---------------------------------------------------------------------------

TEST(ServerUnitTest, WriteBroadcastsAppToAllOthers) {
  ServerFixture f(erasure::make_paper_5_3(16), 0);
  const Tag t = f.server.client_write(7, 1, 0, val257(5));
  EXPECT_EQ(t.ts[0], 1u);
  EXPECT_EQ(t.id, 7u);
  const auto apps = f.transport.of_type<AppMessage>();
  ASSERT_EQ(apps.size(), 4u);  // everyone but self
  for (const auto* app : apps) {
    EXPECT_EQ(app->object, 0u);
    EXPECT_EQ(app->value, val257(5));
    EXPECT_EQ(app->tag, t);
  }
  EXPECT_EQ(f.transport.count_to(0), 0u);  // never to self
}

TEST(ServerUnitTest, WriteTriggersEagerReencodeAndDelToContaining) {
  // Server 3 stores X1+X2+X3: a local write re-encodes M immediately and
  // announces the version to the servers containing the object.
  ServerFixture f(erasure::make_paper_5_3(16), 3);
  const Tag t = f.server.client_write(9, 1, 1, val257(4));
  EXPECT_EQ(f.server.codeword_tag(1), t);
  // Symbol now encodes (0, v, 0): for the row [1,1,1] that is just v.
  const auto dels = f.transport.of_type<DelMessage>();
  // del goes to the containing servers of X2: {1, 3, 4} minus self.
  ASSERT_EQ(dels.size(), 2u);
  EXPECT_EQ(dels[0]->tag, t);
  // Own DelL entry recorded.
  EXPECT_TRUE(f.server.del_list(1).entries_from(3).count(t) > 0);
}

TEST(ServerUnitTest, WireSizesFollowTheModel) {
  ServerConfig config;
  config.header_bytes = 16;
  ServerFixture f(erasure::make_paper_5_3(64), 0, config);
  f.server.client_write(1, 1, 0, val257(1, 64));
  const auto apps = f.transport.of_type<AppMessage>();
  ASSERT_FALSE(apps.empty());
  // header + B + vector tag (5 servers * 8 + 8 id).
  EXPECT_EQ(apps[0]->wire_bytes(), 16u + 64u + 48u);

  // Lamport metadata mode shrinks the tag to 16 bytes.
  ServerConfig lamport = config;
  lamport.metadata = MetadataMode::kLamport;
  ServerFixture g(erasure::make_paper_5_3(64), 0, lamport);
  g.server.client_write(1, 1, 0, val257(1, 64));
  EXPECT_EQ(g.transport.of_type<AppMessage>()[0]->wire_bytes(),
            16u + 64u + 16u);
}

// ---------------------------------------------------------------------------
// Read paths.
// ---------------------------------------------------------------------------

TEST(ServerUnitTest, ReadRegistersAndInquiresWithCurrentTags) {
  ServerFixture f(erasure::make_paper_5_3(16), 4);  // coded server
  // Apply a remote write so M advances past the history (which then GCs...
  // here simply: receive app + make the encode happen, then empty history
  // via GC is impossible without dels; instead check the pending-read shape
  // from the initial state by reading a *different* object than any local
  // version: initial state serves locally, so first advance M via dels).
  // Simplest: read after the codeword tag moved ahead of the history.
  VectorClock vc(5);
  vc.set(1, 1);
  const Tag t(vc, 42);
  f.server.on_message(1, std::make_unique<AppMessage>(
                             1, val257(9), t,
                             WireModel::make({}, 5, 3)));
  // After apply+encode, history holds the value: the read serves locally.
  bool served = false;
  f.server.client_read(8, 100, 1,
                       [&](const Value& v, const Tag& tag,
                           const VectorClock&) {
                         served = true;
                         EXPECT_EQ(v, val257(9));
                         EXPECT_EQ(tag, t);
                       });
  EXPECT_TRUE(served);
  EXPECT_EQ(f.server.read_list().size(), 0u);
}

TEST(ServerUnitTest, ValInqAnsweredUncodedWhenHistoryHasWantedVersion) {
  ServerFixture f(erasure::make_paper_5_3(16), 1);
  const Tag t = f.server.client_write(5, 1, 1, val257(3));
  f.transport.clear();
  // Another node inquires for exactly that version.
  TagVector wanted = zero_tag_vector(3, 5);
  wanted[1] = t;
  f.server.on_message(
      4, std::make_unique<ValInqMessage>(8, 200, 1, wanted,
                                         WireModel::make({}, 5, 3)));
  const auto resps = f.transport.of_type<ValRespMessage>();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0]->value, val257(3));
  EXPECT_EQ(resps[0]->opid, 200u);
  EXPECT_TRUE(f.transport.of_type<ValRespEncodedMessage>().empty());
}

TEST(ServerUnitTest, ValInqZeroTagAnsweredWithZeroValue) {
  // The virtual zero entry: an inquiry for the initial version is served
  // uncoded with the zero value.
  ServerFixture f(erasure::make_paper_5_3(16), 1);
  f.server.client_write(5, 1, 1, val257(3));  // history holds v1
  f.transport.clear();
  const TagVector wanted = zero_tag_vector(3, 5);
  f.server.on_message(
      4, std::make_unique<ValInqMessage>(8, 201, 1, wanted,
                                         WireModel::make({}, 5, 3)));
  const auto resps = f.transport.of_type<ValRespMessage>();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0]->value, Value(16, 0));
}

TEST(ServerUnitTest, ValInqReencodesTowardWantedVersion) {
  // Server 3 (X1+X2+X3) has version v1 of X2 encoded and both v1 and the
  // zero version available: an inquiry wanting the zero version of X2 gets
  // a symbol re-encoded back to zero.
  ServerFixture f(erasure::make_paper_5_3_gf256(16), 3);
  const Tag t = f.server.client_write(5, 1, 1, Value(16, 3));
  ASSERT_EQ(f.server.codeword_tag(1), t);
  f.transport.clear();
  const TagVector wanted = zero_tag_vector(3, 5);  // wants all-initial
  f.server.on_message(
      4, std::make_unique<ValInqMessage>(8, 202, 1, wanted,
                                         WireModel::make({}, 5, 3)));
  // The wanted version of the *read object* (zero) is virtually present, so
  // the server answers uncoded with zero -- per Alg. 2 line 4.
  const auto resps = f.transport.of_type<ValRespMessage>();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0]->value, Value(16, 0));

  // Now inquire for an object the responder cannot serve uncoded (X1 at a
  // nonexistent tag) while X2 differs: the response must be re-encoded with
  // X2 cancelled to the wanted zero version.
  f.transport.clear();
  TagVector wanted2 = zero_tag_vector(3, 5);
  VectorClock other(5);
  other.set(0, 1);
  wanted2[0] = Tag(other, 77);  // a version server 3 has never seen
  f.server.on_message(
      4, std::make_unique<ValInqMessage>(8, 203, 0, wanted2,
                                         WireModel::make({}, 5, 3)));
  const auto encoded = f.transport.of_type<ValRespEncodedMessage>();
  ASSERT_EQ(encoded.size(), 1u);
  // X2's contribution was cancelled: the symbol corresponds to all-zero
  // objects, i.e. the zero symbol.
  EXPECT_EQ(encoded[0]->symbol, Value(16, 0));
  EXPECT_TRUE(encoded[0]->symbol_tags[1].is_zero());
}

// ---------------------------------------------------------------------------
// Garbage collection specifics.
// ---------------------------------------------------------------------------

TEST(ServerUnitTest, GcRequiresDelsFromEveryServer) {
  ServerFixture f(erasure::make_paper_5_3(16), 1);
  const Tag t = f.server.client_write(5, 1, 1, val257(3));
  const WireModel wm = WireModel::make({}, 5, 3);
  // dels from only 3 of 4 other servers: tmax must stay zero, history kept.
  for (NodeId j : {0u, 2u, 3u}) {
    f.server.on_message(j, std::make_unique<DelMessage>(1, t, j, false, wm));
  }
  f.server.run_garbage_collection();
  EXPECT_TRUE(f.server.tmax(1).is_zero());
  EXPECT_EQ(f.server.history(1).size(), 1u);
  // The last del arrives: now everything can go.
  f.server.on_message(4, std::make_unique<DelMessage>(1, t, 4, false, wm));
  f.server.run_garbage_collection();
  EXPECT_EQ(f.server.tmax(1), t);
  EXPECT_EQ(f.server.history(1).size(), 0u);
}

TEST(ServerUnitTest, GcKeepsVersionsProtectedByPendingReads) {
  // A pending read protects its requested version from collection.
  ServerFixture f(erasure::make_paper_5_3(16), 4);
  const WireModel wm = WireModel::make({}, 5, 3);
  // Version 1 of X2 arrives and is encoded.
  VectorClock vc1(5);
  vc1.set(1, 1);
  const Tag t1(vc1, 42);
  f.server.on_message(1, std::make_unique<AppMessage>(1, val257(1), t1, wm));
  ASSERT_EQ(f.server.codeword_tag(1), t1);

  // A remote read registers against the current tags... the read must be
  // for an object that cannot be served locally; with versions in history
  // reads serve locally, so emulate the post-GC state first:
  for (NodeId j = 0; j < 5; ++j) {
    if (j != 4) f.server.on_message(j, std::make_unique<DelMessage>(1, t1, j, false, wm));
  }
  f.server.run_garbage_collection();
  ASSERT_EQ(f.server.history(1).size(), 0u);

  // Version 2 arrives; encoding it needs version 1 -> internal read for t1
  // is registered, protecting t1... and the new version 2 value cannot be
  // collected while it is the freshest.
  VectorClock vc2(5);
  vc2.set(1, 2);
  const Tag t2(vc2, 42);
  f.server.on_message(1, std::make_unique<AppMessage>(1, val257(2), t2, wm));
  EXPECT_EQ(f.server.codeword_tag(1), t1);  // cannot advance yet
  EXPECT_EQ(f.server.read_list().size(), 1u);
  EXPECT_TRUE(f.server.read_list().has_internal_for(1, t1));
  f.server.run_garbage_collection();
  EXPECT_EQ(f.server.history(1).size(), 1u);  // v2 retained
}

TEST(ServerUnitTest, DelBroadcastDedupe) {
  ServerConfig dedupe_on;
  dedupe_on.dedupe_del_broadcasts = true;
  ServerFixture f(erasure::make_paper_5_3(16), 1, dedupe_on);
  const Tag t = f.server.client_write(5, 1, 1, val257(3));
  const WireModel wm = WireModel::make({}, 5, 3);
  for (NodeId j : {0u, 2u, 3u, 4u}) {
    f.server.on_message(j, std::make_unique<DelMessage>(1, t, j, false, wm));
  }
  f.transport.clear();
  f.server.run_garbage_collection();
  const std::size_t first = f.transport.of_type<DelMessage>().size();
  EXPECT_GT(first, 0u);
  f.transport.clear();
  // Re-running GC with unchanged state must not rebroadcast.
  f.server.run_garbage_collection();
  EXPECT_EQ(f.transport.of_type<DelMessage>().size(), 0u);

  ServerConfig dedupe_off = dedupe_on;
  dedupe_off.dedupe_del_broadcasts = false;
  ServerFixture g(erasure::make_paper_5_3(16), 1, dedupe_off);
  const Tag t2 = g.server.client_write(5, 1, 1, val257(3));
  for (NodeId j : {0u, 2u, 3u, 4u}) {
    g.server.on_message(j, std::make_unique<DelMessage>(1, t2, j, false, wm));
  }
  g.transport.clear();
  g.server.run_garbage_collection();
  g.server.run_garbage_collection();
  // Without dedupe both GC rounds broadcast.
  EXPECT_GE(g.transport.of_type<DelMessage>().size(), 8u);
}

TEST(ServerUnitTest, LeaderRoutedDelsAreForwardedWithOrigin) {
  // Appendix G variant (ii): a non-leader sends exactly one del (to the
  // leader, forward=true); the leader records it and fans it out with the
  // origin preserved.
  ServerConfig config;
  config.del_routing = DelRouting::kViaLeader;
  config.del_leader = 0;
  ServerFixture sender(erasure::make_paper_5_3(16), 3, config);
  sender.server.client_write(9, 1, 1, val257(4));  // re-encode -> del
  const auto sent = sender.transport.of_type<DelMessage>();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_TRUE(sent[0]->forward);
  EXPECT_EQ(sent[0]->origin, 3u);
  // The only del goes to the leader (apps still go to everyone).
  bool del_to_leader = false;
  for (const auto& s : sender.transport.sent) {
    if (dynamic_cast<const DelMessage*>(s.message.get())) {
      EXPECT_EQ(s.to, 0u);
      del_to_leader = true;
    }
  }
  EXPECT_TRUE(del_to_leader);

  // The leader forwards to everyone except itself and the origin.
  ServerFixture leader(erasure::make_paper_5_3(16), 0, config);
  const WireModel wm = WireModel::make(config, 5, 3);
  leader.server.on_message(
      3, std::make_unique<DelMessage>(1, sent[0]->tag, 3, true, wm));
  EXPECT_TRUE(leader.server.del_list(1).entries_from(3).count(sent[0]->tag) >
              0);
  const auto forwarded = leader.transport.of_type<DelMessage>();
  ASSERT_EQ(forwarded.size(), 3u);  // to 1, 2, 4
  for (const auto* msg : forwarded) {
    EXPECT_FALSE(msg->forward);
    EXPECT_EQ(msg->origin, 3u);
  }
  for (const auto& s : leader.transport.sent) {
    if (dynamic_cast<const DelMessage*>(s.message.get())) {
      EXPECT_NE(s.to, 0u);
      EXPECT_NE(s.to, 3u);
    }
  }
}

TEST(ServerUnitTest, LeaderItselfBroadcastsDirectly) {
  ServerConfig config;
  config.del_routing = DelRouting::kViaLeader;
  config.del_leader = 3;
  ServerFixture f(erasure::make_paper_5_3(16), 3, config);
  f.server.client_write(9, 1, 1, val257(4));
  const auto dels = f.transport.of_type<DelMessage>();
  ASSERT_EQ(dels.size(), 2u);  // containing servers of X2 minus self
  for (const auto* msg : dels) {
    EXPECT_FALSE(msg->forward);
    EXPECT_EQ(msg->origin, 3u);
  }
}

TEST(ServerUnitTest, StorageStatsReflectState) {
  ServerFixture f(erasure::make_paper_5_3(32), 3);
  auto st = f.server.storage();
  EXPECT_EQ(st.codeword_bytes, 32u);
  EXPECT_EQ(st.history_entries, 0u);
  f.server.client_write(5, 1, 0, val257(1, 32));
  f.server.client_write(5, 2, 1, val257(2, 32));
  st = f.server.storage();
  EXPECT_EQ(st.history_entries, 2u);
  EXPECT_EQ(st.history_bytes, 64u);
}

TEST(ServerUnitTest, CountersTrackActivity) {
  ServerFixture f(erasure::make_paper_5_3(16), 2);
  f.server.client_write(5, 1, 2, val257(1));
  bool served = false;
  f.server.client_read(5, 2, 2,
                       [&](const Value&, const Tag&, const VectorClock&) {
                         served = true;
                       });
  EXPECT_TRUE(served);
  const auto& c = f.server.counters();
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.reads, 1u);
  EXPECT_EQ(c.reads_served_from_history, 1u);
  EXPECT_EQ(c.reencodes, 1u);
  EXPECT_EQ(c.error1_events + c.error2_events, 0u);
}

}  // namespace
}  // namespace causalec
