// End-to-end causal tracing: a traced run must export Chrome flow events
// ('s'/'f' pairs sharing an id across different node lanes) that stitch a
// client write's app multicast and a remote read's inquiry round into
// cross-node flows, read spans must carry the tag of the write they
// causally depend on, the per-phase histograms must fill, and the tracer's
// overflow counter must surface in both export formats.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "causalec/cluster.h"
#include "common/random.h"
#include "erasure/codes.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/threaded_cluster.h"
#include "sim/latency.h"

namespace causalec {
namespace {

using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

/// One flow endpoint parsed back out of the exported Chrome JSON.
struct FlowEndpoint {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t pid = 0;
};

struct ParsedTrace {
  std::vector<FlowEndpoint> starts;    // ph == "s"
  std::vector<FlowEndpoint> finishes;  // ph == "f"
  std::uint64_t dropped = 0;
};

/// Parses write_chrome_trace output; gtest-fails on malformed JSON.
ParsedTrace parse_chrome_flows(const std::string& json) {
  ParsedTrace parsed;
  const auto doc = obs::json_parse(json);
  EXPECT_TRUE(doc.has_value());
  if (!doc) return parsed;
  const auto* dropped = doc->find("causalecDropped");
  EXPECT_NE(dropped, nullptr);
  if (dropped) parsed.dropped = dropped->as_u64();
  const auto* events = doc->find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (!events) return parsed;
  for (const obs::JsonValue& e : events->items()) {
    const auto* ph = e.find("ph");
    if (!ph || (ph->as_string() != "s" && ph->as_string() != "f")) continue;
    FlowEndpoint endpoint;
    endpoint.name = e.find("name")->as_string();
    endpoint.id = e.find("id")->as_u64();
    endpoint.pid = e.find("pid")->as_u64();
    if (ph->as_string() == "s") {
      parsed.starts.push_back(endpoint);
      // A flow start must sit on the lane of the sending node and carry
      // the binding id Chrome matches on.
      EXPECT_NE(endpoint.id, 0u);
    } else {
      parsed.finishes.push_back(endpoint);
      // 'f' events must bind to the enclosing slice ("bp":"e"), or the
      // viewer attaches the arrow to the wrong span.
      const auto* bp = e.find("bp");
      EXPECT_NE(bp, nullptr);
      if (bp) EXPECT_EQ(bp->as_string(), "e");
    }
  }
  return parsed;
}

/// Count of (start, finish) pairs for `name` whose ids match across two
/// DIFFERENT node lanes -- a rendered cross-node flow arrow.
std::size_t cross_node_flows(const ParsedTrace& parsed,
                             const std::string& name) {
  std::size_t flows = 0;
  for (const FlowEndpoint& s : parsed.starts) {
    if (s.name != name) continue;
    for (const FlowEndpoint& f : parsed.finishes) {
      if (f.name == name && f.id == s.id && f.pid != s.pid) {
        ++flows;
        break;
      }
    }
  }
  return flows;
}

TEST(ObsFlowTest, TracedSimRunExportsCrossNodeWriteAndReadFlows) {
  obs::Tracer tracer;
  ClusterConfig config;
  config.seed = 9;
  config.obs.tracer = &tracer;
  Cluster cluster(erasure::make_systematic_rs(5, 3, 64),
                  std::make_unique<sim::ConstantLatency>(5 * kMillisecond),
                  config);

  // One traced write, then a read at a parity server (no uncoded copy),
  // which must run the full remote inquiry round.
  cluster.make_client(0).write(0, Value(64, 0xAB));
  cluster.run_for(kSecond);
  int reads_done = 0;
  cluster.make_client(4).read(
      0, [&](const Value& v, const Tag&, const VectorClock&) {
        ++reads_done;
        EXPECT_EQ(v.size(), 64u);
      });
  cluster.run_for(kSecond);
  cluster.settle();
  ASSERT_EQ(reads_done, 1);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  ASSERT_TRUE(obs::is_valid_json(out.str()));
  const ParsedTrace parsed = parse_chrome_flows(out.str());

  // The write's app multicast renders as >= 1 cross-node flow arrow.
  EXPECT_GE(cross_node_flows(parsed, "flow.app"), 1u);
  // The read's inquiry and at least one response render as flows too.
  EXPECT_GE(cross_node_flows(parsed, "flow.val_inq"), 1u);
  EXPECT_GE(cross_node_flows(parsed, "flow.val_resp") +
                cross_node_flows(parsed, "flow.val_resp_encoded"),
            1u);
  EXPECT_EQ(parsed.dropped, 0u);
}

TEST(ObsFlowTest, ReadSpanCarriesCausallyDependentWriteTag) {
  obs::Tracer tracer;
  ClusterConfig config;
  config.seed = 9;
  config.obs.tracer = &tracer;
  Cluster cluster(erasure::make_systematic_rs(5, 3, 64),
                  std::make_unique<sim::ConstantLatency>(kMillisecond),
                  config);

  const Tag written = cluster.make_client(0).write(0, Value(64, 0x11));
  cluster.settle();
  int reads_done = 0;
  cluster.make_client(4).read(
      0, [&](const Value&, const Tag& tag, const VectorClock&) {
        ++reads_done;
        EXPECT_EQ(tag, written);
      });
  cluster.settle();
  ASSERT_EQ(reads_done, 1);

  // The read's end event is annotated with the tag of the write the
  // returned version causally depends on.
  std::ostringstream expected;
  expected << written;
  bool found = false;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.name.rfind("read", 0) != 0) continue;
    for (const obs::TraceArg& arg : e.args) {
      if (arg.key == "dep_tag" && arg.value == expected.str()) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsFlowTest, SimPhaseHistogramsFill) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  ClusterConfig config;
  config.seed = 3;
  config.obs.tracer = &tracer;
  config.obs.metrics = &metrics;
  Cluster cluster(erasure::make_systematic_rs(5, 3, 64),
                  std::make_unique<sim::ConstantLatency>(kMillisecond),
                  config);

  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    cluster.make_client(static_cast<NodeId>(rng.next_below(5)))
        .write(static_cast<ObjectId>(rng.next_below(3)),
               Value(64, static_cast<std::uint8_t>(i)));
    cluster.run_for(10 * kMillisecond);
  }
  cluster.settle();

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_GT(snap.histograms.at("phase.apply_ns").count, 0u);
  EXPECT_GT(snap.histograms.at("phase.encode_ns").count, 0u);
}

TEST(ObsFlowTest, ThreadedClusterFlowsPhasesAndMailboxGauge) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  runtime::ThreadedClusterConfig config;
  config.gc_period = std::chrono::milliseconds(10);
  config.obs.tracer = &tracer;
  config.obs.metrics = &metrics;
  runtime::ThreadedCluster cluster(erasure::make_systematic_rs(5, 3, 32),
                                   config);

  for (int i = 0; i < 30; ++i) {
    cluster.write(static_cast<NodeId>(i % 5), /*client=*/1,
                  static_cast<ObjectId>(i % 3),
                  Value(32, static_cast<std::uint8_t>(i)));
  }
  for (ObjectId x = 0; x < 3; ++x) {
    const auto [value, tag] = cluster.read(/*at=*/4, /*client=*/2, x);
    EXPECT_EQ(value.size(), 32u);
  }
  ASSERT_TRUE(cluster.await_convergence(std::chrono::milliseconds(5000)));

  // Cross-node flows on the threaded runtime too (real threads, real
  // codec frames).
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  ASSERT_TRUE(obs::is_valid_json(out.str()));
  const ParsedTrace parsed = parse_chrome_flows(out.str());
  EXPECT_GE(cross_node_flows(parsed, "flow.app"), 1u);

  // Mailbox phase decomposition: queue wait, deserialize, and the
  // broadcast-serialize cost all observed samples.
  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_GT(snap.histograms.at("phase.queue_wait_ns").count, 0u);
  EXPECT_GT(snap.histograms.at("phase.deserialize_ns").count, 0u);
  EXPECT_GT(snap.histograms.at("phase.serialize_ns").count, 0u);
  // At least one node saw a non-empty mailbox and published its depth.
  bool gauge_found = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name.rfind("runtime.mailbox_depth.s", 0) == 0) gauge_found = true;
  }
  EXPECT_TRUE(gauge_found);
}

TEST(ObsFlowTest, DroppedEventsSurfaceInBothExports) {
  // A tracer too small for the run must count the overflow and surface it
  // in the Chrome export ("causalecDropped") and the JSONL footer.
  obs::Tracer tracer(/*capacity=*/16);
  ClusterConfig config;
  config.seed = 2;
  config.obs.tracer = &tracer;
  Cluster cluster(erasure::make_systematic_rs(5, 3, 64),
                  std::make_unique<sim::ConstantLatency>(kMillisecond),
                  config);
  for (int i = 0; i < 10; ++i) {
    cluster.make_client(static_cast<NodeId>(i % 5))
        .write(static_cast<ObjectId>(i % 3),
               Value(64, static_cast<std::uint8_t>(i)));
    cluster.run_for(10 * kMillisecond);
  }
  cluster.settle();
  ASSERT_GT(tracer.dropped(), 0u);

  std::ostringstream chrome;
  tracer.write_chrome_trace(chrome);
  ASSERT_TRUE(obs::is_valid_json(chrome.str()));
  const auto doc = obs::json_parse(chrome.str());
  ASSERT_TRUE(doc.has_value());
  const auto* dropped = doc->find("causalecDropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->as_u64(), tracer.dropped());

  std::ostringstream jsonl;
  tracer.write_jsonl(jsonl);
  // The footer is the last non-empty line.
  std::string line, footer;
  std::istringstream lines(jsonl.str());
  while (std::getline(lines, line)) {
    if (!line.empty()) footer = line;
  }
  const auto footer_doc = obs::json_parse(footer);
  ASSERT_TRUE(footer_doc.has_value());
  const auto* footer_obj = footer_doc->find("footer");
  ASSERT_NE(footer_obj, nullptr);
  EXPECT_EQ(footer_obj->find("dropped")->as_u64(), tracer.dropped());
  EXPECT_EQ(footer_obj->find("events")->as_u64(), tracer.size());
}

}  // namespace
}  // namespace causalec
