// Unit tests for vector clocks, tags, and the protocol state containers
// (history list, deletion list, inqueue, read list).
#include <gtest/gtest.h>

#include "causalec/del_list.h"
#include "causalec/history_list.h"
#include "causalec/inqueue.h"
#include "causalec/read_list.h"
#include "causalec/tag.h"
#include "common/random.h"

namespace causalec {
namespace {

VectorClock vc(std::initializer_list<std::uint64_t> vals) {
  VectorClock clock(vals.size());
  std::size_t i = 0;
  for (auto v : vals) clock.set(i++, v);
  return clock;
}

Tag tag(std::initializer_list<std::uint64_t> vals, ClientId id = 0) {
  return Tag(vc(vals), id);
}

// ---------------------------------------------------------------------------
// VectorClock.
// ---------------------------------------------------------------------------

TEST(VectorClockTest, PartialOrder) {
  const auto a = vc({1, 2, 3});
  const auto b = vc({1, 2, 3});
  const auto c = vc({2, 2, 3});
  const auto d = vc({0, 5, 3});
  EXPECT_TRUE(a.leq(b));
  EXPECT_TRUE(b.leq(a));
  EXPECT_FALSE(a.lt(b));
  EXPECT_TRUE(a.lt(c));
  EXPECT_FALSE(c.lt(a));
  EXPECT_TRUE(a.concurrent_with(d));
  EXPECT_TRUE(d.concurrent_with(c));
}

TEST(VectorClockTest, MergeTakesComponentwiseMax) {
  auto a = vc({1, 5, 0});
  a.merge(vc({3, 2, 2}));
  EXPECT_EQ(a, vc({3, 5, 2}));
  EXPECT_EQ(a.sum(), 10u);
}

TEST(VectorClockTest, IncrementAndSum) {
  auto a = vc({0, 0});
  a.increment(1);
  a.increment(1);
  a.increment(0);
  EXPECT_EQ(a, vc({1, 2}));
  EXPECT_EQ(a.sum(), 3u);
  EXPECT_FALSE(a.is_zero());
  EXPECT_TRUE(vc({0, 0}).is_zero());
}

// ---------------------------------------------------------------------------
// Tag total order.
// ---------------------------------------------------------------------------

TEST(TagTest, TotalOrderExtendsCausality) {
  // Comparable timestamps: tag order must agree with vector order.
  EXPECT_TRUE(tag({1, 0}) < tag({1, 1}));
  EXPECT_TRUE(tag({0, 0}) < tag({5, 3}));
  EXPECT_FALSE(tag({2, 2}) < tag({1, 1}));
}

TEST(TagTest, TotalOrderIsTotalOnConcurrentTags) {
  const auto a = tag({2, 0}, 1);
  const auto b = tag({0, 2}, 2);
  EXPECT_TRUE((a < b) != (b < a));
  // Equal timestamps: the client id breaks the tie.
  const auto c = tag({1, 1}, 1);
  const auto d = tag({1, 1}, 2);
  EXPECT_TRUE(c < d);
  EXPECT_FALSE(d < c);
}

TEST(TagTest, TotalOrderIsTransitiveOnRandomTags) {
  Rng rng(5);
  std::vector<Tag> tags;
  for (int i = 0; i < 60; ++i) {
    VectorClock clock(3);
    for (std::size_t j = 0; j < 3; ++j) clock.set(j, rng.next_below(4));
    tags.emplace_back(clock, rng.next_below(4));
  }
  for (const auto& a : tags) {
    for (const auto& b : tags) {
      // Antisymmetry / totality.
      const int rel = (a < b) + (b < a) + 2 * (a == b);
      EXPECT_TRUE(rel == 1 || (a == b && !(a < b) && !(b < a)));
      for (const auto& c : tags) {
        if (a < b && b < c) {
          EXPECT_TRUE(a < c);
        }
      }
    }
  }
}

TEST(TagTest, ZeroTag) {
  const auto z = Tag::zero(3);
  EXPECT_TRUE(z.is_zero());
  EXPECT_TRUE(z < tag({0, 0, 1}));
  EXPECT_TRUE(z <= z);
}

// ---------------------------------------------------------------------------
// HistoryList.
// ---------------------------------------------------------------------------

TEST(HistoryListTest, VirtualZeroEntry) {
  HistoryList list(2, 4);
  EXPECT_TRUE(list.empty());
  const auto zero_val = list.lookup(Tag::zero(2));
  ASSERT_TRUE(zero_val.has_value());
  EXPECT_EQ(*zero_val, erasure::Value(4, 0));
  EXPECT_EQ(list.highest_tag(), Tag::zero(2));
  // Zero-tag inserts are dropped.
  list.insert(Tag::zero(2), erasure::Value{1, 2, 3, 4});
  EXPECT_TRUE(list.empty());
}

TEST(HistoryListTest, InsertLookupHighest) {
  HistoryList list(2, 4);
  const auto t1 = tag({1, 0}, 7);
  const auto t2 = tag({1, 1}, 8);
  list.insert(t1, erasure::Value{1, 1, 1, 1});
  list.insert(t2, erasure::Value{2, 2, 2, 2});
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.highest_tag(), t2);
  EXPECT_EQ(*list.lookup(t1), (erasure::Value{1, 1, 1, 1}));
  EXPECT_FALSE(list.lookup(tag({9, 9})).has_value());
  EXPECT_EQ(list.payload_bytes(), 8u);
  // Duplicate tags keep the first value.
  list.insert(t1, erasure::Value{9, 9, 9, 9});
  EXPECT_EQ(*list.lookup(t1), (erasure::Value{1, 1, 1, 1}));
}

TEST(HistoryListTest, HighestLeqAndEraseIf) {
  HistoryList list(2, 1);
  const auto t1 = tag({1, 0});
  const auto t2 = tag({1, 1});
  const auto t3 = tag({2, 2});
  list.insert(t1, {1});
  list.insert(t2, {2});
  list.insert(t3, {3});
  EXPECT_EQ(*list.highest_leq(t2), t2);
  EXPECT_EQ(*list.highest_leq(tag({2, 1})), t2);
  EXPECT_EQ(*list.highest_leq(t3), t3);
  const auto removed =
      list.erase_if([&](const Tag& t) { return t < t3; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_FALSE(list.highest_leq(t1).has_value());
}

// ---------------------------------------------------------------------------
// DelList.
// ---------------------------------------------------------------------------

TEST(DelListTest, FloorAllRequiresEveryServer) {
  DelList del(3);
  EXPECT_FALSE(del.floor_all().has_value());
  del.add(0, tag({3, 0, 0}));
  del.add(1, tag({1, 1, 0}));
  EXPECT_FALSE(del.floor_all().has_value());
  del.add(2, tag({2, 2, 2}));
  // floor = min of per-server maxima under the total order.
  const auto floor = del.floor_all();
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(*floor, tag({1, 1, 0}));
}

TEST(DelListTest, FloorOfSubset) {
  DelList del(3);
  del.add(0, tag({5, 0, 0}));
  del.add(2, tag({1, 0, 0}));
  const NodeId subset[] = {0, 2};
  const auto floor = del.floor_of(subset);
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(*floor, tag({1, 0, 0}));
  const NodeId with_empty[] = {0, 1};
  EXPECT_FALSE(del.floor_of(with_empty).has_value());
}

TEST(DelListTest, HasExactFromAll) {
  DelList del(2);
  const auto t = tag({1, 1});
  del.add(0, t);
  EXPECT_FALSE(del.has_exact_from_all(t));
  del.add(1, t);
  EXPECT_TRUE(del.has_exact_from_all(t));
  EXPECT_FALSE(del.has_exact_from_all(tag({2, 2})));
}

TEST(DelListTest, CompactionPreservesQueries) {
  DelList a(2), b(2);
  const auto tags0 = {tag({1, 0}), tag({2, 0}), tag({3, 0})};
  const auto tags1 = {tag({1, 0}), tag({2, 0})};
  for (const auto& t : tags0) {
    a.add(0, t);
    b.add(0, t);
  }
  for (const auto& t : tags1) {
    a.add(1, t);
    b.add(1, t);
  }
  const Tag tmax = tag({2, 0});
  b.compact(tmax);
  EXPECT_LT(b.total_entries(), a.total_entries());
  // All three queries agree for arguments >= tmax.
  EXPECT_EQ(a.floor_all(), b.floor_all());
  EXPECT_EQ(a.has_exact_from_all(tag({2, 0})),
            b.has_exact_from_all(tag({2, 0})));
  EXPECT_EQ(a.has_exact_from_all(tag({3, 0})),
            b.has_exact_from_all(tag({3, 0})));
  const NodeId all[] = {0, 1};
  EXPECT_EQ(a.floor_of(all), b.floor_of(all));
}

// ---------------------------------------------------------------------------
// InQueue placement rule.
// ---------------------------------------------------------------------------

InQueue::Entry entry(NodeId origin, Tag t) {
  return InQueue::Entry{origin, 0, erasure::Value{}, std::move(t)};
}

TEST(InQueueTest, SmallerTimestampsMoveTowardHead) {
  InQueue q;
  q.insert(entry(0, tag({2, 0})));
  q.insert(entry(1, tag({1, 0})));  // strictly smaller -> becomes head
  EXPECT_EQ(q.head().tag, tag({1, 0}));
  EXPECT_EQ(q.size(), 2u);
}

TEST(InQueueTest, IncomparableStaysBehind) {
  InQueue q;
  q.insert(entry(0, tag({2, 0})));
  q.insert(entry(1, tag({0, 1})));  // incomparable -> stays behind
  EXPECT_EQ(q.head().tag, tag({2, 0}));
}

TEST(InQueueTest, PopHeadFifoWithinComparableChain) {
  InQueue q;
  q.insert(entry(0, tag({3, 0})));
  q.insert(entry(0, tag({1, 0})));
  q.insert(entry(0, tag({2, 0})));
  EXPECT_EQ(q.pop_head().tag, tag({1, 0}));
  EXPECT_EQ(q.pop_head().tag, tag({2, 0}));
  EXPECT_EQ(q.pop_head().tag, tag({3, 0}));
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// ReadList.
// ---------------------------------------------------------------------------

TEST(ReadListTest, FindRemoveAndInternalGuard) {
  ReadList reads;
  PendingRead r1;
  r1.client = 42;
  r1.opid = 1001;
  r1.object = 0;
  r1.requested = zero_tag_vector(2, 2);
  r1.symbols.assign(2, std::nullopt);
  reads.add(r1);

  PendingRead r2;
  r2.client = kLocalhost;
  r2.opid = 1002;
  r2.object = 1;
  r2.requested = zero_tag_vector(2, 2);
  r2.requested[1] = tag({1, 0});
  r2.symbols.assign(2, std::nullopt);
  reads.add(r2);

  EXPECT_NE(reads.find(1001), nullptr);
  EXPECT_EQ(reads.find(9999), nullptr);
  EXPECT_TRUE(reads.has_internal_for(1, tag({1, 0})));
  EXPECT_FALSE(reads.has_internal_for(1, tag({2, 0})));
  EXPECT_FALSE(reads.has_internal_for(0, Tag::zero(2)));  // r1 is external
  reads.remove(1001);
  EXPECT_EQ(reads.find(1001), nullptr);
  EXPECT_EQ(reads.size(), 1u);
}

}  // namespace
}  // namespace causalec
