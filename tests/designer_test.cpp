// Tests for the cross-object code designer (the paper's stated open
// problem, Sec. 6): the heuristic must produce recoverable codes and match
// or beat the paper's hand-tuned code on the paper's own topology.
#include <gtest/gtest.h>

#include "common/random.h"
#include "erasure/codes.h"
#include "placement/designer.h"
#include "placement/rtt_matrix.h"

namespace causalec::placement {
namespace {

TEST(DesignerTest, ProducesRecoverableCode) {
  DesignOptions options;
  options.restarts = 2;
  options.max_steps_per_restart = 8;
  const auto result = design_cross_object_code(six_dc_rtt_ms(), 4, options);
  ASSERT_NE(result.code, nullptr);
  EXPECT_EQ(result.code->num_servers(), 6u);
  EXPECT_EQ(result.code->num_objects(), 4u);
  for (ObjectId g = 0; g < 4; ++g) {
    EXPECT_FALSE(result.code->recovery_sets(g).empty());
  }
  // One symbol per server: the code respects the capacity budget.
  for (NodeId s = 0; s < 6; ++s) {
    EXPECT_EQ(result.code->symbol_bytes(s), options.value_bytes);
  }
  EXPECT_EQ(result.masks.size(), 6u);
  EXPECT_GT(result.evaluations, 0);
}

TEST(DesignerTest, MatchesOrBeatsPaperHandTunedCodeOnFig1) {
  // The paper's hand-tuned code: avg 87.92 ms / worst 146 ms on the
  // published matrix (see placement_test). The designer must do at least
  // as well on its combined objective.
  DesignOptions options;
  options.restarts = 6;
  options.max_steps_per_restart = 24;
  options.worst_weight = 0.25;
  const auto designed =
      design_cross_object_code(six_dc_rtt_ms(), 4, options);

  const auto paper = evaluate_code(*erasure::make_six_dc_cross_object(1024),
                                   six_dc_rtt_ms(), "paper");
  const double paper_objective =
      paper.avg_read_latency_ms + 0.25 * paper.worst_read_latency_ms;
  EXPECT_LE(designed.objective, paper_objective + 1e-9)
      << "designed avg=" << designed.eval.avg_read_latency_ms
      << " worst=" << designed.eval.worst_read_latency_ms;
}

TEST(DesignerTest, BeatsPartialReplicationWorstCase) {
  DesignOptions options;
  options.restarts = 4;
  options.max_steps_per_restart = 16;
  const auto designed =
      design_cross_object_code(six_dc_rtt_ms(), 4, options);
  const auto partial = brute_force_partial_replication(six_dc_rtt_ms(), 4);
  EXPECT_LT(designed.eval.worst_read_latency_ms,
            partial.worst_read_latency_ms);
}

TEST(DesignerTest, WorksOnRandomTopologies) {
  // Generality beyond Fig. 1: random 5-8 DC topologies.
  Rng rng(2024);
  for (int topo = 0; topo < 4; ++topo) {
    const std::size_t n = 5 + topo;
    std::vector<std::vector<double>> rtt(n, std::vector<double>(n, 0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        rtt[i][j] = rtt[j][i] = 10 + static_cast<double>(rng.next_below(240));
      }
    }
    DesignOptions options;
    options.seed = 77 + topo;
    options.restarts = 3;
    options.max_steps_per_restart = 10;
    const auto designed = design_cross_object_code(rtt, 3, options);
    ASSERT_NE(designed.code, nullptr) << "topology " << topo;
    // The designed code can never be worse than "fetch from anywhere":
    // worst read latency bounded by the largest RTT.
    double max_rtt = 0;
    for (const auto& row : rtt) {
      for (double r : row) max_rtt = std::max(max_rtt, r);
    }
    EXPECT_LE(designed.eval.worst_read_latency_ms, max_rtt);
  }
}

TEST(DesignerTest, DeterministicGivenSeed) {
  DesignOptions options;
  options.restarts = 2;
  options.max_steps_per_restart = 6;
  const auto a = design_cross_object_code(six_dc_rtt_ms(), 3, options);
  const auto b = design_cross_object_code(six_dc_rtt_ms(), 3, options);
  EXPECT_EQ(a.masks, b.masks);
  EXPECT_EQ(a.objective, b.objective);
}

TEST(DesignerTest, SingleGroupDegeneratesToReplication) {
  // With one group the only useful mask is 1 everywhere: every server
  // stores the object, all reads local.
  DesignOptions options;
  options.restarts = 1;
  options.max_steps_per_restart = 4;
  const auto result = design_cross_object_code(six_dc_rtt_ms(), 1, options);
  EXPECT_EQ(result.eval.worst_read_latency_ms, 0);
  EXPECT_EQ(result.eval.avg_read_latency_ms, 0);
}

}  // namespace
}  // namespace causalec::placement
