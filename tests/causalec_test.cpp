// Protocol tests for the CausalEC server (Algorithms 1-3) on the simulator:
// the paper's properties (I)-(IV), the Sec. 1.2 re-encoding scenario,
// crash fault tolerance (Theorem 4.3), storage convergence (Theorem 4.5),
// and randomized stress with the Error1/Error2 invariants armed.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "causalec/cluster.h"
#include "common/random.h"
#include "erasure/codes.h"
#include "sim/latency.h"

namespace causalec {
namespace {

using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

constexpr std::size_t kValueBytes = 16;

Value val(std::uint8_t fill) { return Value(kValueBytes, fill); }

/// F257 values must hold canonical field elements; low bytes only.
Value val257(std::uint8_t fill) {
  Value v(kValueBytes, 0);
  for (std::size_t i = 0; i < v.size(); i += 2) v[i] = fill;
  return v;
}

std::unique_ptr<Cluster> make_cluster(
    erasure::CodePtr code, SimTime latency = 10 * kMillisecond,
    ClusterConfig config = {}) {
  return std::make_unique<Cluster>(
      std::move(code), std::make_unique<sim::ConstantLatency>(latency),
      config);
}

/// Issue a read and capture its (eventual) result.
struct ReadProbe {
  std::optional<Value> value;
  std::optional<Tag> tag;
  void operator()(Client& client, ObjectId object) {
    client.read(object,
                [this](const Value& v, const Tag& t, const VectorClock&) {
                  value = v;
                  tag = t;
                });
  }
};

// ---------------------------------------------------------------------------
// Property (I): writes are local, acknowledged synchronously.
// ---------------------------------------------------------------------------

TEST(CausalEcTest, WriteReturnsLocallyAndSynchronously) {
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  auto& client = cluster->make_client(0);
  const Tag t1 = cluster->sim().now() >= 0 ? client.write(0, val257(1))
                                           : Tag{};
  // The ack is the return itself; no simulated time may have elapsed.
  EXPECT_EQ(cluster->sim().now(), 0);
  EXPECT_EQ(t1.ts[0], 1u);
  const Tag t2 = client.write(1, val257(2));
  EXPECT_TRUE(t1 < t2);
  EXPECT_EQ(t2.ts[0], 2u);
}

// ---------------------------------------------------------------------------
// Reads: local history, local decode, remote recovery set.
// ---------------------------------------------------------------------------

TEST(CausalEcTest, ReadInitialValueIsZeroEverywhere) {
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  for (NodeId s = 0; s < 5; ++s) {
    auto& client = cluster->make_client(s);
    for (ObjectId x = 0; x < 3; ++x) {
      ReadProbe probe;
      probe(client, x);
      ASSERT_TRUE(probe.value.has_value()) << "s=" << s << " x=" << x;
      EXPECT_EQ(*probe.value, Value(kValueBytes, 0));
      EXPECT_TRUE(probe.tag->is_zero());
    }
  }
  EXPECT_EQ(cluster->sim().stats().total_messages, 0u);  // all local
}

TEST(CausalEcTest, WriterReadsOwnWriteImmediately) {
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  auto& client = cluster->make_client(3);  // a coded server
  const Tag t = client.write(1, val257(9));
  ReadProbe probe;
  probe(client, 1);  // read-your-writes, before any propagation
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, val257(9));
  EXPECT_EQ(*probe.tag, t);
}

TEST(CausalEcTest, UncodedServerServesLocalReadAfterConvergence) {
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  auto& writer = cluster->make_client(4);
  writer.write(0, val257(7));
  cluster->settle();
  // Server 0 stores X1 uncoded ({0} is a recovery set): the read must be
  // answered with zero network traffic.
  cluster->sim().stats().reset();
  auto& reader = cluster->make_client(0);
  ReadProbe probe;
  probe(reader, 0);
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, val257(7));
  EXPECT_EQ(cluster->sim().stats().total_messages, 0u);
}

TEST(CausalEcTest, RemoteReadCompletesViaRecoverySet) {
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  auto& writer = cluster->make_client(1);
  const Tag t = writer.write(1, val257(5));
  cluster->settle();  // histories drained; values only in codeword symbols

  // Server 4 stores X1+2*X2+X3; {3,4} is a recovery set for X2. The read
  // needs one round trip.
  auto& reader = cluster->make_client(4);
  ReadProbe probe;
  probe(reader, 1);
  EXPECT_FALSE(probe.value.has_value());  // not local
  cluster->run_for(kSecond);
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, val257(5));
  EXPECT_EQ(*probe.tag, t);
}

TEST(CausalEcTest, RemoteReadLatencyIsOneRoundTrip) {
  ClusterConfig config;
  config.server.fanout = ReadFanout::kNearestRecoverySet;
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes),
                              25 * kMillisecond, config);
  auto& writer = cluster->make_client(1);
  writer.write(1, val257(5));
  cluster->settle();

  auto& reader = cluster->make_client(4);
  SimTime done_at = -1;
  const SimTime started_at = cluster->sim().now();
  reader.read(1, [&](const Value&, const Tag&, const VectorClock&) {
    done_at = cluster->sim().now();
  });
  cluster->run_for(kSecond);
  ASSERT_GE(done_at, 0);
  // Property (II): at most one round trip to the recovery set (2 x 25ms).
  EXPECT_EQ(done_at - started_at, 50 * kMillisecond);
}

// ---------------------------------------------------------------------------
// The Sec. 1.2 scenario: mismatched versions resolved by re-encoding.
// ---------------------------------------------------------------------------

TEST(CausalEcTest, MismatchedVersionsAreReencodedForReads) {
  // Recreate the Sec. 1.2 situation: server 4 stores a codeword symbol of
  // old versions while the other servers have moved on to newer ones. A
  // read at server 4 must still decode its (causally consistent) versions
  // through the re-encoding chain, even though the old values have been
  // garbage-collected from most history lists.
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  auto& w0 = cluster->make_client(0);
  auto& w1 = cluster->make_client(1);
  auto& w2 = cluster->make_client(2);

  // Round 1: every server encodes version 1 of every object; histories
  // drain to empty (Theorem 4.5), so the old values survive nowhere in
  // uncoded form except inside codeword symbols.
  w0.write(0, val257(11));
  const Tag t_x2_v1 = w1.write(1, val257(21));
  w2.write(2, val257(31));
  cluster->settle();
  ASSERT_TRUE(cluster->storage_converged());

  // Round 2: hold back the writers' channels into server 4, then write
  // newer versions. Servers 0-3 re-encode to version 2 -- recovering the
  // deleted version-1 values via internal reads along the way -- while
  // server 4 still encodes version 1 of everything. The 3 -> 4 channel
  // stays fast so read responses can flow.
  auto& sim = cluster->sim();
  for (NodeId from = 0; from < 3; ++from) {
    sim.add_channel_delay(from, 4, 10 * kSecond);
  }
  w0.write(0, val257(12));
  w0.write(0, val257(13));
  w1.write(1, val257(22));
  w2.write(2, val257(32));
  cluster->run_for(500 * kMillisecond);
  ASSERT_EQ(cluster->server(4).codeword_tag(1), t_x2_v1);

  // The read at server 4 requests the versions its codeword encodes
  // (X2 version 1). Responders hold version-2 symbols and must re-encode
  // them back, exactly the Fig. 4 flow.
  auto& reader = cluster->make_client(4);
  ReadProbe probe;
  probe(reader, 1);
  cluster->run_for(200 * kMillisecond);
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, val257(21));  // version 1: causally consistent
  EXPECT_EQ(*probe.tag, t_x2_v1);

  // The Error1/Error2 invariants stayed intact (strict mode would abort).
  for (NodeId s = 0; s < 5; ++s) {
    EXPECT_EQ(cluster->server(s).counters().error1_events, 0u);
    EXPECT_EQ(cluster->server(s).counters().error2_events, 0u);
  }
  // Once the partition heals, everything converges to version 2.
  cluster->settle();
  EXPECT_TRUE(cluster->storage_converged());
  ReadProbe after;
  after(reader, 1);
  cluster->run_for(kSecond);
  ASSERT_TRUE(after.value.has_value());
  EXPECT_EQ(*after.value, val257(22));
}

// ---------------------------------------------------------------------------
// Property (III)/(IV): storage convergence and eventual consistency.
// ---------------------------------------------------------------------------

TEST(CausalEcTest, StorageConvergesToCodePrescription) {
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  auto& c0 = cluster->make_client(0);
  auto& c3 = cluster->make_client(3);
  for (int i = 0; i < 10; ++i) {
    c0.write(i % 3, val257(static_cast<std::uint8_t>(i + 1)));
    c3.write((i + 1) % 3, val257(static_cast<std::uint8_t>(i + 100)));
  }
  EXPECT_FALSE(cluster->storage_converged());  // histories hold versions
  cluster->settle();
  EXPECT_TRUE(cluster->storage_converged());
  for (NodeId s = 0; s < 5; ++s) {
    const StorageStats stats = cluster->server(s).storage();
    EXPECT_EQ(stats.history_entries, 0u) << "server " << s;
    EXPECT_EQ(stats.inqueue_entries, 0u) << "server " << s;
    EXPECT_EQ(stats.readl_entries, 0u) << "server " << s;
    // Stable state: exactly the codeword symbol remains.
    EXPECT_EQ(stats.codeword_bytes, cluster->code().symbol_bytes(s));
  }
}

TEST(CausalEcTest, EventuallyEveryServerReadsTheSameValue) {
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  // Concurrent writes to the same object from different servers.
  auto& c0 = cluster->make_client(0);
  auto& c2 = cluster->make_client(2);
  auto& c4 = cluster->make_client(4);
  const Tag t0 = c0.write(1, val257(1));
  const Tag t2 = c2.write(1, val257(2));
  const Tag t4 = c4.write(1, val257(3));
  cluster->settle();

  // The last-writer-wins winner is the max tag.
  Tag winner = t0;
  Value expected = val257(1);
  if (winner < t2) winner = t2, expected = val257(2);
  if (winner < t4) winner = t4, expected = val257(3);

  for (NodeId s = 0; s < 5; ++s) {
    auto& reader = cluster->make_client(s);
    ReadProbe probe;
    probe(reader, 1);
    cluster->run_for(kSecond);
    ASSERT_TRUE(probe.value.has_value()) << "server " << s;
    EXPECT_EQ(*probe.value, expected) << "server " << s;
    EXPECT_EQ(*probe.tag, winner) << "server " << s;
  }
}

// ---------------------------------------------------------------------------
// Causality across objects and servers.
// ---------------------------------------------------------------------------

TEST(CausalEcTest, CausalDependencyNeverObservedOutOfOrder) {
  // c1@s0 writes X; c2@s1 reads X then writes Y; server 2 receives Y's app
  // before X's app (adversarial delay). A reader at s2 that sees Y must
  // afterwards see X.
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  auto& sim = cluster->sim();
  sim.add_channel_delay(0, 2, 300 * kMillisecond);  // X's app held back

  auto& c1 = cluster->make_client(0);
  auto& c2 = cluster->make_client(1);
  const Tag tx = c1.write(0, val257(42));
  cluster->run_for(50 * kMillisecond);  // app(X) reaches s1, not yet s2

  ReadProbe c2_read;
  c2_read(c2, 0);
  cluster->run_for(kMillisecond);
  ASSERT_TRUE(c2_read.value.has_value());
  ASSERT_EQ(*c2_read.tag, tx);                     // c2 saw X
  const Tag ty = c2.write(1, val257(77));          // causally after X
  (void)ty;

  // Y's app arrives at s2 quickly but must wait in the InQueue until X's
  // app lands: until then, s2 serves the old values for both.
  cluster->run_for(100 * kMillisecond);
  auto& c3 = cluster->make_client(2);
  ReadProbe ry_before;
  ry_before(c3, 1);
  ASSERT_TRUE(ry_before.value.has_value());
  EXPECT_TRUE(ry_before.tag->is_zero()) << "Y visible before its dependency";

  // After X's app arrives, both become visible -- and a reader that sees Y
  // also sees X.
  cluster->run_for(400 * kMillisecond);
  ReadProbe ry_after, rx_after;
  ry_after(c3, 1);
  cluster->run_for(kSecond);
  rx_after(c3, 0);
  cluster->run_for(kSecond);
  ASSERT_TRUE(ry_after.value.has_value());
  ASSERT_TRUE(rx_after.value.has_value());
  EXPECT_EQ(*ry_after.value, val257(77));
  EXPECT_EQ(*rx_after.tag, tx);
}

// ---------------------------------------------------------------------------
// Fault tolerance (Theorem 4.3).
// ---------------------------------------------------------------------------

TEST(CausalEcTest, ReadSurvivesCrashesOutsideRecoverySet) {
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  auto& writer = cluster->make_client(1);
  writer.write(1, val257(5));
  cluster->settle();

  // Crash servers 0 and 2; {3,4} still recovers X2 and both are alive.
  cluster->halt_server(0);
  cluster->halt_server(2);
  auto& reader = cluster->make_client(4);
  ReadProbe probe;
  probe(reader, 1);
  cluster->run_for(kSecond);
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, val257(5));
}

TEST(CausalEcTest, RsCodeToleratesNMinusKCrashes) {
  auto cluster = make_cluster(erasure::make_systematic_rs(6, 4, kValueBytes));
  auto& writer = cluster->make_client(0);
  writer.write(2, val(9));
  cluster->settle();

  cluster->halt_server(1);
  cluster->halt_server(2);  // N-K = 2 crashes
  auto& reader = cluster->make_client(5);  // parity server
  ReadProbe probe;
  probe(reader, 2);
  cluster->run_for(kSecond);
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, val(9));
}

TEST(CausalEcTest, WritesRemainLocalUnderCrashes) {
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  cluster->halt_server(1);
  cluster->halt_server(2);
  cluster->halt_server(3);
  cluster->halt_server(4);
  auto& client = cluster->make_client(0);
  const Tag t = client.write(0, val257(1));  // must not block
  EXPECT_EQ(t.ts[0], 1u);
  ReadProbe probe;
  probe(client, 0);
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, val257(1));
}

// ---------------------------------------------------------------------------
// Pending reads answered by incoming writes (Alg. 1 line 7, Alg. 3 line 8).
// ---------------------------------------------------------------------------

TEST(CausalEcTest, PendingReadAnsweredByLocalWrite) {
  auto cluster = make_cluster(erasure::make_paper_5_3(kValueBytes));
  // Converge on version 1 first so server 4's read cannot be served from
  // its (empty) history list and must go remote.
  auto& writer1 = cluster->make_client(1);
  writer1.write(1, val257(1));
  cluster->settle();

  // Now freeze the network so nobody answers the inquiry.
  auto& sim = cluster->sim();
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = 0; j < 5; ++j) {
      if (i != j) sim.add_channel_delay(i, j, 100 * kSecond);
    }
  }
  auto& reader = cluster->make_client(4);
  ReadProbe probe;
  probe(reader, 1);
  EXPECT_FALSE(probe.value.has_value());
  EXPECT_EQ(cluster->server(4).read_list().size(), 1u);

  // A local write to the same object answers the pending read immediately
  // (Alg. 1 lines 7-9).
  auto& writer4 = cluster->make_client(4);
  const Tag t = writer4.write(1, val257(3));
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, val257(3));
  EXPECT_EQ(*probe.tag, t);
  cluster->settle();
  EXPECT_TRUE(cluster->storage_converged());
}

// ---------------------------------------------------------------------------
// The opportunistic local-decode knob (DESIGN: registration-time decode).
// ---------------------------------------------------------------------------

TEST(CausalEcTest, WorksWithoutOpportunisticLocalDecode) {
  ClusterConfig config;
  config.server.opportunistic_local_decode = false;
  auto cluster = make_cluster(erasure::make_systematic_rs(5, 3, kValueBytes),
                              10 * kMillisecond, config);
  auto& writer = cluster->make_client(0);
  for (int round = 0; round < 3; ++round) {
    writer.write(1, val(static_cast<std::uint8_t>(round + 1)));
    cluster->settle();
  }
  EXPECT_TRUE(cluster->storage_converged());
  ReadProbe probe;
  probe(cluster->make_client(4), 1);
  cluster->run_for(kSecond);
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, val(3));
  for (NodeId s = 0; s < 5; ++s) {
    EXPECT_EQ(cluster->server(s).counters().error1_events, 0u);
    EXPECT_EQ(cluster->server(s).counters().error2_events, 0u);
  }
}

// ---------------------------------------------------------------------------
// Appendix G variant (ii): leader-routed del dissemination.
// ---------------------------------------------------------------------------

TEST(CausalEcTest, LeaderRoutedDelsStillConverge) {
  ClusterConfig config;
  config.server.del_routing = DelRouting::kViaLeader;
  config.server.del_leader = 2;
  auto cluster = std::make_unique<Cluster>(
      erasure::make_paper_5_3(kValueBytes),
      std::make_unique<sim::ConstantLatency>(10 * kMillisecond), config);
  auto& c0 = cluster->make_client(0);
  auto& c4 = cluster->make_client(4);
  for (int i = 0; i < 8; ++i) {
    c0.write(i % 3, val257(static_cast<std::uint8_t>(i + 1)));
    c4.write((i + 2) % 3, val257(static_cast<std::uint8_t>(i + 50)));
  }
  cluster->settle();
  EXPECT_TRUE(cluster->storage_converged());
  for (NodeId s = 0; s < 5; ++s) {
    EXPECT_EQ(cluster->server(s).counters().error1_events, 0u);
    EXPECT_EQ(cluster->server(s).counters().error2_events, 0u);
  }
  // Reads converge to the same winners everywhere.
  ReadProbe a, b;
  a(cluster->make_client(3), 1);
  cluster->run_for(kSecond);
  b(cluster->make_client(0), 1);
  cluster->run_for(kSecond);
  ASSERT_TRUE(a.value.has_value() && b.value.has_value());
  EXPECT_EQ(*a.tag, *b.tag);
}

// ---------------------------------------------------------------------------
// Randomized stress: random codes, ops, delays. The strict Error1/Error2
// checks and storage convergence act as oracles.
// ---------------------------------------------------------------------------

struct StressParams {
  std::uint64_t seed;
  std::size_t n, k;
  double density;
  ReadFanout fanout = ReadFanout::kBroadcast;
  DelRouting routing = DelRouting::kDirect;
  MetadataMode metadata = MetadataMode::kVectorClock;
};

class CausalEcStressTest : public ::testing::TestWithParam<StressParams> {};

TEST_P(CausalEcStressTest, RandomWorkloadConvergesWithoutErrors) {
  const auto& p = GetParam();
  auto code = erasure::make_random_code(p.seed, p.n, p.k, 8, p.density);
  ClusterConfig config;
  config.gc_period = 30 * kMillisecond;
  config.seed = p.seed;
  config.server.fanout = p.fanout;
  config.server.del_routing = p.routing;
  config.server.metadata = p.metadata;
  config.server.fanout_timeout_ns = 150 * kMillisecond;
  auto cluster = std::make_unique<Cluster>(
      code,
      std::make_unique<sim::UniformJitterLatency>(
          8 * kMillisecond, 7 * kMillisecond, p.seed ^ 0xABCD),
      config);

  Rng rng(p.seed * 77 + 1);
  std::vector<Client*> clients;
  for (NodeId s = 0; s < p.n; ++s) {
    clients.push_back(&cluster->make_client(s));
    clients.push_back(&cluster->make_client(s));
  }
  std::vector<Tag> max_tag_per_object(p.k, Tag::zero(p.n));

  int reads_issued = 0, reads_done = 0;
  for (int op = 0; op < 200; ++op) {
    auto& client = *clients[rng.next_below(clients.size())];
    const ObjectId x = static_cast<ObjectId>(rng.next_below(p.k));
    if (client.busy()) {
      // Well-formedness: one pending invocation per client (Sec. 2.1).
    } else if (rng.next_bool(0.5)) {
      const Tag t = client.write(
          x, Value(8, static_cast<std::uint8_t>(rng.next_u64())));
      if (max_tag_per_object[x] < t) max_tag_per_object[x] = t;
    } else {
      ++reads_issued;
      client.read(x, [&reads_done](const Value&, const Tag&,
                                   const VectorClock&) { ++reads_done; });
    }
    cluster->run_for(rng.next_below(12) * kMillisecond);
  }
  cluster->settle();
  EXPECT_EQ(reads_done, reads_issued);
  EXPECT_TRUE(cluster->storage_converged());

  // Eventual consistency: every server returns the LWW winner per object.
  for (ObjectId x = 0; x < p.k; ++x) {
    if (max_tag_per_object[x].is_zero()) continue;
    for (NodeId s = 0; s < p.n; ++s) {
      ReadProbe probe;
      auto& reader = cluster->make_client(s);
      probe(reader, x);
      cluster->run_for(kSecond);
      ASSERT_TRUE(probe.value.has_value()) << "s=" << s << " x=" << x;
      EXPECT_EQ(*probe.tag, max_tag_per_object[x]) << "s=" << s << " x=" << x;
    }
  }
  for (NodeId s = 0; s < p.n; ++s) {
    EXPECT_EQ(cluster->server(s).counters().error1_events, 0u);
    EXPECT_EQ(cluster->server(s).counters().error2_events, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCodes, CausalEcStressTest,
    ::testing::Values(
        StressParams{1, 4, 2, 0.5}, StressParams{2, 5, 3, 0.5},
        StressParams{3, 5, 3, 0.8}, StressParams{4, 6, 3, 0.4},
        StressParams{5, 6, 4, 0.6}, StressParams{6, 7, 4, 0.5},
        StressParams{7, 5, 2, 0.9}, StressParams{8, 8, 5, 0.5},
        // Footnote-14 fan-out with timeout escalation.
        StressParams{31, 5, 3, 0.5, ReadFanout::kNearestRecoverySet},
        StressParams{32, 6, 4, 0.6, ReadFanout::kNearestRecoverySet},
        StressParams{33, 7, 4, 0.4, ReadFanout::kNearestRecoverySet},
        // Appendix G leader-routed dels.
        StressParams{41, 5, 3, 0.5, ReadFanout::kBroadcast,
                     DelRouting::kViaLeader},
        StressParams{42, 6, 3, 0.6, ReadFanout::kNearestRecoverySet,
                     DelRouting::kViaLeader},
        // Lamport metadata accounting (behaviorally identical).
        StressParams{51, 5, 3, 0.5, ReadFanout::kBroadcast,
                     DelRouting::kDirect, MetadataMode::kLamport}),
    [](const auto& param_info) {
      const auto& q = param_info.param;
      std::string name = "seed" + std::to_string(q.seed) + "_n" +
                         std::to_string(q.n) + "k" + std::to_string(q.k);
      if (q.fanout == ReadFanout::kNearestRecoverySet) name += "_nearset";
      if (q.routing == DelRouting::kViaLeader) name += "_leader";
      if (q.metadata == MetadataMode::kLamport) name += "_lamport";
      return name;
    });

}  // namespace
}  // namespace causalec
