// Flight-recorder unit tests: ring wrap, snapshot consistency against a
// concurrent writer, the JSON dump round-trip, and the replay-bundle
// embedding ("flight" arrays in causalec-chaos-bundle-v1).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "chaos/bundle.h"
#include "chaos/fault_plan.h"
#include "chaos/runner.h"
#include "obs/flight_recorder.h"

namespace causalec::obs {
namespace {

TEST(FlightRecorderTest, KeepsMostRecentEventsAfterWrap) {
  FlightRecorder recorder(8);
  EXPECT_EQ(recorder.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    recorder.record(i, FlightKind::kApply, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first suffix of the stream: 12..19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, static_cast<std::int64_t>(12 + i));
    EXPECT_EQ(events[i].a, 12 + i);
    EXPECT_EQ(events[i].kind, FlightKind::kApply);
  }
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder(100);
  EXPECT_EQ(recorder.capacity(), 128u);
}

TEST(FlightRecorderTest, RecordsAllFields) {
  FlightRecorder recorder(4);
  recorder.record(42, FlightKind::kClientWrite, 7, 9, 1234, 3);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts_ns, 42);
  EXPECT_EQ(events[0].kind, FlightKind::kClientWrite);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 9u);
  EXPECT_EQ(events[0].tag_sum, 1234u);
  EXPECT_EQ(events[0].tag_client, 3u);
}

TEST(FlightRecorderTest, SnapshotUnderConcurrentWriterNeverTears) {
  // A reader taking snapshots while a writer hammers the ring must only
  // ever see fully published events (the per-slot seq protocol); a torn
  // slot would surface as an event whose fields disagree.
  FlightRecorder recorder(16);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      recorder.record(i, FlightKind::kMsgRecv, i, i + 1,
                      static_cast<std::uint64_t>(i) * 2, i % 7);
      ++i;
    }
  });
  for (int round = 0; round < 200; ++round) {
    for (const FlightEvent& e : recorder.snapshot()) {
      EXPECT_EQ(e.kind, FlightKind::kMsgRecv);
      EXPECT_EQ(e.b, e.a + 1);
      EXPECT_EQ(e.tag_sum, static_cast<std::uint64_t>(e.a) * 2);
      EXPECT_EQ(e.tag_client, e.a % 7);
    }
  }
  stop.store(true);
  writer.join();
}

TEST(FlightRecorderTest, JsonRoundTrip) {
  FlightRecorder recorder(8);
  recorder.record(10, FlightKind::kClientWrite, 1, 0, 5, 2);
  recorder.record(20, FlightKind::kGc, 3);
  recorder.record(30, FlightKind::kRecovery, 0, 4);
  const auto events = recorder.snapshot();
  const auto restored = flight_events_from_json(flight_events_to_json(events));
  ASSERT_EQ(restored.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(restored[i].ts_ns, events[i].ts_ns);
    EXPECT_EQ(restored[i].kind, events[i].kind);
    EXPECT_EQ(restored[i].a, events[i].a);
    EXPECT_EQ(restored[i].b, events[i].b);
    EXPECT_EQ(restored[i].tag_sum, events[i].tag_sum);
    EXPECT_EQ(restored[i].tag_client, events[i].tag_client);
  }
}

TEST(FlightRecorderTest, MalformedJsonYieldsEmpty) {
  EXPECT_TRUE(flight_events_from_json("not json").empty());
  EXPECT_TRUE(flight_events_from_json("{\"a\":1}").empty());
  EXPECT_TRUE(flight_events_from_json("[1,2,3]").empty());
}

TEST(FlightRecorderTest, ChaosRunCapturesPerNodeFlightDumps) {
  const chaos::FaultPlan plan = chaos::FaultPlan::generate(/*seed=*/3);
  const chaos::RunOutcome outcome = chaos::run_plan(plan);
  ASSERT_TRUE(outcome.ok);
  ASSERT_EQ(outcome.flight.size(), plan.workload.num_servers);
  for (const auto& node_events : outcome.flight) {
    EXPECT_FALSE(node_events.empty());
  }
}

TEST(FlightRecorderTest, BundleRoundTripsFlightDumps) {
  const chaos::FaultPlan plan = chaos::FaultPlan::generate(/*seed=*/3);
  const chaos::RunOutcome outcome = chaos::run_plan(plan);

  chaos::ReplayBundle bundle;
  bundle.plan = plan;
  bundle.history_hash = outcome.history_hash;
  bundle.flight = outcome.flight;
  const std::string json = bundle_to_json(bundle);
  const auto restored = chaos::bundle_from_json(json);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->flight.size(), bundle.flight.size());
  for (std::size_t s = 0; s < bundle.flight.size(); ++s) {
    ASSERT_EQ(restored->flight[s].size(), bundle.flight[s].size()) << s;
    for (std::size_t i = 0; i < bundle.flight[s].size(); ++i) {
      EXPECT_EQ(restored->flight[s][i].kind, bundle.flight[s][i].kind);
      EXPECT_EQ(restored->flight[s][i].ts_ns, bundle.flight[s][i].ts_ns);
      EXPECT_EQ(restored->flight[s][i].tag_sum, bundle.flight[s][i].tag_sum);
    }
  }
}

TEST(FlightRecorderTest, OldBundleWithoutFlightStillParses) {
  const chaos::FaultPlan plan = chaos::FaultPlan::generate(/*seed=*/3);
  chaos::ReplayBundle bundle;
  bundle.plan = plan;
  std::string json = bundle_to_json(bundle);
  // Strip the "flight" key the way an old writer would never emit it.
  const auto pos = json.find("\"flight\":[],");
  ASSERT_NE(pos, std::string::npos);
  json.erase(pos, std::strlen("\"flight\":[],"));
  const auto restored = chaos::bundle_from_json(json);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->flight.empty());
}

}  // namespace
}  // namespace causalec::obs
