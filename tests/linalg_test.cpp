// Unit tests for field-generic dense linear algebra.
#include <gtest/gtest.h>

#include "common/random.h"
#include "gf/gf256.h"
#include "gf/prime_field.h"
#include "linalg/gaussian.h"
#include "linalg/matrix.h"

namespace causalec::linalg {
namespace {

using GF = gf::GF256;
using MGF = Matrix<GF>;
using F13 = gf::F13;

TEST(MatrixTest, FromRowsAndAccess) {
  const auto m = MGF::from_rows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(2, 1), 6);
}

TEST(MatrixTest, IdentityMultiplication) {
  Rng rng(3);
  MGF m(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) m(i, j) = GF::from_int(rng.next_u64());
  }
  EXPECT_EQ(m.mul(MGF::identity(4)), m);
  EXPECT_EQ(MGF::identity(4).mul(m), m);
}

TEST(MatrixTest, SelectRowsAndTranspose) {
  const auto m = MGF::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const std::size_t ids[] = {2, 0};
  const auto sub = m.select_rows(ids);
  EXPECT_EQ(sub, MGF::from_rows({{5, 6}, {1, 2}}));
  EXPECT_EQ(m.transpose(), MGF::from_rows({{1, 3, 5}, {2, 4, 6}}));
}

TEST(GaussianTest, RankOfIdentityAndSingular) {
  EXPECT_EQ(rank<GF>(MGF::identity(5)), 5u);
  // Duplicate rows.
  const auto m = MGF::from_rows({{1, 2, 3}, {1, 2, 3}, {0, 0, 1}});
  EXPECT_EQ(rank<GF>(m), 2u);
  EXPECT_EQ(rank<GF>(MGF(3, 3)), 0u);
}

TEST(GaussianTest, RrefPivots) {
  auto m = MGF::from_rows({{0, 1, 2}, {1, 0, 3}});
  const auto pivots = rref_in_place(m);
  ASSERT_EQ(pivots.size(), 2u);
  EXPECT_EQ(pivots[0], 0u);
  EXPECT_EQ(pivots[1], 1u);
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(1, 1), 1);
  EXPECT_EQ(m(0, 1), 0);
  EXPECT_EQ(m(1, 0), 0);
}

TEST(GaussianTest, ExpressInRowSpaceFindsCombination) {
  // Rows of the paper's (5,3) code restricted to servers {4,5} (1-indexed):
  // [1,1,1] and [1,2,1] over F_257; e_2 = 2*[1,1,1] - 1*[1,2,1]... solve it.
  using F = gf::F257;
  using M = Matrix<F>;
  const auto a = M::from_rows({{1, 1, 1}, {1, 2, 1}});
  const std::vector<std::uint32_t> e2 = {0, 1, 0};
  const auto lambda = express_in_row_space<F>(
      a, std::span<const std::uint32_t>(e2));
  ASSERT_TRUE(lambda.has_value());
  // Verify lambda * A == e2.
  std::vector<std::uint32_t> out(3, 0);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      out[c] = F::add(out[c], F::mul((*lambda)[r], a(r, c)));
    }
  }
  EXPECT_EQ(out, e2);
}

TEST(GaussianTest, ExpressInRowSpaceRejectsOutside) {
  const auto a = MGF::from_rows({{1, 0, 0}, {0, 1, 0}});
  const std::vector<std::uint8_t> e3 = {0, 0, 1};
  EXPECT_FALSE(
      express_in_row_space<GF>(a, std::span<const std::uint8_t>(e3))
          .has_value());
  EXPECT_FALSE(in_row_space<GF>(a, std::span<const std::uint8_t>(e3)));
}

TEST(GaussianTest, RandomSolveRoundTrip) {
  // Property: for random A and random lambda, express_in_row_space(A,
  // lambda*A) returns a combination that reproduces the target.
  Rng rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t rows = 1 + rng.next_below(5);
    const std::size_t cols = 1 + rng.next_below(5);
    MGF a(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        a(i, j) = GF::from_int(rng.next_u64());
      }
    }
    std::vector<std::uint8_t> lambda(rows);
    for (auto& x : lambda) x = GF::from_int(rng.next_u64());
    std::vector<std::uint8_t> target(cols, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        target[c] = GF::add(target[c], GF::mul(lambda[r], a(r, c)));
      }
    }
    const auto solved = express_in_row_space<GF>(
        a, std::span<const std::uint8_t>(target));
    ASSERT_TRUE(solved.has_value());
    std::vector<std::uint8_t> out(cols, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        out[c] = GF::add(out[c], GF::mul((*solved)[r], a(r, c)));
      }
    }
    EXPECT_EQ(out, target);
  }
}

TEST(GaussianTest, InverseRoundTrip) {
  Rng rng(19);
  int invertible_seen = 0;
  for (int iter = 0; iter < 100; ++iter) {
    MGF m(4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        m(i, j) = GF::from_int(rng.next_u64());
      }
    }
    const auto inv = inverse<GF>(m);
    if (!inv) continue;
    ++invertible_seen;
    EXPECT_EQ(m.mul(*inv), MGF::identity(4));
    EXPECT_EQ(inv->mul(m), MGF::identity(4));
  }
  EXPECT_GT(invertible_seen, 50);  // random GF(256) matrices usually invert
}

TEST(GaussianTest, InverseOfSingularIsNullopt) {
  const auto m = MGF::from_rows({{1, 2}, {2, 4}});  // 2*row0 == row1? not in
  // GF(2^8): 2*[1,2] = [2,4]; indeed dependent.
  EXPECT_FALSE(inverse<GF>(m).has_value());
}

TEST(GaussianTest, WorksOverPrimeField) {
  using M = Matrix<F13>;
  const auto m = M::from_rows({{2, 3}, {1, 4}});
  const auto inv = inverse<F13>(m);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(m.mul(*inv), M::identity(2));
}

}  // namespace
}  // namespace causalec::linalg
