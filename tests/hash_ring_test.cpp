// Property battery for the front-door consistent-hash ring: distribution
// balance across virtual nodes and the minimal-remap bound on membership
// change -- the two properties that make consistent hashing worth its name.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "frontdoor/hash_ring.h"

namespace causalec::frontdoor {
namespace {

constexpr std::size_t kGroups = 8;
constexpr std::size_t kVnodes = 128;
constexpr std::size_t kKeys = 100'000;

TEST(HashRingTest, DeterministicAcrossInstances) {
  const HashRing a(kGroups, kVnodes);
  const HashRing b(kGroups, kVnodes);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(a.owner(key), b.owner(key));
  }
  // A different seed is a different ring.
  const HashRing c(kGroups, kVnodes, /*seed=*/0xABCDEF);
  std::size_t differs = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (a.owner(key) != c.owner(key)) ++differs;
  }
  EXPECT_GT(differs, 0u);
}

TEST(HashRingTest, OwnershipIsBalancedAcrossGroups) {
  const HashRing ring(kGroups, kVnodes);
  ASSERT_EQ(ring.num_points(), kGroups * kVnodes);
  std::map<std::size_t, std::size_t> counts;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::size_t owner = ring.owner(key);
    ASSERT_LT(owner, kGroups);
    counts[owner]++;
  }
  EXPECT_EQ(counts.size(), kGroups) << "some group owns no keys at all";
  const double fair = static_cast<double>(kKeys) / kGroups;
  for (const auto& [group, count] : counts) {
    // 128 vnodes keep the per-group share within a generous +-50% of fair;
    // in practice it is much tighter, but the test must not be a coin flip.
    EXPECT_GT(static_cast<double>(count), 0.5 * fair)
        << "group " << group << " badly underloaded";
    EXPECT_LT(static_cast<double>(count), 1.5 * fair)
        << "group " << group << " badly overloaded";
  }
}

TEST(HashRingTest, AddGroupMovesOnlyAFairShareAndOnlyToTheNewGroup) {
  const HashRing before(kGroups, kVnodes);
  HashRing after(kGroups, kVnodes);
  after.add_group(kGroups);
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::size_t was = before.owner(key);
    const std::size_t now = after.owner(key);
    if (was == now) continue;
    // The minimal-remap property: a key may only move TO the new group.
    ASSERT_EQ(now, kGroups) << "key " << key << " moved " << was << " -> "
                            << now << " without touching the new group";
    ++moved;
  }
  const double fair = static_cast<double>(kKeys) / (kGroups + 1);
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved), 1.5 * fair)
      << "adding one group remapped far more than its fair share";
}

TEST(HashRingTest, RemoveGroupMovesOnlyItsOwnKeys) {
  const HashRing before(kGroups, kVnodes);
  HashRing after(kGroups, kVnodes);
  const std::size_t victim = 3;
  after.remove_group(victim);
  ASSERT_EQ(after.num_points(), (kGroups - 1) * kVnodes);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::size_t was = before.owner(key);
    const std::size_t now = after.owner(key);
    if (was == victim) {
      ASSERT_NE(now, victim);
    } else {
      // Keys the victim never owned must not move at all.
      ASSERT_EQ(now, was) << "key " << key << " moved " << was << " -> "
                          << now << " though group " << victim
                          << " never owned it";
    }
  }
}

TEST(HashRingTest, CandidatesAreDistinctAndStartAtTheOwner) {
  const HashRing ring(kGroups, kVnodes);
  for (std::uint64_t key = 0; key < 500; ++key) {
    const auto cands = ring.candidates(key, kGroups);
    ASSERT_EQ(cands.size(), kGroups);
    ASSERT_EQ(cands.front(), ring.owner(key));
    std::vector<bool> seen(kGroups, false);
    for (const std::size_t g : cands) {
      ASSERT_LT(g, kGroups);
      ASSERT_FALSE(seen[g]) << "duplicate candidate group " << g;
      seen[g] = true;
    }
  }
  // max_groups truncates.
  EXPECT_EQ(ring.candidates(7, 3).size(), 3u);
  EXPECT_TRUE(ring.candidates(7, 0).empty());
}

TEST(HashRingTest, EmptyRingHasNoOwner) {
  HashRing ring(1, kVnodes);
  ring.remove_group(0);
  EXPECT_EQ(ring.num_points(), 0u);
  EXPECT_EQ(ring.owner(42), static_cast<std::size_t>(-1));
  EXPECT_TRUE(ring.candidates(42, 4).empty());
}

}  // namespace
}  // namespace causalec::frontdoor
