// Multi-process battery: real causalec_server processes on loopback TCP,
// driven through ProcessCluster. Convergence is gated by the
// src/consistency checkers, and a SIGKILL + exec-restart cycle mid-writes
// must rejoin and converge (vc-equality oracle) -- the crash-recovery path
// exercised across true process boundaries, where no in-process test can
// cheat.
//
// The server binary path arrives via the CAUSALEC_SERVER_BIN compile
// definition (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "consistency/causal_checker.h"
#include "consistency/history.h"
#include "net/net_client.h"
#include "net/process_cluster.h"

namespace causalec::net {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kObjects = 3;
constexpr std::size_t kValueBytes = 64;

SimTime next_tick() {
  static std::atomic<SimTime> tick{0};
  return tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

erasure::Value value_for(ClientId client, std::uint64_t seq) {
  erasure::Value v(kValueBytes);
  std::uint8_t* bytes = v.begin();
  for (std::size_t i = 0; i < kValueBytes; ++i) {
    bytes[i] = static_cast<std::uint8_t>(client * 131 + seq * 11 + i);
  }
  return v;
}

/// A recording client session pinned to one server process.
struct Session {
  Session(ClientId id_in, NodeId server_in, const std::string& endpoint)
      : id(id_in), server(server_in), client(id_in) {
    connected = client.connect(endpoint, 2000);
    client.set_io_timeout_ms(8000);
  }

  bool write_op(ObjectId object) {
    const std::uint64_t seq = seq_++;
    const erasure::Value value = value_for(id, seq);
    consistency::OpRecord record;
    record.client = id;
    record.session_seq = seq;
    record.is_write = true;
    record.object = object;
    record.server = server;
    record.value_hash =
        consistency::hash_value_bytes({value.data(), value.size()});
    record.invoked_at = next_tick();
    const auto resp = client.write(seq, object, value);
    if (!resp.has_value()) return false;
    record.tag = resp->tag;
    record.timestamp = resp->vc;
    record.responded_at = next_tick();
    ops.push_back(std::move(record));
    return true;
  }

  bool read_op(ObjectId object) {
    const std::uint64_t seq = seq_++;
    consistency::OpRecord record;
    record.client = id;
    record.session_seq = seq;
    record.is_write = false;
    record.object = object;
    record.server = server;
    record.invoked_at = next_tick();
    const auto resp = client.read(seq, object);
    if (!resp.has_value()) return false;
    record.tag = resp->tag;
    record.timestamp = resp->vc;
    record.value_hash = consistency::hash_value_bytes(
        {resp->value.data(), resp->value.size()});
    record.responded_at = next_tick();
    ops.push_back(std::move(record));
    return true;
  }

  ClientId id;
  NodeId server;
  NetClient client;
  bool connected = false;
  std::vector<consistency::OpRecord> ops;

 private:
  std::uint64_t seq_ = 0;
};

ProcessClusterConfig cluster_config(bool persistence) {
  ProcessClusterConfig config;
  config.server_bin = CAUSALEC_SERVER_BIN;
  config.num_servers = 5;
  config.num_objects = kObjects;
  config.value_bytes = kValueBytes;
  config.persistence = persistence;
  config.shards = 2;
  return config;
}

void run_checkers(const consistency::History& history,
                  const std::vector<consistency::OpRecord>& finals) {
  const auto causal = consistency::check_causal_consistency(history);
  EXPECT_TRUE(causal.ok) << (causal.violations.empty()
                                 ? std::string("?")
                                 : causal.violations.front());
  const auto session = consistency::check_session_guarantees(history);
  EXPECT_TRUE(session.ok) << (session.violations.empty()
                                  ? std::string("?")
                                  : session.violations.front());
  const auto conv = consistency::check_convergence(history, finals);
  EXPECT_TRUE(conv.ok) << (conv.violations.empty()
                               ? std::string("?")
                               : conv.violations.front());
}

std::vector<consistency::OpRecord> final_reads(ProcessCluster& cluster) {
  std::vector<consistency::OpRecord> reads;
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    if (!cluster.running(i)) continue;
    Session session(700 + static_cast<ClientId>(i), static_cast<NodeId>(i),
                    cluster.endpoint(i));
    EXPECT_TRUE(session.connected) << "final reads: server " << i;
    for (ObjectId g = 0; g < kObjects; ++g) {
      EXPECT_TRUE(session.read_op(g)) << "final read s" << i << " g" << g;
    }
    for (auto& r : session.ops) reads.push_back(std::move(r));
  }
  return reads;
}

TEST(NetCluster, ConvergesUnderConcurrentLoadAcrossProcesses) {
  ProcessCluster cluster(cluster_config(/*persistence=*/false));
  ASSERT_TRUE(cluster.start());
  ASSERT_TRUE(cluster.await_ready(15s));

  constexpr std::size_t kThreads = 5;
  std::vector<std::unique_ptr<Session>> sessions;
  for (std::size_t t = 0; t < kThreads; ++t) {
    sessions.push_back(std::make_unique<Session>(
        300 + static_cast<ClientId>(t), static_cast<NodeId>(t),
        cluster.endpoint(t)));
    ASSERT_TRUE(sessions[t]->connected);
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session& s = *sessions[t];
      for (int op = 0; op < 40; ++op) {
        const auto object = static_cast<ObjectId>((op + t) % kObjects);
        const bool ok = ((op + t) % 2 == 0) ? s.write_op(object)
                                            : s.read_op(object);
        if (!ok) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load()) << "a client operation failed";
  ASSERT_TRUE(cluster.await_convergence(20s));

  consistency::History history;
  for (auto& s : sessions) {
    for (auto& op : s->ops) history.record(std::move(op));
  }
  EXPECT_EQ(history.size(), kThreads * 40);
  run_checkers(history, final_reads(cluster));
  EXPECT_EQ(cluster.total_error_events(), 0u);
}

TEST(NetCluster, SurvivesSigkillMidWritesAndRejoins) {
  constexpr std::size_t kVictim = 2;
  ProcessCluster cluster(cluster_config(/*persistence=*/true));
  ASSERT_TRUE(cluster.start());
  ASSERT_TRUE(cluster.await_ready(15s));

  // Seed traffic through the victim so its journal has durable state to
  // restore (the WAL logs every applied message, so one acked write is
  // enough for the restarted process to take the rejoin path). The seed
  // ops are recorded: its writes belong in the checked history.
  Session seed(400, kVictim, cluster.endpoint(kVictim));
  ASSERT_TRUE(seed.connected);
  for (ObjectId g = 0; g < kObjects; ++g) ASSERT_TRUE(seed.write_op(g));

  // Recording writers pinned to the survivors hammer away while the victim
  // is killed and restarted underneath them.
  const std::vector<std::size_t> survivors = {0, 1, 3, 4};
  std::vector<std::unique_ptr<Session>> sessions;
  for (std::size_t t = 0; t < survivors.size(); ++t) {
    sessions.push_back(std::make_unique<Session>(
        410 + static_cast<ClientId>(t),
        static_cast<NodeId>(survivors[t]),
        cluster.endpoint(survivors[t])));
    ASSERT_TRUE(sessions[t]->connected);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < sessions.size(); ++t) {
    threads.emplace_back([&, t] {
      Session& s = *sessions[t];
      std::uint64_t op = 0;
      while (!stop.load()) {
        const auto object = static_cast<ObjectId>((op + t) % kObjects);
        const bool ok = (op % 3 == 2) ? s.read_op(object)
                                      : s.write_op(object);
        if (!ok) {
          failed.store(true);
          return;
        }
        ++op;
      }
    });
  }

  std::this_thread::sleep_for(200ms);
  cluster.kill_server(kVictim);
  EXPECT_FALSE(cluster.running(kVictim));
  std::this_thread::sleep_for(200ms);  // writes continue while it is down
  ASSERT_TRUE(cluster.restart(kVictim));
  std::this_thread::sleep_for(200ms);  // and while it rejoins
  stop.store(true);
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load()) << "a survivor-pinned operation failed";

  ASSERT_TRUE(cluster.await_ready(15s));
  // The vc-equality oracle: the restarted process must catch up to the
  // exact vector clock of the survivors, transient state drained.
  ASSERT_TRUE(cluster.await_convergence(30s));

  const auto victim_stats = cluster.stats(kVictim);
  ASSERT_TRUE(victim_stats.has_value());
  EXPECT_GE(victim_stats->recoveries, 1u)
      << "restarted server did not run the recovery path";

  consistency::History history;
  for (auto& op : seed.ops) history.record(std::move(op));
  for (auto& s : sessions) {
    for (auto& op : s->ops) history.record(std::move(op));
  }
  EXPECT_GT(history.size(), kObjects);
  // Final reads include the restarted victim: after rejoin it must serve
  // the globally largest write tags like everyone else.
  run_checkers(history, final_reads(cluster));
  EXPECT_EQ(cluster.total_error_events(), 0u);
}

}  // namespace
}  // namespace causalec::net
