// In-process NodeDaemons over real loopback TCP, gated by the
// src/consistency checkers. Running the daemons inside one process keeps
// every thread visible to TSan (tools/run_sanitized_tests.sh runs this
// under all three sanitizers); tests/net_cluster_test.cpp is the separate
// multi-process battery.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "consistency/causal_checker.h"
#include "consistency/history.h"
#include "erasure/codes.h"
#include "net/net_client.h"
#include "net/node_daemon.h"
#include "net/process_cluster.h"

namespace causalec::net {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kServers = 5;
constexpr std::size_t kObjects = 3;
constexpr std::size_t kValueBytes = 64;

/// Monotonic per-process tick for OpRecord invoked_at/responded_at.
SimTime next_tick() {
  static std::atomic<SimTime> tick{0};
  return tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

erasure::Value value_for(ClientId client, std::uint64_t seq) {
  erasure::Value v(kValueBytes);
  std::uint8_t* bytes = v.begin();
  for (std::size_t i = 0; i < kValueBytes; ++i) {
    bytes[i] = static_cast<std::uint8_t>(client * 151 + seq * 7 + i);
  }
  return v;
}

/// One client session pinned to one server, recording every completed
/// operation with the Definition 6 metadata the checkers consume.
struct Session {
  Session(ClientId id_in, NodeId server_in, const std::string& endpoint)
      : id(id_in), server(server_in), client(id_in) {
    connected = client.connect(endpoint, 2000);
    client.set_io_timeout_ms(5000);
  }

  bool write_op(ObjectId object) {
    const std::uint64_t seq = seq_++;
    const erasure::Value value = value_for(id, seq);
    consistency::OpRecord record;
    record.client = id;
    record.session_seq = seq;
    record.is_write = true;
    record.object = object;
    record.server = server;
    record.value_hash =
        consistency::hash_value_bytes({value.data(), value.size()});
    record.invoked_at = next_tick();
    const auto resp = client.write(seq, object, value);
    if (!resp.has_value()) return false;
    record.tag = resp->tag;
    record.timestamp = resp->vc;
    record.responded_at = next_tick();
    ops.push_back(std::move(record));
    return true;
  }

  bool read_op(ObjectId object) {
    const std::uint64_t seq = seq_++;
    consistency::OpRecord record;
    record.client = id;
    record.session_seq = seq;
    record.is_write = false;
    record.object = object;
    record.server = server;
    record.invoked_at = next_tick();
    const auto resp = client.read(seq, object);
    if (!resp.has_value()) return false;
    record.tag = resp->tag;
    record.timestamp = resp->vc;
    record.value_hash = consistency::hash_value_bytes(
        {resp->value.data(), resp->value.size()});
    record.responded_at = next_tick();
    ops.push_back(std::move(record));
    return true;
  }

  ClientId id;
  NodeId server;
  NetClient client;
  bool connected = false;
  std::vector<consistency::OpRecord> ops;

 private:
  std::uint64_t seq_ = 0;
};

class NetLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::vector<std::uint16_t> ports = reserve_loopback_ports(kServers);
    ASSERT_EQ(ports.size(), kServers);
    std::vector<std::string> peers;
    for (const std::uint16_t port : ports) {
      peers.push_back("127.0.0.1:" + std::to_string(port));
    }
    endpoints_ = peers;
    for (std::size_t i = 0; i < kServers; ++i) {
      NodeDaemonConfig config;
      config.node = static_cast<NodeId>(i);
      config.listen_port = ports[i];
      config.peers = peers;
      config.shards = 2;
      daemons_.push_back(std::make_unique<NodeDaemon>(
          erasure::make_systematic_rs(kServers, kObjects, kValueBytes),
          std::move(config)));
    }
    for (auto& d : daemons_) d->start();
    for (std::size_t i = 0; i < kServers; ++i) {
      ASSERT_TRUE(await_server_ready(i)) << "server " << i << " never ready";
    }
  }

  void TearDown() override {
    for (auto& d : daemons_) d->stop();
  }

  bool await_server_ready(std::size_t i) {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      NetClient probe(9000 + static_cast<ClientId>(i));
      if (probe.connect(endpoints_[i], 250)) {
        probe.set_io_timeout_ms(1000);
        const auto pong = probe.ping(42);
        if (pong.has_value() && pong->ready) return true;
      }
      std::this_thread::sleep_for(20ms);
    }
    return false;
  }

  /// VC equality + drained transient state across all servers, stable for
  /// two polls -- the same oracle as ProcessCluster::await_convergence.
  bool await_convergence(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    int stable = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      bool converged = true;
      std::optional<VectorClock> reference;
      for (std::size_t i = 0; i < kServers && converged; ++i) {
        NetClient probe(9100 + static_cast<ClientId>(i));
        if (!probe.connect(endpoints_[i], 500)) {
          converged = false;
          break;
        }
        probe.set_io_timeout_ms(2000);
        const auto s = probe.stats();
        if (!s.has_value() || s->history_entries != 0 ||
            s->inqueue_entries != 0 || s->readl_entries != 0) {
          converged = false;
          break;
        }
        if (!reference.has_value()) {
          reference = s->vc;
        } else if (!(*reference == s->vc)) {
          converged = false;
        }
      }
      if (converged && ++stable >= 2) return true;
      if (!converged) stable = 0;
      std::this_thread::sleep_for(20ms);
    }
    return false;
  }

  std::uint64_t total_error_events() {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kServers; ++i) {
      NetClient probe(9200 + static_cast<ClientId>(i));
      if (!probe.connect(endpoints_[i], 500)) continue;
      const auto s = probe.stats();
      if (s.has_value()) total += s->error_events;
    }
    return total;
  }

  /// Reads every object through every server after convergence; these are
  /// the `final_reads` of check_convergence.
  std::vector<consistency::OpRecord> final_reads() {
    std::vector<consistency::OpRecord> reads;
    for (std::size_t i = 0; i < kServers; ++i) {
      Session session(500 + static_cast<ClientId>(i),
                      static_cast<NodeId>(i), endpoints_[i]);
      EXPECT_TRUE(session.connected);
      for (ObjectId g = 0; g < kObjects; ++g) {
        EXPECT_TRUE(session.read_op(g));
      }
      for (auto& r : session.ops) reads.push_back(std::move(r));
    }
    return reads;
  }

  void run_checkers(const consistency::History& history,
                    const std::vector<consistency::OpRecord>& finals) {
    const auto causal = consistency::check_causal_consistency(history);
    EXPECT_TRUE(causal.ok) << (causal.violations.empty()
                                   ? std::string("?")
                                   : causal.violations.front());
    const auto session = consistency::check_session_guarantees(history);
    EXPECT_TRUE(session.ok) << (session.violations.empty()
                                    ? std::string("?")
                                    : session.violations.front());
    const auto conv = consistency::check_convergence(history, finals);
    EXPECT_TRUE(conv.ok) << (conv.violations.empty()
                                 ? std::string("?")
                                 : conv.violations.front());
  }

  std::vector<std::string> endpoints_;
  std::vector<std::unique_ptr<NodeDaemon>> daemons_;
};

TEST_F(NetLoopbackTest, SequentialSessionsSatisfyTheCheckers) {
  // One session per server, single test thread interleaving them: every
  // write propagates over real TCP multicast before some later read on
  // another server observes (or legitimately misses) it.
  std::vector<std::unique_ptr<Session>> sessions;
  for (std::size_t i = 0; i < kServers; ++i) {
    sessions.push_back(std::make_unique<Session>(
        100 + static_cast<ClientId>(i), static_cast<NodeId>(i),
        endpoints_[i]));
    ASSERT_TRUE(sessions.back()->connected);
  }
  for (int round = 0; round < 12; ++round) {
    for (auto& s : sessions) {
      const auto object = static_cast<ObjectId>(round % kObjects);
      if ((round + s->id) % 3 == 0) {
        ASSERT_TRUE(s->read_op(object));
      } else {
        ASSERT_TRUE(s->write_op(object));
      }
    }
  }
  ASSERT_TRUE(await_convergence(15s));

  consistency::History history;
  for (auto& s : sessions) {
    for (auto& op : s->ops) history.record(std::move(op));
  }
  run_checkers(history, final_reads());
  EXPECT_EQ(total_error_events(), 0u);
}

TEST_F(NetLoopbackTest, ConcurrentClientsSatisfyTheCheckers) {
  // Two concurrent sessions per server hammering mixed reads/writes from
  // their own threads: the TSan-visible version of the real deployment.
  constexpr std::size_t kThreads = 2 * kServers;
  std::vector<std::unique_ptr<Session>> sessions;
  for (std::size_t t = 0; t < kThreads; ++t) {
    sessions.push_back(std::make_unique<Session>(
        200 + static_cast<ClientId>(t),
        static_cast<NodeId>(t % kServers), endpoints_[t % kServers]));
    ASSERT_TRUE(sessions[t]->connected);
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session& s = *sessions[t];
      for (int op = 0; op < 40; ++op) {
        const auto object = static_cast<ObjectId>((op + t) % kObjects);
        const bool ok = ((op + t) % 2 == 0) ? s.write_op(object)
                                            : s.read_op(object);
        if (!ok) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load()) << "a client operation failed";
  ASSERT_TRUE(await_convergence(15s));

  consistency::History history;
  for (auto& s : sessions) {
    for (auto& op : s->ops) history.record(std::move(op));
  }
  EXPECT_EQ(history.size(), kThreads * 40);
  run_checkers(history, final_reads());
  EXPECT_EQ(total_error_events(), 0u);
}

}  // namespace
}  // namespace causalec::net
