// The durable-state layer (src/persist): snapshot format pinned by golden
// bytes, a corruption battery over the untrusted decode path (every
// single-bit flip and every truncation must fail cleanly -- run under
// ASan/UBSan by tools/run_sanitized_tests.sh), storage backends, and the
// journal's WAL framing including torn-tail recovery.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <unistd.h>
#include <vector>

#include "erasure/buffer.h"
#include "persist/backend.h"
#include "persist/image.h"
#include "persist/journal.h"

namespace causalec::persist {
namespace {

// The fixture image: every field populated, small enough to eyeball.
ServerImage make_image() {
  ServerImage img;
  img.node = 1;
  img.num_servers = 3;
  img.num_objects = 2;
  img.value_bytes = 4;
  img.vc = VectorClock(3);
  img.vc.set(0, 1);
  img.vc.set(1, 2);
  img.vc.set(2, 3);
  img.m_val = erasure::Value({0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4});
  VectorClock t0(3);
  t0.set(0, 1);
  VectorClock t1(3);
  t1.set(0, 1);
  t1.set(1, 2);
  img.m_tags = {Tag(t0, 10), Tag(t1, 11)};
  img.tmax = {Tag::zero(3), Tag::zero(3)};
  img.last_del_broadcast_all = {Tag::zero(3), Tag::zero(3)};
  img.internal_opid_counter = 42;
  VectorClock h(3);
  h.set(1, 1);
  img.history.push_back({1, Tag(h, 7), erasure::Value({9, 9, 9, 9})});
  img.dels.push_back({0, 2, Tag(t0, 10)});
  VectorClock q(3);
  q.set(0, 1);
  q.set(1, 1);
  img.inqueue.push_back({2, 1, Tag(q, 8), erasure::Value({5, 6, 7, 8})});
  return img;
}

void expect_images_equal(const ServerImage& a, const ServerImage& b) {
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.num_servers, b.num_servers);
  EXPECT_EQ(a.num_objects, b.num_objects);
  EXPECT_EQ(a.value_bytes, b.value_bytes);
  EXPECT_TRUE(a.vc == b.vc);
  ASSERT_EQ(a.m_val.size(), b.m_val.size());
  if (!a.m_val.empty()) {
    EXPECT_EQ(0,
              std::memcmp(a.m_val.data(), b.m_val.data(), a.m_val.size()));
  }
  EXPECT_EQ(a.m_tags, b.m_tags);
  EXPECT_EQ(a.tmax, b.tmax);
  EXPECT_EQ(a.last_del_broadcast_all, b.last_del_broadcast_all);
  EXPECT_EQ(a.internal_opid_counter, b.internal_opid_counter);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].object, b.history[i].object);
    EXPECT_TRUE(a.history[i].tag == b.history[i].tag);
    ASSERT_EQ(a.history[i].value.size(), b.history[i].value.size());
    if (!a.history[i].value.empty()) {
      EXPECT_EQ(0, std::memcmp(a.history[i].value.data(),
                               b.history[i].value.data(),
                               a.history[i].value.size()));
    }
  }
  ASSERT_EQ(a.dels.size(), b.dels.size());
  for (std::size_t i = 0; i < a.dels.size(); ++i) {
    EXPECT_EQ(a.dels[i].object, b.dels[i].object);
    EXPECT_EQ(a.dels[i].server, b.dels[i].server);
    EXPECT_TRUE(a.dels[i].tag == b.dels[i].tag);
  }
  ASSERT_EQ(a.inqueue.size(), b.inqueue.size());
  for (std::size_t i = 0; i < a.inqueue.size(); ++i) {
    EXPECT_EQ(a.inqueue[i].origin, b.inqueue[i].origin);
    EXPECT_EQ(a.inqueue[i].object, b.inqueue[i].object);
    EXPECT_TRUE(a.inqueue[i].tag == b.inqueue[i].tag);
    ASSERT_EQ(a.inqueue[i].value.size(), b.inqueue[i].value.size());
    if (!a.inqueue[i].value.empty()) {
      EXPECT_EQ(0, std::memcmp(a.inqueue[i].value.data(),
                               b.inqueue[i].value.data(),
                               a.inqueue[i].value.size()));
    }
  }
}

// encode_snapshot(make_image()), byte for byte. A mismatch means the
// on-disk format changed: bump kSnapshotVersion, keep decoding version 1,
// and regenerate this array -- never silently repurpose version 1.
constexpr std::uint8_t kGoldenSnapshot[] = {
    0x43, 0x45, 0x43, 0x53, 0x4E, 0x41, 0x50, 0x00, 0x01, 0x00, 0x00, 0x00,
    0xC0, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
    0x03, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00,
    0x03, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x08, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF,
    0x01, 0x02, 0x03, 0x04, 0x02, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00,
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x0A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00,
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x0B, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
    0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x02, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x2A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00,
    0x09, 0x09, 0x09, 0x09, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x02, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0A, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
    0x01, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x08, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00, 0x05, 0x06, 0x07, 0x08,
    0x11, 0x56, 0x35, 0xED, 0x9D, 0x61, 0x3D, 0xFA,
};

TEST(SnapshotGoldenTest, EncodingMatchesCommittedBytes) {
  const std::vector<std::uint8_t> encoded = encode_snapshot(make_image());
  ASSERT_EQ(encoded.size(), sizeof(kGoldenSnapshot))
      << "snapshot size changed -- bump kSnapshotVersion";
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    ASSERT_EQ(encoded[i], kGoldenSnapshot[i])
        << "snapshot byte " << i
        << " changed -- the format moved under version "
        << kSnapshotVersion;
  }
}

TEST(SnapshotGoldenTest, CommittedBytesDecode) {
  const SnapshotDecodeResult result = decode_snapshot(
      std::span<const std::uint8_t>(kGoldenSnapshot, sizeof(kGoldenSnapshot)));
  ASSERT_TRUE(result.ok()) << result.error;
  expect_images_equal(make_image(), *result.image);
}

TEST(SnapshotTest, RoundTripPreservesEveryField) {
  const ServerImage img = make_image();
  const SnapshotDecodeResult result = decode_snapshot(
      erasure::Buffer::adopt(encode_snapshot(img)));
  ASSERT_TRUE(result.ok()) << result.error;
  expect_images_equal(img, *result.image);
}

TEST(SnapshotTest, EmptyImageRoundTrips) {
  ServerImage img;
  img.num_servers = 1;
  img.num_objects = 1;
  img.value_bytes = 1;
  img.vc = VectorClock(1);
  img.m_tags = {Tag::zero(1)};
  img.tmax = {Tag::zero(1)};
  img.last_del_broadcast_all = {Tag::zero(1)};
  const SnapshotDecodeResult result = decode_snapshot(
      erasure::Buffer::adopt(encode_snapshot(img)));
  ASSERT_TRUE(result.ok()) << result.error;
  expect_images_equal(img, *result.image);
}

// Satellite: the corruption battery. Every single-bit flip must be caught
// (the FNV-1a trailer covers magic..body; a flip in the trailer itself
// mismatches the recomputed sum) and must never crash or trip a sanitizer.
TEST(SnapshotCorruptionTest, EveryBitFlipIsRejected) {
  const std::vector<std::uint8_t> good = encode_snapshot(make_image());
  ASSERT_TRUE(decode_snapshot(std::span<const std::uint8_t>(good)).ok());
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = good;
      bad[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const SnapshotDecodeResult result =
          decode_snapshot(std::span<const std::uint8_t>(bad));
      EXPECT_FALSE(result.ok())
          << "flip of byte " << byte << " bit " << bit << " went undetected";
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST(SnapshotCorruptionTest, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> good = encode_snapshot(make_image());
  for (std::size_t len = 0; len < good.size(); ++len) {
    const SnapshotDecodeResult result = decode_snapshot(
        std::span<const std::uint8_t>(good.data(), len));
    EXPECT_FALSE(result.ok()) << "truncation to " << len << " bytes decoded";
  }
}

TEST(SnapshotCorruptionTest, WrongVersionIsRejectedWithClearError) {
  std::vector<std::uint8_t> bytes = encode_snapshot(make_image());
  bytes[8] = 0x7F;  // version field (little-endian u32 after the magic)
  // Recompute the trailer so only the version is wrong.
  const std::uint64_t sum = fnv1a(
      std::span<const std::uint8_t>(bytes.data(), bytes.size() - 8));
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + i] =
        static_cast<std::uint8_t>((sum >> (8 * i)) & 0xFF);
  }
  const SnapshotDecodeResult result =
      decode_snapshot(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("version"), std::string::npos) << result.error;
}

TEST(SnapshotCorruptionTest, GarbageInputsAreRejected) {
  EXPECT_FALSE(decode_snapshot(std::span<const std::uint8_t>()).ok());
  const std::vector<std::uint8_t> zeros(64, 0);
  EXPECT_FALSE(decode_snapshot(std::span<const std::uint8_t>(zeros)).ok());
  std::vector<std::uint8_t> huge = encode_snapshot(make_image());
  huge[12] = 0xFF;  // body_len low byte -> inconsistent with actual size
  EXPECT_FALSE(decode_snapshot(std::span<const std::uint8_t>(huge)).ok());
}

TEST(BackendTest, MemoryBackendBasics) {
  MemoryBackend backend;
  EXPECT_FALSE(backend.get("a").has_value());
  backend.put("a", std::vector<std::uint8_t>{1, 2, 3});
  ASSERT_TRUE(backend.get("a").has_value());
  EXPECT_EQ(backend.get("a")->size(), 3u);
  backend.append("a", std::vector<std::uint8_t>{4});
  EXPECT_EQ(backend.get("a")->size(), 4u);
  backend.append("b", std::vector<std::uint8_t>{9});  // append creates
  EXPECT_EQ(backend.get("b")->size(), 1u);
  EXPECT_TRUE(backend.corrupt("a", 0, 0xFF));
  EXPECT_EQ((*backend.get("a"))[0], 1 ^ 0xFF);
  EXPECT_FALSE(backend.corrupt("a", 99, 0xFF));  // out of range
  EXPECT_FALSE(backend.corrupt("zzz", 0, 0xFF));
  backend.remove("a");
  EXPECT_FALSE(backend.get("a").has_value());
}

TEST(BackendTest, DirBackendRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("cec_persist_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    DirBackend backend(dir.string());
    backend.put("s0.snap", std::vector<std::uint8_t>{1, 2, 3});
    backend.append("s0.wal", std::vector<std::uint8_t>{4, 5});
    backend.append("s0.wal", std::vector<std::uint8_t>{6});
    ASSERT_TRUE(backend.get("s0.snap").has_value());
    EXPECT_EQ(backend.get("s0.snap")->size(), 3u);
    EXPECT_EQ(backend.get("s0.wal")->size(), 3u);
    EXPECT_FALSE(backend.get("absent").has_value());
    backend.put("s0.snap", std::vector<std::uint8_t>{9});  // overwrite
    EXPECT_EQ(backend.get("s0.snap")->size(), 1u);
    backend.remove("s0.wal");
    EXPECT_FALSE(backend.get("s0.wal").has_value());
  }
  {
    // A second backend over the same directory sees the durable state.
    DirBackend backend(dir.string());
    ASSERT_TRUE(backend.get("s0.snap").has_value());
    EXPECT_EQ((*backend.get("s0.snap"))[0], 9);
  }
  std::filesystem::remove_all(dir);
}

TEST(JournalTest, WalRoundTripAndSnapshotTruncation) {
  MemoryBackend backend;
  Journal journal(&backend, "s0");
  const std::vector<std::uint8_t> frame = {0xAA, 0xBB, 0xCC};
  const std::vector<std::uint8_t> value = {1, 2, 3, 4};
  journal.record_message(2, frame);
  journal.record_client_write(77, 5, 1, value);

  RecoveredState state = journal.load();
  EXPECT_FALSE(state.image.has_value());  // no snapshot yet
  EXPECT_FALSE(state.wal_torn);
  ASSERT_EQ(state.wal.size(), 2u);
  EXPECT_EQ(state.wal[0].kind, WalRecord::Kind::kMessage);
  EXPECT_EQ(state.wal[0].from, 2u);
  EXPECT_EQ(state.wal[0].payload, frame);
  EXPECT_EQ(state.wal[1].kind, WalRecord::Kind::kClientWrite);
  EXPECT_EQ(state.wal[1].client, 77u);
  EXPECT_EQ(state.wal[1].opid, 5u);
  EXPECT_EQ(state.wal[1].object, 1u);
  EXPECT_EQ(state.wal[1].payload, value);

  journal.save_snapshot(make_image());
  state = journal.load();
  ASSERT_TRUE(state.image.has_value()) << state.error;
  EXPECT_TRUE(state.wal.empty());  // snapshot truncated the log

  journal.record_message(1, frame);
  state = journal.load();
  ASSERT_TRUE(state.image.has_value());
  ASSERT_EQ(state.wal.size(), 1u);
  EXPECT_EQ(state.wal[0].from, 1u);
}

TEST(JournalTest, RecordingGateDropsWrites) {
  MemoryBackend backend;
  Journal journal(&backend, "s0");
  journal.set_recording(false);
  journal.record_message(0, std::vector<std::uint8_t>{1});
  journal.record_client_write(1, 2, 3, std::vector<std::uint8_t>{4});
  EXPECT_TRUE(journal.load().wal.empty());
  journal.set_recording(true);
  journal.record_message(0, std::vector<std::uint8_t>{1});
  EXPECT_EQ(journal.load().wal.size(), 1u);
}

TEST(JournalTest, TornTailIsDiscardedEarlierRecordsSurvive) {
  MemoryBackend backend;
  Journal journal(&backend, "s0");
  journal.record_message(0, std::vector<std::uint8_t>{1, 2, 3});
  journal.record_message(1, std::vector<std::uint8_t>{4, 5, 6});

  // Truncate mid-record: keep the first record plus a few bytes of the
  // second (a crash during append).
  const auto full = *backend.get(journal.wal_key());
  const std::size_t record_size = full.size() / 2;
  backend.put(journal.wal_key(),
              std::vector<std::uint8_t>(full.begin(),
                                        full.begin() + record_size + 3));
  RecoveredState state = journal.load();
  EXPECT_TRUE(state.wal_torn);
  ASSERT_EQ(state.wal.size(), 1u);
  EXPECT_EQ(state.wal[0].from, 0u);

  // Bit-flip inside the second record's body: checksum mismatch, same deal.
  backend.put(journal.wal_key(), full);
  ASSERT_TRUE(backend.corrupt(journal.wal_key(), record_size + 6, 0x01));
  state = journal.load();
  EXPECT_TRUE(state.wal_torn);
  ASSERT_EQ(state.wal.size(), 1u);

  // A flip in the FIRST record drops everything after it too (the parser
  // cannot trust record boundaries past a bad checksum).
  backend.put(journal.wal_key(), full);
  ASSERT_TRUE(backend.corrupt(journal.wal_key(), 6, 0x01));
  state = journal.load();
  EXPECT_TRUE(state.wal_torn);
  EXPECT_TRUE(state.wal.empty());
}

TEST(JournalTest, CorruptSnapshotSurfacesError) {
  MemoryBackend backend;
  Journal journal(&backend, "s0");
  journal.save_snapshot(make_image());
  ASSERT_TRUE(backend.corrupt(journal.snapshot_key(), 40, 0xFF));
  const RecoveredState state = journal.load();
  EXPECT_FALSE(state.image.has_value());
  EXPECT_FALSE(state.error.empty());
}

}  // namespace
}  // namespace causalec::persist
