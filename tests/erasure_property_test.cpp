// Property-style parameterized sweeps over the erasure-code machinery,
// across all supported fields and code shapes:
//   * Gamma identities (Definition 4) hold for random codes and values;
//   * recovery sets are superset-closed and decode correctly;
//   * cross-field consistency (GF(2^8), GF(2^16), F_257, F_65537);
//   * sequences of re-encodes commute with direct encoding.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>

#include "common/random.h"
#include "erasure/codes.h"
#include "erasure/linear_code.h"
#include "erasure/repair_plan.h"
#include "gf/gf2_16.h"
#include "gf/gf256.h"
#include "gf/prime_field.h"

namespace causalec::erasure {
namespace {

template <gf::Field F>
Value random_value(Rng& rng, std::size_t elems) {
  Value v(elems * F::kElemBytes, 0);
  for (std::size_t i = 0; i < elems; ++i) {
    const auto e = static_cast<std::uint64_t>(F::from_int(rng.next_u64()));
    for (std::size_t b = 0; b < F::kElemBytes; ++b) {
      v[i * F::kElemBytes + b] = static_cast<std::uint8_t>(e >> (8 * b));
    }
  }
  return v;
}

template <gf::Field F>
std::shared_ptr<LinearCodeT<F>> random_code(Rng& rng, std::size_t n,
                                            std::size_t k,
                                            std::size_t value_bytes) {
  using M = linalg::Matrix<F>;
  for (int attempt = 0; attempt < 200; ++attempt) {
    M stacked(n, k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        if (rng.next_bool(0.6)) {
          stacked(i, j) = F::from_int(1 + rng.next_below(F::kOrder - 1));
        }
      }
      bool any = false;
      for (std::size_t j = 0; j < k; ++j) any = any || stacked(i, j) != F::zero;
      if (!any) stacked(i, 0) = F::one;
    }
    if (linalg::rank<F>(stacked) != k) continue;
    return LinearCodeT<F>::one_row_per_server(stacked, value_bytes, "prop");
  }
  ADD_FAILURE() << "no recoverable code generated";
  return nullptr;
}

template <gf::Field F>
void run_sweep(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 4 + rng.next_below(4);
  const std::size_t k = 2 + rng.next_below(std::min<std::size_t>(n - 1, 3));
  const std::size_t elems = 1 + rng.next_below(16);
  auto code = random_code<F>(rng, n, k, elems * F::kElemBytes);
  ASSERT_NE(code, nullptr);

  std::vector<Value> values;
  for (std::size_t i = 0; i < k; ++i) {
    values.push_back(random_value<F>(rng, elems));
  }
  std::vector<Symbol> symbols;
  for (NodeId s = 0; s < n; ++s) symbols.push_back(code->encode(s, values));

  // Every minimal recovery set decodes every object; supersets too.
  std::vector<NodeId> all;
  for (NodeId s = 0; s < n; ++s) all.push_back(s);
  for (ObjectId obj = 0; obj < k; ++obj) {
    for (const auto& rs : code->recovery_sets(obj)) {
      std::vector<Symbol> subset;
      for (NodeId s : rs) subset.push_back(symbols[s]);
      EXPECT_EQ(code->decode(obj, rs, subset), values[obj]);
      EXPECT_TRUE(code->is_recovery_set(obj, rs));
    }
    EXPECT_TRUE(code->is_recovery_set(obj, all));
    EXPECT_EQ(code->decode(obj, all, symbols), values[obj]);
  }

  // Gamma chain: a random sequence of object updates applied via reencode
  // equals direct encoding of the final values.
  auto current = values;
  std::vector<Symbol> evolving = symbols;
  for (int step = 0; step < 10; ++step) {
    const ObjectId x = static_cast<ObjectId>(rng.next_below(k));
    Value next = random_value<F>(rng, elems);
    for (NodeId s = 0; s < n; ++s) {
      code->reencode(s, evolving[s], x, current[x], next);
    }
    current[x] = next;
  }
  for (NodeId s = 0; s < n; ++s) {
    EXPECT_EQ(evolving[s], code->encode(s, current)) << "server " << s;
  }

  // Cancel-then-apply equals direct reencode.
  const ObjectId x = static_cast<ObjectId>(rng.next_below(k));
  Value replacement = random_value<F>(rng, elems);
  Symbol direct = evolving[0];
  code->reencode(0, direct, x, current[x], replacement);
  Symbol two_step = evolving[0];
  code->reencode(0, two_step, x, current[x], {});
  code->reencode(0, two_step, x, {}, replacement);
  EXPECT_EQ(direct, two_step);
}

class ErasurePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ErasurePropertyTest, Gf256Sweep) { run_sweep<gf::GF256>(GetParam()); }
TEST_P(ErasurePropertyTest, Gf2_16Sweep) {
  run_sweep<gf::GF2_16>(GetParam() + 1000);
}
TEST_P(ErasurePropertyTest, F257Sweep) {
  run_sweep<gf::F257>(GetParam() + 2000);
}
TEST_P(ErasurePropertyTest, F65537Sweep) {
  run_sweep<gf::F65537>(GetParam() + 3000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErasurePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Superset-closure of recovery sets (footnote 9 of the paper).
// ---------------------------------------------------------------------------

TEST(RecoverySetClosureTest, SupersetsOfRecoverySetsRecover) {
  Rng rng(555);
  const auto code = make_random_code(99, 6, 3, 8, 0.5);
  for (ObjectId obj = 0; obj < 3; ++obj) {
    for (const auto& rs : code->recovery_sets(obj)) {
      // Add one extra server not in the set.
      for (NodeId extra = 0; extra < 6; ++extra) {
        if (std::find(rs.begin(), rs.end(), extra) != rs.end()) continue;
        auto super = rs;
        super.push_back(extra);
        std::sort(super.begin(), super.end());
        EXPECT_TRUE(code->is_recovery_set(obj, super));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// MDS threshold: RS codes decode from exactly k, never from k-1.
// ---------------------------------------------------------------------------

class RsThresholdTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(RsThresholdTest, DecodesFromKNotFromKMinus1) {
  const auto [n, k] = GetParam();
  const auto code = make_systematic_rs(n, k, 8);
  // Any k consecutive servers recover everything; any k-1 parity-only
  // subset recovers nothing (parity servers have full support).
  std::vector<NodeId> window;
  for (std::size_t start = 0; start + k <= n; ++start) {
    window.clear();
    for (std::size_t i = 0; i < k; ++i) {
      window.push_back(static_cast<NodeId>(start + i));
    }
    for (ObjectId obj = 0; obj < k; ++obj) {
      EXPECT_TRUE(code->is_recovery_set(obj, window));
    }
  }
  if (k >= 2 && n > k) {
    // k-1 parity servers cannot decode object 0 (they are all "mixed").
    std::vector<NodeId> small;
    for (std::size_t i = 0; i < k - 1 && k + i < n; ++i) {
      small.push_back(static_cast<NodeId>(k + i));
    }
    if (!small.empty()) {
      EXPECT_FALSE(code->is_recovery_set(0, small));
    }
  }
}

// ---------------------------------------------------------------------------
// Repair-plan properties over random codes (DESIGN.md Sec. 5.4): a minimal
// plan never moves more rows than the full-decode baseline, its byte
// accounting is exact, and executing it rebuilds the failed symbol
// byte-for-byte.
// ---------------------------------------------------------------------------

class RepairPlanPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepairPlanPropertyTest, RepairNeverExceedsFullDecode) {
  Rng rng(GetParam() + 7000);
  const std::size_t n = 4 + rng.next_below(4);
  const std::size_t k = 2 + rng.next_below(std::min<std::size_t>(n - 1, 3));
  const std::size_t elems = 1 + rng.next_below(12);
  auto code = random_code<gf::GF256>(rng, n, k, elems);
  ASSERT_NE(code, nullptr);

  std::vector<Value> values;
  for (std::size_t i = 0; i < k; ++i) {
    values.push_back(random_value<gf::GF256>(rng, elems));
  }
  std::vector<Symbol> symbols;
  for (NodeId s = 0; s < n; ++s) symbols.push_back(code->encode(s, values));

  for (NodeId failed = 0; failed < n; ++failed) {
    const auto minimal = code->plan_symbol_repair(failed, 1u << failed);
    if (!minimal.has_value()) {
      // A random code may leave a server's row outside the survivors' span;
      // "no repair exists" must then be the fresh planner's answer too.
      EXPECT_EQ(code->compute_symbol_repair_fresh(
                    failed, 1u << failed, RepairStrategy::kMinimalFetch),
                nullptr);
      continue;
    }
    EXPECT_LE(minimal->fetch_rows, minimal->full_decode_rows);
    EXPECT_LE(minimal->fetch_bytes, minimal->full_decode_bytes);
    EXPECT_EQ(minimal->fetch_bytes, minimal->fetch_rows * elems);
    EXPECT_EQ(minimal->helper_mask & (1u << failed), 0u)
        << "plan fetches from the failed server itself";

    // The full-decode strategy is the upper bound the minimal plan beats.
    const auto full = code->compute_symbol_repair_fresh(
        failed, 1u << failed, RepairStrategy::kFullDecode);
    ASSERT_NE(full, nullptr);
    EXPECT_LE(minimal->fetch_rows, full->fetches.size());

    // Executing the plan from helper symbols rebuilds the exact bytes.
    std::vector<NodeId> helpers;
    std::vector<Symbol> helper_symbols;
    for (NodeId s = 0; s < n; ++s) {
      if (minimal->helper_mask >> s & 1) {
        helpers.push_back(s);
        helper_symbols.push_back(symbols[s]);
      }
    }
    EXPECT_EQ(code->repair_symbol(failed, helpers, helper_symbols),
              symbols[failed])
        << "failed " << failed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairPlanPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Repair-plan cache stats stay consistent under concurrent lookups: every
// find counts exactly one hit or miss, entries never exceed the distinct
// keys probed, and racing threads all observe the same canonical plan.
// ---------------------------------------------------------------------------

TEST(RepairPlanCacheConcurrencyTest, StatsConsistentUnderConcurrentLookups) {
  const auto code = std::dynamic_pointer_cast<const LinearCodeT<gf::GF256>>(
      make_azure_lrc_6_2_2(8));
  ASSERT_NE(code, nullptr);
  const std::size_t n = code->num_servers();
  const auto base = code->repair_plan_cache_stats();

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(9000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        const NodeId failed = static_cast<NodeId>(rng.next_below(n));
        const auto plan = code->symbol_repair_plan(
            failed, 1u << failed, RepairStrategy::kMinimalFetch);
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (plan == nullptr || (plan->helper_mask >> failed & 1) != 0) {
          mismatch.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());

  const auto stats = code->repair_plan_cache_stats();
  const std::uint64_t finds =
      (stats.hits + stats.misses) - (base.hits + base.misses);
  EXPECT_EQ(finds, lookups.load());
  // One distinct key per failed server; a racing miss may double-compute but
  // insert-if-absent keeps the table at one canonical entry per key.
  EXPECT_LE(stats.entries - base.entries, n);
  EXPECT_GE(stats.misses - base.misses, n > 0 ? 1u : 0u);

  // Post-race, every cached plan still equals a fresh elimination.
  for (NodeId failed = 0; failed < n; ++failed) {
    const auto cached = code->symbol_repair_plan(
        failed, 1u << failed, RepairStrategy::kMinimalFetch);
    const auto fresh = code->compute_symbol_repair_fresh(
        failed, 1u << failed, RepairStrategy::kMinimalFetch);
    ASSERT_NE(cached, nullptr);
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(cached->helper_mask, fresh->helper_mask);
    EXPECT_EQ(cached->fetches, fresh->fetches);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RsThresholdTest,
                         ::testing::Values(std::pair<std::size_t,
                                                     std::size_t>{4, 2},
                                           std::pair<std::size_t,
                                                     std::size_t>{5, 3},
                                           std::pair<std::size_t,
                                                     std::size_t>{6, 4},
                                           std::pair<std::size_t,
                                                     std::size_t>{8, 4},
                                           std::pair<std::size_t,
                                                     std::size_t>{10, 6}));

}  // namespace
}  // namespace causalec::erasure
