// Unit tests for finite-field arithmetic: field axioms (exhaustive for the
// small fields, sampled for the large ones) and the bulk vector kernels.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "gf/field.h"
#include "gf/gf256.h"
#include "gf/gf2_16.h"
#include "gf/prime_field.h"
#include "gf/vector_ops.h"

namespace causalec::gf {
namespace {

// ---------------------------------------------------------------------------
// Exhaustive axioms for GF(2^8) and F_13, sampled for GF(2^16) / F_65537.
// ---------------------------------------------------------------------------

template <Field F>
void check_axioms_pair(typename F::Elem a, typename F::Elem b) {
  // Commutativity.
  EXPECT_EQ(F::add(a, b), F::add(b, a));
  EXPECT_EQ(F::mul(a, b), F::mul(b, a));
  // Identities.
  EXPECT_EQ(F::add(a, F::zero), a);
  EXPECT_EQ(F::mul(a, F::one), a);
  EXPECT_EQ(F::mul(a, F::zero), F::zero);
  // Additive inverse.
  EXPECT_EQ(F::add(a, F::neg(a)), F::zero);
  EXPECT_EQ(F::sub(a, b), F::add(a, F::neg(b)));
  // Multiplicative inverse.
  if (a != F::zero) {
    EXPECT_EQ(F::mul(a, F::inv(a)), F::one);
  }
}

template <Field F>
void check_axioms_triple(typename F::Elem a, typename F::Elem b,
                         typename F::Elem c) {
  // Associativity.
  EXPECT_EQ(F::add(F::add(a, b), c), F::add(a, F::add(b, c)));
  EXPECT_EQ(F::mul(F::mul(a, b), c), F::mul(a, F::mul(b, c)));
  // Distributivity.
  EXPECT_EQ(F::mul(a, F::add(b, c)), F::add(F::mul(a, b), F::mul(a, c)));
}

TEST(GF256Test, ExhaustivePairAxioms) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      check_axioms_pair<GF256>(static_cast<std::uint8_t>(a),
                               static_cast<std::uint8_t>(b));
    }
  }
}

TEST(GF256Test, SampledTripleAxioms) {
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    check_axioms_triple<GF256>(GF256::from_int(rng.next_u64()),
                               GF256::from_int(rng.next_u64()),
                               GF256::from_int(rng.next_u64()));
  }
}

TEST(GF256Test, MultiplicativeGroupIsCyclic) {
  // alpha = 2 generates all 255 nonzero elements.
  std::vector<bool> seen(256, false);
  GF256::Elem x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]) << "cycle shorter than 255 at step " << i;
    seen[x] = true;
    x = GF256::mul(x, GF256::generator());
  }
  EXPECT_EQ(x, 1);  // alpha^255 == 1
}

TEST(GF256Test, CharacteristicTwo) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::add(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(a)),
              0);
  }
  EXPECT_FALSE(GF256::kOddCharacteristic);
}

TEST(GF2_16Test, SampledAxioms) {
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    const auto a = GF2_16::from_int(rng.next_u64());
    const auto b = GF2_16::from_int(rng.next_u64());
    const auto c = GF2_16::from_int(rng.next_u64());
    check_axioms_pair<GF2_16>(a, b);
    check_axioms_triple<GF2_16>(a, b, c);
  }
}

TEST(GF2_16Test, InverseRoundTrip) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    auto a = GF2_16::from_int(rng.next_u64());
    if (a == 0) a = 1;
    EXPECT_EQ(GF2_16::mul(a, GF2_16::inv(a)), 1);
  }
}

TEST(PrimeFieldTest, ExhaustiveAxiomsF13) {
  using F = F13;
  for (std::uint32_t a = 0; a < 13; ++a) {
    for (std::uint32_t b = 0; b < 13; ++b) {
      check_axioms_pair<F>(a, b);
      for (std::uint32_t c = 0; c < 13; ++c) check_axioms_triple<F>(a, b, c);
    }
  }
}

TEST(PrimeFieldTest, ExhaustivePairAxiomsF257) {
  using F = F257;
  for (std::uint32_t a = 0; a < 257; ++a) {
    for (std::uint32_t b = 0; b < 257; ++b) check_axioms_pair<F>(a, b);
  }
}

TEST(PrimeFieldTest, SampledAxiomsF65537) {
  using F = F65537;
  Rng rng(23);
  for (int i = 0; i < 20000; ++i) {
    const auto a = F::from_int(rng.next_u64());
    const auto b = F::from_int(rng.next_u64());
    const auto c = F::from_int(rng.next_u64());
    check_axioms_pair<F>(a, b);
    check_axioms_triple<F>(a, b, c);
  }
}

TEST(PrimeFieldTest, OddCharacteristicTwoIsInvertible) {
  // The paper's (5,3) example needs 2 != 0 and 2 invertible.
  EXPECT_TRUE(F257::kOddCharacteristic);
  EXPECT_EQ(F257::mul(2, F257::inv(2)), 1u);
  EXPECT_EQ(F257::add(1, 1), 2u);
  EXPECT_NE(F257::add(1, 1), 0u);
}

TEST(PrimeFieldTest, ElemBytes) {
  EXPECT_EQ(F13::kElemBytes, 1u);
  EXPECT_EQ(F257::kElemBytes, 2u);
  EXPECT_EQ(F65537::kElemBytes, 3u);
  EXPECT_EQ(GF256::kElemBytes, 1u);
  EXPECT_EQ(GF2_16::kElemBytes, 2u);
}

// ---------------------------------------------------------------------------
// Vector kernels.
// ---------------------------------------------------------------------------

TEST(VectorOpsTest, AxpyMatchesScalarLoop) {
  using F = GF256;
  Rng rng(31);
  // Sizes straddling the GF(2^8) table-path threshold exercise both
  // implementations against the same reference.
  for (std::size_t n : {64u, 1023u, 1024u, 4096u}) {
    std::vector<std::uint8_t> dst(n), src(n), expected(n);
    for (int iter = 0; iter < 20; ++iter) {
      const auto a = F::from_int(rng.next_u64());
      for (std::size_t i = 0; i < dst.size(); ++i) {
        dst[i] = F::from_int(rng.next_u64());
        src[i] = F::from_int(rng.next_u64());
        expected[i] = F::add(dst[i], F::mul(a, src[i]));
      }
      axpy<F>(std::span<std::uint8_t>(dst), a,
              std::span<const std::uint8_t>(src));
      EXPECT_EQ(dst, expected) << "n=" << n;
    }
  }
}

TEST(VectorOpsTest, AddSubRoundTrip) {
  using F = F257;
  Rng rng(37);
  std::vector<std::uint32_t> dst(32), src(32);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = F::from_int(rng.next_u64());
    src[i] = F::from_int(rng.next_u64());
  }
  const auto original = dst;
  add_into<F>(std::span<std::uint32_t>(dst),
              std::span<const std::uint32_t>(src));
  sub_into<F>(std::span<std::uint32_t>(dst),
              std::span<const std::uint32_t>(src));
  EXPECT_EQ(dst, original);
}

TEST(VectorOpsTest, ZeroHelpers) {
  using F = GF256;
  std::vector<std::uint8_t> v(16, 3);
  EXPECT_FALSE(is_zero<F>(std::span<const std::uint8_t>(v)));
  set_zero<F>(std::span<std::uint8_t>(v));
  EXPECT_TRUE(is_zero<F>(std::span<const std::uint8_t>(v)));
}

TEST(VectorOpsTest, ScaleByOneAndZero) {
  using F = GF256;
  std::vector<std::uint8_t> v{1, 2, 3, 4};
  const auto original = v;
  scale<F>(std::span<std::uint8_t>(v), F::one);
  EXPECT_EQ(v, original);
  scale<F>(std::span<std::uint8_t>(v), F::from_int(0));
  EXPECT_TRUE(is_zero<F>(std::span<const std::uint8_t>(v)));
}

TEST(FieldTest, PowSquareAndMultiply) {
  using F = GF256;
  // a^(order-1) == 1 for nonzero a (Fermat).
  Rng rng(41);
  for (int i = 0; i < 256; ++i) {
    auto a = F::from_int(rng.next_u64());
    if (a == 0) continue;
    EXPECT_EQ((pow<F>(a, 255)), 1);
  }
  EXPECT_EQ((pow<F>(3, 0)), 1);
  EXPECT_EQ((pow<F>(3, 1)), 3);
}

}  // namespace
}  // namespace causalec::gf
