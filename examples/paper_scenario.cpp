// The Sec. 1.2 / Fig. 4 walk-through: servers end up encoding *different
// versions* of the objects, and a read is served by re-encoding codeword
// symbols on both sides of the wire.
//
// Setup: the (5,3) code Y1=X1, Y2=X2, Y3=X3, Y4=X1+X2+X3, Y5=X1+2*X2+X3.
// We converge on version 1 of every object (so the version-1 values survive
// only inside codeword symbols), then isolate server 5 and write version 2.
// A read for X2 at server 5 must then be answered by server 4 re-encoding
// Y4 from its version-2 state back toward version 1 -- the exact flow of
// Fig. 4 -- while every history list involved has already been garbage
// collected.
#include <cstdio>
#include <memory>

#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "sim/latency.h"

using namespace causalec;
using erasure::Value;

namespace {

Value val257(std::uint8_t fill, std::size_t bytes) {
  Value v(bytes, 0);
  for (std::size_t i = 0; i < bytes; i += 2) v[i] = fill;
  return v;
}

void print_server_versions(const Cluster& cluster) {
  for (NodeId s = 0; s < cluster.num_servers(); ++s) {
    std::printf("  server %u encodes versions:", s);
    for (ObjectId x = 0; x < 3; ++x) {
      const Tag& tag = cluster.server(s).codeword_tag(x);
      std::printf(" X%u@%llu", x + 1,
                  static_cast<unsigned long long>(tag.ts.sum()));
    }
    const auto storage = cluster.server(s).storage();
    std::printf("  (history entries: %zu)\n", storage.history_entries);
  }
}

}  // namespace

int main() {
  constexpr std::size_t kValueBytes = 16;
  auto code = erasure::make_paper_5_3(kValueBytes);
  Cluster cluster(code, std::make_unique<sim::ConstantLatency>(
                            10 * sim::kMillisecond));
  std::printf("code: %s\n", code->describe().c_str());

  Client& w1 = cluster.make_client(0);
  Client& w2 = cluster.make_client(1);
  Client& w3 = cluster.make_client(2);

  std::printf("\n== round 1: write version 1 of X1, X2, X3 and settle ==\n");
  w1.write(0, val257(11, kValueBytes));
  const Tag x2_v1 = w2.write(1, val257(21, kValueBytes));
  w3.write(2, val257(31, kValueBytes));
  cluster.settle();
  print_server_versions(cluster);
  std::printf("  storage converged: %s (version-1 values now live only "
              "inside codeword symbols)\n",
              cluster.storage_converged() ? "yes" : "no");

  std::printf("\n== round 2: isolate server 5, write version 2 ==\n");
  for (NodeId from = 0; from < 3; ++from) {
    cluster.sim().add_channel_delay(from, 4, 60 * sim::kSecond);
  }
  w1.write(0, val257(12, kValueBytes));
  w2.write(1, val257(22, kValueBytes));
  w3.write(2, val257(32, kValueBytes));
  cluster.run_for(2 * sim::kSecond);
  print_server_versions(cluster);

  std::printf("\n== read X2 at server 5 (stores X1+2*X2+X3 at version 1) ==\n");
  Client& reader = cluster.make_client(4);
  reader.read(1, [&](const Value& v, const Tag& tag, const VectorClock&) {
    std::printf("  read returned version with ts-sum %llu, payload %u "
                "(expected version 1 payload 21)\n",
                static_cast<unsigned long long>(tag.ts.sum()), v[0]);
    std::printf("  matches X2(1): %s\n", tag == x2_v1 ? "yes" : "no");
  });
  cluster.run_for(sim::kSecond);

  std::printf("\n== partition heals; everything converges to version 2 ==\n");
  cluster.settle();
  print_server_versions(cluster);
  reader.read(1, [](const Value& v, const Tag&, const VectorClock&) {
    std::printf("  read X2 -> payload %u (version 2)\n", v[0]);
  });
  cluster.run_for(sim::kSecond);

  std::printf("\nError1/Error2 invariant events across all servers: ");
  std::uint64_t errors = 0;
  for (NodeId s = 0; s < cluster.num_servers(); ++s) {
    errors += cluster.server(s).counters().error1_events +
              cluster.server(s).counters().error2_events;
  }
  std::printf("%llu (the paper proves these never occur)\n",
              static_cast<unsigned long long>(errors));
  return 0;
}
