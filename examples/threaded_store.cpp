// The same CausalEC automaton deployed on real OS threads: one thread per
// server, mutex-guarded FIFO mailboxes as channels, wall-clock garbage
// collection, and every message serialized to bytes by the binary codec on
// its way across the node boundary.
//
// Contrast with examples/quickstart.cpp, which runs the identical server
// code on the deterministic discrete-event simulator.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "erasure/codes.h"
#include "runtime/threaded_cluster.h"

using namespace causalec;
using namespace std::chrono_literals;
using erasure::Value;

int main() {
  constexpr std::size_t kValueBytes = 256;
  auto code = erasure::make_systematic_rs(/*num_servers=*/6,
                                          /*num_objects=*/4, kValueBytes);
  runtime::ThreadedClusterConfig config;
  config.gc_period = 10ms;
  runtime::ThreadedCluster cluster(code, config);
  std::printf("threaded deployment: %s, one OS thread per server, codec-"
              "serialized channels\n\n", code->describe().c_str());

  // Writers on three application threads, hitting different servers.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&cluster, w] {
      for (int i = 0; i < 20; ++i) {
        cluster.write(/*at=*/static_cast<NodeId>(w), /*client=*/1 + w,
                      /*object=*/static_cast<ObjectId>((w + i) % 4),
                      Value(kValueBytes, static_cast<std::uint8_t>(i)));
      }
    });
  }
  for (auto& t : writers) t.join();
  const auto write_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count() /
      1000.0;
  std::printf("60 writes from 3 application threads in %.1f ms wall clock\n",
              write_ms);

  // Wait for re-encoding + garbage collection to drain all transient state.
  const bool converged = cluster.await_convergence(5000ms);
  std::printf("storage converged: %s\n", converged ? "yes" : "NO");
  for (NodeId s = 0; s < 6; ++s) {
    const auto stats = cluster.storage(s);
    std::printf("  server %u: codeword %zu B, history %zu entries, "
                "pending reads %zu\n",
                s, stats.codeword_bytes, stats.history_entries,
                stats.readl_entries);
  }

  // Reads from every server agree.
  std::printf("\nreads (object X1 from every server):\n");
  for (NodeId s = 0; s < 6; ++s) {
    const auto [value, tag] = cluster.read(s, /*client=*/50 + s, 0);
    std::printf("  server %u -> payload %3u (writer client c%llu)\n", s,
                value[0], static_cast<unsigned long long>(tag.id));
  }
  std::printf("\nError1/Error2 events: %llu (always zero)\n",
              static_cast<unsigned long long>(cluster.total_error_events()));
  return 0;
}
