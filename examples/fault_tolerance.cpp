// Fault tolerance (Property II / Theorem 4.3): with a Reed-Solomon (6,4)
// code, CausalEC inherits the code's tolerance of N-K = 2 crashed servers:
// reads keep completing as long as one recovery set (any 4 servers) is
// alive, and writes are always local so they never block at all.
#include <cstdio>
#include <memory>

#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "sim/latency.h"

using namespace causalec;
using erasure::Value;

namespace {

void try_read(Cluster& cluster, NodeId at, ObjectId object,
              const char* label) {
  Client& client = cluster.make_client(at);
  bool completed = false;
  const SimTime start = cluster.sim().now();
  client.read(object, [&](const Value& v, const Tag&, const VectorClock&) {
    completed = true;
    std::printf("  %-34s -> value %3u after %.0f ms\n", label, v[0],
                static_cast<double>(cluster.sim().now() - start) / 1e6);
  });
  cluster.run_for(5 * sim::kSecond);
  if (!completed) {
    std::printf("  %-34s -> still pending (no live recovery set)\n", label);
  }
}

}  // namespace

int main() {
  constexpr std::size_t kValueBytes = 64;
  auto code = erasure::make_systematic_rs(/*num_servers=*/6,
                                          /*num_objects=*/4, kValueBytes);
  Cluster cluster(code, std::make_unique<sim::ConstantLatency>(
                            15 * sim::kMillisecond));
  std::printf("code: %s -- any 4 of 6 servers can decode anything (MDS)\n\n",
              code->describe().c_str());

  Client& writer = cluster.make_client(0);
  writer.write(0, Value(kValueBytes, 9));
  writer.write(2, Value(kValueBytes, 42));
  cluster.settle();

  std::printf("healthy cluster (histories drained; data lives only in "
              "codeword symbols):\n");
  try_read(cluster, 5, 2, "read X3 at parity server 5");

  std::printf("\ncrash servers 1 and 2 (the tolerated maximum, N-K=2):\n");
  cluster.halt_server(1);
  cluster.halt_server(2);
  try_read(cluster, 5, 2, "read X3 at parity server 5");
  try_read(cluster, 3, 0, "read X1 at server 3");

  std::printf("\nwrites stay local even with half the cluster down:\n");
  cluster.halt_server(4);
  Client& survivor = cluster.make_client(0);
  const Tag tag = survivor.write(1, Value(kValueBytes, 7));
  std::printf("  write X2 at server 0 acked with ts[0]=%llu immediately\n",
              static_cast<unsigned long long>(tag.ts[0]));

  std::printf("\nwith 3 servers down (beyond N-K), decoding stalls but the "
              "protocol degrades safely:\n");
  cluster.run_for(sim::kSecond);  // let the new write propagate
  try_read(cluster, 5, 1, "read X2 at parity server 5");
  std::printf("  (garbage collection needs del announcements from every "
              "server, so the crashed\n   servers block it: live servers "
              "retain the new version in their history lists\n   and serve "
              "it from there -- no decode required)\n");
  return 0;
}
