// Geo-distributed deployment (Sec. 1.1): six AWS regions with the Fig. 1
// round-trip times, four object groups stored with the paper's cross-object
// code
//
//   Seoul: G1+G3   Mumbai: G2+G4   Ireland: G1
//   London: G2     N.California: G4   Oregon: G3
//
// Clients in every region issue a read-heavy workload; the example prints
// per-region read latencies, which reproduce the Fig. 2 profile: regions
// holding an uncoded copy read at 0 ms, others at their best recovery set.
#include <cstdio>
#include <memory>

#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "placement/latency_eval.h"
#include "placement/rtt_matrix.h"
#include "sim/latency.h"
#include "workload/driver.h"

using namespace causalec;
using erasure::Value;

int main() {
  constexpr std::size_t kValueBytes = 1024;  // 1 KiB objects
  const auto& rtt = placement::six_dc_rtt_ms();
  auto code = erasure::make_six_dc_cross_object(kValueBytes);

  ClusterConfig config;
  config.gc_period = 500 * sim::kMillisecond;
  Cluster cluster(code, sim::MatrixLatency::from_rtt_ms(rtt), config);

  // Seed every group with data and converge.
  for (ObjectId g = 0; g < 4; ++g) {
    cluster.make_client(g % cluster.num_servers())
        .write(g, Value(kValueBytes, static_cast<std::uint8_t>(g + 1)));
  }
  cluster.settle();

  std::printf("%-14s %-28s %10s %10s\n", "region", "stores", "read ms",
              "analytic");
  const char* stores[] = {"G1+G3 (coded)", "G2+G4 (coded)", "G1 (uncoded)",
                          "G2 (uncoded)",  "G4 (uncoded)",  "G3 (uncoded)"};

  for (NodeId dc = 0; dc < 6; ++dc) {
    // Measure: one read of every group from this region.
    double measured_sum = 0;
    for (ObjectId g = 0; g < 4; ++g) {
      Client& client = cluster.make_client(dc);
      const SimTime start = cluster.sim().now();
      SimTime done = -1;
      client.read(g, [&](const Value&, const Tag&, const VectorClock&) {
        done = cluster.sim().now();
      });
      cluster.run_for(2 * sim::kSecond);
      measured_sum += static_cast<double>(done - start) / 1e6;
    }
    // Analytic per-region average from the recovery sets.
    double analytic_sum = 0;
    for (ObjectId g = 0; g < 4; ++g) {
      analytic_sum += placement::read_latency_ms(*code, rtt, dc, g);
    }
    std::printf("%-14s %-28s %10.1f %10.1f\n",
                placement::dc_names()[dc].c_str(), stores[dc],
                measured_sum / 4, analytic_sum / 4);
  }

  // A write burst from Seoul: still acknowledged locally despite the
  // 120-240 ms links.
  Client& seoul = cluster.make_client(placement::kSeoul);
  const SimTime before = cluster.sim().now();
  for (int i = 0; i < 10; ++i) {
    seoul.write(0, Value(kValueBytes, static_cast<std::uint8_t>(i)));
  }
  std::printf("\n10 writes from Seoul acknowledged in %.1f ms of simulated "
              "time (writes are local)\n",
              static_cast<double>(cluster.sim().now() - before) / 1e6);
  cluster.settle();
  std::printf("storage converged after GC: %s\n",
              cluster.storage_converged() ? "yes" : "no");
  return 0;
}
