// Quickstart: a five-server CausalEC deployment storing three objects with
// the paper's (5,3) cross-object code
//
//   Y1 = X1, Y2 = X2, Y3 = X3, Y4 = X1+X2+X3, Y5 = X1+2*X2+X3
//
// over F_257. Shows local writes, local reads, erasure-decoded remote
// reads, and storage convergence.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <string>

#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "sim/latency.h"

using namespace causalec;
using erasure::Value;

namespace {

/// Pack a short ASCII string into an F_257 value (one char per element,
/// 2 bytes each).
Value encode_string(const std::string& text, std::size_t value_bytes) {
  Value v(value_bytes, 0);
  for (std::size_t i = 0; i < text.size() && 2 * i + 1 < v.size(); ++i) {
    v[2 * i] = static_cast<std::uint8_t>(text[i]);
  }
  return v;
}

std::string decode_string(const Value& v) {
  std::string out;
  for (std::size_t i = 0; i + 1 < v.size(); i += 2) {
    if (v[i] == 0) break;
    out.push_back(static_cast<char>(v[i]));
  }
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t kValueBytes = 32;  // 16 F_257 symbols

  // 1. Pick a code and build a cluster (10 ms one-way links here).
  auto code = erasure::make_paper_5_3(kValueBytes);
  Cluster cluster(code,
                  std::make_unique<sim::ConstantLatency>(10 * sim::kMillisecond));
  std::printf("cluster: %s\n", code->describe().c_str());

  // 2. Clients attach to servers; writes are local and return immediately.
  Client& alice = cluster.make_client(/*at_server=*/0);
  Client& bob = cluster.make_client(/*at_server=*/4);

  const Tag t1 = alice.write(0, encode_string("causal", kValueBytes));
  std::printf("alice wrote X1 at server 0, tag ts[0]=%llu (local, 0 ms)\n",
              static_cast<unsigned long long>(t1.ts[0]));

  // 3. Reads at the writer are served from the local history list.
  alice.read(0, [](const Value& v, const Tag&, const VectorClock&) {
    std::printf("alice read X1 -> \"%s\" (local)\n",
                decode_string(v).c_str());
  });

  // 4. Let the write propagate and the servers re-encode + garbage-collect:
  //    afterwards every server stores exactly its codeword symbol.
  cluster.settle();
  std::printf("storage converged: %s\n",
              cluster.storage_converged() ? "yes" : "no");

  // 5. Bob reads X1 at server 4, which stores only X1+2*X2+X3. CausalEC
  //    decodes via a recovery set (one round trip).
  bob.read(0, [&](const Value& v, const Tag&, const VectorClock&) {
    std::printf("bob read X1 -> \"%s\" (decoded at t=%.0f ms)\n",
                decode_string(v).c_str(),
                static_cast<double>(cluster.sim().now()) / 1e6);
  });
  cluster.run_for(sim::kSecond);

  // 6. Causality: bob writes X2 after reading X1; any client that sees
  //    bob's write also sees alice's.
  bob.write(1, encode_string("consistent", kValueBytes));
  cluster.settle();
  // A client has at most one pending operation (well-formedness), so the
  // second read is chained inside the first read's completion callback.
  Client& carol = cluster.make_client(2);
  carol.read(1, [&](const Value& v, const Tag&, const VectorClock&) {
    std::printf("carol read X2 -> \"%s\"\n", decode_string(v).c_str());
    carol.read(0, [](const Value& v2, const Tag&, const VectorClock&) {
      std::printf("carol read X1 -> \"%s\" (causally visible)\n",
                  decode_string(v2).c_str());
    });
  });
  cluster.run_for(sim::kSecond);

  const auto& stats = cluster.sim().stats();
  std::printf("network: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(stats.total_messages),
              static_cast<unsigned long long>(stats.total_bytes));
  return 0;
}
