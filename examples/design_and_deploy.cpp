// Design-and-deploy: the paper's open problem (Sec. 6), end to end.
//
// Given a topology, when does cross-object coding actually beat partial
// replication? The designer answers this per-topology:
//
//   Topology A (three tight continental clusters): partial replication is
//   already latency-optimal, and the designer correctly converges to it --
//   coding buys nothing here and the tool says so.
//
//   Topology B (the paper's Fig. 1: two isolated regions, Seoul and
//   Mumbai, far from everything): the designer discovers a cross-object
//   code better than the paper's hand-tuned one, which we then deploy on a
//   live CausalEC cluster and verify prediction == measurement.
#include <cstdio>
#include <memory>

#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "placement/designer.h"
#include "placement/latency_eval.h"
#include "placement/rtt_matrix.h"
#include "sim/latency.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

std::vector<std::vector<double>> three_continents() {
  //                    US-E  US-W  EU-1  EU-2  AS-1  AS-2  AS-3
  return {
      /* US-E */ {0, 60, 90, 95, 180, 200, 210},
      /* US-W */ {60, 0, 140, 145, 110, 130, 140},
      /* EU-1 */ {90, 140, 0, 15, 160, 180, 240},
      /* EU-2 */ {95, 145, 15, 0, 165, 185, 245},
      /* AS-1 */ {180, 110, 160, 165, 0, 35, 60},
      /* AS-2 */ {200, 130, 180, 185, 35, 0, 45},
      /* AS-3 */ {210, 140, 240, 245, 60, 45, 0},
  };
}

void print_masks(const std::vector<std::uint32_t>& masks,
                 const std::vector<std::string>& names,
                 std::size_t groups) {
  for (std::size_t s = 0; s < masks.size(); ++s) {
    std::printf("   %-13s stores:", names[s].c_str());
    bool first = true;
    for (std::size_t g = 0; g < groups; ++g) {
      if (masks[s] >> g & 1) {
        std::printf("%s G%zu", first ? "" : " +", g + 1);
        first = false;
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  constexpr std::size_t kValueBytes = 512;

  // ------------------------------------------------------------------
  std::printf("== topology A: three tight continental clusters (7 DCs, 6 "
              "groups) ==\n");
  {
    const auto rtt = three_continents();
    placement::DesignOptions options;
    options.restarts = 6;
    options.max_steps_per_restart = 24;
    options.worst_weight = 1.0;
    const auto designed =
        placement::design_cross_object_code(rtt, 6, options);
    const auto partial =
        placement::brute_force_partial_replication(rtt, 6);
    std::printf("   designed:            worst %.0f ms, avg %.2f ms\n",
                designed.eval.worst_read_latency_ms,
                designed.eval.avg_read_latency_ms);
    std::printf("   partial replication: worst %.0f ms, avg %.2f ms\n",
                partial.worst_read_latency_ms,
                partial.avg_read_latency_ms);
    std::printf("   -> clusters have cheap local spares: the designer "
                "correctly converges to\n      (coding-free) partial "
                "replication; cross-object symbols cannot help here.\n\n");
  }

  // ------------------------------------------------------------------
  std::printf("== topology B: the Fig. 1 geography -- Seoul and Mumbai "
              "isolated (6 DCs, 4 groups) ==\n");
  const auto rtt = placement::six_dc_rtt_ms();
  std::vector<std::string> names(placement::dc_names().begin(),
                                 placement::dc_names().end());
  placement::DesignOptions options;
  options.restarts = 8;
  options.max_steps_per_restart = 32;
  options.worst_weight = 0.25;
  options.value_bytes = kValueBytes;
  const auto designed = placement::design_cross_object_code(rtt, 4, options);
  const auto partial = placement::brute_force_partial_replication(rtt, 4);
  const auto paper = placement::evaluate_code(
      *erasure::make_six_dc_cross_object(kValueBytes), rtt, "paper");
  std::printf("   partial replication: worst %.0f ms, avg %.2f ms\n",
              partial.worst_read_latency_ms, partial.avg_read_latency_ms);
  std::printf("   paper's hand-tuned:  worst %.0f ms, avg %.2f ms\n",
              paper.worst_read_latency_ms, paper.avg_read_latency_ms);
  std::printf("   designed:            worst %.0f ms, avg %.2f ms  (%d "
              "candidates)\n",
              designed.eval.worst_read_latency_ms,
              designed.eval.avg_read_latency_ms, designed.evaluations);
  print_masks(designed.masks, names, 4);

  // ------------------------------------------------------------------
  std::printf("\n== deploy the topology-B design on a live cluster ==\n");
  ClusterConfig config;
  config.gc_period = 200 * kMillisecond;
  config.server.fanout = ReadFanout::kNearestRecoverySet;
  config.proximity_matrix = rtt;
  Cluster cluster(designed.code, sim::MatrixLatency::from_rtt_ms(rtt),
                  config);
  for (ObjectId g = 0; g < 4; ++g) {
    cluster.make_client(g % 6).write(
        g, Value(kValueBytes, static_cast<std::uint8_t>(g + 1)));
  }
  cluster.settle();

  std::printf("   %-13s %16s %16s\n", "region", "measured avg", "predicted");
  for (NodeId dc = 0; dc < 6; ++dc) {
    double measured = 0, predicted = 0;
    for (ObjectId g = 0; g < 4; ++g) {
      SimTime done = -1;
      const SimTime start = cluster.sim().now();
      cluster.make_client(dc).read(
          g, [&done, &cluster](const Value&, const Tag&,
                               const VectorClock&) {
            done = cluster.sim().now();
          });
      cluster.run_for(2 * kSecond);
      measured += static_cast<double>(done - start) / 1e6;
      predicted += placement::read_latency_ms(*designed.code, rtt, dc, g);
    }
    std::printf("   %-13s %13.1f ms %13.1f ms\n", names[dc].c_str(),
                measured / 4, predicted / 4);
  }
  std::printf("\n(writes stay local from every region; reads decode from "
              "the designed recovery sets)\n");
  return 0;
}
