# Runs a bench binary with CAUSALEC_BENCH_DIR pointed at a scratch
# directory, then validates the BENCH_*.json it wrote with
# tools/check_bench_json.py. Invoked by the bench_json_smoke and
# kernel_bench_smoke CTest entries:
#   cmake -DBENCH_EXE=... -DBENCH_ARGS=... -DBENCH_JSON=... -DPYTHON=...
#         -DVALIDATOR=... -DWORK_DIR=... -P RunBenchJsonSmoke.cmake
# Optional: -DBASELINE=<floors json> [-DMAX_REGRESSION=<frac>] forwards
# --baseline/--max-regression to the validator, failing the test when a
# pinned metric drops more than the tolerance below its committed floor.
# Optional: -DREQUIRE_KEYS=<row[.metric],...> forwards --require-keys,
# failing the test when the bench stops emitting an expected row -- the
# presence gate for rows whose *values* are too machine-dependent to pin
# in a committed baseline.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "CAUSALEC_BENCH_DIR=${WORK_DIR}"
          "${BENCH_EXE}" ${BENCH_ARGS}
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "bench failed (rc=${bench_rc}):\n${bench_out}\n${bench_err}")
endif()

set(json_path "${WORK_DIR}/${BENCH_JSON}")
if(NOT EXISTS "${json_path}")
  message(FATAL_ERROR "bench did not write ${json_path}:\n${bench_err}")
endif()

set(validator_args "${json_path}")
if(DEFINED REQUIRE_KEYS)
  list(PREPEND validator_args --require-keys "${REQUIRE_KEYS}")
endif()
if(DEFINED BASELINE)
  list(PREPEND validator_args --baseline "${BASELINE}")
  if(DEFINED MAX_REGRESSION)
    list(PREPEND validator_args --max-regression "${MAX_REGRESSION}")
  endif()
endif()

execute_process(
  COMMAND "${PYTHON}" "${VALIDATOR}" ${validator_args}
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR
          "schema validation failed:\n${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
