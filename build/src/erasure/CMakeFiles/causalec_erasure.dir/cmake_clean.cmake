file(REMOVE_RECURSE
  "CMakeFiles/causalec_erasure.dir/codes.cpp.o"
  "CMakeFiles/causalec_erasure.dir/codes.cpp.o.d"
  "libcausalec_erasure.a"
  "libcausalec_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
