# Empty compiler generated dependencies file for causalec_erasure.
# This may be replaced when dependencies are built.
