file(REMOVE_RECURSE
  "libcausalec_erasure.a"
)
