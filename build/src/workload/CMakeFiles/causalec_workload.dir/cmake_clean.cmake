file(REMOVE_RECURSE
  "CMakeFiles/causalec_workload.dir/zipf.cpp.o"
  "CMakeFiles/causalec_workload.dir/zipf.cpp.o.d"
  "libcausalec_workload.a"
  "libcausalec_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
