file(REMOVE_RECURSE
  "libcausalec_workload.a"
)
