# Empty compiler generated dependencies file for causalec_workload.
# This may be replaced when dependencies are built.
