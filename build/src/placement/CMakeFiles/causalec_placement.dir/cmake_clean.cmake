file(REMOVE_RECURSE
  "CMakeFiles/causalec_placement.dir/designer.cpp.o"
  "CMakeFiles/causalec_placement.dir/designer.cpp.o.d"
  "CMakeFiles/causalec_placement.dir/latency_eval.cpp.o"
  "CMakeFiles/causalec_placement.dir/latency_eval.cpp.o.d"
  "CMakeFiles/causalec_placement.dir/rtt_matrix.cpp.o"
  "CMakeFiles/causalec_placement.dir/rtt_matrix.cpp.o.d"
  "libcausalec_placement.a"
  "libcausalec_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
