file(REMOVE_RECURSE
  "libcausalec_placement.a"
)
