# Empty dependencies file for causalec_placement.
# This may be replaced when dependencies are built.
