file(REMOVE_RECURSE
  "libcausalec_consistency.a"
)
