# Empty dependencies file for causalec_consistency.
# This may be replaced when dependencies are built.
