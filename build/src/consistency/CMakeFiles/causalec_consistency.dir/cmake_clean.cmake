file(REMOVE_RECURSE
  "CMakeFiles/causalec_consistency.dir/causal_checker.cpp.o"
  "CMakeFiles/causalec_consistency.dir/causal_checker.cpp.o.d"
  "libcausalec_consistency.a"
  "libcausalec_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
