file(REMOVE_RECURSE
  "CMakeFiles/causalec_common.dir/logging.cpp.o"
  "CMakeFiles/causalec_common.dir/logging.cpp.o.d"
  "libcausalec_common.a"
  "libcausalec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
