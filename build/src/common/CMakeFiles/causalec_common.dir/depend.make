# Empty dependencies file for causalec_common.
# This may be replaced when dependencies are built.
