file(REMOVE_RECURSE
  "libcausalec_common.a"
)
