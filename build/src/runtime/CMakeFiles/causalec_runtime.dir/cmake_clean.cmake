file(REMOVE_RECURSE
  "CMakeFiles/causalec_runtime.dir/threaded_cluster.cpp.o"
  "CMakeFiles/causalec_runtime.dir/threaded_cluster.cpp.o.d"
  "libcausalec_runtime.a"
  "libcausalec_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
