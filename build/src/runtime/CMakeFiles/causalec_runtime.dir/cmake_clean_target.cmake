file(REMOVE_RECURSE
  "libcausalec_runtime.a"
)
