# Empty compiler generated dependencies file for causalec_runtime.
# This may be replaced when dependencies are built.
