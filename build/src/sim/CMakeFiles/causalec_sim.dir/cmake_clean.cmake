file(REMOVE_RECURSE
  "CMakeFiles/causalec_sim.dir/latency.cpp.o"
  "CMakeFiles/causalec_sim.dir/latency.cpp.o.d"
  "CMakeFiles/causalec_sim.dir/simulation.cpp.o"
  "CMakeFiles/causalec_sim.dir/simulation.cpp.o.d"
  "libcausalec_sim.a"
  "libcausalec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
