# Empty dependencies file for causalec_sim.
# This may be replaced when dependencies are built.
