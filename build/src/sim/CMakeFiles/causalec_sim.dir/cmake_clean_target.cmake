file(REMOVE_RECURSE
  "libcausalec_sim.a"
)
