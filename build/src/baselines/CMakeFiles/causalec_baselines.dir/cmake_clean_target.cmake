file(REMOVE_RECURSE
  "libcausalec_baselines.a"
)
