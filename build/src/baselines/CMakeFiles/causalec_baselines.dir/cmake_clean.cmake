file(REMOVE_RECURSE
  "CMakeFiles/causalec_baselines.dir/intra_object_store.cpp.o"
  "CMakeFiles/causalec_baselines.dir/intra_object_store.cpp.o.d"
  "CMakeFiles/causalec_baselines.dir/replicated_store.cpp.o"
  "CMakeFiles/causalec_baselines.dir/replicated_store.cpp.o.d"
  "libcausalec_baselines.a"
  "libcausalec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
