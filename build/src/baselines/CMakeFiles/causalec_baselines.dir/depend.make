# Empty dependencies file for causalec_baselines.
# This may be replaced when dependencies are built.
