# Empty dependencies file for causalec_core.
# This may be replaced when dependencies are built.
