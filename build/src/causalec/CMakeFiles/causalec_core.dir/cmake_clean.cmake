file(REMOVE_RECURSE
  "CMakeFiles/causalec_core.dir/cluster.cpp.o"
  "CMakeFiles/causalec_core.dir/cluster.cpp.o.d"
  "CMakeFiles/causalec_core.dir/codec.cpp.o"
  "CMakeFiles/causalec_core.dir/codec.cpp.o.d"
  "CMakeFiles/causalec_core.dir/grouped_store.cpp.o"
  "CMakeFiles/causalec_core.dir/grouped_store.cpp.o.d"
  "CMakeFiles/causalec_core.dir/server.cpp.o"
  "CMakeFiles/causalec_core.dir/server.cpp.o.d"
  "libcausalec_core.a"
  "libcausalec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
