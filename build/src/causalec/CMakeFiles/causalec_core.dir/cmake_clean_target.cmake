file(REMOVE_RECURSE
  "libcausalec_core.a"
)
