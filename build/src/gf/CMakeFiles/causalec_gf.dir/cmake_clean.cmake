file(REMOVE_RECURSE
  "CMakeFiles/causalec_gf.dir/gf256.cpp.o"
  "CMakeFiles/causalec_gf.dir/gf256.cpp.o.d"
  "CMakeFiles/causalec_gf.dir/gf2_16.cpp.o"
  "CMakeFiles/causalec_gf.dir/gf2_16.cpp.o.d"
  "libcausalec_gf.a"
  "libcausalec_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
