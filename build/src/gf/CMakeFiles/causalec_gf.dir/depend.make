# Empty dependencies file for causalec_gf.
# This may be replaced when dependencies are built.
