file(REMOVE_RECURSE
  "libcausalec_gf.a"
)
