# Empty dependencies file for bench_transient_storage.
# This may be replaced when dependencies are built.
