file(REMOVE_RECURSE
  "CMakeFiles/bench_transient_storage.dir/bench_transient_storage.cpp.o"
  "CMakeFiles/bench_transient_storage.dir/bench_transient_storage.cpp.o.d"
  "bench_transient_storage"
  "bench_transient_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transient_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
