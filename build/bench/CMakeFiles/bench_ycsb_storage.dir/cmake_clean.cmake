file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb_storage.dir/bench_ycsb_storage.cpp.o"
  "CMakeFiles/bench_ycsb_storage.dir/bench_ycsb_storage.cpp.o.d"
  "bench_ycsb_storage"
  "bench_ycsb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
