# Empty dependencies file for bench_ycsb_storage.
# This may be replaced when dependencies are built.
