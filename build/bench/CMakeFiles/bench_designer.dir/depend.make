# Empty dependencies file for bench_designer.
# This may be replaced when dependencies are built.
