file(REMOVE_RECURSE
  "CMakeFiles/bench_designer.dir/bench_designer.cpp.o"
  "CMakeFiles/bench_designer.dir/bench_designer.cpp.o.d"
  "bench_designer"
  "bench_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
