file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_table.dir/bench_fig2_table.cpp.o"
  "CMakeFiles/bench_fig2_table.dir/bench_fig2_table.cpp.o.d"
  "bench_fig2_table"
  "bench_fig2_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
