# Empty dependencies file for bench_geo_sim.
# This may be replaced when dependencies are built.
