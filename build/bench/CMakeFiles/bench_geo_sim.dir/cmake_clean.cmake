file(REMOVE_RECURSE
  "CMakeFiles/bench_geo_sim.dir/bench_geo_sim.cpp.o"
  "CMakeFiles/bench_geo_sim.dir/bench_geo_sim.cpp.o.d"
  "bench_geo_sim"
  "bench_geo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
