file(REMOVE_RECURSE
  "CMakeFiles/bench_liveness.dir/bench_liveness.cpp.o"
  "CMakeFiles/bench_liveness.dir/bench_liveness.cpp.o.d"
  "bench_liveness"
  "bench_liveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
