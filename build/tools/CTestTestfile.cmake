# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "/root/repo/build/tools/causalec_cli" "--code" "paper53" "--ops" "120" "--zipf" "0.9" "--check")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_rs "/root/repo/build/tools/causalec_cli" "--code" "rs" "--servers" "7" "--objects" "4" "--ops" "100" "--nearest-fanout" "--lamport" "--check")
set_tests_properties(cli_smoke_rs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
