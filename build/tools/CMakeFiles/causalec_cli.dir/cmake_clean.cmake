file(REMOVE_RECURSE
  "CMakeFiles/causalec_cli.dir/causalec_cli.cpp.o"
  "CMakeFiles/causalec_cli.dir/causalec_cli.cpp.o.d"
  "causalec_cli"
  "causalec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
