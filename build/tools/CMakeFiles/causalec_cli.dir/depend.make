# Empty dependencies file for causalec_cli.
# This may be replaced when dependencies are built.
