# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_scenario "/root/repo/build/examples/paper_scenario")
set_tests_properties(example_paper_scenario PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_geo_store "/root/repo/build/examples/geo_store")
set_tests_properties(example_geo_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_tolerance "/root/repo/build/examples/fault_tolerance")
set_tests_properties(example_fault_tolerance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_threaded_store "/root/repo/build/examples/threaded_store")
set_tests_properties(example_threaded_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_and_deploy "/root/repo/build/examples/design_and_deploy")
set_tests_properties(example_design_and_deploy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
