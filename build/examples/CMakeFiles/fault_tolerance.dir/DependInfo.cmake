
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fault_tolerance.cpp" "examples/CMakeFiles/fault_tolerance.dir/fault_tolerance.cpp.o" "gcc" "examples/CMakeFiles/fault_tolerance.dir/fault_tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/causalec/CMakeFiles/causalec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/causalec_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/causalec_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/causalec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/causalec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
