# Empty compiler generated dependencies file for paper_scenario.
# This may be replaced when dependencies are built.
