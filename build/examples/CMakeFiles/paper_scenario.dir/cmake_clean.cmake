file(REMOVE_RECURSE
  "CMakeFiles/paper_scenario.dir/paper_scenario.cpp.o"
  "CMakeFiles/paper_scenario.dir/paper_scenario.cpp.o.d"
  "paper_scenario"
  "paper_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
