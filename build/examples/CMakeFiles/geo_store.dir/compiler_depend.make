# Empty compiler generated dependencies file for geo_store.
# This may be replaced when dependencies are built.
