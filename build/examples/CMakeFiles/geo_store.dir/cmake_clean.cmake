file(REMOVE_RECURSE
  "CMakeFiles/geo_store.dir/geo_store.cpp.o"
  "CMakeFiles/geo_store.dir/geo_store.cpp.o.d"
  "geo_store"
  "geo_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
