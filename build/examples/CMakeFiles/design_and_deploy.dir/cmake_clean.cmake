file(REMOVE_RECURSE
  "CMakeFiles/design_and_deploy.dir/design_and_deploy.cpp.o"
  "CMakeFiles/design_and_deploy.dir/design_and_deploy.cpp.o.d"
  "design_and_deploy"
  "design_and_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_and_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
