# Empty compiler generated dependencies file for design_and_deploy.
# This may be replaced when dependencies are built.
