# Empty compiler generated dependencies file for threaded_store.
# This may be replaced when dependencies are built.
