file(REMOVE_RECURSE
  "CMakeFiles/threaded_store.dir/threaded_store.cpp.o"
  "CMakeFiles/threaded_store.dir/threaded_store.cpp.o.d"
  "threaded_store"
  "threaded_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
