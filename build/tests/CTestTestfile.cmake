# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gf_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/erasure_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/tag_test[1]_include.cmake")
include("/root/repo/build/tests/causalec_test[1]_include.cmake")
include("/root/repo/build/tests/server_unit_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/grouped_store_test[1]_include.cmake")
include("/root/repo/build/tests/designer_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/erasure_property_test[1]_include.cmake")
include("/root/repo/build/tests/inqueue_liveness_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/threaded_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_integration_test[1]_include.cmake")
