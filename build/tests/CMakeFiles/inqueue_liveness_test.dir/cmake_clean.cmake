file(REMOVE_RECURSE
  "CMakeFiles/inqueue_liveness_test.dir/inqueue_liveness_test.cpp.o"
  "CMakeFiles/inqueue_liveness_test.dir/inqueue_liveness_test.cpp.o.d"
  "inqueue_liveness_test"
  "inqueue_liveness_test.pdb"
  "inqueue_liveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inqueue_liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
