# Empty compiler generated dependencies file for inqueue_liveness_test.
# This may be replaced when dependencies are built.
