# Empty compiler generated dependencies file for erasure_property_test.
# This may be replaced when dependencies are built.
