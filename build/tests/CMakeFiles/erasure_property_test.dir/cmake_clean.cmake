file(REMOVE_RECURSE
  "CMakeFiles/erasure_property_test.dir/erasure_property_test.cpp.o"
  "CMakeFiles/erasure_property_test.dir/erasure_property_test.cpp.o.d"
  "erasure_property_test"
  "erasure_property_test.pdb"
  "erasure_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erasure_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
