file(REMOVE_RECURSE
  "CMakeFiles/grouped_store_test.dir/grouped_store_test.cpp.o"
  "CMakeFiles/grouped_store_test.dir/grouped_store_test.cpp.o.d"
  "grouped_store_test"
  "grouped_store_test.pdb"
  "grouped_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
