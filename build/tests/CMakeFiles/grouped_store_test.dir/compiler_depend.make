# Empty compiler generated dependencies file for grouped_store_test.
# This may be replaced when dependencies are built.
