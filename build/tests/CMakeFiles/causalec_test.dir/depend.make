# Empty dependencies file for causalec_test.
# This may be replaced when dependencies are built.
