file(REMOVE_RECURSE
  "CMakeFiles/causalec_test.dir/causalec_test.cpp.o"
  "CMakeFiles/causalec_test.dir/causalec_test.cpp.o.d"
  "causalec_test"
  "causalec_test.pdb"
  "causalec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causalec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
