// E8 -- Microbenchmarks (google-benchmark): finite-field kernels, erasure
// encode/re-encode/decode, vector-clock and tag operations, and the
// CausalEC server fast paths.
#include <benchmark/benchmark.h>

#include <memory>

#include "causalec/cluster.h"
#include "causalec/history_list.h"
#include "causalec/tag.h"
#include "common/random.h"
#include "erasure/codes.h"
#include "gf/gf256.h"
#include "gf/prime_field.h"
#include "gf/vector_ops.h"
#include "sim/latency.h"
#include "workload/zipf.h"

namespace {

using namespace causalec;
using erasure::Value;

// ---------------------------------------------------------------------------
// Field kernels.
// ---------------------------------------------------------------------------

void BM_GF256_Mul(benchmark::State& state) {
  Rng rng(1);
  std::uint8_t a = 3, b = 7;
  for (auto _ : state) {
    a = gf::GF256::mul(a, b);
    b ^= 0x5A;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_GF256_Mul);

void BM_GF256_Axpy(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::uint8_t> dst(n, 1), src(n, 2);
  for (auto _ : state) {
    gf::axpy<gf::GF256>(std::span<std::uint8_t>(dst), 0x1D,
                        std::span<const std::uint8_t>(src));
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GF256_Axpy)->Arg(256)->Arg(4096)->Arg(65536);

void BM_F257_Axpy(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::uint32_t> dst(n, 1), src(n, 2);
  for (auto _ : state) {
    gf::axpy<gf::F257>(std::span<std::uint32_t>(dst), 29,
                       std::span<const std::uint32_t>(src));
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_F257_Axpy)->Arg(256)->Arg(4096);

// ---------------------------------------------------------------------------
// Erasure code operations (RS(6,4), 4 KiB values).
// ---------------------------------------------------------------------------

struct CodeFixture {
  erasure::CodePtr code = erasure::make_systematic_rs(6, 4, 4096);
  std::vector<Value> values;
  std::vector<erasure::Symbol> symbols;
  CodeFixture() {
    Rng rng(2);
    for (int i = 0; i < 4; ++i) {
      Value v(4096);
      for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
      values.push_back(std::move(v));
    }
    for (NodeId s = 0; s < 6; ++s) symbols.push_back(code->encode(s, values));
  }
};

void BM_RS_Encode(benchmark::State& state) {
  CodeFixture f;
  for (auto _ : state) {
    auto sym = f.code->encode(5, f.values);  // parity row: full work
    benchmark::DoNotOptimize(sym.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4 * 4096);
}
BENCHMARK(BM_RS_Encode);

void BM_RS_Reencode(benchmark::State& state) {
  CodeFixture f;
  auto sym = f.symbols[5];
  Value next(4096, 7);
  for (auto _ : state) {
    f.code->reencode(5, sym, 2, f.values[2], next);
    std::swap(f.values[2], next);
    benchmark::DoNotOptimize(sym.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_RS_Reencode);

void BM_RS_Decode(benchmark::State& state) {
  CodeFixture f;
  const std::vector<NodeId> servers = {2, 3, 4, 5};
  std::vector<erasure::Symbol> subset;
  for (NodeId s : servers) subset.push_back(f.symbols[s]);
  for (auto _ : state) {
    auto v = f.code->decode(0, servers, subset);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_RS_Decode);

// ---------------------------------------------------------------------------
// Vector clocks / tags / history lists.
// ---------------------------------------------------------------------------

void BM_VectorClock_Compare(benchmark::State& state) {
  const std::size_t n = state.range(0);
  VectorClock a(n), b(n);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, rng.next_below(100));
    b.set(i, rng.next_below(100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.leq(b));
    benchmark::DoNotOptimize(b.leq(a));
  }
}
BENCHMARK(BM_VectorClock_Compare)->Arg(6)->Arg(16)->Arg(64);

void BM_Tag_TotalOrder(benchmark::State& state) {
  Rng rng(4);
  std::vector<Tag> tags;
  for (int i = 0; i < 64; ++i) {
    VectorClock vc(8);
    for (std::size_t j = 0; j < 8; ++j) vc.set(j, rng.next_below(16));
    tags.emplace_back(vc, i);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tags[i % 64] < tags[(i + 17) % 64]);
    ++i;
  }
}
BENCHMARK(BM_Tag_TotalOrder);

void BM_HistoryList_InsertLookup(benchmark::State& state) {
  HistoryList list(6, 64);
  Rng rng(5);
  std::vector<Tag> tags;
  for (int i = 0; i < 256; ++i) {
    VectorClock vc(6);
    vc.set(0, i + 1);
    tags.emplace_back(vc, 1);
    list.insert(tags.back(), Value(64, static_cast<std::uint8_t>(i)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.lookup(tags[i % 256]));
    ++i;
  }
}
BENCHMARK(BM_HistoryList_InsertLookup);

// ---------------------------------------------------------------------------
// Server fast paths (zero-latency network).
// ---------------------------------------------------------------------------

void BM_Server_LocalWrite(benchmark::State& state) {
  Cluster cluster(erasure::make_systematic_rs(5, 3, 1024),
                  std::make_unique<sim::ConstantLatency>(0));
  Client& client = cluster.make_client(0);
  Value v(1024, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.write(0, v));
    // Drain same-timestamp propagation (zero-latency links) so queues stay
    // bounded; GC timers sit in the future and are untouched.
    cluster.sim().run_until(cluster.sim().now());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Server_LocalWrite);

void BM_Server_LocalRead(benchmark::State& state) {
  Cluster cluster(erasure::make_systematic_rs(5, 3, 1024),
                  std::make_unique<sim::ConstantLatency>(0));
  cluster.make_client(0).write(0, Value(1024, 1));
  cluster.settle();
  Client& reader = cluster.make_client(0);  // systematic server: local
  for (auto _ : state) {
    bool done = false;
    reader.read(0, [&done](const Value&, const Tag&, const VectorClock&) {
      done = true;
    });
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_Server_LocalRead);

void BM_Zipf_Next(benchmark::State& state) {
  workload::ZipfGenerator gen(1'000'000, 0.99, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_Zipf_Next);

}  // namespace

BENCHMARK_MAIN();
