// E8 -- Microbenchmarks (google-benchmark): finite-field kernels, erasure
// encode/re-encode/decode, vector-clock and tag operations, and the
// CausalEC server fast paths.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string_view>

#include "causalec/cluster.h"
#include "erasure/arena_pool.h"
#include "erasure/buffer.h"
#include "erasure/linear_code.h"
#include "gf/kernels.h"
#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "causalec/history_list.h"
#include "causalec/tag.h"
#include "common/random.h"
#include "erasure/codes.h"
#include "gf/gf256.h"
#include "gf/prime_field.h"
#include "gf/vector_ops.h"
#include "sim/latency.h"
#include "workload/zipf.h"

namespace {

using namespace causalec;
using erasure::Value;

// ---------------------------------------------------------------------------
// Field kernels.
// ---------------------------------------------------------------------------

void BM_GF256_Mul(benchmark::State& state) {
  Rng rng(1);
  std::uint8_t a = 3, b = 7;
  for (auto _ : state) {
    a = gf::GF256::mul(a, b);
    b ^= 0x5A;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_GF256_Mul);

void BM_GF256_Axpy(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::uint8_t> dst(n, 1), src(n, 2);
  for (auto _ : state) {
    gf::axpy<gf::GF256>(std::span<std::uint8_t>(dst), 0x1D,
                        std::span<const std::uint8_t>(src));
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GF256_Axpy)->Arg(256)->Arg(4096)->Arg(65536);

void BM_F257_Axpy(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::uint32_t> dst(n, 1), src(n, 2);
  for (auto _ : state) {
    gf::axpy<gf::F257>(std::span<std::uint32_t>(dst), 29,
                       std::span<const std::uint32_t>(src));
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_F257_Axpy)->Arg(256)->Arg(4096);

// ---------------------------------------------------------------------------
// Erasure code operations (RS(6,4), 4 KiB values).
// ---------------------------------------------------------------------------

struct CodeFixture {
  erasure::CodePtr code = erasure::make_systematic_rs(6, 4, 4096);
  std::vector<Value> values;
  std::vector<erasure::Symbol> symbols;
  CodeFixture() {
    Rng rng(2);
    for (int i = 0; i < 4; ++i) {
      Value v(4096);
      for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
      values.push_back(std::move(v));
    }
    for (NodeId s = 0; s < 6; ++s) symbols.push_back(code->encode(s, values));
  }
};

void BM_RS_Encode(benchmark::State& state) {
  CodeFixture f;
  for (auto _ : state) {
    auto sym = f.code->encode(5, f.values);  // parity row: full work
    benchmark::DoNotOptimize(sym.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4 * 4096);
}
BENCHMARK(BM_RS_Encode);

void BM_RS_Reencode(benchmark::State& state) {
  CodeFixture f;
  auto sym = f.symbols[5];
  Value next(4096, 7);
  for (auto _ : state) {
    f.code->reencode(5, sym, 2, f.values[2], next);
    std::swap(f.values[2], next);
    benchmark::DoNotOptimize(sym.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_RS_Reencode);

void BM_RS_Decode(benchmark::State& state) {
  CodeFixture f;
  const std::vector<NodeId> servers = {2, 3, 4, 5};
  std::vector<erasure::Symbol> subset;
  for (NodeId s : servers) subset.push_back(f.symbols[s]);
  for (auto _ : state) {
    auto v = f.code->decode(0, servers, subset);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_RS_Decode);

// ---------------------------------------------------------------------------
// Vector clocks / tags / history lists.
// ---------------------------------------------------------------------------

void BM_VectorClock_Compare(benchmark::State& state) {
  const std::size_t n = state.range(0);
  VectorClock a(n), b(n);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, rng.next_below(100));
    b.set(i, rng.next_below(100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.leq(b));
    benchmark::DoNotOptimize(b.leq(a));
  }
}
BENCHMARK(BM_VectorClock_Compare)->Arg(6)->Arg(16)->Arg(64);

void BM_Tag_TotalOrder(benchmark::State& state) {
  Rng rng(4);
  std::vector<Tag> tags;
  for (int i = 0; i < 64; ++i) {
    VectorClock vc(8);
    for (std::size_t j = 0; j < 8; ++j) vc.set(j, rng.next_below(16));
    tags.emplace_back(vc, i);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tags[i % 64] < tags[(i + 17) % 64]);
    ++i;
  }
}
BENCHMARK(BM_Tag_TotalOrder);

void BM_HistoryList_InsertLookup(benchmark::State& state) {
  HistoryList list(6, 64);
  Rng rng(5);
  std::vector<Tag> tags;
  for (int i = 0; i < 256; ++i) {
    VectorClock vc(6);
    vc.set(0, i + 1);
    tags.emplace_back(vc, 1);
    list.insert(tags.back(), Value(64, static_cast<std::uint8_t>(i)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.lookup(tags[i % 256]));
    ++i;
  }
}
BENCHMARK(BM_HistoryList_InsertLookup);

// ---------------------------------------------------------------------------
// Server fast paths (zero-latency network).
// ---------------------------------------------------------------------------

void BM_Server_LocalWrite(benchmark::State& state) {
  Cluster cluster(erasure::make_systematic_rs(5, 3, 1024),
                  std::make_unique<sim::ConstantLatency>(0));
  Client& client = cluster.make_client(0);
  Value v(1024, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.write(0, v));
    // Drain same-timestamp propagation (zero-latency links) so queues stay
    // bounded; GC timers sit in the future and are untouched.
    cluster.sim().run_until(cluster.sim().now());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Server_LocalWrite);

void BM_Server_LocalRead(benchmark::State& state) {
  Cluster cluster(erasure::make_systematic_rs(5, 3, 1024),
                  std::make_unique<sim::ConstantLatency>(0));
  cluster.make_client(0).write(0, Value(1024, 1));
  cluster.settle();
  Client& reader = cluster.make_client(0);  // systematic server: local
  for (auto _ : state) {
    bool done = false;
    reader.read(0, [&done](const Value&, const Tag&, const VectorClock&) {
      done = true;
    });
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_Server_LocalRead);

void BM_Zipf_Next(benchmark::State& state) {
  workload::ZipfGenerator gen(1'000'000, 0.99, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_Zipf_Next);

// ---------------------------------------------------------------------------
// --kernels: the GF kernel-tier microbench. Measures MB/s of mul_region /
// axpy_region per (field, block size, dispatch tier), the speedup of each
// tier over the scalar reference, and the decoder-plan cache effect on
// RS(6,4) decode; emits BENCH_kernels.json (schema causalec-bench-v1).
// The committed baseline bench/baselines/BENCH_kernels.baseline.json pins
// conservative speedup floors, enforced by the kernel_bench_smoke ctest.
// ---------------------------------------------------------------------------

/// Wall-clock MB/s of `body` (called repeatedly), growing the iteration
/// count until the measurement window is at least `min_seconds`.
template <typename Body>
double measure_mb_per_s(Body&& body, std::size_t bytes_per_iter,
                        double min_seconds) {
  using clock = std::chrono::steady_clock;
  body();  // warm up tables and caches
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    const double secs =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (secs >= min_seconds) {
      return static_cast<double>(bytes_per_iter) * static_cast<double>(iters) /
             secs / 1e6;
    }
    iters = secs <= 1e-9
                ? iters * 10
                : std::max(iters * 2,
                           static_cast<std::size_t>(
                               static_cast<double>(iters) * min_seconds /
                               secs * 1.2));
  }
}

int run_kernel_bench(bool smoke) {
  namespace kn = gf::kernels;
  const double min_seconds = smoke ? 0.005 : 0.05;
  const std::size_t sizes[] = {1024, 4096, 65536};

  obs::BenchReport report("kernels");
  report.set_config("smoke", smoke);
  report.set_config("active_tier", kn::tier_name(kn::active_tier()));
  report.set_config("cpu_ssse3", kn::cpu_features().ssse3);
  report.set_config("cpu_avx2", kn::cpu_features().avx2);
  report.set_config("cpu_gfni_avx512", kn::cpu_features().gfni_avx512);
  report.set_config("gf256_table_threshold", kn::kGf256TableThreshold);

  struct Op {
    const char* name;
    void (*run)(std::uint8_t*, const std::uint8_t*, std::size_t);
  };
  const Op ops[] = {
      {"mul",
       [](std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
         kn::mul_region_gf256(dst, src, 0x1D, n);
       }},
      {"axpy",
       [](std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
         kn::axpy_region_gf256(dst, 0x1D, src, n);
       }},
  };

  Rng rng(11);
  for (const Op& op : ops) {
    for (const std::size_t n : sizes) {
      std::vector<std::uint8_t> dst(n), src(n);
      for (auto& b : dst) b = static_cast<std::uint8_t>(rng.next_u64());
      for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_u64());
      double scalar_mb_per_s = 0;
      double best_mb_per_s = 0;
      kn::Tier best_tier = kn::Tier::kScalar;
      for (int t = 0; t < kn::kNumTiers; ++t) {
        const auto tier = static_cast<kn::Tier>(t);
        if (!kn::tier_available(tier)) continue;
        kn::ScopedTierForTesting guard(tier);
        const double mb_per_s = measure_mb_per_s(
            [&] {
              op.run(dst.data(), src.data(), n);
              benchmark::DoNotOptimize(dst.data());
            },
            n, min_seconds);
        if (tier == kn::Tier::kScalar) scalar_mb_per_s = mb_per_s;
        if (mb_per_s > best_mb_per_s) {
          best_mb_per_s = mb_per_s;
          best_tier = tier;
        }
        auto& row = report.add_row(std::string(op.name) + "/gf256/" +
                                   std::to_string(n) + "/" +
                                   kn::tier_name(tier));
        row.metric("mb_per_s", mb_per_s);
        row.metric("speedup_vs_scalar", mb_per_s / scalar_mb_per_s);
      }
      auto& best = report.add_row(std::string("best/") + op.name + "/gf256/" +
                                  std::to_string(n));
      best.metric("mb_per_s", best_mb_per_s);
      best.metric("speedup_vs_scalar", best_mb_per_s / scalar_mb_per_s);
      best.note("tier", kn::tier_name(best_tier));
    }
  }

  // Fused multi-term axpy (the batched re-encode primitive): dst accumulates
  // kBatchTerms coefficient*src products in one pass, vs. the same terms
  // applied as kBatchTerms sequential axpy calls at the *same* tier. The
  // fused win is pure dst-traffic savings (1 load+store per block instead of
  // kBatchTerms of each), so the ratio is machine-portable.
  {
    constexpr std::size_t kBatchTerms = 8;
    for (const std::size_t n : {4096ul, 65536ul}) {
      std::vector<std::uint8_t> dst(n);
      std::vector<std::vector<std::uint8_t>> srcs(
          kBatchTerms, std::vector<std::uint8_t>(n));
      std::vector<kn::BatchTerm> terms;
      for (auto& b : dst) b = static_cast<std::uint8_t>(rng.next_u64());
      for (auto& src : srcs) {
        for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_u64());
        std::uint8_t coeff = 0;
        while (coeff == 0) coeff = static_cast<std::uint8_t>(rng.next_u64());
        terms.push_back({coeff, src.data()});
      }
      double best_mb_per_s = 0;
      double best_speedup = 0;
      kn::Tier best_tier = kn::Tier::kScalar;
      for (int t = 0; t < kn::kNumTiers; ++t) {
        const auto tier = static_cast<kn::Tier>(t);
        if (!kn::tier_available(tier)) continue;
        kn::ScopedTierForTesting guard(tier);
        const double seq_mb_per_s = measure_mb_per_s(
            [&] {
              for (const kn::BatchTerm& term : terms) {
                kn::axpy_region_gf256(dst.data(), term.coeff, term.src, n);
              }
              benchmark::DoNotOptimize(dst.data());
            },
            kBatchTerms * n, min_seconds);
        const double fused_mb_per_s = measure_mb_per_s(
            [&] {
              kn::axpy_batch_gf256(dst.data(), terms, n);
              benchmark::DoNotOptimize(dst.data());
            },
            kBatchTerms * n, min_seconds);
        auto& row = report.add_row("axpy_batch8/gf256/" + std::to_string(n) +
                                   "/" + kn::tier_name(tier));
        row.metric("mb_per_s", fused_mb_per_s);
        row.metric("speedup_vs_sequential", fused_mb_per_s / seq_mb_per_s);
        if (fused_mb_per_s > best_mb_per_s) {
          best_mb_per_s = fused_mb_per_s;
          best_speedup = fused_mb_per_s / seq_mb_per_s;
          best_tier = tier;
        }
      }
      auto& best =
          report.add_row("best/axpy_batch8/gf256/" + std::to_string(n));
      best.metric("mb_per_s", best_mb_per_s);
      best.metric("speedup_vs_sequential", best_speedup);
      best.note("tier", kn::tier_name(best_tier));
    }
  }

  // Arena recycling: payload-sized Buffer alloc/release cycles with a
  // shard-local BufferPool installed. After warm-up the single live buffer
  // ping-pongs through one free-list slot, so the recycle rate is ~1.0 and
  // any drop means the pool stopped serving the data path.
  {
    constexpr std::size_t kPayload = 4096;
    erasure::BufferPool pool;
    erasure::BufferPool::ScopedInstall installed(pool);
    for (int i = 0; i < 64; ++i) {
      auto b = erasure::Buffer::alloc(kPayload);
      benchmark::DoNotOptimize(b.data());
    }
    const auto before = pool.counters();
    const double mb_per_s = measure_mb_per_s(
        [&] {
          auto b = erasure::Buffer::alloc(kPayload);
          benchmark::DoNotOptimize(b.data());
        },
        kPayload, min_seconds);
    const auto after = pool.counters();
    const double fresh = static_cast<double>(after.fresh - before.fresh);
    const double recycled =
        static_cast<double>(after.recycled - before.recycled);
    auto& row = report.add_row("alloc/pool/" + std::to_string(kPayload));
    row.metric("mb_per_s", mb_per_s);
    row.metric("recycle_rate",
               recycled > 0 ? recycled / (recycled + fresh) : 0.0);
  }

  // F257 axpy for scale: the odd-characteristic path has no SIMD tier, so
  // one elementwise row per size keeps the field dimension in the artifact.
  for (const std::size_t n : {1024ul, 65536ul}) {
    const std::size_t elems = n / sizeof(std::uint32_t);
    std::vector<std::uint32_t> dst(elems), src(elems);
    for (auto& x : dst) x = gf::F257::from_int(rng.next_u64());
    for (auto& x : src) x = gf::F257::from_int(rng.next_u64());
    const double mb_per_s = measure_mb_per_s(
        [&] {
          gf::axpy<gf::F257>(std::span<std::uint32_t>(dst), 29,
                             std::span<const std::uint32_t>(src));
          benchmark::DoNotOptimize(dst.data());
        },
        n, min_seconds);
    auto& row =
        report.add_row("axpy/f257/" + std::to_string(n) + "/elementwise");
    row.metric("mb_per_s", mb_per_s);
  }

  // Decoder-plan cache: RS(6,4) decode of one 4 KiB object with all decode
  // shapes repeating -- the steady state of a store. `cached` reuses plans,
  // `fresh` runs Gaussian elimination per decode (cache disabled).
  {
    using Code256 = erasure::LinearCodeT<gf::GF256>;
    CodeFixture f;
    const std::vector<NodeId> servers = {2, 3, 4, 5};
    std::vector<erasure::Symbol> subset;
    for (const NodeId s : servers) subset.push_back(f.symbols[s]);
    const auto concrete =
        std::dynamic_pointer_cast<const Code256>(f.code);
    for (const bool cached : {true, false}) {
      concrete->set_plan_cache_enabled(cached);
      ObjectId obj = 0;
      const double mb_per_s = measure_mb_per_s(
          [&] {
            auto v = f.code->decode(obj, servers, subset);
            obj = (obj + 1) % 4;
            benchmark::DoNotOptimize(v.data());
          },
          4096, min_seconds);
      auto& row = report.add_row(cached ? "decode/rs_6_4/4096/plan_cache"
                                        : "decode/rs_6_4/4096/fresh_elim");
      row.metric("mb_per_s", mb_per_s);
    }
    concrete->set_plan_cache_enabled(true);
  }

  // Hit-rate row on a fresh code with a fixed decode count, so the value
  // is deterministic (the timed loops above run machine-dependent
  // iteration counts, which would make this a flaky regression gate).
  {
    CodeFixture f;
    const std::vector<NodeId> servers = {2, 3, 4, 5};
    std::vector<erasure::Symbol> subset;
    for (const NodeId s : servers) subset.push_back(f.symbols[s]);
    for (int rep = 0; rep < 50; ++rep) {
      for (ObjectId obj = 0; obj < 4; ++obj) {
        auto v = f.code->decode(obj, servers, subset);
        benchmark::DoNotOptimize(v.data());
      }
    }
    const auto stats = f.code->decode_plan_cache_stats();
    auto& row = report.add_row("plan_cache/rs_6_4");
    row.metric("hits", static_cast<double>(stats.hits));
    row.metric("misses", static_cast<double>(stats.misses));
    row.metric("entries", static_cast<double>(stats.entries));
    row.metric("hit_rate", stats.hit_rate());  // 196/200 = 0.98, exact
  }

  return report.write_default().empty() ? 1 : 0;
}

// ---------------------------------------------------------------------------
// --obs: observability overhead. Runs the same simulated workload under
// three configurations -- all observability off, flight recorder only
// (the always-on production default), and flight + tracer + metrics -- and
// emits BENCH_obs.json with wall-clock ops/s per configuration plus the
// ratios. The committed baseline bench/baselines/BENCH_obs.baseline.json
// pins flight_vs_off at 0.95, so the obs_bench_smoke ctest fails when the
// flight recorder costs more than 5% of throughput.
// ---------------------------------------------------------------------------

struct ObsBenchMode {
  const char* name;
  bool flight;
  bool full;  // tracer + metrics on top
};

/// Wall-clock ops/s of one workload run under `mode`.
double obs_bench_run(const ObsBenchMode& mode, int ops) {
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  ClusterConfig config;
  config.seed = 7;
  config.server.flight_recorder = mode.flight;
  if (mode.full) {
    config.obs.metrics = &metrics;
    config.obs.tracer = &tracer;
  }
  Cluster cluster(erasure::make_paper_5_3(1024),
                  std::make_unique<sim::ConstantLatency>(sim::kMillisecond),
                  config);
  const std::size_t objects = cluster.code().num_objects();
  std::vector<Client*> clients;
  for (NodeId s = 0; s < cluster.num_servers(); ++s) {
    clients.push_back(&cluster.make_client(s));
  }
  Rng rng(13);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    Client& client = *clients[rng.next_u64() % clients.size()];
    const ObjectId object = static_cast<ObjectId>(rng.next_u64() % objects);
    if (rng.next_u64() % 2 == 0) {
      client.write(object, Value(1024, static_cast<std::uint8_t>(i)));
    } else {
      client.read(object, [](const Value&, const Tag&,
                             const VectorClock&) {});
    }
    cluster.run_for(sim::kMillisecond / 2);
  }
  cluster.settle();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(ops) / secs;
}

int run_obs_bench(bool smoke) {
  const int ops = smoke ? 600 : 6000;
  const int reps = smoke ? 3 : 5;
  const ObsBenchMode modes[] = {
      {"tracing_off", false, false},
      {"flight_on", true, false},
      {"full_tracing", true, true},
  };

  obs::BenchReport report("obs");
  report.set_config("smoke", smoke);
  report.set_config("ops", ops);
  report.set_config("reps", reps);

  // Best-of-reps per mode: the ratio gate below must measure the recorder,
  // not scheduler noise, and max is the standard noise-floor estimator.
  double best[3] = {0, 0, 0};
  for (int r = 0; r < reps; ++r) {
    for (int m = 0; m < 3; ++m) {
      best[m] = std::max(best[m], obs_bench_run(modes[m], ops));
    }
  }
  for (int m = 0; m < 3; ++m) {
    report.add_row(modes[m].name).metric("ops_per_s", best[m]);
  }
  auto& overhead = report.add_row("overhead");
  overhead.metric("flight_vs_off", best[1] / best[0]);
  overhead.metric("full_vs_off", best[2] / best[0]);

  return report.write_default().empty() ? 1 : 0;
}

// ---------------------------------------------------------------------------
// --repair: repair-plan traffic and degraded-read latency per code shape
// (DESIGN.md §5.4, EXPERIMENTS.md E13). For each of RS(6,4), Azure-
// LRC(6,2,2) and wide RS(14,10) the planner's single-data-failure summary
// is emitted (fetched rows/bytes vs the full-decode baseline -- exact,
// machine-independent integers), plus wall-clock MB/s of executing the
// minimal and full-decode symbol repairs and of a degraded object read
// through the plan's helper set. BENCH_repair.json's committed baseline
// (bench/baselines/BENCH_repair.baseline.json, MAX_REGRESSION=0.0) pins
// the traffic ratios: LRC local-group repair must stay at half the rows of
// its full decode and strictly under RS(6,4)'s full-decode bytes, and the
// MDS wide stripe must keep degenerating to full decode exactly.
// ---------------------------------------------------------------------------

int run_repair_bench(bool smoke) {
  using Code256 = erasure::LinearCodeT<gf::GF256>;
  const double min_seconds = smoke ? 0.005 : 0.05;
  constexpr std::size_t kB = 4096;

  obs::BenchReport report("repair");
  report.set_config("smoke", smoke);
  report.set_config("value_bytes", static_cast<std::uint64_t>(kB));
  report.set_config("active_tier",
                    gf::kernels::tier_name(gf::kernels::active_tier()));

  struct Shape {
    const char* name;
    erasure::CodePtr code;
  };
  const Shape shapes[] = {
      {"rs_6_4", erasure::make_systematic_rs(6, 4, kB)},
      {"azure_lrc_6_2_2", erasure::make_azure_lrc_6_2_2(kB)},
      {"rs_14_10", erasure::make_wide_rs_14_10(kB)},
  };

  double lrc_repair_bytes = 0;
  double rs64_full_decode_bytes = 0;
  for (const Shape& shape : shapes) {
    const auto code = std::dynamic_pointer_cast<const Code256>(shape.code);
    const std::size_t n = code->num_servers();
    const std::size_t k = code->num_objects();
    const NodeId failed = 0;  // systematic data server in every shape

    Rng rng(13);
    std::vector<Value> values;
    for (std::size_t i = 0; i < k; ++i) {
      Value v(kB);
      for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
      values.push_back(std::move(v));
    }
    std::vector<erasure::Symbol> symbols;
    for (NodeId s = 0; s < n; ++s) symbols.push_back(code->encode(s, values));

    // Planner traffic summary: exact integers, the regression gate.
    const auto summary = code->plan_symbol_repair(failed, 1u << failed);
    auto& traffic =
        report.add_row(std::string("repair/") + shape.name +
                       "/single_data_failure");
    traffic.metric("repair_rows", static_cast<double>(summary->fetch_rows));
    traffic.metric("repair_bytes", static_cast<double>(summary->fetch_bytes));
    traffic.metric("full_decode_rows",
                   static_cast<double>(summary->full_decode_rows));
    traffic.metric("full_decode_bytes",
                   static_cast<double>(summary->full_decode_bytes));
    traffic.metric("fetch_savings",
                   static_cast<double>(summary->full_decode_rows) /
                       static_cast<double>(summary->fetch_rows));
    if (std::string_view(shape.name) == "azure_lrc_6_2_2") {
      lrc_repair_bytes = static_cast<double>(summary->fetch_bytes);
    }
    if (std::string_view(shape.name) == "rs_6_4") {
      rs64_full_decode_bytes =
          static_cast<double>(summary->full_decode_bytes);
    }

    // Execute the symbol repair through both strategies: wall-clock MB/s
    // of rebuilding the failed server's symbol from helper symbols.
    for (const auto strategy : {erasure::RepairStrategy::kMinimalFetch,
                                erasure::RepairStrategy::kFullDecode}) {
      const auto plan =
          code->symbol_repair_plan(failed, 1u << failed, strategy);
      std::vector<NodeId> helpers;
      std::vector<erasure::Symbol> helper_symbols;
      for (NodeId s = 0; s < n; ++s) {
        if (plan->helper_mask >> s & 1) {
          helpers.push_back(s);
          helper_symbols.push_back(symbols[s]);
        }
      }
      const double mb_per_s = measure_mb_per_s(
          [&] {
            auto out = code->apply_repair_plan(*plan, failed, helpers,
                                               helper_symbols);
            benchmark::DoNotOptimize(out.data());
          },
          kB, min_seconds);
      auto& row = report.add_row(
          std::string("repair_exec/") + shape.name + "/" +
          (strategy == erasure::RepairStrategy::kMinimalFetch
               ? "minimal"
               : "full_decode"));
      row.metric("mb_per_s", mb_per_s);
      row.metric("fetch_rows", static_cast<double>(plan->fetches.size()));
    }

    // Degraded read: object 0 served at the last server while `failed` is
    // down -- the plan names the helper fetches, decode() does the math.
    {
      const NodeId local = static_cast<NodeId>(n - 1);
      const auto plan = code->plan_object_repair(0, 1u << failed, local);
      std::vector<NodeId> helpers;
      std::vector<erasure::Symbol> helper_symbols;
      for (NodeId s = 0; s < n; ++s) {
        if (plan->helper_mask >> s & 1) {
          helpers.push_back(s);
          helper_symbols.push_back(symbols[s]);
        }
      }
      const double mb_per_s = measure_mb_per_s(
          [&] {
            auto v = code->decode(0, helpers, helper_symbols);
            benchmark::DoNotOptimize(v.data());
          },
          kB, min_seconds);
      auto& row =
          report.add_row(std::string("degraded_read/") + shape.name);
      row.metric("fetch_rows", static_cast<double>(plan->fetch_rows));
      row.metric("fetch_bytes", static_cast<double>(plan->fetch_bytes));
      row.metric("mb_per_s", mb_per_s);
    }
  }

  // The acceptance ratio: an LRC single-failure repair moves strictly
  // fewer bytes than an RS(6,4) full decode (4 rows vs 3 at equal B).
  auto& summary_row = report.add_row("summary/lrc_vs_rs64");
  summary_row.metric("lrc_repair_bytes", lrc_repair_bytes);
  summary_row.metric("rs64_full_decode_bytes", rs64_full_decode_bytes);
  summary_row.metric("rs64_full_over_lrc_repair",
                     rs64_full_decode_bytes / lrc_repair_bytes);

  return report.write_default().empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool kernels = false;
  bool obs_bench = false;
  bool repair_bench = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--kernels") kernels = true;
    if (std::string_view(argv[i]) == "--obs") obs_bench = true;
    if (std::string_view(argv[i]) == "--repair") repair_bench = true;
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  if (kernels) return run_kernel_bench(smoke);
  if (obs_bench) return run_obs_bench(smoke);
  if (repair_bench) return run_repair_bench(smoke);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
