// E2b -- The Sec. 1.1 Little's-law throughput argument, measured.
//
// The paper: "Due to Little's law, we use the average latency as a
// proportional estimate for the average throughput... the erasure coding
// based data store is likely to have a much lower throughput (66%) of the
// replication-based scheme" -- 88.25 / 132.5 = 0.666.
//
// We run identical closed-loop client populations (read-only, uniform over
// DCs and groups, zero think time) against all three designs on the Fig. 1
// network and report measured ops/s. With closed loops, throughput is
// sessions / avg-latency, so the measured ratios reproduce the claim
// directly from live executions.
#include <cstdio>
#include <functional>
#include <memory>

#include "baselines/intra_object_store.h"
#include "baselines/replicated_store.h"
#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "placement/rtt_matrix.h"
#include "sim/latency.h"
#include "workload/driver.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr std::size_t kValueBytes = 1024;
constexpr std::size_t kGroups = 4;
constexpr std::size_t kDcs = 6;
constexpr SimTime kRunFor = 60 * kSecond;
constexpr int kSessionsPerDc = 4;

struct Throughput {
  double ops_per_s = 0;
  double avg_read_ms = 0;
};

Throughput drive(sim::Simulation& sim,
                 const std::function<void(NodeId, ObjectId,
                                          std::function<void()>)>& read) {
  workload::OpMix mix;
  mix.write_fraction = 0.0;  // read-only: the latency-vs-throughput claim
  auto picker = std::make_shared<workload::KeyPicker>(kGroups, 0.0, 11);
  // Near-zero think time: sessions are always busy.
  workload::ClosedLoopDriver driver(&sim, mix, picker, /*think_rate_hz=*/1e5,
                                    13);
  for (NodeId dc = 0; dc < kDcs; ++dc) {
    for (int c = 0; c < kSessionsPerDc; ++c) {
      workload::ClosedLoopDriver::Session session;
      session.issue_write = [](ObjectId, std::function<void()> done) {
        done();
      };
      session.issue_read = [&read, dc](ObjectId g,
                                       std::function<void()> done) {
        read(dc, g, std::move(done));
      };
      driver.add_session(std::move(session));
    }
  }
  const SimTime start = sim.now();
  driver.start(start + kRunFor);
  sim.run_until(start + kRunFor + 10 * kSecond);
  Throughput out;
  const auto& stats = driver.stats();
  out.ops_per_s = static_cast<double>(stats.read_latencies.size()) /
                  (static_cast<double>(kRunFor) / 1e9);
  out.avg_read_ms = workload::DriverStats::mean_ms(stats.read_latencies);
  return out;
}

Throughput run_partial() {
  sim::Simulation sim(
      sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms()), 1);
  baselines::ReplicatedStoreConfig config;
  config.num_objects = kGroups;
  config.value_bytes = kValueBytes;
  config.placement = {{0}, {1}, {0}, {1}, {3}, {2}};
  config.rtt_ms = placement::six_dc_rtt_ms();
  baselines::ReplicatedStore store(&sim, std::move(config));
  for (ObjectId g = 0; g < kGroups; ++g) {
    store.write(g % kDcs, g, Value(kValueBytes, 1));
  }
  sim.run_until_idle();
  return drive(sim, [&](NodeId dc, ObjectId g, std::function<void()> done) {
    store.read(dc, g, [done](const Value&, const Tag&) { done(); });
  });
}

Throughput run_intra() {
  sim::Simulation sim(
      sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms()), 1);
  baselines::IntraObjectStoreConfig config;
  config.num_servers = kDcs;
  config.num_objects = kGroups;
  config.value_bytes = kValueBytes;
  config.k = 4;
  config.rtt_ms = placement::six_dc_rtt_ms();
  baselines::IntraObjectStore store(&sim, std::move(config));
  for (ObjectId g = 0; g < kGroups; ++g) {
    store.write(g % kDcs, g, Value(kValueBytes, 1));
  }
  sim.run_until_idle();
  return drive(sim, [&](NodeId dc, ObjectId g, std::function<void()> done) {
    store.read(dc, g, [done](const Value&, const Tag&) { done(); });
  });
}

Throughput run_causalec() {
  ClusterConfig config;
  config.gc_period = 500 * kMillisecond;
  config.server.fanout = ReadFanout::kNearestRecoverySet;
  config.proximity_matrix = placement::six_dc_rtt_ms();
  auto cluster = std::make_unique<Cluster>(
      erasure::make_six_dc_cross_object(kValueBytes),
      sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms()), config);
  for (ObjectId g = 0; g < kGroups; ++g) {
    cluster->make_client(g % kDcs).write(g, Value(kValueBytes, 1));
  }
  cluster->settle();
  auto result = drive(
      cluster->sim(),
      [c = cluster.get()](NodeId dc, ObjectId g, std::function<void()> done) {
        c->make_client(dc).read(
            g,
            [done](const Value&, const Tag&, const VectorClock&) { done(); });
      });
  (void)cluster.release();  // bench exits immediately after
  return result;
}

}  // namespace

int main() {
  std::printf("E2b: Little's-law throughput (Sec. 1.1) -- %d closed-loop "
              "read sessions per DC, 60 s\n\n", kSessionsPerDc);
  std::printf("%-24s %12s %12s %14s\n", "scheme", "ops/s", "avg ms",
              "vs partial");
  const Throughput partial = run_partial();
  const Throughput intra = run_intra();
  const Throughput cross = run_causalec();
  std::printf("%-24s %12.1f %12.2f %13.0f%%\n", "partial replication",
              partial.ops_per_s, partial.avg_read_ms, 100.0);
  std::printf("%-24s %12.1f %12.2f %13.0f%%\n", "intra-object RS(6,4)",
              intra.ops_per_s, intra.avg_read_ms,
              100.0 * intra.ops_per_s / partial.ops_per_s);
  std::printf("%-24s %12.1f %12.2f %13.0f%%\n", "cross-object CausalEC",
              cross.ops_per_s, cross.avg_read_ms,
              100.0 * cross.ops_per_s / partial.ops_per_s);

  obs::BenchReport report("throughput");
  report.set_config("value_bytes", kValueBytes);
  report.set_config("sessions_per_dc", kSessionsPerDc);
  report.set_config("run_for_s", static_cast<double>(kRunFor) / 1e9);
  const auto add = [&report, &partial](const char* name,
                                       const Throughput& t) {
    report.add_row(name)
        .metric("ops_per_s", t.ops_per_s)
        .metric("avg_read_ms", t.avg_read_ms)
        .metric("vs_partial", t.ops_per_s / partial.ops_per_s);
  };
  add("partial replication", partial);
  add("intra-object RS(6,4)", intra);
  add("cross-object CausalEC", cross);
  report.write_default();
  std::printf("\npaper: intra-object throughput ~66%% of replication "
              "(88.25/132.5); cross-object ~parity.\n");
  return 0;
}
