// E2b -- The Sec. 1.1 Little's-law throughput argument, measured.
//
// The paper: "Due to Little's law, we use the average latency as a
// proportional estimate for the average throughput... the erasure coding
// based data store is likely to have a much lower throughput (66%) of the
// replication-based scheme" -- 88.25 / 132.5 = 0.666.
//
// We run identical closed-loop client populations (read-only, uniform over
// DCs and groups, zero think time) against all three designs on the Fig. 1
// network and report measured ops/s. With closed loops, throughput is
// sessions / avg-latency, so the measured ratios reproduce the claim
// directly from live executions.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/intra_object_store.h"
#include "baselines/replicated_store.h"
#include "causalec/cluster.h"
#include "erasure/buffer.h"
#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "placement/rtt_matrix.h"
#include "runtime/threaded_cluster.h"
#include "sim/latency.h"
#include "workload/driver.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr std::size_t kValueBytes = 1024;
constexpr std::size_t kGroups = 4;
constexpr std::size_t kDcs = 6;
constexpr SimTime kRunFor = 60 * kSecond;
constexpr int kSessionsPerDc = 4;

struct Throughput {
  double ops_per_s = 0;
  double avg_read_ms = 0;
};

Throughput drive(sim::Simulation& sim,
                 const std::function<void(NodeId, ObjectId,
                                          std::function<void()>)>& read) {
  workload::OpMix mix;
  mix.write_fraction = 0.0;  // read-only: the latency-vs-throughput claim
  auto picker = std::make_shared<workload::KeyPicker>(kGroups, 0.0, 11);
  // Near-zero think time: sessions are always busy.
  workload::ClosedLoopDriver driver(&sim, mix, picker, /*think_rate_hz=*/1e5,
                                    13);
  for (NodeId dc = 0; dc < kDcs; ++dc) {
    for (int c = 0; c < kSessionsPerDc; ++c) {
      workload::ClosedLoopDriver::Session session;
      session.issue_write = [](ObjectId, std::function<void()> done) {
        done();
      };
      session.issue_read = [&read, dc](ObjectId g,
                                       std::function<void()> done) {
        read(dc, g, std::move(done));
      };
      driver.add_session(std::move(session));
    }
  }
  const SimTime start = sim.now();
  driver.start(start + kRunFor);
  sim.run_until(start + kRunFor + 10 * kSecond);
  Throughput out;
  const auto& stats = driver.stats();
  out.ops_per_s = static_cast<double>(stats.read_latencies.size()) /
                  (static_cast<double>(kRunFor) / 1e9);
  out.avg_read_ms = workload::DriverStats::mean_ms(stats.read_latencies);
  return out;
}

Throughput run_partial() {
  sim::Simulation sim(
      sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms()), 1);
  baselines::ReplicatedStoreConfig config;
  config.num_objects = kGroups;
  config.value_bytes = kValueBytes;
  config.placement = {{0}, {1}, {0}, {1}, {3}, {2}};
  config.rtt_ms = placement::six_dc_rtt_ms();
  baselines::ReplicatedStore store(&sim, std::move(config));
  for (ObjectId g = 0; g < kGroups; ++g) {
    store.write(g % kDcs, g, Value(kValueBytes, 1));
  }
  sim.run_until_idle();
  return drive(sim, [&](NodeId dc, ObjectId g, std::function<void()> done) {
    store.read(dc, g, [done](const Value&, const Tag&) { done(); });
  });
}

Throughput run_intra() {
  sim::Simulation sim(
      sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms()), 1);
  baselines::IntraObjectStoreConfig config;
  config.num_servers = kDcs;
  config.num_objects = kGroups;
  config.value_bytes = kValueBytes;
  config.k = 4;
  config.rtt_ms = placement::six_dc_rtt_ms();
  baselines::IntraObjectStore store(&sim, std::move(config));
  for (ObjectId g = 0; g < kGroups; ++g) {
    store.write(g % kDcs, g, Value(kValueBytes, 1));
  }
  sim.run_until_idle();
  return drive(sim, [&](NodeId dc, ObjectId g, std::function<void()> done) {
    store.read(dc, g, [done](const Value&, const Tag&) { done(); });
  });
}

Throughput run_causalec() {
  ClusterConfig config;
  config.gc_period = 500 * kMillisecond;
  config.server.fanout = ReadFanout::kNearestRecoverySet;
  config.proximity_matrix = placement::six_dc_rtt_ms();
  auto cluster = std::make_unique<Cluster>(
      erasure::make_six_dc_cross_object(kValueBytes),
      sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms()), config);
  for (ObjectId g = 0; g < kGroups; ++g) {
    cluster->make_client(g % kDcs).write(g, Value(kValueBytes, 1));
  }
  cluster->settle();
  auto result = drive(
      cluster->sim(),
      [c = cluster.get()](NodeId dc, ObjectId g, std::function<void()> done) {
        c->make_client(dc).read(
            g,
            [done](const Value&, const Tag&, const VectorClock&) { done(); });
      });
  (void)cluster.release();  // bench exits immediately after
  return result;
}

// ---------------------------------------------------------------------------
// --saturate: the threaded runtime under a multi-client closed loop.
//
// Unlike the simulated Little's-law runs above, this drives the real
// ThreadedCluster (one OS thread per server, codec bytes on every hop) with
// blocking clients on external threads, so the measured ops/s reflects the
// actual per-hop serialization / copy / mailbox cost of the data path.
// ---------------------------------------------------------------------------

constexpr std::size_t kSatValueBytes = 4096;

struct SaturateResult {
  double ops_per_s = 0;
  double writes_per_s = 0;
  double reads_per_s = 0;
  double seconds = 0;
  int clients = 0;
  double payload_allocs_per_op = 0;  // fresh Buffer arenas per operation
  double payload_alloc_mib_per_s = 0;
  double payload_recycle_rate = 0;  // pool hits / (pool hits + fresh arenas)
  // Headroom below the 1-malloc-per-op line (higher is better, so the
  // baseline gate can pin a floor on it): 1 - allocs/op, clamped at 0.
  double alloc_headroom = 0;
};

SaturateResult run_saturate(bool smoke) {
  using namespace std::chrono_literals;
  runtime::ThreadedClusterConfig config;
  config.gc_period = 10ms;
  config.serialize_messages = true;
  runtime::ThreadedCluster cluster(
      erasure::make_six_dc_cross_object(kSatValueBytes), config);
  const std::size_t n = cluster.num_servers();
  const auto num_objects = static_cast<ObjectId>(kGroups);
  const int clients = static_cast<int>(2 * n);
  const auto warmup = smoke ? 200ms : 500ms;
  const auto measure = smoke ? 1000ms : 4000ms;

  // Seed every object so reads never race an empty store.
  for (ObjectId g = 0; g < num_objects; ++g) {
    cluster.write(static_cast<NodeId>(g % n), /*client=*/1, g,
                  Value(kSatValueBytes, static_cast<std::uint8_t>(g + 1)));
  }
  cluster.await_convergence(5000ms);

  std::atomic<bool> counting{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      const NodeId at = static_cast<NodeId>(t % n);
      const ClientId client = 100 + static_cast<ClientId>(t);
      const auto object = static_cast<ObjectId>(t % num_objects);
      const Value payload(kSatValueBytes, static_cast<std::uint8_t>(t + 1));
      bool do_write = (t % 2) == 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (do_write) {
          cluster.write(at, client, object, payload);
          if (counting.load(std::memory_order_relaxed)) {
            writes.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          (void)cluster.read(at, client, object);
          if (counting.load(std::memory_order_relaxed)) {
            reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
        do_write = !do_write;
      }
    });
  }
  std::this_thread::sleep_for(warmup);
  const auto alloc_before = erasure::Buffer::alloc_stats();
  const auto start = std::chrono::steady_clock::now();
  counting.store(true);
  std::this_thread::sleep_for(measure);
  counting.store(false);
  const auto end = std::chrono::steady_clock::now();
  const auto alloc_after = erasure::Buffer::alloc_stats();
  stop.store(true);
  for (auto& th : threads) th.join();

  SaturateResult out;
  out.seconds = std::chrono::duration<double>(end - start).count();
  out.clients = clients;
  out.writes_per_s = static_cast<double>(writes.load()) / out.seconds;
  out.reads_per_s = static_cast<double>(reads.load()) / out.seconds;
  out.ops_per_s = out.writes_per_s + out.reads_per_s;
  const double ops = static_cast<double>(writes.load() + reads.load());
  if (ops > 0) {
    out.payload_allocs_per_op =
        static_cast<double>(alloc_after.allocations -
                            alloc_before.allocations) / ops;
  }
  out.alloc_headroom = std::max(0.0, 1.0 - out.payload_allocs_per_op);
  const double fresh = static_cast<double>(alloc_after.allocations -
                                           alloc_before.allocations);
  const double recycled =
      static_cast<double>(alloc_after.recycled - alloc_before.recycled);
  if (fresh + recycled > 0) {
    out.payload_recycle_rate = recycled / (fresh + recycled);
  }
  out.payload_alloc_mib_per_s =
      static_cast<double>(alloc_after.bytes - alloc_before.bytes) /
      (1024.0 * 1024.0) / out.seconds;
  return out;
}

int main_saturate(bool smoke) {
  std::printf("E2b --saturate: threaded runtime, %zu-byte values, "
              "closed-loop blocking clients (50/50 write/read)\n\n",
              kSatValueBytes);
  const SaturateResult r = run_saturate(smoke);
  std::printf("%-24s %12s %12s %12s %14s %14s %14s\n", "row", "ops/s",
              "writes/s", "reads/s", "allocs/op", "alloc MiB/s",
              "recycle rate");
  std::printf("%-24s %12.1f %12.1f %12.1f %14.2f %14.1f %14.3f\n", "saturate",
              r.ops_per_s, r.writes_per_s, r.reads_per_s,
              r.payload_allocs_per_op, r.payload_alloc_mib_per_s,
              r.payload_recycle_rate);

  obs::BenchReport report("throughput");
  report.set_config("mode", "saturate");
  report.set_config("smoke", smoke);
  report.set_config("value_bytes", kSatValueBytes);
  report.set_config("clients", r.clients);
  report.set_config("measured_s", r.seconds);
  report.add_row("saturate")
      .metric("ops_per_s", r.ops_per_s)
      .metric("writes_per_s", r.writes_per_s)
      .metric("reads_per_s", r.reads_per_s)
      .metric("payload_allocs_per_op", r.payload_allocs_per_op)
      .metric("payload_alloc_mib_per_s", r.payload_alloc_mib_per_s)
      .metric("payload_recycle_rate", r.payload_recycle_rate)
      .metric("alloc_headroom", r.alloc_headroom);
  report.write_default();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool saturate = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--saturate") == 0) saturate = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (saturate) return main_saturate(smoke);
  std::printf("E2b: Little's-law throughput (Sec. 1.1) -- %d closed-loop "
              "read sessions per DC, 60 s\n\n", kSessionsPerDc);
  std::printf("%-24s %12s %12s %14s\n", "scheme", "ops/s", "avg ms",
              "vs partial");
  const Throughput partial = run_partial();
  const Throughput intra = run_intra();
  const Throughput cross = run_causalec();
  std::printf("%-24s %12.1f %12.2f %13.0f%%\n", "partial replication",
              partial.ops_per_s, partial.avg_read_ms, 100.0);
  std::printf("%-24s %12.1f %12.2f %13.0f%%\n", "intra-object RS(6,4)",
              intra.ops_per_s, intra.avg_read_ms,
              100.0 * intra.ops_per_s / partial.ops_per_s);
  std::printf("%-24s %12.1f %12.2f %13.0f%%\n", "cross-object CausalEC",
              cross.ops_per_s, cross.avg_read_ms,
              100.0 * cross.ops_per_s / partial.ops_per_s);

  obs::BenchReport report("throughput");
  report.set_config("value_bytes", kValueBytes);
  report.set_config("sessions_per_dc", kSessionsPerDc);
  report.set_config("run_for_s", static_cast<double>(kRunFor) / 1e9);
  const auto add = [&report, &partial](const char* name,
                                       const Throughput& t) {
    report.add_row(name)
        .metric("ops_per_s", t.ops_per_s)
        .metric("avg_read_ms", t.avg_read_ms)
        .metric("vs_partial", t.ops_per_s / partial.ops_per_s);
  };
  add("partial replication", partial);
  add("intra-object RS(6,4)", intra);
  add("cross-object CausalEC", cross);
  report.write_default();
  std::printf("\npaper: intra-object throughput ~66%% of replication "
              "(88.25/132.5); cross-object ~parity.\n");
  return 0;
}
