// E3 -- Sec. 4.2 communication costs, measured on live executions.
//
// Paper's formulas (low-cost variant, RS(N,k), L updates/server, value B):
//   read  : O(k)B + O(k^2 log L)        (k inquiries/responses, k tags each)
//   write : O(N)B + O(k)B + O(k^2 log L) + O(N log L)
//           (app broadcast + internal-read re-encoding + del messages)
//
// We sweep N, k, B and both metadata modes (vector clocks vs. the paper's
// Lamport-scalar accounting) and report measured bytes per operation, the
// value-traffic multiple of B, and the formula's value-term prediction.
#include <cstdio>
#include <memory>

#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "sim/latency.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Result {
  double read_bytes = 0;
  double write_bytes = 0;
};

Result run(std::size_t n, std::size_t k, std::size_t value_bytes,
           MetadataMode metadata) {
  ClusterConfig config;
  config.gc_period = 50 * kMillisecond;
  config.server.metadata = metadata;
  config.server.fanout = ReadFanout::kNearestRecoverySet;
  auto cluster = std::make_unique<Cluster>(
      erasure::make_systematic_rs(n, k, value_bytes),
      std::make_unique<sim::ConstantLatency>(5 * kMillisecond), config);

  // Seed all objects and converge so reads must use the coded path.
  for (ObjectId x = 0; x < k; ++x) {
    cluster->make_client(x % n).write(x, Value(value_bytes, 1));
  }
  cluster->settle();

  // --- Reads from a parity server (never local). -------------------------
  const NodeId parity = static_cast<NodeId>(n - 1);
  cluster->sim().stats().reset();
  constexpr int kReads = 40;
  for (int i = 0; i < kReads; ++i) {
    bool done = false;
    cluster->make_client(parity).read(
        static_cast<ObjectId>(i % k),
        [&done](const Value&, const Tag&, const VectorClock&) {
          done = true;
        });
    cluster->run_for(kSecond);
    CEC_CHECK(done);
  }
  Result result;
  result.read_bytes =
      static_cast<double>(cluster->sim().stats().total_bytes) / kReads;

  // --- Writes (cost includes app broadcast, re-encode, GC dels). ---------
  cluster->settle();
  cluster->sim().stats().reset();
  constexpr int kWrites = 40;
  for (int i = 0; i < kWrites; ++i) {
    cluster->make_client(i % n).write(
        static_cast<ObjectId>(i % k),
        Value(value_bytes, static_cast<std::uint8_t>(i)));
    cluster->run_for(500 * kMillisecond);
  }
  cluster->settle();
  result.write_bytes =
      static_cast<double>(cluster->sim().stats().total_bytes) / kWrites;
  return result;
}

const char* mode_name(MetadataMode mode) {
  return mode == MetadataMode::kLamport ? "lamport" : "vector";
}

}  // namespace

int main() {
  std::printf("E3: Sec. 4.2 communication costs (measured bytes per "
              "operation)\n\n");
  std::printf("%4s %3s %6s %8s | %12s %9s %8s | %12s %9s %9s\n", "N", "k",
              "B", "metadata", "read bytes", "read/B", "~(k-1)B",
              "write bytes", "write/B", "~(N-1)B");

  obs::BenchReport report("comm_cost");
  report.set_config("reads", 40);
  report.set_config("writes", 40);

  const std::size_t kValueB = 1024;
  for (auto [n, k] : {std::pair<std::size_t, std::size_t>{5, 2},
                      {5, 3},
                      {6, 4},
                      {8, 4},
                      {10, 5},
                      {12, 6}}) {
    for (MetadataMode mode :
         {MetadataMode::kVectorClock, MetadataMode::kLamport}) {
      const Result r = run(n, k, kValueB, mode);
      std::printf("%4zu %3zu %6zu %8s | %12.0f %8.2fB %7zuB | %12.0f "
                  "%8.2fB %8zuB\n",
                  n, k, kValueB, mode_name(mode), r.read_bytes,
                  r.read_bytes / kValueB, k - 1, r.write_bytes,
                  r.write_bytes / kValueB, n - 1);
      char name[64];
      std::snprintf(name, sizeof(name), "N=%zu,k=%zu,%s", n, k,
                    mode_name(mode));
      report.add_row(name)
          .metric("value_bytes", static_cast<double>(kValueB))
          .metric("read_bytes", r.read_bytes)
          .metric("write_bytes", r.write_bytes)
          .metric("read_per_B", r.read_bytes / static_cast<double>(kValueB))
          .metric("write_per_B", r.write_bytes / static_cast<double>(kValueB))
          .note("metadata", mode_name(mode));
    }
  }

  std::printf("\nB sweep at N=6, k=4 (vector metadata): metadata terms "
              "amortize as B grows\n");
  std::printf("%8s %12s %9s %12s %9s\n", "B", "read bytes", "read/B",
              "write bytes", "write/B");
  for (std::size_t b : {64, 256, 1024, 4096, 16384}) {
    const Result r = run(6, 4, b, MetadataMode::kVectorClock);
    std::printf("%8zu %12.0f %8.2fB %12.0f %8.2fB\n", b, r.read_bytes,
                r.read_bytes / static_cast<double>(b), r.write_bytes,
                r.write_bytes / static_cast<double>(b));
    char name[64];
    std::snprintf(name, sizeof(name), "N=6,k=4,vector,B=%zu", b);
    report.add_row(name)
        .metric("value_bytes", static_cast<double>(b))
        .metric("read_bytes", r.read_bytes)
        .metric("write_bytes", r.write_bytes)
        .metric("read_per_B", r.read_bytes / static_cast<double>(b))
        .metric("write_per_B", r.write_bytes / static_cast<double>(b));
  }
  report.write_default();
  std::printf("\npaper: read O(k)B + O(k^2 logL); write O(N)B + O(k^2 logL) "
              "+ O(N logL)\n(read value traffic is (k-1)B here because the "
              "reader's own symbol is local)\n");
  return 0;
}
