// E4 -- Sec. 4.2 transient storage: the history-list overhead under a
// Poisson write workload, as a function of the per-object write rate rho_w
// and the garbage-collection period T_gc.
//
// The paper's residency argument: a version may wait up to T_gc for the
// first GC and can need ~2 further GC rounds to clear, so a history entry
// lives O(3 T_gc) and the expected history payload per object is about
//   overhead ~ min(rho_w * 3 T_gc, versions outstanding) * B.
// (The paper prints the bound as "3B / (rho_w T_gc)"; dimensional analysis
// and the YCSB aggregate it derives are consistent with rho_w * 3 T_gc * B
// -- see EXPERIMENTS.md.)
//
// We drive one object with Poisson writes, sample per-server history bytes,
// and print measured overhead (units of B) against the residency model.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "causalec/cluster.h"
#include "common/random.h"
#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "sim/latency.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Sampled {
  double avg_history_B = 0;  // mean history payload per server, units of B
  double peak_history_B = 0;
};

Sampled run(double rho_w_hz, SimTime gc_period, std::uint64_t seed,
            SimTime horizon, SimTime warmup) {
  constexpr std::size_t kValueBytes = 1024;
  ClusterConfig config;
  config.gc_period = gc_period;
  config.seed = seed;
  auto cluster = std::make_unique<Cluster>(
      erasure::make_systematic_rs(5, 3, kValueBytes),
      std::make_unique<sim::ConstantLatency>(10 * kMillisecond), config);

  // Poisson writes to object 0 from a client at server 0.
  Rng rng(seed);
  auto& sim = cluster->sim();
  Client& writer = cluster->make_client(0);
  std::function<void()> write_loop = [&] {
    if (sim.now() >= horizon) return;
    writer.write(0, Value(kValueBytes, static_cast<std::uint8_t>(
                                           rng.next_u64())));
    sim.schedule_after(
        static_cast<SimTime>(rng.next_exponential(rho_w_hz) * 1e9),
        write_loop);
  };
  sim.schedule_after(
      static_cast<SimTime>(rng.next_exponential(rho_w_hz) * 1e9), write_loop);

  // Sample history payload every 50 ms, discarding a warmup window.
  Sampled sampled;
  std::uint64_t samples = 0;
  double sum = 0, peak = 0;
  sim.schedule_periodic(warmup, 50 * kMillisecond, [&] {
    for (NodeId s = 0; s < cluster->num_servers(); ++s) {
      const double b = static_cast<double>(
                           cluster->server(s).storage().history_bytes) /
                       kValueBytes;
      sum += b;
      peak = std::max(peak, b);
      ++samples;
    }
  }, horizon);

  cluster->run_for(horizon);
  sampled.avg_history_B = sum / static_cast<double>(samples);
  sampled.peak_history_B = peak;
  return sampled;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: one tiny configuration on a short horizon, for the
  // bench_json_smoke CTest entry.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const SimTime horizon = smoke ? 8 * kSecond : 60 * kSecond;
  const SimTime warmup = smoke ? 2 * kSecond : 10 * kSecond;
  const std::vector<double> rhos =
      smoke ? std::vector<double>{4.0} : std::vector<double>{1.0, 4.0, 16.0};
  const std::vector<SimTime> gcs =
      smoke ? std::vector<SimTime>{200 * kMillisecond}
            : std::vector<SimTime>{100 * kMillisecond, 500 * kMillisecond,
                                   2 * kSecond};

  std::printf("E4: Sec. 4.2 transient storage overhead of history lists\n");
  std::printf("RS(5,3), B = 1 KiB, Poisson writes to one object, %lld s "
              "simulated\n\n", static_cast<long long>(horizon / kSecond));
  std::printf("%10s %10s | %14s %14s | %16s\n", "rho_w /s", "T_gc s",
              "avg hist (B)", "peak hist (B)", "model 3*rho*Tgc");

  obs::BenchReport report("transient_storage");
  report.set_config("code", "RS(5,3)");
  report.set_config("value_bytes", std::size_t{1024});
  report.set_config("horizon_s", static_cast<double>(horizon) / 1e9);
  report.set_config("smoke", smoke);

  std::uint64_t seed = 1000;
  for (double rho : rhos) {
    for (SimTime gc : gcs) {
      const Sampled s = run(rho, gc, seed++, horizon, warmup);
      const double model = 3.0 * rho * static_cast<double>(gc) / 1e9;
      std::printf("%10.1f %10.1f | %14.2f %14.2f | %16.2f\n", rho,
                  static_cast<double>(gc) / 1e9, s.avg_history_B,
                  s.peak_history_B, model);
      char name[64];
      std::snprintf(name, sizeof(name), "rho=%.1f,tgc_ms=%lld", rho,
                    static_cast<long long>(gc / kMillisecond));
      report.add_row(name)
          .metric("rho_w_hz", rho)
          .metric("tgc_s", static_cast<double>(gc) / 1e9)
          .metric("avg_history_B", s.avg_history_B)
          .metric("peak_history_B", s.peak_history_B)
          .metric("model_3_rho_tgc", model);
    }
  }
  report.write_default();
  std::printf("\nExpected shape: measured overhead grows ~linearly in both "
              "rho_w and T_gc and\nsits at or below the 3*rho_w*T_gc "
              "residency model (versions can clear in fewer\nthan 3 GC "
              "rounds when del announcements line up).\n");
  return 0;
}
