// E5 -- The Sec. 4.2 YCSB storage estimate, in two parts.
//
// Part 1 (paper scale, analytic): 120M objects, Zipf 0.99, 200k req/s,
// 50% writes, T_gc = 2 min. The paper claims (i) rho_w < 1/1000 per second
// for > 95% of objects, and (ii) average storage per erasure-coded object
// of (1/k + 0.05) B when the hottest 5% are replicated instead.
//
// Part 2 (scaled, simulated): the same pipeline run end-to-end on the real
// protocol -- a GroupedStore hosting many independently coded groups on
// shared server nodes (exactly the paper's deployment model), Zipfian
// writes, measuring actual history-list residency.
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "causalec/grouped_store.h"
#include "common/random.h"
#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "sim/latency.h"
#include "workload/zipf.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

void part1_analytic(obs::BenchReport& report) {
  const double n = 120e6;
  const double theta = 0.99;
  const double total_write_rate = 200'000 * 0.5;
  const double tgc = 120.0;  // seconds
  const double k = 4;

  std::printf("Part 1 -- paper-scale analytics (120M objects, Zipf 0.99, "
              "200k req/s, 50%% writes)\n");
  const double frac_cold =
      workload::zipf_fraction_below_rate(1e-3, total_write_rate, n, theta);
  std::printf("  objects with rho_w < 1/1000 per s: %.2f%%   (paper: "
              ">95%%)\n", frac_cold * 100);

  // Replicate the hottest 5% of objects (the paper's split), erasure-code
  // the rest; history overhead per coded object ~ min(1, 3 rho_w T_gc) B
  // in expectation (residency model, log-bucketed integration over ranks).
  const double hot_cut = n * 0.05;
  double overhead_mass = 0;
  const int kBuckets = 4000;
  double prev_rank = hot_cut;
  for (int b = 1; b <= kBuckets; ++b) {
    const double rank =
        hot_cut * std::pow(n / hot_cut, static_cast<double>(b) / kBuckets);
    const double mid = 0.5 * (prev_rank + rank);
    const double count = rank - prev_rank;
    const double rate =
        workload::zipf_rate_of_rank(mid, total_write_rate, n, theta);
    overhead_mass += count * std::min(1.0, 3.0 * rate * tgc);
    prev_rank = rank;
  }
  const double coded = n - hot_cut;
  const double avg_overhead_B = overhead_mass / coded;
  std::printf("  avg storage per coded object: (1/k + %.3f) B = %.3f B at "
              "k=%.0f   (paper: (1/k + 0.05) B)\n",
              avg_overhead_B, 1.0 / k + avg_overhead_B, k);
  report.add_row("part1_analytic")
      .metric("frac_cold", frac_cold)
      .metric("avg_overhead_B", avg_overhead_B)
      .metric("avg_storage_B", 1.0 / k + avg_overhead_B)
      .note("paper", "frac_cold > 0.95, storage (1/k + 0.05) B");
}

void part2_simulated(obs::BenchReport& report) {
  // Scaled instance inside the rho_w * T_gc << 1 regime the analysis
  // assumes ("mild assumptions" / Appendix H): 48 objects in 16 RS(5,3)
  // groups sharing 5 simulated nodes.
  constexpr std::size_t kGroups = 16;
  constexpr std::size_t kPerGroup = 3;
  constexpr std::size_t kObjects = kGroups * kPerGroup;
  constexpr std::size_t kValueBytes = 512;
  constexpr std::size_t kServers = 5;
  const double total_write_rate = 2.4;  // writes per second
  const double tgc_s = 0.5;
  const SimTime horizon = 120 * kSecond;

  std::printf("\nPart 2 -- scaled simulation: %zu objects in %zu RS(5,3) "
              "groups on %zu shared nodes,\n  Zipf 0.99, %.1f writes/s "
              "total, T_gc = %.1f s, 120 s simulated\n",
              kObjects, kGroups, kServers, total_write_rate, tgc_s);

  sim::Simulation sim(
      std::make_unique<sim::ConstantLatency>(10 * kMillisecond), 7);
  GroupedStoreConfig config;
  for (std::size_t g = 0; g < kGroups; ++g) {
    config.group_codes.push_back(
        erasure::make_systematic_rs(kServers, kPerGroup, kValueBytes));
  }
  config.gc_period = static_cast<SimTime>(tgc_s * 1e9);
  GroupedStore store(&sim, std::move(config));
  store.arm_gc_timers();

  // Per-object Poisson write processes with Zipfian rates (identity
  // ranking), writers spread across the nodes.
  std::vector<double> rate(kObjects);
  for (std::size_t i = 0; i < kObjects; ++i) {
    rate[i] = total_write_rate *
              workload::zipf_pmf(static_cast<double>(i + 1), kObjects, 0.99);
  }
  Rng rng(777);
  for (GlobalObjectId x = 0; x < kObjects; ++x) {
    const double r = rate[x];
    const NodeId home = static_cast<NodeId>(x % kServers);
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&sim, &store, &rng, r, x, home, loop, horizon] {
      if (sim.now() >= horizon) return;
      store.write(home, /*client=*/x + 1, x, Value(kValueBytes, 1));
      sim.schedule_after(
          static_cast<SimTime>(rng.next_exponential(r) * 1e9), *loop);
    };
    sim.schedule_after(static_cast<SimTime>(rng.next_exponential(r) * 1e9),
                       *loop);
  }

  // Sample aggregated history payload after warmup.
  double history_sum_B = 0;
  std::uint64_t samples = 0;
  sim.schedule_periodic(10 * kSecond, 100 * kMillisecond, [&] {
    for (NodeId s = 0; s < kServers; ++s) {
      history_sum_B +=
          static_cast<double>(store.storage(s).history_bytes) / kValueBytes;
      ++samples;
    }
  }, horizon);
  sim.run_until(horizon);

  // Average history payload per (server, tick), normalized per object:
  // the residency model predicts each server holds ~3 rho_w T_gc
  // outstanding copies of each object.
  const double per_server_avg_B =
      history_sum_B / static_cast<double>(samples);
  const double per_object = per_server_avg_B / kObjects;
  double model = 0;
  for (std::size_t i = 0; i < kObjects; ++i) model += 3.0 * rate[i] * tgc_s;
  model /= kObjects;
  std::printf("  measured avg history overhead: %.3f B per object per "
              "server (codeword share is 1/k = %.3f B)\n",
              per_object, 1.0 / kPerGroup);
  std::printf("  residency model 3*rho_w*T_gc:  %.3f B per object per "
              "server\n", model);
  report.add_row("part2_simulated")
      .metric("measured_overhead_B", per_object)
      .metric("model_overhead_B", model)
      .metric("codeword_share_B", 1.0 / kPerGroup);
}

}  // namespace

int main() {
  std::printf("E5: Sec. 4.2 YCSB storage estimate\n\n");
  obs::BenchReport report("ycsb_storage");
  report.set_config("part1_objects", 120e6);
  report.set_config("zipf_theta", 0.99);
  part1_analytic(report);
  part2_simulated(report);
  report.write_default();
  return 0;
}
