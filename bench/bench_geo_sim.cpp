// E2 -- Fig. 2 cross-checked by full-protocol simulation: partial
// replication, intra-object RS(6,4), and cross-object CausalEC all run on
// the simulated six-DC network (Fig. 1 RTTs). Reads are issued uniformly
// from every DC to every group; measured wall-clock latency and measured
// bytes on the wire per operation are reported, regenerating the Fig. 2
// rows from live executions rather than analysis.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/intra_object_store.h"
#include "baselines/replicated_store.h"
#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "placement/designer.h"
#include "placement/latency_eval.h"
#include "placement/rtt_matrix.h"
#include "sim/latency.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr std::size_t kValueBytes = 4096;  // B = 4 KiB
constexpr std::size_t kGroups = 4;
constexpr std::size_t kDcs = 6;

struct Row {
  const char* name;
  double worst_read_ms = 0;
  double avg_read_ms = 0;
  double read_bytes_B = 0;   // measured bytes per read, units of B
  double write_bytes_B = 0;  // measured bytes per write, units of B
};

/// Measures a store through read/write closures.
struct StoreDriver {
  std::function<void(NodeId, ObjectId, Value)> write;          // synchronous
  std::function<void(NodeId, ObjectId, std::function<void()>)> read;
  std::function<void()> settle;  // drain protocol activity
  sim::Simulation* sim = nullptr;
};

Row measure(const char* name, StoreDriver& store) {
  Row row{name};
  // Seed every group once from its "home" DC and drain.
  for (ObjectId g = 0; g < kGroups; ++g) {
    store.write(g % kDcs, g, Value(kValueBytes, static_cast<std::uint8_t>(g + 1)));
  }
  store.settle();

  // --- Read phase: every (dc, group) pair once, sequentially. ------------
  store.sim->stats().reset();
  std::vector<double> latencies;
  for (NodeId dc = 0; dc < kDcs; ++dc) {
    for (ObjectId g = 0; g < kGroups; ++g) {
      const SimTime start = store.sim->now();
      SimTime done = -1;
      store.read(dc, g, [&] { done = store.sim->now(); });
      store.sim->run_until(start + 5 * kSecond);
      CEC_CHECK_MSG(done >= 0, "read did not complete");
      latencies.push_back(static_cast<double>(done - start) / 1e6);
    }
  }
  const double reads = static_cast<double>(latencies.size());
  row.read_bytes_B = static_cast<double>(store.sim->stats().total_bytes) /
                     reads / kValueBytes;
  row.worst_read_ms = *std::max_element(latencies.begin(), latencies.end());
  double sum = 0;
  for (double l : latencies) sum += l;
  row.avg_read_ms = sum / reads;

  // --- Write phase: one write per (dc, group), drained afterwards so the
  // cost includes propagation, re-encoding and garbage collection. --------
  store.settle();
  store.sim->stats().reset();
  std::size_t writes = 0;
  for (NodeId dc = 0; dc < kDcs; ++dc) {
    for (ObjectId g = 0; g < kGroups; ++g) {
      store.write(dc, g, Value(kValueBytes, static_cast<std::uint8_t>(dc)));
      store.sim->run_until(store.sim->now() + 2 * kSecond);
      ++writes;
    }
  }
  store.settle();
  row.write_bytes_B = static_cast<double>(store.sim->stats().total_bytes) /
                      static_cast<double>(writes) / kValueBytes;
  return row;
}

Row run_partial_replication() {
  auto latency = sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms());
  auto sim = std::make_unique<sim::Simulation>(std::move(latency), 1);
  // The optimal placement found by the brute-force search (E1):
  // G1 at {Seoul, Ireland}, G2 at {Mumbai, London}, G3 at Oregon,
  // G4 at N.California.
  baselines::ReplicatedStoreConfig config;
  config.num_objects = kGroups;
  config.value_bytes = kValueBytes;
  config.placement = {{0}, {1}, {0}, {1}, {3}, {2}};
  config.rtt_ms = placement::six_dc_rtt_ms();
  baselines::ReplicatedStore store(sim.get(), std::move(config));

  StoreDriver driver;
  driver.sim = sim.get();
  driver.write = [&](NodeId at, ObjectId g, Value v) {
    store.write(at, g, std::move(v));
  };
  driver.read = [&](NodeId at, ObjectId g, std::function<void()> done) {
    store.read(at, g, [done](const Value&, const Tag&) { done(); });
  };
  driver.settle = [&] { sim->run_until_idle(); };
  return measure("partial replication", driver);
}

Row run_intra_object() {
  auto latency = sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms());
  auto sim = std::make_unique<sim::Simulation>(std::move(latency), 1);
  baselines::IntraObjectStoreConfig config;
  config.num_servers = kDcs;
  config.num_objects = kGroups;
  config.value_bytes = kValueBytes;
  config.k = 4;
  config.rtt_ms = placement::six_dc_rtt_ms();
  baselines::IntraObjectStore store(sim.get(), std::move(config));

  StoreDriver driver;
  driver.sim = sim.get();
  driver.write = [&](NodeId at, ObjectId g, Value v) {
    store.write(at, g, std::move(v));
  };
  driver.read = [&](NodeId at, ObjectId g, std::function<void()> done) {
    store.read(at, g, [done](const Value&, const Tag&) { done(); });
  };
  driver.settle = [&] { sim->run_until_idle(); };
  return measure("intra-object RS(6,4)", driver);
}

Row run_causalec_with(const char* name, erasure::CodePtr code,
                      bool opportunistic_local_decode = true);

Row run_causalec() {
  return run_causalec_with("cross-object CausalEC",
                           erasure::make_six_dc_cross_object(kValueBytes));
}

Row run_causalec_designed() {
  // The code found by the automatic designer (E10) for the Fig. 1 topology.
  placement::DesignOptions options;
  options.restarts = 8;
  options.max_steps_per_restart = 32;
  options.value_bytes = kValueBytes;
  const auto designed = placement::design_cross_object_code(
      placement::six_dc_rtt_ms(), kGroups, options);
  return run_causalec_with("designed CausalEC (E10)", designed.code);
}

Row run_causalec_with(const char* name, erasure::CodePtr code,
                      bool opportunistic_local_decode) {
  ClusterConfig config;
  config.gc_period = 200 * kMillisecond;
  config.server.opportunistic_local_decode = opportunistic_local_decode;
  // Footnote-14 fanout: contact the nearest recovery set first, ranked by
  // the per-DC RTT rows.
  config.server.fanout = ReadFanout::kNearestRecoverySet;
  config.proximity_matrix = placement::six_dc_rtt_ms();
  auto cluster = std::make_unique<Cluster>(
      std::move(code),
      sim::MatrixLatency::from_rtt_ms(placement::six_dc_rtt_ms()), config);

  StoreDriver driver;
  driver.sim = &cluster->sim();
  auto clients = std::make_shared<std::vector<Client*>>();
  for (NodeId dc = 0; dc < kDcs; ++dc) {
    clients->push_back(&cluster->make_client(dc));
  }
  driver.write = [cluster = cluster.get(), clients](NodeId at, ObjectId g,
                                                    Value v) {
    (*clients)[at]->write(g, std::move(v));
  };
  driver.read = [cluster = cluster.get()](NodeId at, ObjectId g,
                                          std::function<void()> done) {
    // One-shot client per read keeps sessions single-pending.
    cluster->make_client(at).read(
        g, [done](const Value&, const Tag&, const VectorClock&) { done(); });
  };
  driver.settle = [cluster = cluster.get()] { cluster->settle(); };
  Row row = measure(name, driver);
  // Keep the cluster alive through measure().
  (void)cluster.release();  // intentional: bench process exits right after
  return row;
}

}  // namespace

int main() {
  std::printf("E2: Fig. 2 regenerated by full-protocol simulation "
              "(B = %zu bytes, Fig. 1 RTTs)\n\n", kValueBytes);
  std::printf("%-24s %10s %10s %12s %12s\n", "scheme (measured)", "worst ms",
              "avg ms", "read B/op", "write B/op");

  const Row rows[] = {run_partial_replication(), run_intra_object(),
                      run_causalec(), run_causalec_designed()};
  obs::BenchReport report("geo_sim");
  report.set_config("value_bytes", kValueBytes);
  report.set_config("groups", kGroups);
  report.set_config("dcs", kDcs);
  for (const Row& row : rows) {
    std::printf("%-24s %10.0f %10.2f %11.2fB %11.2fB\n", row.name,
                row.worst_read_ms, row.avg_read_ms, row.read_bytes_B,
                row.write_bytes_B);
    report.add_row(row.name)
        .metric("worst_read_ms", row.worst_read_ms)
        .metric("avg_read_ms", row.avg_read_ms)
        .metric("read_bytes_per_B", row.read_bytes_B)
        .metric("write_bytes_per_B", row.write_bytes_B);
  }
  report.write_default();
  std::printf("\npaper (Fig. 2):          partial 228/88 3B/4 6B | intra "
              "138/132.5 3B/4 6B/4 | cross 138/87.5 3B/4 12B\n");
  std::printf("(measured columns include metadata bytes. CausalEC's "
              "measured write cost sits below\n the paper's 12B estimate "
              "because systematic servers re-encode from their own symbol\n "
              "and coded servers fetch only their nearest recovery set, "
              "not k full symbols.)\n");
  return 0;
}
