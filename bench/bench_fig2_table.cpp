// E1 -- Regenerates the Fig. 2 table: cost and latency comparison between
// partial replication, intra-object coding, and cross-object coding over
// the Fig. 1 six-DC RTT matrix.
//
// Paper's published row values:
//   Partial replication: worst 228 ms, avg 88 ms,  read 3B/4, write 6B
//   Intra-object coding: worst 138 ms, avg 132 ms, read 3B/4, write 6B/4
//   Cross-object coding: worst 138 ms, avg 88 ms,  read 3B/4, write 12B
//
// Our regeneration (see EXPERIMENTS.md): identical shape; the cross-object
// worst case computes to 146 ms from the published Fig. 1 matrix (the
// paper's 138/87.5 pair corresponds to RTT(N.California, London) = 136).
#include <cstdio>

#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "placement/latency_eval.h"
#include "placement/rtt_matrix.h"

using namespace causalec;
using namespace causalec::placement;

int main() {
  const auto& rtt = six_dc_rtt_ms();
  const std::size_t kGroups = 4;  // 4M objects = 4 groups of M, capacity M/DC

  causalec::obs::BenchReport report("fig2_table");
  report.set_config("groups", kGroups);
  report.set_config("dcs", std::size_t{6});

  std::printf("E1: Fig. 2 -- cost and latency comparison (6 DCs, Fig. 1 "
              "RTTs, 4 object groups)\n");
  std::printf("%-22s %12s %12s %14s %15s\n", "scheme", "worst ms", "avg ms",
              "read comm", "write comm");

  // --- Partial replication: brute-force optimal placement. --------------
  const auto partial = brute_force_partial_replication(rtt, kGroups);
  {
    // Read comm: a read is remote unless the DC hosts the group; with the
    // optimal placement r replicas per group, remote probability is
    // 1 - (#hosts of the read DC's group) / 6 averaged over (dc, group).
    double remote = 0;
    for (NodeId dc = 0; dc < 6; ++dc) {
      for (ObjectId g = 0; g < kGroups; ++g) {
        if (partial.placement[dc] != g) remote += 1;
      }
    }
    const double read_b = remote / (6.0 * kGroups);
    // Write comm: propagate the value to every other server (Appendix A).
    const double write_b = 5.0;
    std::printf("%-22s %12.0f %12.2f %13.2fB %14.2fB\n",
                "partial replication", partial.worst_read_latency_ms,
                partial.avg_read_latency_ms, read_b, write_b);
    report.add_row("partial replication")
        .metric("worst_read_ms", partial.worst_read_latency_ms)
        .metric("avg_read_ms", partial.avg_read_latency_ms)
        .metric("read_comm_B", read_b)
        .metric("write_comm_B", write_b);
  }

  // --- Intra-object RS(6,4). ---------------------------------------------
  const auto intra = evaluate_intra_object_rs(rtt, 4);
  {
    const double read_b = 3.0 / 4.0;   // 3 remote fragments of B/4
    const double write_b = 5.0 / 4.0;  // 5 remote fragments of B/4
    std::printf("%-22s %12.0f %12.2f %13.2fB %14.2fB\n",
                "intra-object RS(6,4)", intra.worst_read_latency_ms,
                intra.avg_read_latency_ms, read_b, write_b);
    report.add_row("intra-object RS(6,4)")
        .metric("worst_read_ms", intra.worst_read_latency_ms)
        .metric("avg_read_ms", intra.avg_read_latency_ms)
        .metric("read_comm_B", read_b)
        .metric("write_comm_B", write_b);
  }

  // --- Cross-object code (the paper's placement). -------------------------
  const auto code = erasure::make_six_dc_cross_object(64);
  const auto cross = evaluate_code(*code, rtt, "cross-object");
  {
    // Write comm: app to 5 remote servers (5B) + re-encoding internal
    // reads at the coded servers. Each group is coded at exactly one
    // remote DC beyond its uncoded host (Seoul or Mumbai); re-encoding
    // there triggers an internal read whose responses carry ~k symbols.
    // The paper charges 12B for this protocol ("up to kB extra"); the
    // measured value comes from bench_geo_sim.
    const double write_b = 5.0 + 2.0;  // app broadcast + internal read floor
    std::printf("%-22s %12.0f %12.2f %13.2fB %14.2fB+\n",
                "cross-object CausalEC", cross.worst_read_latency_ms,
                cross.avg_read_latency_ms, cross.read_comm_B, write_b);
    report.add_row("cross-object CausalEC")
        .metric("worst_read_ms", cross.worst_read_latency_ms)
        .metric("avg_read_ms", cross.avg_read_latency_ms)
        .metric("read_comm_B", cross.read_comm_B)
        .metric("write_comm_B", write_b)
        .note("write_comm", "floor; measured value from bench_geo_sim");
  }

  // --- The paper's variant of the cross-object row (RTT NC-London = 136).
  {
    auto rtt136 = rtt;
    rtt136[kNCalifornia][kLondon] = rtt136[kLondon][kNCalifornia] = 136;
    const auto fixed = evaluate_code(*code, rtt136, "cross-object-136");
    std::printf("%-22s %12.0f %12.2f %13.2fB %14s\n",
                "  (with NC-Lon=136ms)", fixed.worst_read_latency_ms,
                fixed.avg_read_latency_ms, fixed.read_comm_B, "-");
    report.add_row("cross-object (NC-Lon=136ms)")
        .metric("worst_read_ms", fixed.worst_read_latency_ms)
        .metric("avg_read_ms", fixed.avg_read_latency_ms)
        .metric("read_comm_B", fixed.read_comm_B);
  }

  std::printf("\npaper reference:      partial 228/88.25, intra 138/132.5, "
              "cross 138/87.5 (ms)\n");
  std::printf("optimal partial replication placement found:");
  for (NodeId dc = 0; dc < 6; ++dc) {
    std::printf(" %s=G%u", dc_names()[dc].c_str(),
                partial.placement[dc] + 1);
  }
  std::printf("\n");
  report.write_default();
  return 0;
}
