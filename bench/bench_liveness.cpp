// E7 -- The liveness properties (I)-(IV) measured on live executions:
//   (I)  writes return locally: zero elapsed simulated time, regardless of
//        cluster health;
//   (II) reads complete in at most one round trip to a recovery set, and
//        keep completing while any recovery set survives crashes;
//   (III)/(IV) storage converges to the code prescription after writes stop.
#include <cstdio>
#include <memory>
#include <vector>

#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "sim/latency.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr std::size_t kValueBytes = 256;
constexpr SimTime kOneWay = 20 * kMillisecond;

struct CrashRow {
  std::size_t crashed;
  int reads_ok = 0;
  int reads_total = 0;
  double avg_ms = 0;
  bool writes_local = true;
  bool storage_converged = false;
};

CrashRow run_with_crashes(std::size_t crash_count) {
  ClusterConfig config;
  config.server.fanout = ReadFanout::kNearestRecoverySet;
  auto cluster = std::make_unique<Cluster>(
      erasure::make_systematic_rs(6, 4, kValueBytes),
      std::make_unique<sim::ConstantLatency>(kOneWay), config);

  for (ObjectId x = 0; x < 4; ++x) {
    cluster->make_client(x % 6).write(x, Value(kValueBytes, 1));
  }
  cluster->settle();

  CrashRow row{crash_count};
  row.storage_converged = cluster->storage_converged();
  for (std::size_t c = 0; c < crash_count; ++c) {
    cluster->halt_server(static_cast<NodeId>(c));
  }

  // Writes at a live server must return in zero simulated time.
  Client& writer = cluster->make_client(5);
  const SimTime before = cluster->sim().now();
  writer.write(0, Value(kValueBytes, 9));
  row.writes_local = cluster->sim().now() == before;

  // Reads at every live server for every object.
  double latency_sum = 0;
  for (NodeId s = static_cast<NodeId>(crash_count); s < 6; ++s) {
    for (ObjectId x = 0; x < 4; ++x) {
      ++row.reads_total;
      const SimTime start = cluster->sim().now();
      SimTime done = -1;
      cluster->make_client(s).read(
          x, [&done, cluster = cluster.get()](const Value&, const Tag&,
                                              const VectorClock&) {
            done = cluster->sim().now();
          });
      cluster->run_for(3 * kSecond);
      if (done >= 0) {
        ++row.reads_ok;
        latency_sum += static_cast<double>(done - start) / 1e6;
      }
    }
  }
  row.avg_ms = row.reads_ok ? latency_sum / row.reads_ok : -1;
  return row;
}

}  // namespace

int main() {
  std::printf("E7: liveness properties on RS(6,4), %lld ms one-way links\n\n",
              static_cast<long long>(kOneWay / kMillisecond));
  std::printf("%8s %12s %14s %14s %12s\n", "crashed", "reads ok",
              "avg read ms", "writes local", "converged");
  obs::BenchReport report("liveness");
  report.set_config("code", "RS(6,4)");
  report.set_config("value_bytes", kValueBytes);
  report.set_config("one_way_ms",
                    static_cast<double>(kOneWay) / kMillisecond);
  for (std::size_t crashed : {0u, 1u, 2u, 3u}) {
    const CrashRow row = run_with_crashes(crashed);
    std::printf("%8zu %7d/%-4d %14.1f %14s %12s\n", row.crashed,
                row.reads_ok, row.reads_total, row.avg_ms,
                row.writes_local ? "yes" : "NO",
                row.storage_converged ? "yes" : "NO");
    char name[32];
    std::snprintf(name, sizeof(name), "crashed=%zu", row.crashed);
    report.add_row(name)
        .metric("crashed", static_cast<double>(row.crashed))
        .metric("reads_ok", row.reads_ok)
        .metric("reads_total", row.reads_total)
        .metric("avg_read_ms", row.avg_ms)
        .metric("writes_local", row.writes_local ? 1 : 0)
        .metric("storage_converged", row.storage_converged ? 1 : 0);
  }
  std::printf("\nexpected: all reads complete through 2 crashes (N-K=2); "
              "with 3 crashes reads\nstill complete whenever the value is "
              "in a live history list or a live recovery\nset remains; "
              "writes are always local (Property I); storage always "
              "converges\nbefore the crashes (Theorem 4.5).\n");

  // One-round-trip check (Property II): read at a parity server completes
  // in exactly 2 * one-way after convergence.
  ClusterConfig config;
  config.server.fanout = ReadFanout::kNearestRecoverySet;
  auto cluster = std::make_unique<Cluster>(
      erasure::make_paper_5_3_gf256(kValueBytes),
      std::make_unique<sim::ConstantLatency>(kOneWay), config);
  cluster->make_client(1).write(1, Value(kValueBytes, 3));
  cluster->settle();
  const SimTime start = cluster->sim().now();
  SimTime done = -1;
  cluster->make_client(4).read(
      1, [&done, &cluster](const Value&, const Tag&, const VectorClock&) {
        done = cluster->sim().now();
      });
  cluster->run_for(kSecond);
  std::printf("\nProperty (II) spot check, paper (5,3) code: read X2 at "
              "server 5 completed in %.0f ms = %s one round trip\n",
              static_cast<double>(done - start) / 1e6,
              done - start == 2 * kOneWay ? "exactly" : "NOT");
  report.add_row("property_ii_spot_check")
      .metric("read_ms", static_cast<double>(done - start) / 1e6)
      .metric("one_round_trip", done - start == 2 * kOneWay ? 1 : 0)
      .note("code", "paper (5,3)");
  report.write_default();
  return 0;
}
