// E11 -- Crash-recovery cost (DESIGN.md §9): catch-up time and bytes as a
// function of the number of writes a server missed while down.
//
// One server is halted, W writes land at the survivors, then the server is
// crash-recovered from its journal and the anti-entropy rejoin round runs.
// Reported per W: the simulated rejoin duration, the push bytes and
// history entries transferred, and whether the recovered server then
// serves the freshest value. Expected shape: catch-up bytes grow linearly
// in the missed writes (the rejoin pushes exactly the uncovered versions;
// no full-history replay), duration stays a constant small number of
// round trips.
#include <cstdio>
#include <cstring>
#include <memory>

#include "causalec/cluster.h"
#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "persist/backend.h"
#include "sim/latency.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr std::size_t kN = 6, kK = 4;
constexpr std::size_t kValueBytes = 256;
constexpr SimTime kOneWay = 5 * kMillisecond;

struct RecoveryRow {
  std::size_t missed_writes = 0;
  double rejoin_ms = -1;
  std::uint64_t catchup_bytes = 0;
  std::uint64_t catchup_entries = 0;
  std::uint64_t pushes_received = 0;
  bool fresh_read = false;
};

RecoveryRow run_with_missed_writes(std::size_t missed) {
  persist::MemoryBackend backend;
  ClusterConfig config;
  config.gc_period = 20 * kMillisecond;
  config.persistence = &backend;
  config.snapshot_period = 100 * kMillisecond;
  Cluster cluster(erasure::make_systematic_rs(kN, kK, kValueBytes),
                  std::make_unique<sim::ConstantLatency>(kOneWay), config);

  // Warm-up: every object written once, state converged and checkpointed.
  auto& writer = cluster.make_client(0);
  for (ObjectId x = 0; x < kK; ++x) {
    writer.write(x, Value(kValueBytes, 1));
  }
  cluster.run_for(300 * kMillisecond);
  cluster.settle();

  const NodeId victim = kN - 1;
  cluster.halt_server(victim);
  for (std::size_t i = 0; i < missed; ++i) {
    writer.write(static_cast<ObjectId>(i % kK),
                 Value(kValueBytes, static_cast<std::uint8_t>(2 + i % 250)));
    cluster.run_for(2 * kMillisecond);
  }
  cluster.run_for(200 * kMillisecond);  // everything delivered and GC'd

  const SimTime recover_at = cluster.sim().now();
  cluster.recover_server(victim);
  SimTime rejoined_at = -1;
  for (int i = 0; i < 1000 && rejoined_at < 0; ++i) {
    cluster.run_for(kMillisecond);
    if (!cluster.server(victim).recovering()) {
      rejoined_at = cluster.sim().now();
    }
  }
  cluster.settle();

  RecoveryRow row;
  row.missed_writes = missed;
  if (rejoined_at >= 0) {
    row.rejoin_ms = static_cast<double>(rejoined_at - recover_at) / 1e6;
  }
  const ServerCounters& counters = cluster.server(victim).counters();
  row.catchup_bytes = counters.catchup_bytes;
  row.catchup_entries = counters.catchup_history_entries;
  row.pushes_received = counters.rejoin_pushes_received;

  // The recovered server must serve the last value written while it was
  // down (or the warm-up value when nothing was missed).
  const std::uint8_t expected =
      missed == 0 ? 1
                  : static_cast<std::uint8_t>(
                        2 + (missed - 1) % 250);
  const ObjectId last_object =
      missed == 0 ? 0 : static_cast<ObjectId>((missed - 1) % kK);
  bool done = false;
  cluster.make_client(victim).read(
      last_object,
      [&](const Value& v, const Tag&, const VectorClock&) {
        done = true;
        row.fresh_read = !v.empty() && v[0] == expected;
      });
  cluster.run_for(3 * kSecond);
  row.fresh_read = row.fresh_read && done;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("E11: rejoin catch-up cost on RS(%zu,%zu), %zu B values\n\n",
              kN, kK, kValueBytes);
  std::printf("%8s %12s %14s %16s %8s %8s\n", "missed", "rejoin ms",
              "catchup B", "catchup entries", "pushes", "fresh");

  obs::BenchReport report("recovery");
  report.set_config("code", "RS(6,4)");
  report.set_config("value_bytes", static_cast<double>(kValueBytes));
  report.set_config("one_way_ms",
                    static_cast<double>(kOneWay) / kMillisecond);
  report.set_config("smoke", smoke ? 1 : 0);

  const std::vector<std::size_t> points =
      smoke ? std::vector<std::size_t>{0, 10, 50}
            : std::vector<std::size_t>{0, 10, 50, 100, 200, 400};
  for (const std::size_t missed : points) {
    const RecoveryRow row = run_with_missed_writes(missed);
    std::printf("%8zu %12.1f %14llu %16llu %8llu %8s\n", row.missed_writes,
                row.rejoin_ms,
                static_cast<unsigned long long>(row.catchup_bytes),
                static_cast<unsigned long long>(row.catchup_entries),
                static_cast<unsigned long long>(row.pushes_received),
                row.fresh_read ? "yes" : "NO");
    char name[32];
    std::snprintf(name, sizeof(name), "missed=%zu", row.missed_writes);
    report.add_row(name)
        .metric("missed_writes", static_cast<double>(row.missed_writes))
        .metric("rejoin_ms", row.rejoin_ms)
        .metric("catchup_bytes", static_cast<double>(row.catchup_bytes))
        .metric("catchup_entries", static_cast<double>(row.catchup_entries))
        .metric("pushes_received", static_cast<double>(row.pushes_received))
        .metric("fresh_read", row.fresh_read ? 1 : 0);
  }

  std::printf("\nexpected: catchup bytes scale with the writes actually "
              "missed (uncovered\nversions only -- no history replay); the "
              "rejoin itself is a fixed number of\nround trips, so its "
              "duration is flat in the missed-write count.\n");
  report.write_default();
  return 0;
}
