// E9 -- Ablations of the implementation-level design choices DESIGN.md
// calls out:
//   * del-broadcast dedupe (note 6): suppresses re-sends of identical GC
//     announcements -- measured in del message count and bytes;
//   * DelL compaction (note 7): bounds deletion-list metadata -- measured
//     in peak DelL entries;
//   * GC period: the transient-storage vs. message-overhead trade-off.
#include <cstdio>
#include <memory>

#include "causalec/cluster.h"
#include "common/random.h"
#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "sim/latency.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr std::size_t kValueBytes = 512;

struct Result {
  std::uint64_t del_msgs = 0;
  std::uint64_t del_bytes = 0;
  std::uint64_t total_bytes = 0;
  std::size_t peak_dell_entries = 0;
  double avg_history_B = 0;
  bool converged = false;
};

Result run(bool dedupe, bool compact, SimTime gc_period,
           DelRouting routing = DelRouting::kDirect) {
  ClusterConfig config;
  config.gc_period = gc_period;
  config.server.dedupe_del_broadcasts = dedupe;
  config.server.compact_del_lists = compact;
  config.server.del_routing = routing;
  auto cluster = std::make_unique<Cluster>(
      erasure::make_systematic_rs(6, 3, kValueBytes),
      std::make_unique<sim::ConstantLatency>(8 * kMillisecond), config);

  Rng rng(99);
  Result result;
  std::uint64_t history_samples = 0;
  double history_sum = 0;
  auto& sim = cluster->sim();
  sim.schedule_periodic(0, 40 * kMillisecond, [&] {
    for (NodeId s = 0; s < cluster->num_servers(); ++s) {
      const auto st = cluster->server(s).storage();
      result.peak_dell_entries =
          std::max(result.peak_dell_entries, st.dell_entries);
      history_sum += static_cast<double>(st.history_bytes) / kValueBytes;
      ++history_samples;
    }
  }, 20 * kSecond);

  // 200 writes over 20 s from rotating servers.
  for (int i = 0; i < 200; ++i) {
    cluster->make_client(static_cast<NodeId>(rng.next_below(6)))
        .write(static_cast<ObjectId>(rng.next_below(3)),
               Value(kValueBytes, static_cast<std::uint8_t>(i)));
    cluster->run_for(100 * kMillisecond);
  }
  cluster->settle();

  const auto& stats = sim.stats();
  result.total_bytes = stats.total_bytes;
  if (auto it = stats.by_type.find("del"); it != stats.by_type.end()) {
    result.del_msgs = it->second.count;
    result.del_bytes = it->second.bytes;
  }
  result.avg_history_B = history_sum / static_cast<double>(history_samples);
  result.converged = cluster->storage_converged();
  return result;
}

}  // namespace

int main() {
  std::printf("E9: ablations -- RS(6,3), 200 writes over 20 s\n\n");
  std::printf("%7s %8s %8s | %10s %12s %10s %12s %10s\n", "dedupe",
              "compact", "Tgc ms", "del msgs", "del bytes", "peak DelL",
              "avg hist B", "converged");

  obs::BenchReport report("ablation");
  report.set_config("code", "RS(6,3)");
  report.set_config("value_bytes", kValueBytes);
  report.set_config("writes", 200);
  auto add_row = [&report](const char* name, const Result& r) {
    report.add_row(name)
        .metric("del_msgs", static_cast<double>(r.del_msgs))
        .metric("del_bytes", static_cast<double>(r.del_bytes))
        .metric("total_bytes", static_cast<double>(r.total_bytes))
        .metric("peak_dell_entries",
                static_cast<double>(r.peak_dell_entries))
        .metric("avg_history_B", r.avg_history_B)
        .metric("converged", r.converged ? 1 : 0);
  };

  for (bool dedupe : {true, false}) {
    for (bool compact : {true, false}) {
      const Result r = run(dedupe, compact, 100 * kMillisecond);
      std::printf("%7s %8s %8d | %10llu %12llu %10zu %12.2f %10s\n",
                  dedupe ? "on" : "off", compact ? "on" : "off", 100,
                  static_cast<unsigned long long>(r.del_msgs),
                  static_cast<unsigned long long>(r.del_bytes),
                  r.peak_dell_entries, r.avg_history_B,
                  r.converged ? "yes" : "NO");
      char name[64];
      std::snprintf(name, sizeof(name), "dedupe=%s,compact=%s,tgc_ms=100",
                    dedupe ? "on" : "off", compact ? "on" : "off");
      add_row(name, r);
    }
  }

  std::printf("\nGC period sweep (dedupe + compaction on):\n");
  std::printf("%8s | %10s %12s %12s %10s\n", "Tgc ms", "del msgs",
              "avg hist B", "total bytes", "converged");
  for (SimTime gc : {25 * kMillisecond, 100 * kMillisecond,
                     400 * kMillisecond, 1600 * kMillisecond}) {
    const Result r = run(true, true, gc);
    std::printf("%8lld | %10llu %12.2f %12llu %10s\n",
                static_cast<long long>(gc / kMillisecond),
                static_cast<unsigned long long>(r.del_msgs),
                r.avg_history_B,
                static_cast<unsigned long long>(r.total_bytes),
                r.converged ? "yes" : "NO");
    char name[32];
    std::snprintf(name, sizeof(name), "tgc_ms=%lld",
                  static_cast<long long>(gc / kMillisecond));
    add_row(name, r);
  }
  std::printf("\ndel routing (Appendix G variant (ii)), dedupe + compaction "
              "on, Tgc = 100 ms:\n");
  std::printf("%12s | %10s %12s %10s\n", "routing", "del msgs", "del bytes",
              "converged");
  for (DelRouting routing : {DelRouting::kDirect, DelRouting::kViaLeader}) {
    const Result r = run(true, true, 100 * kMillisecond, routing);
    std::printf("%12s | %10llu %12llu %10s\n",
                routing == DelRouting::kDirect ? "direct" : "via leader",
                static_cast<unsigned long long>(r.del_msgs),
                static_cast<unsigned long long>(r.del_bytes),
                r.converged ? "yes" : "NO");
    char name[32];
    std::snprintf(name, sizeof(name), "del_routing=%s",
                  routing == DelRouting::kDirect ? "direct" : "via_leader");
    add_row(name, r);
  }
  report.write_default();

  std::printf("\nexpected: dedupe cuts del traffic sharply with no effect "
              "on convergence;\ncompaction bounds DelL metadata; larger "
              "T_gc trades history residency for\nfewer GC messages; "
              "leader routing trades sender fan-out for an extra hop\n"
              "(Sec. 4.2).\n");
  return 0;
}
