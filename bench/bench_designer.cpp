// Extension bench -- the paper's stated open problem (Sec. 6): automatic
// cross-object code design for a given topology. Compares the heuristic
// designer against the paper's hand-tuned code, optimal partial
// replication, and intra-object RS on the Fig. 1 topology, then
// demonstrates generality on random topologies.
#include <cstdio>

#include "common/random.h"
#include "erasure/codes.h"
#include "obs/bench_report.h"
#include "placement/designer.h"
#include "placement/rtt_matrix.h"

using namespace causalec;
using namespace causalec::placement;

namespace {

void print_row(const char* name, double worst, double avg,
               const char* extra = "") {
  std::printf("%-28s %10.0f %10.2f   %s\n", name, worst, avg, extra);
}

std::string mask_string(const std::vector<std::uint32_t>& masks,
                        std::size_t groups) {
  std::string out;
  for (std::size_t s = 0; s < masks.size(); ++s) {
    if (s) out += " ";
    bool first = true;
    for (std::size_t g = 0; g < groups; ++g) {
      if (masks[s] >> g & 1) {
        out += first ? "G" : "+G";
        out += std::to_string(g + 1);
        first = false;
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Extension: automatic cross-object code design (the Sec. 6 "
              "open problem)\n\n");
  const auto& rtt = six_dc_rtt_ms();

  std::printf("Fig. 1 topology, 4 groups, capacity 1 symbol/DC:\n");
  std::printf("%-28s %10s %10s\n", "scheme", "worst ms", "avg ms");

  causalec::obs::BenchReport report("designer");
  report.set_config("groups", 4);
  const auto add = [&report](const char* name, double worst, double avg) {
    report.add_row(name).metric("worst_read_ms", worst).metric("avg_read_ms",
                                                              avg);
  };

  const auto partial = brute_force_partial_replication(rtt, 4);
  print_row("partial replication (opt)", partial.worst_read_latency_ms,
            partial.avg_read_latency_ms);
  add("fig1: partial replication (opt)", partial.worst_read_latency_ms,
      partial.avg_read_latency_ms);
  const auto intra = evaluate_intra_object_rs(rtt, 4);
  print_row("intra-object RS(6,4)", intra.worst_read_latency_ms,
            intra.avg_read_latency_ms);
  add("fig1: intra-object RS(6,4)", intra.worst_read_latency_ms,
      intra.avg_read_latency_ms);
  const auto paper = evaluate_code(*erasure::make_six_dc_cross_object(1024),
                                   rtt, "paper");
  print_row("paper hand-tuned code", paper.worst_read_latency_ms,
            paper.avg_read_latency_ms);
  add("fig1: paper hand-tuned code", paper.worst_read_latency_ms,
      paper.avg_read_latency_ms);

  DesignOptions options;
  options.restarts = 8;
  options.max_steps_per_restart = 32;
  const auto designed = design_cross_object_code(rtt, 4, options);
  print_row("designer (this work)", designed.eval.worst_read_latency_ms,
            designed.eval.avg_read_latency_ms);
  std::printf("  designed layout: %s  (%d candidate evaluations)\n\n",
              mask_string(designed.masks, 4).c_str(), designed.evaluations);
  report.add_row("fig1: designer (this work)")
      .metric("worst_read_ms", designed.eval.worst_read_latency_ms)
      .metric("avg_read_ms", designed.eval.avg_read_latency_ms)
      .metric("evaluations", designed.evaluations)
      .note("layout", mask_string(designed.masks, 4));

  std::printf("Random topologies (4 groups, RTTs uniform in [10, 250) ms), "
              "designer vs. optimal partial replication:\n");
  std::printf("%6s | %22s | %22s\n", "nodes", "partial worst/avg",
              "designed worst/avg");
  Rng rng(4242);
  for (std::size_t n : {5u, 6u, 7u, 8u}) {
    std::vector<std::vector<double>> random_rtt(n,
                                                std::vector<double>(n, 0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        random_rtt[i][j] = random_rtt[j][i] =
            10 + static_cast<double>(rng.next_below(240));
      }
    }
    const auto p = brute_force_partial_replication(random_rtt, 4);
    DesignOptions opt;
    opt.seed = n;
    opt.restarts = 6;
    opt.max_steps_per_restart = 24;
    const auto d = design_cross_object_code(random_rtt, 4, opt);
    std::printf("%6zu | %10.0f / %8.2f | %10.0f / %8.2f\n", n,
                p.worst_read_latency_ms, p.avg_read_latency_ms,
                d.eval.worst_read_latency_ms, d.eval.avg_read_latency_ms);
    char name[48];
    std::snprintf(name, sizeof(name), "random: nodes=%zu", n);
    report.add_row(name)
        .metric("partial_worst_ms", p.worst_read_latency_ms)
        .metric("partial_avg_ms", p.avg_read_latency_ms)
        .metric("designed_worst_ms", d.eval.worst_read_latency_ms)
        .metric("designed_avg_ms", d.eval.avg_read_latency_ms);
  }
  report.write_default();
  std::printf("\nexpected: the designer matches or beats the hand-tuned "
              "code on Fig. 1 and\nconsistently beats partial replication's "
              "worst case on random topologies\nwhile staying close on "
              "average latency.\n");
  return 0;
}
