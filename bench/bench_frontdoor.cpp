// E16: front-door tier under Zipfian load (DESIGN.md §12). Spawns a real
// causalec_server cluster, stands up an in-process Router, and drives it
// with closed-loop Zipf(0.99) readers plus paced recorded sessions. Emits
// BENCH_frontdoor.json (causalec-bench-v1) with the edge-cache hit rate
// and per-tier latency split -- cache-served reads vs. origin
// fall-throughs -- and fails hard if the recorded sessions violate any
// consistency checker: a cache that wins the latency race by serving
// stale values loses here.
//
//   bench_frontdoor --saturate [--smoke] --spawn N K
//                   --server-bin PATH [--value-bytes B]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "consistency/causal_checker.h"
#include "consistency/history.h"
#include "frontdoor/router.h"
#include "frontdoor/router_client.h"
#include "net/net_client.h"
#include "net/process_cluster.h"
#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "workload/driver.h"

using namespace causalec;
using namespace std::chrono_literals;

namespace {

constexpr double kZipfTheta = 0.99;
constexpr int kLoadThreads = 8;    // unrecorded, read-only, closed loop
constexpr int kSessionThreads = 4; // recorded, paced, 5% writes

struct Options {
  bool saturate = false;
  bool smoke = false;
  std::size_t spawn_n = 0;
  std::size_t spawn_k = 0;
  std::size_t value_bytes = 1024;
  std::string server_bin;
};

[[noreturn]] void usage(const char* what) {
  std::fprintf(stderr, "bench_frontdoor: %s\n", what);
  std::fprintf(stderr,
               "usage: bench_frontdoor --saturate [--smoke] --spawn N K "
               "--server-bin PATH [--value-bytes B]\n");
  std::exit(2);
}

SimTime next_tick() {
  static std::atomic<SimTime> tick{0};
  return tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

erasure::Value value_for(ClientId client, std::uint64_t seq,
                         std::size_t bytes) {
  erasure::Value v(bytes);
  std::uint8_t* p = v.begin();
  for (std::size_t i = 0; i < bytes; ++i) {
    p[i] = static_cast<std::uint8_t>(client * 151 + seq * 7 + i);
  }
  return v;
}

/// A recorded session through the router (the bench-side twin of the
/// test batteries' RouterSession): every completed op carries the
/// Definition 6 metadata the checkers consume.
struct RecordedSession {
  RecordedSession(ClientId id_in, const std::string& endpoint,
                  std::size_t value_bytes_in)
      : id(id_in), value_bytes(value_bytes_in), client(id_in) {
    connected = client.connect(endpoint, 5000);
    client.set_io_timeout_ms(10'000);
  }

  bool write_op(ObjectId object) {
    const std::uint64_t seq = seq_++;
    const erasure::Value value = value_for(id, seq, value_bytes);
    consistency::OpRecord record;
    record.client = id;
    record.session_seq = seq;
    record.is_write = true;
    record.object = object;
    record.value_hash =
        consistency::hash_value_bytes({value.data(), value.size()});
    record.invoked_at = next_tick();
    const auto resp = client.write(seq, object, value);
    if (!resp.has_value()) return false;
    record.tag = resp->tag;
    record.timestamp = resp->vc;
    record.responded_at = next_tick();
    ops.push_back(std::move(record));
    return true;
  }

  bool read_op(ObjectId object) {
    const std::uint64_t seq = seq_++;
    consistency::OpRecord record;
    record.client = id;
    record.session_seq = seq;
    record.is_write = false;
    record.object = object;
    record.invoked_at = next_tick();
    const auto resp = client.read(seq, object);
    if (!resp.has_value()) return false;
    record.tag = resp->tag;
    record.timestamp = resp->vc;
    record.value_hash = consistency::hash_value_bytes(
        {resp->value.data(), resp->value.size()});
    record.responded_at = next_tick();
    ops.push_back(std::move(record));
    return true;
  }

  ClientId id;
  std::size_t value_bytes;
  frontdoor::RouterClient client;
  bool connected = false;
  std::vector<consistency::OpRecord> ops;

 private:
  std::uint64_t seq_ = 0;
};

int run_saturate(const Options& opt) {
  net::ProcessClusterConfig cc;
  cc.server_bin = opt.server_bin;
  cc.num_servers = opt.spawn_n;
  cc.num_objects = opt.spawn_k;
  cc.value_bytes = opt.value_bytes;
  cc.persistence = false;
  net::ProcessCluster cluster(cc);
  if (!cluster.start()) {
    std::fprintf(stderr, "failed to spawn the cluster\n");
    return 1;
  }
  if (!cluster.await_ready(15s)) {
    std::fprintf(stderr, "cluster never ready\n");
    return 1;
  }

  frontdoor::RouterConfig rc;
  rc.cluster = cluster.cluster();
  rc.shards = 2;
  frontdoor::Router router(std::move(rc));
  router.start();
  if (!router.await_backends(10s)) {
    std::fprintf(stderr, "backend links never up\n");
    return 1;
  }
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(router.listen_port());

  // Seed every object through the router: the seeding session is recorded
  // (the checkers must see every write), and each seed write installs its
  // own cache witness.
  RecordedSession seeder(50, endpoint, opt.value_bytes);
  if (!seeder.connected) {
    std::fprintf(stderr, "cannot connect to the router\n");
    return 1;
  }
  for (ObjectId g = 0; g < static_cast<ObjectId>(opt.spawn_k); ++g) {
    if (!seeder.write_op(g)) {
      std::fprintf(stderr, "seed write %u failed\n", g);
      return 1;
    }
  }

  const auto warmup = opt.smoke ? 200ms : 500ms;
  const auto measure = opt.smoke ? 1000ms : 4000ms;

  std::atomic<bool> counting{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hit_reads{0};
  std::atomic<std::uint64_t> origin_reads{0};
  std::atomic<std::uint64_t> recorded_ops{0};
  std::atomic<std::uint64_t> failures{0};
  obs::Histogram hit_lat_ns;
  obs::Histogram origin_lat_ns;

  std::vector<std::thread> threads;
  // The hot-key tier: closed-loop, read-only, Zipf(0.99). Unrecorded by
  // design -- the checkers require every WRITE in the history, and reads
  // outside the history cannot invent violations.
  for (int t = 0; t < kLoadThreads; ++t) {
    threads.emplace_back([&, t] {
      frontdoor::RouterClient client(100 + static_cast<ClientId>(t));
      if (!client.connect(endpoint, 5000)) {
        failures.fetch_add(1);
        return;
      }
      client.set_io_timeout_ms(10'000);
      workload::KeyPicker picker(opt.spawn_k, kZipfTheta,
                                 0x9E3779B9u * (t + 1));
      OpId opid = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const ObjectId object = picker.next();
        const auto t0 = std::chrono::steady_clock::now();
        const auto resp = client.read(opid++, object);
        const auto dt = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        if (!resp.has_value()) {
          failures.fetch_add(1);
          return;
        }
        if (counting.load(std::memory_order_relaxed)) {
          if (resp->cached) {
            hit_reads.fetch_add(1, std::memory_order_relaxed);
            hit_lat_ns.observe(dt);
          } else {
            origin_reads.fetch_add(1, std::memory_order_relaxed);
            origin_lat_ns.observe(dt);
          }
        }
      }
    });
  }
  // The recorded tier: paced mixed sessions (5% writes) whose full op
  // streams are checked afterwards -- zero session-guarantee violations is
  // this bench's pass/fail line, not a statistic.
  std::vector<std::unique_ptr<RecordedSession>> sessions;
  for (int t = 0; t < kSessionThreads; ++t) {
    sessions.push_back(std::make_unique<RecordedSession>(
        200 + static_cast<ClientId>(t), endpoint, opt.value_bytes));
    if (!sessions.back()->connected) {
      std::fprintf(stderr, "recorded session %d failed to connect\n", t);
      return 1;
    }
  }
  for (int t = 0; t < kSessionThreads; ++t) {
    threads.emplace_back([&, t] {
      RecordedSession& s = *sessions[t];
      workload::KeyPicker picker(opt.spawn_k, kZipfTheta,
                                 0xC0FFEEu * (t + 1));
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ObjectId object = picker.next();
        const bool ok = (++n % 20 == 0) ? s.write_op(object)
                                        : s.read_op(object);
        if (!ok) {
          failures.fetch_add(1);
          return;
        }
        recorded_ops.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(2ms);
      }
    });
  }

  std::this_thread::sleep_for(warmup);
  const net::RouterStatsResp before = router.stats();
  const auto start = std::chrono::steady_clock::now();
  counting.store(true);
  std::this_thread::sleep_for(measure);
  counting.store(false);
  const auto end = std::chrono::steady_clock::now();
  stop.store(true);
  for (auto& th : threads) th.join();
  const net::RouterStatsResp after = router.stats();

  if (failures.load() != 0) {
    std::fprintf(stderr, "%llu client(s) failed mid-run\n",
                 static_cast<unsigned long long>(failures.load()));
    return 1;
  }
  if (!cluster.await_convergence(20s)) {
    std::fprintf(stderr, "cluster did not converge after the run\n");
    return 1;
  }

  // Final reads directly at every server (bypassing the router: the cache
  // must agree with ground truth, not define it), then the checkers.
  std::vector<consistency::OpRecord> finals;
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    net::NetClient probe(500 + static_cast<ClientId>(i));
    if (!probe.connect(cluster.endpoint(i), 2000)) {
      std::fprintf(stderr, "final read connect to server %zu failed\n", i);
      return 1;
    }
    probe.set_io_timeout_ms(5000);
    for (ObjectId g = 0; g < static_cast<ObjectId>(opt.spawn_k); ++g) {
      consistency::OpRecord record;
      record.client = 500 + static_cast<ClientId>(i);
      record.session_seq = g;
      record.is_write = false;
      record.object = g;
      record.server = static_cast<NodeId>(i);
      record.invoked_at = next_tick();
      const auto resp = probe.read(g, g);
      if (!resp.has_value()) {
        std::fprintf(stderr, "final read failed at server %zu\n", i);
        return 1;
      }
      record.tag = resp->tag;
      record.timestamp = resp->vc;
      record.value_hash = consistency::hash_value_bytes(
          {resp->value.data(), resp->value.size()});
      record.responded_at = next_tick();
      finals.push_back(std::move(record));
    }
  }
  consistency::History history;
  for (auto& op : seeder.ops) history.record(std::move(op));
  for (auto& s : sessions) {
    for (auto& op : s->ops) history.record(std::move(op));
  }
  const auto causal = consistency::check_causal_consistency(history);
  const auto session = consistency::check_session_guarantees(history);
  const auto conv = consistency::check_convergence(history, finals);
  const std::size_t session_violations = causal.violations.size() +
                                         session.violations.size() +
                                         conv.violations.size();
  if (session_violations != 0) {
    std::fprintf(stderr, "CONSISTENCY VIOLATIONS (%zu):\n",
                 session_violations);
    for (const auto* result : {&causal, &session, &conv}) {
      for (const auto& v : result->violations) {
        std::fprintf(stderr, "  %s\n", v.c_str());
      }
    }
  }

  const double seconds = std::chrono::duration<double>(end - start).count();
  const std::uint64_t window_reads =
      hit_reads.load() + origin_reads.load();
  const double reads_per_s = static_cast<double>(window_reads) / seconds;
  // The hit rate uses the router's own counters over the measurement
  // window: it covers the recorded tier's reads too, and it is what the
  // RouterStatsResp comment promises (hits+misses+stale+expired = reads).
  const std::uint64_t delta_reads = after.routed_reads - before.routed_reads;
  const std::uint64_t delta_hits = after.cache_hits - before.cache_hits;
  const double hit_rate =
      delta_reads == 0
          ? 0.0
          : static_cast<double>(delta_hits) / static_cast<double>(delta_reads);
  const auto hl = hit_lat_ns.snapshot();
  const auto ol = origin_lat_ns.snapshot();

  std::printf("frontdoor --saturate: %zu servers, %zu objects, %zu-byte "
              "values, %d Zipf(%.2f) readers + %d recorded sessions\n\n",
              opt.spawn_n, opt.spawn_k, opt.value_bytes, kLoadThreads,
              kZipfTheta, kSessionThreads);
  std::printf("%-10s %12s %10s %12s %12s %12s %12s\n", "row", "reads/s",
              "hit_rate", "hit p50 us", "hit p99 us", "orig p50 us",
              "orig p99 us");
  std::printf("%-10s %12.1f %10.3f %12.1f %12.1f %12.1f %12.1f\n",
              "saturate", reads_per_s, hit_rate, hl.percentile(0.5) / 1e3,
              hl.percentile(0.99) / 1e3, ol.percentile(0.5) / 1e3,
              ol.percentile(0.99) / 1e3);

  obs::BenchReport report("frontdoor");
  report.set_config("mode", "saturate");
  report.set_config("smoke", opt.smoke);
  report.set_config("servers", opt.spawn_n);
  report.set_config("objects", opt.spawn_k);
  report.set_config("value_bytes", opt.value_bytes);
  report.set_config("load_threads", kLoadThreads);
  report.set_config("session_threads", kSessionThreads);
  report.set_config("zipf_theta", kZipfTheta);
  report.set_config("measured_s", seconds);
  report.add_row("saturate")
      .metric("reads_per_s", reads_per_s)
      .metric("hit_rate", hit_rate)
      .metric("hit_p50_us", hl.percentile(0.5) / 1e3)
      .metric("hit_p99_us", hl.percentile(0.99) / 1e3)
      .metric("origin_p50_us", ol.percentile(0.5) / 1e3)
      .metric("origin_p99_us", ol.percentile(0.99) / 1e3)
      .metric("recorded_ops", static_cast<double>(recorded_ops.load()))
      .metric("session_violations",
              static_cast<double>(session_violations))
      .metric("failures", static_cast<double>(failures.load()));
  report.add_row("router")
      .metric("routed_reads", static_cast<double>(after.routed_reads))
      .metric("routed_writes", static_cast<double>(after.routed_writes))
      .metric("cache_hits", static_cast<double>(after.cache_hits))
      .metric("cache_misses", static_cast<double>(after.cache_misses))
      .metric("cache_stale", static_cast<double>(after.cache_stale))
      .metric("cache_expired", static_cast<double>(after.cache_expired))
      .metric("fallthroughs", static_cast<double>(after.fallthroughs))
      .metric("reroutes", static_cast<double>(after.reroutes));
  const std::string path = report.write_default();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());

  router.stop();
  return session_violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--saturate") == 0) {
      opt.saturate = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--spawn") == 0) {
      opt.spawn_n = std::strtoul(next_arg(i), nullptr, 10);
      opt.spawn_k = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--server-bin") == 0) {
      opt.server_bin = next_arg(i);
    } else if (std::strcmp(argv[i], "--value-bytes") == 0) {
      opt.value_bytes = std::strtoul(next_arg(i), nullptr, 10);
    } else {
      usage((std::string("unknown flag ") + argv[i]).c_str());
    }
  }
  if (!opt.saturate) usage("--saturate is the only mode");
  if (opt.spawn_n == 0 || opt.spawn_k == 0) usage("--spawn N K is required");
  if (opt.server_bin.empty()) usage("--server-bin is required");
  return run_saturate(opt);
}
