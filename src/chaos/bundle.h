// Replay bundles: the self-contained JSON artifact causalec_fuzz writes for
// every failure it finds, and what `causalec_fuzz --replay <file>` reads
// back. A bundle carries the (shrunk) FaultPlan, the harness options that
// matter for determinism (the injected-bug flag), the violations observed,
// and the run's history hash -- replaying the plan must reproduce the hash
// byte-for-byte or the replay reports divergence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/runner.h"
#include "obs/flight_recorder.h"

namespace causalec::chaos {

struct ReplayBundle {
  FaultPlan plan;
  bool inject_bug = false;
  /// Recovery self-test seam (ChaosOptions::inject_recovery_bug). Optional
  /// in the JSON (absent = false) so old bundles stay readable.
  bool inject_recovery_bug = false;
  std::uint64_t history_hash = 0;
  std::vector<std::string> violations;
  /// Per-server flight-recorder tails from the failing run (index = server
  /// id; RunOutcome::flight). Optional in the JSON (absent = empty) so old
  /// bundles stay readable. Diagnostic only: replay ignores it beyond
  /// echoing, and it never affects the history hash.
  std::vector<std::vector<obs::FlightEvent>> flight;
};

std::string bundle_to_json(const ReplayBundle& bundle);
/// nullopt on malformed input (wrong format tag, missing fields, invalid
/// plan).
std::optional<ReplayBundle> bundle_from_json(std::string_view text);

}  // namespace causalec::chaos
