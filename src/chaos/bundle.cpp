#include "chaos/bundle.h"

#include <functional>
#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace causalec::chaos {

namespace {

// Re-serializes a parsed JSON subtree to text, so a sub-schema's own parser
// (FaultPlan::from_json, flight_events_from_json) can own its decoding.
std::string reserialize(const obs::JsonValue& root) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  std::function<void(const obs::JsonValue&)> emit =
      [&](const obs::JsonValue& value) {
        switch (value.kind()) {
          case obs::JsonValue::Kind::kNull:
            w.value_null();
            break;
          case obs::JsonValue::Kind::kBool:
            w.value(value.as_bool());
            break;
          case obs::JsonValue::Kind::kNumber:
            w.value_raw(value.number_literal());
            break;
          case obs::JsonValue::Kind::kString:
            w.value(value.as_string());
            break;
          case obs::JsonValue::Kind::kArray:
            w.begin_array();
            for (const auto& item : value.items()) emit(item);
            w.end_array();
            break;
          case obs::JsonValue::Kind::kObject:
            w.begin_object();
            for (const auto& [key, member] : value.members()) {
              w.key(key);
              emit(member);
            }
            w.end_object();
            break;
        }
      };
  emit(root);
  return out.str();
}

}  // namespace

std::string bundle_to_json(const ReplayBundle& bundle) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("format");
  w.value("causalec-chaos-bundle-v1");
  w.key("inject_bug");
  w.value(bundle.inject_bug);
  w.key("inject_recovery_bug");
  w.value(bundle.inject_recovery_bug);
  // Emitted as a JSON number; the parser keeps the literal, so the full
  // u64 range survives the round-trip.
  w.key("history_hash");
  w.value(bundle.history_hash);
  w.key("violations");
  w.begin_array();
  for (const std::string& v : bundle.violations) w.value(v);
  w.end_array();
  w.key("flight");
  w.begin_array();
  for (const auto& node_events : bundle.flight) {
    w.value_raw(obs::flight_events_to_json(node_events));
  }
  w.end_array();
  w.key("plan");
  w.value_raw(bundle.plan.to_json());
  w.end_object();
  return out.str();
}

std::optional<ReplayBundle> bundle_from_json(std::string_view text) {
  const auto doc = obs::json_parse(text);
  if (!doc || doc->kind() != obs::JsonValue::Kind::kObject) {
    return std::nullopt;
  }
  const auto* format = doc->find("format");
  if (!format || format->kind() != obs::JsonValue::Kind::kString ||
      format->as_string() != "causalec-chaos-bundle-v1") {
    return std::nullopt;
  }

  ReplayBundle bundle;
  const auto* inject = doc->find("inject_bug");
  if (!inject || inject->kind() != obs::JsonValue::Kind::kBool) {
    return std::nullopt;
  }
  bundle.inject_bug = inject->as_bool();

  if (const auto* recovery = doc->find("inject_recovery_bug")) {
    if (recovery->kind() != obs::JsonValue::Kind::kBool) return std::nullopt;
    bundle.inject_recovery_bug = recovery->as_bool();
  }

  const auto* hash = doc->find("history_hash");
  if (!hash || hash->kind() != obs::JsonValue::Kind::kNumber) {
    return std::nullopt;
  }
  bundle.history_hash = hash->as_u64();

  const auto* violations = doc->find("violations");
  if (!violations || violations->kind() != obs::JsonValue::Kind::kArray) {
    return std::nullopt;
  }
  for (const obs::JsonValue& v : violations->items()) {
    if (v.kind() != obs::JsonValue::Kind::kString) return std::nullopt;
    bundle.violations.push_back(v.as_string());
  }

  // Optional flight-recorder dumps (bundles written before the flight
  // recorder existed simply lack the key).
  if (const auto* flight = doc->find("flight")) {
    if (flight->kind() != obs::JsonValue::Kind::kArray) return std::nullopt;
    for (const obs::JsonValue& node_events : flight->items()) {
      if (node_events.kind() != obs::JsonValue::Kind::kArray) {
        return std::nullopt;
      }
      bundle.flight.push_back(
          obs::flight_events_from_json(reserialize(node_events)));
    }
  }

  const auto* plan = doc->find("plan");
  if (!plan) return std::nullopt;
  // Round-trip the plan through its own parser: re-serialize the subtree.
  // (The plan parser owns the schema; keeping one decoder avoids drift.)
  auto parsed = FaultPlan::from_json(reserialize(*plan));
  if (!parsed) return std::nullopt;
  bundle.plan = std::move(*parsed);
  return bundle;
}

}  // namespace causalec::chaos
