#include "chaos/runner.h"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "causalec/cluster.h"
#include "common/random.h"
#include "consistency/causal_checker.h"
#include "consistency/recorder.h"
#include "erasure/codes.h"
#include "persist/backend.h"
#include "sim/latency.h"
#include "workload/driver.h"

namespace causalec::chaos {

namespace {

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
}

void fnv_op(std::uint64_t& h, const consistency::OpRecord& op) {
  fnv_u64(h, op.client);
  fnv_u64(h, op.session_seq);
  fnv_u64(h, op.is_write ? 1 : 0);
  fnv_u64(h, op.object);
  fnv_u64(h, op.server);
  fnv_u64(h, op.timestamp.size());
  for (std::size_t i = 0; i < op.timestamp.size(); ++i) {
    fnv_u64(h, op.timestamp[i]);
  }
  fnv_u64(h, op.tag.id);
  for (std::size_t i = 0; i < op.tag.ts.size(); ++i) {
    fnv_u64(h, op.tag.ts[i]);
  }
  fnv_u64(h, op.value_hash);
  fnv_u64(h, static_cast<std::uint64_t>(op.invoked_at));
  fnv_u64(h, static_cast<std::uint64_t>(op.responded_at));
}

}  // namespace

std::uint64_t hash_run(const consistency::History& history,
                       const std::vector<consistency::OpRecord>& final_reads,
                       const sim::NetworkStats& net) {
  std::uint64_t h = 14695981039346656037ull;
  fnv_u64(h, history.size());
  for (const auto& op : history.ops()) fnv_op(h, op);
  fnv_u64(h, final_reads.size());
  for (const auto& op : final_reads) fnv_op(h, op);
  fnv_u64(h, net.total_messages);
  fnv_u64(h, net.total_bytes);
  for (const auto& [type, per] : net.by_type) {
    for (const char c : type) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    fnv_u64(h, per.count);
    fnv_u64(h, per.bytes);
  }
  return h;
}

RunOutcome run_plan(const FaultPlan& plan, const ChaosOptions& options) {
  CEC_CHECK_MSG(plan.valid(), "structurally invalid fault plan");
  const WorkloadSpec& w = plan.workload;

  ClusterConfig config;
  config.seed = plan.seed;
  config.gc_period = plan.gc_period;
  config.gc_jitter = plan.gc_jitter;
  config.server.fanout = plan.nearest_fanout
                             ? ReadFanout::kNearestRecoverySet
                             : ReadFanout::kBroadcast;
  // The harness reports Error1/Error2 as violations instead of aborting --
  // injected-bug runs must survive to the shrinking stage.
  config.server.strict_error_invariants = false;
  config.server.unsafe_skip_apply_order_check = options.inject_bug;
  config.server.unsafe_skip_rejoin_catchup = options.inject_recovery_bug;
  config.obs.tracer = options.tracer;

  // Durable state is only journaled when the schedule actually recovers a
  // node, so plans without crash_recover events run exactly as before.
  const bool has_crash_recover = std::any_of(
      plan.events.begin(), plan.events.end(), [](const FaultEvent& ev) {
        return ev.kind == FaultEvent::Kind::kCrashRecover;
      });
  persist::MemoryBackend persistence;
  if (has_crash_recover) config.persistence = &persistence;

  Cluster cluster(
      erasure::make_systematic_rs(w.num_servers, w.num_objects, w.value_bytes),
      std::make_unique<sim::HeavyTailLatency>(
          plan.latency_base, plan.latency_alpha, plan.latency_cap,
          plan.seed ^ 0x1A7E9C0ull),
      config);
  sim::Simulation& sim = cluster.sim();

  // Clients attach only to servers the schedule never takes down (not even
  // transiently): a client's calls bypass the simulated network, so a down
  // home server would teleport state out of a halted node.
  const std::vector<NodeId> ever_down = plan.ever_down_nodes();
  const std::set<NodeId> ever_down_set(ever_down.begin(), ever_down.end());
  std::vector<NodeId> homes;
  for (std::uint32_t s = 0; s < w.num_servers; ++s) {
    if (!ever_down_set.count(s)) homes.push_back(s);
  }
  CEC_CHECK(!homes.empty());

  // Final convergence reads cover every server that is up at the end:
  // never-down servers plus crash-recovered ones (a recovered node that
  // failed to catch up must be caught by the convergence check).
  const std::vector<NodeId> crashed = plan.crashed_nodes();
  const std::set<NodeId> crashed_set(crashed.begin(), crashed.end());
  std::vector<NodeId> survivors;
  for (std::uint32_t s = 0; s < w.num_servers; ++s) {
    if (!crashed_set.count(s)) survivors.push_back(s);
  }

  RunOutcome outcome;
  consistency::History& history = outcome.history;
  auto now_fn = [&sim] { return sim.now(); };

  std::vector<std::unique_ptr<consistency::SessionRecorder>> recorders;
  for (std::uint32_t i = 0; i < w.sessions; ++i) {
    Client& client = cluster.make_client(homes[i % homes.size()]);
    recorders.push_back(std::make_unique<consistency::SessionRecorder>(
        &client, &history, now_fn));
  }

  // Deterministic payloads: every write's bytes come from one seeded
  // stream, consumed in (deterministic) issue order.
  auto value_rng = std::make_shared<Rng>(plan.seed ^ 0x7A1DEull);
  auto make_value = [value_rng, &w] {
    erasure::Value value(w.value_bytes);
    for (std::uint32_t i = 0; i < w.value_bytes; ++i) {
      value[i] = static_cast<std::uint8_t>(value_rng->next_below(256));
    }
    return value;
  };

  workload::OpMix mix;
  mix.write_fraction = w.write_fraction;
  workload::ClosedLoopDriver driver(
      &sim, mix,
      std::make_shared<workload::KeyPicker>(w.num_objects, w.zipf_theta,
                                            plan.seed ^ 0x5E55ull),
      w.think_rate_hz, plan.seed ^ 0xD21Full);
  driver.set_op_budget(w.ops);
  for (auto& recorder : recorders) {
    consistency::SessionRecorder* rec = recorder.get();
    workload::ClosedLoopDriver::Session session;
    session.issue_write = [rec, make_value](ObjectId key,
                                            std::function<void()> done) {
      rec->write(key, make_value());
      done();  // writes are synchronous (Property (I))
    };
    session.issue_read = [rec](ObjectId key, std::function<void()> done) {
      rec->read(key, [done = std::move(done)](const erasure::Value&,
                                              const Tag&) { done(); });
    };
    driver.add_session(std::move(session));
  }

  // Script the fault schedule.
  for (const FaultEvent& ev : plan.events) {
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
        sim.schedule_at(ev.at,
                        [&cluster, ev] { cluster.halt_server(ev.node); });
        break;
      case FaultEvent::Kind::kPartition:
        sim.schedule_at(ev.at, [&cluster, ev, &w] {
          std::vector<NodeId> side;
          for (std::uint32_t s = 0; s < w.num_servers; ++s) {
            if (ev.side_mask & (1ull << s)) side.push_back(s);
          }
          cluster.partition(side, ev.at + ev.duration);
        });
        break;
      case FaultEvent::Kind::kDelayBurst:
        sim.schedule_at(ev.at, [&sim, ev] {
          sim.add_channel_delay(ev.from, ev.to, ev.extra);
        });
        sim.schedule_at(ev.at + ev.duration, [&sim, ev] {
          sim.add_channel_delay(ev.from, ev.to, -ev.extra);
        });
        break;
      case FaultEvent::Kind::kGcNow:
        sim.schedule_at(ev.at, [&cluster, &sim, ev] {
          if (!sim.halted(ev.node)) {
            cluster.server(ev.node).run_garbage_collection();
          }
        });
        break;
      case FaultEvent::Kind::kCrashRecover:
        sim.schedule_at(ev.at,
                        [&cluster, ev] { cluster.halt_server(ev.node); });
        sim.schedule_at(ev.at + ev.duration,
                        [&cluster, ev] { cluster.recover_server(ev.node); });
        break;
    }
  }

  driver.start(plan.horizon);
  cluster.run_for(plan.horizon);

  // Drain in-flight reads (bounded: reads at live servers with >= k
  // survivors always terminate; a stuck one is a liveness bug).
  auto any_busy = [&recorders] {
    for (const auto& r : recorders) {
      if (r->busy()) return true;
    }
    return false;
  };
  for (int i = 0; i < 300 && any_busy(); ++i) {
    cluster.run_for(10 * sim::kMillisecond);
  }
  if (any_busy()) {
    outcome.violations.push_back(
        "liveness: operations still pending 3s past the horizon");
  }

  outcome.ops_issued = driver.ops_issued();
  outcome.ops_completed = history.size();

  // Quiesce the protocol (drains held-back partition traffic and enough GC
  // rounds for storage to converge), then read everything back at every
  // survivor: eventual visibility among the non-halted servers.
  cluster.settle();
  for (NodeId s : survivors) {
    Client& reader = cluster.make_client(s);
    consistency::History final_history;
    consistency::SessionRecorder recorder(&reader, &final_history, now_fn);
    for (std::uint32_t x = 0; x < w.num_objects; ++x) {
      recorder.read(x);
      for (int i = 0; i < 300 && recorder.busy(); ++i) {
        cluster.run_for(10 * sim::kMillisecond);
      }
      if (recorder.busy()) {
        std::ostringstream oss;
        oss << "liveness: final read of X" << x << " at server " << s
            << " did not complete";
        outcome.violations.push_back(oss.str());
        break;
      }
    }
    for (const auto& op : final_history.ops()) {
      outcome.final_reads.push_back(op);
    }
  }

  // Consistency gates.
  const consistency::CheckResult results[] = {
      consistency::check_causal_consistency(history),
      consistency::check_session_guarantees(history),
      consistency::check_convergence(history, outcome.final_reads)};
  for (const auto& result : results) {
    for (const auto& violation : result.violations) {
      outcome.violations.push_back(violation);
    }
  }

  // Rejoin convergence: after settle, every live server has seen every
  // write that reached any live server (reliable channels deliver them;
  // the rejoin push covers what a recovered node missed while down), so
  // their vector clocks must agree. A recovered server that failed to
  // catch up is exactly a behind clock -- this is the oracle that catches
  // the inject_recovery_bug seam, which the read path alone masks (reads
  // fan out and decode from fresh peers even at a stale server).
  if (!survivors.empty()) {
    VectorClock max_vc = cluster.server(survivors.front()).clock();
    for (NodeId s : survivors) max_vc.merge(cluster.server(s).clock());
    for (NodeId s : survivors) {
      if (!(cluster.server(s).clock() == max_vc)) {
        std::ostringstream oss;
        oss << "recovery: server " << s
            << "'s clock is behind the live maximum after settle "
               "(stale rejoin)";
        outcome.violations.push_back(oss.str());
      }
    }
  }

  // Error1/Error2 stay zero in every correct execution (Theorem 4.1's
  // invariants); any increment is a protocol bug.
  for (std::uint32_t s = 0; s < w.num_servers; ++s) {
    const ServerCounters& counters = cluster.server(s).counters();
    if (counters.error1_events != 0 || counters.error2_events != 0) {
      std::ostringstream oss;
      oss << "invariant: server " << s << " raised Error1 x"
          << counters.error1_events << " / Error2 x"
          << counters.error2_events;
      outcome.violations.push_back(oss.str());
    }
  }

  // Aggregate repair-plan consumption (alive servers only; a halted node's
  // counters describe its pre-crash life and still count).
  for (std::uint32_t s = 0; s < w.num_servers; ++s) {
    const ServerCounters& counters = cluster.server(s).counters();
    outcome.degraded_reads += counters.degraded_reads;
    outcome.repair_plan_hits += counters.repair_plan_hits;
    outcome.repair_bytes += counters.repair_bytes;
  }

  // Capture every node's flight-recorder tail; replay bundles embed these
  // so a shrunk reproducer shows the last protocol events each server saw.
  outcome.flight.reserve(w.num_servers);
  for (std::uint32_t s = 0; s < w.num_servers; ++s) {
    outcome.flight.push_back(cluster.server(s).flight_recorder().snapshot());
  }

  outcome.net = sim.stats();
  outcome.history_hash = hash_run(history, outcome.final_reads, outcome.net);
  outcome.ok = outcome.violations.empty();
  return outcome;
}

}  // namespace causalec::chaos
