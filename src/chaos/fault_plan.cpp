#include "chaos/fault_plan.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/expect.h"
#include "common/random.h"
#include "obs/json.h"

namespace causalec::chaos {

namespace {

const char* kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kDelayBurst:
      return "delay_burst";
    case FaultEvent::Kind::kGcNow:
      return "gc_now";
    case FaultEvent::Kind::kCrashRecover:
      return "crash_recover";
  }
  return "?";
}

std::optional<FaultEvent::Kind> kind_from_name(std::string_view name) {
  if (name == "crash") return FaultEvent::Kind::kCrash;
  if (name == "partition") return FaultEvent::Kind::kPartition;
  if (name == "delay_burst") return FaultEvent::Kind::kDelayBurst;
  if (name == "gc_now") return FaultEvent::Kind::kGcNow;
  if (name == "crash_recover") return FaultEvent::Kind::kCrashRecover;
  return std::nullopt;
}

/// Deterministic full order so generate() output is independent of the
/// std::sort implementation.
bool event_before(const FaultEvent& a, const FaultEvent& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.node != b.node) return a.node < b.node;
  if (a.from != b.from) return a.from < b.from;
  if (a.to != b.to) return a.to < b.to;
  if (a.side_mask != b.side_mask) return a.side_mask < b.side_mask;
  return a.duration < b.duration;
}

}  // namespace

FaultPlan FaultPlan::generate(std::uint64_t seed,
                              const GenerateLimits& limits) {
  // Domain-separated from every Rng used while running the plan.
  Rng rng(seed ^ 0xFA0157'9A1Bull);
  FaultPlan plan;
  plan.seed = seed;

  WorkloadSpec& w = plan.workload;
  w.num_servers = static_cast<std::uint32_t>(5 + rng.next_below(4));  // 5..8
  // 2..n-2 data symbols: keeps a crash budget of at least 2.
  w.num_objects =
      static_cast<std::uint32_t>(2 + rng.next_below(w.num_servers - 3));
  w.value_bytes = rng.next_bool(0.5) ? 32 : 64;
  const std::uint32_t max_sessions = std::max<std::uint32_t>(
      2, limits.max_sessions);
  w.sessions = static_cast<std::uint32_t>(
      2 + rng.next_below(max_sessions - 1));  // 2..max_sessions
  const std::uint64_t min_ops = std::min<std::uint64_t>(40, limits.max_ops);
  w.ops = min_ops + rng.next_below(limits.max_ops - min_ops + 1);
  w.write_fraction = 0.3 + 0.4 * rng.next_double();
  w.zipf_theta = rng.next_bool(0.5) ? 0.99 : 0.0;
  w.think_rate_hz = 500.0 + 3500.0 * rng.next_double();

  plan.horizon = 2 * sim::kSecond;
  plan.gc_period = (10 + static_cast<SimTime>(rng.next_below(30))) *
                   sim::kMillisecond;
  plan.gc_jitter = static_cast<SimTime>(
      rng.next_below(static_cast<std::uint64_t>(plan.gc_period / 2)));
  plan.latency_base = 200 * sim::kMicrosecond +
                      static_cast<SimTime>(rng.next_below(
                          static_cast<std::uint64_t>(1800 * sim::kMicrosecond)));
  plan.latency_alpha = 1.1 + 1.4 * rng.next_double();
  plan.latency_cap = 10.0 + 60.0 * rng.next_double();
  plan.nearest_fanout = rng.next_bool(0.5);

  // Faults land in the first 60% of the horizon so the run has slack to
  // recover before the convergence checks.
  const SimTime window = plan.horizon * 3 / 5;
  auto pick_time = [&] {
    return static_cast<SimTime>(
        rng.next_below(static_cast<std::uint64_t>(window)));
  };

  // Crashes: distinct nodes, never more than the tolerated budget.
  const std::size_t budget =
      std::min<std::size_t>(limits.max_crashes, plan.crash_budget());
  const std::size_t num_crashes = rng.next_below(budget + 1);
  std::vector<NodeId> nodes(w.num_servers);
  for (std::uint32_t i = 0; i < w.num_servers; ++i) nodes[i] = i;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {  // Fisher-Yates
    const std::size_t j = i + rng.next_below(nodes.size() - i);
    std::swap(nodes[i], nodes[j]);
  }
  for (std::size_t i = 0; i < num_crashes; ++i) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kCrash;
    ev.at = pick_time();
    ev.node = nodes[i];
    plan.events.push_back(ev);
  }

  const std::size_t num_partitions = rng.next_below(limits.max_partitions + 1);
  for (std::size_t i = 0; i < num_partitions; ++i) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kPartition;
    ev.at = pick_time();
    // Non-trivial proper subset of the servers.
    const std::uint64_t all = (1ull << w.num_servers) - 1;
    ev.side_mask = 1 + rng.next_below(all - 1);
    ev.duration = 5 * sim::kMillisecond +
                  static_cast<SimTime>(rng.next_below(
                      static_cast<std::uint64_t>(150 * sim::kMillisecond)));
    plan.events.push_back(ev);
  }

  const std::size_t num_bursts = rng.next_below(limits.max_bursts + 1);
  for (std::size_t i = 0; i < num_bursts; ++i) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kDelayBurst;
    ev.at = pick_time();
    ev.from = static_cast<NodeId>(rng.next_below(w.num_servers));
    ev.to = static_cast<NodeId>(rng.next_below(w.num_servers - 1));
    if (ev.to >= ev.from) ++ev.to;  // distinct endpoints
    ev.extra = sim::kMillisecond +
               static_cast<SimTime>(rng.next_below(
                   static_cast<std::uint64_t>(30 * sim::kMillisecond)));
    ev.duration = 5 * sim::kMillisecond +
                  static_cast<SimTime>(rng.next_below(
                      static_cast<std::uint64_t>(100 * sim::kMillisecond)));
    plan.events.push_back(ev);
  }

  const std::size_t num_pokes = rng.next_below(limits.max_gc_pokes + 1);
  for (std::size_t i = 0; i < num_pokes; ++i) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kGcNow;
    ev.at = pick_time();
    ev.node = static_cast<NodeId>(rng.next_below(w.num_servers));
    plan.events.push_back(ev);
  }

  // Crash-recover cycles (drawn last so earlier fields match plans from
  // builds without this fault kind). Candidates are the non-crashed nodes
  // minus one reserved never-down client home; windows are sequential and
  // non-overlapping, so with the permanent crashes leaving one unit of
  // headroom (< budget) the simultaneous-down count stays within n - k,
  // while repeated picks let *cumulative* crashes exceed it.
  const std::size_t cr_candidates =
      w.num_servers - num_crashes - 1;  // nodes[num_crashes..n-2]
  std::size_t num_cr = 0;
  if (num_crashes < plan.crash_budget() && cr_candidates > 0) {
    num_cr = rng.next_below(limits.max_crash_recovers + 1);
  }
  // Start the downtime cursor early: closed-loop sessions burn most of the
  // op budget in the first fraction of the horizon, and a crash-recover
  // window only exercises real catch-up when writes land *while* the node
  // is down.
  SimTime cursor = 5 * sim::kMillisecond;
  for (std::size_t i = 0; i < num_cr; ++i) {
    const SimTime remaining = window - cursor;
    if (remaining < 40 * sim::kMillisecond) break;
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kCrashRecover;
    ev.at = cursor + static_cast<SimTime>(rng.next_below(
                         static_cast<std::uint64_t>(std::min<SimTime>(
                             remaining / 8, 30 * sim::kMillisecond))));
    ev.duration =
        10 * sim::kMillisecond +
        static_cast<SimTime>(rng.next_below(static_cast<std::uint64_t>(
            std::min<SimTime>(remaining / 4, 80 * sim::kMillisecond))));
    ev.node = nodes[num_crashes + rng.next_below(cr_candidates)];
    cursor = ev.at + ev.duration + 5 * sim::kMillisecond;
    plan.events.push_back(ev);
  }

  std::sort(plan.events.begin(), plan.events.end(), event_before);
  CEC_CHECK(plan.valid());
  return plan;
}

FaultPlan FaultPlan::degraded_read_scenario(std::uint64_t seed) {
  Rng rng(seed ^ 0xDE69AD'4EADull);
  FaultPlan plan;
  plan.seed = seed;

  WorkloadSpec& w = plan.workload;
  w.num_servers = 6;
  w.num_objects = 4;  // RS(6, 4): crash budget n - k = 2
  w.value_bytes = 64;
  w.sessions = 4;
  w.ops = 120;
  w.write_fraction = 0.3;
  w.zipf_theta = 0.0;  // uniform keys touch every object's repair plan
  w.think_rate_hz = 2000.0;

  plan.horizon = 2 * sim::kSecond;
  plan.gc_period = 10 * sim::kMillisecond;
  plan.latency_base = sim::kMillisecond;
  plan.latency_alpha = 1.3;
  plan.latency_cap = 30.0;
  plan.nearest_fanout = true;  // degraded reads only shape targeted fan-out

  // Timing: a read only reaches the degraded fan-out once GC has pruned its
  // object from the history list, and GC needs del records from *all*
  // servers to prune -- so cleanup must land while everyone is alive and
  // the workload is quiescent (a write refills the history it cleaned, and
  // after a crash the del floor freezes at the dead servers' last records).
  // The closed-loop sessions drain their op budget within a few hundred
  // milliseconds; a forced GC sweep at 380 ms mops up whatever the periodic
  // timers left, then the whole n - k crash budget lands right behind it.
  // The runner's final convergence reads (every survivor x every object,
  // all under two dead servers) must then plan around the dead pair.
  for (std::uint32_t s = 0; s < w.num_servers; ++s) {
    FaultEvent gc;
    gc.kind = FaultEvent::Kind::kGcNow;
    gc.at = 380 * sim::kMillisecond;
    gc.node = static_cast<NodeId>(s);
    plan.events.push_back(gc);
  }
  std::vector<NodeId> nodes(w.num_servers);
  for (std::uint32_t i = 0; i < w.num_servers; ++i) nodes[i] = i;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const std::size_t j = i + rng.next_below(nodes.size() - i);
    std::swap(nodes[i], nodes[j]);
  }
  for (std::size_t i = 0; i < plan.crash_budget(); ++i) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::kCrash;
    ev.at = static_cast<SimTime>(
        (400 + 30 * i) * static_cast<std::uint64_t>(sim::kMillisecond) +
        rng.next_below(static_cast<std::uint64_t>(10 * sim::kMillisecond)));
    ev.node = nodes[i];
    plan.events.push_back(ev);
  }

  std::sort(plan.events.begin(), plan.events.end(), event_before);
  CEC_CHECK(plan.valid());
  return plan;
}

std::vector<NodeId> FaultPlan::crashed_nodes() const {
  std::set<NodeId> crashed;
  for (const FaultEvent& ev : events) {
    if (ev.kind == FaultEvent::Kind::kCrash) crashed.insert(ev.node);
  }
  return {crashed.begin(), crashed.end()};
}

std::vector<NodeId> FaultPlan::ever_down_nodes() const {
  std::set<NodeId> down;
  for (const FaultEvent& ev : events) {
    if (ev.kind == FaultEvent::Kind::kCrash ||
        ev.kind == FaultEvent::Kind::kCrashRecover) {
      down.insert(ev.node);
    }
  }
  return {down.begin(), down.end()};
}

std::size_t FaultPlan::max_simultaneous_down() const {
  // O(E^2) sweep over event boundaries; schedules are tiny.
  std::vector<SimTime> points;
  for (const FaultEvent& ev : events) {
    if (ev.kind == FaultEvent::Kind::kCrash ||
        ev.kind == FaultEvent::Kind::kCrashRecover) {
      points.push_back(ev.at);
    }
  }
  std::size_t peak = 0;
  for (const SimTime t : points) {
    std::set<NodeId> down;
    for (const FaultEvent& ev : events) {
      if (ev.kind == FaultEvent::Kind::kCrash && ev.at <= t) {
        down.insert(ev.node);
      } else if (ev.kind == FaultEvent::Kind::kCrashRecover && ev.at <= t &&
                 t < ev.at + ev.duration) {
        down.insert(ev.node);
      }
    }
    peak = std::max(peak, down.size());
  }
  return peak;
}

bool FaultPlan::valid() const {
  const WorkloadSpec& w = workload;
  if (w.num_servers < 2 || w.num_servers > 63) return false;
  if (w.num_objects < 1 || w.num_objects > w.num_servers) return false;
  if (w.value_bytes == 0 || w.sessions == 0 || w.ops == 0) return false;
  if (!(w.write_fraction >= 0.0 && w.write_fraction <= 1.0)) return false;
  if (horizon <= 0 || gc_period <= 0 || gc_jitter < 0) return false;
  if (latency_base <= 0 || latency_alpha <= 0 || latency_cap < 1.0) {
    return false;
  }
  if (crashed_nodes().size() > crash_budget()) return false;
  if (max_simultaneous_down() > crash_budget()) return false;
  if (ever_down_nodes().size() >= w.num_servers) return false;
  const std::vector<NodeId> permanently_crashed = crashed_nodes();
  const std::set<NodeId> crashed_set(permanently_crashed.begin(),
                                     permanently_crashed.end());
  const std::uint64_t all = (1ull << w.num_servers) - 1;
  for (const FaultEvent& ev : events) {
    if (ev.at < 0 || ev.at > horizon) return false;
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
      case FaultEvent::Kind::kGcNow:
        if (ev.node >= w.num_servers) return false;
        break;
      case FaultEvent::Kind::kCrashRecover:
        // The recovery must fire inside the horizon, the node must not also
        // be crash-stop (the runner would resurrect a dead node), and two
        // downtime windows of the same node must not overlap (the second
        // recovery would fire on a running server).
        if (ev.node >= w.num_servers || ev.duration <= 0 ||
            ev.at + ev.duration > horizon || crashed_set.count(ev.node)) {
          return false;
        }
        for (const FaultEvent& other : events) {
          if (&other == &ev ||
              other.kind != FaultEvent::Kind::kCrashRecover ||
              other.node != ev.node) {
            continue;
          }
          if (ev.at < other.at + other.duration &&
              other.at < ev.at + ev.duration) {
            return false;
          }
        }
        break;
      case FaultEvent::Kind::kPartition:
        if (ev.side_mask == 0 || (ev.side_mask & ~all) != 0 ||
            ev.side_mask == all || ev.duration <= 0) {
          return false;
        }
        break;
      case FaultEvent::Kind::kDelayBurst:
        if (ev.from >= w.num_servers || ev.to >= w.num_servers ||
            ev.from == ev.to || ev.extra <= 0 || ev.duration <= 0) {
          return false;
        }
        break;
    }
  }
  return true;
}

std::string FaultPlan::to_json() const {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("format");
  w.value("causalec-chaos-plan-v1");
  w.key("seed");
  w.value(seed);
  w.key("workload");
  w.begin_object();
  w.key("num_servers");
  w.value(static_cast<std::uint64_t>(workload.num_servers));
  w.key("num_objects");
  w.value(static_cast<std::uint64_t>(workload.num_objects));
  w.key("value_bytes");
  w.value(static_cast<std::uint64_t>(workload.value_bytes));
  w.key("sessions");
  w.value(static_cast<std::uint64_t>(workload.sessions));
  w.key("ops");
  w.value(workload.ops);
  w.key("write_fraction");
  w.value(workload.write_fraction);
  w.key("zipf_theta");
  w.value(workload.zipf_theta);
  w.key("think_rate_hz");
  w.value(workload.think_rate_hz);
  w.end_object();
  w.key("horizon_ns");
  w.value(horizon);
  w.key("gc_period_ns");
  w.value(gc_period);
  w.key("gc_jitter_ns");
  w.value(gc_jitter);
  w.key("latency_base_ns");
  w.value(latency_base);
  w.key("latency_alpha");
  w.value(latency_alpha);
  w.key("latency_cap");
  w.value(latency_cap);
  w.key("nearest_fanout");
  w.value(nearest_fanout);
  w.key("events");
  w.begin_array();
  for (const FaultEvent& ev : events) {
    w.begin_object();
    w.key("kind");
    w.value(kind_name(ev.kind));
    w.key("at_ns");
    w.value(ev.at);
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
      case FaultEvent::Kind::kGcNow:
        w.key("node");
        w.value(static_cast<std::uint64_t>(ev.node));
        break;
      case FaultEvent::Kind::kCrashRecover:
        w.key("node");
        w.value(static_cast<std::uint64_t>(ev.node));
        w.key("duration_ns");
        w.value(ev.duration);
        break;
      case FaultEvent::Kind::kPartition:
        w.key("side_mask");
        w.value(ev.side_mask);
        w.key("duration_ns");
        w.value(ev.duration);
        break;
      case FaultEvent::Kind::kDelayBurst:
        w.key("from");
        w.value(static_cast<std::uint64_t>(ev.from));
        w.key("to");
        w.value(static_cast<std::uint64_t>(ev.to));
        w.key("extra_ns");
        w.value(ev.extra);
        w.key("duration_ns");
        w.value(ev.duration);
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

std::optional<FaultPlan> FaultPlan::from_json(std::string_view text) {
  const auto doc = obs::json_parse(text);
  if (!doc || doc->kind() != obs::JsonValue::Kind::kObject) {
    return std::nullopt;
  }
  const auto* format = doc->find("format");
  if (!format || format->kind() != obs::JsonValue::Kind::kString ||
      format->as_string() != "causalec-chaos-plan-v1") {
    return std::nullopt;
  }

  // Typed field readers; any missing / mistyped field fails the parse.
  bool bad = false;
  auto u64 = [&bad](const obs::JsonValue& obj,
                    std::string_view key) -> std::uint64_t {
    const auto* v = obj.find(key);
    if (!v || v->kind() != obs::JsonValue::Kind::kNumber) {
      bad = true;
      return 0;
    }
    return v->as_u64();
  };
  auto i64 = [&bad](const obs::JsonValue& obj,
                    std::string_view key) -> std::int64_t {
    const auto* v = obj.find(key);
    if (!v || v->kind() != obs::JsonValue::Kind::kNumber) {
      bad = true;
      return 0;
    }
    return v->as_i64();
  };
  auto f64 = [&bad](const obs::JsonValue& obj, std::string_view key) -> double {
    const auto* v = obj.find(key);
    if (!v || v->kind() != obs::JsonValue::Kind::kNumber) {
      bad = true;
      return 0;
    }
    return v->as_double();
  };

  FaultPlan plan;
  plan.seed = u64(*doc, "seed");
  const auto* wl = doc->find("workload");
  if (!wl || wl->kind() != obs::JsonValue::Kind::kObject) return std::nullopt;
  plan.workload.num_servers = static_cast<std::uint32_t>(u64(*wl, "num_servers"));
  plan.workload.num_objects = static_cast<std::uint32_t>(u64(*wl, "num_objects"));
  plan.workload.value_bytes = static_cast<std::uint32_t>(u64(*wl, "value_bytes"));
  plan.workload.sessions = static_cast<std::uint32_t>(u64(*wl, "sessions"));
  plan.workload.ops = u64(*wl, "ops");
  plan.workload.write_fraction = f64(*wl, "write_fraction");
  plan.workload.zipf_theta = f64(*wl, "zipf_theta");
  plan.workload.think_rate_hz = f64(*wl, "think_rate_hz");
  plan.horizon = i64(*doc, "horizon_ns");
  plan.gc_period = i64(*doc, "gc_period_ns");
  plan.gc_jitter = i64(*doc, "gc_jitter_ns");
  plan.latency_base = i64(*doc, "latency_base_ns");
  plan.latency_alpha = f64(*doc, "latency_alpha");
  plan.latency_cap = f64(*doc, "latency_cap");
  const auto* nearest = doc->find("nearest_fanout");
  if (!nearest || nearest->kind() != obs::JsonValue::Kind::kBool) {
    return std::nullopt;
  }
  plan.nearest_fanout = nearest->as_bool();

  const auto* events = doc->find("events");
  if (!events || events->kind() != obs::JsonValue::Kind::kArray) {
    return std::nullopt;
  }
  for (const obs::JsonValue& item : events->items()) {
    if (item.kind() != obs::JsonValue::Kind::kObject) return std::nullopt;
    const auto* kind_field = item.find("kind");
    if (!kind_field || kind_field->kind() != obs::JsonValue::Kind::kString) {
      return std::nullopt;
    }
    const auto kind = kind_from_name(kind_field->as_string());
    if (!kind) return std::nullopt;
    FaultEvent ev;
    ev.kind = *kind;
    ev.at = i64(item, "at_ns");
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
      case FaultEvent::Kind::kGcNow:
        ev.node = static_cast<NodeId>(u64(item, "node"));
        break;
      case FaultEvent::Kind::kCrashRecover:
        ev.node = static_cast<NodeId>(u64(item, "node"));
        ev.duration = i64(item, "duration_ns");
        break;
      case FaultEvent::Kind::kPartition:
        ev.side_mask = u64(item, "side_mask");
        ev.duration = i64(item, "duration_ns");
        break;
      case FaultEvent::Kind::kDelayBurst:
        ev.from = static_cast<NodeId>(u64(item, "from"));
        ev.to = static_cast<NodeId>(u64(item, "to"));
        ev.extra = i64(item, "extra_ns");
        ev.duration = i64(item, "duration_ns");
        break;
    }
    plan.events.push_back(ev);
  }

  if (bad || !plan.valid()) return std::nullopt;
  return plan;
}

}  // namespace causalec::chaos
