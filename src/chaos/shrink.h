// Greedy shrinking of a failing FaultPlan to a minimal reproducer.
//
// Candidate reductions (smaller op budget, fewer sessions, dropped fault
// events -- first/second half bisection, then singles) are re-run through
// run_plan; any candidate that still fails replaces the current plan. The
// loop repeats until no candidate improves, so a plan that started with
// hundreds of operations typically lands on a handful that still trip the
// checker -- small enough to read the violating history by eye.
#pragma once

#include <cstddef>

#include "chaos/fault_plan.h"
#include "chaos/runner.h"

namespace causalec::chaos {

struct ShrinkResult {
  /// The smallest still-failing plan found.
  FaultPlan plan;
  /// run_plan(plan) -- kept so callers can bundle the violations and hash
  /// without re-running.
  RunOutcome outcome;
  /// Total executions spent shrinking.
  std::size_t runs = 0;
};

/// `failing` must fail under `options` (CHECK-enforced by re-running it).
/// `max_runs` caps the executions spent searching.
ShrinkResult shrink(const FaultPlan& failing, const ChaosOptions& options,
                    std::size_t max_runs = 200);

}  // namespace causalec::chaos
