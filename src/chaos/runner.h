// Executes one FaultPlan end-to-end and gates the run with every checker:
// causal consistency (Definition 5), session guarantees (including
// writes-follow-reads), Error1/Error2 invariants, liveness of the issued
// operations, and post-heal convergence among the surviving servers.
//
// Runs are bit-deterministic: the same plan (and ChaosOptions::inject_bug
// flag) always produces the same operation history, the same NetworkStats,
// and therefore the same history_hash. The replay bundle format (bundle.h)
// and the shrinker (shrink.h) both rely on this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "consistency/history.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "sim/simulation.h"

namespace causalec::chaos {

struct ChaosOptions {
  /// Self-test seam: run the servers with the apply-order check disabled
  /// (ServerConfig::unsafe_skip_apply_order_check). A correct harness must
  /// catch the resulting causal violations.
  bool inject_bug = false;
  /// Self-test seam for recovery: rejoining servers skip the anti-entropy
  /// catch-up round (ServerConfig::unsafe_skip_rejoin_catchup). Plans with
  /// crash_recover events must then fail the convergence / invariant
  /// checks -- proving the harness would catch a stale rejoin.
  bool inject_recovery_bug = false;
  /// Optional Chrome-trace sink for the run (replay bundles re-run the
  /// shrunk plan with this set to export a trace).
  obs::Tracer* tracer = nullptr;
};

struct RunOutcome {
  bool ok = true;
  std::vector<std::string> violations;
  /// FNV-1a over the complete operation history, the final convergence
  /// reads, and the NetworkStats -- the byte-for-byte replay fingerprint.
  std::uint64_t history_hash = 0;
  std::uint64_t ops_issued = 0;
  std::uint64_t ops_completed = 0;
  sim::NetworkStats net;
  /// The main workload history (diagnostics / determinism tests).
  consistency::History history;
  /// The per-survivor final reads used by the convergence check.
  std::vector<consistency::OpRecord> final_reads;
  /// Each server's flight-recorder tail at the end of the run (index =
  /// server id). Dumped into replay bundles so a shrunk reproducer carries
  /// the last protocol events every node saw before the failure.
  std::vector<std::vector<obs::FlightEvent>> flight;
  /// Repair-plan consumption summed across servers (DESIGN.md §5.4): reads
  /// served through a degraded fan-out, plan-cache consultations that
  /// produced a plan, and the symbol bytes those plans moved.
  std::uint64_t degraded_reads = 0;
  std::uint64_t repair_plan_hits = 0;
  std::uint64_t repair_bytes = 0;
};

/// Runs `plan` on a fresh cluster. CHECK-fails on structurally invalid
/// plans (use FaultPlan::valid() to pre-screen untrusted input).
RunOutcome run_plan(const FaultPlan& plan, const ChaosOptions& options = {});

/// The replay fingerprint: FNV-1a over every OpRecord field of `history`
/// and `final_reads`, plus the NetworkStats totals and per-type counters.
std::uint64_t hash_run(const consistency::History& history,
                       const std::vector<consistency::OpRecord>& final_reads,
                       const sim::NetworkStats& net);

}  // namespace causalec::chaos
