// FaultPlan: a fully scripted adversarial schedule for one chaos run.
//
// Everything a run needs is in the plan -- workload shape, latency model
// parameters, GC timing, and a time-ordered list of fault events -- and the
// plan itself is derived deterministically from a single seed. That makes
// every run reproducible (same plan => byte-identical history, see
// runner.h) and shrinkable (drop events / reduce the op budget and re-run).
//
// The faults stay inside the paper's model (Sec. 2.1): channels remain
// reliable and FIFO -- partitions and delay bursts only stretch delivery
// times, which the asynchronous model already allows -- and crash-stop
// failures never exceed the code's tolerated budget of n - k servers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "sim/simulation.h"

namespace causalec::chaos {

/// Workload shape for one run. The erasure code is the systematic RS code
/// over all objects (cross-object coding, K = num_objects data symbols on
/// num_servers servers), so the crash budget is num_servers - num_objects.
struct WorkloadSpec {
  std::uint32_t num_servers = 6;
  std::uint32_t num_objects = 3;  // also the code dimension K
  std::uint32_t value_bytes = 64;
  std::uint32_t sessions = 4;
  std::uint64_t ops = 200;  // total op budget across all sessions
  double write_fraction = 0.5;
  double zipf_theta = 0.99;  // 0 = uniform keys
  double think_rate_hz = 2000.0;

  bool operator==(const WorkloadSpec&) const = default;
};

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,       // halt `node` at `at`
    kPartition,   // split servers by `side_mask` from `at` until
                  // `at + duration`
    kDelayBurst,  // add `extra` delay on channel (from, to) during
                  // [at, at + duration)
    kGcNow,       // force an immediate Garbage_Collection at `node`
    kCrashRecover,  // halt `node` at `at`, crash-recover it from its
                    // journal at `at + duration` (DESIGN.md §9)
  };

  Kind kind = Kind::kCrash;
  SimTime at = 0;
  NodeId node = 0;               // kCrash / kGcNow
  std::uint64_t side_mask = 0;   // kPartition: bit s => server s on side A
  SimTime duration = 0;          // kPartition / kDelayBurst
  NodeId from = 0;               // kDelayBurst
  NodeId to = 0;                 // kDelayBurst
  SimTime extra = 0;             // kDelayBurst

  bool operator==(const FaultEvent&) const = default;
};

/// Caps for FaultPlan::generate. The fuzz tool narrows these (e.g. max_ops)
/// to keep smoke runs bounded.
struct GenerateLimits {
  std::uint64_t max_ops = 300;
  std::uint32_t max_sessions = 5;
  std::size_t max_partitions = 2;
  std::size_t max_bursts = 4;
  std::size_t max_gc_pokes = 3;
  /// Crashes are additionally capped by the per-plan budget n - k.
  std::size_t max_crashes = 3;
  /// Crash-recover cycles (drawn only when the permanent crashes leave
  /// headroom in the simultaneous-down budget; downtime windows never
  /// overlap each other, so *cumulative* crashes may exceed n - k).
  std::size_t max_crash_recovers = 2;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  WorkloadSpec workload;
  /// Sessions stop issuing at `horizon` (they usually exhaust the op budget
  /// first); all fault events fire before it.
  SimTime horizon = 2 * sim::kSecond;
  SimTime gc_period = 20 * sim::kMillisecond;
  SimTime gc_jitter = 0;
  /// Heavy-tailed per-message delay: base * Pareto(alpha), capped at
  /// base * cap (see sim::HeavyTailLatency).
  SimTime latency_base = sim::kMillisecond;
  double latency_alpha = 1.2;
  double latency_cap = 50.0;
  /// false = ReadFanout::kBroadcast, true = kNearestRecoverySet (exercises
  /// the footnote-14 timeout fallback under crashes).
  bool nearest_fanout = false;
  /// Time-ordered fault schedule.
  std::vector<FaultEvent> events;

  bool operator==(const FaultPlan&) const = default;

  /// Deterministically derives a plan from `seed`. Crash events never
  /// exceed the budget and never crash every server.
  static FaultPlan generate(std::uint64_t seed,
                            const GenerateLimits& limits = {});

  /// The degraded-read scenario: nearest-recovery-set fanout with the full
  /// n - k crash budget spent early in the run, so most reads after the
  /// crashes must route through repair plans (DESIGN.md §5.4) around the
  /// dead servers. The causal / session / convergence checkers must hold
  /// exactly as in any other plan.
  static FaultPlan degraded_read_scenario(std::uint64_t seed);

  /// Servers a correct run may lose: n - k.
  std::uint32_t crash_budget() const {
    return workload.num_servers - workload.num_objects;
  }
  /// Distinct nodes crashed *permanently* (kCrash) by the schedule.
  std::vector<NodeId> crashed_nodes() const;

  /// Distinct nodes that are ever down: kCrash plus kCrashRecover nodes.
  /// Clients must not home on these (their calls bypass the network).
  std::vector<NodeId> ever_down_nodes() const;

  /// Peak number of simultaneously-down servers over the schedule
  /// (interval sweep: kCrash is down forever, kCrashRecover for its
  /// duration). The paper's model only requires this to stay <= n - k;
  /// cumulative crash-recover cycles may exceed it.
  std::size_t max_simultaneous_down() const;

  /// Structural sanity (server indices in range, simultaneous downtime
  /// within budget, events inside the horizon). Generate() and from_json()
  /// outputs pass.
  bool valid() const;

  std::string to_json() const;
  static std::optional<FaultPlan> from_json(std::string_view text);
};

}  // namespace causalec::chaos
