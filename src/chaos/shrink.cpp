#include "chaos/shrink.h"

#include <algorithm>
#include <vector>

#include "common/expect.h"

namespace causalec::chaos {

namespace {

/// Lexicographic reduction target: operations dominate (they are what a
/// human replays by hand), then fault events, then sessions.
std::uint64_t cost(const FaultPlan& plan) {
  return plan.workload.ops * 1000 + plan.events.size() * 10 +
         plan.workload.sessions;
}

/// All one-step reductions of `plan`, most aggressive first.
std::vector<FaultPlan> candidates(const FaultPlan& plan) {
  std::vector<FaultPlan> out;
  const WorkloadSpec& w = plan.workload;

  // Operation budget: halve, then three-quarters, then decrement (the
  // binary-search stage usually got here first; these mop up).
  if (w.ops > 1) {
    FaultPlan half = plan;
    half.workload.ops = w.ops / 2;
    out.push_back(half);
    if (w.ops >= 8) {
      FaultPlan three_quarters = plan;
      three_quarters.workload.ops = w.ops * 3 / 4;
      out.push_back(three_quarters);
    }
    FaultPlan minus_one = plan;
    minus_one.workload.ops = w.ops - 1;
    out.push_back(minus_one);
  }

  // Fault events: drop the first half, the second half, then each single
  // event (delta-debugging style).
  if (plan.events.size() > 1) {
    const std::size_t mid = plan.events.size() / 2;
    FaultPlan front = plan;
    front.events.assign(plan.events.begin(), plan.events.begin() + mid);
    out.push_back(front);
    FaultPlan back = plan;
    back.events.assign(plan.events.begin() + mid, plan.events.end());
    out.push_back(back);
  }
  if (plan.events.size() <= 8) {
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      FaultPlan dropped = plan;
      dropped.events.erase(dropped.events.begin() + i);
      out.push_back(dropped);
    }
  } else if (!plan.events.empty()) {
    FaultPlan none = plan;
    none.events.clear();
    out.push_back(none);
  }

  if (w.sessions > 1) {
    FaultPlan fewer = plan;
    fewer.workload.sessions = w.sessions - 1;
    out.push_back(fewer);
  }

  return out;
}

}  // namespace

ShrinkResult shrink(const FaultPlan& failing, const ChaosOptions& options,
                    std::size_t max_runs) {
  ShrinkResult result;
  result.plan = failing;
  result.outcome = run_plan(failing, options);
  ++result.runs;
  CEC_CHECK_MSG(!result.outcome.ok,
                "shrink() called with a plan that does not fail");

  bool progressed = true;
  while (progressed && result.runs < max_runs) {
    const std::uint64_t round_start_cost = cost(result.plan);

    // Stage 1: binary-search the op budget. Shrinking the budget replays an
    // identical prefix of the run (the driver and every rng draw are
    // deterministic), so "fails iff budget >= index of the violating op" is
    // monotone to good approximation -- a logarithmic number of probes
    // lands near the earliest failing prefix.
    std::uint64_t lo = 1;
    std::uint64_t hi = result.plan.workload.ops;
    while (lo < hi && result.runs < max_runs) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      FaultPlan candidate = result.plan;
      candidate.workload.ops = mid;
      RunOutcome outcome = run_plan(candidate, options);
      ++result.runs;
      if (!outcome.ok) {
        result.plan = std::move(candidate);
        result.outcome = std::move(outcome);
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }

    // Stage 2: greedy reduction over every dimension until a fixpoint.
    bool improved = true;
    while (improved && result.runs < max_runs) {
      improved = false;
      for (FaultPlan& candidate : candidates(result.plan)) {
        if (result.runs >= max_runs) break;
        if (!candidate.valid() || cost(candidate) >= cost(result.plan)) {
          continue;
        }
        RunOutcome outcome = run_plan(candidate, options);
        ++result.runs;
        if (!outcome.ok) {
          result.plan = std::move(candidate);
          result.outcome = std::move(outcome);
          improved = true;
          break;  // restart from the reduced plan
        }
      }
    }

    // Dropping events / sessions reshapes the run; another budget search
    // may now bite. Stop once a full round stops shrinking.
    progressed = cost(result.plan) < round_start_cost;
  }
  return result;
}

}  // namespace causalec::chaos
