#include "workload/zipf.h"

#include <cmath>

#include "common/expect.h"

namespace causalec::workload {

namespace {

// Exact partial sum for the head, Euler-Maclaurin tail for the rest.
constexpr std::uint64_t kExactHead = 100000;

double harmonic_exact(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += std::pow(static_cast<double>(i), -theta);
  }
  return sum;
}

}  // namespace

double zipf_harmonic(double n, double theta) {
  CEC_CHECK(n >= 1 && theta > 0 && theta != 1.0);
  if (n <= static_cast<double>(kExactHead)) {
    return harmonic_exact(static_cast<std::uint64_t>(n), theta);
  }
  const double head = harmonic_exact(kExactHead, theta);
  // Integral of x^-theta from kExactHead to n plus midpoint correction.
  const double a = static_cast<double>(kExactHead);
  const double tail = (std::pow(n, 1 - theta) - std::pow(a, 1 - theta)) /
                      (1 - theta);
  // Euler-Maclaurin first-order boundary terms.
  const double correction =
      0.5 * (std::pow(n, -theta) - std::pow(a, -theta));
  return head + tail + correction;
}

double zipf_pmf(double i, double n, double theta) {
  CEC_CHECK(i >= 1 && i <= n);
  return std::pow(i, -theta) / zipf_harmonic(n, theta);
}

double zipf_rank_for_mass(double mass, double n, double theta) {
  CEC_CHECK(mass > 0 && mass < 1);
  const double total = zipf_harmonic(n, theta);
  // Binary search on the (monotone) partial harmonic.
  double lo = 1, hi = n;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double cum = zipf_harmonic(mid, theta) / total;
    if (cum < mass) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double zipf_rate_of_rank(double rank, double total_rate, double n,
                         double theta) {
  return total_rate * zipf_pmf(rank, n, theta);
}

double zipf_fraction_below_rate(double rate_threshold, double total_rate,
                                double n, double theta) {
  // Rates decrease with rank; find the smallest rank whose rate is below
  // the threshold: rate(r) < thr  <=>  r > (total / (thr * H))^(1/theta).
  const double h = zipf_harmonic(n, theta);
  const double boundary =
      std::pow(total_rate / (rate_threshold * h), 1.0 / theta);
  if (boundary <= 1) return 1.0;             // every object is cold
  if (boundary >= n) return 0.0;             // every object is hot
  return (n - boundary) / n;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta,
                             std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  CEC_CHECK(n >= 1);
  zetan_ = zipf_harmonic(static_cast<double>(n), theta);
  zeta2_ = zipf_harmonic(2.0, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t ZipfGenerator::next() {
  const double u = rng_.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

std::uint64_t ZipfGenerator::next_scrambled() {
  // FNV-style scramble of the rank over the key space (YCSB's approach).
  std::uint64_t h = next() ^ 0xCBF29CE484222325ull;
  h *= 0x100000001B3ull;
  h ^= h >> 33;
  return h % n_;
}

}  // namespace causalec::workload
