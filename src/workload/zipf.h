// Zipfian key sampling and analytic rate models (YCSB [17] parameters).
//
// YCSB's default request distribution is Zipfian with theta = 0.99 over the
// key space: P(rank i) = (1/i^theta) / H_{n,theta}, i in [1, n]. The Sec. 4.2
// storage analysis needs both a sampler (for simulated workloads) and the
// analytic per-object rates at paper scale (120M objects), where sampling
// is impractical but the harmonic sums are cheap to approximate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace causalec::workload {

/// Generalized harmonic number H_{n,theta} = sum_{i=1..n} i^-theta,
/// computed exactly for small n and via integral approximation for large n
/// (relative error < 1e-6 for the YCSB range).
double zipf_harmonic(double n, double theta);

/// Probability that a request hits rank `i` (1-based) under Zipf(theta, n).
double zipf_pmf(double i, double n, double theta);

/// The largest rank r such that P(rank <= r) >= fraction -- i.e. how many
/// "hot" objects absorb `fraction` of the traffic.
double zipf_rank_for_mass(double mass, double n, double theta);

/// Fraction of objects (ranks) whose per-object request rate is below
/// `rate_threshold`, given total request rate `total_rate` over `n` objects.
double zipf_fraction_below_rate(double rate_threshold, double total_rate,
                                double n, double theta);

/// Per-rank request rate (1-based rank).
double zipf_rate_of_rank(double rank, double total_rate, double n,
                         double theta);

/// Gray et al. / YCSB-style O(1) Zipfian sampler (rejection-free).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed);

  /// Returns a 0-based item index (identity ranking: item 0 is hottest).
  std::uint64_t next();

  /// YCSB "scrambled zipfian": hot items spread over the key space.
  std::uint64_t next_scrambled();

  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
  Rng rng_;
};

}  // namespace causalec::workload
