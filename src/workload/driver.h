// Closed-loop workload driver: a set of sessions, each issuing one
// operation at a time (well-formedness), with exponential think times, an
// operation mix, and a key-popularity distribution. Store-agnostic: the
// caller supplies issue-functions, so the same driver exercises CausalEC
// and every baseline.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "sim/simulation.h"
#include "workload/zipf.h"

namespace causalec::workload {

struct OpMix {
  double write_fraction = 0.5;  // YCSB workload A
};

/// Key popularity: zipfian (theta > 0) or uniform (theta == 0).
class KeyPicker {
 public:
  KeyPicker(std::uint64_t num_keys, double zipf_theta, std::uint64_t seed)
      : uniform_n_(num_keys), rng_(seed) {
    if (zipf_theta > 0) {
      zipf_ = std::make_unique<ZipfGenerator>(num_keys, zipf_theta,
                                              seed ^ 0x5EED);
    }
  }

  ObjectId next() {
    if (zipf_) return static_cast<ObjectId>(zipf_->next());
    return static_cast<ObjectId>(rng_.next_below(uniform_n_));
  }

 private:
  std::uint64_t uniform_n_;
  Rng rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
};

struct DriverStats {
  std::vector<SimTime> read_latencies;
  std::vector<SimTime> write_latencies;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  static double mean_ms(const std::vector<SimTime>& v) {
    if (v.empty()) return 0;
    double sum = 0;
    for (SimTime t : v) sum += static_cast<double>(t);
    return sum / static_cast<double>(v.size()) / 1e6;
  }
  static SimTime max(const std::vector<SimTime>& v) {
    SimTime m = 0;
    for (SimTime t : v) m = std::max(m, t);
    return m;
  }
  static SimTime percentile(std::vector<SimTime> v, double p);
};

class ClosedLoopDriver {
 public:
  /// One session = one logical client. done-callbacks must fire exactly
  /// once per issued operation.
  struct Session {
    std::function<void(ObjectId, std::function<void()> done)> issue_write;
    std::function<void(ObjectId, std::function<void()> done)> issue_read;
    /// Restrict this session to a subset of keys (empty = all, via picker).
    std::function<ObjectId()> pick_key;  // optional override
  };

  ClosedLoopDriver(sim::Simulation* sim, OpMix mix,
                   std::shared_ptr<KeyPicker> picker, double think_rate_hz,
                   std::uint64_t seed)
      : sim_(sim),
        mix_(mix),
        picker_(std::move(picker)),
        think_rate_hz_(think_rate_hz),
        rng_(seed) {
    CEC_CHECK(sim_ != nullptr);
  }

  void add_session(Session session) {
    sessions_.push_back(std::move(session));
  }

  /// Cap the total number of operations issued across all sessions
  /// (0 = unlimited, the default). Sessions stop issuing once the budget
  /// is spent even if now() < until; the chaos harness shrinker relies on
  /// this to reduce a failing run to a minimal operation count.
  void set_op_budget(std::uint64_t ops) { op_budget_ = ops; }

  std::uint64_t ops_issued() const { return ops_issued_; }

  /// Start all sessions; they stop issuing once now() >= until.
  void start(SimTime until) {
    stop_at_ = until;
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      schedule_next(i);
    }
  }

  DriverStats& stats() { return stats_; }
  const DriverStats& stats() const { return stats_; }

 private:
  void schedule_next(std::size_t session_idx) {
    const double think_s = rng_.next_exponential(think_rate_hz_);
    const auto delta = static_cast<SimTime>(think_s * 1e9);
    sim_->schedule_after(delta, [this, session_idx] { issue(session_idx); });
  }

  void issue(std::size_t session_idx) {
    if (sim_->now() >= stop_at_) return;
    if (op_budget_ != 0 && ops_issued_ >= op_budget_) return;
    ++ops_issued_;
    Session& session = sessions_[session_idx];
    const ObjectId key =
        session.pick_key ? session.pick_key() : picker_->next();
    const SimTime started = sim_->now();
    if (rng_.next_bool(mix_.write_fraction)) {
      ++stats_.writes;
      session.issue_write(key, [this, session_idx, started] {
        stats_.write_latencies.push_back(sim_->now() - started);
        schedule_next(session_idx);
      });
    } else {
      ++stats_.reads;
      session.issue_read(key, [this, session_idx, started] {
        stats_.read_latencies.push_back(sim_->now() - started);
        schedule_next(session_idx);
      });
    }
  }

  sim::Simulation* sim_;
  OpMix mix_;
  std::shared_ptr<KeyPicker> picker_;
  double think_rate_hz_;
  Rng rng_;
  std::vector<Session> sessions_;
  SimTime stop_at_ = 0;
  std::uint64_t op_budget_ = 0;
  std::uint64_t ops_issued_ = 0;
  DriverStats stats_;
};

inline SimTime DriverStats::percentile(std::vector<SimTime> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

}  // namespace causalec::workload
