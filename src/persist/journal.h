// Journal: the durable face of one server. Pairs a full-state snapshot
// (persist/image.h) with an incremental write-ahead log of everything the
// server absorbed since that snapshot -- protocol frames it dispatched and
// client writes it accepted. On restart, load() returns the snapshot plus
// the WAL suffix; the server restores the image and re-dispatches the
// records with its transport muted, which deterministically reproduces the
// pre-crash state (modulo GC, which only shrinks state and re-runs anyway).
//
// WAL records are individually checksummed and the tail is allowed to be
// torn: a crash mid-append loses at most the record being written, which the
// rejoin protocol then re-fetches from peers like any other missed write.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "persist/backend.h"
#include "persist/image.h"

namespace causalec::persist {

struct WalRecord {
  enum class Kind : std::uint8_t {
    kMessage = 1,      // a protocol frame dispatched by the server
    kClientWrite = 2,  // a locally accepted client write
  };
  Kind kind = Kind::kMessage;
  NodeId from = 0;      // kMessage: sending node
  ClientId client = 0;  // kClientWrite
  OpId opid = 0;        // kClientWrite
  ObjectId object = 0;  // kClientWrite
  /// kMessage: the serialized frame; kClientWrite: the written value.
  std::vector<std::uint8_t> payload;
};

struct RecoveredState {
  std::optional<ServerImage> image;
  std::vector<WalRecord> wal;
  /// True when the WAL ended in a torn (truncated or corrupt) record that
  /// was discarded; earlier records are still returned.
  bool wal_torn = false;
  /// Non-empty when the snapshot exists but failed to decode; `image` is
  /// empty and `wal` untouched in that case.
  std::string error;
};

class Journal {
 public:
  /// `backend` must outlive the journal; `node_key` namespaces this
  /// server's snapshot ("<key>.snap") and log ("<key>.wal") in it.
  Journal(Backend* backend, std::string node_key);

  /// While false (the replay window), record_* calls are dropped so a
  /// recovering server does not re-journal its own replayed history.
  void set_recording(bool on) { recording_ = on; }
  bool recording() const { return recording_; }

  void record_message(NodeId from, std::span<const std::uint8_t> frame);
  void record_client_write(ClientId client, OpId opid, ObjectId object,
                           std::span<const std::uint8_t> value);

  /// Atomically replaces the snapshot, then truncates the WAL. A crash
  /// between the two steps merely replays a WAL prefix the snapshot already
  /// covers, which dispatch handles idempotently.
  void save_snapshot(const ServerImage& image);

  RecoveredState load() const;

  const std::string& node_key() const { return key_; }
  std::string snapshot_key() const { return key_ + ".snap"; }
  std::string wal_key() const { return key_ + ".wal"; }

 private:
  void append_record(WalRecord::Kind kind,
                     std::span<const std::uint8_t> body);

  Backend* backend_;
  std::string key_;
  bool recording_ = true;
};

}  // namespace causalec::persist
