#include "persist/journal.h"

#include <utility>

#include "causalec/wire_format.h"

namespace causalec::persist {

namespace {

// WAL record framing: kind u8, body_len u32, body, then FNV-1a u64 over
// the kind + length + body prefix. Anything that fails a bounds or
// checksum test marks the tail torn and is discarded.
constexpr std::size_t kRecordHeader = 1 + 4;
constexpr std::size_t kRecordTrailer = 8;
constexpr std::size_t kMaxRecordBody = std::size_t{1} << 30;

}  // namespace

Journal::Journal(Backend* backend, std::string node_key)
    : backend_(backend), key_(std::move(node_key)) {}

void Journal::append_record(WalRecord::Kind kind,
                            std::span<const std::uint8_t> body) {
  wire::Writer w(kRecordHeader + body.size() + kRecordTrailer);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(static_cast<std::uint32_t>(body.size()));
  for (const std::uint8_t b : body) w.u8(b);
  std::vector<std::uint8_t> record = w.take();
  const std::uint64_t checksum = fnv1a(record);
  for (int i = 0; i < 8; ++i) {
    record.push_back(static_cast<std::uint8_t>(checksum >> (8 * i)));
  }
  backend_->append(wal_key(), record);
}

void Journal::record_message(NodeId from,
                             std::span<const std::uint8_t> frame) {
  if (!recording_) return;
  wire::Writer body(4 + frame.size());
  body.u32(from);
  for (const std::uint8_t b : frame) body.u8(b);
  const std::vector<std::uint8_t> bytes = body.take();
  append_record(WalRecord::Kind::kMessage, bytes);
}

void Journal::record_client_write(ClientId client, OpId opid, ObjectId object,
                                  std::span<const std::uint8_t> value) {
  if (!recording_) return;
  wire::Writer body(8 + 8 + 4 + value.size());
  body.u64(client);
  body.u64(opid);
  body.u32(object);
  for (const std::uint8_t b : value) body.u8(b);
  const std::vector<std::uint8_t> bytes = body.take();
  append_record(WalRecord::Kind::kClientWrite, bytes);
}

void Journal::save_snapshot(const ServerImage& image) {
  backend_->put(snapshot_key(), encode_snapshot(image));
  backend_->remove(wal_key());
}

RecoveredState Journal::load() const {
  RecoveredState out;

  const auto snap = backend_->get(snapshot_key());
  if (snap.has_value()) {
    SnapshotDecodeResult decoded = decode_snapshot(std::span(*snap));
    if (!decoded.ok()) {
      out.error = decoded.error;
      return out;
    }
    out.image = std::move(decoded.image);
  }

  const auto wal = backend_->get(wal_key());
  if (!wal.has_value()) return out;
  const std::span<const std::uint8_t> bytes(*wal);
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeader + kRecordTrailer) {
      out.wal_torn = true;
      break;
    }
    const auto kind_byte = bytes[pos];
    std::uint32_t body_len = 0;
    for (int i = 0; i < 4; ++i) {
      body_len |= static_cast<std::uint32_t>(bytes[pos + 1 + i]) << (8 * i);
    }
    if (body_len > kMaxRecordBody ||
        bytes.size() - pos < kRecordHeader + body_len + kRecordTrailer) {
      out.wal_torn = true;
      break;
    }
    const std::size_t checked_len = kRecordHeader + body_len;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
      stored |= static_cast<std::uint64_t>(bytes[pos + checked_len + i])
                << (8 * i);
    }
    if (fnv1a(bytes.subspan(pos, checked_len)) != stored) {
      out.wal_torn = true;
      break;
    }

    const std::span<const std::uint8_t> body =
        bytes.subspan(pos + kRecordHeader, body_len);
    WalRecord record;
    bool record_ok = false;
    if (kind_byte == static_cast<std::uint8_t>(WalRecord::Kind::kMessage) &&
        body.size() >= 4) {
      record.kind = WalRecord::Kind::kMessage;
      for (int i = 0; i < 4; ++i) {
        record.from |= static_cast<NodeId>(body[i]) << (8 * i);
      }
      record.payload.assign(body.begin() + 4, body.end());
      record_ok = true;
    } else if (kind_byte ==
                   static_cast<std::uint8_t>(WalRecord::Kind::kClientWrite) &&
               body.size() >= 8 + 8 + 4) {
      record.kind = WalRecord::Kind::kClientWrite;
      for (int i = 0; i < 8; ++i) {
        record.client |= static_cast<ClientId>(body[i]) << (8 * i);
      }
      for (int i = 0; i < 8; ++i) {
        record.opid |= static_cast<OpId>(body[8 + i]) << (8 * i);
      }
      for (int i = 0; i < 4; ++i) {
        record.object |= static_cast<ObjectId>(body[16 + i]) << (8 * i);
      }
      record.payload.assign(body.begin() + 20, body.end());
      record_ok = true;
    }
    if (!record_ok) {
      // Checksum passed but the body shape is wrong: treat like a torn
      // tail rather than guessing at the stream framing downstream.
      out.wal_torn = true;
      break;
    }
    out.wal.push_back(std::move(record));
    pos += checked_len + kRecordTrailer;
  }
  return out;
}

}  // namespace causalec::persist
