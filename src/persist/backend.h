// Storage backends for durable server state: a key/value + append surface
// small enough that both an in-memory map (tests, chaos runs) and a plain
// directory of files (ThreadedCluster deployments) implement it.
//
// All methods are thread-safe: in the threaded runtime every node journals
// into the same backend concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace causalec::persist {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Atomic full replace of `key`.
  virtual void put(const std::string& key,
                   std::span<const std::uint8_t> bytes) = 0;
  /// Append to `key` (creating it when absent).
  virtual void append(const std::string& key,
                      std::span<const std::uint8_t> bytes) = 0;
  /// Full contents, or nullopt when the key does not exist.
  virtual std::optional<std::vector<std::uint8_t>> get(
      const std::string& key) const = 0;
  virtual void remove(const std::string& key) = 0;
};

/// Map-backed backend; "durable" for the lifetime of the process, which is
/// exactly what simulated crash-recovery needs.
class MemoryBackend final : public Backend {
 public:
  void put(const std::string& key,
           std::span<const std::uint8_t> bytes) override;
  void append(const std::string& key,
              std::span<const std::uint8_t> bytes) override;
  std::optional<std::vector<std::uint8_t>> get(
      const std::string& key) const override;
  void remove(const std::string& key) override;

  /// Test hooks.
  std::size_t total_bytes() const;
  std::vector<std::string> keys() const;
  /// Flip one bit of `key` (corruption-injection tests); false if absent
  /// or out of range.
  bool corrupt(const std::string& key, std::size_t byte, std::uint8_t mask);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::uint8_t>> data_;
};

/// Directory-of-files backend. put() writes a temp file and renames it into
/// place so a crash mid-write never leaves a half-written snapshot under
/// the live name; append() is a plain O_APPEND-style write (torn tails are
/// tolerated by the WAL's per-record checksums).
class DirBackend final : public Backend {
 public:
  explicit DirBackend(std::string directory);

  void put(const std::string& key,
           std::span<const std::uint8_t> bytes) override;
  void append(const std::string& key,
              std::span<const std::uint8_t> bytes) override;
  std::optional<std::vector<std::uint8_t>> get(
      const std::string& key) const override;
  void remove(const std::string& key) override;

  const std::string& directory() const { return dir_; }

 private:
  std::string path_for(const std::string& key) const;

  std::string dir_;
  mutable std::mutex mu_;
};

}  // namespace causalec::persist
