#include "persist/image.h"

#include <cstring>

#include "causalec/wire_format.h"

namespace causalec::persist {

namespace {

constexpr std::uint8_t kMagic[8] = {'C', 'E', 'C', 'S', 'N', 'A', 'P', '\0'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8;  // magic + version + body_len
constexpr std::size_t kTrailerBytes = 8;         // checksum

// Caps applied before any allocation driven by an untrusted length field.
constexpr std::size_t kMaxServers = 1 << 12;
constexpr std::size_t kMaxObjects = 1 << 20;
constexpr std::size_t kMaxValueBytes = 1 << 28;
constexpr std::size_t kMaxEntries = 1 << 24;

}  // namespace

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<std::uint8_t> encode_snapshot(const ServerImage& image) {
  wire::Writer body;
  body.u32(image.node);
  body.u32(image.num_servers);
  body.u32(image.num_objects);
  body.u32(image.value_bytes);
  body.clock(image.vc);
  body.bytes(image.m_val);
  body.tagvec(image.m_tags);
  body.tagvec(image.tmax);
  body.tagvec(image.last_del_broadcast_all);
  body.u64(image.internal_opid_counter);
  body.u32(static_cast<std::uint32_t>(image.history.size()));
  for (const auto& e : image.history) {
    body.u32(e.object);
    body.tag(e.tag);
    body.bytes(e.value);
  }
  body.u32(static_cast<std::uint32_t>(image.dels.size()));
  for (const auto& e : image.dels) {
    body.u32(e.object);
    body.u32(e.server);
    body.tag(e.tag);
  }
  body.u32(static_cast<std::uint32_t>(image.inqueue.size()));
  for (const auto& e : image.inqueue) {
    body.u32(e.origin);
    body.u32(e.object);
    body.tag(e.tag);
    body.bytes(e.value);
  }
  const std::vector<std::uint8_t> body_bytes = body.take();

  wire::Writer out(kHeaderBytes + body_bytes.size() + kTrailerBytes);
  for (const std::uint8_t b : kMagic) out.u8(b);
  out.u32(kSnapshotVersion);
  out.u64(body_bytes.size());
  for (const std::uint8_t b : body_bytes) out.u8(b);
  std::vector<std::uint8_t> file = out.take();
  const std::uint64_t checksum = fnv1a(file);
  for (int i = 0; i < 8; ++i) {
    file.push_back(static_cast<std::uint8_t>(checksum >> (8 * i)));
  }
  return file;
}

SnapshotDecodeResult decode_snapshot(std::span<const std::uint8_t> bytes) {
  return decode_snapshot(erasure::Buffer::copy_of(bytes));
}

SnapshotDecodeResult decode_snapshot(erasure::Buffer frame) {
  SnapshotDecodeResult result;
  auto reject = [&result](std::string why) {
    result.image.reset();
    result.error = "snapshot: " + std::move(why);
    return result;
  };

  const std::span<const std::uint8_t> all = frame.span();
  if (all.size() < kHeaderBytes + kTrailerBytes) {
    return reject("truncated (shorter than header + checksum)");
  }
  if (std::memcmp(all.data(), kMagic, sizeof(kMagic)) != 0) {
    return reject("bad magic (not a CausalEC snapshot)");
  }
  // Verify the checksum before trusting any other field.
  const std::size_t checked_len = all.size() - kTrailerBytes;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(all[checked_len + i]) << (8 * i);
  }
  if (fnv1a(all.subspan(0, checked_len)) != stored) {
    return reject("checksum mismatch (corrupted or truncated)");
  }

  wire::SafeReader r(frame.slice(sizeof(kMagic), checked_len - sizeof(kMagic)));
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    return reject("unsupported version " + std::to_string(version) +
                  " (expected " + std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint64_t body_len = r.u64();
  if (body_len != r.remaining()) {
    return reject("body length field does not match file size");
  }

  ServerImage image;
  image.node = r.u32();
  image.num_servers = r.u32();
  image.num_objects = r.u32();
  image.value_bytes = r.u32();
  if (!r.ok()) return reject(r.error());
  if (image.num_servers == 0 || image.num_servers > kMaxServers ||
      image.num_objects == 0 || image.num_objects > kMaxObjects ||
      image.value_bytes > kMaxValueBytes || image.node >= image.num_servers) {
    return reject("implausible dimensions");
  }
  const std::size_t n = image.num_servers;
  const std::size_t k = image.num_objects;

  image.vc = r.clock(n);
  image.m_val = erasure::Symbol(r.bytes(kMaxValueBytes));
  image.m_tags = r.tagvec(k, n);
  image.tmax = r.tagvec(k, n);
  image.last_del_broadcast_all = r.tagvec(k, n);
  image.internal_opid_counter = r.u64();

  const auto tag_ok = [n](const Tag& t) { return t.ts.size() == n; };
  const auto tagvec_ok = [&](const TagVector& tv) {
    if (tv.size() != k) return false;
    for (const Tag& t : tv) {
      if (!tag_ok(t)) return false;
    }
    return true;
  };

  const std::uint32_t history_count = r.u32();
  if (history_count > kMaxEntries) return reject("history entry count exceeds cap");
  image.history.reserve(history_count);
  for (std::uint32_t i = 0; i < history_count && r.ok(); ++i) {
    ServerImage::HistoryEntry e;
    e.object = r.u32();
    e.tag = r.tag(n);
    e.value = r.bytes(kMaxValueBytes);
    if (e.object >= k || !tag_ok(e.tag)) return reject("malformed history entry");
    image.history.push_back(std::move(e));
  }
  const std::uint32_t del_count = r.u32();
  if (del_count > kMaxEntries) return reject("del entry count exceeds cap");
  image.dels.reserve(del_count);
  for (std::uint32_t i = 0; i < del_count && r.ok(); ++i) {
    ServerImage::DelEntry e;
    e.object = r.u32();
    e.server = r.u32();
    e.tag = r.tag(n);
    if (e.object >= k || e.server >= n || !tag_ok(e.tag)) {
      return reject("malformed del entry");
    }
    image.dels.push_back(std::move(e));
  }
  const std::uint32_t inq_count = r.u32();
  if (inq_count > kMaxEntries) return reject("inqueue entry count exceeds cap");
  image.inqueue.reserve(inq_count);
  for (std::uint32_t i = 0; i < inq_count && r.ok(); ++i) {
    ServerImage::InqueueEntry e;
    e.origin = r.u32();
    e.object = r.u32();
    e.tag = r.tag(n);
    e.value = r.bytes(kMaxValueBytes);
    if (e.origin >= n || e.object >= k || !tag_ok(e.tag)) {
      return reject("malformed inqueue entry");
    }
    image.inqueue.push_back(std::move(e));
  }

  if (!r.ok()) return reject(r.error());
  if (!r.done()) return reject("trailing bytes after body");
  if (image.vc.size() != n || !tagvec_ok(image.m_tags) ||
      !tagvec_ok(image.tmax) || !tagvec_ok(image.last_del_broadcast_all)) {
    return reject("dimension mismatch in clocks or tag vectors");
  }

  result.image = std::move(image);
  return result;
}

}  // namespace causalec::persist
