#include "persist/backend.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/expect.h"

namespace causalec::persist {

// ---------------------------------------------------------------------------
// MemoryBackend
// ---------------------------------------------------------------------------

void MemoryBackend::put(const std::string& key,
                        std::span<const std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  data_[key].assign(bytes.begin(), bytes.end());
}

void MemoryBackend::append(const std::string& key,
                           std::span<const std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& blob = data_[key];
  blob.insert(blob.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::uint8_t>> MemoryBackend::get(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void MemoryBackend::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.erase(key);
}

std::size_t MemoryBackend::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [key, blob] : data_) total += blob.size();
  return total;
}

std::vector<std::string> MemoryBackend::keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [key, blob] : data_) out.push_back(key);
  return out;
}

bool MemoryBackend::corrupt(const std::string& key, std::size_t byte,
                            std::uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(key);
  if (it == data_.end() || byte >= it->second.size()) return false;
  it->second[byte] ^= mask;
  return true;
}

// ---------------------------------------------------------------------------
// DirBackend
// ---------------------------------------------------------------------------

DirBackend::DirBackend(std::string directory) : dir_(std::move(directory)) {
  std::filesystem::create_directories(dir_);
}

std::string DirBackend::path_for(const std::string& key) const {
  // Keys are journal-generated ("s3.snap"), never hostile; still refuse
  // anything that would escape the directory.
  CEC_CHECK_MSG(key.find('/') == std::string::npos &&
                    key.find("..") == std::string::npos,
                "DirBackend: invalid key " << key);
  return dir_ + "/" + key;
}

void DirBackend::put(const std::string& key,
                     std::span<const std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    CEC_CHECK_MSG(out.good(), "DirBackend: cannot open " << tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    CEC_CHECK_MSG(out.good(), "DirBackend: write failed for " << tmp);
  }
  std::filesystem::rename(tmp, path);
}

void DirBackend::append(const std::string& key,
                        std::span<const std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path_for(key), std::ios::binary | std::ios::app);
  CEC_CHECK_MSG(out.good(), "DirBackend: cannot open " << path_for(key));
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  CEC_CHECK_MSG(out.good(), "DirBackend: append failed for " << key);
}

std::optional<std::vector<std::uint8_t>> DirBackend::get(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::vector<std::uint8_t> out;
  char chunk[4096];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    out.insert(out.end(), chunk, chunk + in.gcount());
  }
  return out;
}

void DirBackend::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;  // missing file is fine
  std::filesystem::remove(path_for(key), ec);
}

}  // namespace causalec::persist
