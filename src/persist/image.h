// ServerImage: the complete durable protocol state of one CausalEC server
// (Fig. 3's state variables plus the implementation bookkeeping that must
// survive a restart), and its versioned, checksummed snapshot encoding.
//
// The snapshot format is:
//
//   magic    8 bytes  "CECSNAP\0"
//   version  u32      kSnapshotVersion
//   body_len u64      byte length of the body that follows
//   body     ...      Writer-encoded state (see snapshot.cpp)
//   checksum u64      FNV-1a over magic..body
//
// decode_snapshot() treats its input as untrusted: truncation, bit flips,
// wrong magic/version, or any structural inconsistency yields an error
// string -- never undefined behavior and never a CHECK abort. ReadL is
// deliberately absent: pending read callbacks cannot survive a process
// restart; the recovery path drops them and the Encoding action re-issues
// the internal ones it still needs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "causalec/tag.h"
#include "common/types.h"
#include "erasure/value.h"

namespace causalec::persist {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// FNV-1a used by the snapshot trailer and the WAL record checksums.
std::uint64_t fnv1a(std::span<const std::uint8_t> data);

struct ServerImage {
  NodeId node = 0;
  std::uint32_t num_servers = 0;
  std::uint32_t num_objects = 0;
  std::uint32_t value_bytes = 0;

  VectorClock vc;
  erasure::Symbol m_val;
  TagVector m_tags;
  TagVector tmax;
  TagVector last_del_broadcast_all;
  std::uint64_t internal_opid_counter = 0;

  struct HistoryEntry {
    ObjectId object = 0;
    Tag tag;
    erasure::Value value;
  };
  std::vector<HistoryEntry> history;

  struct DelEntry {
    ObjectId object = 0;
    NodeId server = 0;
    Tag tag;
  };
  std::vector<DelEntry> dels;

  struct InqueueEntry {
    NodeId origin = 0;
    ObjectId object = 0;
    Tag tag;
    erasure::Value value;
  };
  std::vector<InqueueEntry> inqueue;
};

std::vector<std::uint8_t> encode_snapshot(const ServerImage& image);

struct SnapshotDecodeResult {
  std::optional<ServerImage> image;
  /// Empty on success; a human-readable reason otherwise.
  std::string error;
  bool ok() const { return image.has_value(); }
};

/// Strict parse of an untrusted snapshot file; decoded payloads alias the
/// input buffer (zero-copy, the Buffer keeps the arena alive).
SnapshotDecodeResult decode_snapshot(erasure::Buffer frame);
SnapshotDecodeResult decode_snapshot(std::span<const std::uint8_t> bytes);

}  // namespace causalec::persist
