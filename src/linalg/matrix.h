// Dense matrices over an arbitrary field.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/expect.h"
#include "gf/field.h"

namespace causalec::linalg {

template <gf::Field F>
class Matrix {
 public:
  using Elem = typename F::Elem;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, F::zero) {}

  /// Row-major construction from integer literals (taken through
  /// F::from_int) -- convenient for writing down small codes in tests.
  static Matrix from_rows(
      std::initializer_list<std::initializer_list<std::uint64_t>> rows) {
    CEC_CHECK(rows.size() > 0);
    Matrix m(rows.size(), rows.begin()->size());
    std::size_t r = 0;
    for (const auto& row : rows) {
      CEC_CHECK_MSG(row.size() == m.cols_, "ragged initializer");
      std::size_t c = 0;
      for (auto v : row) m(r, c++) = F::from_int(v);
      ++r;
    }
    return m;
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = F::one;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Elem& operator()(std::size_t r, std::size_t c) {
    CEC_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  Elem operator()(std::size_t r, std::size_t c) const {
    CEC_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<Elem> row(std::size_t r) {
    CEC_DCHECK(r < rows_);
    return std::span<Elem>(data_.data() + r * cols_, cols_);
  }
  std::span<const Elem> row(std::size_t r) const {
    CEC_DCHECK(r < rows_);
    return std::span<const Elem>(data_.data() + r * cols_, cols_);
  }

  bool operator==(const Matrix& other) const = default;

  /// Matrix product (this * rhs).
  Matrix mul(const Matrix& rhs) const {
    CEC_CHECK(cols_ == rhs.rows_);
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const Elem a = (*this)(i, k);
        if (a == F::zero) continue;
        for (std::size_t j = 0; j < rhs.cols_; ++j) {
          out(i, j) = F::add(out(i, j), F::mul(a, rhs(k, j)));
        }
      }
    }
    return out;
  }

  /// Submatrix formed by the given rows (in the given order).
  Matrix select_rows(std::span<const std::size_t> row_ids) const {
    Matrix out(row_ids.size(), cols_);
    for (std::size_t i = 0; i < row_ids.size(); ++i) {
      CEC_CHECK(row_ids[i] < rows_);
      for (std::size_t j = 0; j < cols_; ++j) {
        out(i, j) = (*this)(row_ids[i], j);
      }
    }
    return out;
  }

  Matrix transpose() const {
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    }
    return out;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Elem> data_;
};

}  // namespace causalec::linalg
