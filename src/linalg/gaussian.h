// Gaussian elimination over arbitrary fields: rank, solve, inverse, and the
// "express a target vector in the row space" primitive that recovery-set
// computation is built on.
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace causalec::linalg {

/// Reduced row-echelon form computed in place; returns the pivot column of
/// each pivot row (so .size() == rank).
template <gf::Field F>
std::vector<std::size_t> rref_in_place(Matrix<F>& m) {
  using Elem = typename F::Elem;
  std::vector<std::size_t> pivot_cols;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < m.cols() && pivot_row < m.rows(); ++col) {
    // Find a pivot.
    std::size_t sel = pivot_row;
    while (sel < m.rows() && m(sel, col) == F::zero) ++sel;
    if (sel == m.rows()) continue;
    // Swap into place.
    if (sel != pivot_row) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        std::swap(m(sel, j), m(pivot_row, j));
      }
    }
    // Normalize pivot row.
    const Elem pivot_inv = F::inv(m(pivot_row, col));
    for (std::size_t j = 0; j < m.cols(); ++j) {
      m(pivot_row, j) = F::mul(pivot_inv, m(pivot_row, j));
    }
    // Eliminate all other rows.
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (r == pivot_row) continue;
      const Elem factor = m(r, col);
      if (factor == F::zero) continue;
      for (std::size_t j = 0; j < m.cols(); ++j) {
        m(r, j) = F::sub(m(r, j), F::mul(factor, m(pivot_row, j)));
      }
    }
    pivot_cols.push_back(col);
    ++pivot_row;
  }
  return pivot_cols;
}

template <gf::Field F>
std::size_t rank(Matrix<F> m) {
  return rref_in_place(m).size();
}

/// Solve lambda * A = target for a row vector lambda (i.e. express `target`
/// as a linear combination of the rows of A). Returns std::nullopt when
/// target is not in the row space.
template <gf::Field F>
std::optional<std::vector<typename F::Elem>> express_in_row_space(
    const Matrix<F>& a, std::span<const typename F::Elem> target) {
  CEC_CHECK(target.size() == a.cols());
  // Work on the transpose: solve A^T x = target^T.
  const std::size_t n_unknowns = a.rows();
  Matrix<F> aug(a.cols(), n_unknowns + 1);
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < n_unknowns; ++j) aug(i, j) = a(j, i);
    aug(i, n_unknowns) = target[i];
  }
  const auto pivots = rref_in_place(aug);
  // Inconsistent iff some pivot lands in the augmented column.
  for (std::size_t p : pivots) {
    if (p == n_unknowns) return std::nullopt;
  }
  std::vector<typename F::Elem> solution(n_unknowns, F::zero);
  for (std::size_t r = 0; r < pivots.size(); ++r) {
    solution[pivots[r]] = aug(r, n_unknowns);
  }
  return solution;
}

/// True iff `target` lies in the row space of A.
template <gf::Field F>
bool in_row_space(const Matrix<F>& a,
                  std::span<const typename F::Elem> target) {
  return express_in_row_space(a, target).has_value();
}

/// Matrix inverse; nullopt when singular.
template <gf::Field F>
std::optional<Matrix<F>> inverse(const Matrix<F>& m) {
  CEC_CHECK(m.rows() == m.cols());
  const std::size_t n = m.rows();
  Matrix<F> aug(n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug(i, j) = m(i, j);
    aug(i, n + i) = F::one;
  }
  const auto pivots = rref_in_place(aug);
  if (pivots.size() != n) return std::nullopt;
  for (std::size_t i = 0; i < n; ++i) {
    if (pivots[i] != i) return std::nullopt;
  }
  Matrix<F> inv(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) inv(i, j) = aug(i, n + j);
  }
  return inv;
}

}  // namespace causalec::linalg
