#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/expect.h"

namespace causalec::obs {

void json_escape(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\b':
        out << "\\b";
        break;
      case '\f':
        out << "\\f";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// ---------------------------------------------------------------------------
// Validator.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse_document() {
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool parse_value() {
    if (depth_ > 256) return false;  // bail on pathological nesting
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
        return parse_literal("true");
      case 'f':
        return parse_literal("false");
      case 'n':
        return parse_literal("null");
      default:
        return parse_number();
    }
  }

  bool parse_object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"' || !parse_string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool parse_array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool parse_string() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    if (peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool is_valid_json(std::string_view text) {
  return Parser(text).parse_document();
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator for this value
  }
  if (!counts_.empty() && counts_.back()++ > 0) out_ << ',';
}

void JsonWriter::begin_object() {
  comma();
  out_ << '{';
  counts_.push_back(0);
}

void JsonWriter::end_object() {
  CEC_CHECK(!counts_.empty() && !pending_key_);
  counts_.pop_back();
  out_ << '}';
}

void JsonWriter::begin_array() {
  comma();
  out_ << '[';
  counts_.push_back(0);
}

void JsonWriter::end_array() {
  CEC_CHECK(!counts_.empty() && !pending_key_);
  counts_.pop_back();
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  CEC_CHECK(!pending_key_ && !counts_.empty());
  if (counts_.back()++ > 0) out_ << ',';
  json_escape(out_, name);
  out_ << ':';
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  comma();
  json_escape(out_, v);
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out_ << "null";
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  CEC_CHECK(ec == std::errc());
  out_.write(buf, ptr - buf);
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ << v;
}

void JsonWriter::value(bool v) {
  comma();
  out_ << (v ? "true" : "false");
}

void JsonWriter::value_null() {
  comma();
  out_ << "null";
}

void JsonWriter::value_raw(std::string_view json) {
  comma();
  out_ << json;
}

}  // namespace causalec::obs
