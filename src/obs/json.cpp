#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/expect.h"

namespace causalec::obs {

void json_escape(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\b':
        out << "\\b";
        break;
      case '\f':
        out << "\\f";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// ---------------------------------------------------------------------------
// Parser (also the validator: is_valid_json == "json_parse succeeds").
// ---------------------------------------------------------------------------

namespace {

/// Appends a code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse_document() {
    skip_ws();
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  std::optional<JsonValue> parse_value() {
    if (depth_ > 256) return std::nullopt;  // bail on pathological nesting
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return JsonValue::make_string(std::move(*s));
      }
      case 't':
        if (!parse_literal("true")) return std::nullopt;
        return JsonValue::make_bool(true);
      case 'f':
        if (!parse_literal("false")) return std::nullopt;
        return JsonValue::make_bool(false);
      case 'n':
        if (!parse_literal("null")) return std::nullopt;
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

  std::optional<JsonValue> parse_object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    std::vector<std::pair<std::string, JsonValue>> members;
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return std::nullopt;
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (peek() != ':') return std::nullopt;
      ++pos_;
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return JsonValue::make_object(std::move(members));
      }
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    std::vector<JsonValue> items;
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      items.push_back(std::move(*value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return JsonValue::make_array(std::move(items));
      }
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            auto unit = parse_hex4();
            if (!unit) return std::nullopt;
            std::uint32_t cp = *unit;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: combine with a following \uDC00..\uDFFF when
              // present, else keep the lone unit (lenient, like most parsers).
              if (pos_ + 2 < text_.size() && text_[pos_ + 1] == '\\' &&
                  text_[pos_ + 2] == 'u') {
                const std::size_t saved = pos_;
                pos_ += 2;
                auto low = parse_hex4();
                if (low && *low >= 0xDC00 && *low <= 0xDFFF) {
                  cp = 0x10000 + ((cp - 0xD800) << 10) + (*low - 0xDC00);
                } else {
                  pos_ = saved;  // not a low surrogate; re-scan normally
                }
              }
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
      ++pos_;
    }
    return std::nullopt;  // unterminated
  }

  /// Reads the 4 hex digits after "\u"; pos_ is left on the last digit.
  std::optional<std::uint32_t> parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 1; i <= 4; ++i) {
      if (pos_ + i >= text_.size() ||
          !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
        return std::nullopt;
      }
      const char h = text_[pos_ + i];
      value <<= 4;
      if (h >= '0' && h <= '9') {
        value |= static_cast<std::uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        value |= static_cast<std::uint32_t>(h - 'a' + 10);
      } else {
        value |= static_cast<std::uint32_t>(h - 'A' + 10);
      }
    }
    pos_ += 4;
    return value;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return std::nullopt;
    if (peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return std::nullopt;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return std::nullopt;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return JsonValue::make_number(std::string(text_.substr(start, pos_ - start)));
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool is_valid_json(std::string_view text) {
  return json_parse(text).has_value();
}

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

// ---------------------------------------------------------------------------
// JsonValue accessors.
// ---------------------------------------------------------------------------

bool JsonValue::as_bool() const {
  CEC_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::as_double() const {
  CEC_CHECK(kind_ == Kind::kNumber);
  return std::strtod(scalar_.c_str(), nullptr);
}

std::int64_t JsonValue::as_i64() const {
  CEC_CHECK(kind_ == Kind::kNumber);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), value);
  CEC_CHECK_MSG(ec == std::errc() && ptr == scalar_.data() + scalar_.size(),
                "not an int64 literal: " << scalar_);
  return value;
}

std::uint64_t JsonValue::as_u64() const {
  CEC_CHECK(kind_ == Kind::kNumber);
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), value);
  CEC_CHECK_MSG(ec == std::errc() && ptr == scalar_.data() + scalar_.size(),
                "not a uint64 literal: " << scalar_);
  return value;
}

const std::string& JsonValue::as_string() const {
  CEC_CHECK(kind_ == Kind::kString);
  return scalar_;
}

const std::string& JsonValue::number_literal() const {
  CEC_CHECK(kind_ == Kind::kNumber);
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  CEC_CHECK(kind_ == Kind::kArray);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  CEC_CHECK(kind_ == Kind::kObject);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(std::string literal) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::move(literal);
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator for this value
  }
  if (!counts_.empty() && counts_.back()++ > 0) out_ << ',';
}

void JsonWriter::begin_object() {
  comma();
  out_ << '{';
  counts_.push_back(0);
}

void JsonWriter::end_object() {
  CEC_CHECK(!counts_.empty() && !pending_key_);
  counts_.pop_back();
  out_ << '}';
}

void JsonWriter::begin_array() {
  comma();
  out_ << '[';
  counts_.push_back(0);
}

void JsonWriter::end_array() {
  CEC_CHECK(!counts_.empty() && !pending_key_);
  counts_.pop_back();
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  CEC_CHECK(!pending_key_ && !counts_.empty());
  if (counts_.back()++ > 0) out_ << ',';
  json_escape(out_, name);
  out_ << ':';
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  comma();
  json_escape(out_, v);
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out_ << "null";
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  CEC_CHECK(ec == std::errc());
  out_.write(buf, ptr - buf);
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ << v;
}

void JsonWriter::value(bool v) {
  comma();
  out_ << (v ? "true" : "false");
}

void JsonWriter::value_null() {
  comma();
  out_ << "null";
}

void JsonWriter::value_raw(std::string_view json) {
  comma();
  out_ << json;
}

}  // namespace causalec::obs
