#include "obs/trace.h"

#include <algorithm>
#include <limits>

#include "obs/json.h"

namespace causalec::obs {

void Tracer::push(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::complete(std::string_view name, std::uint32_t node,
                      std::int64_t ts_ns, std::int64_t dur_ns,
                      std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'X';
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.node = node;
  e.args.assign(args.begin(), args.end());
  push(std::move(e));
}

void Tracer::instant(std::string_view name, std::uint32_t node,
                     std::int64_t ts_ns,
                     std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'i';
  e.ts_ns = ts_ns;
  e.node = node;
  e.args.assign(args.begin(), args.end());
  push(std::move(e));
}

std::uint64_t Tracer::begin_async(std::string_view name, std::uint32_t node,
                                  std::int64_t ts_ns,
                                  std::initializer_list<TraceArg> args) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'b';
  e.ts_ns = ts_ns;
  e.node = node;
  e.id = id;
  e.args.assign(args.begin(), args.end());
  push(std::move(e));
  return id;
}

void Tracer::end_async(std::string_view name, std::uint32_t node,
                       std::int64_t ts_ns, std::uint64_t id,
                       std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'e';
  e.ts_ns = ts_ns;
  e.node = node;
  e.id = id;
  e.args.assign(args.begin(), args.end());
  push(std::move(e));
}

void Tracer::flow_start(std::string_view name, std::uint32_t node,
                        std::int64_t ts_ns, std::uint64_t id,
                        std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 's';
  e.ts_ns = ts_ns;
  e.node = node;
  e.id = id;
  e.args.assign(args.begin(), args.end());
  push(std::move(e));
}

void Tracer::flow_finish(std::string_view name, std::uint32_t node,
                         std::int64_t ts_ns, std::uint64_t id,
                         std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'f';
  e.ts_ns = ts_ns;
  e.node = node;
  e.id = id;
  e.args.assign(args.begin(), args.end());
  push(std::move(e));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::count(std::string_view name, char phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.name == name && (phase == 0 || e.phase == phase)) ++n;
  }
  return n;
}

namespace {

void write_args(JsonWriter& w, const std::vector<TraceArg>& args) {
  w.key("args");
  w.begin_object();
  for (const auto& arg : args) {
    w.key(arg.key);
    w.value(arg.value);
  }
  w.end_object();
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const auto& e : events_) base = std::min(base, e.ts_ns);
  if (events_.empty()) base = 0;

  JsonWriter w(out);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const auto& e : events_) {
    w.begin_object();
    w.key("name");
    w.value(e.name);
    w.key("cat");
    w.value("causalec");
    w.key("ph");
    w.value(std::string_view(&e.phase, 1));
    w.key("ts");
    w.value(static_cast<double>(e.ts_ns - base) / 1e3);
    if (e.phase == 'X') {
      w.key("dur");
      w.value(static_cast<double>(e.dur_ns) / 1e3);
    }
    if (e.phase == 'b' || e.phase == 'e' || e.phase == 's' ||
        e.phase == 'f') {
      w.key("id");
      w.value(e.id);
    }
    if (e.phase == 'f') {
      w.key("bp");  // bind the finish to the enclosing slice's end
      w.value("e");
    }
    if (e.phase == 'i') {
      w.key("s");  // instant scope: thread
      w.value("t");
    }
    w.key("pid");
    w.value(static_cast<std::uint64_t>(e.node));
    w.key("tid");
    w.value(std::uint64_t{0});
    if (!e.args.empty()) write_args(w, e.args);
    w.end_object();
  }
  // Name each node's process lane for the viewer.
  std::vector<std::uint32_t> nodes;
  for (const auto& e : events_) nodes.push_back(e.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const std::uint32_t node : nodes) {
    w.begin_object();
    w.key("name");
    w.value("process_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(static_cast<std::uint64_t>(node));
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value("node " + std::to_string(node));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("causalecDropped");
  w.value(dropped_);
  w.end_object();
}

void Tracer::write_jsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : events_) {
    JsonWriter w(out);
    w.begin_object();
    w.key("name");
    w.value(e.name);
    w.key("ph");
    w.value(std::string_view(&e.phase, 1));
    w.key("ts_ns");
    w.value(e.ts_ns);
    if (e.phase == 'X') {
      w.key("dur_ns");
      w.value(e.dur_ns);
    }
    if (e.id != 0) {
      w.key("id");
      w.value(e.id);
    }
    w.key("node");
    w.value(static_cast<std::uint64_t>(e.node));
    if (!e.args.empty()) write_args(w, e.args);
    w.end_object();
    out << '\n';
  }
  JsonWriter w(out);
  w.begin_object();
  w.key("footer");
  w.begin_object();
  w.key("events");
  w.value(static_cast<std::uint64_t>(events_.size()));
  w.key("dropped");
  w.value(dropped_);
  w.end_object();
  w.end_object();
  out << '\n';
}

}  // namespace causalec::obs
