#include "obs/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/json.h"

namespace causalec::obs {

BenchReport::Row& BenchReport::add_row(std::string_view name) {
  rows_.emplace_back(std::string(name));
  return rows_.back();
}

void BenchReport::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.key("schema");
  w.value("causalec-bench-v1");
  w.key("bench");
  w.value(name_);
  w.key("config");
  w.begin_object();
  for (const auto& [key, value] : config_) {
    w.key(key);
    std::visit([&w](const auto& v) { w.value(v); }, value);
  }
  w.end_object();
  w.key("rows");
  w.begin_array();
  for (const auto& row : rows_) {
    w.begin_object();
    w.key("name");
    w.value(row.name_);
    w.key("metrics");
    w.begin_object();
    for (const auto& [key, value] : row.metrics_) {
      w.key(key);
      w.value(value);
    }
    w.end_object();
    if (!row.notes_.empty()) {
      w.key("notes");
      w.begin_object();
      for (const auto& [key, value] : row.notes_) {
        w.key(key);
        w.value(value);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

std::string BenchReport::write_default() const {
  std::string dir = ".";
  if (const char* env = std::getenv("CAUSALEC_BENCH_DIR")) {
    if (env[0] != '\0') dir = env;
  }
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench report: cannot open %s for writing\n",
                 path.c_str());
    return "";
  }
  write_json(out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench report: write to %s failed\n", path.c_str());
    return "";
  }
  std::fprintf(stderr, "bench report: wrote %s\n", path.c_str());
  return path;
}

bool is_valid_bench_report(std::string_view json) {
  if (!is_valid_json(json)) return false;
  // Our writer emits compact JSON, so the required keys appear verbatim.
  for (const std::string_view needle :
       {"\"schema\":\"causalec-bench-v1\"", "\"bench\":", "\"config\":",
        "\"rows\":"}) {
    if (json.find(needle) == std::string_view::npos) return false;
  }
  return true;
}

}  // namespace causalec::obs
