// Operation tracing: an in-memory buffer of timestamped events exportable
// as Chrome trace_event JSON (chrome://tracing, Perfetto) and as JSONL.
//
// Timestamps are supplied by the caller in nanoseconds -- simulated time on
// the discrete-event runtime, steady-clock wall time on ThreadedCluster --
// so the same tracer (and the same viewers) serve both runtimes. Each node
// is exported as its own "process" (pid = node id), which groups a server's
// spans and message events onto one lane per node in the viewer.
//
// Disabled tracing is a null pointer: every instrumentation site guards with
// `if (tracer)`, so the disabled cost is one predictable branch.
//
// Thread-safety: a single mutex around the event buffer. Tracing is an
// opt-in diagnostic; the goal is correctness under ThreadedCluster, not
// contention-free throughput.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace causalec::obs {

/// One key=value annotation attached to a trace event.
struct TraceArg {
  std::string key;
  std::string value;

  TraceArg(std::string_view k, std::string_view v) : key(k), value(v) {}
  TraceArg(std::string_view k, std::uint64_t v)
      : key(k), value(std::to_string(v)) {}
  TraceArg(std::string_view k, std::int64_t v)
      : key(k), value(std::to_string(v)) {}
  TraceArg(std::string_view k, int v) : key(k), value(std::to_string(v)) {}
};

struct TraceEvent {
  std::string name;
  char phase = 'i';          // 'X' complete, 'i' instant, 'b'/'e' async,
                             // 's'/'f' flow start/finish
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;   // 'X' only
  std::uint32_t node = 0;    // exported as pid
  std::uint64_t id = 0;      // async/flow correlation ('b'/'e'/'s'/'f')
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  /// Events beyond `capacity` are counted in dropped() but not stored, so a
  /// runaway workload cannot exhaust memory.
  explicit Tracer(std::size_t capacity = 4'000'000) : capacity_(capacity) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// A span that began and ended within one activation (ph "X").
  void complete(std::string_view name, std::uint32_t node, std::int64_t ts_ns,
                std::int64_t dur_ns,
                std::initializer_list<TraceArg> args = {});

  /// A point event (ph "i").
  void instant(std::string_view name, std::uint32_t node, std::int64_t ts_ns,
               std::initializer_list<TraceArg> args = {});

  /// Async span across activations/messages; returns the correlation id to
  /// pass to end_async. Ids are unique per tracer.
  std::uint64_t begin_async(std::string_view name, std::uint32_t node,
                            std::int64_t ts_ns,
                            std::initializer_list<TraceArg> args = {});
  void end_async(std::string_view name, std::uint32_t node,
                 std::int64_t ts_ns, std::uint64_t id,
                 std::initializer_list<TraceArg> args = {});

  /// Chrome flow events linking a send ('s') on one node lane to the
  /// matching receive ('f') on another. The viewer binds the pair by
  /// (name, cat, id), so both sides must use the same name and the id from
  /// the message's TraceContext span. `new_id()` mints flow/span ids from
  /// the same per-tracer counter as begin_async.
  std::uint64_t new_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void flow_start(std::string_view name, std::uint32_t node,
                  std::int64_t ts_ns, std::uint64_t id,
                  std::initializer_list<TraceArg> args = {});
  void flow_finish(std::string_view name, std::uint32_t node,
                   std::int64_t ts_ns, std::uint64_t id,
                   std::initializer_list<TraceArg> args = {});

  std::size_t size() const;
  std::uint64_t dropped() const;
  std::vector<TraceEvent> events() const;  // copy, for tests
  /// Number of stored events with the given name (and phase, if not 0).
  std::size_t count(std::string_view name, char phase = 0) const;

  /// Chrome trace_event "JSON object format": {"traceEvents": [...]}.
  /// Timestamps are shifted so the earliest event is t=0 and converted to
  /// microseconds (the trace_event unit). A "causalecDropped" top-level key
  /// records how many events overflowed the capacity cap.
  void write_chrome_trace(std::ostream& out) const;

  /// One JSON object per line, timestamps kept in raw nanoseconds. Ends
  /// with a {"footer": ...} line carrying the dropped-event count.
  void write_jsonl(std::ostream& out) const;

 private:
  void push(TraceEvent event);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace causalec::obs
