// Always-on per-node flight recorder: a fixed-size lock-free ring buffer of
// recent protocol events, cheap enough (~tens of ns per record) to leave
// enabled in production-shaped runs and dumped post-mortem -- into chaos
// replay bundles, on recovery restart, and on demand by causalec_inspect.
//
// Design: a power-of-two ring of POD slots. Writers claim a slot with a
// relaxed fetch_add on the sequence counter, fill the slot, then publish it
// by storing the claimed sequence number into the slot's own `seq` field
// with release order. A reader (snapshot()) walks the last `size` slots and
// keeps only those whose published seq matches the slot it expects --
// torn/in-flight slots are silently skipped. Events are summaries, not the
// protocol state itself: a kind, the peer/object involved, and a tag
// digest (vector-clock component sum + client id), enough to reconstruct
// "what was this node doing just before it died".
//
// In both runtimes a node's events are recorded by one thread (the sim
// loop or the node's own thread), but snapshot() may race with recording
// (causalec_inspect against a live ThreadedCluster), hence the seq-stamp
// protocol rather than plain stores.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace causalec::obs {

enum class FlightKind : std::uint8_t {
  kNone = 0,
  kClientWrite = 1,   // a=object, tag digest of the new version
  kClientRead = 2,    // a=object, b=opid low bits
  kMsgRecv = 3,       // a=from, b=msg type byte
  kApply = 4,         // InQueue entry applied; a=object, tag digest
  kEncode = 5,        // codeword re-encode; a=object, tag digest
  kDelRecord = 6,     // DelL entry recorded; a=from, tag digest
  kGc = 7,            // a=entries collected
  kReadDone = 8,      // a=object, tag digest of returned version
  kRecovery = 9,      // a=phase (0 begin, 1 digest, 2 pull, 3 done)
  kTimer = 10,        // a=timer kind
  kDegradedRead = 11, // a=object, b=repair-plan helper mask
};

const char* flight_kind_name(FlightKind kind);

struct FlightEvent {
  std::int64_t ts_ns = 0;
  FlightKind kind = FlightKind::kNone;
  std::uint32_t a = 0;        // kind-specific operand (see enum comments)
  std::uint32_t b = 0;
  std::uint64_t tag_sum = 0;  // vector-clock component sum of the tag
  std::uint32_t tag_client = 0;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two; the recorder keeps the
  /// most recent `capacity` events and overwrites older ones in place.
  explicit FlightRecorder(std::size_t capacity = 1024) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_ = std::make_unique<Slot[]>(cap);
    cap_ = cap;
    mask_ = cap - 1;
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(std::int64_t ts_ns, FlightKind kind, std::uint32_t a = 0,
              std::uint32_t b = 0, std::uint64_t tag_sum = 0,
              std::uint32_t tag_client = 0) {
    const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[seq & mask_];
    slot.event.ts_ns = ts_ns;
    slot.event.kind = kind;
    slot.event.a = a;
    slot.event.b = b;
    slot.event.tag_sum = tag_sum;
    slot.event.tag_client = tag_client;
    slot.seq.store(seq + 1, std::memory_order_release);  // 0 = never written
  }

  std::size_t capacity() const { return cap_; }

  /// Total events ever recorded (>= capacity means the ring has wrapped).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// The most recent events, oldest first. Slots being overwritten
  /// concurrently are skipped, so a snapshot taken against a live writer is
  /// a consistent (if slightly gappy) suffix of the event stream.
  std::vector<FlightEvent> snapshot() const {
    const std::uint64_t end = next_.load(std::memory_order_acquire);
    const std::uint64_t count =
        end < cap_ ? end : static_cast<std::uint64_t>(cap_);
    std::vector<FlightEvent> out;
    out.reserve(count);
    for (std::uint64_t seq = end - count; seq < end; ++seq) {
      const Slot& slot = slots_[seq & mask_];
      if (slot.seq.load(std::memory_order_acquire) != seq + 1) continue;
      out.push_back(slot.event);
    }
    return out;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    FlightEvent event;
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
};

/// One JSON object per event: the shape embedded in chaos replay bundles
/// ("flight" arrays) and printed by causalec_inspect.
std::string flight_events_to_json(const std::vector<FlightEvent>& events);

/// Inverse of flight_events_to_json for bundle round-trips; returns an
/// empty vector on malformed input.
std::vector<FlightEvent> flight_events_from_json(const std::string& json);

/// One-line human rendering ("apply obj=2 tag=7@c1 @123us") used by
/// log_flight_tail and causalec_inspect.
std::string flight_event_to_string(const FlightEvent& event);

/// Logs the recorder's most recent `max_events` events at Info level,
/// prefixed with the node id -- the post-mortem dump a node emits when it
/// restarts after a crash.
void log_flight_tail(int node, const FlightRecorder& recorder,
                     std::size_t max_events = 8);

}  // namespace causalec::obs
