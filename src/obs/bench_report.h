// Uniform machine-readable bench output.
//
// Every bench_* binary keeps its human-readable table and additionally
// emits a BENCH_<name>.json artifact through this API, so the perf
// trajectory of the repo can be tracked by tooling instead of eyeballs.
//
// Schema "causalec-bench-v1" (validated by tools/check_bench_json.py and
// the is_valid_bench_report() helper):
//
//   {
//     "schema": "causalec-bench-v1",
//     "bench":  "<name>",
//     "config": { "<key>": <number|string|bool>, ... },
//     "rows": [
//       { "name": "<row name>",
//         "metrics": { "<metric>": <number>, ... },
//         "notes":   { "<key>": "<string>", ... } },   // optional
//       ...
//     ]
//   }
//
// The output directory defaults to the working directory and can be
// redirected with the CAUSALEC_BENCH_DIR environment variable (which the
// CTest smoke test uses to keep artifacts inside the build tree).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace causalec::obs {

class BenchReport {
 public:
  using ConfigValue = std::variant<double, std::int64_t, std::string, bool>;

  class Row {
   public:
    explicit Row(std::string name) : name_(std::move(name)) {}

    Row& metric(std::string_view key, double value) {
      metrics_.emplace_back(std::string(key), value);
      return *this;
    }
    Row& note(std::string_view key, std::string_view value) {
      notes_.emplace_back(std::string(key), std::string(value));
      return *this;
    }

   private:
    friend class BenchReport;
    std::string name_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, std::string>> notes_;
  };

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void set_config(std::string_view key, ConfigValue value) {
    config_[std::string(key)] = std::move(value);
  }
  void set_config(std::string_view key, const char* value) {
    set_config(key, ConfigValue(std::string(value)));
  }
  void set_config(std::string_view key, double value) {
    set_config(key, ConfigValue(value));
  }
  void set_config(std::string_view key, std::size_t value) {
    set_config(key, ConfigValue(static_cast<std::int64_t>(value)));
  }
  void set_config(std::string_view key, int value) {
    set_config(key, ConfigValue(static_cast<std::int64_t>(value)));
  }
  void set_config(std::string_view key, bool value) {
    set_config(key, ConfigValue(value));
  }

  Row& add_row(std::string_view name);

  void write_json(std::ostream& out) const;

  /// Writes BENCH_<name>.json into $CAUSALEC_BENCH_DIR (default: cwd) and
  /// prints the path on stderr. Returns the path ("" on I/O failure).
  std::string write_default() const;

 private:
  std::string name_;
  std::map<std::string, ConfigValue> config_;
  std::vector<Row> rows_;
};

/// Schema check used by tests: syntax plus the causalec-bench-v1 shape.
bool is_valid_bench_report(std::string_view json);

}  // namespace causalec::obs
