// Minimal streaming JSON writer plus a strict parser/validator.
//
// The observability layer emits three machine-readable artifacts (Chrome
// traces, metrics dumps, BENCH_*.json reports); all of them funnel through
// JsonWriter so escaping and number formatting live in exactly one place.
// The parser exists so the chaos harness can read replay bundles back and
// so tests (and the C++ side of tools/check_bench_json) can assert
// well-formedness without an external JSON dependency.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace causalec::obs {

/// Appends `text` to `out` as a JSON string literal (with quotes).
void json_escape(std::ostream& out, std::string_view text);

/// Strict recursive-descent syntax check of a complete JSON document.
/// Returns true iff `text` is a single valid JSON value with only trailing
/// whitespace. (Syntax only; no schema.)
bool is_valid_json(std::string_view text);

/// A parsed JSON document. Numbers keep their source literal so 64-bit
/// integers survive round-trips that a double would truncate (seeds and
/// history hashes in chaos replay bundles exercise the full u64 range).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; each checks the kind.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_i64() const;
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  /// kNumber only: the verbatim source literal (re-emittable as raw JSON).
  const std::string& number_literal() const;
  const std::vector<JsonValue>& items() const;  // arrays
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const;  // objects

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(std::string_view key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(std::string literal);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  /// kNumber: the source literal; kString: the decoded string.
  std::string scalar_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses a complete JSON document (same grammar the validator accepts).
/// Returns nullopt on any syntax error.
std::optional<JsonValue> json_parse(std::string_view text);

/// Streaming writer for JSON objects/arrays. Keys and values alternate
/// naturally: inside an object call key() before each value; inside an
/// array just emit values. Commas and indentation are handled internally.
///
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("bench"); w.value("geo_sim");
///   w.key("rows"); w.begin_array();
///   ...
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view name);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void value_null();

  /// Emits raw pre-serialized JSON (caller guarantees validity).
  void value_raw(std::string_view json);

 private:
  void comma();

  std::ostream& out_;
  // One entry per open container: number of elements emitted so far.
  std::vector<std::size_t> counts_;
  bool pending_key_ = false;
};

}  // namespace causalec::obs
