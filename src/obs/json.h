// Minimal streaming JSON writer plus a strict syntax validator.
//
// The observability layer emits three machine-readable artifacts (Chrome
// traces, metrics dumps, BENCH_*.json reports); all of them funnel through
// JsonWriter so escaping and number formatting live in exactly one place.
// The validator exists so tests (and the C++ side of tools/check_bench_json)
// can assert well-formedness without an external JSON dependency.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace causalec::obs {

/// Appends `text` to `out` as a JSON string literal (with quotes).
void json_escape(std::ostream& out, std::string_view text);

/// Strict recursive-descent syntax check of a complete JSON document.
/// Returns true iff `text` is a single valid JSON value with only trailing
/// whitespace. (Syntax only; no schema.)
bool is_valid_json(std::string_view text);

/// Streaming writer for JSON objects/arrays. Keys and values alternate
/// naturally: inside an object call key() before each value; inside an
/// array just emit values. Commas and indentation are handled internally.
///
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("bench"); w.value("geo_sim");
///   w.key("rows"); w.begin_array();
///   ...
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view name);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void value_null();

  /// Emits raw pre-serialized JSON (caller guarantees validity).
  void value_raw(std::string_view json);

 private:
  void comma();

  std::ostream& out_;
  // One entry per open container: number of elements emitted so far.
  std::vector<std::size_t> counts_;
  bool pending_key_ = false;
};

}  // namespace causalec::obs
