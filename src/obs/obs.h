// ObsHooks: the bundle of observability sinks a runtime component threads
// through to its instrumentation sites.
//
// Null members mean "off"; every site guards with a pointer test, so a
// default-constructed ObsHooks adds one branch per site and nothing else.
// The structs are plain pointers (not owning) because sinks routinely
// outlive / span several components: one registry shared by every node
// thread, one tracer shared by servers and the network.
#pragma once

namespace causalec::obs {

class Tracer;
class MetricsRegistry;

struct ObsHooks {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool any() const { return tracer != nullptr || metrics != nullptr; }
};

}  // namespace causalec::obs
