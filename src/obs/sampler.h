// Periodic sampling support: a thread-safe, per-node time series with fixed
// named columns, exportable as JSON or CSV.
//
// The obs layer stays ignorant of what is being sampled; the runtime that
// owns the sampled state (e.g. Cluster, which snapshots each server's
// StorageStats) schedules the periodic callback and records rows here. This
// turns the Sec. 4.2 transient-storage curve into a first-class artifact
// instead of a per-bench accumulation hack.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace causalec::obs {

class TimeSeries {
 public:
  explicit TimeSeries(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  struct Row {
    std::int64_t t_ns = 0;
    std::uint32_t node = 0;
    std::vector<double> values;
  };

  const std::vector<std::string>& columns() const { return columns_; }

  void record(std::int64_t t_ns, std::uint32_t node,
              std::vector<double> values) {
    std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back(Row{t_ns, node, std::move(values)});
  }

  std::vector<Row> rows() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_.size();
  }

  void write_json(std::ostream& out) const {
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w(out);
    w.begin_object();
    w.key("schema");
    w.value("causalec-timeseries-v1");
    w.key("columns");
    w.begin_array();
    for (const auto& c : columns_) w.value(c);
    w.end_array();
    w.key("rows");
    w.begin_array();
    for (const auto& row : rows_) {
      w.begin_array();
      w.value(row.t_ns);
      w.value(static_cast<std::uint64_t>(row.node));
      for (const double v : row.values) w.value(v);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }

  void write_csv(std::ostream& out) const {
    std::lock_guard<std::mutex> lock(mu_);
    out << "t_ns,node";
    for (const auto& c : columns_) out << ',' << c;
    out << '\n';
    for (const auto& row : rows_) {
      out << row.t_ns << ',' << row.node;
      for (const double v : row.values) out << ',' << v;
      out << '\n';
    }
  }

 private:
  const std::vector<std::string> columns_;
  mutable std::mutex mu_;
  std::vector<Row> rows_;
};

}  // namespace causalec::obs
