#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "obs/json.h"

namespace causalec::obs {

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

std::size_t Histogram::bucket_index(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t Histogram::bucket_lower(std::size_t i) {
  return i <= 1 ? 0 : (std::uint64_t{1} << (i - 1));
}

std::uint64_t Histogram::bucket_upper(std::size_t i) {
  if (i == 0) return 1;
  if (i >= 64) return UINT64_MAX;
  return std::uint64_t{1} << i;
}

void Histogram::observe(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max: CAS loops; contention is rare and bounded (monotone targets).
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (snap.count == 0 || min == UINT64_MAX) ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target sample (1-based), then walk the cumulative counts.
  const double rank = p * static_cast<double>(count - 1) + 1.0;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t next = cumulative + buckets[i];
    if (rank <= static_cast<double>(next)) {
      const double lo = static_cast<double>(Histogram::bucket_lower(i));
      const double hi = static_cast<double>(Histogram::bucket_upper(i));
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      // Clamp to the observed extremes so tiny histograms do not report
      // values outside [min, max].
      const double est = lo + within * (hi - lo);
      return std::clamp(est, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  if (other.count > 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.key("schema");
  w.value("causalec-metrics-v1");
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : counters) {
    w.key(name);
    w.value(v);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : gauges) {
    w.key(name);
    w.value(v);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    w.key("min");
    w.value(h.min);
    w.key("max");
    w.value(h.max);
    w.key("mean");
    w.value(h.mean());
    w.key("p50");
    w.value(h.percentile(0.50));
    w.key("p90");
    w.value(h.percentile(0.90));
    w.key("p99");
    w.value(h.percentile(0.99));
    // Sparse bucket dump: [bucket_lower, count] pairs for non-empty buckets.
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      w.begin_array();
      w.value(Histogram::bucket_lower(i));
      w.value(h.buckets[i]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace causalec::obs
