#include "obs/flight_recorder.h"

#include <sstream>

#include "common/logging.h"
#include "obs/json.h"

namespace causalec::obs {

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kNone: return "none";
    case FlightKind::kClientWrite: return "client_write";
    case FlightKind::kClientRead: return "client_read";
    case FlightKind::kMsgRecv: return "msg_recv";
    case FlightKind::kApply: return "apply";
    case FlightKind::kEncode: return "encode";
    case FlightKind::kDelRecord: return "del_record";
    case FlightKind::kGc: return "gc";
    case FlightKind::kReadDone: return "read_done";
    case FlightKind::kRecovery: return "recovery";
    case FlightKind::kTimer: return "timer";
    case FlightKind::kDegradedRead: return "degraded_read";
  }
  return "unknown";
}

std::string flight_events_to_json(const std::vector<FlightEvent>& events) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_array();
  for (const FlightEvent& e : events) {
    w.begin_object();
    w.key("ts_ns");
    w.value(e.ts_ns);
    w.key("kind");
    w.value(flight_kind_name(e.kind));
    w.key("k");
    w.value(static_cast<std::uint64_t>(e.kind));
    w.key("a");
    w.value(static_cast<std::uint64_t>(e.a));
    w.key("b");
    w.value(static_cast<std::uint64_t>(e.b));
    w.key("tag_sum");
    w.value(e.tag_sum);
    w.key("tag_client");
    w.value(static_cast<std::uint64_t>(e.tag_client));
    w.end_object();
  }
  w.end_array();
  return out.str();
}

std::vector<FlightEvent> flight_events_from_json(const std::string& json) {
  std::vector<FlightEvent> out;
  const auto doc = json_parse(json);
  if (!doc || doc->kind() != JsonValue::Kind::kArray) return out;
  for (const JsonValue& item : doc->items()) {
    if (item.kind() != JsonValue::Kind::kObject) return {};
    FlightEvent e;
    if (const auto* v = item.find("ts_ns")) e.ts_ns = v->as_i64();
    if (const auto* v = item.find("k")) {
      e.kind = static_cast<FlightKind>(v->as_u64());
    }
    if (const auto* v = item.find("a")) {
      e.a = static_cast<std::uint32_t>(v->as_u64());
    }
    if (const auto* v = item.find("b")) {
      e.b = static_cast<std::uint32_t>(v->as_u64());
    }
    if (const auto* v = item.find("tag_sum")) e.tag_sum = v->as_u64();
    if (const auto* v = item.find("tag_client")) {
      e.tag_client = static_cast<std::uint32_t>(v->as_u64());
    }
    out.push_back(e);
  }
  return out;
}

std::string flight_event_to_string(const FlightEvent& event) {
  std::ostringstream out;
  out << flight_kind_name(event.kind) << " a=" << event.a << " b=" << event.b;
  if (event.tag_sum != 0 || event.tag_client != 0) {
    out << " tag=" << event.tag_sum << "@c" << event.tag_client;
  }
  out << " @" << event.ts_ns / 1000 << "us";
  return out.str();
}

void log_flight_tail(int node, const FlightRecorder& recorder,
                     std::size_t max_events) {
  const std::vector<FlightEvent> events = recorder.snapshot();
  const std::size_t begin =
      events.size() > max_events ? events.size() - max_events : 0;
  CEC_LOG(kInfo) << "s" << node << " flight tail (" << recorder.recorded()
                 << " recorded, showing " << events.size() - begin << ")";
  for (std::size_t i = begin; i < events.size(); ++i) {
    CEC_LOG(kInfo) << "s" << node << "   " << flight_event_to_string(events[i]);
  }
}

}  // namespace causalec::obs
