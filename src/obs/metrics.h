// Low-overhead metrics: named monotonic counters, gauges, and log2-bucketed
// histograms behind a registry.
//
// Concurrency model: every cell is a std::atomic with relaxed ordering, so
// the same Counter/Histogram handle may be hammered from many node threads
// (ThreadedCluster) without locks; the registry itself takes a mutex only on
// name lookup, so instrumentation sites resolve their handles once and then
// update lock-free. Single-threaded users (the simulator) pay one relaxed
// atomic op per update, which is within noise on the hot paths benchmarked
// by bench_micro.
//
// Snapshots are plain structs that can be merged (e.g. one registry per
// shard, or per-thread registries folded into a report) and serialized as
// JSON for machine consumption.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace causalec::obs {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (set/add; may go down).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Mergeable point-in-time histogram state. Bucket i holds values whose
/// bit width is i: bucket 0 is exactly {0}, bucket i >= 1 covers
/// [2^(i-1), 2^i). Percentiles interpolate linearly inside a bucket, so
/// the error is bounded by the bucket width (a factor of 2).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 65;

  std::vector<std::uint64_t> buckets = std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// p in [0, 1]; returns 0 when empty.
  double percentile(double p) const;
  void merge(const HistogramSnapshot& other);
};

/// Log2-bucketed histogram of non-negative integer samples (latencies in
/// ns, sizes in bytes). Thread-safe; all updates are relaxed atomics.
class Histogram {
 public:
  void observe(std::uint64_t value);
  HistogramSnapshot snapshot() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double percentile(double p) const { return snapshot().percentile(p); }

  /// Inclusive lower bound of bucket `i` (0 for buckets 0 and 1).
  static std::uint64_t bucket_lower(std::size_t i);
  /// Exclusive upper bound of bucket `i`.
  static std::uint64_t bucket_upper(std::size_t i);
  /// The bucket a value lands in (its bit width).
  static std::size_t bucket_index(std::uint64_t value);

 private:
  std::atomic<std::uint64_t> buckets_[HistogramSnapshot::kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Everything a registry knew at one instant; mergeable and serializable.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Point-wise merge: counters and histograms add, gauges take `other`'s
  /// value on collision (last writer wins).
  void merge(const MetricsSnapshot& other);
  void write_json(std::ostream& out) const;
};

/// Owns metrics by name. Handles returned from counter()/gauge()/histogram()
/// are stable for the registry's lifetime; resolving the same name twice
/// returns the same cell, so concurrent users naturally share.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  void write_json(std::ostream& out) const { snapshot().write_json(out); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace causalec::obs
