// Trace context carried across node boundaries.
//
// A TraceContext rides on every sim::Message (and, when the message is
// serialized, as an optional 16-byte trailer in the wire frame) so that one
// client operation -- a write fanning out as AppMessages, or a read walking
// through ValInq/ValResp exchanges -- renders as a single end-to-end flow in
// the trace viewer. `trace_id` names the client operation; `span_id` names
// one send edge (unique per tracer) and binds the Chrome flow-event pair
// ('s' at the sender, 'f' at the receiver).
//
// trace_id == 0 means "not traced": the default for every message, the
// decoded value for frames produced before trace propagation existed, and
// the reason untraced frames stay byte-identical to the old format.
#pragma once

#include <cstdint>

namespace causalec::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  // client operation this message belongs to
  std::uint64_t span_id = 0;   // send edge; Chrome flow binding id

  bool traced() const { return trace_id != 0; }
};

}  // namespace causalec::obs
