// Per-tier counters for the front-door tier (DESIGN.md §12), resolved once
// from a MetricsRegistry and then updated lock-free from every router shard
// thread (the registry mutex is only taken here, at resolve time).
//
// The cache outcome counters partition routed reads:
//   hits + misses + stale + expired == routed reads,
//   misses + stale + expired == fall-throughs reaching a backend.
// The latency histograms split the read path per tier, which is the
// bench_frontdoor headline: cache hits are answered on the router's shard
// thread; origin reads pay the extra hop plus the backend automaton.
#pragma once

#include "obs/metrics.h"

namespace causalec::obs {

struct FrontdoorCounters {
  Counter* routed_writes = nullptr;
  Counter* routed_reads = nullptr;
  Counter* cache_hits = nullptr;
  Counter* cache_misses = nullptr;
  Counter* cache_stale = nullptr;    // frontier ahead of the cached witness
  Counter* cache_expired = nullptr;  // TTL lapsed
  Counter* fallthroughs = nullptr;   // reads forwarded to a backend
  Counter* reroutes = nullptr;       // sent past a down ring owner
  Counter* ring_remaps = nullptr;    // backend link up/down transitions
  Histogram* cache_hit_ns = nullptr;     // router-side hit service time
  Histogram* origin_read_ns = nullptr;   // fall-through round trip
  Histogram* origin_write_ns = nullptr;  // routed write round trip

  static FrontdoorCounters resolve(MetricsRegistry& registry) {
    FrontdoorCounters c;
    c.routed_writes = &registry.counter("frontdoor.routed_writes");
    c.routed_reads = &registry.counter("frontdoor.routed_reads");
    c.cache_hits = &registry.counter("frontdoor.cache_hits");
    c.cache_misses = &registry.counter("frontdoor.cache_misses");
    c.cache_stale = &registry.counter("frontdoor.cache_stale");
    c.cache_expired = &registry.counter("frontdoor.cache_expired");
    c.fallthroughs = &registry.counter("frontdoor.fallthroughs");
    c.reroutes = &registry.counter("frontdoor.reroutes");
    c.ring_remaps = &registry.counter("frontdoor.ring_remaps");
    c.cache_hit_ns = &registry.histogram("frontdoor.cache_hit_ns");
    c.origin_read_ns = &registry.histogram("frontdoor.origin_read_ns");
    c.origin_write_ns = &registry.histogram("frontdoor.origin_write_ns");
    return c;
  }
};

}  // namespace causalec::obs
