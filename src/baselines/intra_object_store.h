// The conventional intra-object erasure-coded store (Sec. 1.1's comparison
// point; the approach of [15, 29, 13, 27, 18, 22]): every object value is
// split into k fragments of B/k bytes, encoded with a systematic
// Reed-Solomon (N, k) code, one fragment per server.
//
// Writes: the coordinating server encodes and ships one fragment to every
// server (cost N * B/k), acknowledging locally. Fragment application uses
// the same vector-clock causal-apply discipline as the other stores.
//
// Reads: never local (no server holds a full value) -- the coordinator
// requests fragments from the k-1 nearest servers, combines them with its
// local fragment, and decodes once k fragments of a common version are in
// hand; version-skewed responders are re-polled until versions align.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "baselines/replicated_store.h"  // ReadDone / WriteDone aliases
#include "causalec/tag.h"
#include "erasure/code.h"
#include "sim/simulation.h"

namespace causalec::baselines {

struct IntraObjectStoreConfig {
  std::size_t num_servers = 0;
  std::size_t num_objects = 0;
  std::size_t value_bytes = 0;   // must be divisible by k
  std::size_t k = 0;             // code dimension
  /// rtt_ms[s][t] used to pick the nearest fragment holders; empty = by id.
  std::vector<std::vector<double>> rtt_ms;
  std::size_t header_bytes = 16;
  /// Re-poll interval for version-skewed responses.
  SimTime retry_ns = 20'000'000;
};

class IntraObjectStore {
 public:
  IntraObjectStore(sim::Simulation* sim, IntraObjectStoreConfig config);
  ~IntraObjectStore();

  std::size_t num_servers() const;

  /// Local-ack write at server `at`.
  Tag write(NodeId at, ObjectId object, erasure::Value value);

  /// Read at server `at`: always at least one round trip.
  void read(NodeId at, ObjectId object, ReadDone done);

  std::size_t stored_bytes(NodeId server) const;

  /// Decoder-plan cache counters of the fragment code (reads decode from k
  /// fragments on every call, so the cache hit rate here approaches 1).
  erasure::PlanCacheStats decode_plan_cache_stats() const {
    return code_->decode_plan_cache_stats();
  }

  /// Liveness feed: a down server is skipped when a coordinator picks its
  /// k-1 nearest fragment holders, so degraded reads complete on the first
  /// round instead of stalling on a dead responder's retry loop.
  void set_server_down(NodeId server, bool down);

  /// Reads whose fragment-holder pick had to route around a down server.
  std::uint64_t degraded_reads() const;

 private:
  class Node;
  IntraObjectStoreConfig config_;
  erasure::CodePtr code_;  // RS(N, k) over fragments
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace causalec::baselines
