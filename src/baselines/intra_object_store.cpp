#include "baselines/intra_object_store.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>

#include "causalec/inqueue.h"
#include "common/expect.h"
#include "erasure/codes.h"

namespace causalec::baselines {

namespace {

struct FragAppMessage final : sim::Message {
  ObjectId object;
  erasure::Symbol fragment;
  Tag tag;
  std::size_t wire;
  FragAppMessage(ObjectId object_in, erasure::Symbol fragment_in, Tag tag_in,
                 std::size_t wire_in)
      : object(object_in),
        fragment(std::move(fragment_in)),
        tag(std::move(tag_in)),
        wire(wire_in) {}
  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "frag_app"; }
};

struct FragReqMessage final : sim::Message {
  OpId opid;
  ObjectId object;
  std::size_t wire;
  FragReqMessage(OpId opid_in, ObjectId object_in, std::size_t wire_in)
      : opid(opid_in), object(object_in), wire(wire_in) {}
  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "frag_req"; }
};

struct FragReplyMessage final : sim::Message {
  OpId opid;
  ObjectId object;
  erasure::Symbol fragment;
  Tag tag;
  std::size_t wire;
  FragReplyMessage(OpId opid_in, ObjectId object_in,
                   erasure::Symbol fragment_in, Tag tag_in,
                   std::size_t wire_in)
      : opid(opid_in),
        object(object_in),
        fragment(std::move(fragment_in)),
        tag(std::move(tag_in)),
        wire(wire_in) {}
  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "frag_reply"; }
};

}  // namespace

class IntraObjectStore::Node final : public sim::Actor {
 public:
  Node(sim::Simulation* sim, const IntraObjectStoreConfig* config,
       const erasure::Code* code, NodeId id)
      : sim_(sim),
        config_(config),
        code_(code),
        id_(id),
        n_(config->num_servers),
        vc_(config->num_servers),
        latest_(config->num_objects) {}

  Tag write(ObjectId object, const erasure::Value& value) {
    vc_.increment(id_);
    Tag tag(vc_, id_ + 1);
    // Split into k fragments and encode all N codeword fragments.
    const std::size_t frag_bytes = config_->value_bytes / config_->k;
    std::vector<erasure::Value> fragments;
    fragments.reserve(config_->k);
    for (std::size_t f = 0; f < config_->k; ++f) {
      // Zero-copy: each fragment aliases the written value's buffer.
      fragments.push_back(value.slice(f * frag_bytes, frag_bytes));
    }
    const std::size_t wire =
        config_->header_bytes + frag_bytes + 8 * n_ + 8;
    for (NodeId j = 0; j < n_; ++j) {
      erasure::Symbol frag = code_->encode(j, fragments);
      if (j == id_) {
        store(object, tag, std::move(frag));
      } else {
        sim_->send(id_, j,
                   std::make_unique<FragAppMessage>(object, std::move(frag),
                                                    tag, wire));
      }
    }
    return tag;
  }

  void read(ObjectId object, ReadDone done) {
    const OpId opid = next_opid_++;
    Pending& pending = pending_[opid];
    pending.object = object;
    pending.done = std::move(done);
    pending.targets = nearest_servers(config_->k - 1);
    if (down_mask_ != 0) ++degraded_reads_;
    if (latest_[object]) {
      pending.responses[id_] = *latest_[object];
    } else {
      pending.responses[id_] = {Tag::zero(n_),
                                code_->zero_symbol(id_)};
    }
    if (try_complete(opid)) return;  // k == 1 degenerate case
    for (NodeId t : pending.targets) {
      sim_->send(id_, t,
                 std::make_unique<FragReqMessage>(opid, object,
                                                  config_->header_bytes + 8));
    }
  }

  void on_message(NodeId from, sim::MessagePtr message) override {
    if (auto* app = dynamic_cast<FragAppMessage*>(message.get())) {
      inqueue_.insert(
          InQueue::Entry{from, app->object, app->fragment, app->tag});
      drain_inqueue();
    } else if (auto* req = dynamic_cast<FragReqMessage*>(message.get())) {
      erasure::Symbol frag = latest_[req->object]
                                 ? latest_[req->object]->second
                                 : code_->zero_symbol(id_);
      Tag tag = latest_[req->object] ? latest_[req->object]->first
                                     : Tag::zero(n_);
      const std::size_t wire =
          config_->header_bytes + frag.size() + 8 * n_ + 8;
      sim_->send(id_, from,
                 std::make_unique<FragReplyMessage>(
                     req->opid, req->object, std::move(frag), std::move(tag),
                     wire));
    } else if (auto* reply = dynamic_cast<FragReplyMessage*>(message.get())) {
      auto it = pending_.find(reply->opid);
      if (it == pending_.end()) return;
      it->second.responses[from] = {reply->tag, reply->fragment};
      if (!try_complete(reply->opid)) {
        maybe_retry(reply->opid);
      }
    } else {
      CEC_CHECK_MSG(false, "unexpected message in IntraObjectStore");
    }
  }

  std::size_t stored_bytes() const {
    std::size_t bytes = 0;
    for (const auto& slot : latest_) {
      if (slot) bytes += slot->second.size();
    }
    return bytes;
  }

  void set_peer_down(NodeId peer, bool down) {
    if (down) {
      down_mask_ |= 1u << peer;
    } else {
      down_mask_ &= ~(1u << peer);
    }
  }

  std::uint64_t degraded_reads() const { return degraded_reads_; }

 private:
  struct Pending {
    ObjectId object = 0;
    ReadDone done;
    std::vector<NodeId> targets;
    std::map<NodeId, std::pair<Tag, erasure::Symbol>> responses;
    bool retry_scheduled = false;
  };

  void store(ObjectId object, const Tag& tag, erasure::Symbol fragment) {
    auto& slot = latest_[object];
    if (!slot || slot->first < tag) {
      slot.emplace(tag, std::move(fragment));
    }
  }

  void drain_inqueue() {
    while (true) {
      auto popped =
          inqueue_.pop_first_applicable([&](const InQueue::Entry& e) {
            if (e.tag.ts[e.origin] != vc_[e.origin] + 1) return false;
            for (NodeId p = 0; p < n_; ++p) {
              if (p != e.origin && e.tag.ts[p] > vc_[p]) return false;
            }
            return true;
          });
      if (!popped) return;
      vc_.set(popped->origin, popped->tag.ts[popped->origin]);
      store(popped->object, popped->tag, std::move(popped->value));
    }
  }

  /// True when k fragments of a common version are available -> decode.
  bool try_complete(OpId opid) {
    auto it = pending_.find(opid);
    if (it == pending_.end()) return true;
    Pending& pending = it->second;
    // Group responses by tag; look for one with >= k members.
    std::map<Tag, std::vector<NodeId>> by_tag;
    for (const auto& [server, resp] : pending.responses) {
      by_tag[resp.first].push_back(server);
    }
    for (auto& [tag, servers] : by_tag) {
      if (servers.size() < config_->k) continue;
      servers.resize(config_->k);
      std::vector<erasure::Symbol> symbols;
      for (NodeId s : servers) {
        symbols.push_back(pending.responses[s].second);
      }
      // Reassemble: decode each data fragment and concatenate into one
      // fresh arena.
      std::vector<std::uint8_t> bytes;
      bytes.reserve(config_->value_bytes);
      for (ObjectId f = 0; f < config_->k; ++f) {
        const erasure::Value frag = code_->decode(f, servers, symbols);
        bytes.insert(bytes.end(), frag.begin(), frag.end());
      }
      erasure::Value value(std::move(bytes));
      ReadDone done = std::move(pending.done);
      const Tag result_tag = tag;
      pending_.erase(it);
      done(value, result_tag);
      return true;
    }
    return false;
  }

  /// All targets responded but versions are skewed: re-poll the stale ones
  /// after a delay (they will catch up via causal apply).
  void maybe_retry(OpId opid) {
    auto it = pending_.find(opid);
    if (it == pending_.end()) return;
    Pending& pending = it->second;
    if (pending.responses.size() < pending.targets.size() + 1) return;
    if (pending.retry_scheduled) return;
    pending.retry_scheduled = true;
    sim_->schedule_after(config_->retry_ns, [this, opid] {
      auto iter = pending_.find(opid);
      if (iter == pending_.end()) return;
      iter->second.retry_scheduled = false;
      // Refresh our own fragment and re-poll everyone.
      const ObjectId object = iter->second.object;
      if (latest_[object]) {
        iter->second.responses[id_] = *latest_[object];
      }
      if (try_complete(opid)) return;
      for (NodeId t : iter->second.targets) {
        sim_->send(id_, t,
                   std::make_unique<FragReqMessage>(
                       opid, object, config_->header_bytes + 8));
      }
    });
  }

  std::vector<NodeId> nearest_servers(std::size_t count) const {
    std::vector<NodeId> others;
    for (NodeId o = 0; o < n_; ++o) {
      if (o != id_ && !(down_mask_ >> o & 1)) others.push_back(o);
    }
    std::sort(others.begin(), others.end(), [&](NodeId a, NodeId b) {
      const double ra = config_->rtt_ms.empty()
                            ? static_cast<double>(a)
                            : config_->rtt_ms[id_][a];
      const double rb = config_->rtt_ms.empty()
                            ? static_cast<double>(b)
                            : config_->rtt_ms[id_][b];
      return ra != rb ? ra < rb : a < b;
    });
    others.resize(std::min(count, others.size()));
    return others;
  }

  sim::Simulation* sim_;
  const IntraObjectStoreConfig* config_;
  const erasure::Code* code_;
  NodeId id_;
  std::size_t n_;
  VectorClock vc_;
  InQueue inqueue_;
  // Latest fragment per object (LWW by tag).
  std::vector<std::optional<std::pair<Tag, erasure::Symbol>>> latest_;
  std::map<OpId, Pending> pending_;
  OpId next_opid_ = 1;
  std::uint32_t down_mask_ = 0;  // fail-stop view fed by set_server_down
  std::uint64_t degraded_reads_ = 0;
};

IntraObjectStore::IntraObjectStore(sim::Simulation* sim,
                                   IntraObjectStoreConfig config)
    : config_(std::move(config)) {
  CEC_CHECK(config_.num_servers >= config_.k && config_.k >= 1);
  CEC_CHECK(config_.value_bytes % config_.k == 0);
  code_ = erasure::make_systematic_rs(config_.num_servers, config_.k,
                                      config_.value_bytes / config_.k);
  nodes_.reserve(config_.num_servers);
  for (NodeId s = 0; s < config_.num_servers; ++s) {
    nodes_.push_back(std::make_unique<Node>(sim, &config_, code_.get(), s));
    const NodeId sim_id = sim->add_node(nodes_.back().get());
    CEC_CHECK(sim_id == s);
  }
}

IntraObjectStore::~IntraObjectStore() = default;

std::size_t IntraObjectStore::num_servers() const { return nodes_.size(); }

Tag IntraObjectStore::write(NodeId at, ObjectId object,
                            erasure::Value value) {
  CEC_CHECK(at < nodes_.size());
  CEC_CHECK(value.size() == config_.value_bytes);
  CEC_CHECK(object < config_.num_objects);
  return nodes_[at]->write(object, value);
}

void IntraObjectStore::read(NodeId at, ObjectId object, ReadDone done) {
  CEC_CHECK(at < nodes_.size());
  CEC_CHECK(object < config_.num_objects);
  nodes_[at]->read(object, std::move(done));
}

std::size_t IntraObjectStore::stored_bytes(NodeId server) const {
  CEC_CHECK(server < nodes_.size());
  return nodes_[server]->stored_bytes();
}

void IntraObjectStore::set_server_down(NodeId server, bool down) {
  CEC_CHECK(server < nodes_.size());
  for (NodeId s = 0; s < nodes_.size(); ++s) {
    if (s != server) nodes_[s]->set_peer_down(server, down);
  }
}

std::uint64_t IntraObjectStore::degraded_reads() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->degraded_reads();
  return total;
}

}  // namespace causalec::baselines
