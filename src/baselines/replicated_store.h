// Replication-based causally consistent stores (the paper's comparison
// points, Sec. 1.1 / Appendix A):
//
//  * full replication  -- every server stores every object (Ahamad et al.
//    style causal memory [4]): writes local, reads always local.
//  * partial replication -- each server stores a subset; writes still
//    propagate to every server (Appendix A: required so all servers can
//    track causality and so reads never block on specific servers); reads
//    to non-local objects are forwarded to the nearest replica (one round
//    trip).
//
// Both use the same vector-clock apply discipline as CausalEC. Note the
// Appendix A caveat: the forwarded-read variant trades the blocking reads
// of [49] for immediate service from the nearest replica; this is the
// protocol whose costs Fig. 2 charges to "partial replication".
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "causalec/inqueue.h"
#include "causalec/tag.h"
#include "erasure/value.h"
#include "sim/simulation.h"

namespace causalec::baselines {

using ReadDone = std::function<void(const erasure::Value&, const Tag&)>;
using WriteDone = std::function<void(const Tag&)>;

struct ReplicatedStoreConfig {
  /// placement[s] = objects server s stores. Full replication = all at all.
  std::vector<std::vector<ObjectId>> placement;
  std::size_t num_objects = 0;
  std::size_t value_bytes = 0;
  /// rtt_ms[s][t] used to pick the nearest replica for forwarded reads;
  /// empty = pick the lowest-id replica.
  std::vector<std::vector<double>> rtt_ms;
  std::size_t header_bytes = 16;
};

class ReplicatedStore {
 public:
  /// Registers one actor per server on the simulation (node ids must start
  /// at the simulation's current count).
  ReplicatedStore(sim::Simulation* sim, ReplicatedStoreConfig config);
  ~ReplicatedStore();

  std::size_t num_servers() const;

  /// Local write at server `at` (acknowledged synchronously).
  Tag write(NodeId at, ObjectId object, erasure::Value value);

  /// Read at server `at`: inline when the object is placed there, else one
  /// round trip to the nearest replica.
  void read(NodeId at, ObjectId object, ReadDone done);

  /// Convenience factory: full replication.
  static ReplicatedStoreConfig full_replication(std::size_t num_servers,
                                                std::size_t num_objects,
                                                std::size_t value_bytes);

  /// Per-server stored payload bytes (for storage accounting).
  std::size_t stored_bytes(NodeId server) const;

 private:
  class Node;
  ReplicatedStoreConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace causalec::baselines
