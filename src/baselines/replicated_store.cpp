#include "baselines/replicated_store.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/expect.h"

namespace causalec::baselines {

namespace {

struct RepAppMessage final : sim::Message {
  ObjectId object;
  erasure::Value value;
  Tag tag;
  std::size_t wire;
  RepAppMessage(ObjectId object_in, erasure::Value value_in, Tag tag_in,
                std::size_t wire_in)
      : object(object_in),
        value(std::move(value_in)),
        tag(std::move(tag_in)),
        wire(wire_in) {}
  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "rep_app"; }
};

struct ReadFwdMessage final : sim::Message {
  OpId opid;
  ObjectId object;
  std::size_t wire;
  ReadFwdMessage(OpId opid_in, ObjectId object_in, std::size_t wire_in)
      : opid(opid_in), object(object_in), wire(wire_in) {}
  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "read_fwd"; }
};

struct ReadFwdReply final : sim::Message {
  OpId opid;
  ObjectId object;
  erasure::Value value;
  Tag tag;
  std::size_t wire;
  ReadFwdReply(OpId opid_in, ObjectId object_in, erasure::Value value_in,
               Tag tag_in, std::size_t wire_in)
      : opid(opid_in),
        object(object_in),
        value(std::move(value_in)),
        tag(std::move(tag_in)),
        wire(wire_in) {}
  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "read_fwd_reply"; }
};

}  // namespace

class ReplicatedStore::Node final : public sim::Actor {
 public:
  Node(sim::Simulation* sim, const ReplicatedStoreConfig* config, NodeId id,
       std::size_t n)
      : sim_(sim),
        config_(config),
        id_(id),
        n_(n),
        vc_(n),
        latest_(config->num_objects) {
    for (ObjectId x : config->placement[id]) placed_.insert(x);
  }

  bool placed(ObjectId object) const { return placed_.count(object) > 0; }

  Tag write(ObjectId object, erasure::Value value) {
    vc_.increment(id_);
    Tag tag(vc_, /*client=*/id_ + 1);
    store(object, tag, value);
    const std::size_t wire =
        config_->header_bytes + value.size() + 8 * n_ + 8;
    for (NodeId j = 0; j < n_; ++j) {
      if (j == id_) continue;
      sim_->send(id_, j,
                 std::make_unique<RepAppMessage>(object, value, tag, wire));
    }
    return tag;
  }

  void read(ObjectId object, ReadDone done) {
    if (placed(object)) {
      const auto& slot = latest_[object];
      done(slot ? slot->second : erasure::Value(config_->value_bytes, 0),
           slot ? slot->first : Tag::zero(n_));
      return;
    }
    // Forward to the nearest replica.
    const NodeId target = nearest_replica(object);
    const OpId opid = next_opid_++;
    pending_[opid] = std::move(done);
    sim_->send(id_, target,
               std::make_unique<ReadFwdMessage>(opid, object,
                                                config_->header_bytes + 8));
  }

  void on_message(NodeId from, sim::MessagePtr message) override {
    if (auto* app = dynamic_cast<RepAppMessage*>(message.get())) {
      inqueue_.insert(
          InQueue::Entry{from, app->object, app->value, app->tag});
      drain_inqueue();
    } else if (auto* fwd = dynamic_cast<ReadFwdMessage*>(message.get())) {
      const auto& slot = latest_[fwd->object];
      erasure::Value value =
          slot ? slot->second : erasure::Value(config_->value_bytes, 0);
      Tag tag = slot ? slot->first : Tag::zero(n_);
      const std::size_t wire =
          config_->header_bytes + value.size() + 8 * n_ + 8;
      sim_->send(id_, from,
                 std::make_unique<ReadFwdReply>(fwd->opid, fwd->object,
                                                std::move(value),
                                                std::move(tag), wire));
    } else if (auto* reply = dynamic_cast<ReadFwdReply*>(message.get())) {
      auto it = pending_.find(reply->opid);
      if (it == pending_.end()) return;
      ReadDone done = std::move(it->second);
      pending_.erase(it);
      done(reply->value, reply->tag);
    } else {
      CEC_CHECK_MSG(false, "unexpected message in ReplicatedStore");
    }
  }

  std::size_t stored_bytes() const {
    std::size_t bytes = 0;
    for (ObjectId x : config_->placement[id_]) {
      if (latest_[x]) bytes += latest_[x]->second.size();
    }
    return bytes;
  }

 private:
  void store(ObjectId object, const Tag& tag, const erasure::Value& value) {
    if (!placed(object)) return;  // non-replicas track causality only
    auto& slot = latest_[object];
    if (!slot || slot->first < tag) slot.emplace(tag, value);
  }

  void drain_inqueue() {
    while (true) {
      auto popped =
          inqueue_.pop_first_applicable([&](const InQueue::Entry& e) {
            if (e.tag.ts[e.origin] != vc_[e.origin] + 1) return false;
            for (NodeId p = 0; p < n_; ++p) {
              if (p != e.origin && e.tag.ts[p] > vc_[p]) return false;
            }
            return true;
          });
      if (!popped) return;
      vc_.set(popped->origin, popped->tag.ts[popped->origin]);
      store(popped->object, popped->tag, popped->value);
    }
  }

  NodeId nearest_replica(ObjectId object) const {
    NodeId best = kNoNode;
    double best_rtt = std::numeric_limits<double>::infinity();
    for (NodeId host = 0; host < n_; ++host) {
      if (host == id_) continue;
      const auto& objs = config_->placement[host];
      if (std::find(objs.begin(), objs.end(), object) == objs.end()) continue;
      const double rtt = config_->rtt_ms.empty()
                             ? static_cast<double>(host)
                             : config_->rtt_ms[id_][host];
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best = host;
      }
    }
    CEC_CHECK_MSG(best != kNoNode, "object placed nowhere reachable");
    return best;
  }

  sim::Simulation* sim_;
  const ReplicatedStoreConfig* config_;
  NodeId id_;
  std::size_t n_;
  VectorClock vc_;
  InQueue inqueue_;
  std::set<ObjectId> placed_;
  // Placed objects only: latest (tag, value) -- last-writer-wins.
  std::vector<std::optional<std::pair<Tag, erasure::Value>>> latest_;
  std::map<OpId, ReadDone> pending_;
  OpId next_opid_ = 1;
};

ReplicatedStore::ReplicatedStore(sim::Simulation* sim,
                                 ReplicatedStoreConfig config)
    : config_(std::move(config)) {
  const std::size_t n = config_.placement.size();
  CEC_CHECK(n > 0 && config_.num_objects > 0 && config_.value_bytes > 0);
  nodes_.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    nodes_.push_back(std::make_unique<Node>(sim, &config_, s, n));
    const NodeId sim_id = sim->add_node(nodes_.back().get());
    CEC_CHECK(sim_id == s);
  }
}

ReplicatedStore::~ReplicatedStore() = default;

std::size_t ReplicatedStore::num_servers() const { return nodes_.size(); }

Tag ReplicatedStore::write(NodeId at, ObjectId object, erasure::Value value) {
  CEC_CHECK(at < nodes_.size());
  CEC_CHECK(value.size() == config_.value_bytes);
  return nodes_[at]->write(object, std::move(value));
}

void ReplicatedStore::read(NodeId at, ObjectId object, ReadDone done) {
  CEC_CHECK(at < nodes_.size());
  nodes_[at]->read(object, std::move(done));
}

ReplicatedStoreConfig ReplicatedStore::full_replication(
    std::size_t num_servers, std::size_t num_objects,
    std::size_t value_bytes) {
  ReplicatedStoreConfig config;
  config.num_objects = num_objects;
  config.value_bytes = value_bytes;
  std::vector<ObjectId> all;
  for (ObjectId x = 0; x < num_objects; ++x) all.push_back(x);
  config.placement.assign(num_servers, all);
  return config;
}

std::size_t ReplicatedStore::stored_bytes(NodeId server) const {
  CEC_CHECK(server < nodes_.size());
  return nodes_[server]->stored_bytes();
}

}  // namespace causalec::baselines
