#include "sim/latency.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace causalec::sim {

UniformJitterLatency::UniformJitterLatency(SimTime base_ns, SimTime jitter_ns,
                                           std::uint64_t seed)
    : base_ns_(base_ns), jitter_ns_(jitter_ns), rng_(seed) {
  CEC_CHECK(base_ns >= jitter_ns);
}

SimTime UniformJitterLatency::delay(NodeId, NodeId) {
  return base_ns_ + rng_.next_in(-jitter_ns_, jitter_ns_);
}

HeavyTailLatency::HeavyTailLatency(SimTime base_ns, double alpha,
                                   double cap_factor, std::uint64_t seed)
    : base_ns_(base_ns), alpha_(alpha), cap_factor_(cap_factor), rng_(seed) {
  CEC_CHECK(base_ns > 0);
  CEC_CHECK(alpha > 0);
  CEC_CHECK(cap_factor >= 1.0);
}

SimTime HeavyTailLatency::delay(NodeId, NodeId) {
  // Inverse-CDF Pareto sample on [1, inf), capped.
  double u = rng_.next_double();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  const double factor =
      std::min(std::pow(1.0 - u, -1.0 / alpha_), cap_factor_);
  return static_cast<SimTime>(static_cast<double>(base_ns_) * factor);
}

std::unique_ptr<MatrixLatency> MatrixLatency::from_rtt_ms(
    const std::vector<std::vector<double>>& rtt_ms) {
  std::vector<std::vector<SimTime>> one_way;
  one_way.reserve(rtt_ms.size());
  for (const auto& row : rtt_ms) {
    CEC_CHECK(row.size() == rtt_ms.size());
    std::vector<SimTime> out;
    out.reserve(row.size());
    for (double rtt : row) {
      out.push_back(static_cast<SimTime>(
          std::llround(rtt / 2.0 * static_cast<double>(kMillisecond))));
    }
    one_way.push_back(std::move(out));
  }
  return std::make_unique<MatrixLatency>(std::move(one_way));
}

MatrixLatency::MatrixLatency(std::vector<std::vector<SimTime>> one_way_ns)
    : one_way_ns_(std::move(one_way_ns)) {
  for (const auto& row : one_way_ns_) CEC_CHECK(row.size() == one_way_ns_.size());
}

SimTime MatrixLatency::delay(NodeId from, NodeId to) {
  CEC_CHECK(from < one_way_ns_.size() && to < one_way_ns_.size());
  return one_way_ns_[from][to];
}

}  // namespace causalec::sim
