#include "sim/simulation.h"

#include <algorithm>
#include <utility>

#include "common/expect.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace causalec::sim {

Simulation::Simulation(std::unique_ptr<LatencyModel> latency,
                       std::uint64_t seed)
    : latency_(std::move(latency)), rng_(seed) {
  CEC_CHECK(latency_ != nullptr);
}

NodeId Simulation::add_node(Actor* actor) {
  CEC_CHECK(actor != nullptr);
  actors_.push_back(actor);
  halted_.push_back(false);
  return static_cast<NodeId>(actors_.size() - 1);
}

void Simulation::set_obs(obs::ObsHooks hooks) { obs_ = hooks; }

void Simulation::send(NodeId from, NodeId to, MessagePtr message) {
  CEC_CHECK(from < actors_.size() && to < actors_.size());
  CEC_CHECK(message != nullptr);
  if (halted_[from]) return;  // a halted node takes no steps

  stats_.total_messages += 1;
  const std::size_t bytes = message->wire_bytes();
  const char* type = message->type_name();
  stats_.total_bytes += bytes;
  auto& per_type = stats_.by_type[type];
  per_type.count += 1;
  per_type.bytes += bytes;

  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("net.messages").inc();
    obs_.metrics->counter("net.bytes").inc(bytes);
    obs_.metrics->counter(std::string("net.messages.") + type).inc();
    obs_.metrics->counter(std::string("net.bytes.") + type).inc(bytes);
  }
  if (obs_.tracer != nullptr) {
    obs_.tracer->instant("msg.send", from, now_,
                         {{"to", std::uint64_t{to}},
                          {"type", type},
                          {"bytes", std::uint64_t{bytes}}});
    if (message->trace.traced()) {
      obs_.tracer->flow_start(std::string("flow.") + type, from, now_,
                              message->trace.span_id,
                              {{"trace", message->trace.trace_id}});
    }
  }

  SimTime delay =
      from == to ? 0 : latency_->delay_for_bytes(from, to, bytes);
  const auto key = std::make_pair(from, to);
  if (auto it = channel_extra_delay_.find(key);
      it != channel_extra_delay_.end()) {
    delay += it->second;
  }
  SimTime deliver_at = now_ + delay;
  // A blocked (partitioned) channel holds the message until the heal time.
  if (auto it = channel_blocked_until_.find(key);
      it != channel_blocked_until_.end()) {
    if (it->second <= now_) {
      channel_blocked_until_.erase(it);  // healed; drop the stale entry
    } else {
      deliver_at = std::max(deliver_at, it->second);
    }
  }
  // FIFO: never schedule a delivery earlier than the previous one on the
  // same channel.
  auto [it, inserted] = channel_last_delivery_.try_emplace(key, deliver_at);
  if (!inserted) {
    deliver_at = std::max(deliver_at, it->second);
    it->second = deliver_at;
  }

  // Move the message into the closure (std::function requires copyable
  // captures, so park the unique_ptr in a shared holder; the closure fires
  // exactly once). Delivery is skipped if the target halted in the meantime.
  auto holder = std::make_shared<MessagePtr>(std::move(message));
  push_event(deliver_at, [this, from, to, type, bytes, holder] {
    if (halted_[to]) return;
    if (obs_.tracer != nullptr) {
      obs_.tracer->instant("msg.deliver", to, now_,
                           {{"from", std::uint64_t{from}},
                            {"type", type},
                            {"bytes", std::uint64_t{bytes}}});
      const obs::TraceContext& trace = (*holder)->trace;
      if (trace.traced()) {
        obs_.tracer->flow_finish(std::string("flow.") + type, to, now_,
                                 trace.span_id, {{"trace", trace.trace_id}});
      }
    }
    actors_[to]->on_message(from, std::move(*holder));
  });
}

void Simulation::schedule_at(SimTime time, std::function<void()> fn) {
  CEC_CHECK(time >= now_);
  push_event(time, std::move(fn));
}

void Simulation::schedule_after(SimTime delta, std::function<void()> fn) {
  CEC_CHECK(delta >= 0);
  push_event(now_ + delta, std::move(fn));
}

std::uint64_t Simulation::schedule_periodic(SimTime start, SimTime period,
                                            std::function<void()> fn,
                                            SimTime end_time, SimTime jitter) {
  CEC_CHECK(period > 0);
  CEC_CHECK(jitter >= 0);
  const std::uint64_t id = next_timer_id_++;
  periodic_.emplace(id, PeriodicTimer{period, end_time, std::move(fn), jitter});
  if (start <= end_time) {
    push_event(start, [this, id, start] { fire_periodic(id, start); });
  }
  return id;
}

void Simulation::cancel_timer(std::uint64_t timer_id) {
  auto it = periodic_.find(timer_id);
  if (it != periodic_.end()) it->second.cancelled = true;
}

void Simulation::fire_periodic(std::uint64_t timer_id, SimTime scheduled) {
  auto it = periodic_.find(timer_id);
  if (it == periodic_.end() || it->second.cancelled) {
    periodic_.erase(timer_id);
    return;
  }
  it->second.fn();
  // Re-lookup: the callback may have cancelled the timer.
  it = periodic_.find(timer_id);
  if (it == periodic_.end() || it->second.cancelled) {
    periodic_.erase(timer_id);
    return;
  }
  SimTime next = scheduled + it->second.period;
  if (it->second.jitter > 0) {
    next += rng_.next_in(-it->second.jitter, it->second.jitter);
    next = std::max(next, now_ + 1);  // always advance
  }
  if (next > it->second.end_time) {
    periodic_.erase(it);
    return;
  }
  push_event(next, [this, timer_id, next] { fire_periodic(timer_id, next); });
}

void Simulation::halt(NodeId node) {
  CEC_CHECK(node < actors_.size());
  halted_[node] = true;
}

bool Simulation::halted(NodeId node) const {
  CEC_CHECK(node < actors_.size());
  return halted_[node];
}

void Simulation::restart(NodeId node) {
  CEC_CHECK(node < actors_.size());
  halted_[node] = false;
}

void Simulation::add_channel_delay(NodeId from, NodeId to, SimTime extra) {
  SimTime& accumulated = channel_extra_delay_[{from, to}];
  accumulated += extra;
  CEC_CHECK(accumulated >= 0);
}

void Simulation::block_channel(NodeId from, NodeId to, SimTime until) {
  CEC_CHECK(from < actors_.size() && to < actors_.size());
  SimTime& blocked = channel_blocked_until_[{from, to}];
  blocked = std::max(blocked, until);
}

void Simulation::push_event(SimTime time, std::function<void()> fn) {
  queue_.push(Event{time, next_seq_++, std::move(fn)});
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() returns const&; the closure must be moved out, so
  // copy the POD parts and const_cast the function (safe: popped right after).
  const Event& top = queue_.top();
  CEC_CHECK(top.time >= now_);
  now_ = top.time;
  auto fn = std::move(const_cast<Event&>(top).fn);
  queue_.pop();
  ++events_processed_;
  fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  now_ = std::max(now_, t);
}

void Simulation::run_until_idle(std::uint64_t max_events) {
  const std::uint64_t start = events_processed_;
  while (step()) {
    CEC_CHECK_MSG(events_processed_ - start <= max_events,
                  "simulation did not quiesce within " << max_events
                                                       << " events");
  }
}

}  // namespace causalec::sim
