// Deterministic discrete-event simulation of an asynchronous message-passing
// system (the deployment setting of Sec. 2.1): a fixed set of nodes connected
// by reliable, FIFO, point-to-point channels with arbitrary (model-driven)
// delays. Nodes may halt (crash); a halted node takes no further steps and
// messages addressed to it are discarded on delivery.
//
// Determinism: all ties are broken by a monotonically increasing sequence
// number, and all randomness flows through the seeded latency model / Rng.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "obs/obs.h"
#include "obs/trace_context.h"
#include "sim/latency.h"

namespace causalec::sim {

/// Base class for protocol messages moved through the network.
class Message {
 public:
  virtual ~Message() = default;
  /// Serialized size in bytes (for communication-cost accounting).
  virtual std::size_t wire_bytes() const = 0;
  /// Stable name for per-type accounting ("app", "val_inq", ...).
  virtual const char* type_name() const = 0;

  /// Trace-context propagation (observability only): never consulted by the
  /// protocol and excluded from wire_bytes(), so traced and untraced runs
  /// produce identical communication-cost accounting.
  obs::TraceContext trace;
};

using MessagePtr = std::unique_ptr<Message>;

/// A node in the simulation. Implementations receive messages; internal
/// actions are driven by timers the owner registers on the simulation.
class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_message(NodeId from, MessagePtr message) = 0;
};

/// Aggregate network accounting. Equality-comparable so determinism tests
/// can assert two same-seed runs produced byte-identical traffic.
struct NetworkStats {
  struct PerType {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    bool operator==(const PerType&) const = default;
  };
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::map<std::string, PerType> by_type;

  void reset() { *this = NetworkStats{}; }
  bool operator==(const NetworkStats&) const = default;
};

class Simulation {
 public:
  explicit Simulation(std::unique_ptr<LatencyModel> latency,
                      std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Registers an actor; returns its NodeId (assigned densely from 0).
  /// The actor must outlive the simulation. Count must match the latency
  /// model's dimension when a MatrixLatency is used.
  NodeId add_node(Actor* actor);

  std::size_t num_nodes() const { return actors_.size(); }
  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Reliable FIFO send; self-sends are allowed (delivered with zero model
  /// delay but still asynchronously). No-op if `from` has halted.
  void send(NodeId from, NodeId to, MessagePtr message);

  /// One-shot events.
  void schedule_at(SimTime time, std::function<void()> fn);
  void schedule_after(SimTime delta, std::function<void()> fn);

  /// Periodic timer firing first at `start`, then every `period`, until
  /// `end_time` (inclusive). Returns an id usable with cancel_timer.
  /// With `jitter` > 0 every subsequent firing is perturbed by a seeded
  /// uniform draw in [-jitter, +jitter] (never scheduled in the past), so
  /// e.g. GC rounds at different servers drift out of lockstep.
  std::uint64_t schedule_periodic(SimTime start, SimTime period,
                                  std::function<void()> fn,
                                  SimTime end_time = kForever,
                                  SimTime jitter = 0);
  void cancel_timer(std::uint64_t timer_id);

  /// Crash a node: it takes no further steps and receives nothing.
  void halt(NodeId node);
  bool halted(NodeId node) const;

  /// Un-halt a node (crash-recover, Sec. 2.1 relaxed): it resumes taking
  /// steps and receiving *future* deliveries. Messages dropped while halted
  /// stay dropped -- durable-state recovery is the actor's job.
  void restart(NodeId node);

  /// Hold back all messages on the (from, to) channel by an extra delay
  /// applied to future sends (adversarial schedules in tests). Negative
  /// deltas are allowed (e.g. to end a transient delay burst) as long as
  /// the accumulated extra delay stays non-negative; FIFO order is
  /// preserved regardless.
  void add_channel_delay(NodeId from, NodeId to, SimTime extra);

  /// Transient partition primitive: messages sent on the (from, to) channel
  /// before `until` are held back and delivered no earlier than `until`
  /// (plus their model delay ordering). The channel heals by itself once
  /// now() passes `until`; overlapping blocks keep the latest heal time.
  void block_channel(NodeId from, NodeId to, SimTime until);

  /// Process the next event. Returns false when the queue is empty.
  bool step();

  /// Process all events with time <= t (leaves now() == t).
  void run_until(SimTime t);

  /// Process events until the queue is completely empty (periodic timers
  /// must have finite end_time, or this will not terminate).
  /// max_events guards against protocol livelock in tests.
  void run_until_idle(std::uint64_t max_events = 100'000'000);

  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }

  /// Attaches observability sinks. With a tracer, every send/delivery
  /// becomes an instant event ("msg.send" at the sender, "msg.deliver" at
  /// the receiver, correlated by type/bytes args); with a metrics registry,
  /// NetworkStats is mirrored into `net.*` counters so the same numbers are
  /// available through both surfaces.
  void set_obs(obs::ObsHooks hooks);
  const obs::ObsHooks& obs_hooks() const { return obs_; }

  /// Number of events processed so far.
  std::uint64_t events_processed() const { return events_processed_; }

  static constexpr SimTime kForever = INT64_MAX / 2;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct PeriodicTimer {
    SimTime period;
    SimTime end_time;
    std::function<void()> fn;
    SimTime jitter = 0;
    bool cancelled = false;
  };

  void push_event(SimTime time, std::function<void()> fn);
  void fire_periodic(std::uint64_t timer_id, SimTime scheduled);

  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  std::vector<Actor*> actors_;
  std::vector<bool> halted_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;
  std::uint64_t events_processed_ = 0;
  // FIFO enforcement: per-channel last scheduled delivery time.
  std::map<std::pair<NodeId, NodeId>, SimTime> channel_last_delivery_;
  std::map<std::pair<NodeId, NodeId>, SimTime> channel_extra_delay_;
  std::map<std::pair<NodeId, NodeId>, SimTime> channel_blocked_until_;
  std::map<std::uint64_t, PeriodicTimer> periodic_;
  std::uint64_t next_timer_id_ = 1;
  NetworkStats stats_;
  obs::ObsHooks obs_;
};

}  // namespace causalec::sim
