// Network latency models for the discrete-event simulator.
//
// The paper's deployment setting (Sec. 2.1) is an asynchronous network where
// the only sources of asynchrony are processing and communication delays;
// Fig. 1 treats inter-DC latency as predictable. We provide:
//   * ConstantLatency            -- fixed one-way delay
//   * UniformJitterLatency       -- base +/- jitter, seeded
//   * MatrixLatency              -- per-pair one-way delays (RTT matrix / 2)
// plus per-pair extra-delay injection for adversarial schedules.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace causalec::sim {

/// One-way message delay oracle. Implementations must be deterministic
/// given their seed.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// One-way delay in nanoseconds for a message from `from` to `to`.
  virtual SimTime delay(NodeId from, NodeId to) = 0;
  /// Size-aware delay; the default ignores the message size (pure
  /// propagation). BandwidthLatency adds a serialization term.
  virtual SimTime delay_for_bytes(NodeId from, NodeId to,
                                  std::size_t bytes) {
    (void)bytes;
    return delay(from, to);
  }
};

class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(SimTime one_way_ns) : one_way_ns_(one_way_ns) {}
  SimTime delay(NodeId, NodeId) override { return one_way_ns_; }

 private:
  SimTime one_way_ns_;
};

class UniformJitterLatency final : public LatencyModel {
 public:
  UniformJitterLatency(SimTime base_ns, SimTime jitter_ns,
                       std::uint64_t seed);
  SimTime delay(NodeId from, NodeId to) override;

 private:
  SimTime base_ns_;
  SimTime jitter_ns_;
  Rng rng_;
};

/// Heavy-tailed delays for adversarial schedule exploration (the chaos
/// harness): delay = base * pareto(alpha) with the tail capped at
/// base * cap_factor. Small alpha (1.2-2) produces rare but very large
/// spikes, which maximizes cross-channel reordering while every channel
/// individually stays FIFO (the simulator enforces that).
class HeavyTailLatency final : public LatencyModel {
 public:
  /// alpha > 0 is the Pareto shape (smaller = heavier tail); cap_factor >= 1
  /// bounds the worst delay at base_ns * cap_factor.
  HeavyTailLatency(SimTime base_ns, double alpha, double cap_factor,
                   std::uint64_t seed);
  SimTime delay(NodeId from, NodeId to) override;

 private:
  SimTime base_ns_;
  double alpha_;
  double cap_factor_;
  Rng rng_;
};

/// Bandwidth-aware model: base propagation delay plus a per-byte
/// serialization term (delay = base + bytes / bandwidth). The simulator
/// passes the message size to size-aware models.
class BandwidthLatency final : public LatencyModel {
 public:
  /// bytes_per_second > 0; base_ns is the propagation component.
  BandwidthLatency(SimTime base_ns, double bytes_per_second)
      : base_ns_(base_ns), bytes_per_second_(bytes_per_second) {}

  SimTime delay(NodeId, NodeId) override { return base_ns_; }

  SimTime delay_for_bytes(NodeId, NodeId, std::size_t bytes) override {
    return base_ns_ +
           static_cast<SimTime>(static_cast<double>(bytes) /
                                bytes_per_second_ * 1e9);
  }

 private:
  SimTime base_ns_;
  double bytes_per_second_;
};

/// Per-pair one-way delays. Construct from an RTT matrix in milliseconds
/// (delay = rtt/2) or from explicit one-way nanoseconds.
class MatrixLatency final : public LatencyModel {
 public:
  static std::unique_ptr<MatrixLatency> from_rtt_ms(
      const std::vector<std::vector<double>>& rtt_ms);

  explicit MatrixLatency(std::vector<std::vector<SimTime>> one_way_ns);

  SimTime delay(NodeId from, NodeId to) override;

 private:
  std::vector<std::vector<SimTime>> one_way_ns_;
};

inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kSecond = 1'000'000'000;

}  // namespace causalec::sim
