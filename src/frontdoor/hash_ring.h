// Consistent-hash ring with virtual nodes: the keys->groups step of the
// front-door tier (DESIGN.md §12). Each routing group contributes `vnodes`
// points to the ring (hashed from (group, replica)); a key is owned by the
// first point clockwise of its hash. Adding or removing a group therefore
// moves only the keys that land on that group's points -- the minimal-remap
// property the hash_ring_test battery pins down.
//
// The ring is deterministic in (membership, vnodes, seed): every router
// instance over the same cluster config computes the same ownership, with
// no coordination.
#pragma once

#include <cstdint>
#include <vector>

namespace causalec::frontdoor {

/// The ring's key/point hash (splitmix64 finalizer): exposed so tests can
/// place keys deliberately.
std::uint64_t ring_hash(std::uint64_t x);

class HashRing {
 public:
  /// A ring over groups 0..num_groups-1, each with `vnodes` points.
  HashRing(std::size_t num_groups, std::size_t vnodes,
           std::uint64_t seed = 0x5EEDu);

  std::size_t num_points() const { return points_.size(); }
  std::size_t vnodes() const { return vnodes_; }

  /// The owning group of `key`, or SIZE_MAX on an empty ring.
  std::size_t owner(std::uint64_t key) const;

  /// Distinct groups in ring order starting at the owner -- the fall-through
  /// order when the owner's nodes are unreachable. At most `max_groups`
  /// entries.
  std::vector<std::size_t> candidates(std::uint64_t key,
                                      std::size_t max_groups) const;

  /// Membership changes re-sort the point list; ownership of keys not
  /// touching the changed group's points is unaffected.
  void add_group(std::size_t group);
  void remove_group(std::size_t group);

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t group;
  };

  std::uint64_t point_hash(std::size_t group, std::size_t replica) const;
  /// Index of the first point clockwise of `hash(key)`.
  std::size_t find_point(std::uint64_t key) const;

  std::size_t vnodes_;
  std::uint64_t seed_;
  std::vector<Point> points_;  // sorted by hash
};

}  // namespace causalec::frontdoor
