// Causally-safe edge cache for the front-door tier (DESIGN.md §12).
//
// Every entry is a *read witness*: a (value, tag, clock) triple such that a
// read answered at timestamp `clock` legitimately returns `tag`/`value`.
// Two facts make a witness permanently valid (the cache never needs
// invalidation for correctness, only for freshness):
//
//   * the arbitration set { w : ts(w) <= clock } is immutable once `clock`
//     is fixed -- any write applied later at server s has ts[s] beyond
//     clock[s] -- so the origin's largest-tag answer never changes;
//   * for a write witness the clock is the write's own tag timestamp: tags
//     are unique per write (Lemma B.3) and the tag order extends the clock
//     order, so no other write can have ts <= tag.ts with a larger tag.
//
// Serving is gated by the requesting session's causal frontier F (the merge
// of every response clock the session has seen): an entry is served only
// when F <= entry.clock, i.e. the witness timestamp is allowed to be the
// session's next read timestamp. A frontier that has moved past the entry
// (read-your-writes, monotonic reads) is a *stale rejection* and must fall
// through to a backend. TTL and LRU bound staleness and memory; they are
// policy, not correctness.
#pragma once

#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "causalec/tag.h"
#include "common/types.h"
#include "erasure/value.h"

namespace causalec::frontdoor {

class EdgeCache {
 public:
  struct Entry {
    erasure::Value value;
    Tag tag;
    /// The witness timestamp: the origin's clock for read fall-throughs,
    /// the write's own tag timestamp for write-throughs.
    VectorClock clock;
  };

  enum class Outcome {
    kHit,      // entry present, fresh, and frontier <= entry.clock
    kMiss,     // no entry for the object
    kStale,    // frontier is ahead of the entry (session must fall through)
    kExpired,  // entry older than the TTL
  };

  /// ttl of zero disables expiry.
  EdgeCache(std::size_t capacity, std::chrono::milliseconds ttl);

  /// On kHit, *out is filled and the entry is marked most-recently-used.
  Outcome lookup(ObjectId object, const VectorClock& frontier, Entry* out);

  /// Unconditional replace (safe: every entry is self-contained); inserts
  /// evict the LRU entry at capacity.
  void put(ObjectId object, erasure::Value value, Tag tag, VectorClock clock);

  std::size_t size() const;
  std::uint64_t evictions() const;

  /// Test hook: backdate an entry's insertion time so TTL expiry is
  /// testable without sleeping. False when the object is not cached.
  bool age_entry(ObjectId object, std::chrono::milliseconds by);

 private:
  using Clock = std::chrono::steady_clock;

  struct Node {
    ObjectId object;
    Entry entry;
    Clock::time_point inserted;
  };

  std::size_t capacity_;
  std::chrono::milliseconds ttl_;

  mutable std::mutex mu_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<ObjectId, std::list<Node>::iterator> index_;
  std::uint64_t evictions_ = 0;
};

}  // namespace causalec::frontdoor
