#include "frontdoor/edge_cache.h"

#include <utility>

#include "common/expect.h"

namespace causalec::frontdoor {

namespace {

/// The serve predicate: an empty frontier (fresh session) accepts any
/// witness; otherwise the frontier must be componentwise dominated. A size
/// mismatch (an entry cached under a different cluster shape) never serves.
bool frontier_allows(const VectorClock& frontier, const VectorClock& clock) {
  if (frontier.size() == 0) return true;
  if (frontier.size() != clock.size()) return false;
  return frontier.leq(clock);
}

}  // namespace

EdgeCache::EdgeCache(std::size_t capacity, std::chrono::milliseconds ttl)
    : capacity_(capacity), ttl_(ttl) {
  CEC_CHECK(capacity_ >= 1);
}

EdgeCache::Outcome EdgeCache::lookup(ObjectId object,
                                     const VectorClock& frontier,
                                     Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(object);
  if (it == index_.end()) return Outcome::kMiss;
  if (ttl_.count() > 0 && Clock::now() - it->second->inserted >= ttl_) {
    // Expired entries are dropped eagerly so they stop occupying capacity;
    // the fall-through response will re-insert a fresh witness.
    lru_.erase(it->second);
    index_.erase(it);
    return Outcome::kExpired;
  }
  if (!frontier_allows(frontier, it->second->entry.clock)) {
    // The session has seen past this witness; the entry stays (it may
    // still serve sessions with older frontiers).
    return Outcome::kStale;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->entry;
  return Outcome::kHit;
}

void EdgeCache::put(ObjectId object, erasure::Value value, Tag tag,
                    VectorClock clock) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(object);
  if (it != index_.end()) {
    it->second->entry = Entry{std::move(value), std::move(tag),
                              std::move(clock)};
    it->second->inserted = Clock::now();
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().object);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Node{object,
                       Entry{std::move(value), std::move(tag),
                             std::move(clock)},
                       Clock::now()});
  index_[object] = lru_.begin();
}

std::size_t EdgeCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t EdgeCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

bool EdgeCache::age_entry(ObjectId object, std::chrono::milliseconds by) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(object);
  if (it == index_.end()) return false;
  it->second->inserted -= by;
  return true;
}

}  // namespace causalec::frontdoor
