#include "frontdoor/router_client.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <utility>
#include <vector>

namespace causalec::frontdoor {

bool RouterClient::connect(const std::string& host_port, int timeout_ms) {
  const auto addr = net::parse_host_port(host_port);
  if (!addr.has_value()) return false;
  fd_ = net::connect_tcp_blocking(addr->first, addr->second, timeout_ms);
  if (!fd_.valid()) return false;
  net::Hello hello;
  hello.role = net::PeerRole::kClient;
  if (!send_payload(net::encode_hello(hello))) return false;
  return true;
}

void RouterClient::advance_frontier(const VectorClock& vc) {
  if (vc.size() == 0) return;
  if (frontier_.size() == 0) {
    frontier_ = vc;
    return;
  }
  if (frontier_.size() != vc.size()) return;  // cluster-shape confusion
  frontier_.merge(vc);
}

std::optional<net::WriteResp> RouterClient::write(OpId opid, ObjectId object,
                                                  erasure::Value value) {
  net::RoutedWriteReq req;
  req.opid = opid;
  req.client = client_;
  req.object = object;
  req.frontier = frontier_;
  req.value = std::move(value);
  if (!send_payload(net::encode_routed_write_req(req))) return std::nullopt;
  auto frame = next_frame();
  if (!frame.has_value()) return std::nullopt;
  auto resp = net::decode_write_resp(std::move(*frame));
  if (!resp.has_value() || resp->opid != opid) {
    fail();
    return std::nullopt;
  }
  advance_frontier(resp->vc);
  return resp;
}

std::optional<net::RoutedReadResp> RouterClient::read(OpId opid,
                                                      ObjectId object) {
  net::RoutedReadReq req;
  req.opid = opid;
  req.client = client_;
  req.object = object;
  req.frontier = frontier_;
  if (!send_payload(net::encode_routed_read_req(req))) return std::nullopt;
  auto frame = next_frame();
  if (!frame.has_value()) return std::nullopt;
  auto resp = net::decode_routed_read_resp(std::move(*frame));
  if (!resp.has_value() || resp->opid != opid) {
    fail();
    return std::nullopt;
  }
  advance_frontier(resp->vc);
  return resp;
}

std::optional<net::Pong> RouterClient::ping(std::uint64_t token) {
  if (!send_payload(net::encode_ping(net::Ping{token}))) return std::nullopt;
  auto frame = next_frame();
  if (!frame.has_value()) return std::nullopt;
  auto resp = net::decode_pong(std::move(*frame));
  if (!resp.has_value() || resp->token != token) {
    fail();
    return std::nullopt;
  }
  return resp;
}

std::optional<net::RouterStatsResp> RouterClient::router_stats() {
  if (!send_payload(net::encode_router_stats_req())) return std::nullopt;
  auto frame = next_frame();
  if (!frame.has_value()) return std::nullopt;
  auto resp = net::decode_router_stats_resp(std::move(*frame));
  if (!resp.has_value()) {
    fail();
    return std::nullopt;
  }
  return resp;
}

bool RouterClient::send_payload(const std::vector<std::uint8_t>& payload) {
  if (!fd_.valid()) return false;
  const erasure::Buffer frame = net::encode_frame(payload);
  std::size_t written = 0;
  while (written < frame.size()) {
    const auto n = ::send(fd_.get(), frame.data() + written,
                          frame.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail();
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<erasure::Buffer> RouterClient::next_frame() {
  while (fd_.valid()) {
    if (auto payload = reader_.next(); payload.has_value()) {
      return payload;
    }
    if (reader_.failed()) {
      fail();
      return std::nullopt;
    }
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, io_timeout_ms_);
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) continue;
      fail();  // timeout or poll error
      return std::nullopt;
    }
    std::vector<std::uint8_t> chunk(64 * 1024);
    const auto n = ::recv(fd_.get(), chunk.data(), chunk.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      fail();  // peer closed or error
      return std::nullopt;
    }
    chunk.resize(static_cast<std::size_t>(n));
    reader_.feed(erasure::Buffer::adopt(std::move(chunk)));
  }
  return std::nullopt;
}

void RouterClient::fail() { fd_.reset(); }

}  // namespace causalec::frontdoor
