#include "frontdoor/router.h"

#include <sys/epoll.h>

#include <thread>
#include <utility>

#include "common/expect.h"
#include "common/logging.h"
#include "net/frame.h"

namespace causalec::frontdoor {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  const auto d = std::chrono::steady_clock::now() - start;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      groups_(config_.cluster.routing_groups()),
      ring_(groups_.size(), config_.vnodes, config_.ring_seed),
      cache_(config_.cache_capacity, config_.cache_ttl),
      counters_(obs::FrontdoorCounters::resolve(registry_)) {
  std::string error;
  CEC_CHECK_MSG(config_.cluster.validate(&error),
                "router: bad cluster config: " << error);
  CEC_CHECK(config_.shards >= 1);
  const std::size_t n = config_.cluster.num_servers;
  backend_ops_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->loop = std::make_unique<net::EventLoop>();
    shard->links.reserve(n);
    for (NodeId node = 0; node < n; ++node) {
      auto link = std::make_unique<BackendLink>();
      link->node = node;
      const auto addr =
          net::parse_host_port(config_.cluster.endpoints[node]);
      CEC_CHECK_MSG(addr.has_value(),
                    "router: bad endpoint '"
                        << config_.cluster.endpoints[node] << "'");
      link->host = addr->first;
      link->port = addr->second;
      shard->links.push_back(std::move(link));
    }
    shards_.push_back(std::move(shard));
  }
}

Router::~Router() { stop(); }

void Router::start() {
  CEC_CHECK(!started_);
  started_ = true;
  const bool reuseport = shards_.size() > 1;
  shards_[0]->listener =
      net::listen_tcp(config_.listen_host, config_.listen_port, reuseport);
  CEC_CHECK_MSG(shards_[0]->listener.valid(),
                "router: cannot listen on " << config_.listen_host << ":"
                                            << config_.listen_port);
  listen_port_ = net::local_port(shards_[0]->listener.get());
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    shards_[i]->listener = net::listen_tcp(config_.listen_host, listen_port_,
                                           /*reuseport=*/true);
    CEC_CHECK_MSG(shards_[i]->listener.valid(),
                  "router: cannot bind shard " << i << " listener on port "
                                               << listen_port_);
  }
  for (auto& shard : shards_) shard->loop->start();
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->loop->post([this, s] {
      s->pool.install();
      s->loop->watch(s->listener.get(), /*want_read=*/true,
                     /*want_write=*/false,
                     [this, s](std::uint32_t) { accept_ready(s); });
      for (auto& link : s->links) dial(s, link.get());
    });
  }
  ready_.store(true, std::memory_order_release);
}

void Router::stop() {
  if (!started_) return;
  ready_.store(false, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->loop->stop();
  started_ = false;
}

bool Router::await_backends(std::chrono::milliseconds timeout) const {
  const int want =
      static_cast<int>(shards_.size() * config_.cluster.num_servers);
  const auto deadline = Clock::now() + timeout;
  while (links_up_.load(std::memory_order_acquire) < want) {
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

net::RouterStatsResp Router::stats() const {
  net::RouterStatsResp s;
  s.routed_writes = counters_.routed_writes->value();
  s.routed_reads = counters_.routed_reads->value();
  s.cache_hits = counters_.cache_hits->value();
  s.cache_misses = counters_.cache_misses->value();
  s.cache_stale = counters_.cache_stale->value();
  s.cache_expired = counters_.cache_expired->value();
  s.cache_evictions = cache_.evictions();
  s.cache_entries = cache_.size();
  s.fallthroughs = counters_.fallthroughs->value();
  s.reroutes = counters_.reroutes->value();
  s.ring_remaps = counters_.ring_remaps->value();
  const std::size_t n = config_.cluster.num_servers;
  s.backend_ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.backend_ops.push_back(
        backend_ops_[i].load(std::memory_order_relaxed));
  }
  return s;
}

void Router::accept_ready(Shard* shard) {
  while (true) {
    net::ScopedFd fd = net::accept_nonblocking(shard->listener.get());
    if (!fd.valid()) return;
    auto conn =
        std::make_shared<net::Connection>(shard->loop.get(), std::move(fd));
    auto state = std::make_shared<ClientConn>();
    state->shard = shard;
    conn->open(
        [this, state](const std::shared_ptr<net::Connection>& c,
                      erasure::Buffer payload) {
          handle_client_frame(state, c, std::move(payload));
        },
        [](const std::shared_ptr<net::Connection>&) {});
  }
}

void Router::handle_client_frame(
    const std::shared_ptr<ClientConn>& state,
    const std::shared_ptr<net::Connection>& conn, erasure::Buffer payload) {
  const std::optional<std::uint8_t> type = net::peek_type(payload);
  if (!type.has_value()) {
    conn->close();
    return;
  }
  if (!state->helloed) {
    const std::optional<net::Hello> hello =
        net::decode_hello(std::move(payload));
    if (!hello.has_value()) {
      CEC_LOG(kWarn) << "router: closing connection with malformed hello";
      conn->close();
      return;
    }
    state->helloed = true;
    return;
  }
  // Requests are validated here on the shard thread; a hostile frame can
  // never reach a backend or the cache.
  switch (static_cast<net::ClientMsgType>(*type)) {
    case net::ClientMsgType::kPing: {
      const std::optional<net::Ping> ping =
          net::decode_ping(std::move(payload));
      if (!ping.has_value()) break;
      conn->send(net::encode_frame(
          net::encode_pong(net::Pong{ping->token, ready()})));
      return;
    }
    case net::ClientMsgType::kRouterStatsReq: {
      if (!net::decode_router_stats_req(std::move(payload))) break;
      conn->send(net::encode_frame(net::encode_router_stats_resp(stats())));
      return;
    }
    case net::ClientMsgType::kRoutedWriteReq: {
      std::optional<net::RoutedWriteReq> req =
          net::decode_routed_write_req(std::move(payload));
      if (!req.has_value()) break;
      if (req->object >= config_.cluster.num_objects ||
          req->value.size() != config_.cluster.value_bytes ||
          (req->frontier.size() != 0 &&
           req->frontier.size() != config_.cluster.num_servers)) {
        break;
      }
      counters_.routed_writes->inc();
      PendingOp op;
      op.is_write = true;
      op.client_opid = req->opid;
      op.client = req->client;
      op.object = req->object;
      op.frontier = std::move(req->frontier);
      op.value = std::move(req->value);
      op.client_conn = conn;
      op.start = Clock::now();
      forward(state->shard, std::move(op));
      return;
    }
    case net::ClientMsgType::kRoutedReadReq: {
      std::optional<net::RoutedReadReq> req =
          net::decode_routed_read_req(std::move(payload));
      if (!req.has_value()) break;
      if (req->object >= config_.cluster.num_objects ||
          (req->frontier.size() != 0 &&
           req->frontier.size() != config_.cluster.num_servers)) {
        break;
      }
      handle_routed_read(state->shard, std::move(*req), conn);
      return;
    }
    default:
      break;
  }
  CEC_LOG(kWarn) << "router: closing client connection after malformed "
                    "frame (type "
                 << static_cast<int>(*type) << ")";
  conn->close();
}

void Router::handle_routed_read(
    Shard* shard, net::RoutedReadReq req,
    const std::shared_ptr<net::Connection>& conn) {
  counters_.routed_reads->inc();
  const auto start = Clock::now();
  EdgeCache::Entry entry;
  switch (cache_.lookup(req.object, req.frontier, &entry)) {
    case EdgeCache::Outcome::kHit: {
      counters_.cache_hits->inc();
      counters_.cache_hit_ns->observe(elapsed_ns(start));
      net::RoutedReadResp resp;
      resp.opid = req.opid;
      resp.tag = std::move(entry.tag);
      resp.vc = std::move(entry.clock);
      resp.cached = true;
      resp.value = std::move(entry.value);
      conn->send(net::encode_frame(net::encode_routed_read_resp(resp)));
      return;
    }
    case EdgeCache::Outcome::kMiss:
      counters_.cache_misses->inc();
      break;
    case EdgeCache::Outcome::kStale:
      counters_.cache_stale->inc();
      break;
    case EdgeCache::Outcome::kExpired:
      counters_.cache_expired->inc();
      break;
  }
  counters_.fallthroughs->inc();
  PendingOp op;
  op.is_write = false;
  op.client_opid = req.opid;
  op.client = req.client;
  op.object = req.object;
  op.frontier = std::move(req.frontier);
  op.client_conn = conn;
  op.start = start;
  op.reroutes_left = config_.max_read_reroutes;
  forward(shard, std::move(op));
}

void Router::forward(Shard* shard, PendingOp op) {
  const std::vector<std::size_t> cands =
      ring_.candidates(op.object, groups_.size());
  bool primary = true;
  for (const std::size_t gid : cands) {
    for (const NodeId node : groups_[gid]) {
      BackendLink* link = shard->links[node].get();
      if (link->conn == nullptr) {
        primary = false;
        continue;
      }
      if (!primary) counters_.reroutes->inc();
      const OpId opid = shard->next_opid++;
      if (op.is_write) {
        net::RoutedWriteReq req;
        req.opid = opid;
        req.client = op.client;
        req.object = op.object;
        req.frontier = op.frontier;
        req.value = op.value;  // kept in the op: it becomes the witness
        link->conn->send(
            net::encode_frame(net::encode_routed_write_req(req)));
      } else {
        net::RoutedReadReq req;
        req.opid = opid;
        req.client = op.client;
        req.object = op.object;
        req.frontier = op.frontier;  // kept in the op: reroutes resend it
        link->conn->send(
            net::encode_frame(net::encode_routed_read_req(req)));
      }
      backend_ops_[node].fetch_add(1, std::memory_order_relaxed);
      link->pending.emplace(opid, std::move(op));
      return;
    }
  }
  // No live backend can own this key: fail the op at the client (closing
  // the connection is the protocol's failure signal).
  CEC_LOG(kWarn) << "router: no live backend for object " << op.object
                 << ", failing client op";
  if (auto c = op.client_conn.lock()) c->close();
}

void Router::dial(Shard* shard, BackendLink* link) {
  if (stopping_.load(std::memory_order_acquire)) return;
  if (link->conn != nullptr || link->connecting.valid()) return;
  link->connecting = net::connect_tcp_nonblocking(link->host, link->port);
  if (!link->connecting.valid()) {
    retry_dial(shard, link);
    return;
  }
  shard->loop->watch(link->connecting.get(), /*want_read=*/false,
                     /*want_write=*/true,
                     [this, shard, link](std::uint32_t events) {
                       on_connect_ready(shard, link, events);
                     });
}

void Router::on_connect_ready(Shard* shard, BackendLink* link,
                              std::uint32_t events) {
  shard->loop->unwatch(link->connecting.get());
  net::ScopedFd fd = std::move(link->connecting);
  if (stopping_.load(std::memory_order_acquire)) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 ||
      net::take_socket_error(fd.get()) != 0) {
    retry_dial(shard, link);
    return;
  }
  auto conn =
      std::make_shared<net::Connection>(shard->loop.get(), std::move(fd));
  link->conn = conn;
  conn->open(
      [this, shard, link](const std::shared_ptr<net::Connection>& c,
                          erasure::Buffer payload) {
        if (link->conn == c) {
          handle_backend_frame(shard, link, std::move(payload));
        }
      },
      [this, shard, link](const std::shared_ptr<net::Connection>& dead) {
        if (link->conn == dead) on_link_lost(shard, link);
      });
  net::Hello hello;
  hello.role = net::PeerRole::kClient;
  conn->send(net::encode_frame(net::encode_hello(hello)));
  links_up_.fetch_add(1, std::memory_order_acq_rel);
  counters_.ring_remaps->inc();
}

void Router::retry_dial(Shard* shard, BackendLink* link) {
  if (stopping_.load(std::memory_order_acquire)) return;
  shard->loop->schedule_after(config_.reconnect_delay,
                              [this, shard, link] { dial(shard, link); });
}

void Router::on_link_lost(Shard* shard, BackendLink* link) {
  link->conn = nullptr;
  links_up_.fetch_sub(1, std::memory_order_acq_rel);
  counters_.ring_remaps->inc();
  auto pending = std::move(link->pending);
  link->pending.clear();
  for (auto& [opid, op] : pending) {
    if (op.is_write) {
      // A routed write in flight at a dead backend may or may not have
      // been applied; retrying could apply it twice under a fresh tag.
      // Fail it at the client and let the session decide.
      if (auto c = op.client_conn.lock()) c->close();
      continue;
    }
    if (op.reroutes_left <= 0) {
      if (auto c = op.client_conn.lock()) c->close();
      continue;
    }
    op.reroutes_left -= 1;
    forward(shard, std::move(op));  // reads are idempotent: chase a survivor
  }
  retry_dial(shard, link);
}

void Router::handle_backend_frame(Shard* shard, BackendLink* link,
                                  erasure::Buffer payload) {
  (void)shard;
  const std::optional<std::uint8_t> type = net::peek_type(payload);
  if (!type.has_value()) {
    link->conn->close();
    return;
  }
  switch (static_cast<net::ClientMsgType>(*type)) {
    case net::ClientMsgType::kWriteResp: {
      std::optional<net::WriteResp> resp =
          net::decode_write_resp(std::move(payload));
      if (!resp.has_value()) break;
      const auto it = link->pending.find(resp->opid);
      if (it == link->pending.end()) return;  // late response: drop
      PendingOp op = std::move(it->second);
      link->pending.erase(it);
      if (!op.is_write) return;  // backend type confusion: drop
      counters_.origin_write_ns->observe(elapsed_ns(op.start));
      // The witness clock is the write's own tag timestamp, not the
      // response clock: tags are unique (Lemma B.3) and the tag order
      // extends the clock order, so no other write can win at ts <= tag.ts
      // (see edge_cache.h).
      cache_.put(op.object, std::move(op.value), resp->tag, resp->tag.ts);
      if (auto c = op.client_conn.lock()) {
        net::WriteResp out;
        out.opid = op.client_opid;
        out.tag = std::move(resp->tag);
        out.vc = std::move(resp->vc);
        c->send(net::encode_frame(net::encode_write_resp(out)));
      }
      return;
    }
    case net::ClientMsgType::kReadResp: {
      std::optional<net::ReadResp> resp =
          net::decode_read_resp(std::move(payload));
      if (!resp.has_value()) break;
      const auto it = link->pending.find(resp->opid);
      if (it == link->pending.end()) return;  // late response: drop
      PendingOp op = std::move(it->second);
      link->pending.erase(it);
      if (op.is_write) return;  // backend type confusion: drop
      counters_.origin_read_ns->observe(elapsed_ns(op.start));
      // A read fall-through refreshes the witness at the origin's clock
      // (Values and clocks are cheap to copy: refcounted / small).
      cache_.put(op.object, resp->value, resp->tag, resp->vc);
      if (auto c = op.client_conn.lock()) {
        net::RoutedReadResp out;
        out.opid = op.client_opid;
        out.tag = std::move(resp->tag);
        out.vc = std::move(resp->vc);
        out.cached = false;
        out.value = std::move(resp->value);
        c->send(net::encode_frame(net::encode_routed_read_resp(out)));
      }
      return;
    }
    default:
      break;
  }
  CEC_LOG(kWarn) << "router: closing backend link to node " << link->node
                 << " after unexpected frame (type "
                 << static_cast<int>(*type) << ")";
  link->conn->close();
}

}  // namespace causalec::frontdoor
