#include "frontdoor/hash_ring.h"

#include <algorithm>

#include "common/expect.h"
#include "common/random.h"

namespace causalec::frontdoor {

std::uint64_t ring_hash(std::uint64_t x) {
  // splitmix64's output mix over a stateless input: high-quality avalanche
  // and identical on every host (ownership must be computable anywhere).
  std::uint64_t state = x;
  return splitmix64(state);
}

HashRing::HashRing(std::size_t num_groups, std::size_t vnodes,
                   std::uint64_t seed)
    : vnodes_(vnodes), seed_(seed) {
  CEC_CHECK(vnodes >= 1);
  points_.reserve(num_groups * vnodes);
  for (std::size_t group = 0; group < num_groups; ++group) add_group(group);
}

std::uint64_t HashRing::point_hash(std::size_t group,
                                   std::size_t replica) const {
  // Distinct odd multipliers keep (group, replica) collisions out of the
  // 64-bit input; the mix does the rest.
  return ring_hash(seed_ ^ (group * 0x9E3779B97F4A7C15ULL) ^
                   (replica * 0xC2B2AE3D27D4EB4FULL + 1));
}

std::size_t HashRing::find_point(std::uint64_t key) const {
  CEC_DCHECK(!points_.empty());
  const std::uint64_t h = ring_hash(key ^ seed_);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t hash) { return p.hash < hash; });
  if (it == points_.end()) return 0;  // wrap around
  return static_cast<std::size_t>(it - points_.begin());
}

std::size_t HashRing::owner(std::uint64_t key) const {
  if (points_.empty()) return static_cast<std::size_t>(-1);
  return points_[find_point(key)].group;
}

std::vector<std::size_t> HashRing::candidates(std::uint64_t key,
                                              std::size_t max_groups) const {
  std::vector<std::size_t> out;
  if (points_.empty() || max_groups == 0) return out;
  const std::size_t start = find_point(key);
  for (std::size_t step = 0; step < points_.size(); ++step) {
    const std::size_t group =
        points_[(start + step) % points_.size()].group;
    if (std::find(out.begin(), out.end(), group) == out.end()) {
      out.push_back(group);
      if (out.size() >= max_groups) break;
    }
  }
  return out;
}

void HashRing::add_group(std::size_t group) {
  for (std::size_t replica = 0; replica < vnodes_; ++replica) {
    points_.push_back(Point{point_hash(group, replica),
                            static_cast<std::uint32_t>(group)});
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Hash ties (astronomically unlikely) break by group so the
              // ring stays deterministic regardless of insertion order.
              return a.hash != b.hash ? a.hash < b.hash : a.group < b.group;
            });
}

void HashRing::remove_group(std::size_t group) {
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [group](const Point& p) {
                                 return p.group == group;
                               }),
                points_.end());
}

}  // namespace causalec::frontdoor
