// RouterClient: a blocking, one-request-at-a-time session against a
// causalec_router (the front-door analogue of net::NetClient; nothing here
// is thread-safe -- each bench/test session thread owns one).
//
// The client maintains the session's *causal frontier*: the component-wise
// merge of every response vector clock it has seen. Each routed request
// carries the frontier, which is what makes the session guarantees hold
// end to end -- the router's edge cache only serves witnesses at or beyond
// it, and a backend parks the request until its clock dominates it. The
// frontier is the *entire* session state: it can be extracted with
// frontier() and re-installed with set_frontier() on a fresh client (e.g.
// across a router restart, or to splice in clocks observed out of band),
// and the session's guarantees carry over.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "causalec/tag.h"
#include "common/types.h"
#include "erasure/value.h"
#include "net/client_proto.h"
#include "net/frame.h"
#include "net/socket.h"

namespace causalec::frontdoor {

class RouterClient {
 public:
  explicit RouterClient(ClientId client) : client_(client) {}

  /// Connects ("host:port") and sends the client Hello. False on failure.
  bool connect(const std::string& host_port, int timeout_ms = 5000);

  bool connected() const { return fd_.valid(); }
  ClientId client() const { return client_; }

  /// Per-request receive timeout; a request that times out (or hits any
  /// socket/framing error) returns nullopt and closes the connection.
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }

  // Each call issues one request and blocks for its response, then merges
  // the response clock into the session frontier. `opid` is a caller-chosen
  // correlation id echoed back by the router.
  std::optional<net::WriteResp> write(OpId opid, ObjectId object,
                                      erasure::Value value);
  std::optional<net::RoutedReadResp> read(OpId opid, ObjectId object);
  std::optional<net::Pong> ping(std::uint64_t token);
  std::optional<net::RouterStatsResp> router_stats();

  /// The session's causal frontier (empty until the first response).
  const VectorClock& frontier() const { return frontier_; }
  /// Replaces the frontier wholesale -- session hand-off across router
  /// restarts, or tests forcing a frontier ahead of the cache.
  void set_frontier(VectorClock frontier) { frontier_ = std::move(frontier); }
  /// Merges `vc` into the frontier (adopts it when the frontier is empty).
  void advance_frontier(const VectorClock& vc);

 private:
  bool send_payload(const std::vector<std::uint8_t>& payload);
  std::optional<erasure::Buffer> next_frame();
  void fail();

  ClientId client_;
  int io_timeout_ms_ = 10'000;
  VectorClock frontier_;
  net::ScopedFd fd_;
  net::FrameReader reader_;
};

}  // namespace causalec::frontdoor
