// Front-door router daemon (DESIGN.md §12): the process core of the
// causalec_router tool, also embeddable in-process for tests.
//
// Clients speak the routed client protocol (net/client_proto.h, types
// 73..77) to the router; the router maps each object onto a routing group
// via the consistent-hash ring, keeps one pooled connection per backend
// node per shard, and forwards to the first live node of the owning group
// (walking the ring's candidate order past dead owners). Routed reads
// first consult the causally-safe edge cache; a hit is answered on the
// shard thread without touching a backend.
//
// Thread model mirrors NodeDaemon: `shards` event-loop threads, each with
// a SO_REUSEPORT listener on the same port plus its own set of backend
// links and pending-op correlation maps (loop-thread-only, no locking).
// Cross-shard state is the edge cache (mutex) and the metrics registry
// (relaxed atomics).
//
// Failure semantics: a backend link death fails every in-flight *write* on
// it (the client connection is closed -- a routed write must never be
// retried, a duplicate apply would corrupt the recorded history) and
// re-routes in-flight *reads* to the next live candidate (reads are
// idempotent). Links redial with backoff; sessions survive a router
// restart because the causal frontier lives in the client's token, not in
// router state.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "erasure/arena_pool.h"
#include "frontdoor/edge_cache.h"
#include "frontdoor/hash_ring.h"
#include "net/client_proto.h"
#include "net/cluster_config.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "obs/frontdoor_counters.h"
#include "obs/metrics.h"

namespace causalec::frontdoor {

struct RouterConfig {
  net::ClusterConfig cluster;
  std::string listen_host = "127.0.0.1";
  /// 0 = ephemeral (shard 0 resolves it; see listen_port()).
  std::uint16_t listen_port = 0;
  std::size_t shards = 2;
  /// Ring points per routing group; the seed makes ownership deterministic
  /// across router instances over the same cluster config.
  std::size_t vnodes = 64;
  std::uint64_t ring_seed = 0x5EEDu;
  std::size_t cache_capacity = 4096;
  /// 0 disables expiry (staleness is then bounded only by capacity).
  std::chrono::milliseconds cache_ttl{2000};
  std::chrono::milliseconds reconnect_delay{100};
  /// How many times an in-flight read may chase link deaths before it is
  /// failed back to the client.
  int max_read_reroutes = 3;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds listeners, starts the shard loops, and begins dialing every
  /// backend. Aborts on bind failure.
  void start();
  void stop();

  /// The resolved listening port (after start()).
  std::uint16_t listen_port() const { return listen_port_; }
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  /// Established backend links across all shards (each backend counts once
  /// per shard). Tests use this to wait for a steady state.
  int backends_up() const {
    return links_up_.load(std::memory_order_acquire);
  }
  /// Waits until every shard has a live link to every backend.
  bool await_backends(std::chrono::milliseconds timeout) const;

  /// The same counter block the router_stats_req wire message reports.
  net::RouterStatsResp stats() const;

  EdgeCache& cache() { return cache_; }
  const HashRing& ring() const { return ring_; }
  const std::vector<std::vector<NodeId>>& routing_groups() const {
    return groups_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// A forwarded request awaiting its backend response (loop thread only;
  /// keyed by the router-assigned opid in the link's pending map).
  struct PendingOp {
    bool is_write = false;
    OpId client_opid = 0;  // the client's correlation id, echoed back
    ClientId client = 0;
    ObjectId object = 0;
    VectorClock frontier;
    erasure::Value value;  // writes only (becomes the cache witness)
    std::weak_ptr<net::Connection> client_conn;
    Clock::time_point start;  // per-tier latency attribution
    int reroutes_left = 0;
  };

  /// One pooled connection from one shard to one backend node. All state
  /// is owned by the shard's loop thread.
  struct BackendLink {
    NodeId node = 0;
    std::string host;
    std::uint16_t port = 0;
    net::ScopedFd connecting;  // fd mid non-blocking connect
    std::shared_ptr<net::Connection> conn;  // non-null = link is up
    std::unordered_map<OpId, PendingOp> pending;
  };

  struct Shard {
    std::unique_ptr<net::EventLoop> loop;
    net::ScopedFd listener;
    std::vector<std::unique_ptr<BackendLink>> links;  // indexed by NodeId
    OpId next_opid = 1;  // unique per link is enough; per shard is stronger
    /// Arena pool installed on this shard's loop thread (frame reassembly
    /// and response encoding allocate there).
    erasure::BufferPool pool;
  };

  /// Accepted client-connection state.
  struct ClientConn {
    bool helloed = false;
    Shard* shard = nullptr;
  };

  // Client side (shard loop threads).
  void accept_ready(Shard* shard);
  void handle_client_frame(const std::shared_ptr<ClientConn>& state,
                           const std::shared_ptr<net::Connection>& conn,
                           erasure::Buffer payload);
  void handle_routed_read(Shard* shard, net::RoutedReadReq req,
                          const std::shared_ptr<net::Connection>& conn);

  /// Sends `op` to the first live node of the owning group (candidate
  /// order past dead owners counts a reroute); closes the client
  /// connection when no live backend can take it.
  void forward(Shard* shard, PendingOp op);

  // Backend side (shard loop threads).
  void dial(Shard* shard, BackendLink* link);
  void on_connect_ready(Shard* shard, BackendLink* link,
                        std::uint32_t events);
  void retry_dial(Shard* shard, BackendLink* link);
  void on_link_lost(Shard* shard, BackendLink* link);
  void handle_backend_frame(Shard* shard, BackendLink* link,
                            erasure::Buffer payload);

  RouterConfig config_;
  std::vector<std::vector<NodeId>> groups_;
  HashRing ring_;
  EdgeCache cache_;
  obs::MetricsRegistry registry_;  // must precede counters_
  obs::FrontdoorCounters counters_;
  /// Requests forwarded per backend node (relaxed; any shard thread).
  std::unique_ptr<std::atomic<std::uint64_t>[]> backend_ops_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint16_t listen_port_ = 0;
  std::atomic<int> links_up_{0};
  std::atomic<bool> ready_{false};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace causalec::frontdoor
