// The Fig. 1 deployment data: six AWS regions and their inter-DC round-trip
// times in milliseconds (measured via cloudping, Oct 2021, as published).
#pragma once

#include <array>
#include <string>
#include <vector>

namespace causalec::placement {

inline constexpr std::size_t kNumDcs = 6;

enum Dc : std::size_t {
  kSeoul = 0,
  kMumbai = 1,
  kIreland = 2,
  kLondon = 3,
  kNCalifornia = 4,
  kOregon = 5,
};

const std::array<std::string, kNumDcs>& dc_names();

/// The Fig. 1 RTT matrix (milliseconds), symmetric with zero diagonal.
const std::vector<std::vector<double>>& six_dc_rtt_ms();

}  // namespace causalec::placement
