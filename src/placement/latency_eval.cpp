#include "placement/latency_eval.h"

#include <algorithm>
#include <limits>

#include "common/expect.h"

namespace causalec::placement {

namespace {

/// (latency, remote symbol count) of the latency-optimal recovery set for
/// (dc, object); ties broken toward fewer remote fetches.
std::pair<double, double> best_recovery(
    const erasure::Code& code, const std::vector<std::vector<double>>& rtt_ms,
    NodeId dc, ObjectId object) {
  double best_latency = std::numeric_limits<double>::infinity();
  double best_remote = std::numeric_limits<double>::infinity();
  for (const auto& set : code.recovery_sets(object)) {
    double latency = 0;
    double remote = 0;
    for (NodeId member : set) {
      if (member == dc) continue;
      latency = std::max(latency, rtt_ms[dc][member]);
      remote += 1;
    }
    if (latency < best_latency ||
        (latency == best_latency && remote < best_remote)) {
      best_latency = latency;
      best_remote = remote;
    }
  }
  CEC_CHECK(best_latency < std::numeric_limits<double>::infinity());
  return {best_latency, best_remote};
}

}  // namespace

double read_latency_ms(const erasure::Code& code,
                       const std::vector<std::vector<double>>& rtt_ms,
                       NodeId dc, ObjectId object) {
  return best_recovery(code, rtt_ms, dc, object).first;
}

double read_bytes_B(const erasure::Code& code,
                    const std::vector<std::vector<double>>& rtt_ms,
                    NodeId dc, ObjectId object) {
  return best_recovery(code, rtt_ms, dc, object).second;
}

SchemeEval evaluate_code(const erasure::Code& code,
                         const std::vector<std::vector<double>>& rtt_ms,
                         std::string name) {
  const std::size_t n = code.num_servers();
  const std::size_t k = code.num_objects();
  CEC_CHECK(rtt_ms.size() == n);
  SchemeEval eval;
  eval.name = std::move(name);
  double total_latency = 0;
  double total_bytes = 0;
  for (NodeId dc = 0; dc < n; ++dc) {
    for (ObjectId x = 0; x < k; ++x) {
      const auto [latency, bytes] = best_recovery(code, rtt_ms, dc, x);
      eval.worst_read_latency_ms = std::max(eval.worst_read_latency_ms,
                                            latency);
      total_latency += latency;
      total_bytes += bytes;
    }
  }
  eval.avg_read_latency_ms = total_latency / static_cast<double>(n * k);
  eval.read_comm_B = total_bytes / static_cast<double>(n * k);
  return eval;
}

PartialReplicationSearch brute_force_partial_replication(
    const std::vector<std::vector<double>>& rtt_ms, std::size_t num_groups) {
  const std::size_t n = rtt_ms.size();
  CEC_CHECK(num_groups >= 1 && num_groups <= n);
  CEC_CHECK_MSG(n <= 12, "brute force limited to small DC counts");

  PartialReplicationSearch best;
  best.worst_read_latency_ms = std::numeric_limits<double>::infinity();
  best.avg_read_latency_ms = std::numeric_limits<double>::infinity();

  std::vector<ObjectId> assignment(n, 0);
  // Enumerate num_groups^n assignments (each DC hosts exactly one group).
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < n; ++i) total *= num_groups;
  for (std::uint64_t idx = 0; idx < total; ++idx) {
    std::uint64_t rest = idx;
    std::vector<bool> covered(num_groups, false);
    for (std::size_t d = 0; d < n; ++d) {
      assignment[d] = static_cast<ObjectId>(rest % num_groups);
      covered[assignment[d]] = true;
      rest /= num_groups;
    }
    bool all = true;
    for (bool c : covered) all = all && c;
    if (!all) continue;

    double worst = 0;
    double sum = 0;
    for (NodeId dc = 0; dc < n; ++dc) {
      for (ObjectId g = 0; g < num_groups; ++g) {
        double lat = std::numeric_limits<double>::infinity();
        for (NodeId host = 0; host < n; ++host) {
          if (assignment[host] == g) {
            lat = std::min(lat, dc == host ? 0.0 : rtt_ms[dc][host]);
          }
        }
        worst = std::max(worst, lat);
        sum += lat;
      }
    }
    const double avg = sum / static_cast<double>(n * num_groups);
    if (worst < best.worst_read_latency_ms ||
        (worst == best.worst_read_latency_ms &&
         avg < best.avg_read_latency_ms)) {
      best.worst_read_latency_ms = worst;
      best.avg_read_latency_ms = avg;
      best.placement = assignment;
    }
  }
  CEC_CHECK(!best.placement.empty());
  return best;
}

IntraObjectEval evaluate_intra_object_rs(
    const std::vector<std::vector<double>>& rtt_ms, std::size_t k) {
  const std::size_t n = rtt_ms.size();
  CEC_CHECK(k >= 1 && k <= n);
  IntraObjectEval eval;
  double sum = 0;
  for (NodeId dc = 0; dc < n; ++dc) {
    std::vector<double> others;
    for (NodeId o = 0; o < n; ++o) {
      if (o != dc) others.push_back(rtt_ms[dc][o]);
    }
    std::sort(others.begin(), others.end());
    // One fragment is local; the (k-1) nearest remote DCs ship the rest in
    // parallel -> latency = (k-1)-th smallest remote RTT.
    const double latency = k == 1 ? 0.0 : others[k - 2];
    eval.worst_read_latency_ms = std::max(eval.worst_read_latency_ms,
                                          latency);
    sum += latency;
  }
  eval.avg_read_latency_ms = sum / static_cast<double>(n);
  return eval;
}

}  // namespace causalec::placement
