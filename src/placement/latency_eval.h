// Analytic latency / communication-cost evaluation of storage schemes over
// an RTT matrix, as in Sec. 1.1 and Fig. 2: partial replication (brute-force
// optimal placement), intra-object Reed-Solomon, and arbitrary (cross-object)
// erasure codes evaluated through their recovery sets.
//
// Model (the paper's): reads to each object arrive uniformly across DCs;
// read latency from DC d is 0 if d can serve locally, else the smallest,
// over recovery sets T, of the largest RTT from d to a member of T
// (parallel fetch, one round trip). Communication is measured in units of
// B (one object value).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "erasure/code.h"

namespace causalec::placement {

struct SchemeEval {
  std::string name;
  double worst_read_latency_ms = 0;
  double avg_read_latency_ms = 0;
  /// Average bytes fetched per read, in units of B.
  double read_comm_B = 0;
  /// Average bytes sent per write, in units of B (value traffic only).
  double write_comm_B = 0;
};

/// Read latency for one (dc, object) under an arbitrary code: 0 when some
/// recovery set is {dc}; otherwise min over recovery sets T of
/// max_{i in T, i != dc} rtt[dc][i].
double read_latency_ms(const erasure::Code& code,
                       const std::vector<std::vector<double>>& rtt_ms,
                       NodeId dc, ObjectId object);

/// Bytes (units of B) fetched by the latency-optimal read above: |T'| where
/// T' = T \ {dc} for the chosen recovery set (each remote member ships one
/// codeword symbol of size B).
double read_bytes_B(const erasure::Code& code,
                    const std::vector<std::vector<double>>& rtt_ms,
                    NodeId dc, ObjectId object);

/// Aggregate worst/average over uniform (dc, object) pairs.
SchemeEval evaluate_code(const erasure::Code& code,
                         const std::vector<std::vector<double>>& rtt_ms,
                         std::string name);

struct PartialReplicationSearch {
  /// group_of_dc[d] = which object group DC d hosts.
  std::vector<ObjectId> placement;
  double worst_read_latency_ms = 0;
  double avg_read_latency_ms = 0;
};

/// Brute-force search over all assignments of `num_groups` object groups to
/// DCs (each DC hosts exactly one group -- the Sec. 1.1 capacity model),
/// minimizing worst-case read latency, tie-broken by average latency.
PartialReplicationSearch brute_force_partial_replication(
    const std::vector<std::vector<double>>& rtt_ms, std::size_t num_groups);

struct IntraObjectEval {
  double worst_read_latency_ms = 0;
  double avg_read_latency_ms = 0;
};

/// Intra-object MDS coding with dimension k over all N DCs: every read
/// needs k fragments, one local and k-1 from the nearest other DCs, so the
/// latency from DC d is the (k-1)-th smallest RTT out of d.
IntraObjectEval evaluate_intra_object_rs(
    const std::vector<std::vector<double>>& rtt_ms, std::size_t k);

}  // namespace causalec::placement
