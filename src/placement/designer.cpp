#include "placement/designer.h"

#include <bit>
#include <limits>

#include "common/expect.h"
#include "common/random.h"
#include "erasure/linear_code.h"
#include "gf/gf256.h"
#include "linalg/gaussian.h"

namespace causalec::placement {

namespace {

using GF = gf::GF256;
using MatrixGF = linalg::Matrix<GF>;

MatrixGF stacked_from_masks(const std::vector<std::uint32_t>& masks,
                            std::size_t num_groups) {
  MatrixGF stacked(masks.size(), num_groups);
  for (std::size_t s = 0; s < masks.size(); ++s) {
    for (std::size_t g = 0; g < num_groups; ++g) {
      if (masks[s] >> g & 1) {
        // Distinct nonzero coefficient per server keeps stacked rows with
        // equal masks independent (Vandermonde-style).
        stacked(s, g) = GF::exp(static_cast<std::uint32_t>(s));
      }
    }
  }
  return stacked;
}

/// Build and evaluate a candidate; returns nullopt when some object is not
/// recoverable.
std::optional<std::pair<erasure::CodePtr, SchemeEval>> try_candidate(
    const std::vector<std::uint32_t>& masks, std::size_t num_groups,
    const std::vector<std::vector<double>>& rtt_ms,
    std::size_t value_bytes) {
  const MatrixGF stacked = stacked_from_masks(masks, num_groups);
  if (linalg::rank<GF>(stacked) != num_groups) return std::nullopt;
  auto code = erasure::LinearCodeT<GF>::one_row_per_server(
      stacked, value_bytes, "designed-cross-object");
  SchemeEval eval = evaluate_code(*code, rtt_ms, "designed");
  return std::make_pair(std::move(code), std::move(eval));
}

}  // namespace

DesignResult design_cross_object_code(
    const std::vector<std::vector<double>>& rtt_ms, std::size_t num_groups,
    const DesignOptions& options) {
  const std::size_t n = rtt_ms.size();
  CEC_CHECK(n >= 2 && num_groups >= 1 && num_groups <= 20);
  CEC_CHECK_MSG(n <= 16, "recovery-set enumeration caps the server count");
  const std::uint32_t mask_limit = 1u << num_groups;
  Rng rng(options.seed);

  DesignResult best;
  best.objective = std::numeric_limits<double>::infinity();
  int evaluations = 0;

  const auto objective = [&](const SchemeEval& eval) {
    return eval.avg_read_latency_ms +
           options.worst_weight * eval.worst_read_latency_ms;
  };

  for (int restart = 0; restart < options.restarts; ++restart) {
    // Random valid start: cover every group at least once, then randomize.
    std::vector<std::uint32_t> masks(n);
    for (std::size_t s = 0; s < n; ++s) {
      masks[s] = static_cast<std::uint32_t>(
          1 + rng.next_below(mask_limit - 1));
    }
    for (std::size_t g = 0; g < num_groups; ++g) {
      masks[g % n] |= 1u << g;  // coverage
    }
    auto current = try_candidate(masks, num_groups, rtt_ms,
                                 options.value_bytes);
    ++evaluations;
    if (!current) continue;
    double current_obj = objective(current->second);

    // Steepest-descent over single-server mask changes; when that stalls,
    // sample coordinated pair moves (a mixed symbol only pays off once a
    // matching helper symbol exists, which single moves cannot reach).
    for (int step = 0; step < options.max_steps_per_restart; ++step) {
      double best_delta_obj = current_obj;
      std::size_t best_server = n;
      std::uint32_t best_mask = 0;
      std::optional<std::pair<erasure::CodePtr, SchemeEval>> best_cand;
      for (std::size_t s = 0; s < n; ++s) {
        const std::uint32_t original = masks[s];
        for (std::uint32_t mask = 1; mask < mask_limit; ++mask) {
          if (mask == original) continue;
          masks[s] = mask;
          auto cand = try_candidate(masks, num_groups, rtt_ms,
                                    options.value_bytes);
          ++evaluations;
          if (cand) {
            const double obj = objective(cand->second);
            if (obj < best_delta_obj) {
              best_delta_obj = obj;
              best_server = s;
              best_mask = mask;
              best_cand = std::move(cand);
            }
          }
        }
        masks[s] = original;
      }
      if (best_server != n) {
        masks[best_server] = best_mask;
        current = std::move(best_cand);
        current_obj = best_delta_obj;
        continue;
      }

      // Single moves stalled: try random pair moves.
      bool escaped = false;
      for (std::size_t s1 = 0; s1 < n && !escaped; ++s1) {
        for (std::size_t s2 = s1 + 1; s2 < n && !escaped; ++s2) {
          const std::uint32_t orig1 = masks[s1];
          const std::uint32_t orig2 = masks[s2];
          for (int sample = 0; sample < options.pair_move_samples;
               ++sample) {
            masks[s1] = static_cast<std::uint32_t>(
                1 + rng.next_below(mask_limit - 1));
            masks[s2] = static_cast<std::uint32_t>(
                1 + rng.next_below(mask_limit - 1));
            auto cand = try_candidate(masks, num_groups, rtt_ms,
                                      options.value_bytes);
            ++evaluations;
            if (cand && objective(cand->second) < current_obj) {
              current = std::move(cand);
              current_obj = objective(current->second);
              escaped = true;
              break;
            }
          }
          if (!escaped) {
            masks[s1] = orig1;
            masks[s2] = orig2;
          }
        }
      }
      if (!escaped) break;  // genuine local optimum
    }

    if (current_obj < best.objective) {
      best.objective = current_obj;
      best.code = current->first;
      best.eval = current->second;
      best.masks = masks;
    }
  }

  CEC_CHECK_MSG(best.code != nullptr,
                "designer found no recoverable code (increase restarts)");
  best.evaluations = evaluations;
  return best;
}

}  // namespace causalec::placement
