// Cross-object code design for a given network topology.
//
// The paper demonstrates that a hand-tuned cross-object code beats both
// partial replication and intra-object coding on the Fig. 1 topology, and
// names the general design problem -- "the design of cross-object erasure
// codes that minimize average/worst-case latency for general topologies" --
// as an open problem (Sec. 1.1, Sec. 6). This module implements a practical
// heuristic for it:
//
//   * search space: each server stores one linear combination of a subset
//     of the K object groups (subset mask in [1, 2^K)), with per-server
//     distinct nonzero coefficients so stacked subsets stay informative;
//   * constraint: every object recoverable from some server subset
//     (full column rank of the stacked generator matrix, then exact
//     recovery-set enumeration);
//   * objective: weighted average + worst-case read latency, evaluated
//     through the recovery sets exactly as evaluate_code does;
//   * search: steepest-descent hill climbing over single-server subset
//     changes with random restarts (deterministic given the seed).
#pragma once

#include <cstdint>
#include <vector>

#include "erasure/code.h"
#include "placement/latency_eval.h"

namespace causalec::placement {

struct DesignOptions {
  std::uint64_t seed = 1;
  int restarts = 8;
  int max_steps_per_restart = 64;
  /// Objective = avg + worst_weight * worst (milliseconds).
  double worst_weight = 0.25;
  std::size_t value_bytes = 1024;
  /// When single-server moves stall, sample this many random *pair* moves
  /// per server pair before giving up on the restart. Cross-object gains
  /// often need coordinated changes (a mixed symbol is useless until a
  /// matching helper appears), which single moves cannot reach.
  int pair_move_samples = 20;
};

struct DesignResult {
  erasure::CodePtr code;
  /// Per-server subset of groups encoded (bitmask over object ids).
  std::vector<std::uint32_t> masks;
  SchemeEval eval;
  double objective = 0;
  int evaluations = 0;
};

/// Searches for a one-symbol-per-server cross-object code over `num_groups`
/// object groups on the topology given by `rtt_ms`.
DesignResult design_cross_object_code(
    const std::vector<std::vector<double>>& rtt_ms, std::size_t num_groups,
    const DesignOptions& options = {});

}  // namespace causalec::placement
