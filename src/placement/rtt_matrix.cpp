#include "placement/rtt_matrix.h"

namespace causalec::placement {

const std::array<std::string, kNumDcs>& dc_names() {
  static const std::array<std::string, kNumDcs> names = {
      "Seoul", "Mumbai", "Ireland", "London", "N.California", "Oregon"};
  return names;
}

const std::vector<std::vector<double>>& six_dc_rtt_ms() {
  // Fig. 1, row order: Seoul, Mumbai, Ireland, London, N.California, Oregon.
  // The published table is slightly asymmetric in two cells (Seoul row lists
  // 138/126 vs the Seoul column's 146/126 for the US coasts); we use the
  // row values symmetrically, which reproduces the paper's numbers.
  static const std::vector<std::vector<double>> rtt = {
      {0, 120, 230, 240, 138, 126},
      {120, 0, 121, 113, 228, 220},
      {230, 121, 0, 13, 138, 126},
      {240, 113, 13, 0, 146, 137},
      {138, 228, 138, 146, 0, 22},
      {126, 220, 126, 137, 22, 0},
  };
  return rtt;
}

}  // namespace causalec::placement
