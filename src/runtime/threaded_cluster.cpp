#include "runtime/threaded_cluster.h"

#include <atomic>
#include <deque>
#include <future>

#include "causalec/codec.h"
#include "common/expect.h"
#include "erasure/buffer.h"
#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace causalec::runtime {

namespace {

using Clock = std::chrono::steady_clock;

SimTime to_ns(Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

/// One server node: an OS thread draining a FIFO mailbox of tasks and a
/// separate inbound-message inbox, firing wall-clock timers, and running
/// periodic garbage collection.
///
/// The inbox is a two-lock swap-and-drain MPSC queue: producers append raw
/// frames under `inbox_mu_` (no closure allocation, no contention with the
/// consumer's wait mutex), the node thread swaps the whole batch out under
/// one lock acquisition, dispatches every message, and runs the
/// Apply/Encoding fixpoint once per batch instead of once per message.
class ThreadedCluster::Node {
 public:
  Node(NodeId id, erasure::CodePtr code, const ThreadedClusterConfig& config,
       ThreadedCluster* cluster)
      : id_(id),
        config_(&config),
        cluster_(cluster),
        transport_(this),
        server_(id, std::move(code), config.server, &transport_) {
    if (obs::MetricsRegistry* metrics = config.obs.metrics) {
      m_queue_wait_ = &metrics->histogram("phase.queue_wait_ns");
      m_deserialize_ = &metrics->histogram("phase.deserialize_ns");
      m_mailbox_depth_ =
          &metrics->gauge("runtime.mailbox_depth.s" + std::to_string(id));
    }
  }

  void start() { thread_ = std::thread([this] { run(); }); }

  void stop() {
    accepting_.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  void attach_journal(persist::Journal* journal) {
    journal_ = journal;
    server_.attach_journal(journal);
  }

  bool accepting() const {
    return accepting_.load(std::memory_order_acquire);
  }

  /// Recover the node from its journal and restart its thread. Only legal
  /// while the thread is stopped: the snapshot + WAL replay runs on the
  /// caller's thread (safe -- the automaton has no other thread), the
  /// pre-crash mailbox/tasks/timers are discarded, and the rejoin round is
  /// posted as the restarted thread's first task.
  void recover_and_restart() {
    CEC_CHECK(!thread_.joinable());
    CEC_CHECK(journal_ != nullptr);
    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      inbox_.clear();
      inbox_ready_.store(false, std::memory_order_release);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.clear();
      stop_ = false;
    }
    timers_.clear();
    muted_ = true;
    // Post-mortem: dump the last protocol events the node recorded before
    // its crash, before journal replay starts reusing the ring.
    obs::log_flight_tail(static_cast<int>(id_), server_.flight_recorder());
    server_.restore_from_journal(journal_->load());
    // Checkpoint the replayed state so a second crash before the next
    // snapshot timer does not replay the whole WAL again.
    journal_->save_snapshot(server_.capture_image());
    muted_ = false;
    accepting_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { run(); });
    post([this] { server_.begin_rejoin(); });
  }

  /// Enqueue a task for the node thread (any thread may call).
  void post(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      tasks_.push_back(std::move(task));
    }
    cv_.notify_all();
  }

  /// Run `fn` on the node thread and wait for its result.
  template <typename Fn>
  auto call(Fn&& fn) -> decltype(fn()) {
    using Result = decltype(fn());
    std::promise<Result> promise;
    auto future = promise.get_future();
    post([&promise, fn = std::forward<Fn>(fn)]() mutable {
      promise.set_value(fn());
    });
    return future.get();
  }

  Server& server() { return server_; }

  /// Called by peers' transports: deliver a serialized frame from `from`.
  /// A broadcast passes the same Buffer to every destination, sharing the
  /// arena; deserialization happens on the node thread and its payloads
  /// alias the frame.
  void deliver_frame(NodeId from, erasure::Buffer frame) {
    enqueue(Inbound{from, std::move(frame), nullptr, Clock::now()});
  }

  void deliver_direct(NodeId from, sim::MessagePtr message) {
    enqueue(Inbound{from, {}, std::move(message), Clock::now()});
  }

 private:
  /// One inbound network message, either still-serialized (`frame`) or an
  /// in-memory object (`message`, when serialize_messages = false).
  struct Inbound {
    NodeId from;
    erasure::Buffer frame;
    sim::MessagePtr message;
    Clock::time_point enqueued_at;  // mailbox queue-wait measurement
  };

  class NodeTransport final : public Transport {
   public:
    explicit NodeTransport(Node* node) : node_(node) {}

    void send(NodeId to, sim::MessagePtr message) override {
      // Muted during WAL replay: the replayed handlers re-run their sends,
      // which already reached the network before the crash.
      if (node_->muted_) return;
      node_->cluster_->route(node_->id_, to, std::move(message));
    }

    void multicast(std::span<const NodeId> targets,
                   const std::function<sim::MessagePtr()>& make) override {
      if (node_->muted_) return;
      node_->cluster_->multicast_route(node_->id_, targets, make);
    }

    void schedule_after(SimTime delta_ns,
                        std::function<void()> fn) override {
      // Only ever called from the node's own thread (all server execution
      // is marshalled there) or from recover_and_restart() while the
      // thread is down, so the timer list needs no locking.
      node_->timers_.push_back(
          {Clock::now() + std::chrono::nanoseconds(delta_ns),
           std::move(fn)});
    }

    SimTime now() const override { return to_ns(Clock::now()); }

   private:
    Node* node_;
  };

  /// Producer side of the inbox. The data lock (`inbox_mu_`) is disjoint
  /// from the consumer's wait lock (`mu_`); the empty lock_guard on `mu_`
  /// fences against the lost-wakeup race (the consumer either sees
  /// `inbox_ready_` in its predicate or is already waiting when we
  /// notify).
  void enqueue(Inbound in) {
    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      inbox_.push_back(std::move(in));
      inbox_ready_.store(true, std::memory_order_release);
    }
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_all();
  }

  void trace_deliver(NodeId from, const sim::Message& message) {
    if (obs::Tracer* tracer = config_->obs.tracer) {
      const SimTime now_ns = to_ns(Clock::now());
      tracer->instant("msg.deliver", id_, now_ns,
                      {{"from", std::uint64_t{from}},
                       {"type", message.type_name()},
                       {"bytes", std::uint64_t{message.wire_bytes()}}});
      if (message.trace.traced()) {
        tracer->flow_finish(std::string("flow.") + message.type_name(), id_,
                            now_ns, message.trace.span_id,
                            {{"trace", message.trace.trace_id}});
      }
    }
  }

  void run() {
    set_log_thread_node(static_cast<int>(id_));
    // Node-local arena recycling: payload buffers allocated while handling
    // this node's messages come from (and return to) this pool, so the
    // steady-state data path stops malloc'ing. A restarted node gets a
    // fresh pool; the old one folds its counters on close.
    erasure::BufferPool buffer_pool;
    erasure::BufferPool::ScopedInstall pool_installed(buffer_pool);
    auto next_gc = Clock::now() + config_->gc_period;
    auto next_snapshot = Clock::now() + config_->snapshot_period;
    while (true) {
      std::deque<std::function<void()>> batch;
      std::vector<Inbound> inbound;
      {
        std::unique_lock<std::mutex> lock(mu_);
        auto deadline = next_gc;
        if (journal_ != nullptr) deadline = std::min(deadline, next_snapshot);
        for (const auto& timer : timers_) {
          deadline = std::min(deadline, timer.at);
        }
        cv_.wait_until(lock, deadline, [this] {
          return stop_ || !tasks_.empty() ||
                 inbox_ready_.load(std::memory_order_acquire);
        });
        if (stop_) return;
        batch.swap(tasks_);
      }
      {
        std::lock_guard<std::mutex> lock(inbox_mu_);
        inbound.swap(inbox_);
        inbox_ready_.store(false, std::memory_order_release);
      }
      for (auto& task : batch) task();
      if (!inbound.empty()) {
        if (m_mailbox_depth_ != nullptr) {
          // Depth the drain found waiting: queue buildup shows here before
          // it becomes tail latency.
          m_mailbox_depth_->set(static_cast<std::int64_t>(inbound.size()));
        }
        for (Inbound& in : inbound) {
          if (m_queue_wait_ != nullptr) {
            m_queue_wait_->observe(static_cast<std::uint64_t>(
                to_ns(Clock::now()) - to_ns(in.enqueued_at)));
          }
          sim::MessagePtr message;
          if (in.message != nullptr) {
            message = std::move(in.message);
          } else if (m_deserialize_ != nullptr) {
            const SimTime t0 = to_ns(Clock::now());
            message = deserialize_message(std::move(in.frame));
            m_deserialize_->observe(
                static_cast<std::uint64_t>(to_ns(Clock::now()) - t0));
          } else {
            message = deserialize_message(std::move(in.frame));
          }
          trace_deliver(in.from, *message);
          server_.dispatch_message(in.from, std::move(message));
        }
        // One Apply/Encoding fixpoint for the whole batch.
        server_.run_internal_actions();
      }
      // Due timers (fan-out timeouts etc.).
      const auto now = Clock::now();
      for (std::size_t i = 0; i < timers_.size();) {
        if (timers_[i].at <= now) {
          auto fn = std::move(timers_[i].fn);
          timers_.erase(timers_.begin() + static_cast<std::ptrdiff_t>(i));
          fn();
        } else {
          ++i;
        }
      }
      if (now >= next_gc) {
        server_.run_garbage_collection();
        next_gc = now + config_->gc_period;
      }
      if (journal_ != nullptr && now >= next_snapshot) {
        journal_->save_snapshot(server_.capture_image());
        next_snapshot = now + config_->snapshot_period;
      }
    }
  }

  struct Timer {
    Clock::time_point at;
    std::function<void()> fn;
  };

  NodeId id_;
  const ThreadedClusterConfig* config_;
  ThreadedCluster* cluster_;
  NodeTransport transport_;
  Server server_;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<Timer> timers_;  // node-thread only

  // Phase-decomposition handles (null when metrics are off).
  obs::Histogram* m_queue_wait_ = nullptr;
  obs::Histogram* m_deserialize_ = nullptr;
  obs::Gauge* m_mailbox_depth_ = nullptr;

  persist::Journal* journal_ = nullptr;
  /// False between stop() and recover_and_restart(): peers' frames for
  /// this node are dropped at the router, like a dead NIC.
  std::atomic<bool> accepting_{true};
  /// Caller-thread only, and only while the node thread is down.
  bool muted_ = false;

  // Inbound-message inbox (see class comment).
  std::mutex inbox_mu_;
  std::vector<Inbound> inbox_;
  std::atomic<bool> inbox_ready_{false};

  friend class ThreadedCluster;
};

ThreadedCluster::ThreadedCluster(erasure::CodePtr code,
                                 ThreadedClusterConfig config)
    : code_(std::move(code)), config_(std::move(config)) {
  if (config_.obs.tracer != nullptr) {
    config_.server.obs.tracer = config_.obs.tracer;
  }
  if (config_.obs.metrics != nullptr) {
    config_.server.obs.metrics = config_.obs.metrics;
    m_serialize_ = &config_.obs.metrics->histogram("phase.serialize_ns");
  }
  const std::size_t n = code_->num_servers();
  nodes_.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    nodes_.push_back(std::make_unique<Node>(s, code_, config_, this));
  }
  if (config_.persistence != nullptr) {
    journals_.reserve(n);
    for (NodeId s = 0; s < n; ++s) {
      std::string key = "s";
      key += std::to_string(s);
      journals_.push_back(std::make_unique<persist::Journal>(
          config_.persistence, std::move(key)));
      nodes_[s]->attach_journal(journals_[s].get());
    }
  }
  for (auto& node : nodes_) node->start();
}

ThreadedCluster::~ThreadedCluster() {
  for (auto& node : nodes_) node->stop();
}

std::size_t ThreadedCluster::num_servers() const { return nodes_.size(); }

void ThreadedCluster::note_send(NodeId from, NodeId to,
                                const sim::Message& message) {
  const std::size_t bytes = message.wire_bytes();
  if (obs::MetricsRegistry* metrics = config_.obs.metrics) {
    const char* type = message.type_name();
    metrics->counter("net.messages").inc();
    metrics->counter("net.bytes").inc(bytes);
    metrics->counter(std::string("net.messages.") + type).inc();
    metrics->counter(std::string("net.bytes.") + type).inc(bytes);
  }
  if (obs::Tracer* tracer = config_.obs.tracer) {
    const SimTime now_ns = to_ns(Clock::now());
    tracer->instant("msg.send", from, now_ns,
                    {{"to", std::uint64_t{to}},
                     {"type", message.type_name()},
                     {"bytes", std::uint64_t{bytes}}});
    if (message.trace.traced()) {
      // A multicast shares one span id: one start, one finish per receiver.
      tracer->flow_start(std::string("flow.") + message.type_name(), from,
                         now_ns, message.trace.span_id,
                         {{"trace", message.trace.trace_id}});
    }
  }
}

void ThreadedCluster::route(NodeId from, NodeId to, sim::MessagePtr message) {
  CEC_CHECK(to < nodes_.size());
  note_send(from, to, *message);
  if (!nodes_[to]->accepting()) return;  // crashed node: frame is lost
  if (config_.serialize_messages) {
    const SimTime t0 = m_serialize_ != nullptr ? to_ns(Clock::now()) : 0;
    auto frame = serialize_message_frame(*message);
    if (m_serialize_ != nullptr) {
      m_serialize_->observe(
          static_cast<std::uint64_t>(to_ns(Clock::now()) - t0));
    }
    nodes_[to]->deliver_frame(from, std::move(frame));
  } else {
    nodes_[to]->deliver_direct(from, std::move(message));
  }
}

void ThreadedCluster::multicast_route(
    NodeId from, std::span<const NodeId> targets,
    const std::function<sim::MessagePtr()>& make) {
  if (targets.empty()) return;
  if (!config_.serialize_messages) {
    for (NodeId to : targets) route(from, to, make());
    return;
  }
  // Serialize once; every destination mailbox shares the frame's arena.
  const sim::MessagePtr message = make();
  const SimTime t0 = m_serialize_ != nullptr ? to_ns(Clock::now()) : 0;
  const erasure::Buffer frame = serialize_message_frame(*message);
  if (m_serialize_ != nullptr) {
    m_serialize_->observe(
        static_cast<std::uint64_t>(to_ns(Clock::now()) - t0));
  }
  for (NodeId to : targets) {
    CEC_CHECK(to < nodes_.size());
    note_send(from, to, *message);
    if (!nodes_[to]->accepting()) continue;  // crashed node: frame is lost
    nodes_[to]->deliver_frame(from, frame);
  }
}

void ThreadedCluster::stop_node(NodeId id) {
  CEC_CHECK(id < nodes_.size());
  CEC_CHECK_MSG(nodes_[id]->accepting(),
                "stop_node: node " << id << " is already stopped");
  nodes_[id]->stop();
}

void ThreadedCluster::start_node(NodeId id) {
  CEC_CHECK(id < nodes_.size());
  CEC_CHECK_MSG(config_.persistence != nullptr,
                "start_node requires ThreadedClusterConfig::persistence");
  CEC_CHECK_MSG(!nodes_[id]->accepting(),
                "start_node: node " << id << " is running");
  nodes_[id]->recover_and_restart();
}

bool ThreadedCluster::node_running(NodeId id) const {
  CEC_CHECK(id < nodes_.size());
  return nodes_[id]->accepting();
}

Tag ThreadedCluster::write(NodeId at, ClientId client, ObjectId object,
                           erasure::Value value) {
  CEC_CHECK(at < nodes_.size());
  CEC_CHECK_MSG(nodes_[at]->accepting(),
                "write: node " << at << " is stopped");
  const OpId opid = next_opid_.fetch_add(1);
  return nodes_[at]->call([&, opid] {
    return nodes_[at]->server().client_write(client, opid, object,
                                             std::move(value));
  });
}

std::pair<erasure::Value, Tag> ThreadedCluster::read(NodeId at,
                                                     ClientId client,
                                                     ObjectId object) {
  std::promise<std::pair<erasure::Value, Tag>> promise;
  auto future = promise.get_future();
  read_async(at, client, object,
             [&promise](erasure::Value value, Tag tag) {
               promise.set_value({std::move(value), std::move(tag)});
             });
  return future.get();
}

void ThreadedCluster::read_async(
    NodeId at, ClientId client, ObjectId object,
    std::function<void(erasure::Value, Tag)> done) {
  CEC_CHECK(at < nodes_.size());
  CEC_CHECK_MSG(nodes_[at]->accepting(),
                "read: node " << at << " is stopped");
  const OpId opid = next_opid_.fetch_add(1);
  Node* node = nodes_[at].get();
  node->post([node, client, opid, object, done = std::move(done)] {
    node->server().client_read(
        client, opid, object,
        [done](const erasure::Value& value, const Tag& tag,
               const VectorClock&) { done(value, tag); });
  });
}

StorageStats ThreadedCluster::storage(NodeId at) {
  CEC_CHECK(at < nodes_.size());
  CEC_CHECK_MSG(nodes_[at]->accepting(),
                "storage: node " << at << " is stopped");
  return nodes_[at]->call([&] { return nodes_[at]->server().storage(); });
}

std::uint64_t ThreadedCluster::total_error_events() {
  std::uint64_t total = 0;
  for (auto& node : nodes_) {
    if (!node->accepting()) continue;
    total += node->call([&node_ref = *node] {
      const auto& c = node_ref.server().counters();
      return c.error1_events + c.error2_events;
    });
  }
  return total;
}

bool ThreadedCluster::await_convergence(std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  int stable_polls = 0;
  while (Clock::now() < deadline) {
    bool converged = true;
    for (NodeId s = 0; s < nodes_.size(); ++s) {
      if (!nodes_[s]->accepting()) continue;
      const StorageStats stats = storage(s);
      if (stats.history_entries != 0 || stats.inqueue_entries != 0 ||
          stats.readl_entries != 0) {
        converged = false;
        break;
      }
    }
    if (converged) {
      if (++stable_polls >= 2) return true;
    } else {
      stable_polls = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

}  // namespace causalec::runtime
