// ThreadedCluster: CausalEC on real threads.
//
// The same Server automaton that runs on the discrete-event simulator,
// deployed with one OS thread per server node: mutex-guarded FIFO
// mailboxes as channels, wall-clock garbage-collection timers, and
// (optionally) every message passed through the binary codec so real bytes
// cross the node boundary.
//
// The client API is thread-safe and marshals every operation onto the
// owning node's thread (the automaton itself is single-threaded by
// design). Blocking calls must not be issued from a node thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "causalec/config.h"
#include "causalec/server.h"
#include "erasure/code.h"
#include "persist/backend.h"
#include "persist/journal.h"

namespace causalec::runtime {

struct ThreadedClusterConfig {
  ServerConfig server;
  std::chrono::milliseconds gc_period{20};
  /// Pass every inter-node message through serialize/deserialize, so the
  /// bytes that cross the boundary are the codec's output.
  bool serialize_messages = true;

  /// Observability sinks shared by every node thread: servers record spans
  /// and server.* metrics (timestamps are steady-clock wall time), and the
  /// router records msg.send / msg.deliver events plus net.* counters.
  /// The registry and tracer are thread-safe, so one instance serves all
  /// nodes. Also copied into `server.obs`.
  obs::ObsHooks obs;

  /// When set (not owned; must outlive the cluster), every node journals
  /// accepted writes and delivered messages into this backend and
  /// checkpoints a full snapshot every snapshot_period of wall time, which
  /// is what makes stop_node()/start_node() crash-recovery possible. Null
  /// keeps nodes crash-stop.
  persist::Backend* persistence = nullptr;
  std::chrono::milliseconds snapshot_period{200};
};

class ThreadedCluster {
 public:
  explicit ThreadedCluster(erasure::CodePtr code,
                           ThreadedClusterConfig config = {});
  ~ThreadedCluster();

  ThreadedCluster(const ThreadedCluster&) = delete;
  ThreadedCluster& operator=(const ThreadedCluster&) = delete;

  std::size_t num_servers() const;

  /// Blocking write at server `at`; returns once the server acknowledged
  /// (Property (I): the server-side work is local and immediate).
  Tag write(NodeId at, ClientId client, ObjectId object,
            erasure::Value value);

  /// Blocking read at server `at`.
  std::pair<erasure::Value, Tag> read(NodeId at, ClientId client,
                                      ObjectId object);

  /// Asynchronous read; `done` fires on the node's thread.
  void read_async(NodeId at, ClientId client, ObjectId object,
                  std::function<void(erasure::Value, Tag)> done);

  /// Snapshot of a server's storage (marshalled onto its thread).
  StorageStats storage(NodeId at);

  /// Error1/Error2 counters summed over all servers (must stay 0).
  std::uint64_t total_error_events();

  /// Polls until every server's transient state (histories, queues,
  /// pending reads) is empty; false on timeout. Stopped nodes are skipped.
  bool await_convergence(std::chrono::milliseconds timeout);

  /// Crash a node: its thread stops and all traffic addressed to it is
  /// dropped until start_node(). Mailbox contents and pending timers die
  /// with the crash, as they would on a real machine.
  void stop_node(NodeId id);

  /// Restart a stopped node from its durable state (requires
  /// ThreadedClusterConfig::persistence): reload snapshot + WAL with the
  /// transport muted, checkpoint the replayed state, restart the thread,
  /// then run the anti-entropy rejoin round on it (DESIGN.md §9).
  void start_node(NodeId id);

  /// True while the node's thread is accepting traffic.
  bool node_running(NodeId id) const;

 private:
  class Node;

  /// Channel between nodes: optionally passes through the codec.
  void route(NodeId from, NodeId to, sim::MessagePtr message);

  /// Broadcast channel: when serializing, encodes the frame once and shares
  /// the bytes across every destination mailbox.
  void multicast_route(NodeId from, std::span<const NodeId> targets,
                       const std::function<sim::MessagePtr()>& make);

  /// Per-hop observability (net.* counters, msg.send trace event).
  void note_send(NodeId from, NodeId to, const sim::Message& message);

  erasure::CodePtr code_;
  ThreadedClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<persist::Journal>> journals_;
  std::atomic<OpId> next_opid_{1};
  /// Broadcast-serialize phase histogram (null when metrics are off).
  obs::Histogram* m_serialize_ = nullptr;
};

}  // namespace causalec::runtime
