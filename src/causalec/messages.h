// Server-to-server messages of the CausalEC protocol (Algorithms 1-3) with
// wire-size accounting.
//
// Client <-> server traffic is not modeled as network messages: clients are
// co-located with their server (the paper partitions clients among servers
// precisely so that client operations involve no wide-area hop).
#pragma once

#include <cstdint>
#include <utility>

#include "causalec/config.h"
#include "causalec/tag.h"
#include "erasure/value.h"
#include "sim/simulation.h"

namespace causalec {

/// Byte-size model shared by all messages of one cluster.
struct WireModel {
  std::size_t header_bytes = 16;
  std::size_t tag_bytes = 0;     // one tag
  std::size_t tagvec_bytes = 0;  // a full K-entry tag vector

  static WireModel make(const ServerConfig& config, std::size_t num_servers,
                        std::size_t num_objects) {
    WireModel wm;
    wm.header_bytes = config.header_bytes;
    wm.tag_bytes = config.metadata == MetadataMode::kLamport
                       ? 16  // Lamport scalar + client id
                       : 8 * num_servers + 8;
    wm.tagvec_bytes = wm.tag_bytes * num_objects;
    return wm;
  }
};

/// <app, X, v, t>: write propagation (Alg. 1 line 6).
struct AppMessage final : sim::Message {
  ObjectId object;
  erasure::Value value;
  Tag tag;
  std::size_t wire;

  AppMessage(ObjectId object_in, erasure::Value value_in, Tag tag_in,
             const WireModel& wm)
      : object(object_in),
        value(std::move(value_in)),
        tag(std::move(tag_in)),
        wire(wm.header_bytes + value.size() + wm.tag_bytes) {}

  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "app"; }
};

/// <del, X, t>: garbage-collection progress (Alg. 3 lines 20/32/48).
///
/// `origin` is the server announcing the deletion; it differs from the
/// network-level sender only in the Appendix G leader-forwarding variant,
/// where a server sends one del to the leader (forward = true) and the
/// leader fans it out on its behalf.
struct DelMessage final : sim::Message {
  ObjectId object;
  Tag tag;
  NodeId origin;
  bool forward;
  std::size_t wire;

  DelMessage(ObjectId object_in, Tag tag_in, NodeId origin_in,
             bool forward_in, const WireModel& wm)
      : object(object_in),
        tag(std::move(tag_in)),
        origin(origin_in),
        forward(forward_in),
        wire(wm.header_bytes + wm.tag_bytes) {}

  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "del"; }
};

/// <val_inq, clientid, opid, X, wantedtagvec>: read inquiry (Alg. 1 line 18,
/// Alg. 3 line 25).
struct ValInqMessage final : sim::Message {
  ClientId client;
  OpId opid;
  ObjectId object;
  TagVector wanted;
  std::size_t wire;

  ValInqMessage(ClientId client_in, OpId opid_in, ObjectId object_in,
                TagVector wanted_in, const WireModel& wm)
      : client(client_in),
        opid(opid_in),
        object(object_in),
        wanted(std::move(wanted_in)),
        wire(wm.header_bytes + wm.tagvec_bytes) {}

  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "val_inq"; }
};

/// <val_resp, ...>: uncoded response to an inquiry (Alg. 2 line 5).
struct ValRespMessage final : sim::Message {
  ClientId client;
  OpId opid;
  ObjectId object;
  erasure::Value value;
  TagVector requested;
  std::size_t wire;

  ValRespMessage(ClientId client_in, OpId opid_in, ObjectId object_in,
                 erasure::Value value_in, TagVector requested_in,
                 const WireModel& wm)
      : client(client_in),
        opid(opid_in),
        object(object_in),
        value(std::move(value_in)),
        requested(std::move(requested_in)),
        wire(wm.header_bytes + value.size() + wm.tagvec_bytes) {}

  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "val_resp"; }
};

// ---------------------------------------------------------------------------
// Rejoin catch-up messages (crash-recovery extension, DESIGN.md §9).
//
// A server that restarts from its durable state broadcasts a digest of its
// vector clock; each live peer replies with its own clock, the recovering
// server pulls what it missed, and the peer pushes the history/del/inqueue
// entries the digest does not cover. `epoch` stamps one recovery round so
// late replies from an earlier round are ignored.
// ---------------------------------------------------------------------------

/// <recover_digest, epoch, vc>: recovering server -> everyone.
struct RecoverDigestMessage final : sim::Message {
  std::uint64_t epoch;
  VectorClock vc;
  std::size_t wire;

  RecoverDigestMessage(std::uint64_t epoch_in, VectorClock vc_in,
                       const WireModel& wm)
      : epoch(epoch_in),
        vc(std::move(vc_in)),
        wire(wm.header_bytes + wm.tag_bytes) {}

  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "recover_digest"; }
};

/// <recover_digest_reply, epoch, vc>: peer -> recovering server.
struct RecoverDigestReplyMessage final : sim::Message {
  std::uint64_t epoch;
  VectorClock vc;
  std::size_t wire;

  RecoverDigestReplyMessage(std::uint64_t epoch_in, VectorClock vc_in,
                            const WireModel& wm)
      : epoch(epoch_in),
        vc(std::move(vc_in)),
        wire(wm.header_bytes + wm.tag_bytes) {}

  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "recover_digest_reply"; }
};

/// <recover_pull, epoch, vc>: recovering server asks a peer for everything
/// its (post-replay) vector clock does not cover.
struct RecoverPullMessage final : sim::Message {
  std::uint64_t epoch;
  VectorClock vc;
  std::size_t wire;

  RecoverPullMessage(std::uint64_t epoch_in, VectorClock vc_in,
                     const WireModel& wm)
      : epoch(epoch_in),
        vc(std::move(vc_in)),
        wire(wm.header_bytes + wm.tag_bytes) {}

  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "recover_pull"; }
};

/// <recover_push, epoch, vc, history, inqueue, dels>: catch-up payload. The
/// receiver inserts the history versions, merges the del announcements and
/// the sender's clock, and re-queues (or absorbs) the in-flight writes.
/// Sent peer -> recovering server in answer to a pull, and recovering
/// server -> peer when the digest reply shows the *peer* missed writes
/// (e.g. an app multicast lost to the crash).
struct RecoverPushMessage final : sim::Message {
  struct HistoryItem {
    ObjectId object;
    Tag tag;
    erasure::Value value;
  };
  struct InqueueItem {
    NodeId origin;
    ObjectId object;
    Tag tag;
    erasure::Value value;
  };
  struct DelItem {
    ObjectId object;
    NodeId server;
    Tag tag;
  };

  std::uint64_t epoch;
  VectorClock vc;  // the sender's clock at push time
  std::vector<HistoryItem> history;
  std::vector<InqueueItem> inqueue;
  std::vector<DelItem> dels;
  std::size_t wire;

  RecoverPushMessage(std::uint64_t epoch_in, VectorClock vc_in,
                     std::vector<HistoryItem> history_in,
                     std::vector<InqueueItem> inqueue_in,
                     std::vector<DelItem> dels_in, const WireModel& wm)
      : epoch(epoch_in),
        vc(std::move(vc_in)),
        history(std::move(history_in)),
        inqueue(std::move(inqueue_in)),
        dels(std::move(dels_in)),
        wire(wm.header_bytes + wm.tag_bytes) {
    for (const auto& h : history) wire += h.value.size() + wm.tag_bytes;
    for (const auto& q : inqueue) wire += q.value.size() + wm.tag_bytes;
    wire += dels.size() * wm.tag_bytes;
  }

  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "recover_push"; }
};

/// <val_resp_encoded, M, ...>: re-encoded codeword symbol response
/// (Alg. 2 end of the val_inq handler).
struct ValRespEncodedMessage final : sim::Message {
  ClientId client;
  OpId opid;
  ObjectId object;
  erasure::Symbol symbol;   // ResponsetoValInq.val
  TagVector symbol_tags;    // ResponsetoValInq.tagvec
  TagVector requested;      // wantedtagvec echoed back
  std::size_t wire;

  ValRespEncodedMessage(ClientId client_in, OpId opid_in, ObjectId object_in,
                        erasure::Symbol symbol_in, TagVector symbol_tags_in,
                        TagVector requested_in, const WireModel& wm)
      : client(client_in),
        opid(opid_in),
        object(object_in),
        symbol(std::move(symbol_in)),
        symbol_tags(std::move(symbol_tags_in)),
        requested(std::move(requested_in)),
        wire(wm.header_bytes + symbol.size() + 2 * wm.tagvec_bytes) {}

  std::size_t wire_bytes() const override { return wire; }
  const char* type_name() const override { return "val_resp_encoded"; }
};

}  // namespace causalec
