// The deletion list DelL[X] (Sec. 3): which servers have announced (via del
// messages) that their stored codeword symbol reflects at least a given tag
// for the object.
//
// Organized per announcing server as an ordered set of tags, which makes the
// paper's three derived quantities cheap:
//   S    = { t : every server has an entry >= t }      -> floor_all()
//   Sbar = { t : every server has the exact entry t }  -> has_exact_from_all()
//   U    = { t : every server in R has an entry >= t } -> floor_of(R)
// each of which reduces to per-server maxima / membership.
//
// Optional compaction keeps, per server, the maximal tag plus every tag >=
// the current tmax; this preserves all three quantities for every argument
// the algorithm can still query (arguments below tmax are never consulted).
#pragma once

#include <optional>
#include <set>
#include <span>
#include <vector>

#include "causalec/tag.h"

namespace causalec {

class DelList {
 public:
  explicit DelList(std::size_t num_servers)
      : per_server_(num_servers) {}

  void add(NodeId server, const Tag& tag) {
    CEC_DCHECK(server < per_server_.size());
    per_server_[server].insert(tag);
  }

  /// max(S): the largest tag t such that every server has an entry >= t
  /// (equivalently min over servers of their maximal entry); nullopt when
  /// some server has announced nothing yet.
  std::optional<Tag> floor_all() const {
    std::optional<Tag> floor;
    for (const auto& tags : per_server_) {
      if (tags.empty()) return std::nullopt;
      const Tag& max_tag = *tags.rbegin();
      if (!floor || max_tag < *floor) floor = max_tag;
    }
    return floor;
  }

  /// max(U) over the subset R: nullopt when some member of R has announced
  /// nothing.
  std::optional<Tag> floor_of(std::span<const NodeId> servers) const {
    std::optional<Tag> floor;
    for (NodeId s : servers) {
      CEC_DCHECK(s < per_server_.size());
      const auto& tags = per_server_[s];
      if (tags.empty()) return std::nullopt;
      const Tag& max_tag = *tags.rbegin();
      if (!floor || max_tag < *floor) floor = max_tag;
    }
    return floor;
  }

  /// tag in Sbar: every server has the exact entry.
  bool has_exact_from_all(const Tag& tag) const {
    for (const auto& tags : per_server_) {
      if (tags.count(tag) == 0) return false;
    }
    return true;
  }

  /// Drop entries that can no longer influence floor_all / floor_of /
  /// has_exact_from_all for any tag >= tmax: everything strictly below tmax
  /// except each server's maximum.
  void compact(const Tag& tmax) {
    for (auto& tags : per_server_) {
      if (tags.empty()) continue;
      const Tag keep_max = *tags.rbegin();
      for (auto it = tags.begin(); it != tags.end();) {
        if (*it < tmax && !(*it == keep_max)) {
          it = tags.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  std::size_t total_entries() const {
    std::size_t n = 0;
    for (const auto& tags : per_server_) n += tags.size();
    return n;
  }

  const std::set<Tag>& entries_from(NodeId server) const {
    CEC_DCHECK(server < per_server_.size());
    return per_server_[server];
  }

 private:
  std::vector<std::set<Tag>> per_server_;
};

}  // namespace causalec
