// Binary serialization of the CausalEC protocol messages.
//
// The simulator moves message objects directly and uses wire_bytes() as the
// *cost model*; the threaded runtime (src/runtime) passes real bytes and
// uses this codec. Format: little-endian, length-prefixed:
//
//   message  := type:u8 wire:u64 body
//   app      := object:u32 value tag
//   del      := object:u32 origin:u32 forward:u8 tag
//   val_inq  := client:u64 opid:u64 object:u32 tagvec
//   val_resp := client:u64 opid:u64 object:u32 value tagvec
//   val_resp_encoded := client:u64 opid:u64 object:u32 symbol tagvec tagvec
//   value/symbol := len:u32 bytes
//   tag      := vc id:u64         vc := n:u32 entries:u64[n]
//   tagvec   := k:u32 tag[k]
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "causalec/messages.h"
#include "erasure/buffer.h"

namespace causalec {

/// Serializes any of the five protocol messages. Aborts on foreign types.
std::vector<std::uint8_t> serialize_message(const sim::Message& message);

/// Same bytes as serialize_message, returned as an erasure::Buffer frame
/// with no copy out of the Writer. On a thread with a BufferPool installed
/// (node/shard threads) the frame's arena is pool-recycled, so the
/// steady-state send path performs no malloc.
erasure::Buffer serialize_message_frame(const sim::Message& message);

/// Parses a frame produced by serialize_message; aborts on malformed
/// input (the runtime owns both ends of the channel).
///
/// Zero-copy: the value/symbol payloads of the returned message alias the
/// frame's arena (erasure::Buffer slices), so deserializing performs no
/// payload copy and the frame stays alive as long as any payload does.
sim::MessagePtr deserialize_message(erasure::Buffer frame);

/// Copying convenience overload: wraps `buffer` in a fresh arena first.
sim::MessagePtr deserialize_message(std::span<const std::uint8_t> buffer);

/// Non-aborting decode for *untrusted* frames (bytes that arrived over a
/// real socket, where the peer may be buggy or hostile). Every length field
/// is bounds-checked against the bytes actually present before it drives
/// an allocation or a read, so a malformed frame -- truncated, oversized,
/// bad type byte, absurd element counts -- yields nullptr (with `error`
/// set when non-null) instead of corrupting or aborting the process.
/// Well-formed frames decode byte-identically to deserialize_message,
/// including the optional trace-context trailer and zero-copy payloads.
sim::MessagePtr try_deserialize_message(erasure::Buffer frame,
                                        std::string* error = nullptr);

}  // namespace causalec
