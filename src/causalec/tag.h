// Vector clocks and tags (Sec. 3, "State variables").
//
// A tag is (timestamp, client id) where the timestamp is a vector-clock
// value. The paper requires a total order on tags that extends vector-clock
// causality; we use (component sum, lexicographic components, client id),
// which is a genuine total order, coincides with the vector-clock order on
// comparable timestamps, and is evaluated identically by every server (all
// the correctness argument needs for last-writer-wins arbitration).
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>
#include <vector>

#include "common/expect.h"
#include "common/types.h"

namespace causalec {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) : c_(n, 0), sum_(0) {}

  std::size_t size() const { return c_.size(); }

  std::uint64_t operator[](std::size_t i) const {
    CEC_DCHECK(i < c_.size());
    return c_[i];
  }

  void set(std::size_t i, std::uint64_t v) {
    CEC_DCHECK(i < c_.size());
    sum_ += v - c_[i];
    c_[i] = v;
  }

  void increment(std::size_t i) { set(i, c_[i] + 1); }

  std::uint64_t sum() const { return sum_; }

  bool is_zero() const { return sum_ == 0; }

  /// Component-wise <= (the partial order).
  bool leq(const VectorClock& other) const {
    CEC_DCHECK(size() == other.size());
    if (sum_ > other.sum_) return false;  // fast reject
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > other.c_[i]) return false;
    }
    return true;
  }

  bool operator==(const VectorClock& other) const { return c_ == other.c_; }

  /// Strictly less in the partial order.
  bool lt(const VectorClock& other) const {
    return leq(other) && !(*this == other);
  }

  /// Neither leq nor geq.
  bool concurrent_with(const VectorClock& other) const {
    return !leq(other) && !other.leq(*this);
  }

  /// Component-wise max, in place.
  void merge(const VectorClock& other) {
    CEC_DCHECK(size() == other.size());
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (other.c_[i] > c_[i]) set(i, other.c_[i]);
    }
  }

  /// Total order extending the partial order: (sum, lexicographic).
  std::strong_ordering total_order(const VectorClock& other) const {
    CEC_DCHECK(size() == other.size());
    if (sum_ != other.sum_) return sum_ <=> other.sum_;
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] != other.c_[i]) return c_[i] <=> other.c_[i];
    }
    return std::strong_ordering::equal;
  }

  friend std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
    os << "[";
    for (std::size_t i = 0; i < vc.c_.size(); ++i) {
      if (i) os << ",";
      os << vc.c_[i];
    }
    return os << "]";
  }

 private:
  std::vector<std::uint64_t> c_;
  std::uint64_t sum_ = 0;
};

struct Tag {
  VectorClock ts;
  ClientId id = 0;

  Tag() = default;
  Tag(VectorClock ts_in, ClientId id_in) : ts(std::move(ts_in)), id(id_in) {}

  /// The zero tag (initial object version).
  static Tag zero(std::size_t n) { return Tag(VectorClock(n), 0); }

  bool is_zero() const { return ts.is_zero(); }

  bool operator==(const Tag& other) const {
    return id == other.id && ts == other.ts;
  }

  /// The deterministic total order on tags.
  bool operator<(const Tag& other) const {
    const auto cmp = ts.total_order(other.ts);
    if (cmp != std::strong_ordering::equal) return cmp < 0;
    return id < other.id;
  }
  bool operator<=(const Tag& other) const {
    return *this == other || *this < other;
  }
  bool operator>(const Tag& other) const { return other < *this; }
  bool operator>=(const Tag& other) const { return other <= *this; }

  friend std::ostream& operator<<(std::ostream& os, const Tag& t) {
    return os << "(" << t.ts << ",c" << t.id << ")";
  }
};

/// A tag per object (the paper's T^X), indexed by ObjectId.
using TagVector = std::vector<Tag>;

inline TagVector zero_tag_vector(std::size_t num_objects,
                                 std::size_t num_servers) {
  return TagVector(num_objects, Tag::zero(num_servers));
}

}  // namespace causalec
