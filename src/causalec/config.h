// Tunables for the CausalEC server.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "obs/obs.h"

namespace causalec {

/// Metadata accounting mode (Sec. 4.2): the algorithm always runs on vector
/// clocks internally; the "low-cost variant" charges Lamport-sized scalars
/// for inquiry / response / del message metadata. This knob affects only
/// wire-size accounting, never behavior.
enum class MetadataMode { kVectorClock, kLamport };

/// Read inquiry fan-out (footnote 14): broadcast val_inq to everyone, or
/// contact the closest recovery set first and fall back to a broadcast on
/// timeout.
enum class ReadFanout { kBroadcast, kNearestRecoverySet };

/// del-message dissemination (Sec. 4.2 variant (ii) / Appendix G): each
/// server fans its own dels out directly, or sends one del to a designated
/// leader that forwards to everyone (halving sender-side fan-out at the
/// price of an extra hop; assumes a non-halting leader).
enum class DelRouting { kDirect, kViaLeader };

/// Rejoin catch-up sizing (DESIGN.md §9/§5.4): pull missed state from every
/// live peer (the original behavior), or only from the repair-plan helper
/// set that suffices to rebuild this server's symbol, falling back to a
/// full pull when no plan exists. Any single up-to-date peer's push already
/// converges the rejoin (the §9 superset argument); straggler clocks
/// reported in digest replies trigger targeted extra pulls.
enum class RejoinCatchup { kPullAll, kRepairPlan };

struct ServerConfig {
  MetadataMode metadata = MetadataMode::kVectorClock;
  ReadFanout fanout = ReadFanout::kBroadcast;

  /// With kNearestRecoverySet: proximity[i] ranks server i (lower = closer
  /// to this server); empty means "use server-id order". Fallback broadcast
  /// fires after fanout_timeout_ns.
  std::vector<double> proximity;
  std::int64_t fanout_timeout_ns = 500'000'000;  // 500 ms

  /// del dissemination topology (Appendix G variant (ii)).
  DelRouting del_routing = DelRouting::kDirect;
  NodeId del_leader = 0;

  /// Try to decode a freshly registered read from the local symbol before
  /// any response arrives. The paper only decodes on response receipt; the
  /// local attempt lets internal reads at servers whose own symbol decodes
  /// the object (e.g. uncoded/systematic servers) complete with zero
  /// network traffic, cutting measured write cost roughly in half (see
  /// bench_geo_sim). Reads whose inquiry target set is empty are decoded
  /// locally regardless (liveness).
  bool opportunistic_local_decode = true;

  /// Suppress duplicate del(X, t) broadcasts from Garbage_Collection
  /// (Alg. 3 line 48) when the same tag was already sent. Behaviorally
  /// equivalent over reliable channels; matches the Sec. 4.2 cost analysis.
  bool dedupe_del_broadcasts = true;

  /// Keep DelL compacted: per (object, server) retain the maximal tag plus
  /// any tags >= tmax[X]. Preserves the S / Sbar / U computations exactly.
  bool compact_del_lists = true;

  /// Abort if a val_resp_encoded ever sets Error1/Error2 (the paper proves
  /// they stay 0; a violation means an implementation bug).
  bool strict_error_invariants = true;

  /// TEST-ONLY fault seam for the chaos harness's self-test: when true,
  /// Apply_InQueue ignores the cross-origin half of its causality predicate
  /// (Alg. 3 line 4's second conjunct), so an app message can be applied
  /// before the writes it causally depends on. This deliberately breaks
  /// causal consistency under message reordering; the chaos harness must
  /// detect it and shrink a reproducer. Never enable outside tests.
  bool unsafe_skip_apply_order_check = false;

  /// Crash-recovery rejoin (DESIGN.md §9): a recovering server finishes its
  /// catch-up round when every peer has pushed, or after this timeout when
  /// some peers are themselves down (they push on their own rejoin later).
  std::int64_t rejoin_timeout_ns = 1'000'000'000;  // 1 s

  /// Which peers a rejoin round pulls from (see RejoinCatchup above).
  RejoinCatchup rejoin_catchup = RejoinCatchup::kRepairPlan;

  /// Degraded reads: when some peers are known down (set_peer_down) and the
  /// read fan-out is kNearestRecoverySet, ask the code for an object-repair
  /// plan that avoids the down servers instead of the proximity pick -- the
  /// read then completes without waiting out fanout_timeout_ns for a dead
  /// member. Off restores the pre-repair behavior.
  bool repair_degraded_reads = true;

  /// TEST-ONLY fault seam for the chaos harness's self-test: when true,
  /// begin_rejoin() skips the digest/pull/push catch-up entirely, so a
  /// recovered server rejoins with stale state (missed writes are never
  /// fetched, its clock gaps never close). The convergence and liveness
  /// checkers must detect this. Never enable outside tests.
  bool unsafe_skip_rejoin_catchup = false;

  /// Fixed per-message envelope bytes (type, src, dst, object id, opid...).
  std::size_t header_bytes = 16;

  /// Observability sinks (see obs/obs.h). Null members disable the
  /// corresponding instrumentation at the cost of one branch per site.
  obs::ObsHooks obs;

  /// Always-on flight recorder (obs/flight_recorder.h): a fixed ring of
  /// recent protocol events kept even when tracing/metrics are off, dumped
  /// into chaos replay bundles and by causalec_inspect. Cheap enough to
  /// leave on (bench_micro --obs gates the overhead at <= 5%); the off
  /// switch exists for that bench's baseline and for tests.
  bool flight_recorder = true;
  std::size_t flight_recorder_capacity = 1024;
};

}  // namespace causalec
