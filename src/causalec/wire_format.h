// Low-level wire primitives shared by the message codec (codec.cpp) and the
// durable snapshot format (persist/snapshot.cpp).
//
// Writer is the little-endian, length-prefixed encoder the codec has always
// used. SafeReader is its decoding counterpart for *untrusted* input
// (durable files that may be truncated or corrupted): instead of
// CHECK-aborting like the codec's internal reader, it latches an error and
// degrades every subsequent accessor to a zero value, so callers validate
// once at the end and never touch out-of-bounds memory.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "causalec/tag.h"
#include "erasure/buffer.h"
#include "erasure/value.h"
#include "obs/trace_context.h"

namespace causalec::wire {

/// Serialized trace-context trailer size: two u64s (trace id, span id).
/// The trailer is appended to a frame only when the message is traced, so
/// untraced frames are byte-identical to the pre-trailer format.
inline constexpr std::size_t kTraceContextBytes = 16;

class Writer {
 public:
  /// Pre-sizes the buffer; callers pass header size + payload bytes so the
  /// common messages serialize with a single allocation. The backing store
  /// is an erasure::Buffer arena, so on a thread with a BufferPool
  /// installed (node/shard threads) serialization recycles arenas instead
  /// of malloc'ing, and take_frame() hands the result off with zero copies.
  explicit Writer(std::size_t reserve_hint = 0)
      : buf_(erasure::Buffer::alloc_uninit(
            reserve_hint < kMinCapacity ? kMinCapacity : reserve_hint)) {}

  void u8(std::uint8_t v) {
    ensure(1);
    data()[len_++] = v;
  }
  void u32(std::uint32_t v) {
    ensure(4);
    std::uint8_t* out = data() + len_;
    for (int i = 0; i < 4; ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    len_ += 4;
  }
  void u64(std::uint64_t v) {
    ensure(8);
    std::uint8_t* out = data() + len_;
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    len_ += 8;
  }
  void bytes(std::span<const std::uint8_t> payload) {
    u32(static_cast<std::uint32_t>(payload.size()));
    ensure(payload.size());
    if (!payload.empty()) {
      std::memcpy(data() + len_, payload.data(), payload.size());
      len_ += payload.size();
    }
  }
  void clock(const VectorClock& vc) {
    u32(static_cast<std::uint32_t>(vc.size()));
    for (std::size_t i = 0; i < vc.size(); ++i) u64(vc[i]);
  }
  void tag(const Tag& t) {
    clock(t.ts);
    u64(t.id);
  }
  void tagvec(const TagVector& tv) {
    u32(static_cast<std::uint32_t>(tv.size()));
    for (const Tag& t : tv) tag(t);
  }
  void trace_context(const obs::TraceContext& ctx) {
    u64(ctx.trace_id);
    u64(ctx.span_id);
  }
  std::size_t size() const { return len_; }
  /// The encoded bytes as a plain vector (one copy out of the arena); for
  /// callers that need owned contiguous storage, e.g. the journal.
  std::vector<std::uint8_t> take() {
    const std::uint8_t* p = buf_.data();
    return std::vector<std::uint8_t>(p, p + len_);
  }
  /// The encoded bytes as a Buffer sharing the (pooled) arena -- zero-copy.
  /// The Writer must not be written to afterwards.
  erasure::Buffer take_frame() { return buf_.slice(0, len_); }

 private:
  static constexpr std::size_t kMinCapacity = 64;

  std::uint8_t* data() { return buf_.mutable_data(); }

  void ensure(std::size_t extra) {
    if (len_ + extra <= buf_.size()) return;
    std::size_t cap = buf_.size() * 2;
    while (cap < len_ + extra) cap *= 2;
    erasure::Buffer bigger = erasure::Buffer::alloc_uninit(cap);
    std::memcpy(bigger.mutable_data(), buf_.data(), len_);
    buf_ = std::move(bigger);
  }

  erasure::Buffer buf_;
  std::size_t len_ = 0;
};

/// Error-latching reader over a zero-copy frame. Collection accessors take
/// an element cap so a corrupted length field can never drive a huge
/// allocation before the bounds check catches it.
class SafeReader {
 public:
  explicit SafeReader(erasure::Buffer frame)
      : frame_(std::move(frame)), buf_(frame_.span()) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return buf_[pos_++];
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
    }
    return v;
  }
  /// Zero-copy: a Value aliasing the frame's arena at the current cursor.
  erasure::Value bytes(std::size_t max_len) {
    const std::uint32_t len = u32();
    if (len > max_len) fail("length field exceeds cap");
    if (!need(len)) return erasure::Value();
    erasure::Value out(frame_.slice(pos_, len));
    pos_ += len;
    return out;
  }
  VectorClock clock(std::size_t max_entries) {
    const std::uint32_t n = u32();
    if (n > max_entries) {
      fail("vector clock size exceeds cap");
      return VectorClock();
    }
    if (!need(8 * static_cast<std::size_t>(n))) return VectorClock();
    VectorClock vc(n);
    for (std::uint32_t i = 0; i < n; ++i) vc.set(i, u64());
    return vc;
  }
  Tag tag(std::size_t max_entries) {
    VectorClock vc = clock(max_entries);
    const std::uint64_t id = u64();
    return Tag(std::move(vc), id);
  }
  TagVector tagvec(std::size_t max_tags, std::size_t max_entries) {
    const std::uint32_t k = u32();
    if (k > max_tags) {
      fail("tag vector size exceeds cap");
      return TagVector();
    }
    TagVector out;
    out.reserve(k);
    for (std::uint32_t i = 0; i < k && ok(); ++i) out.push_back(tag(max_entries));
    return out;
  }

  /// Decodes the optional trailer: consumes it when exactly
  /// kTraceContextBytes remain, otherwise returns the default "not traced"
  /// context (old frames, untraced sends).
  obs::TraceContext trace_context() {
    obs::TraceContext ctx;
    if (remaining() == kTraceContextBytes) {
      ctx.trace_id = u64();
      ctx.span_id = u64();
    }
    return ctx;
  }

  bool ok() const { return error_.empty(); }
  bool done() const { return ok() && pos_ == buf_.size(); }
  std::size_t remaining() const { return ok() ? buf_.size() - pos_ : 0; }
  const std::string& error() const { return error_; }

  void fail(const char* what) {
    if (error_.empty()) error_ = what;
  }

 private:
  bool need(std::size_t n) {
    if (!ok()) return false;
    if (pos_ + n > buf_.size()) {
      fail("truncated input");
      return false;
    }
    return true;
  }

  erasure::Buffer frame_;
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace causalec::wire
