// The CausalEC server automaton (Algorithms 1, 2, 3).
//
// Transport-agnostic: the server emits messages through a Transport and is
// driven by on_message / internal-action entry points. The discrete-event
// cluster (cluster.h) hosts it on the simulator; any other runtime could.
//
// Clients are co-located with their server (the paper's C_s partition):
// client operations enter through direct calls and never touch the modeled
// network. Writes return synchronously (Property (I): writes are local);
// reads either return inline (local history / local decode) or complete
// later through the registered callback.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "causalec/config.h"
#include "causalec/del_list.h"
#include "causalec/history_list.h"
#include "causalec/inqueue.h"
#include "causalec/messages.h"
#include "causalec/read_list.h"
#include "causalec/tag.h"
#include "common/types.h"
#include "erasure/code.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "persist/image.h"
#include "persist/journal.h"
#include "sim/simulation.h"

namespace causalec {

/// Outbound interface the server needs from its runtime.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(NodeId to, sim::MessagePtr message) = 0;

  /// Broadcast hook: deliver one logical message to every target. `make`
  /// builds a fresh MessagePtr per call (payload buffers are shared, so
  /// each call is cheap). The default is a per-target send; runtimes that
  /// serialize can override to encode the frame once and share the bytes
  /// across destinations (ThreadedCluster does).
  virtual void multicast(std::span<const NodeId> targets,
                         const std::function<sim::MessagePtr()>& make) {
    for (NodeId to : targets) send(to, make());
  }

  virtual void schedule_after(SimTime delta, std::function<void()> fn) = 0;
  virtual SimTime now() const = 0;
};

/// Point-in-time storage footprint of one server (Theorem 4.5 / Sec. 4.2
/// transient-cost accounting). Payload bytes only; metadata counted as
/// entry counts.
struct StorageStats {
  std::size_t codeword_bytes = 0;       // |M.val| -- the stable-state cost
  std::size_t history_bytes = 0;        // sum over X of |L[X]| payloads
  std::size_t history_entries = 0;
  std::size_t inqueue_bytes = 0;
  std::size_t inqueue_entries = 0;
  std::size_t readl_entries = 0;
  std::size_t dell_entries = 0;
};

/// Operation counters for benches and tests.
struct ServerCounters {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t reads_served_from_history = 0;
  std::uint64_t reads_served_local_decode = 0;
  std::uint64_t reads_registered_remote = 0;
  std::uint64_t internal_reads_started = 0;
  std::uint64_t reencodes = 0;
  std::uint64_t val_inq_handled = 0;
  std::uint64_t val_resp_sent = 0;
  std::uint64_t val_resp_encoded_sent = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t history_entries_collected = 0;
  std::uint64_t error1_events = 0;  // stays 0 in every correct execution
  std::uint64_t error2_events = 0;  // stays 0 in every correct execution
  // Crash-recovery accounting (DESIGN.md §9).
  std::uint64_t recoveries = 0;            // begin_rejoin() calls
  std::uint64_t rejoin_pushes_sent = 0;
  std::uint64_t rejoin_pushes_received = 0;
  std::uint64_t catchup_bytes = 0;         // wire bytes of received pushes
  std::uint64_t catchup_history_entries = 0;
  std::uint64_t stale_app_dropped = 0;     // duplicate/covered app messages
  // Repair-plan consumers (DESIGN.md §5.4).
  std::uint64_t degraded_reads = 0;     // fan-outs routed by an object plan
  std::uint64_t repair_plan_hits = 0;   // successful plan lookups (any kind)
  std::uint64_t repair_bytes = 0;       // bytes the chosen plans move
  std::uint64_t rejoin_helper_pulls = 0;  // pulls sent to plan helpers only
};

class Server final : public sim::Actor {
 public:
  Server(NodeId id, erasure::CodePtr code, ServerConfig config,
         Transport* transport);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  NodeId id() const { return id_; }
  const erasure::Code& code() const { return *code_; }

  // -- Client-facing operations (Alg. 1) ----------------------------------

  /// Local write (Alg. 1, on receive <write>); returns the write's tag
  /// (the acknowledgement is synchronous -- Property (I)).
  Tag client_write(ClientId client, OpId opid, ObjectId object,
                   erasure::Value value);

  /// Read (Alg. 1, on receive <read>). The callback fires exactly once --
  /// possibly inline when the read is served locally.
  void client_read(ClientId client, OpId opid, ObjectId object,
                   ReadCallback callback);

  // -- Runtime entry points ------------------------------------------------

  void on_message(NodeId from, sim::MessagePtr message) override;

  /// Handler dispatch without the trailing internal-action fixpoint.
  /// Batch-draining runtimes (runtime/threaded_cluster.cpp) dispatch every
  /// message of a mailbox batch through this and then run the fixpoint
  /// once; on_message == dispatch_message + run_internal_actions.
  void dispatch_message(NodeId from, sim::MessagePtr message);

  /// Apply_InQueue + Encoding, run to a fixed point. Invoked automatically
  /// after every message receipt; exposed for tests.
  void run_internal_actions();

  /// Garbage_Collection (Alg. 3). Drive from a periodic timer.
  void run_garbage_collection();

  // -- Crash recovery (DESIGN.md §9) ---------------------------------------

  /// Snapshot of the complete durable protocol state (ReadL excluded --
  /// pending-read callbacks cannot survive a restart).
  persist::ServerImage capture_image() const;

  /// Reset to initial state, then (when `image` is non-null) load the
  /// snapshot. Must describe this same (node, n, k, value_bytes). Arms the
  /// stale-app guard so duplicate deliveries after recovery are dropped.
  void restore_image(const persist::ServerImage* image);

  /// restore_image + deterministic WAL replay + end_restore. The caller
  /// must mute the transport around this call: replayed handlers re-run
  /// their sends, which must not reach the network a second time.
  void restore_from_journal(const persist::RecoveredState& recovered);

  /// Closes the replay window: drops reads registered during replay (their
  /// inquiries were muted; the Encoding action re-issues what it needs).
  void end_restore();

  /// Journal to record accepted writes and dispatched messages into; null
  /// (the default) disables durability. Not owned.
  void attach_journal(persist::Journal* journal) { journal_ = journal; }

  /// Start an anti-entropy rejoin round: broadcast a state digest, pull
  /// missed writes from every live peer, and converge without replaying
  /// history. Call after restore_from_journal, with the transport live.
  void begin_rejoin();

  bool recovering() const { return recovering_; }
  std::uint64_t recovery_epoch() const { return recovery_epoch_; }

  /// Liveness view of a peer, fed by the hosting runtime (Cluster forwards
  /// halt/recover events). A nonzero down mask switches eligible read
  /// fan-outs onto object-repair plans and shrinks rejoin helper sets;
  /// an empty mask leaves every pre-repair code path untouched.
  void set_peer_down(NodeId peer, bool down);
  std::uint32_t peer_down_mask() const { return peer_down_mask_; }

  // -- Introspection -------------------------------------------------------

  const VectorClock& clock() const { return vc_; }
  const Tag& codeword_tag(ObjectId object) const { return m_tags_[object]; }
  const erasure::Symbol& codeword_value() const { return m_val_; }
  const HistoryList& history(ObjectId object) const { return lists_[object]; }
  const DelList& del_list(ObjectId object) const { return dels_[object]; }
  const InQueue& inqueue() const { return inqueue_; }
  const ReadList& read_list() const { return reads_; }
  const Tag& tmax(ObjectId object) const { return tmax_[object]; }
  StorageStats storage() const;
  const ServerCounters& counters() const { return counters_; }

  /// Always-on ring of recent protocol events (config.flight_recorder);
  /// dumped into chaos replay bundles, on recovery restart, and by
  /// causalec_inspect.
  const obs::FlightRecorder& flight_recorder() const { return flight_; }

 private:
  // Message handlers (Alg. 1 line 44, Alg. 2).
  void handle_app(NodeId from, const AppMessage& msg);
  void handle_del(NodeId from, const DelMessage& msg);
  void handle_val_inq(NodeId from, const ValInqMessage& msg);
  void handle_val_resp(NodeId from, const ValRespMessage& msg);
  void handle_val_resp_encoded(NodeId from, const ValRespEncodedMessage& msg);

  // Rejoin catch-up handlers (DESIGN.md §9).
  void handle_recover_digest(NodeId from, const RecoverDigestMessage& msg);
  void handle_recover_digest_reply(NodeId from,
                                   const RecoverDigestReplyMessage& msg);
  void handle_recover_pull(NodeId from, const RecoverPullMessage& msg);
  void handle_recover_push(NodeId from, const RecoverPushMessage& msg);
  /// Build and send a push of everything `target_vc` does not cover.
  void send_recover_push(NodeId to, std::uint64_t epoch,
                         const VectorClock& target_vc);
  /// Pull targets for a rejoin round: the symbol-repair helper set when
  /// config_.rejoin_catchup is kRepairPlan and a plan exists, else all
  /// live-looking peers (the kPullAll behavior).
  std::uint32_t rejoin_pull_targets();
  void send_recover_pull(NodeId to);
  /// All expected pushes arrived: chase straggler clocks seen in digest
  /// replies (a peer uniquely holding writes we miss) or finish.
  void maybe_finish_rejoin();
  /// Deadline: escalate a helper-set round to a full pull once, then give
  /// up and finish with whatever arrived (the pre-repair behavior).
  void rejoin_deadline(std::uint64_t epoch);
  void finish_rejoin();

  // Internal actions (Alg. 3).
  bool apply_inqueue_step();   // one Apply_InQueue; true if it applied
  bool encoding_step();        // one Encoding pass; true if state changed

  // Pending-read plumbing.
  void complete_pending_read(PendingRead& read, const erasure::Value& value,
                             const Tag& value_tag);
  void try_decode_pending_read(OpId opid);
  void register_read(PendingRead read);
  void retry_pending_read(OpId opid);
  void send_val_inq_to(const std::vector<NodeId>& targets,
                       const PendingRead& read);
  /// Non-const: a degraded fan-out (down peers + repair plan) bumps the
  /// repair counters as a side effect.
  std::vector<NodeId> initial_fanout_targets(const PendingRead& read);

  // del bookkeeping.
  void record_del(ObjectId object, const Tag& tag);  // own DelL entry
  void send_del_to_containing(ObjectId object, const Tag& tag);
  void broadcast_del(ObjectId object, const Tag& tag, bool dedupe);

  OpId next_internal_opid();

  /// Current time for observability timestamps; 0 when obs is off so the
  /// hot path never pays the virtual now() call.
  SimTime obs_now() const {
    return obs_enabled_ ? transport_->now() : 0;
  }

  /// Attaches trace context to an outbound message: `trace_id` names the
  /// client operation the message belongs to, the freshly minted span id
  /// binds the 's'/'f' flow pair the routers emit for this send edge.
  void stamp_trace(sim::Message& message, std::uint64_t trace_id) {
    if (tracer_ == nullptr || trace_id == 0) return;
    message.trace.trace_id = trace_id;
    message.trace.span_id = tracer_->new_id();
  }

  /// Flight-recorder entry (no-op when config.flight_recorder is false).
  void flight(obs::FlightKind kind, std::uint32_t a = 0, std::uint32_t b = 0,
              const Tag* tag = nullptr) {
    if (!flight_on_) return;
    flight_.record(transport_->now(), kind, a, b,
                   tag != nullptr ? tag->ts.sum() : 0,
                   tag != nullptr ? static_cast<std::uint32_t>(tag->id) : 0);
  }

  // Cold observability emitters, one per hot-path site. Kept out of line and
  // never inlined: the trace-argument construction otherwise bloats
  // client_write/client_read enough to measurably slow them down even when
  // observability is disabled and the code never runs. Call only under
  // `if (obs_enabled_)` so the disabled cost is one predictable branch.
  [[gnu::noinline]] void obs_write_done(ObjectId object, ClientId client,
                                        std::size_t bytes, SimTime t0,
                                        std::uint64_t trace_id);
  [[gnu::noinline]] void obs_read_done(ObjectId object, SimTime t0,
                                       const char* path, const Tag& tag);
  [[gnu::noinline]] std::uint64_t obs_read_remote_begin(ObjectId object,
                                                        OpId opid, SimTime t0);
  [[gnu::noinline]] std::uint64_t obs_read_internal_begin(ObjectId object,
                                                          SimTime t0);
  [[gnu::noinline]] void obs_reencode(ObjectId object);

  /// R = { i : X in X_i } (the servers whose encoding depends on X).
  const std::vector<NodeId>& containing_servers(ObjectId object) const {
    return containing_[object];
  }

  NodeId id_;
  erasure::CodePtr code_;
  ServerConfig config_;
  Transport* transport_;
  WireModel wire_;
  std::size_t n_;  // number of servers
  std::size_t k_;  // number of objects

  // -- Algorithm state (Fig. 3) --------------------------------------------
  VectorClock vc_;
  InQueue inqueue_;
  std::vector<HistoryList> lists_;   // L[X]
  std::vector<DelList> dels_;       // DelL[X]
  erasure::Symbol m_val_;            // M.val
  TagVector m_tags_;                 // M.tagvec
  ReadList reads_;                   // ReadL
  TagVector tmax_;                   // tmax[X]

  // -- Implementation bookkeeping ------------------------------------------
  std::uint64_t internal_opid_counter_ = 0;
  std::vector<std::vector<NodeId>> containing_;  // per object
  std::vector<NodeId> others_;                   // every node but this one
  // Last tag broadcast to *all* nodes per object (del dedupe, DESIGN note 6).
  TagVector last_del_broadcast_all_;
  ServerCounters counters_;
  bool in_internal_actions_ = false;

  // -- Crash-recovery state (DESIGN.md §9) ---------------------------------
  persist::Journal* journal_ = nullptr;  // not owned; null = no durability
  bool recovering_ = false;
  /// Counts rejoin rounds; nonzero also arms the stale-app guard (a server
  /// that has ever restored may see duplicate deliveries).
  std::uint64_t recovery_epoch_ = 0;
  std::vector<bool> rejoin_waiting_;  // peers yet to push this round
  std::size_t rejoin_waiting_count_ = 0;
  SimTime rejoin_started_at_ = 0;
  // Repair-plan rejoin bookkeeping (all reset by begin_rejoin).
  std::uint32_t rejoin_pull_mask_ = 0;   // peers this round pulls from
  std::uint32_t rejoin_pulled_ = 0;      // peers already sent a pull
  std::uint32_t rejoin_reply_seen_ = 0;  // peers whose digest reply arrived
  std::vector<VectorClock> rejoin_reply_vcs_;  // their reported clocks
  bool rejoin_escalated_ = false;        // deadline already widened the pull

  /// Runtime liveness view (set_peer_down); bit j set = peer j down.
  std::uint32_t peer_down_mask_ = 0;

  // -- Observability (null/false when disabled) ----------------------------
  obs::Tracer* tracer_ = nullptr;
  bool obs_enabled_ = false;
  /// Trace id of the client operation (or inbound message) currently being
  /// processed; 0 when untraced. Outbound sends inherit it via stamp_trace.
  std::uint64_t active_trace_ = 0;
  // Handles resolved once at construction; updates are lock-free.
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_reads_remote_ = nullptr;
  obs::Counter* m_reencodes_ = nullptr;
  obs::Counter* m_gc_collected_ = nullptr;
  obs::Histogram* m_read_latency_ = nullptr;
  obs::Histogram* m_write_bytes_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
  obs::Counter* m_catchup_bytes_ = nullptr;
  obs::Counter* m_repair_bytes_ = nullptr;
  obs::Counter* m_repair_plan_hits_ = nullptr;
  obs::Counter* m_degraded_reads_ = nullptr;
  obs::Histogram* m_recovery_duration_ = nullptr;
  // Per-phase latency decomposition (steady-clock wall time, both runtimes).
  obs::Histogram* m_phase_apply_ = nullptr;
  obs::Histogram* m_phase_encode_ = nullptr;
  obs::Histogram* m_phase_persist_ = nullptr;

  // -- Flight recorder (always on; see config.flight_recorder) -------------
  obs::FlightRecorder flight_;
  bool flight_on_ = true;
};

}  // namespace causalec
