#include "causalec/grouped_store.h"

#include <algorithm>

#include "common/expect.h"

namespace causalec {

namespace {

/// Envelope carrying one group's protocol message between nodes. The group
/// id rides in the (fixed-size) header, so the wire size is the inner
/// message's.
struct GroupEnvelope final : sim::Message {
  std::size_t group;
  sim::MessagePtr inner;

  GroupEnvelope(std::size_t group_in, sim::MessagePtr inner_in)
      : group(group_in), inner(std::move(inner_in)) {}
  std::size_t wire_bytes() const override { return inner->wire_bytes(); }
  const char* type_name() const override { return inner->type_name(); }
};

}  // namespace

/// Wraps one group's outbound traffic into envelopes.
class GroupedStore::GroupTransport final : public Transport {
 public:
  GroupTransport(sim::Simulation* sim, NodeId self, std::size_t group)
      : sim_(sim), self_(self), group_(group) {}

  void send(NodeId to, sim::MessagePtr message) override {
    sim_->send(self_, to,
               std::make_unique<GroupEnvelope>(group_, std::move(message)));
  }
  void schedule_after(SimTime delta, std::function<void()> fn) override {
    sim_->schedule_after(delta, std::move(fn));
  }
  SimTime now() const override { return sim_->now(); }

 private:
  sim::Simulation* sim_;
  NodeId self_;
  std::size_t group_;
};

/// One simulated node hosting one server automaton per group.
class GroupedStore::NodeActor final : public sim::Actor {
 public:
  NodeActor(sim::Simulation* sim, NodeId id, const GroupedStoreConfig& config)
      : id_(id) {
    const std::size_t groups = config.group_codes.size();
    transports_.reserve(groups);
    servers_.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      transports_.push_back(
          std::make_unique<GroupTransport>(sim, id, g));
      servers_.push_back(std::make_unique<Server>(
          id, config.group_codes[g], config.server,
          transports_.back().get()));
    }
  }

  void on_message(NodeId from, sim::MessagePtr message) override {
    auto* envelope = dynamic_cast<GroupEnvelope*>(message.get());
    CEC_CHECK_MSG(envelope != nullptr, "GroupedStore expects envelopes");
    CEC_CHECK(envelope->group < servers_.size());
    servers_[envelope->group]->on_message(from,
                                          std::move(envelope->inner));
  }

  Server& server(std::size_t group) {
    CEC_CHECK(group < servers_.size());
    return *servers_[group];
  }
  const Server& server(std::size_t group) const {
    CEC_CHECK(group < servers_.size());
    return *servers_[group];
  }
  std::size_t groups() const { return servers_.size(); }

 private:
  NodeId id_;
  std::vector<std::unique_ptr<GroupTransport>> transports_;
  std::vector<std::unique_ptr<Server>> servers_;
};

GroupedStore::GroupedStore(sim::Simulation* sim, GroupedStoreConfig config)
    : sim_(sim), config_(std::move(config)) {
  CEC_CHECK(sim_ != nullptr);
  CEC_CHECK(!config_.group_codes.empty());
  const std::size_t n = config_.group_codes.front()->num_servers();
  group_offset_.push_back(0);
  for (const auto& code : config_.group_codes) {
    CEC_CHECK_MSG(code->num_servers() == n,
                  "all groups must span the same servers");
    total_objects_ += code->num_objects();
    group_offset_.push_back(total_objects_);
  }
  nodes_.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    nodes_.push_back(std::make_unique<NodeActor>(sim_, s, config_));
    const NodeId sim_id = sim_->add_node(nodes_.back().get());
    CEC_CHECK(sim_id == s);
  }
}

GroupedStore::~GroupedStore() = default;

std::size_t GroupedStore::num_servers() const { return nodes_.size(); }

std::pair<std::size_t, ObjectId> GroupedStore::locate(
    GlobalObjectId object) const {
  CEC_CHECK(object < total_objects_);
  const auto it = std::upper_bound(group_offset_.begin(),
                                   group_offset_.end(), object);
  const std::size_t group =
      static_cast<std::size_t>(it - group_offset_.begin()) - 1;
  return {group, static_cast<ObjectId>(object - group_offset_[group])};
}

Tag GroupedStore::write(NodeId at, ClientId client, GlobalObjectId object,
                        erasure::Value value) {
  CEC_CHECK(at < nodes_.size());
  const auto [group, local] = locate(object);
  return nodes_[at]->server(group).client_write(client, /*opid=*/0, local,
                                                std::move(value));
}

void GroupedStore::read(NodeId at, ClientId client, GlobalObjectId object,
                        ReadCallback callback) {
  CEC_CHECK(at < nodes_.size());
  const auto [group, local] = locate(object);
  nodes_[at]->server(group).client_read(client, next_opid_++, local,
                                        std::move(callback));
}

void GroupedStore::run_garbage_collection(NodeId server) {
  CEC_CHECK(server < nodes_.size());
  for (std::size_t g = 0; g < nodes_[server]->groups(); ++g) {
    nodes_[server]->server(g).run_garbage_collection();
  }
}

void GroupedStore::arm_gc_timers() {
  for (NodeId s = 0; s < nodes_.size(); ++s) {
    sim_->schedule_periodic(
        config_.gc_period + s * config_.gc_stagger, config_.gc_period,
        [this, s] {
          if (!sim_->halted(s)) run_garbage_collection(s);
        });
  }
}

StorageStats GroupedStore::storage(NodeId server) const {
  CEC_CHECK(server < nodes_.size());
  StorageStats total;
  for (std::size_t g = 0; g < nodes_[server]->groups(); ++g) {
    const StorageStats s = nodes_[server]->server(g).storage();
    total.codeword_bytes += s.codeword_bytes;
    total.history_bytes += s.history_bytes;
    total.history_entries += s.history_entries;
    total.inqueue_bytes += s.inqueue_bytes;
    total.inqueue_entries += s.inqueue_entries;
    total.readl_entries += s.readl_entries;
    total.dell_entries += s.dell_entries;
  }
  return total;
}

erasure::PlanCacheStats GroupedStore::decode_plan_cache_stats() const {
  erasure::PlanCacheStats total;
  for (const erasure::CodePtr& code : config_.group_codes) {
    total += code->decode_plan_cache_stats();
  }
  return total;
}

erasure::PlanCacheStats GroupedStore::repair_plan_cache_stats() const {
  erasure::PlanCacheStats total;
  for (const erasure::CodePtr& code : config_.group_codes) {
    total += code->repair_plan_cache_stats();
  }
  return total;
}

void GroupedStore::set_peer_down(NodeId peer, bool down) {
  CEC_CHECK(peer < nodes_.size());
  for (NodeId s = 0; s < nodes_.size(); ++s) {
    if (s == peer) continue;
    for (std::size_t g = 0; g < nodes_[s]->groups(); ++g) {
      nodes_[s]->server(g).set_peer_down(peer, down);
    }
  }
}

std::array<std::uint64_t, 3> GroupedStore::repair_counters(
    NodeId node) const {
  CEC_CHECK(node < nodes_.size());
  std::array<std::uint64_t, 3> out{0, 0, 0};
  for (std::size_t g = 0; g < nodes_[node]->groups(); ++g) {
    const ServerCounters& c = nodes_[node]->server(g).counters();
    out[0] += c.degraded_reads;
    out[1] += c.repair_plan_hits;
    out[2] += c.repair_bytes;
  }
  return out;
}

Server& GroupedStore::server(NodeId node, std::size_t group) {
  CEC_CHECK(node < nodes_.size());
  return nodes_[node]->server(group);
}

}  // namespace causalec
