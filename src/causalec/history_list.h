// The history list L[X] (Sec. 3): versions of one object, keyed by tag.
//
// The paper initializes L[X] = {(0, 0)}: the zero tag denotes the initial
// all-zeros object value. We treat the zero tag as a *virtual* entry --
// lookup of the zero tag always succeeds with the zero value -- which is
// equivalent (see DESIGN.md note 5) and keeps every re-encoding code path
// uniform.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "causalec/tag.h"
#include "erasure/value.h"

namespace causalec {

class HistoryList {
 public:
  HistoryList(std::size_t num_servers, std::size_t value_bytes)
      : num_servers_(num_servers),
        value_bytes_(value_bytes),
        zero_value_(value_bytes, 0) {}

  /// Insert (tag, value); duplicate tags keep the existing entry (a tag
  /// uniquely identifies a write, Lemma B.3). Zero-tag inserts are dropped
  /// (the zero version is virtual).
  void insert(const Tag& tag, erasure::Value value) {
    if (tag.is_zero()) return;
    entries_.try_emplace(tag, std::move(value));
  }

  /// Value for a tag; the zero tag yields the (shared, never reallocated)
  /// zero value.
  std::optional<erasure::Value> lookup(const Tag& tag) const {
    if (tag.is_zero()) return zero_value_;
    auto it = entries_.find(tag);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const Tag& tag) const {
    return tag.is_zero() || entries_.count(tag) > 0;
  }

  /// L[X].HighestTagged.tag; the zero tag when no real entry exists.
  Tag highest_tag() const {
    if (entries_.empty()) return Tag::zero(num_servers_);
    return entries_.rbegin()->first;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Payload bytes held (the transient storage overhead of Sec. 4.2).
  std::size_t payload_bytes() const { return entries_.size() * value_bytes_; }

  /// Highest tag t with t <= ceiling, or nullopt (used for max(U & Ubar)).
  std::optional<Tag> highest_leq(const Tag& ceiling) const {
    auto it = entries_.upper_bound(ceiling);
    if (it == entries_.begin()) return std::nullopt;
    return std::prev(it)->first;
  }

  /// Remove entries matching the predicate; returns count removed.
  std::size_t erase_if(const std::function<bool(const Tag&)>& pred) {
    std::size_t removed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (pred(it->first)) {
        it = entries_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  /// Iteration for tests / invariant checks.
  const std::map<Tag, erasure::Value>& entries() const { return entries_; }

 private:
  std::size_t num_servers_;
  std::size_t value_bytes_;
  erasure::Value zero_value_;  // shared by every zero-tag lookup
  std::map<Tag, erasure::Value> entries_;
};

}  // namespace causalec
