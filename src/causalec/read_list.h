// The pending-read list ReadL (Sec. 3): reads (external and internal
// "localhost" reads issued by the Encoding action) waiting for codeword
// symbols from a recovery set.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "causalec/tag.h"
#include "erasure/value.h"

namespace causalec {

/// Invoked when a pending external read completes: the returned value, the
/// tag of the write whose value is returned, and the server's vector clock
/// at the response point (the operation timestamp of Definition 6, consumed
/// by the consistency checker).
using ReadCallback =
    std::function<void(const erasure::Value&, const Tag& value_tag,
                       const VectorClock& response_ts)>;

struct PendingRead {
  ClientId client = 0;  // kLocalhost for internal reads
  OpId opid = 0;
  ObjectId object = 0;
  TagVector requested;  // M.tagvec at registration time
  // One slot per server; nullopt until that server's re-encoded symbol (or
  // our own local symbol) is recorded.
  std::vector<std::optional<erasure::Symbol>> symbols;
  ReadCallback callback;  // empty for localhost
  /// Inquiries go to every server (either the configured fan-out, or the
  /// escalation after a nearest-recovery-set timeout).
  bool broadcast = true;

  // -- Observability bookkeeping (0 when obs is off). A retry inherits both
  // fields so the span and the latency sample cover the whole operation.
  SimTime started_at = 0;       // transport now() at registration
  std::uint64_t trace_id = 0;   // async-span correlation id

  bool is_internal() const { return client == kLocalhost; }
};

class ReadList {
 public:
  void add(PendingRead read) { reads_.push_back(std::move(read)); }

  PendingRead* find(OpId opid) {
    for (auto& r : reads_) {
      if (r.opid == opid) return &r;
    }
    return nullptr;
  }

  void remove(OpId opid) {
    std::erase_if(reads_, [opid](const PendingRead& r) {
      return r.opid == opid;
    });
  }

  bool empty() const { return reads_.empty(); }
  std::size_t size() const { return reads_.size(); }

  std::vector<PendingRead>& all() { return reads_; }
  const std::vector<PendingRead>& all() const { return reads_; }

  /// True iff an internal read exists for `object` with requested tag
  /// `tag` on that object (guard in Alg. 3 line 22).
  bool has_internal_for(ObjectId object, const Tag& tag) const {
    for (const auto& r : reads_) {
      if (r.is_internal() && r.object == object &&
          r.requested[object] == tag) {
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<PendingRead> reads_;
};

}  // namespace causalec
