// GroupedStore: the Sec. 4.2 deployment model -- K objects partitioned into
// groups of k, each group erasure-coded independently with its own
// (N, k) code, all groups hosted on the same N server nodes.
//
// Each node runs one CausalEC server automaton per group; traffic of all
// groups shares the node's network identity (messages carry a group id in
// their envelope). Objects get global ids; the store routes operations to
// the owning group.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "causalec/config.h"
#include "causalec/server.h"
#include "erasure/code.h"
#include "sim/simulation.h"

namespace causalec {

/// Global object identifier across all groups.
using GlobalObjectId = std::uint64_t;

struct GroupedStoreConfig {
  /// One code per group; all codes must span the same number of servers.
  std::vector<erasure::CodePtr> group_codes;
  ServerConfig server;
  SimTime gc_period = 50 * 1'000'000;  // 50 ms
  SimTime gc_stagger = 1'000'000;      // 1 ms
};

class GroupedStore {
 public:
  /// Registers one composite actor per server node on the simulation
  /// (node ids must start at the simulation's current count).
  GroupedStore(sim::Simulation* sim, GroupedStoreConfig config);
  ~GroupedStore();

  GroupedStore(const GroupedStore&) = delete;
  GroupedStore& operator=(const GroupedStore&) = delete;

  std::size_t num_servers() const;
  std::size_t num_groups() const { return config_.group_codes.size(); }
  std::size_t num_objects() const { return total_objects_; }

  /// Group and local index of a global object id.
  std::pair<std::size_t, ObjectId> locate(GlobalObjectId object) const;

  /// Local write at server `at` (synchronous, Property (I)).
  Tag write(NodeId at, ClientId client, GlobalObjectId object,
            erasure::Value value);

  /// Read at server `at`; callback fires exactly once (possibly inline).
  void read(NodeId at, ClientId client, GlobalObjectId object,
            ReadCallback callback);

  /// Fire one Garbage_Collection round on every group of one server.
  void run_garbage_collection(NodeId server);

  /// Arm periodic GC timers for every (server, group).
  void arm_gc_timers();

  /// Aggregated storage across all groups of one server.
  StorageStats storage(NodeId server) const;

  /// Decoder-plan cache counters summed over every group's code.
  erasure::PlanCacheStats decode_plan_cache_stats() const;

  /// Repair-plan cache counters summed over every group's code
  /// (erasure/repair_plan.h).
  erasure::PlanCacheStats repair_plan_cache_stats() const;

  /// Liveness feed (mirrors Cluster): marks `peer` down/up on every group
  /// automaton of every other node, switching eligible read fan-outs onto
  /// repair plans. Repair counters aggregate via repair_counters().
  void set_peer_down(NodeId peer, bool down);

  /// (degraded_reads, repair_plan_hits, repair_bytes) summed over every
  /// group automaton of one node.
  std::array<std::uint64_t, 3> repair_counters(NodeId node) const;

  /// Direct access for tests (group-level server automaton).
  Server& server(NodeId node, std::size_t group);

 private:
  class NodeActor;
  class GroupTransport;

  sim::Simulation* sim_;
  GroupedStoreConfig config_;
  std::size_t total_objects_ = 0;
  std::vector<std::size_t> group_offset_;  // prefix sums of group sizes
  std::vector<std::unique_ptr<NodeActor>> nodes_;
  OpId next_opid_ = 1;
};

}  // namespace causalec
