#include "causalec/cluster.h"

#include <utility>

#include "obs/flight_recorder.h"

namespace causalec {

/// Adapts one server's outbound traffic onto the simulator.
class Cluster::SimTransport final : public Transport {
 public:
  SimTransport(sim::Simulation* sim, NodeId self) : sim_(sim), self_(self) {}

  void send(NodeId to, sim::MessagePtr message) override {
    if (muted_) return;
    sim_->send(self_, to, std::move(message));
  }

  void schedule_after(SimTime delta, std::function<void()> fn) override {
    sim_->schedule_after(delta, std::move(fn));
  }

  SimTime now() const override { return sim_->now(); }

  /// Drop outbound sends during WAL replay: the replayed handlers re-run
  /// their multicasts, which already reached the network before the crash.
  void set_muted(bool muted) { muted_ = muted; }

 private:
  sim::Simulation* sim_;
  NodeId self_;
  bool muted_ = false;
};

Cluster::Cluster(erasure::CodePtr code,
                 std::unique_ptr<sim::LatencyModel> latency,
                 ClusterConfig config)
    : code_(std::move(code)), config_(std::move(config)) {
  sim_ = std::make_unique<sim::Simulation>(std::move(latency), config_.seed);
  if (config_.obs.any()) sim_->set_obs(config_.obs);
  const std::size_t n = code_->num_servers();
  transports_.reserve(n);
  servers_.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    transports_.push_back(std::make_unique<SimTransport>(sim_.get(), s));
    ServerConfig server_config = config_.server;
    if (config_.obs.tracer != nullptr) server_config.obs.tracer = config_.obs.tracer;
    if (config_.obs.metrics != nullptr) server_config.obs.metrics = config_.obs.metrics;
    if (!config_.proximity_matrix.empty()) {
      CEC_CHECK(config_.proximity_matrix.size() == n);
      server_config.proximity = config_.proximity_matrix[s];
    }
    servers_.push_back(std::make_unique<Server>(
        s, code_, server_config, transports_.back().get()));
    const NodeId sim_id = sim_->add_node(servers_.back().get());
    CEC_CHECK(sim_id == s);
    if (config_.persistence != nullptr) {
      std::string key = "s";
      key += std::to_string(s);
      journals_.push_back(std::make_unique<persist::Journal>(
          config_.persistence, std::move(key)));
      servers_.back()->attach_journal(journals_.back().get());
    }
  }
  arm_gc_timers();
  arm_storage_sampler();
  arm_snapshot_timers();
}

Cluster::~Cluster() = default;

Server& Cluster::server(NodeId id) {
  CEC_CHECK(id < servers_.size());
  return *servers_[id];
}

const Server& Cluster::server(NodeId id) const {
  CEC_CHECK(id < servers_.size());
  return *servers_[id];
}

Client& Cluster::make_client(NodeId at_server) {
  CEC_CHECK(at_server < servers_.size());
  clients_.push_back(
      std::make_unique<Client>(next_client_id_++, servers_[at_server].get()));
  return *clients_.back();
}

void Cluster::halt_server(NodeId id) {
  CEC_CHECK(id < servers_.size());
  sim_->halt(id);
  // Fail-stop liveness feed: survivors route degraded reads around the dead
  // server through repair plans instead of timing out on it.
  for (NodeId s = 0; s < servers_.size(); ++s) {
    if (s != id && !sim_->halted(s)) servers_[s]->set_peer_down(id, true);
  }
}

void Cluster::recover_server(NodeId id) {
  CEC_CHECK(id < servers_.size());
  CEC_CHECK_MSG(config_.persistence != nullptr,
                "recover_server requires ClusterConfig::persistence");
  CEC_CHECK_MSG(sim_->halted(id), "recover_server: server " << id
                                                            << " is not down");
  sim_->restart(id);
  Server& server = *servers_[id];
  // Dump the flight-recorder tail before journal replay reuses the ring:
  // the last protocol events the server saw before its crash.
  log_flight_tail(id, server.flight_recorder());
  transports_[id]->set_muted(true);
  server.restore_from_journal(journals_[id]->load());
  // Checkpoint the replayed state so a second crash before the next
  // snapshot timer does not replay the whole WAL again.
  journals_[id]->save_snapshot(server.capture_image());
  transports_[id]->set_muted(false);
  // Refresh liveness views: the rejoiner learns who is still down (its
  // symbol-repair helper set must avoid them); survivors mark it back up.
  for (NodeId s = 0; s < servers_.size(); ++s) {
    if (s == id) continue;
    server.set_peer_down(s, sim_->halted(s));
    if (!sim_->halted(s)) servers_[s]->set_peer_down(id, false);
  }
  server.begin_rejoin();
}

void Cluster::partition(const std::vector<NodeId>& side, SimTime heal_at) {
  std::vector<bool> in_side(servers_.size(), false);
  for (NodeId id : side) {
    CEC_CHECK(id < servers_.size());
    in_side[id] = true;
  }
  for (NodeId a = 0; a < servers_.size(); ++a) {
    for (NodeId b = 0; b < servers_.size(); ++b) {
      if (a != b && in_side[a] != in_side[b]) {
        sim_->block_channel(a, b, heal_at);
      }
    }
  }
}

void Cluster::run_for(SimTime duration) {
  sim_->run_until(sim_->now() + duration);
}

void Cluster::settle(std::size_t gc_rounds) {
  disarm_gc_timers();
  disarm_storage_sampler();
  disarm_snapshot_timers();
  sim_->run_until_idle();
  for (std::size_t round = 0; round < gc_rounds; ++round) {
    for (NodeId s = 0; s < servers_.size(); ++s) {
      if (!sim_->halted(s)) servers_[s]->run_garbage_collection();
    }
    sim_->run_until_idle();
  }
  arm_gc_timers();
  arm_storage_sampler();
  arm_snapshot_timers();
}

bool Cluster::storage_converged() const {
  for (NodeId s = 0; s < servers_.size(); ++s) {
    if (sim_->halted(s)) continue;
    const StorageStats stats = servers_[s]->storage();
    if (stats.history_entries != 0 || stats.inqueue_entries != 0 ||
        stats.readl_entries != 0) {
      return false;
    }
  }
  return true;
}

void Cluster::arm_gc_timers() {
  gc_timer_ids_.clear();
  for (NodeId s = 0; s < servers_.size(); ++s) {
    Server* server = servers_[s].get();
    auto* simulation = sim_.get();
    gc_timer_ids_.push_back(sim_->schedule_periodic(
        sim_->now() + config_.gc_period + s * config_.gc_stagger,
        config_.gc_period,
        [server, simulation, s] {
          if (!simulation->halted(s)) server->run_garbage_collection();
        },
        sim::Simulation::kForever, config_.gc_jitter));
  }
}

void Cluster::disarm_gc_timers() {
  for (auto id : gc_timer_ids_) sim_->cancel_timer(id);
  gc_timer_ids_.clear();
}

void Cluster::arm_snapshot_timers() {
  if (config_.persistence == nullptr) return;
  CEC_CHECK(config_.snapshot_period > 0);
  snapshot_timer_ids_.clear();
  for (NodeId s = 0; s < servers_.size(); ++s) {
    Server* server = servers_[s].get();
    persist::Journal* journal = journals_[s].get();
    auto* simulation = sim_.get();
    snapshot_timer_ids_.push_back(sim_->schedule_periodic(
        sim_->now() + config_.snapshot_period + s * config_.gc_stagger,
        config_.snapshot_period, [server, journal, simulation, s] {
          if (!simulation->halted(s)) {
            journal->save_snapshot(server->capture_image());
          }
        }));
  }
}

void Cluster::disarm_snapshot_timers() {
  for (auto id : snapshot_timer_ids_) sim_->cancel_timer(id);
  snapshot_timer_ids_.clear();
}

std::vector<std::string> Cluster::storage_series_columns() {
  return {"codeword_bytes", "history_bytes",  "history_entries",
          "inqueue_bytes",  "inqueue_entries", "readl_entries",
          "dell_entries"};
}

void Cluster::arm_storage_sampler() {
  if (config_.storage_series == nullptr) return;
  CEC_CHECK(config_.storage_sample_period > 0);
  CEC_CHECK(config_.storage_series->columns() == storage_series_columns());
  storage_sampler_id_ = sim_->schedule_periodic(
      sim_->now() + config_.storage_sample_period,
      config_.storage_sample_period, [this] { sample_storage(); });
}

void Cluster::disarm_storage_sampler() {
  if (storage_sampler_id_ != 0) sim_->cancel_timer(storage_sampler_id_);
  storage_sampler_id_ = 0;
}

void Cluster::sample_storage() {
  for (NodeId s = 0; s < servers_.size(); ++s) {
    if (sim_->halted(s)) continue;
    const StorageStats st = servers_[s]->storage();
    config_.storage_series->record(
        sim_->now(), s,
        {static_cast<double>(st.codeword_bytes),
         static_cast<double>(st.history_bytes),
         static_cast<double>(st.history_entries),
         static_cast<double>(st.inqueue_bytes),
         static_cast<double>(st.inqueue_entries),
         static_cast<double>(st.readl_entries),
         static_cast<double>(st.dell_entries)});
  }
}

}  // namespace causalec
